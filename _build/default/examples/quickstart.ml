(* Quickstart: write a Wasm module with the builder DSL, compile it with
   and without Segue, inspect the generated sandboxed code, and run both on
   the simulated machine.

     dune exec examples/quickstart.exe
*)

module W = Sfi_wasm.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine
open Sfi_wasm.Builder

(* A module computing a checksum over an array it first fills — the
   "struct array" access pattern of the paper's Figure 1. *)
let demo_module () =
  let b = create ~memory_pages:1 () in
  let f = declare b "checksum" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* locals: 0 = n, 1 = i, 2 = acc *)
  define b f ~locals:[ W.I32; W.I32 ]
    (for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
       [ get 1; i32 2; shl; get 1; get 1; mul; store32 ~offset:8 () ]
    @ for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
        [ get 2; get 1; i32 2; shl; load32 ~offset:8 (); add; i32 1; rotl; set 2 ]
    @ [ get 2 ]);
  build b

let run_with strategy m =
  let compiled = Codegen.compile (Codegen.default_config ~strategy ()) m in
  let engine = Runtime.create_engine compiled in
  let inst = Runtime.instantiate engine in
  Runtime.reset_metrics engine;
  match Runtime.invoke inst "checksum" [ 2000L ] with
  | Ok v ->
      let c = Machine.counters (Runtime.machine engine) in
      (v, c.Machine.instructions, c.Machine.cycles, compiled)
  | Error k -> failwith (Sfi_x86.Ast.trap_name k)

let () =
  let m = demo_module () in
  print_endline "Compiling the same module under three strategies:\n";
  let show name strategy =
    let v, instrs, cycles, compiled = run_with strategy m in
    Printf.printf "%-22s result=%-12Ld instructions=%-9d cycles=%-9d code=%d bytes\n" name
      (Int64.logand v 0xFFFFFFFFL) instrs cycles compiled.Codegen.code_bytes;
    compiled
  in
  let _ = show "native (no SFI)" Strategy.native in
  let base = show "wasm (reserved base)" Strategy.wasm_default in
  let segue = show "wasm + Segue" Strategy.segue in
  (* Show what Segue changed in the hot loop: grep the two listings for the
     first sandboxed load. *)
  let first_sandboxed_load program =
    Array.to_seq program
    |> Seq.filter_map (fun i ->
           match i with
           | Sfi_x86.Ast.Mov (_, Sfi_x86.Ast.Reg _, Sfi_x86.Ast.Mem mem)
             when mem.Sfi_x86.Ast.base = Some Sfi_x86.Ast.R14
                  || mem.Sfi_x86.Ast.seg = Some Sfi_x86.Ast.GS ->
               Some (Format.asprintf "%a" Sfi_x86.Ast.pp_instr i)
           | _ -> None)
    |> Seq.uncons
    |> Option.map fst
  in
  print_newline ();
  (match first_sandboxed_load base.Codegen.program with
  | Some s -> Printf.printf "first sandboxed load, reserved-base: %s\n" s
  | None -> ());
  (match first_sandboxed_load segue.Codegen.program with
  | Some s -> Printf.printf "first sandboxed load, Segue:         %s\n" s
  | None -> ());
  print_newline ();
  print_endline "Out-of-bounds accesses trap through the guard region:";
  let compiled = Codegen.compile (Codegen.default_config ~strategy:Strategy.segue ()) m in
  let engine = Runtime.create_engine compiled in
  let inst = Runtime.instantiate engine in
  (match Runtime.invoke inst "checksum" [ 100_000L ] with
  | Ok _ -> print_endline "  unexpectedly succeeded!"
  | Error k -> Printf.printf "  checksum(100000) -> trap: %s\n" (Sfi_x86.Ast.trap_name k))
