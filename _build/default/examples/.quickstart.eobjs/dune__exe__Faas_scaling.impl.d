examples/faas_scaling.ml: List Printf Sfi_faas
