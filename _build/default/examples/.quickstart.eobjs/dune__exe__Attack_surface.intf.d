examples/attack_surface.mli:
