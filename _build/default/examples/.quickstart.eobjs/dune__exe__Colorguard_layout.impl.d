examples/colorguard_layout.ml: Format List Printf Sfi_core Sfi_util
