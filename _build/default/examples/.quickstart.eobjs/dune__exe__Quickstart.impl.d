examples/quickstart.ml: Array Format Int64 Option Printf Seq Sfi_core Sfi_machine Sfi_runtime Sfi_wasm Sfi_x86
