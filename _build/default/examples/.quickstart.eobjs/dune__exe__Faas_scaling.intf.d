examples/faas_scaling.mli:
