examples/colorguard_layout.mli:
