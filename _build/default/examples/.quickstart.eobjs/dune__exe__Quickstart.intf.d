examples/quickstart.mli:
