examples/library_sandboxing.mli:
