examples/attack_surface.ml: Printf Sfi_core Sfi_runtime Sfi_util Sfi_wasm Sfi_x86
