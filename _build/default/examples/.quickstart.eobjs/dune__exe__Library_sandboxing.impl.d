examples/library_sandboxing.ml: Printf Sfi_core Sfi_util Sfi_workloads
