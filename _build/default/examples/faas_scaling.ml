(* A FaaS edge node under load (§6.4): serve the same concurrent request
   population with ColorGuard's single-address-space scaling and with
   multiprocess scaling, and compare per-core efficiency, context switches
   and dTLB behaviour.

     dune exec examples/faas_scaling.exe
*)

module Sim = Sfi_faas.Sim
module Wk = Sfi_faas.Workloads

let () =
  let cfg = Sim.default_config ~workload:Wk.Regex_filter () in
  Printf.printf
    "Simulating %d in-flight requests (regex URL filtering), 5 ms Poisson IO,\n\
     1 ms epochs, one core, %.0f ms simulated...\n\n"
    cfg.Sim.concurrency
    (cfg.Sim.duration_ns /. 1e6);
  let cg = Sim.run { cfg with Sim.mode = Sim.Colorguard } in
  Printf.printf "ColorGuard (one process, striped pool):\n";
  Printf.printf "  %d requests served, %.0f req/s per busy core\n" cg.Sim.completed
    cg.Sim.capacity_rps;
  Printf.printf "  %d sandbox transitions (user-level), %d dTLB misses\n\n"
    cg.Sim.user_transitions cg.Sim.dtlb_misses;
  Printf.printf "Multiprocess scaling:\n";
  Printf.printf "  %-6s %-12s %-14s %-12s %-12s\n" "procs" "req/s-core" "ctx switches"
    "dTLB misses" "CG gain";
  List.iter
    (fun k ->
      let mp = Sim.run { cfg with Sim.mode = Sim.Multiprocess k } in
      Printf.printf "  %-6d %-12.0f %-14d %-12d %+.1f%%\n" k mp.Sim.capacity_rps
        mp.Sim.context_switches mp.Sim.dtlb_misses
        ((cg.Sim.capacity_rps -. mp.Sim.capacity_rps) /. mp.Sim.capacity_rps *. 100.0))
    [ 1; 2; 4; 8; 15 ];
  print_newline ();
  print_endline
    "The single-address-space design also removes the 16K-instance limit:\n\
     striping 15 MPK colors packs ~15x more instances per process (see\n\
     examples/colorguard_layout.exe and bench experiment 'scaling')."
