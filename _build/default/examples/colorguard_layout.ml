(* ColorGuard's memory layout, interactively: compute a striped pool
   layout, verify the Table 1 safety invariants, visualize the color
   striping of Figure 2, and reproduce the scaling arithmetic of §2/§6.4.2.

     dune exec examples/colorguard_layout.exe
*)

module Pool = Sfi_core.Pool
module Invariants = Sfi_core.Invariants
module Colorguard = Sfi_core.Colorguard
module Units = Sfi_util.Units

let () =
  Printf.printf "Classic Wasm scaling (sec 2):\n";
  Printf.printf "  4 GiB memory + 4 GiB guard per instance -> at most %d instances\n"
    (Colorguard.classic_max_instances ());
  Printf.printf "  Wasmtime's shared 2+2 GiB guards        -> roughly %d\n\n"
    (Colorguard.wasmtime_default_max_instances ());

  let params =
    {
      Pool.num_slots = 64;
      max_memory_bytes = 512 * Units.mib;
      expected_slot_bytes = 512 * Units.mib;
      guard_bytes = 4 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = true;
    }
  in
  let layout =
    match Pool.compute params with Ok l -> l | Error msg -> failwith msg
  in
  Printf.printf "A striped pool of 64 x 512 MiB slots with 4 GiB of guard each:\n  %s\n\n"
    (Format.asprintf "%a" Pool.pp_layout layout);
  (match Invariants.check layout with
  | [] -> print_endline "All ten Table 1 safety invariants hold.\n"
  | vs ->
      List.iter (fun v -> Format.printf "  %a@." Invariants.pp_violation v) vs;
      failwith "unsafe layout");

  (* Figure 2: the striping pattern. *)
  print_endline "Color striping (Figure 2): slot -> MPK color";
  for row = 0 to 1 do
    Printf.printf " ";
    for i = 16 * row to (16 * (row + 1)) - 1 do
      Printf.printf " %2d:%-2d" i (Pool.color_of_slot layout i)
    done;
    print_newline ()
  done;
  Printf.printf
    "\nConsecutive same-colored slots are %s apart — at least the slot reservation\n\
     plus its guard, so no 33-bit sandbox access can reach a same-colored peer.\n\n"
    (Units.to_string (Pool.bytes_to_next_stripe_slot layout));

  (* The §6.4.2 scaling microbenchmark. *)
  let scaling_params =
    { params with Pool.max_memory_bytes = 408 * Units.mib;
      expected_slot_bytes = 408 * Units.mib; guard_bytes = 8 * Units.gib }
  in
  let report = Colorguard.scaling scaling_params in
  Printf.printf
    "With 408 MiB slots in the 47-bit user address space (sec 6.4.2):\n\
    \  guard regions only: %7d slots (stride %s)\n\
    \  ColorGuard:         %7d slots (stride %s) — %.1fx\n"
    report.Colorguard.unstriped_slots
    (Units.to_string report.Colorguard.unstriped_stride)
    report.Colorguard.striped_slots
    (Units.to_string report.Colorguard.striped_stride)
    report.Colorguard.factor;

  (* Fewer keys: stripes combine with guard regions (§5.1). *)
  print_endline "\nWhen fewer protection keys are available, stripes widen to keep the";
  print_endline "isolation distance (a stripes+guards hybrid, sec 5.1):";
  List.iter
    (fun keys ->
      match Pool.compute { params with Pool.num_pkeys_available = keys } with
      | Ok l ->
          Printf.printf "  %2d keys -> %2d stripes, stride %s\n" keys l.Pool.num_stripes
            (Units.to_string l.Pool.slot_bytes)
      | Error msg -> Printf.printf "  %2d keys -> rejected: %s\n" keys msg)
    [ 15; 8; 4; 2; 0 ]
