(* Firefox-style library sandboxing (the paper's §6.1 motivation): a host
   application calls a Wasm-sandboxed font shaper once per glyph and a
   sandboxed XML parser per document, compares native / sandboxed /
   sandboxed+Segue, and shows the FSGSBASE fallback cost on old CPUs.

     dune exec examples/library_sandboxing.exe
*)

module Strategy = Sfi_core.Strategy
module Firefox = Sfi_workloads.Firefox
module Stats = Sfi_util.Stats

let () =
  print_endline "Rendering a page: 6,000 sandboxed glyph-shaping calls";
  let font strategy = Firefox.run_font ~strategy ~glyphs:6000 () in
  let fn = font Strategy.native in
  let fb = font Strategy.wasm_default in
  let fs = font Strategy.segue in
  Printf.printf "  native          %6.2f ms\n" (fn.Firefox.total_ns /. 1e6);
  Printf.printf "  sandboxed       %6.2f ms  (+%.1f%%)\n"
    (fb.Firefox.total_ns /. 1e6)
    (Stats.percent_overhead ~baseline:fn.Firefox.total_ns ~measured:fb.Firefox.total_ns);
  Printf.printf "  sandboxed+segue %6.2f ms  (+%.1f%%; %.0f%% of the overhead eliminated)\n"
    (fs.Firefox.total_ns /. 1e6)
    (Stats.percent_overhead ~baseline:fn.Firefox.total_ns ~measured:fs.Firefox.total_ns)
    (Stats.overhead_eliminated ~baseline:fn.Firefox.total_ns ~unopt:fb.Firefox.total_ns
       ~opt:fs.Firefox.total_ns);
  Printf.printf "  per-call cost: %.0f ns native, %.0f ns segue (includes the per-entry\n"
    fn.Firefox.per_call_ns fs.Firefox.per_call_ns;
  print_endline "  segment-base switch, since Firefox re-enters the sandbox per glyph)";
  print_newline ();

  print_endline "Parsing a large SVG (the amplified toolbar document):";
  let xml strategy = Firefox.run_xml ~strategy ~repeats:10 () in
  let xn = xml Strategy.native in
  let xb = xml Strategy.wasm_default in
  let xs = xml Strategy.segue in
  Printf.printf "  native          %6.2f ms\n" (xn.Firefox.total_ns /. 1e6);
  Printf.printf "  sandboxed       %6.2f ms  (+%.1f%%)\n"
    (xb.Firefox.total_ns /. 1e6)
    (Stats.percent_overhead ~baseline:xn.Firefox.total_ns ~measured:xb.Firefox.total_ns);
  Printf.printf "  sandboxed+segue %6.2f ms  (+%.1f%%)\n"
    (xs.Firefox.total_ns /. 1e6)
    (Stats.percent_overhead ~baseline:xn.Firefox.total_ns ~measured:xs.Firefox.total_ns);
  print_newline ();

  print_endline "On a pre-IvyBridge CPU (no FSGSBASE), setting the segment base takes a";
  print_endline "system call per sandbox entry (sec 4.1):";
  let slow = Firefox.run_font ~fsgsbase_available:false ~strategy:Strategy.segue ~glyphs:6000 () in
  Printf.printf "  sandboxed+segue via arch_prctl: %.2f ms (vs %.2f ms with wrgsbase)\n"
    (slow.Firefox.total_ns /. 1e6) (fs.Firefox.total_ns /. 1e6)
