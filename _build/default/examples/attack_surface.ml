(* The security story, adversarially: a hostile Wasm module attempts the
   classic sandbox escapes; every attempt must trap, under every hardening
   mechanism this repository implements — guard regions, explicit bounds
   checks, ColorGuard's MPK striping, indirect-call type checks, and the
   stack-exhaustion check.

     dune exec examples/attack_surface.exe
*)

module W = Sfi_wasm.Ast
module X = Sfi_x86.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Runtime = Sfi_runtime.Runtime
module Units = Sfi_util.Units
open Sfi_wasm.Builder

(* A module whose exports are attacks. *)
let hostile_module () =
  let b = create ~memory_pages:1 ~max_memory_pages:1 () in
  (* 1. Read far outside linear memory through a huge index. *)
  let oob_read = declare b "oob_read" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b oob_read [ get 0; load32 () ];
  (* 2. Write through a wrapped 64-bit "pointer". *)
  let wild_write = declare b "wild_write" ~params:[ W.I64 ] ~results:[] () in
  define b wild_write [ get 0; wrap; i32 0x41414141; store32 () ];
  (* 3. Call a function-table slot that does not exist. *)
  let bad_elem = declare b "bad_elem" ~params:[] ~results:[ W.I32 ] () in
  let victim = declare b "victim" ~params:[] ~results:[ W.I32 ] () in
  define b victim [ i32 7 ];
  elem b [ victim ];
  define b bad_elem [ i32 99; call_indirect b ~params:[] ~results:[ W.I32 ] ];
  (* 4. Type-confuse an indirect call. *)
  let confused = declare b "confused" ~params:[] ~results:[ W.I32 ] () in
  define b confused
    [ i32 1; i32 0; call_indirect b ~params:[ W.I32 ] ~results:[ W.I32 ] ];
  (* 5. Blow the call stack. *)
  let recurse = declare b "recurse" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b recurse [ get 0; i32 1; add; call recurse ];
  build b

let show name result =
  match result with
  | Ok v -> Printf.printf "  %-28s ESCAPED (returned %Ld)!\n" name v
  | Error k -> Printf.printf "  %-28s trapped: %s\n" name (X.trap_name k)

let attack_round ~strategy ~colorguard ~allocator label =
  Printf.printf "%s\n" label;
  let cfg = { (Codegen.default_config ~strategy ()) with Codegen.colorguard } in
  let engine = Runtime.create_engine ?allocator (Codegen.compile cfg (hostile_module ())) in
  let inst = Runtime.instantiate engine in
  show "oob read (idx 2^31)" (Runtime.invoke inst "oob_read" [ 0x7FFF0000L ]);
  show "oob read (just past end)" (Runtime.invoke inst "oob_read" [ 65536L ]);
  show "wild 64-bit pointer write" (Runtime.invoke inst "wild_write" [ 0x4141414141414141L ]);
  show "undefined table element" (Runtime.invoke inst "bad_elem" []);
  show "indirect type confusion" (Runtime.invoke inst "confused" []);
  show "stack exhaustion" (Runtime.invoke inst "recurse" [ 0L ]);
  print_newline ()

let () =
  print_endline "Every attack must trap; any non-trap is a sandbox escape.\n";
  attack_round ~strategy:Strategy.wasm_default ~colorguard:false ~allocator:None
    "Classic Wasm (reserved base + guard regions):";
  attack_round ~strategy:Strategy.segue ~colorguard:false ~allocator:None
    "Segue (gs-relative, guard regions):";
  attack_round ~strategy:Strategy.wasm_bounds_checked ~colorguard:false ~allocator:None
    "Explicit bounds checks:";
  let striped =
    match
      Pool.compute
        {
          Pool.num_slots = 8;
          max_memory_bytes = 4 * Units.mib;
          expected_slot_bytes = 4 * Units.mib;
          guard_bytes = 16 * Units.mib;
          pre_guard_enabled = false;
          num_pkeys_available = 15;
          stripe_enabled = true;
        }
    with
    | Ok l -> l
    | Error m -> failwith m
  in
  attack_round ~strategy:Strategy.segue ~colorguard:true
    ~allocator:(Some (Runtime.Pool striped))
    "ColorGuard (striped pool, MPK isolation in place of guards):";
  print_endline
    "Note how ColorGuard's slots sit 4 MiB apart — inside each other's 32-bit\n\
     index range — yet the out-of-bounds reads still trap: the MPK color check\n\
     replaces the dead guard space (sec 3.2)."
