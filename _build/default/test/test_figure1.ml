(* Golden tests for the paper's Figure 1: the two C patterns must compile
   to exactly the instruction shapes the paper shows — two instructions
   (lea + mov via the reserved base) classically, one gs-relative mov with
   Segue. *)

module W = Sfi_wasm.Ast
module X = Sfi_x86.Ast
module Codegen = Sfi_core.Codegen
module Strategy = Sfi_core.Strategy
open Sfi_wasm.Builder

(* Pattern 1: a 64-bit integer converted to a pointer, then dereferenced:
     u64 val = ...; u64 a = *(u64* )val;
   In Wasm: wrap the i64, then i64.load. *)
let pattern1_module () =
  let b = create ~memory_pages:1 () in
  let f = declare b "pat1" ~params:[ W.I64 ] ~results:[ W.I64 ] () in
  define b f [ get 0; wrap; load64 () ];
  build b

(* Pattern 2: reading an array element inside a struct:
     u32 b = obj->arr[idx];   // arr at offset 8
   In Wasm: obj + idx*4, load with offset 8. *)
let pattern2_module () =
  let b = create ~memory_pages:1 () in
  let f = declare b "pat2" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; get 1; i32 2; shl; add; load32 ~offset:8 () ];
  build b

(* The instructions of one compiled function body, between its entry label
   and its epilogue, with prologue/epilogue boilerplate stripped. *)
let body_instrs compiled fname =
  let program = compiled.Codegen.program in
  let label = "f$" ^ fname in
  let rec skip_to i =
    if i >= Array.length program then Alcotest.failf "label %s not found" label
    else match program.(i) with X.Label l when l = label -> i + 1 | _ -> skip_to (i + 1)
  in
  let start = skip_to 0 in
  let rec collect i acc =
    match program.(i) with
    | X.Label l when l = label ^ "$end" -> List.rev acc
    | instr -> collect (i + 1) (instr :: acc)
  in
  collect start []
  |> List.filter (fun i ->
         (* Drop the prologue/epilogue scaffolding: frame setup, stack
            check, callee saves, parameter homing, result move. *)
         match i with
         | X.Push _ | X.Pop _ | X.Ret | X.Label _ -> false
         | X.Mov (_, X.Reg X.RBP, X.Reg X.RSP) -> false
         | X.Alu (X.Sub, _, X.Reg X.RSP, _) -> false
         | X.Cmp (_, X.Reg X.RSP, _) | X.Jcc (_, _) -> false
         | X.Mov (_, X.Reg _, X.Mem m) when m.X.base = Some X.RBP -> false
         | X.Mov (_, X.Reg X.RAX, X.Reg _) -> false
         | X.Alu (X.Xor, _, X.Reg a, X.Reg b) when a = b -> false
         | _ -> true)

let compile strategy m = Codegen.compile (Codegen.default_config ~strategy ()) m

let render instrs = List.map (fun i -> Format.asprintf "%a" X.pp_instr i) instrs

let count_memory_ops instrs =
  List.length
    (List.filter
       (fun i -> List.exists (fun (m : X.mem) -> m.X.base = Some X.R14 || m.X.seg = Some X.GS)
            (X.mem_operands i))
       instrs)

let test_pattern1 () =
  let m = pattern1_module () in
  (* Classic: the wrap needs an explicit 32-bit truncation (lea/mov) before
     the base-relative load: 2 instructions for the access. *)
  let base = body_instrs (compile Strategy.wasm_default m) "pat1" in
  Alcotest.(check int) "classic: 2 instructions" 2 (List.length base);
  (match base with
  | [ X.Lea (X.W32, _, _); X.Mov (X.W64, X.Reg _, X.Mem mem) ] ->
      Alcotest.(check bool) "load via reserved base" true (mem.X.base = Some X.R14)
  | other -> Alcotest.failf "unexpected shape: %s" (String.concat " ; " (render other)));
  (* Segue: one instruction; the address-size override does the wrap. *)
  let segue = body_instrs (compile Strategy.segue m) "pat1" in
  Alcotest.(check int) "segue: 1 instruction" 1 (List.length segue);
  match segue with
  | [ X.Mov (X.W64, X.Reg _, X.Mem mem) ] ->
      Alcotest.(check bool) "gs segment" true (mem.X.seg = Some X.GS);
      Alcotest.(check bool) "addr32 override (inline truncation)" true mem.X.addr32
  | other -> Alcotest.failf "unexpected shape: %s" (String.concat " ; " (render other))

let test_pattern2 () =
  let m = pattern2_module () in
  (* Classic: lea edi, [obj + idx*4 + 8]; mov r, [r14 + rdi] — Figure 1b
     lines 12-14. *)
  let base = body_instrs (compile Strategy.wasm_default m) "pat2" in
  Alcotest.(check int) "classic: 2 instructions" 2 (List.length base);
  (match base with
  | [ X.Lea (X.W32, tmp, lea_mem); X.Mov (X.W32, X.Reg _, X.Mem acc) ] ->
      Alcotest.(check bool) "lea folds obj + idx*4 + 8" true
        (lea_mem.X.index <> None && lea_mem.X.disp = 8);
      Alcotest.(check bool) "access via reserved base + tmp" true
        (acc.X.base = Some X.R14 && acc.X.index = Some (tmp, X.S1))
  | other -> Alcotest.failf "unexpected shape: %s" (String.concat " ; " (render other)));
  (* Segue: mov r, gs:[obj + idx*4 + 8] — Figure 1c line 14. *)
  let segue = body_instrs (compile Strategy.segue m) "pat2" in
  Alcotest.(check int) "segue: 1 instruction" 1 (List.length segue);
  match segue with
  | [ X.Mov (X.W32, X.Reg _, X.Mem mem) ] ->
      Alcotest.(check bool) "full fold under gs" true
        (mem.X.seg = Some X.GS && mem.X.index <> None && mem.X.disp = 8 && mem.X.addr32)
  | other -> Alcotest.failf "unexpected shape: %s" (String.concat " ; " (render other))

(* The register story: Segue returns the reserved register to the local
   allocator, so a function with seven register-worthy locals spills under
   the classic scheme but not under Segue. *)
let test_register_pressure () =
  let b = create ~memory_pages:1 () in
  let f = declare b "pressure" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* param + 6 locals = 7 register candidates *)
  define b f ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    [
      get 0; i32 1; add; set 1; get 1; i32 2; add; set 2; get 2; i32 3; add; set 3;
      get 3; i32 4; add; set 4; get 4; i32 5; add; set 5; get 5; i32 6; add; set 6;
      get 6; get 1; add; get 2; add; get 3; add; get 4; add; get 5; add;
    ];
  let m = build b in
  let frame_accesses strategy =
    let compiled = compile strategy m in
    Array.to_list compiled.Codegen.program
    |> List.filter (fun i ->
           List.exists (fun (mem : X.mem) -> mem.X.base = Some X.RBP) (X.mem_operands i))
    |> List.length
  in
  Alcotest.(check bool) "classic spills a local to the frame" true
    (frame_accesses Strategy.wasm_default > frame_accesses Strategy.segue)

let test_memory_op_counts () =
  (* Across a memory-heavy body, Segue emits no more sandboxed-access
     instructions than memory operations, while classic emits the extra
     leas. *)
  let m = pattern2_module () in
  let base = body_instrs (compile Strategy.wasm_default m) "pat2" in
  let segue = body_instrs (compile Strategy.segue m) "pat2" in
  Alcotest.(check int) "segue: one sandboxed op" 1 (count_memory_ops segue);
  Alcotest.(check int) "classic: one sandboxed op + lea" 1 (count_memory_ops base)

let tests =
  [
    Harness.case "pattern 1 (int-to-pointer deref)" test_pattern1;
    Harness.case "pattern 2 (struct array element)" test_pattern2;
    Harness.case "register pressure" test_register_pressure;
    Harness.case "memory op counts" test_memory_op_counts;
  ]
