(* Shared helpers: run a module both in the reference interpreter and
   compiled under each SFI strategy, and compare results. *)

module W = Sfi_wasm.Ast
module B = Sfi_wasm.Builder
module Interp = Sfi_wasm.Interp
module X = Sfi_x86.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Runtime = Sfi_runtime.Runtime

let all_strategies =
  [
    Strategy.native;
    Strategy.wasm_default;
    Strategy.segue;
    Strategy.segue_loads_only;
    Strategy.wasm_bounds_checked;
    Strategy.segue_bounds_checked;
    { Strategy.addressing = Strategy.Reserved_base; bounds = Strategy.Mask };
  ]

let value_bits = function
  | W.V_i32 v -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
  | W.V_i64 v -> v

type outcome = Value of int64 | Trap of string

let run_interp m export args =
  let inst = Interp.instantiate m in
  match Interp.invoke inst export args with
  | Ok [] -> (Value 0L, inst)
  | Ok (v :: _) -> (Value (value_bits v), inst)
  | Error t -> (Trap (Interp.trap_name t), inst)

let compile_and_instantiate ?(vectorize = false) ~strategy m =
  let cfg = { (Codegen.default_config ~strategy ()) with Codegen.vectorize } in
  let compiled = Codegen.compile cfg m in
  let engine = Runtime.create_engine compiled in
  let inst = Runtime.instantiate engine in
  (engine, inst)

let run_compiled ?vectorize ~strategy m export args =
  let _engine, inst = compile_and_instantiate ?vectorize ~strategy m in
  (inst, Runtime.invoke inst export (List.map value_bits args))

(* Mask the compiled (raw RAX) result to the export's result width; void
   functions leave garbage in RAX, which must not be compared. *)
let mask_result m export bits =
  let idx = W.func_index_of_export m export in
  match (W.type_of_func m idx).W.results with
  | [ W.I32 ] -> Int64.logand bits 0xFFFFFFFFL
  | [] -> 0L
  | _ -> bits

(* Compare interpreter and compiled outcomes for one export invocation
   under every strategy, including final linear-memory contents. *)
let check_differential ?vectorize ?(check_memory = true) name m export args =
  let interp_outcome, interp_inst = run_interp m export args in
  List.iter
    (fun strategy ->
      let sname = Strategy.name strategy in
      let inst, result = run_compiled ?vectorize ~strategy m export args in
      (match (interp_outcome, result) with
      | Value expected, Ok raw ->
          let got = mask_result m export raw in
          Alcotest.(check int64)
            (Printf.sprintf "%s/%s result" name sname)
            expected got
      | Trap tname, Error k ->
          if strategy <> Strategy.native then
            Alcotest.(check bool)
              (Printf.sprintf "%s/%s trap kind (%s vs %s)" name sname tname (X.trap_name k))
              true
              (tname = X.trap_name k
              || (tname = "undefined table element" && k = X.Trap_out_of_bounds))
      | Value v, Error k ->
          Alcotest.failf "%s/%s: interpreter returned %Ld but compiled trapped: %s" name sname v
            (X.trap_name k)
      | Trap tname, Ok raw ->
          if strategy <> Strategy.native then
            Alcotest.failf "%s/%s: interpreter trapped (%s) but compiled returned %Ld" name
              sname tname raw);
      if check_memory && interp_outcome <> Trap "out of bounds memory access" then begin
        let len = min (Interp.memory_size_bytes interp_inst) (64 * 1024) in
        if len > 0 && (match (interp_outcome, result) with Value _, Ok _ -> true | _ -> false)
        then begin
          let expected = Interp.read_memory interp_inst ~addr:0 ~len in
          let got = Runtime.read_memory inst ~addr:0 ~len in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s memory contents" name sname)
            true (String.equal expected got)
        end
      end)
    all_strategies

let vi32 v = W.V_i32 (Int32.of_int v)
let vi64 v = W.V_i64 (Int64.of_int v)

let case name f = Alcotest.test_case name `Quick f
