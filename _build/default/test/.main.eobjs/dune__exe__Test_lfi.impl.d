test/test_lfi.ml: Alcotest Array Harness Lazy List Sfi_core Sfi_lfi Sfi_wasm Sfi_x86
