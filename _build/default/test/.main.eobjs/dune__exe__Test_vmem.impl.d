test/test_vmem.ml: Alcotest Bytes Harness Int64 QCheck QCheck_alcotest Sfi_vmem
