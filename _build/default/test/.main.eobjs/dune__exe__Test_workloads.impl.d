test/test_workloads.ml: Alcotest Harness Int64 Lazy List Printf Sfi_core Sfi_wasm Sfi_workloads String
