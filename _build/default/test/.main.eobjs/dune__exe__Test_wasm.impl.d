test/test_wasm.ml: Alcotest Array Harness Int32 List QCheck QCheck_alcotest Sfi_wasm
