test/test_codegen.ml: Alcotest Array Char Harness Int32 Int64 List Printf Sfi_core Sfi_runtime Sfi_wasm Sfi_x86 String
