test/test_faas.ml: Alcotest Float Harness List Sfi_faas Sfi_wasm
