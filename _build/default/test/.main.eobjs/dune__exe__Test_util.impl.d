test/test_util.ml: Alcotest Array Float Harness List QCheck QCheck_alcotest Sfi_util String
