test/test_x86.ml: Alcotest Array Format Harness List QCheck QCheck_alcotest Sfi_x86
