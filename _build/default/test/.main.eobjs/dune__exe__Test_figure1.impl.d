test/test_figure1.ml: Alcotest Array Format Harness List Sfi_core Sfi_wasm Sfi_x86 String
