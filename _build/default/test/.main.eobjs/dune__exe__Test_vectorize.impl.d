test/test_vectorize.ml: Alcotest Char Harness Int32 List QCheck QCheck_alcotest Sfi_core Sfi_wasm String
