test/test_machine.ml: Alcotest Array Harness Int64 Sfi_machine Sfi_vmem Sfi_x86
