test/main.mli:
