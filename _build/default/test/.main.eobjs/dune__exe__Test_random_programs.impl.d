test/test_random_programs.ml: Alcotest Harness Int64 List Printf Sfi_lfi Sfi_util Sfi_wasm
