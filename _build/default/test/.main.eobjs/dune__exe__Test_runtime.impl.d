test/test_runtime.ml: Alcotest Array Char Harness Int64 List Option Sfi_core Sfi_machine Sfi_runtime Sfi_util Sfi_wasm Sfi_x86
