test/test_pool.ml: Alcotest Float Harness List Printf QCheck QCheck_alcotest Sfi_core Sfi_util Sfi_vmem
