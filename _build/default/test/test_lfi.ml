(* Tests for the LFI x86-64 backend (§4.3): instrumentation coverage,
   semantic preservation, and the cost ordering native < lfi+segue < lfi. *)

module W = Sfi_wasm.Ast
module X = Sfi_x86.Ast
module Lfi = Sfi_lfi.Lfi
module Codegen = Sfi_core.Codegen
module Strategy = Sfi_core.Strategy
open Sfi_wasm.Builder

(* A benchmark-shaped module with loads, stores, calls, indirect calls and
   returns — every edge the rewriter must sandbox. *)
let subject_module () =
  let b = create ~memory_pages:2 () in
  let square = declare b "square" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b square [ get 0; get 0; mul ];
  let cube = declare b "cube" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b cube [ get 0; get 0; mul; get 0; mul ];
  elem b [ square; cube ];
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b run ~locals:[ W.I32; W.I32 ]
    (for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
       [
         (* store then reload through a computed address *)
         get 1; i32 3; band; i32 2; shl; get 1; store32 ();
         get 2;
         get 1; i32 3; band; i32 2; shl; load32 ();
         (* dispatch through the table *)
         get 1; i32 1; band; call_indirect b ~params:[ W.I32 ] ~results:[ W.I32 ];
         add; set 2;
       ]
    @ [ get 2 ]);
  build b

let subject = lazy (subject_module ())

let native_program () =
  let cfg =
    { (Codegen.default_config ~strategy:Strategy.native ()) with Codegen.lfi_reserve_base = true }
  in
  (Codegen.compile cfg (Lazy.force subject)).Codegen.program

let test_instrumentation_counts () =
  let p = native_program () in
  let data, control = Lfi.instrumentation_counts ~segue:false p in
  Alcotest.(check bool) "data accesses found" true (data > 0);
  Alcotest.(check bool) "control edges found" true (control > 0);
  (* Every sandboxed operand disappears after rewriting. *)
  let rewritten = Lfi.rewrite ~segue:false p in
  let leftover, _ = Lfi.instrumentation_counts ~segue:false rewritten in
  Alcotest.(check int) "no native_base operands survive" 0 leftover;
  (* Baseline data sandboxing never uses %gs (the runtime's %fs-based
     vmctx accesses remain, as trusted code)... *)
  let uses_gs i =
    List.exists (fun (m : X.mem) -> m.X.seg = Some X.GS) (X.mem_operands i)
  in
  Alcotest.(check bool) "baseline avoids gs" false
    (Array.exists uses_gs (Lfi.rewrite ~segue:false p));
  (* ...while the Segue rewrite uses it for exactly the data sites. *)
  let segued = Lfi.rewrite ~segue:true p in
  let gs_ops = Array.to_list segued |> List.filter uses_gs |> List.length in
  Alcotest.(check int) "segue: one gs operand per data site" data gs_ops

let test_control_flow_shape () =
  let p = [| X.Label "f"; X.Ret |] in
  let r = Lfi.rewrite ~segue:false p in
  (* ret becomes pop + truncate + rebase + indirect jump, plus the halt
     trampoline up front. *)
  Alcotest.(check bool) "ret rewritten away" false (Array.exists (fun i -> i = X.Ret) r);
  Alcotest.(check bool) "halt trampoline present" true
    (Array.exists (function X.Label l -> l = Lfi.halt_label | _ -> false) r);
  Alcotest.(check bool) "masked jump present" true
    (Array.exists (function X.Jmp_reg _ -> true | _ -> false) r)

let results_match () =
  let m = Lazy.force subject in
  let args = [ 500L ] in
  let native = Lfi.run_native m ~entry:"run" ~args in
  let lfi = Lfi.run_lfi ~segue:false m ~entry:"run" ~args in
  let seg = Lfi.run_lfi ~segue:true m ~entry:"run" ~args in
  (native, lfi, seg)

let test_semantics_preserved () =
  let native, lfi, seg = results_match () in
  Alcotest.(check int64) "lfi result" native.Lfi.result lfi.Lfi.result;
  Alcotest.(check int64) "lfi+segue result" native.Lfi.result seg.Lfi.result

let test_cost_ordering () =
  let native, lfi, seg = results_match () in
  Alcotest.(check bool) "lfi slower than native" true (lfi.Lfi.cycles > native.Lfi.cycles);
  Alcotest.(check bool) "segue between native and lfi" true
    (seg.Lfi.cycles >= native.Lfi.cycles && seg.Lfi.cycles < lfi.Lfi.cycles);
  Alcotest.(check bool) "instrumented code is bigger" true
    (lfi.Lfi.code_bytes > native.Lfi.code_bytes)

let test_region_base_register_reserved () =
  (* LFI input compilation must keep r14 free even under native lowering;
     a rewritten program must never write it. *)
  let p = Lfi.rewrite ~segue:true (native_program ()) in
  let writes_r14 = function
    | X.Mov (_, X.Reg r, _) | X.Lea (_, r, _) | X.Pop r -> r = Lfi.region_base_reg
    | X.Alu (_, _, X.Reg r, _) -> r = Lfi.region_base_reg
    | _ -> false
  in
  Alcotest.(check bool) "rewritten code never clobbers the region base" false
    (Array.exists writes_r14 p)

let tests =
  [
    Harness.case "instrumentation counts" test_instrumentation_counts;
    Harness.case "control-flow rewrite shape" test_control_flow_shape;
    Harness.case "semantics preserved" test_semantics_preserved;
    Harness.case "cost ordering" test_cost_ordering;
    Harness.case "region base reserved" test_region_base_register_reserved;
  ]
