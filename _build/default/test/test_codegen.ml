(* Differential tests: every module is executed by the reference
   interpreter and by the machine under all seven compilation strategies;
   results, traps and final memory must agree. This is the correctness
   backbone for the Segue lowering. *)

open Harness
module W = Sfi_wasm.Ast
open Sfi_wasm.Builder

(* --- simple arithmetic --- *)

let arith_module () =
  let b = create () in
  let add2 = declare b "add2" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b add2 [ get 0; get 1; add ];
  let mixed = declare b "mixed" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b mixed
    [ get 0; get 1; mul; get 0; i32 7; band; sub; get 1; i32 3; shl; bxor; i32 11; bor ];
  let divs = declare b "divs" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b divs [ get 0; get 1; div_s ];
  let divu = declare b "divu" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b divu [ get 0; get 1; div_u ];
  let rems = declare b "rems" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b rems [ get 0; get 1; rem_s ];
  let remu = declare b "remu" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b remu [ get 0; get 1; rem_u ];
  let shifts = declare b "shifts" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b shifts [ get 0; get 1; shr_u; get 0; get 1; shr_s; add; get 0; get 1; rotl; bxor ];
  let cmp = declare b "cmp" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b cmp
    [
      get 0; get 1; lt_s;
      get 0; get 1; lt_u; add;
      get 0; get 1; ge_s; add;
      get 0; get 1; eq; add;
      get 0; eqz; add;
    ];
  let bits = declare b "bits" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b bits [ get 0; W.Clz W.I32; get 0; W.Ctz W.I32; add; get 0; W.Popcnt W.I32; add ];
  build b

let test_arith () =
  let m = arith_module () in
  let pairs = [ (0, 1); (5, 3); (-7, 2); (1000000, 999); (min_int land 0xFFFFFFFF, -1) ] in
  List.iter
    (fun (a, bv) ->
      List.iter
        (fun f -> check_differential (f ^ "_arith") m f [ vi32 a; vi32 bv ])
        [ "add2"; "mixed"; "shifts"; "cmp" ])
    pairs;
  List.iter
    (fun (a, bv) ->
      List.iter
        (fun f -> check_differential (f ^ "_div") m f [ vi32 a; vi32 bv ])
        [ "divs"; "divu"; "rems"; "remu" ])
    [ (17, 5); (-17, 5); (17, -5); (0, 3); (7, 0); (0x80000000, -1) ];
  List.iter (fun v -> check_differential "bits" m "bits" [ vi32 v ]) [ 0; 1; 0x80000000; 12345 ]

(* --- i64 arithmetic and conversions --- *)

let i64_module () =
  let b = create () in
  let f = declare b "mix64" ~params:[ W.I64; W.I64 ] ~results:[ W.I64 ] () in
  define b f
    [
      get 0; get 1; add64;
      get 0; get 1; mul64; bxor64;
      get 0; i64 13; band64; sub64;
      get 1; i64 5; shl64; bor64;
    ];
  let conv = declare b "conv" ~params:[ W.I64 ] ~results:[ W.I32 ] () in
  define b conv [ get 0; wrap; get 0; i64 32; shr_u64; wrap; add ];
  let ext = declare b "ext" ~params:[ W.I32 ] ~results:[ W.I64 ] () in
  define b ext [ get 0; extend_u; get 0; extend_s; add64 ];
  let cmp64 = declare b "cmp64" ~params:[ W.I64; W.I64 ] ~results:[ W.I32 ] () in
  define b cmp64 [ get 0; get 1; lt_s64; get 0; get 1; lt_u64; add; get 0; eqz64; add ];
  build b

let test_i64 () =
  let m = i64_module () in
  List.iter
    (fun (a, bv) ->
      check_differential "mix64" m "mix64" [ W.V_i64 a; W.V_i64 bv ];
      check_differential "cmp64" m "cmp64" [ W.V_i64 a; W.V_i64 bv ])
    [ (0L, 1L); (Int64.min_int, -1L); (0x1234_5678_9ABC_DEF0L, 42L) ];
  List.iter
    (fun v -> check_differential "conv" m "conv" [ W.V_i64 v ])
    [ 0L; -1L; 0xFFFF_FFFF_0000_0001L ];
  List.iter (fun v -> check_differential "ext" m "ext" [ vi32 v ]) [ 0; -1; 0x7FFFFFFF ]

(* --- control flow --- *)

let control_module () =
  let b = create () in
  let fib = declare b "fib" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b fib
    [
      get 0; i32 2; lt_u;
      if_ ~ty:W.I32
        [ get 0 ]
        [ get 0; i32 1; sub; call fib; get 0; i32 2; sub; call fib; add ];
    ];
  let collatz = declare b "collatz" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* count steps to 1 *)
  let steps = 1 in
  define b collatz ~locals:[ W.I32 ]
    (while_loop
       [ get 0; i32 1; gt_u ]
       [
         get 0; i32 1; band;
         if_ [ get 0; i32 3; mul; i32 1; add; set 0 ] [ get 0; i32 2; div_u; set 0 ];
         get steps; i32 1; add; set steps;
       ]
    @ [ get steps ]);
  let sel = declare b "sel" ~params:[ W.I32; W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b sel [ get 0; get 1; get 2; select ];
  let table_sw = declare b "switchy" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b table_sw ~locals:[ W.I32 ]
    [
      block
        [
          block
            [
              block
                [
                  block [ get 0; W.Br_table ([ 0; 1 ], 2) ];
                  (* case 0 *) i32 10; set 1; br 2;
                ];
              (* case 1 *) i32 20; set 1; br 1;
            ];
          (* default *) i32 99; set 1;
        ];
      get 1;
    ];
  let nested = declare b "nested" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b nested ~locals:[ W.I32; W.I32; W.I32 ]
    (for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
       (for_loop ~i:2 ~start:[ i32 0 ] ~stop:[ get 0 ]
          [ get 3; get 1; get 2; mul; add; get 2; add; set 3 ])
    @ [ get 3 ]);
  ignore nested;
  build b

let test_control () =
  let m = control_module () in
  List.iter (fun n -> check_differential "fib" m "fib" [ vi32 n ]) [ 0; 1; 2; 7; 12 ];
  List.iter (fun n -> check_differential "collatz" m "collatz" [ vi32 n ]) [ 1; 6; 27 ];
  List.iter
    (fun (c, a, bv) -> check_differential "sel" m "sel" [ vi32 c; vi32 a; vi32 bv ])
    [ (5, 6, 1); (5, 6, 0) ];
  List.iter (fun n -> check_differential "switchy" m "switchy" [ vi32 n ]) [ 0; 1; 2; 7 ];
  List.iter (fun n -> check_differential "nested" m "nested" [ vi32 n ]) [ 0; 3; 5 ]

(* --- memory: Figure 1 patterns, loads/stores, bounds --- *)

let memory_module () =
  let b = create ~memory_pages:2 ~max_memory_pages:8 () in
  (* Figure 1 pattern 2: obj->arr[idx] with a struct offset. *)
  let pat2 = declare b "pat2" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b pat2 [ get 0; get 1; i32 2; shl; add; load32 ~offset:8 () ];
  (* Figure 1 pattern 1: i64 to "pointer", then deref. *)
  let pat1 = declare b "pat1" ~params:[ W.I64 ] ~results:[ W.I64 ] () in
  define b pat1 [ get 0; wrap; load64 () ];
  let fill = declare b "fill" ~params:[ W.I32; W.I32 ] ~results:[] () in
  define b fill ~locals:[ W.I32 ]
    (for_loop ~i:2 ~start:[ i32 0 ] ~stop:[ get 1 ]
       [ get 0; get 2; i32 2; shl; add; get 2; get 2; mul; store32 () ]);
  let sum = declare b "sum" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b sum ~locals:[ W.I32; W.I32 ]
    (for_loop ~i:2 ~start:[ i32 0 ] ~stop:[ get 1 ]
       [ get 3; get 0; get 2; i32 2; shl; add; load32 (); add; set 3 ]
    @ [ get 3 ]);
  let bytes = declare b "bytes" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b bytes
    [
      get 0; i32 0x7F; store8 ();
      get 0; i32 0xBEEF; store16 ~offset:2 ();
      get 0; load8_u ();
      get 0; load8_s (); add;
      get 0; load16_u ~offset:2 (); add;
    ];
  let oob = declare b "oob" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b oob [ get 0; load32 () ];
  let grow = declare b "grow" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b grow [ get 0; memory_grow; memory_size; add ];
  let big_offset = declare b "bigoff" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b big_offset [ get 0; load32 ~offset:65536 () ];
  ignore (pat1, pat2, fill, sum, bytes, oob, grow, big_offset);
  build b

let test_memory () =
  let m = memory_module () in
  check_differential "fill" m "fill" [ vi32 64; vi32 100 ];
  check_differential "sum_empty" m "sum" [ vi32 0; vi32 0 ];
  check_differential "pat2" m "pat2" [ vi32 64; vi32 5 ];
  check_differential "pat1" m "pat1" [ W.V_i64 0x100000010L ];
  check_differential "bytes" m "bytes" [ vi32 4096 ];
  check_differential "oob_in" m "oob" [ vi32 0 ];
  check_differential "oob_out" m "oob" [ vi32 (2 * 65536) ];
  check_differential "oob_way_out" m "oob" [ vi32 0x7FFFFFFF ];
  check_differential "bigoff_trap" m "bigoff" [ vi32 (2 * 65536) ];
  check_differential "grow" m "grow" [ vi32 2 ];
  check_differential "grow_too_much" m "grow" [ vi32 100 ]

(* --- bulk memory --- *)

let bulk_module () =
  let b = create ~memory_pages:2 () in
  data b ~offset:0 (String.init 512 (fun i -> Char.chr ((i * 37 + 11) land 0xFF)));
  let seed = declare b "seed" ~params:[ W.I32 ] ~results:[] () in
  define b seed ~locals:[ W.I32 ]
    (for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
       [ get 1; get 1; i32 31; mul; i32 17; add; store8 () ]);
  let copy = declare b "copy" ~params:[ W.I32; W.I32; W.I32 ] ~results:[] () in
  define b copy [ get 0; get 1; get 2; memory_copy ];
  let fill = declare b "fill" ~params:[ W.I32; W.I32; W.I32 ] ~results:[] () in
  define b fill [ get 0; get 1; get 2; memory_fill ];
  build b

let test_bulk () =
  let m = bulk_module () in
  check_differential "seed" m "seed" [ vi32 1000 ];
  (* run seed then copy within one instance: use separate exports invoked
     in sequence via a driver module instead; here just test each op from
     zeroed memory plus the seeded prefix from data segments. *)
  check_differential "copy_fwd" m "copy" [ vi32 100; vi32 0; vi32 50 ];
  check_differential "copy_bwd" m "copy" [ vi32 0; vi32 10; vi32 50 ];
  check_differential "copy_overlap" m "copy" [ vi32 5; vi32 0; vi32 64 ];
  check_differential "fill" m "fill" [ vi32 3; vi32 0xAB; vi32 333 ]

(* --- calls, call_indirect, globals, imports --- *)

let call_module () =
  let b = create ~memory_pages:1 () in
  let g = global b W.I32 (W.V_i32 7l) in
  let gsum = global b W.I64 (W.V_i64 0L) in
  let double = declare b "double" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b double [ get 0; i32 2; mul ];
  let triple = declare b "triple" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b triple [ get 0; i32 3; mul ];
  let noise = declare b "noise" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b noise [ get 0; get 1; bxor ];
  elem b [ double; triple ];
  ignore noise;
  let dispatch = declare b "dispatch" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b dispatch [ get 1; get 0; call_indirect b ~params:[ W.I32 ] ~results:[ W.I32 ] ];
  let use_globals = declare b "use_globals" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b use_globals
    [
      gget g; get 0; add; gset g;
      gget gsum; get 0; extend_u; add64; gset gsum;
      gget g; gget gsum; wrap; add;
    ];
  let deep = declare b "deep" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* deep expression stack to exercise spills *)
  define b deep
    [
      get 0; get 0; i32 1; add; get 0; i32 2; add; get 0; i32 3; add;
      get 0; i32 4; add; get 0; i32 5; add; get 0; i32 6; add;
      get 0; i32 7; add; get 0; i32 8; add; get 0; i32 9; add;
      add; add; add; add; add; add; add; add; add;
    ];
  let many_args = declare b "many" ~params:[ W.I32; W.I32; W.I32; W.I32; W.I32 ] ~results:[ W.I32 ] ()
  in
  define b many_args
    [ get 0; get 1; add; get 2; add; get 3; add; get 4; add ];
  let call_many = declare b "call_many" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b call_many
    [ get 0; get 0; i32 1; add; get 0; i32 2; add; get 0; i32 3; add; get 0; i32 4; add;
      call many_args ];
  build b

let test_calls () =
  let m = call_module () in
  check_differential "dispatch0" m "dispatch" [ vi32 0; vi32 21 ];
  check_differential "dispatch1" m "dispatch" [ vi32 1; vi32 21 ];
  check_differential "dispatch_oob" m "dispatch" [ vi32 9; vi32 21 ];
  check_differential "globals" m "use_globals" [ vi32 5 ];
  check_differential "deep" m "deep" [ vi32 3 ];
  check_differential "call_many" m "call_many" [ vi32 10 ]

(* signature mismatch for call_indirect *)
let test_indirect_sig () =
  let b = create ~memory_pages:1 () in
  let two = declare b "two" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b two [ get 0; get 1; add ];
  elem b [ two ];
  let bad = declare b "bad" ~params:[] ~results:[ W.I32 ] () in
  define b bad [ i32 1; i32 0; call_indirect b ~params:[ W.I32 ] ~results:[ W.I32 ] ];
  let m = build b in
  check_differential "bad_sig" m "bad" []

(* imports *)
let test_imports () =
  let b = create ~memory_pages:1 () in
  let log = import b "host_add" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] in
  let f = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; i32 100; call log; get 0; add ];
  let m = build b in
  (* interpreter *)
  let host_add _ = function
    | [ W.V_i32 a; W.V_i32 b ] -> [ W.V_i32 (Int32.add a b) ]
    | _ -> assert false
  in
  let interp = Sfi_wasm.Interp.instantiate ~host:[ ("host_add", host_add) ] m in
  let expected =
    match Sfi_wasm.Interp.invoke interp "run" [ W.V_i32 5l ] with
    | Ok [ W.V_i32 v ] -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
    | _ -> assert false
  in
  List.iter
    (fun strategy ->
      let engine, inst = compile_and_instantiate ~strategy m in
      Sfi_runtime.Runtime.register_import engine "host_add" (fun _ args ->
          Int64.add args.(0) args.(1));
      match Sfi_runtime.Runtime.invoke inst "run" [ 5L ] with
      | Ok raw ->
          Alcotest.(check int64)
            (Printf.sprintf "import/%s" (Sfi_core.Strategy.name strategy))
            expected
            (Int64.logand raw 0xFFFFFFFFL)
      | Error k -> Alcotest.failf "import trapped: %s" (Sfi_x86.Ast.trap_name k))
    all_strategies

let test_unreachable () =
  let b = create () in
  let f = declare b "boom" ~params:[] ~results:[ W.I32 ] () in
  define b f [ i32 1; if_ ~ty:W.I32 [ unreachable ] [ i32 5 ] ];
  let m = build b in
  check_differential "unreachable" m "boom" []

(* The paper's future-work cost function: under Segment_loads_only, choose
   per access between the gs form and the reserved-base form by encoded
   size — never bigger, always semantics-preserving. *)
let test_segue_cost_function () =
  let m = memory_module () in
  let interp_result export args =
    let inst = Sfi_wasm.Interp.instantiate m in
    match Sfi_wasm.Interp.invoke inst export args with
    | Ok [ W.V_i32 v ] -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
    | _ -> Alcotest.fail "interp"
  in
  let compile hybrid =
    let cfg =
      {
        (Sfi_core.Codegen.default_config ~strategy:Sfi_core.Strategy.segue_loads_only ()) with
        Sfi_core.Codegen.segue_cost_function = hybrid;
      }
    in
    Sfi_core.Codegen.compile cfg m
  in
  let plain = compile false and hybrid = compile true in
  Alcotest.(check bool) "hybrid never bigger" true
    (hybrid.Sfi_core.Codegen.code_bytes <= plain.Sfi_core.Codegen.code_bytes);
  (* And still correct. *)
  let engine = Sfi_runtime.Runtime.create_engine hybrid in
  let inst = Sfi_runtime.Runtime.instantiate engine in
  List.iter
    (fun (export, args, raw_args) ->
      match Sfi_runtime.Runtime.invoke inst export raw_args with
      | Ok raw ->
          Alcotest.(check int64) (export ^ " result") (interp_result export args)
            (Int64.logand raw 0xFFFFFFFFL)
      | Error k -> Alcotest.failf "trap: %s" (Sfi_x86.Ast.trap_name k))
    [
      ("pat2", [ W.V_i32 64l; W.V_i32 5l ], [ 64L; 5L ]);
      ("bytes", [ W.V_i32 4096l ], [ 4096L ]);
      ("sum", [ W.V_i32 0l; W.V_i32 0l ], [ 0L; 0L ]);
    ]

(* The wasm2c-style stack-exhaustion check: unbounded recursion traps
   deterministically in every sandboxed strategy rather than smashing the
   host stack. *)
let test_stack_exhaustion () =
  let b = create () in
  let f = declare b "recurse" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; i32 1; add; call f ];
  let m = build b in
  List.iter
    (fun strategy ->
      match run_compiled ~strategy m "recurse" [ vi32 0 ] with
      | _, Error Sfi_x86.Ast.Trap_unreachable -> ()
      | _, Error k ->
          Alcotest.failf "%s: wrong trap %s" (Sfi_core.Strategy.name strategy)
            (Sfi_x86.Ast.trap_name k)
      | _, Ok v ->
          Alcotest.failf "%s: recursion returned %Ld" (Sfi_core.Strategy.name strategy) v)
    (List.filter (fun s -> s <> Sfi_core.Strategy.native) all_strategies)

let tests =
  [
    case "arith" test_arith;
    case "i64" test_i64;
    case "control" test_control;
    case "memory" test_memory;
    case "bulk" test_bulk;
    case "calls" test_calls;
    case "indirect signature" test_indirect_sig;
    case "imports" test_imports;
    case "unreachable" test_unreachable;
    case "segue cost function (future work)" test_segue_cost_function;
    case "stack exhaustion" test_stack_exhaustion;
  ]
