(* Randomized differential testing of the SFI compiler: generate random
   (but well-typed) Wasm functions — arithmetic over i32/i64 locals, memory
   traffic through masked in-bounds addresses, conversions, selects,
   conditionals and counted loops — and check that every compilation
   strategy agrees with the reference interpreter on the result, the trap
   behaviour, and the final memory image.

   The generator is seeded, so a failure reports a reproducible seed. *)

module W = Sfi_wasm.Ast
module Prng = Sfi_util.Prng
open Sfi_wasm.Builder

(* Locals: 0 = i32 param, 1 = i64 param, 2-5 scratch i32, 6-7 scratch i64. *)
let i32_locals = [ 0; 2; 3; 4; 5 ]
let i64_locals = [ 1; 6; 7 ]

let pick rng l = List.nth l (Prng.int rng (List.length l))

let i32_binops =
  [ W.Add; W.Sub; W.Mul; W.Div_s; W.Div_u; W.Rem_s; W.Rem_u; W.And; W.Or; W.Xor;
    W.Shl; W.Shr_s; W.Shr_u; W.Rotl; W.Rotr ]

let i64_binops = [ W.Add; W.Sub; W.Mul; W.And; W.Or; W.Xor; W.Shl; W.Shr_u; W.Rotl ]
let relops = [ W.Eq; W.Ne; W.Lt_s; W.Lt_u; W.Gt_s; W.Gt_u; W.Le_s; W.Ge_u ]

(* An in-bounds address: any i32 expression masked to [0, 0xFF8]. *)
let masked_addr expr = expr @ [ i32 0xFF8; band ]

let rec gen_i32 rng depth : W.instr list =
  if depth = 0 then
    match Prng.int rng 3 with
    | 0 -> [ i32 (Prng.int_in rng (-4) 200) ]
    | 1 -> [ get (pick rng i32_locals) ]
    | _ -> masked_addr [ get (pick rng i32_locals) ] @ [ load32 ~offset:(Prng.int rng 8) () ]
  else
    match Prng.int rng 10 with
    | 0 | 1 | 2 -> gen_i32 rng (depth - 1) @ gen_i32 rng (depth - 1) @ [ W.Binop (W.I32, pick rng i32_binops) ]
    | 3 -> gen_i32 rng (depth - 1) @ gen_i32 rng (depth - 1) @ [ W.Relop (W.I32, pick rng relops) ]
    | 4 -> gen_i64 rng (depth - 1) @ [ wrap ]
    | 5 -> gen_i32 rng (depth - 1) @ [ W.Eqz W.I32 ]
    | 6 ->
        gen_i32 rng (depth - 1) @ gen_i32 rng (depth - 1) @ gen_i32 rng (depth - 1)
        @ [ select ]
    | 7 -> gen_i32 rng (depth - 1) @ [ pick rng [ W.Clz W.I32; W.Ctz W.I32; W.Popcnt W.I32 ] ]
    | 8 ->
        masked_addr (gen_i32 rng (depth - 1))
        @ [ pick rng [ load8_u ~offset:(Prng.int rng 8) (); load16_u ~offset:(Prng.int rng 8) () ] ]
    | _ ->
        (* if-expression *)
        gen_i32 rng (depth - 1)
        @ [ if_ ~ty:W.I32 (gen_i32 rng (depth - 1)) (gen_i32 rng (depth - 1)) ]

and gen_i64 rng depth : W.instr list =
  if depth = 0 then
    match Prng.int rng 2 with
    | 0 -> [ i64' (Prng.next_int64 rng) ]
    | _ -> [ get (pick rng i64_locals) ]
  else
    match Prng.int rng 5 with
    | 0 | 1 -> gen_i64 rng (depth - 1) @ gen_i64 rng (depth - 1) @ [ W.Binop (W.I64, pick rng i64_binops) ]
    | 2 -> gen_i32 rng (depth - 1) @ [ (if Prng.bool rng then extend_u else extend_s) ]
    | 3 -> masked_addr (gen_i32 rng (depth - 1)) @ [ load64 ~offset:(Prng.int rng 8) () ]
    | _ -> gen_i64 rng (depth - 1) @ gen_i64 rng (depth - 1) @ [ W.Binop (W.I64, W.Add) ]

let gen_stmt rng : W.instr list =
  match Prng.int rng 6 with
  | 0 -> gen_i32 rng 2 @ [ set (pick rng (List.tl i32_locals)) ]
  | 1 -> gen_i64 rng 2 @ [ set (pick rng (List.tl i64_locals)) ]
  | 2 -> masked_addr (gen_i32 rng 2) @ gen_i32 rng 2 @ [ store32 ~offset:(Prng.int rng 8) () ]
  | 3 -> masked_addr (gen_i32 rng 1) @ gen_i64 rng 2 @ [ store64 ~offset:(Prng.int rng 8) () ]
  | 4 -> masked_addr (gen_i32 rng 1) @ gen_i32 rng 1 @ [ store8 ~offset:(Prng.int rng 8) () ]
  | _ ->
      (* a small counted loop mutating memory and a local *)
      let body =
        masked_addr [ get 2; i32 4; mul ]
        @ gen_i32 rng 1
        @ [ store32 (); get 3; i32 1; add; set 3 ]
      in
      for_loop ~i:2 ~start:[ i32 (Prng.int rng 4) ] ~stop:[ i32 (Prng.int_in rng 4 12) ] body

let gen_module rng =
  let b = create ~memory_pages:1 () in
  let nstmts = Prng.int_in rng 2 6 in
  let f = declare b "run" ~params:[ W.I32; W.I64 ] ~results:[ W.I32 ] () in
  let body = List.concat (List.init nstmts (fun _ -> gen_stmt rng)) @ gen_i32 rng 3 in
  define b f ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I64; W.I64 ] body;
  build b

let run_one seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let m = gen_module rng in
  let a = W.V_i32 (Int64.to_int32 (Prng.next_int64 rng)) in
  let b = W.V_i64 (Prng.next_int64 rng) in
  Harness.check_differential (Printf.sprintf "random[seed=%d]" seed) m "run" [ a; b ]

let test_random_programs () =
  for seed = 1 to 300 do
    run_one seed
  done

(* The same generator drives the LFI pipeline: native lowering, the SFI
   rewrite, and the Segue rewrite must all agree on results. Traps abort a
   run identically in all three, so only trap-free seeds compare values. *)
let run_one_lfi seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let m = gen_module rng in
  let a = Int64.logand (Prng.next_int64 rng) 0xFFFFFFFFL in
  let b = Prng.next_int64 rng in
  let args = [ a; b ] in
  let attempt f = try Ok (f ()) with Failure msg -> Error msg in
  let native = attempt (fun () -> Sfi_lfi.Lfi.run_native m ~entry:"run" ~args) in
  let lfi = attempt (fun () -> Sfi_lfi.Lfi.run_lfi ~segue:false m ~entry:"run" ~args) in
  let seg = attempt (fun () -> Sfi_lfi.Lfi.run_lfi ~segue:true m ~entry:"run" ~args) in
  match (native, lfi, seg) with
  | Ok n, Ok l, Ok s ->
      let mask m = Int64.logand m.Sfi_lfi.Lfi.result 0xFFFFFFFFL in
      Alcotest.(check int64) (Printf.sprintf "lfi[seed=%d]" seed) (mask n) (mask l);
      Alcotest.(check int64) (Printf.sprintf "lfi+segue[seed=%d]" seed) (mask n) (mask s)
  | Error _, Error _, Error _ -> () (* all three trapped alike *)
  | _ -> Alcotest.failf "lfi[seed=%d]: trap behaviour diverged" seed

let test_random_lfi () =
  for seed = 301 to 400 do
    run_one_lfi seed
  done

let tests =
  [
    Alcotest.test_case "300 random programs, 7 strategies" `Slow test_random_programs;
    Alcotest.test_case "100 random programs through LFI" `Slow test_random_lfi;
  ]
