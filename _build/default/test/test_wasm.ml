(* Tests for the mini-Wasm layer: validator, interpreter semantics, and the
   builder DSL. *)

module W = Sfi_wasm.Ast
module Validate = Sfi_wasm.Validate
module Interp = Sfi_wasm.Interp
open Sfi_wasm.Builder

let build_raw ?memory funcs ~types ~table =
  {
    W.empty_module with
    W.types = Array.of_list types;
    funcs = Array.of_list funcs;
    memory;
    table;
    exports = List.mapi (fun i (f : W.func) -> (f.W.fname, i)) funcs;
  }

let expect_invalid name m =
  match Validate.validate m with
  | Ok () -> Alcotest.failf "%s: expected validation failure" name
  | Error _ -> ()

let test_validator_rejects () =
  let fty = { W.params = []; results = [ W.I32 ] } in
  let mk body = build_raw ~types:[ fty ] ~table:[||] [ { W.ftype = 0; locals = []; body; fname = "f" } ] in
  expect_invalid "empty body needs result" (mk []);
  expect_invalid "type mismatch" (mk [ W.Const (W.V_i64 1L) ]);
  expect_invalid "stack underflow" (mk [ W.Binop (W.I32, W.Add) ]);
  expect_invalid "bad local" (mk [ W.Local_get 3 ]);
  expect_invalid "bad global" (mk [ W.Global_get 0 ]);
  expect_invalid "load without memory" (mk [ W.Const (W.V_i32 0l); W.Load (W.I32, None, { offset = 0 }) ]);
  expect_invalid "br depth" (mk [ W.Br 1 ]);
  expect_invalid "leftover values"
    (mk [ W.Const (W.V_i32 1l); W.Const (W.V_i32 2l) ]);
  expect_invalid "call out of range" (mk [ W.Call 9 ]);
  expect_invalid "call_indirect without table"
    (mk [ W.Const (W.V_i32 0l); W.Call_indirect 0 ]);
  expect_invalid "i32 pack32"
    (mk [ W.Const (W.V_i32 0l); W.Load (W.I32, Some (W.P32, W.Unsigned), { offset = 0 }) ]);
  (* dead code after unreachable is allowed (stack-polymorphic) *)
  (match Validate.validate (mk [ W.Unreachable; W.Binop (W.I32, W.Add) ]) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unreachable polymorphism: %s" e)

let test_validator_accepts_builder_modules () =
  (* The builder validates on [build]; exercising a couple of rich shapes. *)
  let b = create ~memory_pages:1 () in
  let f = declare b "f" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b f ~locals:[ W.I64 ]
    [
      get 0; extend_u; set 1;
      block ~ty:W.I32 [ get 1; wrap; i32 3; add ];
    ];
  ignore (build b)

let run_i32 m name args =
  let inst = Interp.instantiate m in
  match Interp.invoke inst name (List.map (fun v -> W.V_i32 (Int32.of_int v)) args) with
  | Ok [ W.V_i32 v ] -> Ok (Int32.to_int v)
  | Ok _ -> Alcotest.fail "arity"
  | Error t -> Error t

let test_interp_numerics () =
  let b = create () in
  let f = declare b "f" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; get 1; rotl; get 0; get 1; shr_s; bxor ];
  let m = build b in
  (* rotl(0x80000001, 1) = 3; 0x80000001 >>s 1 = 0xC0000000; 3 ^ that *)
  (match run_i32 m "f" [ 0x80000001; 1 ] with
  | Ok v -> Alcotest.(check int) "rotl/shr_s" (3 lxor 0xC0000000 land 0xFFFFFFFF) (v land 0xFFFFFFFF)
  | Error _ -> Alcotest.fail "trapped");
  let b = create () in
  let f = declare b "g" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; get 1; rem_s ];
  let m = build b in
  (match run_i32 m "g" [ 0x80000000; -1 ] with
  | Ok v -> Alcotest.(check int) "rem_s(min,-1) = 0, no trap" 0 v
  | Error _ -> Alcotest.fail "rem_s must not trap");
  let b = create () in
  let f = declare b "h" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; get 1; div_s ];
  let m = build b in
  (match run_i32 m "h" [ 0x80000000; -1 ] with
  | Error Interp.Integer_overflow -> ()
  | _ -> Alcotest.fail "div_s(min,-1) must trap overflow")

let test_interp_memory () =
  let b = create ~memory_pages:1 ~max_memory_pages:3 () in
  data b ~offset:8 "\x2A\x00\x00\x00";
  let f = declare b "f" ~params:[] ~results:[ W.I32 ] () in
  define b f [ i32 8; load32 () ];
  let grow = declare b "grow" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b grow [ get 0; memory_grow; drop; memory_size ];
  let oob = declare b "oob" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b oob [ get 0; load32 () ];
  let m = build b in
  (match run_i32 m "f" [] with
  | Ok v -> Alcotest.(check int) "data segment" 42 v
  | Error _ -> Alcotest.fail "trap");
  (match run_i32 m "grow" [ 1 ] with
  | Ok v -> Alcotest.(check int) "grow to 2 pages" 2 v
  | Error _ -> Alcotest.fail "trap");
  (match run_i32 m "grow" [ 7 ] with
  | Ok v -> Alcotest.(check int) "grow beyond max fails, size stays 1" 1 v
  | Error _ -> Alcotest.fail "trap");
  (match run_i32 m "oob" [ 65536 - 3 ] with
  | Error Interp.Out_of_bounds -> ()
  | _ -> Alcotest.fail "partial oob load must trap")

let test_interp_control () =
  (* br with a value through nested blocks *)
  let b = create () in
  let f = declare b "f" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b f
    [
      block ~ty:W.I32
        [
          block ~ty:W.I32 [ i32 10; get 0; W.Br_if 1; drop; i32 20 ];
          i32 1; add;
        ];
    ];
  let m = build b in
  (match run_i32 m "f" [ 1 ] with
  | Ok v -> Alcotest.(check int) "br_if taken carries value" 10 v
  | Error _ -> Alcotest.fail "trap");
  (match run_i32 m "f" [ 0 ] with
  | Ok v -> Alcotest.(check int) "fallthrough" 21 v
  | Error _ -> Alcotest.fail "trap")

let test_interp_fuel () =
  let b = create () in
  let f = declare b "spin" ~params:[] ~results:[ W.I32 ] () in
  define b f (while_loop [ i32 1 ] [ nop ] @ [ i32 0 ]);
  let m = build b in
  let inst = Interp.instantiate m in
  (try
     ignore (Interp.invoke inst "spin" ~fuel:10_000 []);
     Alcotest.fail "must run out of fuel"
   with Interp.Out_of_fuel -> ());
  Alcotest.(check bool) "instruction count advanced" true (Interp.instructions_executed inst > 0)

let test_builder_bookkeeping () =
  let b = create ~memory_pages:1 () in
  let imp = import b "host" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  Alcotest.(check int) "imports first" 0 (fn_index imp);
  let f = declare b "f" ~params:[] ~results:[] () in
  Alcotest.(check int) "funcs follow imports" 1 (fn_index f);
  Alcotest.check_raises "late import rejected"
    (Invalid_argument "Builder.import: imports must be declared before functions") (fun () ->
      ignore (import b "late" ~params:[] ~results:[]));
  define b f [ nop ];
  Alcotest.check_raises "double define rejected"
    (Invalid_argument "Builder.define: f already defined") (fun () -> define b f [ nop ]);
  let g = declare b "g" ~params:[] ~results:[] () in
  ignore g;
  Alcotest.check_raises "undefined function rejected"
    (Invalid_argument "Builder.build: undefined function g") (fun () -> ignore (build b))

let test_host_imports () =
  let b = create () in
  let h = import b "twice" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let f = declare b "f" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b f [ get 0; call h; get 0; call h; add ];
  let m = build b in
  let twice _ = function [ W.V_i32 v ] -> [ W.V_i32 (Int32.mul v 2l) ] | _ -> assert false in
  let inst = Interp.instantiate ~host:[ ("twice", twice) ] m in
  (match Interp.invoke inst "f" [ W.V_i32 5l ] with
  | Ok [ W.V_i32 v ] -> Alcotest.(check int32) "host calls" 20l v
  | _ -> Alcotest.fail "bad result");
  let unresolved = Interp.instantiate m in
  Alcotest.check_raises "unresolved import" (Invalid_argument "unresolved import: twice")
    (fun () -> ignore (Interp.invoke unresolved "f" [ W.V_i32 1l ]))

(* Property: the interpreter's i32 binops agree with OCaml's Int32. *)
let prop_i32_binop_reference =
  let ops =
    [
      (W.Add, fun a b -> Some (Int32.add a b));
      (W.Sub, fun a b -> Some (Int32.sub a b));
      (W.Mul, fun a b -> Some (Int32.mul a b));
      (W.And, fun a b -> Some (Int32.logand a b));
      (W.Or, fun a b -> Some (Int32.logor a b));
      (W.Xor, fun a b -> Some (Int32.logxor a b));
      (W.Shl, fun a b -> Some (Int32.shift_left a (Int32.to_int b land 31)));
      ( W.Div_u,
        fun a b -> if b = 0l then None else Some (Int32.unsigned_div a b) );
      ( W.Rem_u,
        fun a b -> if b = 0l then None else Some (Int32.unsigned_rem a b) );
    ]
  in
  QCheck.Test.make ~name:"interpreter i32 binops match Int32 reference" ~count:500
    QCheck.(triple (int_bound (List.length ops - 1)) int32 int32)
    (fun (opi, a, bv) ->
      let op, reference = List.nth ops opi in
      let b = create () in
      let f = declare b "f" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
      define b f [ get 0; get 1; W.Binop (W.I32, op) ];
      let m = build b in
      let inst = Interp.instantiate m in
      match (Interp.invoke inst "f" [ W.V_i32 a; W.V_i32 bv ], reference a bv) with
      | Ok [ W.V_i32 got ], Some expected -> Int32.equal got expected
      | Error Interp.Divide_by_zero, None -> true
      | _ -> false)

let tests =
  [
    Harness.case "validator rejects" test_validator_rejects;
    Harness.case "validator accepts" test_validator_accepts_builder_modules;
    Harness.case "interp numerics" test_interp_numerics;
    Harness.case "interp memory" test_interp_memory;
    Harness.case "interp control" test_interp_control;
    Harness.case "interp fuel" test_interp_fuel;
    Harness.case "builder bookkeeping" test_builder_bookkeeping;
    Harness.case "host imports" test_host_imports;
    QCheck_alcotest.to_alcotest prop_i32_binop_reference;
  ]
