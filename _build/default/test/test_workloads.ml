(* Validation of every benchmark kernel: each suite member is executed at
   reduced scale in the reference interpreter and compared against the
   compiled result under the main strategies — a wrong benchmark can never
   masquerade as a performance result. Layout variants (the native
   wide-element modules) must agree with their Wasm counterparts. *)

module W = Sfi_wasm.Ast
module Interp = Sfi_wasm.Interp
module Strategy = Sfi_core.Strategy
module Kernel = Sfi_workloads.Kernel

let strategies = [ Strategy.native; Strategy.wasm_default; Strategy.segue ]

let small_args (k : Kernel.t) divisor =
  [ Int64.of_int (max 1 (Int64.to_int (List.hd k.Kernel.args) / divisor)) ]

let interp_checksum m entry args =
  let inst = Interp.instantiate m in
  match Interp.invoke inst entry (List.map (fun v -> W.V_i32 (Int64.to_int32 v)) args) with
  | Ok [ W.V_i32 v ] -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
  | Ok _ -> Alcotest.fail "unexpected arity"
  | Error t -> Alcotest.failf "interpreter trap: %s" (Interp.trap_name t)

let check_kernel ?(divisor = 16) ?(vectorize = false) (k : Kernel.t) =
  let args = small_args k divisor in
  let expected = interp_checksum (Lazy.force k.Kernel.wasm) k.Kernel.entry args in
  (* The native-layout variant computes the same function. *)
  (match k.Kernel.native with
  | Some nm ->
      Alcotest.(check int64)
        (k.Kernel.name ^ " native layout agrees")
        expected
        (interp_checksum (Lazy.force nm) k.Kernel.entry args)
  | None -> ());
  List.iter
    (fun strategy ->
      let r = Kernel.run ~vectorize ~strategy { k with Kernel.args } in
      Alcotest.(check int64)
        (Printf.sprintf "%s under %s" k.Kernel.name (Sfi_core.Strategy.name strategy))
        expected r.Kernel.result)
    strategies

let suite_case ?divisor ?vectorize kernels () = List.iter (check_kernel ?divisor ?vectorize) kernels

let test_measurement_fields () =
  let k = Sfi_workloads.Sightglass.random in
  let r = Kernel.run ~strategy:Strategy.segue { k with Kernel.args = [ 2000L ] } in
  Alcotest.(check bool) "cycles" true (r.Kernel.cycles > 0);
  Alcotest.(check bool) "instructions" true (r.Kernel.instructions > 0);
  Alcotest.(check bool) "static code size" true (r.Kernel.code_bytes > 0);
  Alcotest.(check bool) "dynamic fetch >= static" true (r.Kernel.fetched_bytes > r.Kernel.code_bytes / 2);
  Alcotest.(check bool) "simulated time" true (r.Kernel.ns > 0.0)

let test_checksum_guard () =
  (* A kernel with a wrong expected checksum must fail loudly. *)
  let k = { Sfi_workloads.Sightglass.fib2 with Kernel.checksum = Some 1L; args = [ 10L ] } in
  match Kernel.run ~strategy:Strategy.native k with
  | exception Failure msg ->
      Alcotest.(check bool) "mentions checksum" true
        (String.length msg > 0
        && String.split_on_char ' ' msg |> List.exists (fun w -> w = "checksum"))
  | _ -> Alcotest.fail "checksum mismatch must raise"

let test_firefox_scenarios () =
  let font s = Sfi_workloads.Firefox.run_font ~strategy:s ~glyphs:300 () in
  let native = font Strategy.native and segue = font Strategy.segue in
  Alcotest.(check int64) "font checksums agree" native.Sfi_workloads.Firefox.checksum
    segue.Sfi_workloads.Firefox.checksum;
  Alcotest.(check int) "per-glyph invocations" 300 native.Sfi_workloads.Firefox.invocations;
  let xml s = Sfi_workloads.Firefox.run_xml ~strategy:s ~repeats:2 () in
  let nx = xml Strategy.native and sx = xml Strategy.wasm_default in
  Alcotest.(check int64) "xml checksums agree" nx.Sfi_workloads.Firefox.checksum
    sx.Sfi_workloads.Firefox.checksum;
  (* The pre-FSGSBASE fallback costs more (sec 4.1). *)
  let slow = Sfi_workloads.Firefox.run_font ~fsgsbase_available:false ~strategy:Strategy.segue
      ~glyphs:300 ()
  in
  let fast = font Strategy.segue in
  Alcotest.(check bool) "arch_prctl fallback slower" true
    (slow.Sfi_workloads.Firefox.total_ns > fast.Sfi_workloads.Firefox.total_ns)

let tests =
  [
    Alcotest.test_case "spec2006 kernels" `Slow (suite_case Sfi_workloads.Spec2006.all);
    Alcotest.test_case "sightglass kernels" `Slow
      (suite_case ~vectorize:true Sfi_workloads.Sightglass.all);
    Alcotest.test_case "polybench kernels" `Slow
      (suite_case ~divisor:4 Sfi_workloads.Polybench.all);
    Alcotest.test_case "dhrystone kernel" `Slow
      (suite_case ~divisor:64 [ Sfi_workloads.Polybench.dhrystone ]);
    Alcotest.test_case "spec2017 kernels" `Slow (suite_case Sfi_workloads.Spec2017.all);
    Harness.case "measurement fields" test_measurement_fields;
    Harness.case "checksum guard" test_checksum_guard;
    Harness.case "firefox scenarios" test_firefox_scenarios;
  ]
