(* Tests for the x86-64 ISA model: encoding lengths (the substance behind
   Table 2 and the frontend cost model) and AST helpers. *)

module X = Sfi_x86.Ast
module Encode = Sfi_x86.Encode

let len i = Encode.instr_length i

let test_basic_lengths () =
  (* A plain 32-bit register move: opcode + modrm. *)
  Alcotest.(check int) "mov eax, ecx" 2 (len (X.Mov (X.W32, X.Reg X.RAX, X.Reg X.RCX)));
  (* 64-bit adds a REX prefix. *)
  Alcotest.(check int) "mov rax, rcx" 3 (len (X.Mov (X.W64, X.Reg X.RAX, X.Reg X.RCX)));
  (* Extended registers force REX even at 32 bits. *)
  Alcotest.(check int) "mov r10d, ecx" 3 (len (X.Mov (X.W32, X.Reg X.R10, X.Reg X.RCX)));
  Alcotest.(check int) "ret" 1 (len X.Ret);
  Alcotest.(check int) "ud2" 2 (len (X.Trap X.Trap_unreachable));
  Alcotest.(check int) "wrpkru" 3 (len X.Wrpkru);
  Alcotest.(check int) "wrgsbase" 5 (len (X.Wrgsbase X.RAX));
  Alcotest.(check int) "jcc rel32" 6 (len (X.Jcc (X.E, "x")));
  Alcotest.(check int) "label is free" 0 (len (X.Label "x"))

(* The encoding story behind Figure 1 and the astar outlier: the classic
   lowering needs lea + mov; Segue's single mov carries two extra prefix
   bytes but replaces both instructions. *)
let test_segue_encoding_tradeoff () =
  let base_pattern =
    [
      X.Lea (X.W32, X.RDI, X.mem ~base:X.RCX ~index:(X.RDX, X.S4) ~disp:8 ());
      X.Mov (X.W64, X.Reg X.R11, X.Mem (X.mem ~base:X.R14 ~index:(X.RDI, X.S1) ()));
    ]
  in
  let segue_pattern =
    [
      X.Mov
        ( X.W64,
          X.Reg X.R11,
          X.Mem (X.mem ~seg:X.GS ~base:X.RCX ~index:(X.RDX, X.S4) ~disp:8 ~addr32:true ()) );
    ]
  in
  let total p = List.fold_left (fun acc i -> acc + len i) 0 p in
  Alcotest.(check bool) "segue saves bytes overall" true (total segue_pattern < total base_pattern);
  (* ...but the single memory instruction itself got longer. *)
  let plain_mov = X.Mov (X.W64, X.Reg X.R11, X.Mem (X.mem ~base:X.RCX ~index:(X.RDX, X.S4) ~disp:8 ())) in
  Alcotest.(check int) "seg + addr32 prefixes cost 2 bytes" (len plain_mov + 2)
    (total segue_pattern)

let test_native_base_is_free () =
  let plain = X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~base:X.RCX ~disp:8 ())) in
  let native = X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~base:X.RCX ~disp:8 ~native_base:true ()))
  in
  Alcotest.(check int) "native_base adds no prefix bytes" (len plain) (len native)

let test_disp_and_imm_widths () =
  let small = X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~base:X.RCX ~disp:16 ())) in
  let large = X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~base:X.RCX ~disp:4096 ())) in
  Alcotest.(check int) "disp8 vs disp32" 3 (len large - len small);
  let alu8 = X.Alu (X.Add, X.W32, X.Reg X.RAX, X.Imm 5L) in
  let alu32 = X.Alu (X.Add, X.W32, X.Reg X.RAX, X.Imm 500L) in
  Alcotest.(check int) "imm8 vs imm32 in alu" 3 (len alu32 - len alu8);
  let movabs = X.Mov (X.W64, X.Reg X.RAX, X.Imm 0x1_0000_0000L) in
  let mov32 = X.Mov (X.W64, X.Reg X.RAX, X.Imm 5L) in
  Alcotest.(check int) "movabs imm64" 4 (len movabs - len mov32);
  (* RBP-based addressing always needs a displacement byte. *)
  let rbp0 = X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBP ())) in
  let rcx0 = X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RCX ())) in
  Alcotest.(check int) "rbp needs disp8" 1 (len rbp0 - len rcx0);
  (* RSP/R12 bases need a SIB byte. *)
  let rsp0 = X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RSP ())) in
  Alcotest.(check int) "rsp needs sib" 1 (len rsp0 - len rcx0)

let test_layout () =
  let p = [| X.Label "f"; X.Mov (X.W32, X.Reg X.RAX, X.Imm 1L); X.Ret; X.Label "g"; X.Nop |] in
  let offsets = Encode.layout p in
  Alcotest.(check int) "label at 0" 0 offsets.(0);
  Alcotest.(check int) "mov at 0 too" 0 offsets.(1);
  Alcotest.(check int) "ret after mov" (len p.(1)) offsets.(2);
  Alcotest.(check int) "labels share next offset" offsets.(4) offsets.(3);
  Alcotest.(check int) "total" (Encode.program_length p) (offsets.(4) + len p.(4))

let all_conds = [ X.E; X.NE; X.L; X.LE; X.G; X.GE; X.B; X.BE; X.A; X.AE; X.S; X.NS ]

let test_negate_cond () =
  List.iter
    (fun c ->
      Alcotest.(check bool) "negation is an involution" true
        (X.negate_cond (X.negate_cond c) = c);
      Alcotest.(check bool) "negation differs" true (X.negate_cond c <> c))
    all_conds

let test_printer () =
  let check_pp expected instr =
    Alcotest.(check string) expected expected (Format.asprintf "%a" X.pp_instr instr)
  in
  (* Figure 1c, line 14. *)
  check_pp "mov r11, gs:[ecx + edx*4 + 0x8]"
    (X.Mov
       ( X.W64,
         X.Reg X.R11,
         X.Mem (X.mem ~seg:X.GS ~base:X.RCX ~index:(X.RDX, X.S4) ~disp:8 ~addr32:true ()) ));
  (* Figure 1b, line 12. *)
  check_pp "lea edi, [ecx + edx*4 + 0x8]"
    (X.Lea (X.W32, X.RDI, X.mem ~base:X.RCX ~index:(X.RDX, X.S4) ~disp:8 ~addr32:true ()));
  check_pp "wrgsbase rax" (X.Wrgsbase X.RAX);
  check_pp "idiv dword ptr [rax]" (X.Div (X.W32, true, X.Mem (X.mem ~base:X.RAX ())))

let test_helpers () =
  Alcotest.(check bool) "uses_segment" true
    (X.uses_segment (X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~seg:X.GS ~base:X.RCX ()))));
  Alcotest.(check bool) "no segment" false
    (X.uses_segment (X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~base:X.RCX ()))));
  Alcotest.(check int) "mem_operands counts" 1
    (List.length (X.mem_operands (X.Push (X.Mem (X.mem ~base:X.RAX ())))));
  Alcotest.(check int) "lea has no memory access" 0
    (List.length (X.mem_operands (X.Lea (X.W64, X.RAX, X.mem ~base:X.RCX ()))));
  List.iter
    (fun r -> Alcotest.(check bool) "gpr index roundtrip" true (X.gpr_of_index (X.gpr_index r) = r))
    X.all_gprs

let prop_lengths_positive =
  QCheck.Test.make ~name:"every non-label instruction encodes to >= 1 byte" ~count:200
    (QCheck.make
       (QCheck.Gen.oneofl
          [
            X.Nop; X.Ret; X.Wrpkru; X.Rdpkru; X.Cqo X.W64;
            X.Mov (X.W64, X.Reg X.R13, X.Imm 123456789L);
            X.Alu (X.Xor, X.W32, X.Reg X.RAX, X.Reg X.RAX);
            X.Vload (X.XMM 0, X.mem ~base:X.RSI ());
            X.Hostcall 3; X.Jmp "x"; X.Push (X.Imm 1L); X.Pop X.R9;
          ]))
    (fun i -> Encode.instr_length i >= 1)

let tests =
  [
    Harness.case "basic lengths" test_basic_lengths;
    Harness.case "segue encoding tradeoff" test_segue_encoding_tradeoff;
    Harness.case "native_base free" test_native_base_is_free;
    Harness.case "disp and imm widths" test_disp_and_imm_widths;
    Harness.case "layout" test_layout;
    Harness.case "negate_cond" test_negate_cond;
    Harness.case "printer" test_printer;
    Harness.case "helpers" test_helpers;
    QCheck_alcotest.to_alcotest prop_lengths_positive;
  ]
