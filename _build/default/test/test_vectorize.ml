(* Tests for the WAMR-style vectorizer (§4.2): pattern coverage, semantic
   preservation, and the Segue interaction that causes Figure 4's
   regressions. *)

module W = Sfi_wasm.Ast
module Vectorize = Sfi_core.Vectorize
module Strategy = Sfi_core.Strategy
module Interp = Sfi_wasm.Interp
open Sfi_wasm.Builder

(* copy(dst, src, len) as the canonical byte loop, and fill(dst, v, len). *)
let loops_module () =
  let b = create ~memory_pages:2 () in
  data b ~offset:0 (String.init 1024 (fun i -> Char.chr ((i * 31) land 0xFF)));
  let copy = declare b "copy" ~params:[ W.I32; W.I32; W.I32 ] ~results:[] () in
  define b copy ~locals:[ W.I32 ]
    (for_loop ~i:3 ~start:[ i32 0 ] ~stop:[ get 2 ]
       [ get 0; get 3; add; get 1; get 3; add; load8_u (); store8 () ]);
  let fill = declare b "fill" ~params:[ W.I32; W.I32; W.I32 ] ~results:[] () in
  define b fill ~locals:[ W.I32 ]
    (for_loop ~i:3 ~start:[ i32 0 ] ~stop:[ get 2 ]
       [ get 0; get 3; add; get 1; store8 () ]);
  (* A similar-looking loop with a stride-2 step must NOT match. *)
  let strided = declare b "strided" ~params:[ W.I32; W.I32 ] ~results:[] () in
  define b strided ~locals:[ W.I32 ]
    (for_loop ~i:2 ~start:[ i32 0 ] ~stop:[ get 1 ] ~step:2
       [ get 0; get 2; add; i32 1; store8 () ]);
  (* And a loop whose store value depends on the index must not match. *)
  let gen = declare b "gen" ~params:[ W.I32; W.I32 ] ~results:[] () in
  define b gen ~locals:[ W.I32 ]
    (for_loop ~i:2 ~start:[ i32 0 ] ~stop:[ get 1 ]
       [ get 0; get 2; add; get 2; store8 () ]);
  build b

let test_pattern_coverage () =
  let m = loops_module () in
  Alcotest.(check int) "copy + fill match under base-reg" 2
    (Vectorize.loops_vectorized Strategy.wasm_default m);
  Alcotest.(check int) "loads-only Segue keeps the pass" 2
    (Vectorize.loops_vectorized Strategy.segue_loads_only m);
  Alcotest.(check int) "full Segue disables the pass (sec 4.2)" 0
    (Vectorize.loops_vectorized Strategy.segue m)

let run_export m name args =
  let inst = Interp.instantiate m in
  match Interp.invoke inst name (List.map (fun v -> W.V_i32 (Int32.of_int v)) args) with
  | Ok _ -> inst
  | Error t -> Alcotest.failf "trap: %s" (Interp.trap_name t)

let check_same_memory name m1 m2 export args =
  let i1 = run_export m1 export args in
  let i2 = run_export m2 export args in
  Alcotest.(check bool) name true
    (String.equal
       (Interp.read_memory i1 ~addr:0 ~len:4096)
       (Interp.read_memory i2 ~addr:0 ~len:4096))

let test_semantics_preserved () =
  let m = loops_module () in
  let v = Vectorize.apply Strategy.wasm_default m in
  (* copy forward, copy with len 0, fill, and the non-matching loops *)
  check_same_memory "copy" m v "copy" [ 2048; 0; 512 ];
  check_same_memory "copy empty" m v "copy" [ 2048; 0; 0 ];
  check_same_memory "fill" m v "fill" [ 100; 0xAB; 333 ];
  check_same_memory "strided untouched" m v "strided" [ 300; 64 ];
  check_same_memory "gen untouched" m v "gen" [ 700; 64 ]

let prop_copy_equivalence =
  QCheck.Test.make ~name:"vectorized copy == byte loop for non-overlapping ranges" ~count:100
    QCheck.(triple (int_bound 1000) (int_bound 1000) (int_bound 500))
    (fun (dst_off, src_off, len) ->
      (* keep ranges disjoint: dst in [2048, 3048], src in [0, 1500] *)
      let m = loops_module () in
      let v = Vectorize.apply Strategy.wasm_default m in
      let run m =
        let inst = run_export m "copy" [ 2048 + dst_off; src_off; len ] in
        Interp.read_memory inst ~addr:2048 ~len:2048
      in
      String.equal (run m) (run v))

let tests =
  [
    Harness.case "pattern coverage" test_pattern_coverage;
    Harness.case "semantics preserved" test_semantics_preserved;
    QCheck_alcotest.to_alcotest prop_copy_equivalence;
  ]
