lib/util/vec.mli:
