lib/util/prng.mli:
