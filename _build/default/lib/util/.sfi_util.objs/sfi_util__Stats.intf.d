lib/util/stats.mli:
