lib/util/table.mli:
