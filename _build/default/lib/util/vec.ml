type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }
let length t = t.len

let grow t =
  let cap = max 16 (2 * Array.length t.data) in
  let data = Array.make cap t.data.(0) in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then
    if t.len = 0 then t.data <- Array.make 16 x else grow t;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  t.len - 1

let check t i = if i < 0 || i >= t.len then invalid_arg "Vec: index out of bounds"

let get t i =
  check t i;
  t.data.(i)

let set t i x =
  check t i;
  t.data.(i) <- x

let append_array t a = Array.iter (fun x -> ignore (push t x)) a
let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done
