(** Byte-size constants and human-readable formatting.

    Address-space arithmetic in the pool allocator and ColorGuard is done in
    plain [int]s: OCaml's native ints are 63-bit on 64-bit platforms, which
    comfortably covers the 47-bit user address space the paper targets. *)

val kib : int
val mib : int
val gib : int

val wasm_page_size : int
(** 64 KiB — the Wasm page granularity (Table 1, invariants 7 and 8). *)

val os_page_size : int
(** 4 KiB — the OS page granularity (Table 1, invariant 9). *)

val user_address_space_bits : int
(** 47 — user-space virtual address bits on x86-64 (the paper's scaling
    arithmetic: at most 2^47 / 2^33 = 16K conventional Wasm instances). *)

val user_address_space_bytes : int
(** [2 ^ user_address_space_bits]. *)

val is_aligned : int -> int -> bool
(** [is_aligned x a] is true iff [x] is a multiple of [a]. Raises
    [Invalid_argument] if [a <= 0]. *)

val align_up : int -> int -> int
(** [align_up x a] rounds [x] up to the next multiple of [a]. *)

val align_down : int -> int -> int
(** [align_down x a] rounds [x] down to a multiple of [a]. *)

val pp_bytes : Format.formatter -> int -> unit
(** Render a byte count with a binary suffix, e.g. "408 MiB", "8 GiB". *)

val to_string : int -> string
(** [to_string n] is [Format.asprintf "%a" pp_bytes n]. *)
