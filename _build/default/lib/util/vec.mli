(** A minimal growable array (OCaml 5.1's stdlib has none).

    Used by the SFI compiler to accumulate instructions while retaining
    random access for back-patching (frame sizes are known only after a
    function body is lowered). *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> int
(** Appends and returns the element's index. *)

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val append_array : 'a t -> 'a array -> unit
val to_array : 'a t -> 'a array
val iter : ('a -> unit) -> 'a t -> unit
