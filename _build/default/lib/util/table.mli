(** Plain-text table rendering for the experiment harness.

    Every experiment in [bench/main.ml] prints the rows/series the paper's
    corresponding table or figure reports; this module keeps that output
    aligned and uniform. *)

type t

val create : headers:string list -> t
(** A table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append one row. Rows shorter than the header are right-padded with empty
    cells; longer rows raise [Invalid_argument]. *)

val render : t -> string
(** Render with ASCII column separators, columns sized to content. *)

val print : t -> unit
(** [print t] writes [render t] to stdout, followed by a newline. *)

val cell_float : ?decimals:int -> float -> string
(** Format a float cell (default 2 decimals). *)

val cell_pct : ?decimals:int -> float -> string
(** Format a percentage cell with a [%] suffix and explicit sign. *)
