let kib = 1024
let mib = 1024 * kib
let gib = 1024 * mib
let wasm_page_size = 64 * kib
let os_page_size = 4 * kib
let user_address_space_bits = 47
let user_address_space_bytes = 1 lsl user_address_space_bits

let is_aligned x a =
  if a <= 0 then invalid_arg "Units.is_aligned: non-positive alignment";
  x mod a = 0

let align_up x a =
  if a <= 0 then invalid_arg "Units.align_up: non-positive alignment";
  (x + a - 1) / a * a

let align_down x a =
  if a <= 0 then invalid_arg "Units.align_down: non-positive alignment";
  x / a * a

let pp_bytes ppf n =
  let render unit_bytes name =
    if n mod unit_bytes = 0 then Format.fprintf ppf "%d %s" (n / unit_bytes) name
    else Format.fprintf ppf "%.2f %s" (float_of_int n /. float_of_int unit_bytes) name
  in
  if n >= gib then render gib "GiB"
  else if n >= mib then render mib "MiB"
  else if n >= kib then render kib "KiB"
  else Format.fprintf ppf "%d B" n

let to_string n = Format.asprintf "%a" pp_bytes n
