type t = { headers : string list; mutable rows : string list list }

let create ~headers = { headers; rows = [] }

let add_row t row =
  let width = List.length t.headers in
  let len = List.length row in
  if len > width then invalid_arg "Table.add_row: row wider than header";
  let padded = row @ List.init (width - len) (fun _ -> "") in
  t.rows <- padded :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let record_widths row =
    List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell) row
  in
  List.iter record_widths all;
  let buf = Buffer.create 1024 in
  let pad cell w = cell ^ String.make (w - String.length cell) ' ' in
  let right_trim s =
    let n = ref (String.length s) in
    while !n > 0 && s.[!n - 1] = ' ' do decr n done;
    String.sub s 0 !n
  in
  let emit_row row =
    let cells = List.mapi (fun i cell -> pad cell widths.(i)) row in
    Buffer.add_string buf (right_trim (String.concat " | " cells));
    Buffer.add_char buf '\n'
  in
  let rule () =
    let parts = Array.to_list (Array.map (fun w -> String.make w '-') widths) in
    Buffer.add_string buf (String.concat "-+-" parts);
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  rule ();
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let cell_pct ?(decimals = 1) x =
  if x >= 0.0 then Printf.sprintf "+%.*f%%" decimals x else Printf.sprintf "%.*f%%" decimals x
