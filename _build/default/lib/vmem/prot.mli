(** Page protections and memory faults. *)

type t = { read : bool; write : bool; exec : bool }

val none : t
(** PROT_NONE — how guard regions are mapped. *)

val rw : t
val r : t
val rx : t

val pp : Format.formatter -> t -> unit
(** e.g. "rw-", "---". *)

(** Why a memory access failed. The machine converts these into SFI traps;
    the distinction matters to the tests: ColorGuard turns would-be
    guard-region hits ([Unmapped]/[Prot_violation]) into [Pkey_violation]s
    with identical trapping behaviour (§3.2). *)
type fault =
  | Unmapped               (** no VMA covers the address *)
  | Prot_violation         (** VMA present but permission (r/w) missing *)
  | Pkey_violation         (** MPK color not enabled in PKRU *)
  | Mte_tag_mismatch       (** MTE pointer/memory tag disagreement *)

val fault_name : fault -> string
