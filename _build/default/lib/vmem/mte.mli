(** ARM MTE (Memory Tagging Extension) model — §7.

    MTE colors 16-byte "granules" with 4-bit tags held in dedicated tag
    memory; a pointer's top bits (63:60) must match the tag of the granule
    it touches. Two properties drive the paper's ARM observations:

    - user code can set at most {e two} granules per instruction ([st2g]),
      so bulk (re)tagging a linear memory is slow without kernel help
      (Observation 1);
    - [madvise(MADV_DONTNEED)] discards tags along with data, so recycling
      a slot forces a full retag, unlike MPK where colors live in PTEs and
      survive (Observation 2).

    This module tracks tags sparsely and counts tagging instructions so the
    experiment harness can convert them into time. *)

type t

val granule_size : int
(** 16 bytes. *)

val create : unit -> t

val tag_of : t -> addr:int -> int
(** Current tag of the granule containing [addr] (0 when never tagged). *)

val st2g : t -> addr:int -> tag:int -> unit
(** Tag the two granules starting at the granule containing [addr]; counts
    as one user tagging instruction. [tag] must be in [0, 15]. *)

val tag_range_user : t -> addr:int -> len:int -> tag:int -> int
(** Tag a range using only user-level [st2g] instructions; returns the
    number of instructions executed (= granules / 2, rounded up). *)

val check : t -> addr:int -> ptr_tag:int -> bool
(** Hardware check on an access: pointer tag vs granule tag. *)

val discard_range : t -> addr:int -> len:int -> int
(** Model of [madvise(MADV_DONTNEED)]'s effect on tags: clears them to 0.
    Returns the number of granules whose tags were discarded (the kernel
    pays per-granule work to clear tag storage, which is why deallocation
    slows from 29 µs to 377 µs per instance). *)

val count_mismatched : t -> addr:int -> len:int -> tag:int -> int
(** Granules in the range whose tag differs from [tag] — what a
    tag-preserving recycle would still need to fix. *)

val user_tag_instructions : t -> int
(** Total [st2g]-style instructions executed so far. *)

val reset_counters : t -> unit
