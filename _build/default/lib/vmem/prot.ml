type t = { read : bool; write : bool; exec : bool }

let none = { read = false; write = false; exec = false }
let rw = { read = true; write = true; exec = false }
let r = { read = true; write = false; exec = false }
let rx = { read = true; write = false; exec = true }

let pp ppf t =
  Format.fprintf ppf "%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.exec then 'x' else '-')

type fault = Unmapped | Prot_violation | Pkey_violation | Mte_tag_mismatch

let fault_name = function
  | Unmapped -> "unmapped"
  | Prot_violation -> "protection violation"
  | Pkey_violation -> "pkey violation"
  | Mte_tag_mismatch -> "mte tag mismatch"
