lib/vmem/mte.ml: Hashtbl Printf
