lib/vmem/mte.mli:
