lib/vmem/mpk.mli: Format
