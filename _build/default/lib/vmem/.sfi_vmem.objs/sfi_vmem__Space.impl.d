lib/vmem/space.ml: Bytes Char Hashtbl Int Int32 Int64 Map Mpk Prot
