lib/vmem/tlb.mli:
