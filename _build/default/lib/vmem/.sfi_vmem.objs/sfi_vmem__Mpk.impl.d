lib/vmem/mpk.ml: Format List Printf String
