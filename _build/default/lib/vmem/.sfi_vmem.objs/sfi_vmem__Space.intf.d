lib/vmem/space.mli: Mpk Prot
