(** Memory Protection Keys (Intel MPK / ARM POE model).

    A 4-bit key ("color") lives in each page's metadata; the per-thread
    [pkru] register holds two bits per key — access-disable (AD) and
    write-disable (WD). Updating pkru is an unprivileged ~40-cycle
    instruction ([wrpkru]), which is what makes ColorGuard's per-transition
    color switch cheap (§3.2, §6.4.1). *)

type pkru = int
(** 32-bit PKRU image: bit [2k] = AD for key [k], bit [2k+1] = WD. *)

val num_keys : int
(** 16 keys; key 0 is the default color of all non-sandbox memory. *)

val max_usable_keys : int
(** 15 — every key except the default 0 (the paper's "up to 15x"). *)

val default_key : int

val allow_all : pkru
(** No restrictions (pkru = 0). *)

val allow_only : int list -> pkru
(** [allow_only keys] permits read+write exactly on [keys] (key 0 should
    normally be included so runtime memory stays reachable) and disables
    access to every other key. Raises [Invalid_argument] on keys outside
    [0, 15]. *)

val allows : pkru -> key:int -> write:bool -> bool
(** Permission check the hardware performs on every data access to a page
    with color [key]. MPK also blocks speculative accesses, so this is the
    complete isolation story for loads (§3.2). *)

val pp : Format.formatter -> pkru -> unit
