type pkru = int

let num_keys = 16
let max_usable_keys = 15
let default_key = 0
let allow_all = 0

let check_key k =
  if k < 0 || k >= num_keys then invalid_arg (Printf.sprintf "Mpk: key %d out of range" k)

let allow_only keys =
  List.iter check_key keys;
  (* Start fully restricted (AD set on every key), then clear the bits for
     the permitted keys. *)
  let restrict_all = ref 0 in
  for k = 0 to num_keys - 1 do
    restrict_all := !restrict_all lor (0b11 lsl (2 * k))
  done;
  List.fold_left (fun pkru k -> pkru land lnot (0b11 lsl (2 * k))) !restrict_all keys

let allows pkru ~key ~write =
  check_key key;
  let ad = pkru land (1 lsl (2 * key)) <> 0 in
  let wd = pkru land (1 lsl ((2 * key) + 1)) <> 0 in
  (not ad) && not (write && wd)

let pp ppf pkru =
  let allowed = ref [] in
  for k = num_keys - 1 downto 0 do
    if allows pkru ~key:k ~write:false then allowed := k :: !allowed
  done;
  Format.fprintf ppf "pkru{allow=%s}" (String.concat "," (List.map string_of_int !allowed))
