let granule_size = 16

type t = {
  tags : (int, int) Hashtbl.t; (* granule index -> tag; absent = 0 *)
  mutable user_instrs : int;
}

let create () = { tags = Hashtbl.create 1024; user_instrs = 0 }

let granule_of addr = addr / granule_size

let tag_of t ~addr =
  match Hashtbl.find_opt t.tags (granule_of addr) with Some tag -> tag | None -> 0

let set_granule t g tag = if tag = 0 then Hashtbl.remove t.tags g else Hashtbl.replace t.tags g tag

let check_tag_value tag =
  if tag < 0 || tag > 15 then invalid_arg (Printf.sprintf "Mte: tag %d out of range" tag)

let st2g t ~addr ~tag =
  check_tag_value tag;
  let g = granule_of addr in
  set_granule t g tag;
  set_granule t (g + 1) tag;
  t.user_instrs <- t.user_instrs + 1

let tag_range_user t ~addr ~len ~tag =
  check_tag_value tag;
  if len <= 0 then 0
  else begin
    let first = granule_of addr and last = granule_of (addr + len - 1) in
    let before = t.user_instrs in
    let g = ref first in
    while !g <= last do
      st2g t ~addr:(!g * granule_size) ~tag;
      g := !g + 2
    done;
    t.user_instrs - before
  end

let check t ~addr ~ptr_tag = tag_of t ~addr = ptr_tag

let discard_range t ~addr ~len =
  if len <= 0 then 0
  else begin
    let first = granule_of addr and last = granule_of (addr + len - 1) in
    for g = first to last do
      Hashtbl.remove t.tags g
    done;
    (* Even untagged granules cost the kernel a visit; report the full
       granule count so time models scale with the range, not occupancy. *)
    last - first + 1
  end

let count_mismatched t ~addr ~len ~tag =
  check_tag_value tag;
  if len <= 0 then 0
  else begin
    let first = granule_of addr and last = granule_of (addr + len - 1) in
    let n = ref 0 in
    for g = first to last do
      let current = match Hashtbl.find_opt t.tags g with Some v -> v | None -> 0 in
      if current <> tag then incr n
    done;
    !n
  end

let user_tag_instructions t = t.user_instrs
let reset_counters t = t.user_instrs <- 0
