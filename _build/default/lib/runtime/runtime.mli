(** The Wasm engine: instances, memory management, transitions.

    Ties the pieces together the way a production runtime does (§4, §5):
    compiled code from {!Sfi_core.Codegen} is loaded into a
    {!Sfi_machine.Machine}; each instance gets an instance context (vmctx,
    addressed through [%fs]), a host stack, and a linear-memory slot —
    either a private 4 GiB + guard reservation ([`Simple]) or a slot in a
    ColorGuard-striped pool ([`Pool]).

    Transitions into and out of an instance model §6.4.1: entering executes
    the compiled entry sequence (segment-base write, and under ColorGuard
    the [wrpkru] domain switch) plus a fixed overhead for the stack switch
    and exception-handler bookkeeping; leaving restores the host PKRU
    (charging the second [wrpkru]) and the same fixed overhead. *)

type engine
type instance

type trap = Sfi_x86.Ast.trap_kind

type allocator =
  | Simple of { reservation : int }
      (** one private reservation per instance (base stride
          [reservation + 4 GiB] guard), the classic layout of §2 *)
  | Pool of Sfi_core.Pool.layout
      (** Wasmtime-style pooling, optionally ColorGuard-striped *)

val slab_base : int
(** Base address of the linear-memory slab (32 GiB). Slot 0's heap starts
    here; the LFI backend overlays its code region on it so one register
    can base both code and data. *)

val hostcall_halt : int
(** Hostcall id that terminates execution (used by LFI's halt
    trampoline). *)

val create_engine :
  ?cost:Sfi_machine.Cost.t ->
  ?tlb:Sfi_vmem.Tlb.config ->
  ?fsgsbase_available:bool ->
  ?max_map_count:int ->
  ?allocator:allocator ->
  ?transition_overhead_cycles:int ->
  ?code_base:int ->
  Sfi_core.Codegen.compiled ->
  engine
(** Loads the program, maps the indirect-call tables, and prepares the
    allocator. [allocator] defaults to [Simple] with a 4 GiB reservation;
    [transition_overhead_cycles] (default 55 per direction, calibrated to
    the paper's 30.34 ns baseline at 2.2 GHz) models the stack-switch,
    exception-handler and ABI work of a transition besides the instructions
    the entry sequence itself executes (sec 6.4.1). *)

val machine : engine -> Sfi_machine.Machine.t
val space : engine -> Sfi_vmem.Space.t
val compiled : engine -> Sfi_core.Codegen.compiled

val register_import : engine -> string -> (instance -> int64 array -> int64) -> unit
(** Provide a host (WASI-style) function for a module import; arity comes
    from the import's type. Calls transition out of the sandbox (the
    machine charges hostcall cost). *)

(** {1 Instances} *)

val instantiate : engine -> instance
(** Allocate the next free slot, map the initial linear memory (colored
    under a striped pool), write the vmctx, copy data segments, and run the
    start function if any. Raises [Failure] when the pool is exhausted or
    mapping fails. *)

val release : instance -> unit
(** Recycle the instance's slot: [madvise(MADV_DONTNEED)] the memory (MPK
    colors survive in the PTEs — the §7 contrast with MTE) and return it to
    the allocator's free list. *)

val instance_id : instance -> int
val heap_base : instance -> int
val color : instance -> int
val memory_pages : instance -> int

val read_memory : instance -> addr:int -> len:int -> string
val write_memory : instance -> addr:int -> string -> unit

(** {1 Calls} *)

val invoke : ?fuel:int -> instance -> string -> int64 list -> (int64, trap) result
(** Call an export; the result is the raw 64-bit return register (0 for
    void functions). Raises [Not_found] for unknown exports. *)

(** {2 Epoch-style preemptible calls (§6.4.3)} *)

type activation

val start_call : instance -> string -> int64 list -> activation
val step : activation -> fuel:int -> [ `Done of int64 | `Trapped of trap | `More ]
(** Run up to [fuel] instructions of the activation, saving/restoring the
    machine context around it — the user-level context switch. [`More]
    means the epoch expired; call {!step} again later. *)

(** {1 Metrics} *)

val transitions : engine -> int
(** One-way transitions performed (in + out). *)

val elapsed_ns : engine -> float
val reset_metrics : engine -> unit
