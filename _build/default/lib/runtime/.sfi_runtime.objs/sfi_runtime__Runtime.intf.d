lib/runtime/runtime.mli: Sfi_core Sfi_machine Sfi_vmem Sfi_x86
