lib/runtime/runtime.ml: Array Bytes Hashtbl Int32 Int64 List Sfi_core Sfi_machine Sfi_util Sfi_vmem Sfi_wasm Sfi_x86
