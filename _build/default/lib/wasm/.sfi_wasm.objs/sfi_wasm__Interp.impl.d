lib/wasm/interp.ml: Array Ast Bytes Char Hashtbl Int32 Int64 List Printf String Validate
