lib/wasm/interp.mli: Ast
