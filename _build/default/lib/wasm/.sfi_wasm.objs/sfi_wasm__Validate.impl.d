lib/wasm/validate.ml: Array Ast Format List String
