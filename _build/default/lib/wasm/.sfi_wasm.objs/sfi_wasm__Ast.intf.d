lib/wasm/ast.mli: Format
