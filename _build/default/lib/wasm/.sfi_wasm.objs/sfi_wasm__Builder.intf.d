lib/wasm/builder.mli: Ast
