lib/wasm/ast.ml: Array Format Int32 Int64 List Printf String
