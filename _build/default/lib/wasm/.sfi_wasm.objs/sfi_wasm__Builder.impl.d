lib/wasm/builder.ml: Array Ast Int32 Int64 List Printf Validate
