type valty = I32 | I64

let valty_name = function I32 -> "i32" | I64 -> "i64"

type value = V_i32 of int32 | V_i64 of int64

let value_ty = function V_i32 _ -> I32 | V_i64 _ -> I64

let pp_value ppf = function
  | V_i32 v -> Format.fprintf ppf "%ld:i32" v
  | V_i64 v -> Format.fprintf ppf "%Ld:i64" v

let value_equal a b =
  match (a, b) with
  | V_i32 x, V_i32 y -> Int32.equal x y
  | V_i64 x, V_i64 y -> Int64.equal x y
  | V_i32 _, V_i64 _ | V_i64 _, V_i32 _ -> false

type functype = { params : valty list; results : valty list }

let pp_functype ppf { params; results } =
  let names tys = String.concat " " (List.map valty_name tys) in
  Format.fprintf ppf "[%s] -> [%s]" (names params) (names results)

type sx = Signed | Unsigned
type pack = P8 | P16 | P32
type memarg = { offset : int }

type binop =
  | Add | Sub | Mul
  | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor
  | Shl | Shr_s | Shr_u
  | Rotl | Rotr

type relop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u

type cvtop = I32_wrap_i64 | I64_extend_i32_s | I64_extend_i32_u

type blockty = valty option

type instr =
  | Unreachable
  | Nop
  | Const of value
  | Binop of valty * binop
  | Relop of valty * relop
  | Eqz of valty
  | Cvt of cvtop
  | Clz of valty
  | Ctz of valty
  | Popcnt of valty
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load of valty * (pack * sx) option * memarg
  | Store of valty * pack option * memarg
  | Memory_size
  | Memory_grow
  | Memory_copy
  | Memory_fill
  | Block of blockty * instr list
  | Loop of blockty * instr list
  | If of blockty * instr list * instr list
  | Br of int
  | Br_if of int
  | Br_table of int list * int
  | Return
  | Call of int
  | Call_indirect of int

type func = { ftype : int; locals : valty list; body : instr list; fname : string }

type memory = { min_pages : int; max_pages : int option }

let page_size = 65536

type global = { gtype : valty; gmutable : bool; ginit : value }

type data_segment = { doffset : int; dbytes : string }

type import = { iname : string; itype : int }

type module_ = {
  types : functype array;
  imports : import array;
  funcs : func array;
  memory : memory option;
  globals : global array;
  table : int array;
  data : data_segment list;
  exports : (string * int) list;
  start : int option;
}

let empty_module =
  {
    types = [||];
    imports = [||];
    funcs = [||];
    memory = None;
    globals = [||];
    table = [||];
    data = [];
    exports = [];
    start = None;
  }

let func_index_of_export m name = List.assoc name m.exports

let num_funcs m = Array.length m.imports + Array.length m.funcs

let type_of_func m idx =
  let nimports = Array.length m.imports in
  if idx < 0 || idx >= num_funcs m then
    invalid_arg (Printf.sprintf "Ast.type_of_func: index %d out of range" idx)
  else if idx < nimports then m.types.(m.imports.(idx).itype)
  else m.types.(m.funcs.(idx - nimports).ftype)

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Div_s -> "div_s" | Div_u -> "div_u" | Rem_s -> "rem_s" | Rem_u -> "rem_u"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | Shr_s -> "shr_s" | Shr_u -> "shr_u"
  | Rotl -> "rotl" | Rotr -> "rotr"

let relop_name = function
  | Eq -> "eq" | Ne -> "ne"
  | Lt_s -> "lt_s" | Lt_u -> "lt_u" | Gt_s -> "gt_s" | Gt_u -> "gt_u"
  | Le_s -> "le_s" | Le_u -> "le_u" | Ge_s -> "ge_s" | Ge_u -> "ge_u"

let pp_instr ppf = function
  | Unreachable -> Format.pp_print_string ppf "unreachable"
  | Nop -> Format.pp_print_string ppf "nop"
  | Const v -> Format.fprintf ppf "%s.const %a" (valty_name (value_ty v)) pp_value v
  | Binop (ty, op) -> Format.fprintf ppf "%s.%s" (valty_name ty) (binop_name op)
  | Relop (ty, op) -> Format.fprintf ppf "%s.%s" (valty_name ty) (relop_name op)
  | Eqz ty -> Format.fprintf ppf "%s.eqz" (valty_name ty)
  | Cvt I32_wrap_i64 -> Format.pp_print_string ppf "i32.wrap_i64"
  | Cvt I64_extend_i32_s -> Format.pp_print_string ppf "i64.extend_i32_s"
  | Cvt I64_extend_i32_u -> Format.pp_print_string ppf "i64.extend_i32_u"
  | Clz ty -> Format.fprintf ppf "%s.clz" (valty_name ty)
  | Ctz ty -> Format.fprintf ppf "%s.ctz" (valty_name ty)
  | Popcnt ty -> Format.fprintf ppf "%s.popcnt" (valty_name ty)
  | Drop -> Format.pp_print_string ppf "drop"
  | Select -> Format.pp_print_string ppf "select"
  | Local_get i -> Format.fprintf ppf "local.get %d" i
  | Local_set i -> Format.fprintf ppf "local.set %d" i
  | Local_tee i -> Format.fprintf ppf "local.tee %d" i
  | Global_get i -> Format.fprintf ppf "global.get %d" i
  | Global_set i -> Format.fprintf ppf "global.set %d" i
  | Load (ty, None, { offset }) -> Format.fprintf ppf "%s.load offset=%d" (valty_name ty) offset
  | Load (ty, Some (p, s), { offset }) ->
      let bits = match p with P8 -> 8 | P16 -> 16 | P32 -> 32 in
      let sx = match s with Signed -> "s" | Unsigned -> "u" in
      Format.fprintf ppf "%s.load%d_%s offset=%d" (valty_name ty) bits sx offset
  | Store (ty, None, { offset }) -> Format.fprintf ppf "%s.store offset=%d" (valty_name ty) offset
  | Store (ty, Some p, { offset }) ->
      let bits = match p with P8 -> 8 | P16 -> 16 | P32 -> 32 in
      Format.fprintf ppf "%s.store%d offset=%d" (valty_name ty) bits offset
  | Memory_size -> Format.pp_print_string ppf "memory.size"
  | Memory_grow -> Format.pp_print_string ppf "memory.grow"
  | Memory_copy -> Format.pp_print_string ppf "memory.copy"
  | Memory_fill -> Format.pp_print_string ppf "memory.fill"
  | Block (_, body) -> Format.fprintf ppf "block ... (%d instrs)" (List.length body)
  | Loop (_, body) -> Format.fprintf ppf "loop ... (%d instrs)" (List.length body)
  | If (_, t, e) ->
      Format.fprintf ppf "if ... (%d then, %d else)" (List.length t) (List.length e)
  | Br n -> Format.fprintf ppf "br %d" n
  | Br_if n -> Format.fprintf ppf "br_if %d" n
  | Br_table (targets, default) ->
      Format.fprintf ppf "br_table [%s] %d"
        (String.concat " " (List.map string_of_int targets))
        default
  | Return -> Format.pp_print_string ppf "return"
  | Call i -> Format.fprintf ppf "call %d" i
  | Call_indirect i -> Format.fprintf ppf "call_indirect (type %d)" i


