(** A small embedded DSL for constructing mini-Wasm modules.

    The benchmark kernels (SPEC-like, Sightglass-like, Firefox library
    workloads — {!Sfi_workloads}) are written against this interface. It
    keeps index bookkeeping out of kernel code: functions are declared
    first (yielding handles usable in [call] even recursively), then
    defined; the module is assembled by {!build}, which validates it.

    Imports must be declared before any function, mirroring Wasm's index
    space where imports come first. *)

type t
(** Module under construction. *)

type fn
(** Handle to a declared (or imported) function. *)

val create : ?memory_pages:int -> ?max_memory_pages:int -> unit -> t
(** [memory_pages] (64 KiB each) sets the initial linear memory; omit for a
    memory-less module. *)

val import : t -> string -> params:Ast.valty list -> results:Ast.valty list -> fn
(** Declare a host (WASI-style) import. Must precede all {!declare} calls. *)

val declare :
  t -> string -> ?export:bool -> params:Ast.valty list -> results:Ast.valty list -> unit -> fn
(** Declare a function; [export] defaults to true. Its body is supplied
    later by {!define}, allowing (mutual) recursion. *)

val define : t -> fn -> ?locals:Ast.valty list -> Ast.instr list -> unit
(** Attach a body. Raises [Invalid_argument] if already defined or if [fn]
    is an import. *)

val global : t -> Ast.valty -> ?mutable_:bool -> Ast.value -> int
(** Add a global; returns its index. [mutable_] defaults to true. *)

val data : t -> offset:int -> string -> unit
(** Add a data segment. *)

val elem : t -> fn list -> unit
(** Populate the function table (for [call_indirect]); appends entries and
    returns nothing — element indices are allocation order. *)

val fn_index : fn -> int
(** The function's index in the final module (valid immediately: imports
    are numbered first, then functions in declaration order). *)

val build : t -> Ast.module_
(** Assemble and validate. Raises [Invalid_argument] on undefined functions
    or validation errors. *)

(** {1 Instruction shorthands}

    Thin wrappers over {!Ast.instr}; arguments are OCaml ints where the
    intent is obvious. *)

val i32 : int -> Ast.instr
val i32' : int32 -> Ast.instr
val i64 : int -> Ast.instr
val i64' : int64 -> Ast.instr

val get : int -> Ast.instr
val set : int -> Ast.instr
val tee : int -> Ast.instr
val gget : int -> Ast.instr
val gset : int -> Ast.instr

val add : Ast.instr
val sub : Ast.instr
val mul : Ast.instr
val div_s : Ast.instr
val div_u : Ast.instr
val rem_s : Ast.instr
val rem_u : Ast.instr
val band : Ast.instr
val bor : Ast.instr
val bxor : Ast.instr
val shl : Ast.instr
val shr_s : Ast.instr
val shr_u : Ast.instr
val rotl : Ast.instr

val add64 : Ast.instr
val sub64 : Ast.instr
val mul64 : Ast.instr
val band64 : Ast.instr
val bor64 : Ast.instr
val bxor64 : Ast.instr
val shl64 : Ast.instr
val shr_u64 : Ast.instr
val shr_s64 : Ast.instr

val eq : Ast.instr
val ne : Ast.instr
val lt_s : Ast.instr
val lt_u : Ast.instr
val gt_s : Ast.instr
val gt_u : Ast.instr
val le_s : Ast.instr
val le_u : Ast.instr
val ge_s : Ast.instr
val ge_u : Ast.instr
val eqz : Ast.instr

val eq64 : Ast.instr
val ne64 : Ast.instr
val lt_u64 : Ast.instr
val lt_s64 : Ast.instr
val gt_u64 : Ast.instr
val eqz64 : Ast.instr

val wrap : Ast.instr
val extend_u : Ast.instr
val extend_s : Ast.instr

val load32 : ?offset:int -> unit -> Ast.instr
val load64 : ?offset:int -> unit -> Ast.instr
val load8_u : ?offset:int -> unit -> Ast.instr
val load8_s : ?offset:int -> unit -> Ast.instr
val load16_u : ?offset:int -> unit -> Ast.instr
val store32 : ?offset:int -> unit -> Ast.instr
val store64 : ?offset:int -> unit -> Ast.instr
val store8 : ?offset:int -> unit -> Ast.instr
val store16 : ?offset:int -> unit -> Ast.instr

val call : fn -> Ast.instr
val call_indirect : t -> params:Ast.valty list -> results:Ast.valty list -> Ast.instr
(** Emits [Call_indirect] with the type index for the given signature
    (interned in the module's type table). *)

val block : ?ty:Ast.valty -> Ast.instr list -> Ast.instr
val loop : ?ty:Ast.valty -> Ast.instr list -> Ast.instr
val if_ : ?ty:Ast.valty -> Ast.instr list -> Ast.instr list -> Ast.instr
val br : int -> Ast.instr
val br_if : int -> Ast.instr
val ret : Ast.instr
val drop : Ast.instr
val select : Ast.instr
val unreachable : Ast.instr
val nop : Ast.instr
val memory_copy : Ast.instr
val memory_fill : Ast.instr
val memory_size : Ast.instr
val memory_grow : Ast.instr

val for_loop :
  i:int -> start:Ast.instr list -> stop:Ast.instr list -> ?step:int -> Ast.instr list -> Ast.instr list
(** [for_loop ~i ~start ~stop body]: a canonical counted loop —
    [for (i = start; i <u stop; i += step) body]. [i] is a local index;
    [stop] is re-evaluated each iteration (hoist it into a local first if
    it is expensive). Inside [body], [br 1] continues and [br 2] breaks
    relative to the generated structure. *)

val while_loop : Ast.instr list -> Ast.instr list -> Ast.instr list
(** [while_loop cond body]: loop while [cond] (an i32 expression) is
    non-zero. *)
