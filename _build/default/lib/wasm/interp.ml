open Ast

type trap =
  | Unreachable
  | Out_of_bounds
  | Divide_by_zero
  | Integer_overflow
  | Indirect_call_type
  | Undefined_element

let trap_name = function
  | Unreachable -> "unreachable"
  | Out_of_bounds -> "out of bounds memory access"
  | Divide_by_zero -> "integer divide by zero"
  | Integer_overflow -> "integer overflow"
  | Indirect_call_type -> "indirect call type mismatch"
  | Undefined_element -> "undefined table element"

exception Out_of_fuel
exception Trap_exn of trap
exception Br_exn of int * value list
exception Return_exn of value option

type instance = {
  m : module_;
  mutable memory : Bytes.t;
  mutable pages : int;
  max_pages : int;
  globals : value array;
  table : int array;
  host : (string, host_func) Hashtbl.t;
  mutable fuel : int;
  mutable executed : int;
}

and host_func = instance -> value list -> value list

let module_of t = t.m

let rec instantiate ?(host = []) m =
  Validate.validate_exn m;
  let pages, max_pages =
    match m.memory with
    | Some { min_pages; max_pages } ->
        (min_pages, match max_pages with Some mx -> mx | None -> 65536)
    | None -> (0, 0)
  in
  let t =
    {
      m;
      memory = Bytes.make (pages * page_size) '\000';
      pages;
      max_pages;
      globals = Array.map (fun g -> g.ginit) m.globals;
      table = Array.copy m.table;
      host = Hashtbl.create 8;
      fuel = max_int;
      executed = 0;
    }
  in
  List.iter (fun (name, f) -> Hashtbl.replace t.host name f) host;
  List.iter
    (fun d -> Bytes.blit_string d.dbytes 0 t.memory d.doffset (String.length d.dbytes))
    m.data;
  (match m.start with
  | Some idx ->
      let run = invoke_index t idx [] in
      ignore run
  | None -> ());
  t

(* --- Numeric helpers --- *)

and u32 v = Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL

and i32_binop op a b =
  match op with
  | Add -> Int32.add a b
  | Sub -> Int32.sub a b
  | Mul -> Int32.mul a b
  | Div_s ->
      if b = 0l then raise (Trap_exn Divide_by_zero)
      else if a = Int32.min_int && b = -1l then raise (Trap_exn Integer_overflow)
      else Int32.div a b
  | Div_u ->
      if b = 0l then raise (Trap_exn Divide_by_zero) else Int32.unsigned_div a b
  | Rem_s ->
      if b = 0l then raise (Trap_exn Divide_by_zero)
      else if a = Int32.min_int && b = -1l then 0l
      else Int32.rem a b
  | Rem_u ->
      if b = 0l then raise (Trap_exn Divide_by_zero) else Int32.unsigned_rem a b
  | And -> Int32.logand a b
  | Or -> Int32.logor a b
  | Xor -> Int32.logxor a b
  | Shl -> Int32.shift_left a (Int32.to_int b land 31)
  | Shr_s -> Int32.shift_right a (Int32.to_int b land 31)
  | Shr_u -> Int32.shift_right_logical a (Int32.to_int b land 31)
  | Rotl ->
      let n = Int32.to_int b land 31 in
      if n = 0 then a
      else Int32.logor (Int32.shift_left a n) (Int32.shift_right_logical a (32 - n))
  | Rotr ->
      let n = Int32.to_int b land 31 in
      if n = 0 then a
      else Int32.logor (Int32.shift_right_logical a n) (Int32.shift_left a (32 - n))

and i64_binop op a b =
  match op with
  | Add -> Int64.add a b
  | Sub -> Int64.sub a b
  | Mul -> Int64.mul a b
  | Div_s ->
      if b = 0L then raise (Trap_exn Divide_by_zero)
      else if a = Int64.min_int && b = -1L then raise (Trap_exn Integer_overflow)
      else Int64.div a b
  | Div_u ->
      if b = 0L then raise (Trap_exn Divide_by_zero) else Int64.unsigned_div a b
  | Rem_s ->
      if b = 0L then raise (Trap_exn Divide_by_zero)
      else if a = Int64.min_int && b = -1L then 0L
      else Int64.rem a b
  | Rem_u ->
      if b = 0L then raise (Trap_exn Divide_by_zero) else Int64.unsigned_rem a b
  | And -> Int64.logand a b
  | Or -> Int64.logor a b
  | Xor -> Int64.logxor a b
  | Shl -> Int64.shift_left a (Int64.to_int b land 63)
  | Shr_s -> Int64.shift_right a (Int64.to_int b land 63)
  | Shr_u -> Int64.shift_right_logical a (Int64.to_int b land 63)
  | Rotl ->
      let n = Int64.to_int b land 63 in
      if n = 0 then a
      else Int64.logor (Int64.shift_left a n) (Int64.shift_right_logical a (64 - n))
  | Rotr ->
      let n = Int64.to_int b land 63 in
      if n = 0 then a
      else Int64.logor (Int64.shift_right_logical a n) (Int64.shift_left a (64 - n))

and i32_relop op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt_s -> Int32.compare a b < 0
    | Lt_u -> Int32.unsigned_compare a b < 0
    | Gt_s -> Int32.compare a b > 0
    | Gt_u -> Int32.unsigned_compare a b > 0
    | Le_s -> Int32.compare a b <= 0
    | Le_u -> Int32.unsigned_compare a b <= 0
    | Ge_s -> Int32.compare a b >= 0
    | Ge_u -> Int32.unsigned_compare a b >= 0
  in
  if r then 1l else 0l

and i64_relop op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt_s -> Int64.compare a b < 0
    | Lt_u -> Int64.unsigned_compare a b < 0
    | Gt_s -> Int64.compare a b > 0
    | Gt_u -> Int64.unsigned_compare a b > 0
    | Le_s -> Int64.compare a b <= 0
    | Le_u -> Int64.unsigned_compare a b <= 0
    | Ge_s -> Int64.compare a b >= 0
    | Ge_u -> Int64.unsigned_compare a b >= 0
  in
  if r then 1l else 0l

and bit_count ~bits ~kind v =
  match kind with
  | `Popcnt ->
      let n = ref 0 in
      for i = 0 to bits - 1 do
        if Int64.logand (Int64.shift_right_logical v i) 1L = 1L then incr n
      done;
      !n
  | `Ctz ->
      if Int64.logand v (if bits = 64 then -1L else Int64.sub (Int64.shift_left 1L bits) 1L) = 0L
      then bits
      else begin
        let n = ref 0 in
        while Int64.logand (Int64.shift_right_logical v !n) 1L = 0L do
          incr n
        done;
        !n
      end
  | `Clz ->
      let masked =
        if bits = 64 then v else Int64.logand v (Int64.sub (Int64.shift_left 1L bits) 1L)
      in
      if masked = 0L then bits
      else begin
        let n = ref 0 in
        while Int64.logand (Int64.shift_right_logical masked (bits - 1 - !n)) 1L = 0L do
          incr n
        done;
        !n
      end

(* --- Memory access --- *)

and effective_addr t (addr : int32) offset size =
  let ea = Int64.add (u32 addr) (Int64.of_int offset) in
  let limit = Int64.of_int (Bytes.length t.memory - size) in
  if Int64.compare ea limit > 0 || Int64.compare ea 0L < 0 then
    raise (Trap_exn Out_of_bounds);
  Int64.to_int ea

and load_value t ty packing { offset } addr =
  match (ty, packing) with
  | I32, None ->
      let a = effective_addr t addr offset 4 in
      V_i32 (Bytes.get_int32_le t.memory a)
  | I64, None ->
      let a = effective_addr t addr offset 8 in
      V_i64 (Bytes.get_int64_le t.memory a)
  | _, Some (P8, sx) ->
      let a = effective_addr t addr offset 1 in
      let b = Bytes.get_uint8 t.memory a in
      let v = match sx with Unsigned -> b | Signed -> (b lxor 0x80) - 0x80 in
      if ty = I32 then V_i32 (Int32.of_int v) else V_i64 (Int64.of_int v)
  | _, Some (P16, sx) ->
      let a = effective_addr t addr offset 2 in
      let b = Bytes.get_uint16_le t.memory a in
      let v = match sx with Unsigned -> b | Signed -> (b lxor 0x8000) - 0x8000 in
      if ty = I32 then V_i32 (Int32.of_int v) else V_i64 (Int64.of_int v)
  | I64, Some (P32, sx) ->
      let a = effective_addr t addr offset 4 in
      let b = Bytes.get_int32_le t.memory a in
      let v =
        match sx with Unsigned -> u32 b | Signed -> Int64.of_int32 b
      in
      V_i64 v
  | I32, Some (P32, _) -> assert false (* rejected by validation *)

and store_value t ty packing { offset } addr v =
  match (ty, packing, v) with
  | I32, None, V_i32 x ->
      let a = effective_addr t addr offset 4 in
      Bytes.set_int32_le t.memory a x
  | I64, None, V_i64 x ->
      let a = effective_addr t addr offset 8 in
      Bytes.set_int64_le t.memory a x
  | _, Some P8, _ ->
      let a = effective_addr t addr offset 1 in
      let x = match v with V_i32 x -> Int32.to_int x | V_i64 x -> Int64.to_int x in
      Bytes.set_uint8 t.memory a (x land 0xFF)
  | _, Some P16, _ ->
      let a = effective_addr t addr offset 2 in
      let x = match v with V_i32 x -> Int32.to_int x | V_i64 x -> Int64.to_int x in
      Bytes.set_uint16_le t.memory a (x land 0xFFFF)
  | I64, Some P32, V_i64 x ->
      let a = effective_addr t addr offset 4 in
      Bytes.set_int32_le t.memory a (Int64.to_int32 x)
  | _ -> assert false (* rejected by validation *)

(* --- Evaluation --- *)

and as_i32 = function V_i32 v -> v | V_i64 _ -> assert false
and as_i64 = function V_i64 v -> v | V_i32 _ -> assert false

and eval_body t locals (stack : value list ref) body =
  List.iter (eval_instr t locals stack) body

and push stack v = stack := v :: !stack

and pop stack =
  match !stack with
  | v :: rest ->
      stack := rest;
      v
  | [] -> assert false (* rejected by validation *)

and eval_block t locals stack bt body ~is_loop =
  (* Evaluate the body on a fresh operand stack; on normal exit propagate
     the block result. A branch carries the raiser's operand stack, whose
     top holds the values the target label expects (validation ensures
     this). *)
  let rec attempt () =
    let inner = ref [] in
    match eval_body t locals inner body with
    | () -> (
        match bt with
        | Some _ -> push stack (List.hd !inner)
        | None -> ())
    | exception Br_exn (0, carried) ->
        if is_loop then attempt ()
        else (
          match bt with
          | Some _ -> push stack (List.hd carried)
          | None -> ())
    | exception Br_exn (n, carried) -> raise (Br_exn (n - 1, carried))
  in
  attempt ()

and eval_instr t locals stack (i : instr) =
  if t.fuel <= 0 then raise Out_of_fuel;
  t.fuel <- t.fuel - 1;
  t.executed <- t.executed + 1;
  match i with
  | Unreachable -> raise (Trap_exn Unreachable)
  | Nop -> ()
  | Const v -> push stack v
  | Binop (I32, op) ->
      let b = as_i32 (pop stack) in
      let a = as_i32 (pop stack) in
      push stack (V_i32 (i32_binop op a b))
  | Binop (I64, op) ->
      let b = as_i64 (pop stack) in
      let a = as_i64 (pop stack) in
      push stack (V_i64 (i64_binop op a b))
  | Relop (I32, op) ->
      let b = as_i32 (pop stack) in
      let a = as_i32 (pop stack) in
      push stack (V_i32 (i32_relop op a b))
  | Relop (I64, op) ->
      let b = as_i64 (pop stack) in
      let a = as_i64 (pop stack) in
      push stack (V_i32 (i64_relop op a b))
  | Eqz I32 -> push stack (V_i32 (if as_i32 (pop stack) = 0l then 1l else 0l))
  | Eqz I64 -> push stack (V_i32 (if as_i64 (pop stack) = 0L then 1l else 0l))
  | Cvt I32_wrap_i64 -> push stack (V_i32 (Int64.to_int32 (as_i64 (pop stack))))
  | Cvt I64_extend_i32_s -> push stack (V_i64 (Int64.of_int32 (as_i32 (pop stack))))
  | Cvt I64_extend_i32_u -> push stack (V_i64 (u32 (as_i32 (pop stack))))
  | Clz I32 ->
      let v = u32 (as_i32 (pop stack)) in
      push stack (V_i32 (Int32.of_int (bit_count ~bits:32 ~kind:`Clz v)))
  | Clz I64 ->
      let v = as_i64 (pop stack) in
      push stack (V_i64 (Int64.of_int (bit_count ~bits:64 ~kind:`Clz v)))
  | Ctz I32 ->
      let v = u32 (as_i32 (pop stack)) in
      push stack (V_i32 (Int32.of_int (bit_count ~bits:32 ~kind:`Ctz v)))
  | Ctz I64 ->
      let v = as_i64 (pop stack) in
      push stack (V_i64 (Int64.of_int (bit_count ~bits:64 ~kind:`Ctz v)))
  | Popcnt I32 ->
      let v = u32 (as_i32 (pop stack)) in
      push stack (V_i32 (Int32.of_int (bit_count ~bits:32 ~kind:`Popcnt v)))
  | Popcnt I64 ->
      let v = as_i64 (pop stack) in
      push stack (V_i64 (Int64.of_int (bit_count ~bits:64 ~kind:`Popcnt v)))
  | Drop -> ignore (pop stack)
  | Select ->
      let c = as_i32 (pop stack) in
      let b = pop stack in
      let a = pop stack in
      push stack (if c <> 0l then a else b)
  | Local_get n -> push stack locals.(n)
  | Local_set n -> locals.(n) <- pop stack
  | Local_tee n -> (
      match !stack with v :: _ -> locals.(n) <- v | [] -> assert false)
  | Global_get n -> push stack t.globals.(n)
  | Global_set n -> t.globals.(n) <- pop stack
  | Load (ty, packing, memarg) ->
      let addr = as_i32 (pop stack) in
      push stack (load_value t ty packing memarg addr)
  | Store (ty, packing, memarg) ->
      let v = pop stack in
      let addr = as_i32 (pop stack) in
      store_value t ty packing memarg addr v
  | Memory_size -> push stack (V_i32 (Int32.of_int t.pages))
  | Memory_grow ->
      let delta = Int32.to_int (as_i32 (pop stack)) in
      let new_pages = t.pages + delta in
      if delta < 0 || new_pages > t.max_pages then push stack (V_i32 (-1l))
      else begin
        let old = t.pages in
        let bigger = Bytes.make (new_pages * page_size) '\000' in
        Bytes.blit t.memory 0 bigger 0 (Bytes.length t.memory);
        t.memory <- bigger;
        t.pages <- new_pages;
        push stack (V_i32 (Int32.of_int old))
      end
  | Memory_copy ->
      let len = Int64.to_int (u32 (as_i32 (pop stack))) in
      let src = Int64.to_int (u32 (as_i32 (pop stack))) in
      let dst = Int64.to_int (u32 (as_i32 (pop stack))) in
      let size = Bytes.length t.memory in
      if src + len > size || dst + len > size then raise (Trap_exn Out_of_bounds);
      Bytes.blit t.memory src t.memory dst len
  | Memory_fill ->
      let len = Int64.to_int (u32 (as_i32 (pop stack))) in
      let byte = Int32.to_int (as_i32 (pop stack)) land 0xFF in
      let dst = Int64.to_int (u32 (as_i32 (pop stack))) in
      if dst + len > Bytes.length t.memory then raise (Trap_exn Out_of_bounds);
      Bytes.fill t.memory dst len (Char.chr byte)
  | Block (bt, body) -> eval_block t locals stack bt body ~is_loop:false
  | Loop (bt, body) -> eval_block t locals stack bt body ~is_loop:true
  | If (bt, then_body, else_body) ->
      let c = as_i32 (pop stack) in
      let body = if c <> 0l then then_body else else_body in
      eval_block t locals stack bt body ~is_loop:false
  | Br n -> raise (Br_exn (n, !stack))
  | Br_if n -> if as_i32 (pop stack) <> 0l then raise (Br_exn (n, !stack))
  | Br_table (targets, default) ->
      let idx = Int64.to_int (u32 (as_i32 (pop stack))) in
      let n = if idx < List.length targets then List.nth targets idx else default in
      raise (Br_exn (n, !stack))
  | Return -> (
      match !stack with
      | v :: _ -> raise (Return_exn (Some v))
      | [] -> raise (Return_exn None))
  | Call idx ->
      let results = invoke_index_from_stack t idx stack in
      List.iter (push stack) results
  | Call_indirect tyidx ->
      let elem = Int64.to_int (u32 (as_i32 (pop stack))) in
      if elem < 0 || elem >= Array.length t.table then raise (Trap_exn Undefined_element);
      let fidx = t.table.(elem) in
      let actual = type_of_func t.m fidx in
      if actual <> t.m.types.(tyidx) then raise (Trap_exn Indirect_call_type);
      let results = invoke_index_from_stack t fidx stack in
      List.iter (push stack) results

and invoke_index_from_stack t idx stack =
  let ft = type_of_func t.m idx in
  let nargs = List.length ft.params in
  let rec take n acc =
    if n = 0 then acc
    else
      match !stack with
      | v :: rest ->
          stack := rest;
          take (n - 1) (v :: acc)
      | [] -> assert false
  in
  let args = take nargs [] in
  invoke_index t idx args

and invoke_index t idx args =
  let nimports = Array.length t.m.imports in
  if idx < nimports then begin
    let { iname; itype } = t.m.imports.(idx) in
    match Hashtbl.find_opt t.host iname with
    | Some f ->
        let results = f t args in
        let ft = t.m.types.(itype) in
        if List.map value_ty results <> ft.results then
          invalid_arg (Printf.sprintf "host %s returned wrong types" iname);
        results
    | None -> invalid_arg (Printf.sprintf "unresolved import: %s" iname)
  end
  else begin
    let f = t.m.funcs.(idx - nimports) in
    let ft = t.m.types.(f.ftype) in
    let locals =
      Array.of_list
        (args @ List.map (function I32 -> V_i32 0l | I64 -> V_i64 0L) f.locals)
    in
    let stack = ref [] in
    let result =
      match eval_body t locals stack f.body with
      | () -> (
          match (ft.results, !stack) with
          | [], _ -> []
          | [ _ ], v :: _ -> [ v ]
          | _ -> assert false)
      | exception Return_exn (Some v) when ft.results <> [] -> [ v ]
      | exception Return_exn _ -> []
      | exception Br_exn _ -> assert false (* validation bounds br depths *)
    in
    result
  end

let memory_size_bytes t = Bytes.length t.memory

let read_memory t ~addr ~len =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.memory then
    invalid_arg "Interp.read_memory: out of range";
  Bytes.sub_string t.memory addr len

let write_memory t ~addr s =
  if addr < 0 || addr + String.length s > Bytes.length t.memory then
    invalid_arg "Interp.write_memory: out of range";
  Bytes.blit_string s 0 t.memory addr (String.length s)

let global_value t n = t.globals.(n)
let instructions_executed t = t.executed

let invoke t name ?(fuel = 200_000_000) args =
  let idx = func_index_of_export t.m name in
  let ft = type_of_func t.m idx in
  if List.map value_ty args <> ft.params then
    invalid_arg "Interp.invoke: argument type mismatch";
  t.fuel <- fuel;
  match invoke_index t idx args with
  | results -> Ok results
  | exception Trap_exn trap -> Error trap
