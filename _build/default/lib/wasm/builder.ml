open Ast

type fn = { index : int; name : string; sig_params : valty list; sig_results : valty list }

type pending_func = {
  pf_name : string;
  pf_export : bool;
  pf_type : int;
  mutable pf_locals : valty list;
  mutable pf_body : instr list option;
}

type t = {
  mutable types : functype list; (* reversed *)
  mutable n_types : int;
  mutable imports : import list; (* reversed *)
  mutable n_imports : int;
  mutable funcs : pending_func list; (* reversed *)
  mutable n_funcs : int;
  mutable globals : global list; (* reversed *)
  mutable n_globals : int;
  mutable data : data_segment list;
  mutable elems : int list; (* reversed *)
  memory : memory option;
}

let create ?memory_pages ?max_memory_pages () =
  let memory =
    match memory_pages with
    | Some min_pages -> Some { min_pages; max_pages = max_memory_pages }
    | None -> None
  in
  {
    types = [];
    n_types = 0;
    imports = [];
    n_imports = 0;
    funcs = [];
    n_funcs = 0;
    globals = [];
    n_globals = 0;
    data = [];
    elems = [];
    memory;
  }

(* Intern a function type, returning its index. *)
let type_index t params results =
  let ft = { params; results } in
  let rec find i = function
    | [] -> None
    | x :: _ when x = ft -> Some (t.n_types - 1 - i)
    | _ :: rest -> find (i + 1) rest
  in
  match find 0 t.types with
  | Some idx -> idx
  | None ->
      t.types <- ft :: t.types;
      t.n_types <- t.n_types + 1;
      t.n_types - 1

let import t name ~params ~results =
  if t.n_funcs > 0 then
    invalid_arg "Builder.import: imports must be declared before functions";
  let itype = type_index t params results in
  t.imports <- { iname = name; itype } :: t.imports;
  t.n_imports <- t.n_imports + 1;
  { index = t.n_imports - 1; name; sig_params = params; sig_results = results }

let declare t name ?(export = true) ~params ~results () =
  let pf_type = type_index t params results in
  let pf = { pf_name = name; pf_export = export; pf_type; pf_locals = []; pf_body = None } in
  t.funcs <- pf :: t.funcs;
  t.n_funcs <- t.n_funcs + 1;
  { index = t.n_imports + t.n_funcs - 1; name; sig_params = params; sig_results = results }

let pending_of t (f : fn) =
  if f.index < t.n_imports then
    invalid_arg (Printf.sprintf "Builder.define: %s is an import" f.name);
  let pos_from_end = f.index - t.n_imports in
  List.nth t.funcs (t.n_funcs - 1 - pos_from_end)

let define t f ?(locals = []) body =
  let pf = pending_of t f in
  if pf.pf_body <> None then invalid_arg ("Builder.define: " ^ f.name ^ " already defined");
  pf.pf_locals <- locals;
  pf.pf_body <- Some body

let global t gtype ?(mutable_ = true) init =
  if value_ty init <> gtype then invalid_arg "Builder.global: initializer type mismatch";
  t.globals <- { gtype; gmutable = mutable_; ginit = init } :: t.globals;
  t.n_globals <- t.n_globals + 1;
  t.n_globals - 1

let data t ~offset bytes = t.data <- { doffset = offset; dbytes = bytes } :: t.data

let elem t fns = List.iter (fun (f : fn) -> t.elems <- f.index :: t.elems) fns

let fn_index (f : fn) = f.index

let build t =
  let funcs =
    List.rev_map
      (fun pf ->
        match pf.pf_body with
        | Some body -> { ftype = pf.pf_type; locals = pf.pf_locals; body; fname = pf.pf_name }
        | None -> invalid_arg ("Builder.build: undefined function " ^ pf.pf_name))
      t.funcs
  in
  let exports =
    List.rev t.funcs
    |> List.mapi (fun i pf -> (pf, t.n_imports + i))
    |> List.filter_map (fun (pf, idx) -> if pf.pf_export then Some (pf.pf_name, idx) else None)
  in
  let m =
    {
      types = Array.of_list (List.rev t.types);
      imports = Array.of_list (List.rev t.imports);
      funcs = Array.of_list funcs;
      memory = t.memory;
      globals = Array.of_list (List.rev t.globals);
      table = Array.of_list (List.rev t.elems);
      data = List.rev t.data;
      exports;
      start = None;
    }
  in
  Validate.validate_exn m;
  m

(* --- Instruction shorthands --- *)

let i32 n = Const (V_i32 (Int32.of_int n))
let i32' n = Const (V_i32 n)
let i64 n = Const (V_i64 (Int64.of_int n))
let i64' n = Const (V_i64 n)

let get n = Local_get n
let set n = Local_set n
let tee n = Local_tee n
let gget n = Global_get n
let gset n = Global_set n

let add = Binop (I32, Add)
let sub = Binop (I32, Sub)
let mul = Binop (I32, Mul)
let div_s = Binop (I32, Div_s)
let div_u = Binop (I32, Div_u)
let rem_s = Binop (I32, Rem_s)
let rem_u = Binop (I32, Rem_u)
let band = Binop (I32, And)
let bor = Binop (I32, Or)
let bxor = Binop (I32, Xor)
let shl = Binop (I32, Shl)
let shr_s = Binop (I32, Shr_s)
let shr_u = Binop (I32, Shr_u)
let rotl = Binop (I32, Rotl)

let add64 = Binop (I64, Add)
let sub64 = Binop (I64, Sub)
let mul64 = Binop (I64, Mul)
let band64 = Binop (I64, And)
let bor64 = Binop (I64, Or)
let bxor64 = Binop (I64, Xor)
let shl64 = Binop (I64, Shl)
let shr_u64 = Binop (I64, Shr_u)
let shr_s64 = Binop (I64, Shr_s)

let eq = Relop (I32, Eq)
let ne = Relop (I32, Ne)
let lt_s = Relop (I32, Lt_s)
let lt_u = Relop (I32, Lt_u)
let gt_s = Relop (I32, Gt_s)
let gt_u = Relop (I32, Gt_u)
let le_s = Relop (I32, Le_s)
let le_u = Relop (I32, Le_u)
let ge_s = Relop (I32, Ge_s)
let ge_u = Relop (I32, Ge_u)
let eqz = Eqz I32

let eq64 = Relop (I64, Eq)
let ne64 = Relop (I64, Ne)
let lt_u64 = Relop (I64, Lt_u)
let lt_s64 = Relop (I64, Lt_s)
let gt_u64 = Relop (I64, Gt_u)
let eqz64 = Eqz I64

let wrap = Cvt I32_wrap_i64
let extend_u = Cvt I64_extend_i32_u
let extend_s = Cvt I64_extend_i32_s

let load32 ?(offset = 0) () = Load (I32, None, { offset })
let load64 ?(offset = 0) () = Load (I64, None, { offset })
let load8_u ?(offset = 0) () = Load (I32, Some (P8, Unsigned), { offset })
let load8_s ?(offset = 0) () = Load (I32, Some (P8, Signed), { offset })
let load16_u ?(offset = 0) () = Load (I32, Some (P16, Unsigned), { offset })
let store32 ?(offset = 0) () = Store (I32, None, { offset })
let store64 ?(offset = 0) () = Store (I64, None, { offset })
let store8 ?(offset = 0) () = Store (I32, Some P8, { offset })
let store16 ?(offset = 0) () = Store (I32, Some P16, { offset })

let call (f : fn) = Call f.index

let call_indirect t ~params ~results = Call_indirect (type_index t params results)

let block ?ty body = Block (ty, body)
let loop ?ty body = Loop (ty, body)
let if_ ?ty then_body else_body = If (ty, then_body, else_body)
let br n = Br n
let br_if n = Br_if n
let ret = Return
let drop = Drop
let select = Select
let unreachable = Unreachable
let nop = Nop
let memory_copy = Memory_copy
let memory_fill = Memory_fill
let memory_size = Memory_size
let memory_grow = Memory_grow

let for_loop ~i ~start ~stop ?(step = 1) body =
  start
  @ [
      set i;
      block
        [
          loop
            ([ get i ] @ stop @ [ ge_u; br_if 1 ]
            @ body
            @ [ get i; i32 step; add; set i; br 0 ]);
        ];
    ]

let while_loop cond body =
  [
    block
      [ loop (cond @ [ eqz; br_if 1 ] @ body @ [ br 0 ]) ];
  ]
