(** Wasm module validation (type checking).

    Implements the standard stack-polymorphic validation algorithm over the
    mini-Wasm subset: every instruction's operand/result types are checked
    against an abstract operand stack with control frames, so that the SFI
    compilers can assume well-typed input — exactly the property production
    Wasm compilers rely on when they omit dynamic type checks. *)

val validate : Ast.module_ -> (unit, string) result
(** Check the whole module: function bodies, local/global indices, memory
    presence for memory instructions, table/type indices for
    [call_indirect], data segments within the minimum memory size, start
    function signature, and export indices. The error string pinpoints the
    function and instruction. *)

val validate_exn : Ast.module_ -> unit
(** Like {!validate} but raises [Invalid_argument]. *)
