open Ast

exception Invalid of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

(* Abstract operand: a known type or the polymorphic "unknown" that appears
   after unreachable code. *)
type abstract = Known of valty | Unknown

type frame = {
  label_types : valty list; (* what a br to this frame expects *)
  end_types : valty list; (* what falls out of the frame *)
  height : int; (* operand stack height at frame entry *)
  mutable unreachable : bool;
}

type ctx = {
  m : module_;
  return_types : valty list;
  locals : valty array;
  mutable stack : abstract list;
  mutable frames : frame list; (* innermost first *)
}

let push ctx ty = ctx.stack <- Known ty :: ctx.stack

let push_unknown ctx = ctx.stack <- Unknown :: ctx.stack

let current_frame ctx =
  match ctx.frames with f :: _ -> f | [] -> fail "validator: no control frame"

let pop_any ctx =
  let f = current_frame ctx in
  if List.length ctx.stack = f.height then
    if f.unreachable then Unknown else fail "stack underflow"
  else
    match ctx.stack with
    | v :: rest ->
        ctx.stack <- rest;
        v
    | [] -> fail "stack underflow"

let pop ctx ty =
  match pop_any ctx with
  | Known t when t = ty -> ()
  | Known t -> fail "type mismatch: expected %s, found %s" (valty_name ty) (valty_name t)
  | Unknown -> ()

let pop_list ctx tys = List.iter (pop ctx) (List.rev tys)

let push_list ctx tys = List.iter (push ctx) tys

let push_frame ctx ~label_types ~end_types =
  ctx.frames <-
    { label_types; end_types; height = List.length ctx.stack; unreachable = false }
    :: ctx.frames

let pop_frame ctx =
  let f = current_frame ctx in
  pop_list ctx f.end_types;
  if List.length ctx.stack <> f.height then fail "values left on stack at end of block";
  ctx.frames <- List.tl ctx.frames;
  f

let mark_unreachable ctx =
  let f = current_frame ctx in
  (* Drop the stack back to the frame height: subsequent pops are satisfied
     polymorphically. *)
  let rec drop stack =
    if List.length stack > f.height then drop (List.tl stack) else stack
  in
  ctx.stack <- drop ctx.stack;
  f.unreachable <- true

let label_types_at ctx depth =
  let rec nth fs n =
    match (fs, n) with
    | f :: _, 0 -> f.label_types
    | _ :: rest, n -> nth rest (n - 1)
    | [], _ -> fail "br depth %d out of range" depth
  in
  nth ctx.frames depth

let blockty_types = function Some ty -> [ ty ] | None -> []

let require_memory ctx what =
  if ctx.m.memory = None then fail "%s requires a memory" what

let check_pack ty pack =
  match (ty, pack) with
  | _, P8 | _, P16 -> ()
  | I64, P32 -> ()
  | I32, P32 -> fail "i32 load/store with 32-bit pack is not a packed access"

let rec check_instr ctx (i : instr) =
  match i with
  | Unreachable -> mark_unreachable ctx
  | Nop -> ()
  | Const v -> push ctx (value_ty v)
  | Binop (ty, _) ->
      pop ctx ty;
      pop ctx ty;
      push ctx ty
  | Relop (ty, _) ->
      pop ctx ty;
      pop ctx ty;
      push ctx I32
  | Eqz ty ->
      pop ctx ty;
      push ctx I32
  | Cvt I32_wrap_i64 ->
      pop ctx I64;
      push ctx I32
  | Cvt (I64_extend_i32_s | I64_extend_i32_u) ->
      pop ctx I32;
      push ctx I64
  | Clz ty | Ctz ty | Popcnt ty ->
      pop ctx ty;
      push ctx ty
  | Drop -> ignore (pop_any ctx)
  | Select -> (
      pop ctx I32;
      let a = pop_any ctx in
      let b = pop_any ctx in
      match (a, b) with
      | Known x, Known y when x = y -> push ctx x
      | Known x, Unknown | Unknown, Known x -> push ctx x
      | Unknown, Unknown -> push_unknown ctx
      | Known x, Known y ->
          fail "select arms disagree: %s vs %s" (valty_name x) (valty_name y))
  | Local_get n ->
      if n < 0 || n >= Array.length ctx.locals then fail "local %d out of range" n;
      push ctx ctx.locals.(n)
  | Local_set n ->
      if n < 0 || n >= Array.length ctx.locals then fail "local %d out of range" n;
      pop ctx ctx.locals.(n)
  | Local_tee n ->
      if n < 0 || n >= Array.length ctx.locals then fail "local %d out of range" n;
      pop ctx ctx.locals.(n);
      push ctx ctx.locals.(n)
  | Global_get n ->
      if n < 0 || n >= Array.length ctx.m.globals then fail "global %d out of range" n;
      push ctx ctx.m.globals.(n).gtype
  | Global_set n ->
      if n < 0 || n >= Array.length ctx.m.globals then fail "global %d out of range" n;
      if not ctx.m.globals.(n).gmutable then fail "global %d is immutable" n;
      pop ctx ctx.m.globals.(n).gtype
  | Load (ty, packing, { offset }) ->
      require_memory ctx "load";
      if offset < 0 then fail "negative load offset";
      (match packing with Some (p, _) -> check_pack ty p | None -> ());
      pop ctx I32;
      push ctx ty
  | Store (ty, packing, { offset }) ->
      require_memory ctx "store";
      if offset < 0 then fail "negative store offset";
      (match packing with Some p -> check_pack ty p | None -> ());
      pop ctx ty;
      pop ctx I32
  | Memory_size ->
      require_memory ctx "memory.size";
      push ctx I32
  | Memory_grow ->
      require_memory ctx "memory.grow";
      pop ctx I32;
      push ctx I32
  | Memory_copy ->
      require_memory ctx "memory.copy";
      pop ctx I32;
      pop ctx I32;
      pop ctx I32
  | Memory_fill ->
      require_memory ctx "memory.fill";
      pop ctx I32;
      pop ctx I32;
      pop ctx I32
  | Block (bt, body) ->
      let tys = blockty_types bt in
      push_frame ctx ~label_types:tys ~end_types:tys;
      check_body ctx body;
      let f = pop_frame ctx in
      push_list ctx f.end_types
  | Loop (bt, body) ->
      let tys = blockty_types bt in
      (* A br to a loop re-enters it, carrying nothing (no block params in
         the MVP subset). *)
      push_frame ctx ~label_types:[] ~end_types:tys;
      check_body ctx body;
      let f = pop_frame ctx in
      push_list ctx f.end_types
  | If (bt, then_body, else_body) ->
      pop ctx I32;
      let tys = blockty_types bt in
      push_frame ctx ~label_types:tys ~end_types:tys;
      check_body ctx then_body;
      ignore (pop_frame ctx);
      (* Re-enter for the else arm at the same height. *)
      push_frame ctx ~label_types:tys ~end_types:tys;
      check_body ctx else_body;
      ignore (pop_frame ctx);
      push_list ctx tys
  | Br depth ->
      pop_list ctx (label_types_at ctx depth);
      mark_unreachable ctx
  | Br_if depth ->
      pop ctx I32;
      let tys = label_types_at ctx depth in
      pop_list ctx tys;
      push_list ctx tys
  | Br_table (targets, default) ->
      pop ctx I32;
      let default_tys = label_types_at ctx default in
      List.iter
        (fun depth ->
          let tys = label_types_at ctx depth in
          if tys <> default_tys then fail "br_table arms have mismatched label types")
        targets;
      pop_list ctx default_tys;
      mark_unreachable ctx
  | Return ->
      pop_list ctx ctx.return_types;
      mark_unreachable ctx
  | Call idx ->
      if idx < 0 || idx >= num_funcs ctx.m then fail "call target %d out of range" idx;
      let ft = type_of_func ctx.m idx in
      pop_list ctx ft.params;
      push_list ctx ft.results
  | Call_indirect tyidx ->
      if Array.length ctx.m.table = 0 then fail "call_indirect without a table";
      if tyidx < 0 || tyidx >= Array.length ctx.m.types then
        fail "call_indirect type %d out of range" tyidx;
      pop ctx I32;
      let ft = ctx.m.types.(tyidx) in
      pop_list ctx ft.params;
      push_list ctx ft.results

and check_body ctx body = List.iter (check_instr ctx) body

let check_functype ft =
  if List.length ft.results > 1 then fail "multi-result functions are not supported"

let check_func m idx (f : func) =
  if f.ftype < 0 || f.ftype >= Array.length m.types then
    fail "function %d: type index out of range" idx;
  let ft = m.types.(f.ftype) in
  let ctx =
    {
      m;
      return_types = ft.results;
      locals = Array.of_list (ft.params @ f.locals);
      stack = [];
      frames = [];
    }
  in
  push_frame ctx ~label_types:ft.results ~end_types:ft.results;
  (try check_body ctx f.body
   with Invalid msg -> fail "function %d (%s): %s" idx f.fname msg);
  (try ignore (pop_frame ctx)
   with Invalid msg -> fail "function %d (%s): at end: %s" idx f.fname msg)

let validate m =
  try
    Array.iter check_functype m.types;
    Array.iter
      (fun (im : import) ->
        if im.itype < 0 || im.itype >= Array.length m.types then
          fail "import %s: type index out of range" im.iname)
      m.imports;
    Array.iteri (check_func m) m.funcs;
    Array.iter
      (fun g ->
        if value_ty g.ginit <> g.gtype then fail "global initializer type mismatch")
      m.globals;
    Array.iter
      (fun fidx ->
        if fidx < 0 || fidx >= num_funcs m then fail "table entry %d out of range" fidx)
      m.table;
    (match m.memory with
    | Some { min_pages; max_pages } ->
        if min_pages < 0 then fail "negative memory size";
        (match max_pages with
        | Some max when max < min_pages -> fail "memory max below min"
        | Some _ | None -> ());
        List.iter
          (fun d ->
            if d.doffset < 0 || d.doffset + String.length d.dbytes > min_pages * page_size
            then fail "data segment out of bounds of minimum memory")
          m.data
    | None -> if m.data <> [] then fail "data segment without memory");
    List.iter
      (fun (name, idx) ->
        if idx < 0 || idx >= num_funcs m then fail "export %s out of range" name)
      m.exports;
    (match m.start with
    | Some idx ->
        if idx < 0 || idx >= num_funcs m then fail "start function out of range";
        let ft = type_of_func m idx in
        if ft.params <> [] || ft.results <> [] then fail "start function must be [] -> []"
    | None -> ());
    Ok ()
  with Invalid msg -> Error msg

let validate_exn m =
  match validate m with Ok () -> () | Error msg -> invalid_arg ("Validate: " ^ msg)
