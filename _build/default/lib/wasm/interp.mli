(** Reference interpreter for mini-Wasm.

    This is the semantic oracle: the SFI compilers in {!Sfi_core} are tested
    differentially against it (same module, same entry point, same inputs —
    results, traps, and final memory contents must agree for every
    compilation strategy). It implements the standard Wasm semantics
    directly over an OCaml [Bytes.t] linear memory with explicit bounds
    checks — the "pure software" enforcement that production engines avoid
    via guard regions. *)

type trap =
  | Unreachable
  | Out_of_bounds
  | Divide_by_zero
  | Integer_overflow
  | Indirect_call_type
  | Undefined_element

val trap_name : trap -> string

exception Out_of_fuel
(** Raised by {!invoke} when the instruction budget is exhausted. *)

type instance

type host_func = instance -> Ast.value list -> Ast.value list
(** Implementation of an imported function; receives the instance so it can
    touch linear memory (WASI-style). *)

val instantiate : ?host:(string * host_func) list -> Ast.module_ -> instance
(** Validates the module (raising [Invalid_argument] on type errors),
    allocates memory/globals/table, copies data segments, and runs the start
    function if present. Missing host implementations only fail when
    called. *)

val module_of : instance -> Ast.module_

val invoke :
  instance -> string -> ?fuel:int -> Ast.value list -> (Ast.value list, trap) result
(** Call an exported function. [fuel] (default 200 million) bounds the
    number of executed instructions. Raises [Not_found] for unknown exports
    and [Invalid_argument] on an argument arity/type mismatch. *)

val memory_size_bytes : instance -> int
val read_memory : instance -> addr:int -> len:int -> string
(** Raises [Invalid_argument] when out of range. *)

val write_memory : instance -> addr:int -> string -> unit
val global_value : instance -> int -> Ast.value
val instructions_executed : instance -> int
(** Cumulative count across invocations — used to compare interpreter and
    compiled instruction streams in tests. *)
