(** Mini-WebAssembly abstract syntax.

    A faithful subset of the Wasm MVP plus bulk-memory operations: the
    integer value types, full integer arithmetic, loads/stores with static
    offsets (the "two 32-bit unsigned operands" of §2 whose sum is a 33-bit
    address), structured control flow, direct and indirect calls, globals,
    and a single linear memory of 64 KiB pages.

    Floating point is omitted: none of the paper's SFI machinery touches
    float values (SFI instruments memory accesses and control flow), and
    the benchmark kernels exercise the memory system with integers.

    The module is the unit of compilation for the SFI compilers in
    {!Sfi_core} and of interpretation in {!Interp}. *)

type valty = I32 | I64

val valty_name : valty -> string

type value = V_i32 of int32 | V_i64 of int64

val value_ty : value -> valty
val pp_value : Format.formatter -> value -> unit
val value_equal : value -> value -> bool

type functype = { params : valty list; results : valty list }
(** At most one result, as in the Wasm MVP. *)

val pp_functype : Format.formatter -> functype -> unit

(** Sign extension mode for packed loads. *)
type sx = Signed | Unsigned

(** Packed widths for narrow loads/stores. [P32] is only valid on i64. *)
type pack = P8 | P16 | P32

type memarg = { offset : int }
(** Static offset added to the dynamic i32 address (both unsigned); the
    33-bit sum is what guard-region SFI relies on (§2). *)

type binop =
  | Add | Sub | Mul
  | Div_s | Div_u | Rem_s | Rem_u
  | And | Or | Xor
  | Shl | Shr_s | Shr_u
  | Rotl | Rotr

type relop = Eq | Ne | Lt_s | Lt_u | Gt_s | Gt_u | Le_s | Le_u | Ge_s | Ge_u

(** Conversions between the two integer types. *)
type cvtop =
  | I32_wrap_i64
  | I64_extend_i32_s
  | I64_extend_i32_u

type blockty = valty option

type instr =
  | Unreachable
  | Nop
  | Const of value
  | Binop of valty * binop
  | Relop of valty * relop
  | Eqz of valty
  | Cvt of cvtop
  | Clz of valty
  | Ctz of valty
  | Popcnt of valty
  | Drop
  | Select
  | Local_get of int
  | Local_set of int
  | Local_tee of int
  | Global_get of int
  | Global_set of int
  | Load of valty * (pack * sx) option * memarg
  | Store of valty * pack option * memarg
  | Memory_size
  | Memory_grow
  | Memory_copy  (** bulk-memory: overlap-safe copy (dst, src, len) *)
  | Memory_fill  (** bulk-memory: fill (dst, byte, len) *)
  | Block of blockty * instr list
  | Loop of blockty * instr list
  | If of blockty * instr list * instr list
  | Br of int
  | Br_if of int
  | Br_table of int list * int
  | Return
  | Call of int
  | Call_indirect of int  (** type index; operand is the table element index *)

type func = {
  ftype : int;  (** index into [types] *)
  locals : valty list;  (** in addition to parameters *)
  body : instr list;
  fname : string;  (** used for code labels and diagnostics *)
}

type memory = { min_pages : int; max_pages : int option }

val page_size : int
(** 65536 — the Wasm page size. *)

type global = { gtype : valty; gmutable : bool; ginit : value }

type data_segment = { doffset : int; dbytes : string }

type import = { iname : string; itype : int }
(** Imported (host) functions occupy the first function indices, as in real
    Wasm. The SFI compilers lower calls to them as [Hostcall] transitions
    out of the sandbox. *)

type module_ = {
  types : functype array;
  imports : import array;
  funcs : func array;
  memory : memory option;
  globals : global array;
  table : int array;  (** function indices, for [Call_indirect] *)
  data : data_segment list;
  exports : (string * int) list;  (** export name -> function index *)
  start : int option;
}

val empty_module : module_

val func_index_of_export : module_ -> string -> int
(** Raises [Not_found]. *)

val type_of_func : module_ -> int -> functype
(** Function type by function index (imports first). Raises
    [Invalid_argument] on out-of-range indices. *)

val num_funcs : module_ -> int
(** Imports + locally defined functions. *)

val pp_instr : Format.formatter -> instr -> unit
