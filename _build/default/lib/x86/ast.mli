(** Simulated x86-64 instruction set.

    This is the target ISA for the SFI compilers in this repository. It
    models the subset of x86-64 that matters to the paper:

    - the 16 general-purpose registers and their 32-bit views (writing a
      32-bit view zero-extends into the full register — the "inline
      truncation" Segue exploits, Figure 1);
    - the vestigial [%fs]/[%gs] segment registers with user-settable bases
      ([wrfsbase]/[wrgsbase], FSGSBASE extension) and segment-override
      memory operands;
    - the address-size override prefix, which truncates effective-address
      computation to 32 bits (Segue's "mixed-mode arithmetic");
    - MPK's [wrpkru]/[rdpkru];
    - enough ALU/branch/call surface to compile our mini-Wasm, plus 16-byte
      vector moves for the WAMR vectorization story (§4.2).

    Programs are flat instruction sequences with [Label] pseudo-instructions;
    the encoder ({!Encode}) assigns byte offsets, and the machine
    ({!Sfi_machine.Machine}) executes them. *)

(** General-purpose registers. [RSP] is the stack pointer; the SFI compilers
    additionally reserve registers by convention (e.g. classic Wasm lowering
    reserves one GPR for the heap base — the reservation Segue removes). *)
type gpr =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

val all_gprs : gpr list
val gpr_index : gpr -> int
(** 0..15, in hardware encoding order. *)

val gpr_of_index : int -> gpr
(** Inverse of {!gpr_index}. Raises [Invalid_argument] outside 0..15. *)

val gpr_name : gpr -> string
(** 64-bit name, e.g. ["rax"]. *)

val gpr_name32 : gpr -> string
(** 32-bit view name, e.g. ["eax"], ["r10d"]. *)

(** Vector (XMM) registers, used only by the bulk-memory vectorizer. *)
type vreg = XMM of int

val vreg_name : vreg -> string

(** Segment registers surviving in x86-64. *)
type seg = FS | GS

val seg_name : seg -> string

(** Operand widths. *)
type width = W8 | W16 | W32 | W64

val width_bytes : width -> int

(** Index scaling factors in SIB addressing. *)
type scale = S1 | S2 | S4 | S8

val scale_factor : scale -> int

(** A memory operand: [seg:base + index*scale + disp].

    When [addr32] is set the effective address (excluding the segment base)
    is computed with 32-bit wrap-around — the address-size override prefix.
    Segue relies on [seg = Some GS] together with [addr32 = true] to perform
    "heap_base + 32-bit offset" in one instruction. *)
type mem = {
  seg : seg option;
  base : gpr option;
  index : (gpr * scale) option;
  disp : int;
  addr32 : bool;
  native_base : bool;
}
(** [native_base] is a modeling device for the native (non-SFI) baseline:
    the machine adds the linear-memory base to the effective address, but
    the encoder charges no prefix bytes and no extra instruction — exactly
    as native code whose pointers are absolute (the base addition happened
    once, at pointer creation, outside the loop). SFI strategies never set
    it. *)

val mem :
  ?seg:seg -> ?base:gpr -> ?index:gpr * scale -> ?disp:int -> ?addr32:bool ->
  ?native_base:bool -> unit -> mem
(** Convenience constructor; all components default to absent/0/false. *)

(** Instruction operands. Immediates are stored as int64 and truncated to
    the instruction width at execution/encoding time. *)
type operand = Reg of gpr | Imm of int64 | Mem of mem

(** Condition codes for [Jcc] and [Setcc]. *)
type cond =
  | E | NE
  | L | LE | G | GE      (* signed *)
  | B | BE | A | AE      (* unsigned *)
  | S | NS

val cond_name : cond -> string
val negate_cond : cond -> cond

(** Traps the machine can raise; [Trap] also appears as an explicit
    instruction (like [ud2]) for SFI bounds-check failure paths. *)
type trap_kind =
  | Trap_unreachable
  | Trap_out_of_bounds        (* guard-region hit, MPK violation, or explicit bounds check *)
  | Trap_integer_divide_by_zero
  | Trap_integer_overflow
  | Trap_indirect_call_type   (* call_indirect signature mismatch *)

val trap_name : trap_kind -> string

(** Binary ALU operations sharing one encoding/execution shape. *)
type alu2 = Add | Sub | And | Or | Xor

(** Shift/rotate operations. The count operand is an immediate or [CL]. *)
type shift = Shl | Shr | Sar | Rol | Ror

type shift_count = Count_imm of int | Count_cl

(** Bit-counting instructions (BMI/SSE4.2 era, present on all CPUs the
    paper targets). *)
type bitcnt = Lzcnt | Tzcnt | Popcnt

type instr =
  | Label of string
      (** Pseudo-instruction, zero bytes; branch/call target. *)
  | Mov of width * operand * operand
      (** [Mov (w, dst, src)]. 32-bit destination registers zero-extend. *)
  | Movzx of width * width * gpr * operand
      (** [Movzx (dw, sw, dst, src)]: zero-extend [sw] source into [dw] dst. *)
  | Movsx of width * width * gpr * operand
      (** Sign-extending counterpart. *)
  | Lea of width * gpr * mem
      (** Address computation; never touches memory, ignores segment base. *)
  | Alu of alu2 * width * operand * operand
      (** [Alu (op, w, dst, src)]; sets flags. *)
  | Shift of shift * width * operand * shift_count
  | Imul of width * gpr * operand
      (** Two-operand signed multiply (low bits, which Wasm's [mul] wants). *)
  | Bitcnt of bitcnt * width * gpr * operand
      (** lzcnt/tzcnt/popcnt. *)
  | Div of width * bool * operand
      (** [Div (w, signed, divisor)]: divides RDX:RAX; quotient to RAX,
          remainder to RDX. Traps on zero divisor and signed overflow. *)
  | Cqo of width
      (** Sign-extend RAX into RDX (cdq/cqo) ahead of signed division. *)
  | Neg of width * operand
  | Not of width * operand
  | Cmp of width * operand * operand
  | Test of width * operand * operand
  | Setcc of cond * gpr
      (** Set low byte of [gpr] to 0/1 from flags, zeroing the rest (we fold
          the customary [movzx] into it). *)
  | Cmovcc of cond * width * gpr * operand
  | Jmp of string
  | Jcc of cond * string
  | Jmp_reg of gpr
      (** Indirect jump to a code address held in a register. *)
  | Call of string
  | Call_reg of gpr
  | Ret
  | Push of operand
  | Pop of gpr
  | Wrfsbase of gpr
  | Wrgsbase of gpr
  | Rdfsbase of gpr
  | Rdgsbase of gpr
  | Wrpkru
      (** Writes EAX into PKRU (ECX/EDX must be zero on hardware; the
          machine only reads EAX). The ~20ns/44-cycle cost the paper measures
          (§6.4.1) is charged by the cost model. *)
  | Rdpkru
      (** Reads PKRU into EAX (zeroes EDX). *)
  | Vload of vreg * mem
      (** 16-byte vector load (movdqu). *)
  | Vstore of mem * vreg
      (** 16-byte vector store. *)
  | Vzero of vreg
      (** pxor v, v. *)
  | Vdup8 of vreg * int
      (** Broadcast a byte immediate into all 16 lanes. *)
  | Hostcall of int
      (** Call out of the sandbox into the host runtime (WASI-ish). The
          machine delegates to a registered handler. *)
  | Trap of trap_kind
      (** Unconditional trap ([ud2]-style). *)
  | Nop

type program = instr array

val pp_instr : Format.formatter -> instr -> unit
(** Intel-syntax one-line rendering, e.g.
    [mov r10, gs:\[ecx + edx*4 + 0x8\]]. *)

val pp_program : Format.formatter -> program -> unit
(** Multi-line listing with labels outdented. *)

val uses_segment : instr -> bool
(** Does this instruction carry a segment-override prefix? Used by tests and
    by the WAMR-style vectorizer, whose patterns do not recognize
    segment-relative operands (§4.2). *)

val mem_operands : instr -> mem list
(** All memory operands of the instruction (for analyses). *)
