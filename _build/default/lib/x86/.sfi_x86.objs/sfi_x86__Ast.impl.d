lib/x86/ast.ml: Array Format List Printf String
