lib/x86/ast.mli: Format
