lib/x86/encode.mli: Ast
