lib/x86/encode.ml: Array Ast Int64 List
