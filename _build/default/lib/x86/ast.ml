type gpr =
  | RAX | RCX | RDX | RBX | RSP | RBP | RSI | RDI
  | R8 | R9 | R10 | R11 | R12 | R13 | R14 | R15

let all_gprs =
  [ RAX; RCX; RDX; RBX; RSP; RBP; RSI; RDI; R8; R9; R10; R11; R12; R13; R14; R15 ]

let gpr_index = function
  | RAX -> 0 | RCX -> 1 | RDX -> 2 | RBX -> 3
  | RSP -> 4 | RBP -> 5 | RSI -> 6 | RDI -> 7
  | R8 -> 8 | R9 -> 9 | R10 -> 10 | R11 -> 11
  | R12 -> 12 | R13 -> 13 | R14 -> 14 | R15 -> 15

let gpr_of_index = function
  | 0 -> RAX | 1 -> RCX | 2 -> RDX | 3 -> RBX
  | 4 -> RSP | 5 -> RBP | 6 -> RSI | 7 -> RDI
  | 8 -> R8 | 9 -> R9 | 10 -> R10 | 11 -> R11
  | 12 -> R12 | 13 -> R13 | 14 -> R14 | 15 -> R15
  | n -> invalid_arg (Printf.sprintf "Ast.gpr_of_index: %d" n)

let gpr_name = function
  | RAX -> "rax" | RCX -> "rcx" | RDX -> "rdx" | RBX -> "rbx"
  | RSP -> "rsp" | RBP -> "rbp" | RSI -> "rsi" | RDI -> "rdi"
  | R8 -> "r8" | R9 -> "r9" | R10 -> "r10" | R11 -> "r11"
  | R12 -> "r12" | R13 -> "r13" | R14 -> "r14" | R15 -> "r15"

let gpr_name32 = function
  | RAX -> "eax" | RCX -> "ecx" | RDX -> "edx" | RBX -> "ebx"
  | RSP -> "esp" | RBP -> "ebp" | RSI -> "esi" | RDI -> "edi"
  | r -> gpr_name r ^ "d"

type vreg = XMM of int

let vreg_name (XMM n) = Printf.sprintf "xmm%d" n

type seg = FS | GS

let seg_name = function FS -> "fs" | GS -> "gs"

type width = W8 | W16 | W32 | W64

let width_bytes = function W8 -> 1 | W16 -> 2 | W32 -> 4 | W64 -> 8

type scale = S1 | S2 | S4 | S8

let scale_factor = function S1 -> 1 | S2 -> 2 | S4 -> 4 | S8 -> 8

type mem = {
  seg : seg option;
  base : gpr option;
  index : (gpr * scale) option;
  disp : int;
  addr32 : bool;
  native_base : bool;
}

let mem ?seg ?base ?index ?(disp = 0) ?(addr32 = false) ?(native_base = false) () =
  { seg; base; index; disp; addr32; native_base }

type operand = Reg of gpr | Imm of int64 | Mem of mem

type cond = E | NE | L | LE | G | GE | B | BE | A | AE | S | NS

let cond_name = function
  | E -> "e" | NE -> "ne"
  | L -> "l" | LE -> "le" | G -> "g" | GE -> "ge"
  | B -> "b" | BE -> "be" | A -> "a" | AE -> "ae"
  | S -> "s" | NS -> "ns"

let negate_cond = function
  | E -> NE | NE -> E
  | L -> GE | GE -> L | LE -> G | G -> LE
  | B -> AE | AE -> B | BE -> A | A -> BE
  | S -> NS | NS -> S

type trap_kind =
  | Trap_unreachable
  | Trap_out_of_bounds
  | Trap_integer_divide_by_zero
  | Trap_integer_overflow
  | Trap_indirect_call_type

let trap_name = function
  | Trap_unreachable -> "unreachable"
  | Trap_out_of_bounds -> "out of bounds memory access"
  | Trap_integer_divide_by_zero -> "integer divide by zero"
  | Trap_integer_overflow -> "integer overflow"
  | Trap_indirect_call_type -> "indirect call type mismatch"

type alu2 = Add | Sub | And | Or | Xor

type shift = Shl | Shr | Sar | Rol | Ror

type shift_count = Count_imm of int | Count_cl

type bitcnt = Lzcnt | Tzcnt | Popcnt

type instr =
  | Label of string
  | Mov of width * operand * operand
  | Movzx of width * width * gpr * operand
  | Movsx of width * width * gpr * operand
  | Lea of width * gpr * mem
  | Alu of alu2 * width * operand * operand
  | Shift of shift * width * operand * shift_count
  | Imul of width * gpr * operand
  | Bitcnt of bitcnt * width * gpr * operand
  | Div of width * bool * operand
  | Cqo of width
  | Neg of width * operand
  | Not of width * operand
  | Cmp of width * operand * operand
  | Test of width * operand * operand
  | Setcc of cond * gpr
  | Cmovcc of cond * width * gpr * operand
  | Jmp of string
  | Jcc of cond * string
  | Jmp_reg of gpr
  | Call of string
  | Call_reg of gpr
  | Ret
  | Push of operand
  | Pop of gpr
  | Wrfsbase of gpr
  | Wrgsbase of gpr
  | Rdfsbase of gpr
  | Rdgsbase of gpr
  | Wrpkru
  | Rdpkru
  | Vload of vreg * mem
  | Vstore of mem * vreg
  | Vzero of vreg
  | Vdup8 of vreg * int
  | Hostcall of int
  | Trap of trap_kind
  | Nop

type program = instr array

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or" | Xor -> "xor"

let shift_name = function
  | Shl -> "shl" | Shr -> "shr" | Sar -> "sar" | Rol -> "rol" | Ror -> "ror"

let reg_name_w w r = match w with W32 -> gpr_name32 r | _ -> gpr_name r

let pp_mem ppf (m : mem) =
  let reg_name r = if m.addr32 then gpr_name32 r else gpr_name r in
  let parts = ref [] in
  (match m.index with
  | Some (r, s) ->
      let factor = scale_factor s in
      let txt = if factor = 1 then reg_name r else Printf.sprintf "%s*%d" (reg_name r) factor in
      parts := txt :: !parts
  | None -> ());
  (match m.base with Some r -> parts := reg_name r :: !parts | None -> ());
  let body = String.concat " + " !parts in
  let body =
    if m.disp = 0 && body <> "" then body
    else if body = "" then Printf.sprintf "0x%x" m.disp
    else if m.disp >= 0 then Printf.sprintf "%s + 0x%x" body m.disp
    else Printf.sprintf "%s - 0x%x" body (-m.disp)
  in
  match m.seg with
  | Some s -> Format.fprintf ppf "%s:[%s]" (seg_name s) body
  | None ->
      if m.native_base then Format.fprintf ppf "lm:[%s]" body
      else Format.fprintf ppf "[%s]" body

let pp_operand w ppf = function
  | Reg r -> Format.pp_print_string ppf (reg_name_w w r)
  | Imm i -> Format.fprintf ppf "%Ld" i
  | Mem m -> pp_mem ppf m

let width_ptr_name = function
  | W8 -> "byte" | W16 -> "word" | W32 -> "dword" | W64 -> "qword"

(* Annotate a memory operand with its width when the register operand does
   not already imply it (stores of immediates, etc.). *)
let pp_operand_sized w ppf = function
  | Mem m -> Format.fprintf ppf "%s ptr %a" (width_ptr_name w) pp_mem m
  | op -> pp_operand w ppf op

let pp_instr ppf = function
  | Label l -> Format.fprintf ppf "%s:" l
  | Mov (w, (Mem _ as dst), (Imm _ as src)) ->
      Format.fprintf ppf "mov %a, %a" (pp_operand_sized w) dst (pp_operand w) src
  | Mov (w, dst, src) ->
      Format.fprintf ppf "mov %a, %a" (pp_operand w) dst (pp_operand w) src
  | Movzx (dw, sw, dst, src) ->
      Format.fprintf ppf "movzx %s, %a" (reg_name_w dw dst) (pp_operand_sized sw) src
  | Movsx (dw, sw, dst, src) ->
      Format.fprintf ppf "movsx %s, %a" (reg_name_w dw dst) (pp_operand_sized sw) src
  | Lea (w, dst, m) -> Format.fprintf ppf "lea %s, %a" (reg_name_w w dst) pp_mem m
  | Alu (op, w, dst, src) ->
      Format.fprintf ppf "%s %a, %a" (alu_name op) (pp_operand w) dst (pp_operand w) src
  | Shift (op, w, dst, Count_imm n) ->
      Format.fprintf ppf "%s %a, %d" (shift_name op) (pp_operand w) dst n
  | Shift (op, w, dst, Count_cl) ->
      Format.fprintf ppf "%s %a, cl" (shift_name op) (pp_operand w) dst
  | Imul (w, dst, src) ->
      Format.fprintf ppf "imul %s, %a" (reg_name_w w dst) (pp_operand w) src
  | Bitcnt (k, w, dst, src) ->
      let name = match k with Lzcnt -> "lzcnt" | Tzcnt -> "tzcnt" | Popcnt -> "popcnt" in
      Format.fprintf ppf "%s %s, %a" name (reg_name_w w dst) (pp_operand w) src
  | Div (w, signed, src) ->
      Format.fprintf ppf "%s %a" (if signed then "idiv" else "div") (pp_operand_sized w) src
  | Cqo W64 -> Format.pp_print_string ppf "cqo"
  | Cqo _ -> Format.pp_print_string ppf "cdq"
  | Neg (w, op) -> Format.fprintf ppf "neg %a" (pp_operand w) op
  | Not (w, op) -> Format.fprintf ppf "not %a" (pp_operand w) op
  | Cmp (w, a, b) -> Format.fprintf ppf "cmp %a, %a" (pp_operand w) a (pp_operand w) b
  | Test (w, a, b) -> Format.fprintf ppf "test %a, %a" (pp_operand w) a (pp_operand w) b
  | Setcc (c, r) -> Format.fprintf ppf "set%s %s ; movzx" (cond_name c) (gpr_name32 r)
  | Cmovcc (c, w, dst, src) ->
      Format.fprintf ppf "cmov%s %s, %a" (cond_name c) (reg_name_w w dst) (pp_operand w) src
  | Jmp l -> Format.fprintf ppf "jmp %s" l
  | Jcc (c, l) -> Format.fprintf ppf "j%s %s" (cond_name c) l
  | Jmp_reg r -> Format.fprintf ppf "jmp %s" (gpr_name r)
  | Call l -> Format.fprintf ppf "call %s" l
  | Call_reg r -> Format.fprintf ppf "call %s" (gpr_name r)
  | Ret -> Format.pp_print_string ppf "ret"
  | Push op -> Format.fprintf ppf "push %a" (pp_operand W64) op
  | Pop r -> Format.fprintf ppf "pop %s" (gpr_name r)
  | Wrfsbase r -> Format.fprintf ppf "wrfsbase %s" (gpr_name r)
  | Wrgsbase r -> Format.fprintf ppf "wrgsbase %s" (gpr_name r)
  | Rdfsbase r -> Format.fprintf ppf "rdfsbase %s" (gpr_name r)
  | Rdgsbase r -> Format.fprintf ppf "rdgsbase %s" (gpr_name r)
  | Wrpkru -> Format.pp_print_string ppf "wrpkru"
  | Rdpkru -> Format.pp_print_string ppf "rdpkru"
  | Vload (v, m) -> Format.fprintf ppf "movdqu %s, %a" (vreg_name v) pp_mem m
  | Vstore (m, v) -> Format.fprintf ppf "movdqu %a, %s" pp_mem m (vreg_name v)
  | Vzero v -> Format.fprintf ppf "pxor %s, %s" (vreg_name v) (vreg_name v)
  | Vdup8 (v, b) -> Format.fprintf ppf "vpbroadcastb %s, %d" (vreg_name v) b
  | Hostcall n -> Format.fprintf ppf "hostcall %d" n
  | Trap k -> Format.fprintf ppf "ud2 ; %s" (trap_name k)
  | Nop -> Format.pp_print_string ppf "nop"

let pp_program ppf (p : program) =
  Array.iter
    (fun i ->
      (match i with
      | Label _ -> Format.fprintf ppf "%a@." pp_instr i
      | _ -> Format.fprintf ppf "  %a@." pp_instr i))
    p

let mem_operand_of = function Mem m -> [ m ] | Reg _ | Imm _ -> []

let mem_operands = function
  | Mov (_, dst, src) | Alu (_, _, dst, src) | Cmp (_, dst, src) | Test (_, dst, src) ->
      mem_operand_of dst @ mem_operand_of src
  | Movzx (_, _, _, src) | Movsx (_, _, _, src) | Imul (_, _, src) | Cmovcc (_, _, _, src)
  | Bitcnt (_, _, _, src) ->
      mem_operand_of src
  | Shift (_, _, dst, _) | Neg (_, dst) | Not (_, dst) -> mem_operand_of dst
  | Div (_, _, src) -> mem_operand_of src
  | Push op -> mem_operand_of op
  | Vload (_, m) -> [ m ]
  | Vstore (m, _) -> [ m ]
  | Lea (_, _, _)
  | Label _ | Cqo _ | Setcc _ | Jmp _ | Jcc _ | Jmp_reg _ | Call _ | Call_reg _ | Ret
  | Pop _ | Wrfsbase _ | Wrgsbase _ | Rdfsbase _ | Rdgsbase _ | Wrpkru | Rdpkru
  | Vzero _ | Vdup8 _ | Hostcall _ | Trap _ | Nop ->
      []

let uses_segment i = List.exists (fun (m : mem) -> m.seg <> None) (mem_operands i)
