(** The simulated FaaS edge platform of §6.4.3 (Figures 6, 7a, 7b).

    A single core serves a fixed population of in-flight requests. Each
    request waits on IO (delay drawn from a Poisson-parameterized
    distribution with a 5 ms mean, like the paper's simulation), then runs
    its workload inside a Wasm instance under epoch-based preemption
    (1 ms epochs).

    Two scaling strategies are compared:

    - {b ColorGuard}: one process; instances live in a striped pool and
      transitions are user-level (a pkru write — no TLB flush);
    - {b Multiprocess}: [processes] separate engines (own address space,
      own TLB state); the OS round-robins between them on 1 ms timeslices,
      paying a context-switch cost and a TLB flush per switch.

    Compute is real: the workload modules execute on the machine, so dTLB
    misses (Figure 7b) come out of the TLB model rather than a formula. *)

type mode = Colorguard | Multiprocess of int  (** process count (1-15) *)

type config = {
  mode : mode;
  workload : Workloads.t;
  concurrency : int;  (** in-flight requests (closed loop) *)
  duration_ns : float;  (** simulated wall-clock to run for *)
  io_mean_ns : float;  (** mean IO delay (paper: 5 ms) *)
  epoch_ns : float;  (** preemption epoch (paper: 1 ms) *)
  os_switch_ns : float;  (** OS context-switch direct cost *)
  seed : int64;
}

val default_config : ?mode:mode -> ?workload:Workloads.t -> unit -> config
(** concurrency 128, duration 20 ms, IO mean 5 ms, epoch 1 ms, OS switch
    5 us (direct + indirect cost of a Linux process switch), ColorGuard,
    hash workload. *)

type result = {
  completed : int;
  throughput_rps : float;  (** completions per simulated wall-clock second *)
  capacity_rps : float;
      (** completions per CPU-busy second — the per-core efficiency that
          Figure 6's throughput-gain percentages compare *)
  context_switches : int;
      (** OS-level process switches (multiprocess) — Figure 7a's metric;
          always 0 for ColorGuard, whose switches are user-level *)
  user_transitions : int;  (** sandbox entries/exits *)
  dtlb_misses : int;  (** summed over all engines — Figure 7b *)
  checksum : int64;  (** folded request results, for validation *)
  simulated_ns : float;
  cpu_busy_ns : float;
}

val run : config -> result
(** Raises [Failure] if a request traps. *)

val throughput_gain : workload:Workloads.t -> processes:int -> config -> float
(** Percent throughput advantage of ColorGuard over [processes]-process
    scaling for the same load — one point of Figure 6. The [config] supplies
    everything except mode/workload. *)
