(** The three FaaS request workloads of §6.4.3, as real Wasm modules:
    HTML templating, FNV-based load balancing, and DFA-driven URL
    filtering. Each module exports [handle(seed) -> i32]: the request body
    is synthesized in-sandbox from the seed, processed, and checksummed,
    so the simulator's requests perform genuine, validated work. *)

type t = Templating | Hash_balance | Regex_filter

val name : t -> string
val all : t list

val module_of : t -> Sfi_wasm.Ast.module_

val template : string
(** The order-page template the templating workload expands. *)
