lib/faas/workloads.mli: Sfi_wasm
