lib/faas/sim.ml: Array Int64 List Sfi_core Sfi_machine Sfi_runtime Sfi_util Sfi_vmem Sfi_x86 Workloads
