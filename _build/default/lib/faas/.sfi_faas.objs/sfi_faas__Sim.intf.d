lib/faas/sim.mli: Workloads
