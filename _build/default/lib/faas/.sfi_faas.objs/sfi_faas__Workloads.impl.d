lib/faas/workloads.ml: Char List Sfi_wasm Sfi_workloads String
