(** Heterogeneous sandbox chains (§3.2's closing idea).

    The basic ColorGuard stripe assumes equal slots, which forces the
    stride up to [needed_distance / num_colors] and needs a guard region
    whenever 15 consecutive sandboxes are smaller than the isolation
    distance. The paper notes that "a Wasm runtime could also potentially
    chain sandboxes of different sizes to efficiently use colors and
    possibly eliminate the second case".

    This module implements that planner: slots of arbitrary (Wasm-page
    aligned) sizes are packed contiguously, each colored greedily with the
    first color whose previous slot is already at least the isolation
    distance behind; padding is inserted only when no color is eligible.
    Large slots naturally advance every color's eligibility, so mixed
    populations pack with almost no padding. *)

type placement = {
  offset : int;  (** byte offset of the slot's linear memory in the chain *)
  size : int;  (** the slot's linear-memory size *)
  color : int;  (** MPK color, 1-based *)
}

type t = {
  placements : placement list;  (** in input order *)
  total_bytes : int;  (** chain footprint including padding + trailing guard *)
  padding_bytes : int;  (** padding inserted when no color was eligible *)
  reach : int;  (** the isolation distance used *)
}

val plan :
  ?num_keys:int -> reach:int -> sizes:int list -> unit -> (t, string) result
(** Plan a chain. [reach] is the distance an out-of-bounds access from a
    slot may span (its addressing window plus guard — e.g. 4 GiB + guard
    for wasm32); two same-colored slots are never placed closer than
    [reach]. [num_keys] defaults to the 15 usable MPK colors. Sizes must be
    positive multiples of the Wasm page size. A trailing guard of [reach]
    bytes protects the final slots. *)

val utilization : t -> float
(** Linear-memory bytes divided by the total footprint. *)

val check : t -> (unit, string) result
(** Re-verify the isolation property (the invariant-checker analogue for
    chains): every same-colored pair is at least [reach] apart and no two
    slots overlap. *)

val uniform_stripe_footprint : num_keys:int -> reach:int -> sizes:int list -> int
(** Footprint of the same population under uniform striping (every slot
    padded to the stride the largest member forces) — the baseline the
    chain improves on. *)
