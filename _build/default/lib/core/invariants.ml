module Units = Sfi_util.Units

type violation = { number : int; description : string }

let pp_violation ppf v = Format.fprintf ppf "invariant %d violated: %s" v.number v.description

let descriptions =
  [
    (1, "total_slot_bytes == pre_slot_guard_bytes + slot_bytes * num_slots + post_slot_guard_bytes");
    (2, "slot_bytes >= max_memory_bytes");
    (3, "slot sizes and guards are page aligned");
    (4, "1 <= num_stripes <= min(num_pkeys_available (when striping), num_slots)");
    (5, "num_stripes <= guard_bytes / max_memory_bytes + 2");
    (6, "bytes_to_next_stripe_slot >= max(expected_slot_bytes, max_memory_bytes) + guard_bytes; last slot does not rely on MPK");
    (7, "[missing] expected_slot_bytes is a multiple of the Wasm page size (64 KiB)");
    (8, "[missing] max_memory_bytes is a multiple of the Wasm page size (64 KiB)");
    (9, "[missing] guard_bytes is a multiple of the OS page size (4 KiB)");
    (10, "[missing] the total slab fits the usable address space");
  ]

let check (l : Pool.layout) =
  let p = l.Pool.params in
  let violations = ref [] in
  let note number fmt =
    Format.kasprintf
      (fun description -> violations := { number; description } :: !violations)
      fmt
  in
  (* 1: no leaks — the piecewise slab accounting matches the total. Use
     overflow-checked arithmetic so a saturated layout cannot "pass" by
     wrapping here too. *)
  (match
     Checked.add Checked.Checked
       (Checked.add Checked.Checked l.pre_slot_guard_bytes
          (Checked.mul Checked.Checked l.slot_bytes p.num_slots))
       l.post_slot_guard_bytes
   with
  | exception Checked.Overflow _ -> note 1 "slab accounting overflows"
  | sum ->
      if sum <> l.total_slot_bytes then
        note 1 "pre (%d) + slot_bytes (%d) * %d + post (%d) = %d <> total (%d)"
          l.pre_slot_guard_bytes l.slot_bytes p.num_slots l.post_slot_guard_bytes sum
          l.total_slot_bytes);
  (* 2: memories must fit their slots. *)
  if l.slot_bytes < p.max_memory_bytes then
    note 2 "slot_bytes %d < max_memory_bytes %d" l.slot_bytes p.max_memory_bytes;
  (* 3: page alignment of every layout component. *)
  List.iter
    (fun (name, v, align) ->
      if not (Units.is_aligned v align) then note 3 "%s (%d) not %d-aligned" name v align)
    [
      ("slot_bytes", l.slot_bytes, Units.wasm_page_size);
      ("pre_slot_guard_bytes", l.pre_slot_guard_bytes, Units.os_page_size);
      ("post_slot_guard_bytes", l.post_slot_guard_bytes, Units.os_page_size);
      ("total_slot_bytes", l.total_slot_bytes, Units.os_page_size);
    ];
  (* 4: stripe count within the color budget. *)
  if l.num_stripes < 1 then note 4 "num_stripes %d < 1" l.num_stripes;
  if l.num_stripes > 1 && l.num_stripes > p.num_pkeys_available then
    note 4 "num_stripes %d > available pkeys %d" l.num_stripes p.num_pkeys_available;
  if l.num_stripes > max 1 p.num_slots then
    note 4 "num_stripes %d > num_slots %d" l.num_stripes p.num_slots;
  (* 5: no more stripes than the guard region can justify. *)
  if p.max_memory_bytes > 0 && l.num_stripes > (p.guard_bytes / p.max_memory_bytes) + 2 then
    note 5 "num_stripes %d > guard/max_memory + 2 = %d" l.num_stripes
      ((p.guard_bytes / p.max_memory_bytes) + 2);
  (* 6: striping preserves the isolation distance, and the last slot is
     protected without MPK. *)
  let reservation = max p.expected_slot_bytes p.max_memory_bytes in
  if l.num_stripes > 1 then begin
    let next_same_color = l.num_stripes * l.slot_bytes in
    if next_same_color < reservation + p.guard_bytes then
      note 6 "bytes_to_next_stripe_slot %d < %d" next_same_color (reservation + p.guard_bytes)
  end;
  if l.slot_bytes + l.post_slot_guard_bytes < reservation then
    note 6 "slot_bytes + post_slot_guard_bytes = %d < expected reservation %d"
      (l.slot_bytes + l.post_slot_guard_bytes)
      reservation;
  (* 7-10: the verification-discovered preconditions. *)
  if not (Units.is_aligned p.expected_slot_bytes Units.wasm_page_size) then
    note 7 "expected_slot_bytes %d not 64 KiB aligned" p.expected_slot_bytes;
  if not (Units.is_aligned p.max_memory_bytes Units.wasm_page_size) then
    note 8 "max_memory_bytes %d not 64 KiB aligned" p.max_memory_bytes;
  if not (Units.is_aligned p.guard_bytes Units.os_page_size) then
    note 9 "guard_bytes %d not 4 KiB aligned" p.guard_bytes;
  if l.total_slot_bytes > Units.user_address_space_bytes then
    note 10 "total slab %d exceeds the 47-bit user address space" l.total_slot_bytes;
  List.rev !violations
