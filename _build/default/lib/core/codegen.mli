(** The SFI compiler: mini-Wasm to simulated x86-64, under a {!Strategy}.

    This is the repository's implementation of the paper's Figure 1. The
    lowering is a one-pass stack compiler with lazy address expressions
    ("addressing-mode selection"), so the strategies differ exactly where
    the paper says they do:

    - {b Reserved_base} keeps the heap base in [%r14]. A memory operand can
      fold at most one {e clean} (zero-extended) index register and a small
      non-negative displacement — [mov r, \[r14 + ri + disp\]] — because the
      base slot is occupied; any richer address expression (two registers, a
      scaled index, a truncated i64) costs an extra 32-bit [lea]
      (Figure 1b). [%r14] is also removed from the local-variable register
      pool, raising register pressure.
    - {b Segment} (Segue) holds the heap base in [%gs] and emits
      [mov r, gs:\[e1 + e2*s + d\]] with the address-size override: the full
      expression folds, the truncation is free, and [%r14] returns to the
      register allocator (Figure 1c).
    - {b Segment_loads_only} applies the Segue encoding to loads only;
      stores keep the reserved-base scheme (and the base register stays
      reserved) — WAMR's shipping configuration (§4.2).
    - {b Direct} is the native baseline: full folding, no prefixes, no
      reserved register, addresses treated as absolute pointers.

    Bounds modes: [Guard_region] emits no per-access code (the 4 GiB
    window + guard pages trap); [Explicit_check] materializes the 32-bit
    index, compares it against the memory bound held in the instance
    context (addressed via [%fs]), and — without Segue — pays a separate
    base-addition instruction, the instruction Segue eliminates (§6.1's
    bounds-check experiment); [Mask] ANDs the index with the region mask.

    Instance context (vmctx) is addressed through [%fs] (the TLS-style
    segment the OS owns, §3.1 "Other considerations"): byte 0 holds the
    current memory size, byte 8 the heap base, bytes 16/24 the sandbox/host
    PKRU images, and globals start at byte 32. *)

type config = {
  strategy : Strategy.t;
  table_base : int;
      (** absolute address of the indirect-call table (8-byte code
          addresses); shared across instances of a module *)
  table_types_base : int;
      (** absolute address of the parallel type-id array (4 bytes each) *)
  vectorize : bool;
      (** run the WAMR-style {!Vectorize} pass before lowering *)
  colorguard : bool;
      (** emit the MPK domain switch ([wrpkru]) in entry sequences *)
  lfi_reserve_base : bool;
      (** keep [%r14] out of the register allocator even under [Direct]
          addressing — LFI input programs must leave the region base
          register free for the rewriter (§4.3) *)
  segue_cost_function : bool;
      (** the paper's future-work idea for the astar outlier (§6.1): under
          [Segment_loads_only], pick per access between the gs form and the
          reserved-base form by encoded size. No effect on strategies that
          free the base register. *)
}

val default_config : ?strategy:Strategy.t -> unit -> config
(** [table_base] 0x30000000, [table_types_base] 0x31000000, vectorize off,
    colorguard off, strategy {!Strategy.wasm_default}. *)

(** vmctx field offsets (relative to the [%fs] base). *)
val vmctx_memory_bytes : int
val vmctx_heap_base : int
val vmctx_pkru_sandbox : int
val vmctx_pkru_host : int
val vmctx_stack_limit : int
val vmctx_globals : int

(** Hostcall numbers above this are runtime builtins, not imports. *)
val hostcall_memory_grow : int

type compiled = {
  program : Sfi_x86.Ast.program;
  config : config;
  source : Sfi_wasm.Ast.module_;  (** post-vectorization module *)
  entry_labels : (string * string) list;  (** export name -> entry label *)
  func_labels : string array;  (** per function index (imports have "") *)
  table_entries : (string * int) array;
      (** per table slot: (function label, type id) — the loader resolves
          labels to code addresses and writes both arrays *)
  code_bytes : int;
}

val compile : config -> Sfi_wasm.Ast.module_ -> compiled
(** Validates, optionally vectorizes, and lowers the module. Raises
    [Invalid_argument] on invalid modules or unsupported shapes (e.g. an
    import with more than three parameters). *)

val entry_label : compiled -> string -> string
(** Entry label for an export. Raises [Not_found]. *)
