module Units = Sfi_util.Units
module Mte = Sfi_vmem.Mte

let classic_max_instances () = Units.user_address_space_bytes / (8 * Units.gib)
let wasmtime_default_max_instances () = Units.user_address_space_bytes / (6 * Units.gib)

type scaling_report = {
  unstriped_slots : int;
  striped_slots : int;
  factor : float;
  unstriped_stride : int;
  striped_stride : int;
}

let stride_of p =
  match Pool.compute { p with Pool.num_slots = 16 } with
  | Ok l -> l.Pool.slot_bytes
  | Error msg -> invalid_arg ("Colorguard.scaling: " ^ msg)

let scaling ?(address_space_bytes = Units.user_address_space_bytes) (p : Pool.params) =
  let unstriped = { p with Pool.stripe_enabled = false } in
  let striped = { p with Pool.stripe_enabled = true } in
  let unstriped_slots = Pool.max_slots_in unstriped ~address_space_bytes in
  let striped_slots = Pool.max_slots_in striped ~address_space_bytes in
  {
    unstriped_slots;
    striped_slots;
    factor = float_of_int striped_slots /. float_of_int unstriped_slots;
    unstriped_stride = stride_of unstriped;
    striped_stride = stride_of striped;
  }

module Mte_cost = struct
  type t = {
    base_init_ns : float;
    base_teardown_ns : float;
    st2g_ns : float;
    tag_discard_ns : float;
  }

  (* A 64 KiB memory holds 4096 granules: 2048 st2g instructions on init
     (2,182 us - 79 us over 2048 ops ~ 1,027 ns each, dominated by
     cache-cold tag storage), 4096 granule clears on teardown
     (377 us - 29 us over 4096 ~ 85 ns each). *)
  let default =
    {
      base_init_ns = 79_000.0;
      base_teardown_ns = 29_000.0;
      st2g_ns = 1_026.8;
      tag_discard_ns = 84.96;
    }

  let init_instance t mte ~memory_bytes ~tag =
    if tag = 0 then t.base_init_ns
    else begin
      let instrs = Mte.tag_range_user mte ~addr:0 ~len:memory_bytes ~tag in
      t.base_init_ns +. (float_of_int instrs *. t.st2g_ns)
    end

  let teardown_instance t mte ~memory_bytes ~mte:enabled =
    if not enabled then t.base_teardown_ns
    else begin
      let granules = Mte.discard_range mte ~addr:0 ~len:memory_bytes in
      t.base_teardown_ns +. (float_of_int granules *. t.tag_discard_ns)
    end

  let teardown_keeping_tags t _mte ~memory_bytes =
    ignore memory_bytes;
    t.base_teardown_ns

  let reinit_instance t mte ~memory_bytes ~tag =
    if tag = 0 then t.base_init_ns
    else begin
      let mismatched = Mte.count_mismatched mte ~addr:0 ~len:memory_bytes ~tag in
      if mismatched > 0 then ignore (Mte.tag_range_user mte ~addr:0 ~len:memory_bytes ~tag);
      (* st2g covers two granules, so instructions ~ mismatched/2. *)
      t.base_init_ns +. (float_of_int ((mismatched + 1) / 2) *. t.st2g_ns)
    end
end
