(** Executable form of Table 1: the ColorGuard safety invariants.

    The Wasmtime team specified invariants 1-6 and fuzzed them; formal
    verification (Flux + Z3) then revealed one bug (a saturating addition
    that should have been checked) and four missing preconditions
    (invariants 7-10). Here every row of the table is an executable check
    over a {!Pool.layout}; the property-based tests run them against
    randomized parameters in both arithmetic modes, reproducing the §5.2
    verification findings dynamically. *)

type violation = { number : int; description : string }

val pp_violation : Format.formatter -> violation -> unit

val check : Pool.layout -> violation list
(** All Table 1 invariants against a computed layout (empty list = safe).
    Invariants 1-6 are the team-specified properties; 7-10 are the
    verification-discovered preconditions, evaluated on the layout's stored
    parameters. *)

val descriptions : (int * string) list
(** Human-readable table of all ten invariants, for documentation and the
    Table 1 harness. *)
