type mode = Checked | Saturating

exception Overflow of string

let check_nonneg name a b =
  if a < 0 || b < 0 then invalid_arg (Printf.sprintf "Checked.%s: negative operand" name)

let add mode a b =
  check_nonneg "add" a b;
  let r = a + b in
  if r < 0 then
    match mode with
    | Checked -> raise (Overflow (Printf.sprintf "add %d %d" a b))
    | Saturating -> max_int
  else r

let mul mode a b =
  check_nonneg "mul" a b;
  if a = 0 || b = 0 then 0
  else begin
    let r = a * b in
    if r / a <> b || r < 0 then
      match mode with
      | Checked -> raise (Overflow (Printf.sprintf "mul %d %d" a b))
      | Saturating -> max_int
    else r
  end

let align_up mode x a =
  if a <= 0 then invalid_arg "Checked.align_up: non-positive alignment";
  add mode x (a - 1) / a * a
