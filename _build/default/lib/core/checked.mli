(** Overflow-aware integer arithmetic for layout computations.

    §5.2's verification found that Wasmtime's ColorGuard layout code used a
    {e saturating} addition where a {e checked} addition was required: if
    the addition ever saturated, the Table 1 invariants silently broke.
    This module provides both behaviours so the repository can demonstrate
    the bug ({!Pool} takes the arithmetic mode as a parameter and the
    property tests show which mode preserves the invariants). *)

type mode = Checked | Saturating

exception Overflow of string
(** Raised by [Checked] operations that would wrap. *)

val add : mode -> int -> int -> int
(** [add mode a b] for non-negative operands. [Checked] raises {!Overflow}
    on wrap-around; [Saturating] clamps to [max_int] — the buggy behaviour
    the Flux proof flagged. *)

val mul : mode -> int -> int -> int
val align_up : mode -> int -> int -> int
(** Alignment via [add] then truncation, so it inherits the mode's
    overflow behaviour. *)
