(** WAMR-style loop vectorization (§4.2).

    WAMR ships LLVM-level passes that rewrite long scalar load/store
    sequences and byte loops into SIMD code. Those passes pattern-match the
    {e reserved-base} memory-access shape; Segue's segment-relative
    operands do not match, so enabling full Segue silently disables the
    optimization — the cause of the [memmove] (+35.6%) and [sieve] (+48.7%)
    regressions in Figure 4. WAMR's workaround, Segue-for-loads-only, keeps
    the reserved base register (stores still use it), so the pass keeps
    firing.

    We model the pass one level up, on the Wasm IR: canonical byte-copy and
    byte-fill loops (the shape {!Sfi_wasm.Builder.for_loop} emits) are
    rewritten into bulk-memory operations, which lower to the runtime's
    vectorized builtins — {e except} under full Segue, where the pass
    declines to fire, exactly mirroring WAMR's engineering gap.

    The rewrite preserves semantics for non-overlapping (or forward-safe)
    ranges; like WAMR's pass, it assumes the ranges a benchmark loop
    touches do not alias byte-by-byte. *)

val apply : Strategy.t -> Sfi_wasm.Ast.module_ -> Sfi_wasm.Ast.module_
(** Rewrite recognizable byte-copy/byte-fill loops into
    [memory.copy]/[memory.fill]. Returns the module unchanged when the
    strategy's addressing is full [Segment]. *)

val loops_vectorized : Strategy.t -> Sfi_wasm.Ast.module_ -> int
(** How many loops {!apply} would rewrite — used by tests and by the
    Figure 4 harness to report which configurations lost vectorization. *)
