(** ColorGuard-level analyses: scaling arithmetic (§2, §6.4.2) and the
    ARM MTE cost model (§7).

    The striping layout itself lives in {!Pool}; this module answers the
    paper's scaling questions on top of it and models the two MTE
    observations — slow user-level bulk tagging, and tag discard on
    [madvise] — against the {!Sfi_vmem.Mte} tag store. *)

val classic_max_instances : unit -> int
(** §2's arithmetic: a 47-bit user space over 8 GiB (4 GiB memory + 4 GiB
    guard) instances — 16K. *)

val wasmtime_default_max_instances : unit -> int
(** With the 2 GiB + 2 GiB shared-guard scheme (6 GiB per instance):
    roughly 21K ("marginally increase this limit to roughly 21K"). *)

type scaling_report = {
  unstriped_slots : int;
  striped_slots : int;
  factor : float;
  unstriped_stride : int;
  striped_stride : int;
}

val scaling : ?address_space_bytes:int -> Pool.params -> scaling_report
(** The §6.4.2 microbenchmark: how many slots fit the address space with
    and without striping. Raises [Invalid_argument] if the parameters are
    rejected by the layout computation. *)

(** {1 MTE (§7)}

    Costs are calibrated from the paper's Pixel 8 Pro measurements: forty
    64 KiB linear memories take 79 µs/instance to initialize without MTE
    and 2,182 µs with user-level [st2g] tagging (Observation 1);
    deallocation goes from 29 µs to 377 µs because
    [madvise(MADV_DONTNEED)] discards tags (Observation 2). *)

module Mte_cost : sig
  type t = {
    base_init_ns : float;  (** non-MTE per-instance initialization *)
    base_teardown_ns : float;  (** non-MTE madvise-based teardown *)
    st2g_ns : float;  (** per user-level two-granule tagging instruction *)
    tag_discard_ns : float;  (** kernel per-granule tag clearing in madvise *)
  }

  val default : t
  (** Calibrated so a 64 KiB memory reproduces the paper's numbers. *)

  val init_instance : t -> Sfi_vmem.Mte.t -> memory_bytes:int -> tag:int -> float
  (** Tag a fresh instance's memory through the tag store (counting real
      [st2g] operations) and return the simulated time in ns. With
      [tag = 0] (no MTE) only the base cost is charged. *)

  val teardown_instance : t -> Sfi_vmem.Mte.t -> memory_bytes:int -> mte:bool -> float
  (** Model [madvise(MADV_DONTNEED)]: discards tags when [mte] and returns
      the simulated time in ns. *)

  (** {2 The paper's proposed fix}

      §7 suggests "adding a flag to madvise that leaves tags invariant,
      similar to MPK". These model that kernel extension: teardown skips
      the tag clearing, and a subsequent re-initialization only tags the
      granules whose color actually changed — zero when a slot is recycled
      for the same stripe. *)

  val teardown_keeping_tags : t -> Sfi_vmem.Mte.t -> memory_bytes:int -> float
  (** Teardown under the proposed tag-preserving madvise flag: the base
      madvise cost only; tags stay in place. *)

  val reinit_instance : t -> Sfi_vmem.Mte.t -> memory_bytes:int -> tag:int -> float
  (** Re-initialize a recycled slot, tagging only mismatched granules. *)
end
