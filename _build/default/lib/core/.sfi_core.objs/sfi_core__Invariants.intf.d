lib/core/invariants.mli: Format Pool
