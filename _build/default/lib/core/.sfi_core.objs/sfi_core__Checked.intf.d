lib/core/checked.mli:
