lib/core/vectorize.mli: Sfi_wasm Strategy
