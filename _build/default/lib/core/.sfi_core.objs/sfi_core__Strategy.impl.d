lib/core/strategy.ml: Format
