lib/core/invariants.ml: Checked Format List Pool Sfi_util
