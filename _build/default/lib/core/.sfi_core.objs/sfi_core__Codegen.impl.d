lib/core/codegen.ml: Array Format Int32 Int64 Lazy List Option Printf Sfi_util Sfi_wasm Sfi_x86 Strategy Vectorize
