lib/core/pool.mli: Checked Format
