lib/core/vectorize.ml: Array List Sfi_wasm Strategy
