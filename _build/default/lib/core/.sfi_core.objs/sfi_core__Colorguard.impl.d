lib/core/colorguard.ml: Pool Sfi_util Sfi_vmem
