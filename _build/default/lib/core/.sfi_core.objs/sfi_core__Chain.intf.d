lib/core/chain.mli:
