lib/core/pool.ml: Checked Format Sfi_util Sfi_vmem
