lib/core/chain.ml: Array List Printf Sfi_util Sfi_vmem
