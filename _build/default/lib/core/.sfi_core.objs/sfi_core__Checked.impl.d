lib/core/checked.ml: Printf
