lib/core/codegen.mli: Sfi_wasm Sfi_x86 Strategy
