lib/core/colorguard.mli: Pool Sfi_vmem
