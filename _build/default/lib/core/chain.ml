module Units = Sfi_util.Units

type placement = { offset : int; size : int; color : int }

type t = {
  placements : placement list;
  total_bytes : int;
  padding_bytes : int;
  reach : int;
}

let plan ?(num_keys = Sfi_vmem.Mpk.max_usable_keys) ~reach ~sizes () =
  if num_keys < 1 || num_keys > Sfi_vmem.Mpk.max_usable_keys then
    Error "num_keys out of range"
  else if reach <= 0 then Error "reach must be positive"
  else if sizes = [] then Error "empty chain"
  else if
    List.exists (fun s -> s <= 0 || not (Units.is_aligned s Units.wasm_page_size)) sizes
  then Error "sizes must be positive multiples of the Wasm page size"
  else begin
    (* next_ok.(c) = first offset where color c+1 may be used again. *)
    let next_ok = Array.make num_keys 0 in
    let cursor = ref 0 in
    let padding = ref 0 in
    let place size =
      (* Prefer the eligible color that has waited longest (smallest
         next_ok): round-robin-ish fairness keeps all colors advancing. *)
      let best = ref (-1) in
      for c = 0 to num_keys - 1 do
        if next_ok.(c) <= !cursor && (!best < 0 || next_ok.(c) < next_ok.(!best)) then best := c
      done;
      let c =
        if !best >= 0 then !best
        else begin
          (* No eligible color: pad to the earliest eligibility point —
             the guard-before-reuse case the paper describes, which mixed
             sizes mostly avoid. *)
          let soonest = ref 0 in
          for c = 1 to num_keys - 1 do
            if next_ok.(c) < next_ok.(!soonest) then soonest := c
          done;
          padding := !padding + (next_ok.(!soonest) - !cursor);
          cursor := next_ok.(!soonest);
          !soonest
        end
      in
      let offset = !cursor in
      next_ok.(c) <- offset + reach;
      cursor := offset + size;
      { offset; size; color = c + 1 }
    in
    let placements = List.map place sizes in
    Ok
      {
        placements;
        (* A trailing guard protects every live reach window. *)
        total_bytes = !cursor + reach;
        padding_bytes = !padding;
        reach;
      }
  end

let utilization t =
  let payload = List.fold_left (fun acc p -> acc + p.size) 0 t.placements in
  float_of_int payload /. float_of_int t.total_bytes

let check t =
  let rec pairwise = function
    | [] -> Ok ()
    | p :: rest ->
        let bad_overlap =
          List.exists
            (fun q ->
              (not (p == q))
              && p.offset < q.offset + q.size
              && q.offset < p.offset + p.size)
            rest
        in
        if bad_overlap then Error (Printf.sprintf "slot at %d overlaps a later slot" p.offset)
        else begin
          let bad_color =
            List.exists
              (fun q -> q.color = p.color && abs (q.offset - p.offset) < t.reach)
              rest
          in
          if bad_color then
            Error
              (Printf.sprintf "same-colored slots closer than reach at offset %d" p.offset)
          else pairwise rest
        end
  in
  pairwise t.placements

let uniform_stripe_footprint ~num_keys ~reach ~sizes =
  (* Uniform striping fixes one stride for everybody: large enough that
     num_keys consecutive slots cover the reach. *)
  let stride = Units.align_up ((reach + num_keys - 1) / num_keys) Units.wasm_page_size in
  let stride = max stride (List.fold_left max 0 sizes) in
  (List.length sizes * stride) + reach
