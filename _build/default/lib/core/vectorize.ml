module W = Sfi_wasm.Ast

(* A "simple" pure expression we are willing to duplicate: a constant or a
   local read. *)
let is_simple = function W.Const _ | W.Local_get _ -> true | _ -> false

type match_result =
  | Copy of { dst : W.instr; src : W.instr }
  | Fill of { dst : W.instr; value : W.instr }

(* Match the canonical counted-byte-loop shape that Builder.for_loop
   produces (step 1):
     loop:
       get i; STOP; ge_u; br_if 1;
       BODY;
       get i; const 1; add; set i; br 0
   where BODY is a byte copy or byte fill at induction offset. *)
let match_loop seq =
  match seq with
  | W.Local_get i
    :: stop
    :: W.Relop (W.I32, W.Ge_u)
    :: W.Br_if 1
    :: rest
    when is_simple stop -> (
      let tail_matches body_len =
        match List.filteri (fun k _ -> k >= body_len) rest with
        | [ W.Local_get i'; W.Const (W.V_i32 1l); W.Binop (W.I32, W.Add); W.Local_set i''; W.Br 0 ]
          -> i' = i && i'' = i
        | _ -> false
      in
      let base_ok b = is_simple b && (match b with W.Local_get v -> v <> i | _ -> true) in
      match rest with
      (* Byte copy: (d + i) <- load8_u (s + i) *)
      | dst
        :: W.Local_get i1
        :: W.Binop (W.I32, W.Add)
        :: src
        :: W.Local_get i2
        :: W.Binop (W.I32, W.Add)
        :: W.Load (W.I32, Some (W.P8, W.Unsigned), { offset = 0 })
        :: W.Store (W.I32, Some W.P8, { offset = 0 })
        :: _
        when i1 = i && i2 = i && base_ok dst && base_ok src && tail_matches 8 ->
          Some (i, stop, Copy { dst; src })
      (* Byte fill: (d + i) <- v *)
      | dst
        :: W.Local_get i1
        :: W.Binop (W.I32, W.Add)
        :: value
        :: W.Store (W.I32, Some W.P8, { offset = 0 })
        :: _
        when i1 = i && base_ok dst && base_ok value
             && (match (value, dst) with
                | W.Local_get v, W.Local_get d -> v <> d
                | _ -> true)
             && tail_matches 5 ->
          Some (i, stop, Fill { dst; value })
      | _ -> None)
  | _ -> None

(* The rewritten form: if (i < stop) { bulk_op; i = stop }. The bulk ops
   have memmove semantics, so this is equivalent for the non-aliasing
   ranges benchmark loops touch. *)
let rewrite i stop = function
  | Copy { dst; src } ->
      [
        W.Local_get i;
        stop;
        W.Relop (W.I32, W.Lt_u);
        W.If
          ( None,
            [
              dst;
              W.Local_get i;
              W.Binop (W.I32, W.Add);
              src;
              W.Local_get i;
              W.Binop (W.I32, W.Add);
              stop;
              W.Local_get i;
              W.Binop (W.I32, W.Sub);
              W.Memory_copy;
              stop;
              W.Local_set i;
            ],
            [] );
      ]
  | Fill { dst; value } ->
      [
        W.Local_get i;
        stop;
        W.Relop (W.I32, W.Lt_u);
        W.If
          ( None,
            [
              dst;
              W.Local_get i;
              W.Binop (W.I32, W.Add);
              value;
              stop;
              W.Local_get i;
              W.Binop (W.I32, W.Sub);
              W.Memory_fill;
              stop;
              W.Local_set i;
            ],
            [] );
      ]

let rec transform_instrs count instrs =
  List.concat_map
    (fun instr ->
      match instr with
      | W.Block (None, [ W.Loop (None, seq) ]) -> (
          match match_loop seq with
          | Some (i, stop, kind) ->
              incr count;
              rewrite i stop kind
          | None -> [ W.Block (None, [ W.Loop (None, transform_instrs count seq) ]) ])
      | W.Block (bt, body) -> [ W.Block (bt, transform_instrs count body) ]
      | W.Loop (bt, body) -> [ W.Loop (bt, transform_instrs count body) ]
      | W.If (bt, t, e) -> [ W.If (bt, transform_instrs count t, transform_instrs count e) ]
      | other -> [ other ])
    instrs

let transform count (m : W.module_) =
  {
    m with
    W.funcs =
      Array.map (fun f -> { f with W.body = transform_instrs count f.W.body }) m.W.funcs;
  }

let apply strategy m =
  (* The pass does not recognize segment-relative operands: full Segue
     disables it (the Figure 4 regression). *)
  if strategy.Strategy.addressing = Strategy.Segment then m
  else begin
    let count = ref 0 in
    transform count m
  end

let loops_vectorized strategy m =
  if strategy.Strategy.addressing = Strategy.Segment then 0
  else begin
    let count = ref 0 in
    ignore (transform count m);
    !count
  end
