(** SPEC CPU 2006-like kernels: the Wasm-compatible subset the paper's
    Figure 3 and Table 2 evaluate. Each kernel mirrors its namesake's hot
    loops in integer/fixed-point form and returns a checksum; [mcf] also
    provides the wide (64-bit field) native layout behind the paper's
    "faster than native" outlier. See the implementation header for the
    per-kernel algorithms. *)

val bzip2 : Kernel.t
val mcf : Kernel.t
val milc : Kernel.t
val namd : Kernel.t
val gobmk : Kernel.t
val sjeng : Kernel.t
val libquantum : Kernel.t
val h264ref : Kernel.t
val lbm : Kernel.t
val astar : Kernel.t

val all : Kernel.t list
(** The ten kernels, in the paper's Figure 3 order. *)

(** {1 Generators}

    Exposed for reuse by {!Spec2017} — the real 2006/2017 suites share
    benchmark lineage (mcf, namd, lbm, h264/x264, sjeng/deepsjeng). *)

val mcf_module : wide:bool -> unit -> Sfi_wasm.Ast.module_
val namd_module : unit -> Sfi_wasm.Ast.module_
val lbm_module : unit -> Sfi_wasm.Ast.module_
val h264_module : unit -> Sfi_wasm.Ast.module_
val sjeng_module : unit -> Sfi_wasm.Ast.module_
