(* Firefox library-sandboxing workloads (§6.1).

   Firefox compiles third-party C libraries to Wasm (via wasm2c/RLBox) and
   calls into the sandbox at library-call granularity. Two properties make
   these benchmarks different from SPEC-style kernels:

   - font rendering (libgraphite) enters the sandbox once per glyph, so
     the per-invocation transition — including setting the segment base
     under Segue, and the arch_prctl syscall fallback on pre-FSGSBASE
     CPUs — is part of the measured cost;
   - XML parsing (libexpat) makes few calls that each scan a large
     document, so in-sandbox memory-access instrumentation dominates.

   The font kernel shapes a glyph: it walks the glyph's outline points,
   applies a fixed-point scale/translate transform, accumulates a bounding
   box, and rasterizes a coarse coverage bitmap. The XML kernel tokenizes
   an SVG document (generated to mimic a toolbar-icon sprite sheet, the
   paper's Google-Docs workload), counting elements, attributes and text
   spans with a checksum. *)

module W = Sfi_wasm.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine
open Sfi_wasm.Builder

(* --- font shaping ------------------------------------------------------ *)

(* Memory: glyph outlines at 0 (glyph i: 64 points of (x, y) Q8 pairs),
   coverage bitmap at 0x80000. *)
let glyph_count = 512
let points_per_glyph = 16

let font_module () =
  let b = create ~memory_pages:16 () in
  let init = declare b "init" ~params:[] ~results:[] () in
  let i = 0 and state = 1 in
  define b init ~locals:[ W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0
       ~count:[ i32 (glyph_count * points_per_glyph * 2) ]
       ~i ~state ~seed:0xF0);
  (* shape(glyph, scale) -> bbox checksum *)
  let shape = declare b "shape" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  let p = 2 and x = 3 and y = 4 and minx = 5 and maxx = 6 and miny = 7 and maxy = 8 in
  let bitmap = 0x80000 in
  define b shape ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 0x7FFFFFFF; set minx; i32 0x7FFFFFFF; set miny ]
    @ for_loop ~i:p ~start:[ i32 0 ] ~stop:[ i32 points_per_glyph ]
        [
          (* load point, transform: v * scale >> 8 + offset *)
          get 0; i32 (points_per_glyph * 8); mul;
          get p; i32 3; shl; add; load32 ();
          i32 0xFFFF; band; get 1; mul; i32 8; shr_s; i32 64; add; set x;
          get 0; i32 (points_per_glyph * 8); mul;
          get p; i32 3; shl; add; load32 ~offset:4 ();
          i32 0xFFFF; band; get 1; mul; i32 8; shr_s; i32 64; add; set y;
          (* bbox *)
          get x; get minx; lt_s; if_ [ get x; set minx ] [];
          get x; get maxx; gt_s; if_ [ get x; set maxx ] [];
          get y; get miny; lt_s; if_ [ get y; set miny ] [];
          get y; get maxy; gt_s; if_ [ get y; set maxy ] [];
          (* coverage: set a bit in the coarse bitmap *)
          get x; i32 10; shr_u; i32 255; band;
          get y; i32 10; shr_u; i32 255; band; i32 8; shl; add;
          i32 bitmap; add;
          get x; i32 10; shr_u; i32 255; band;
          get y; i32 10; shr_u; i32 255; band; i32 8; shl; add;
          i32 bitmap; add; load8_u ();
          i32 1; bor; store8 ();
        ]
    @ [ get maxx; get minx; sub; get maxy; get miny; sub; add ]);
  build b

(* --- XML / SVG parsing -------------------------------------------------- *)

(* A deterministic SVG-ish sprite sheet, concatenated like the paper's
   amplified Google-Docs toolbar document. *)
let svg_document ~icons ~copies =
  let buf = Buffer.create (icons * copies * 96) in
  Buffer.add_string buf "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"1024\">";
  for _ = 1 to copies do
    for icon = 0 to icons - 1 do
      Buffer.add_string buf
        (Printf.sprintf
           "<g id=\"icon%d\" class=\"toolbar\"><path d=\"M%d %d L%d %d Z\" fill=\"#%06x\"/><rect x=\"%d\" y=\"%d\" width=\"16\" height=\"16\"/><text>tool %d</text></g>"
           icon (icon * 7 mod 97) (icon * 13 mod 89) (icon * 31 mod 71) (icon * 3 mod 61)
           (icon * 0x10450 land 0xFFFFFF) (icon mod 32 * 20) (icon / 32 * 20) icon)
    done
  done;
  Buffer.add_string buf "</svg>";
  Buffer.contents buf

let xml_module ~document () =
  let pages = ((String.length document + 0xFFFF) / 0x10000) + 2 in
  let b = create ~memory_pages:(pages + 4) () in
  data b ~offset:0 document;
  (* parse(len) -> checksum: a state-machine tokenizer counting tags,
     attributes and text, with a rolling hash of names. *)
  let parse = declare b "parse" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let pos = 1 and c = 2 and tags = 3 and attrs = 4 and h = 5 and acc = 6 and depth = 7 in
  define b parse ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (while_loop
       [ get pos; get 0; lt_u ]
       [
         get pos; load8_u (); set c;
         get c; i32 (Char.code '<'); eq;
         if_
           [
             (* tag open or close *)
             get pos; load8_u ~offset:1 (); i32 (Char.code '/'); eq;
             if_
               [ get depth; i32 1; sub; set depth ]
               [
                 get tags; i32 1; add; set tags;
                 get depth; i32 1; add; set depth;
                 (* hash the tag name *)
                 i32 0; set h;
                 get pos; i32 1; add; set pos;
                 block
                   (loop
                      [
                        get pos; load8_u (); tee c;
                        i32 (Char.code 'a'); ge_u;
                        get c; i32 (Char.code 'z'); le_u; band;
                        eqz; br_if 1;
                        get h; i32 31; mul; get c; add; set h;
                        get pos; i32 1; add; set pos;
                        br 0;
                      ]
                   :: []);
                 get acc; get h; bxor; i32 1; rotl; set acc;
               ];
           ]
           [
             get c; i32 (Char.code '='); eq;
             if_
               [ get attrs; i32 1; add; set attrs ]
               [
                 (* text content contributes to the checksum *)
                 get c; i32 (Char.code '>'); ne; get depth; i32 0; gt_s; band;
                 if_ [ get acc; get c; add; set acc ] [];
               ];
           ];
         get pos; i32 1; add; set pos;
       ]
    @ [ get acc; get tags; i32 16; shl; add; get attrs; add ]);
  build b

(* --- measurement -------------------------------------------------------- *)

type scenario_result = {
  invocations : int;
  total_ns : float;
  per_call_ns : float;
  checksum : int64;
}

let engine_for ?(fsgsbase_available = true) strategy m =
  let compiled = Codegen.compile (Codegen.default_config ~strategy ()) m in
  let engine = Runtime.create_engine ~fsgsbase_available compiled in
  let inst = Runtime.instantiate engine in
  (engine, inst)

(* Shape [glyphs] glyphs, entering the sandbox once per glyph as Firefox
   does — the per-invocation segment-base write is part of the cost. *)
let run_font ?fsgsbase_available ~strategy ~glyphs () =
  let engine, inst = engine_for ?fsgsbase_available strategy (font_module ()) in
  (match Runtime.invoke inst "init" [] with
  | Ok _ -> ()
  | Error k -> failwith ("font init trapped: " ^ Sfi_x86.Ast.trap_name k));
  Runtime.reset_metrics engine;
  let checksum = ref 0L in
  for g = 0 to glyphs - 1 do
    match
      Runtime.invoke inst "shape"
        [ Int64.of_int (g mod glyph_count); Int64.of_int (200 + (g mod 64)) ]
    with
    | Ok v -> checksum := Int64.add !checksum (Int64.logand v 0xFFFFFFFFL)
    | Error k -> failwith ("font shape trapped: " ^ Sfi_x86.Ast.trap_name k)
  done;
  let total_ns = Machine.elapsed_ns (Runtime.machine engine) in
  { invocations = glyphs; total_ns; per_call_ns = total_ns /. float_of_int glyphs;
    checksum = !checksum }

(* Parse the document [repeats] times (one sandbox entry per parse). *)
let run_xml ?fsgsbase_available ~strategy ~repeats () =
  let document = svg_document ~icons:96 ~copies:10 in
  let engine, inst = engine_for ?fsgsbase_available strategy (xml_module ~document ()) in
  Runtime.reset_metrics engine;
  let checksum = ref 0L in
  for _ = 1 to repeats do
    match Runtime.invoke inst "parse" [ Int64.of_int (String.length document) ] with
    | Ok v -> checksum := Int64.add !checksum (Int64.logand v 0xFFFFFFFFL)
    | Error k -> failwith ("xml parse trapped: " ^ Sfi_x86.Ast.trap_name k)
  done;
  let total_ns = Machine.elapsed_ns (Runtime.machine engine) in
  { invocations = repeats; total_ns; per_call_ns = total_ns /. float_of_int repeats;
    checksum = !checksum }
