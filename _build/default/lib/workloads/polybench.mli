(** PolybenchC-like kernels and a Dhrystone-like benchmark (§6.2).

    The real Polybench computes on 8-byte doubles; these integer ports use
    4-byte fixed point in the Wasm layout and provide an 8-byte "native
    double" layout as the native baseline, reproducing the working-set
    halving that makes Wasm measurably {e faster} than native on this
    suite. *)

val gemm : Kernel.t
val atax : Kernel.t
val bicg : Kernel.t
val mvt : Kernel.t
val trmm : Kernel.t
val jacobi2d : Kernel.t
val seidel2d : Kernel.t
val covariance : Kernel.t

val all : Kernel.t list
(** The eight Polybench kernels (Dhrystone is separate). *)

val dhrystone : Kernel.t
(** Records, string compares, branches and calls, with a wide-field native
    layout. *)

val dhrystone_module : wide:bool -> unit -> Sfi_wasm.Ast.module_
(** Exposed for tests that compare the two layouts directly. *)
