(* SPEC CPU 2006-like kernels (the Wasm-compatible subset of Figure 3 and
   Table 2). Each kernel reimplements the hot loop structure and memory
   behaviour of its namesake benchmark — compression with move-to-front
   scanning (bzip2), pointer-chasing graph relaxation (mcf), lattice QCD
   arithmetic (milc), molecular-dynamics pair forces (namd), board-game
   pattern evaluation (gobmk), chess bitboards (sjeng), quantum gate
   simulation (libquantum), video SAD search (h264ref), a fluid stencil
   (lbm), and grid pathfinding (astar) — in integer/fixed-point form.

   All kernels take a scale parameter and return a 32-bit checksum so a
   miscompilation can never look like a speedup. mcf also ships a "native"
   variant whose node/edge fields are 64-bit pointers-and-longs wide,
   reproducing the working-set doubling that lets 32-bit Wasm beat native
   on pointer-heavy code (§6.1's 429_mcf outlier). *)

module W = Sfi_wasm.Ast
open Sfi_wasm.Builder

let k name ?native ~args ~description wasm =
  Kernel.make ~name ~suite:"spec2006" ~description ?native ~entry:"run"
    ~args:[ Int64.of_int args ]
    wasm

(* --- 401.bzip2: RLE + move-to-front compression ---------------------- *)

let bzip2_module () =
  let b = create ~memory_pages:8 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* locals: 1 i, 2 state, 3 j, 4 acc, 5 c, 6 runlen, 7 out, 8 tmp *)
  let i = 1 and state = 2 and j = 3 and acc = 4 and c = 5 and runlen = 6 and out = 7 and tmp = 8 in
  let input = 0 and mtf = 0x20000 and output = 0x30000 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* biased random input: low entropy to create runs *)
     [ i32 12345; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([ get i; i32 input; add ]
        @ Frag.lcg_next ~state
        @ [ i32 10; shr_u; i32 7; band; store8 () ])
    (* mtf table: identity permutation over 64 symbols *)
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 64 ] [ get i; i32 mtf; add; get i; store8 () ]
    @ [ i32 0; set out; i32 0; set runlen ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([ get i; i32 input; add; load8_u (); set c ]
        (* find c's rank in the mtf table *)
        @ [ i32 0; set j ]
        @ while_loop
            [ get j; i32 mtf; add; load8_u (); get c; ne ]
            [ get j; i32 1; add; set j ]
        (* move to front: shift table[0..j) up by one *)
        @ [ get j; set tmp ]
        @ while_loop
            [ get tmp; i32 0; gt_u ]
            [
              get tmp; i32 mtf; add;
              get tmp; i32 1; sub; i32 mtf; add; load8_u ();
              store8 ();
              get tmp; i32 1; sub; set tmp;
            ]
        @ [ i32 mtf; get c; store8 () ]
        (* RLE over ranks: rank 0 extends the run, others flush *)
        @ [
            get j; eqz;
            if_
              [ get runlen; i32 1; add; set runlen ]
              [
                get out; i32 output; add; get runlen; store8 ();
                get out; i32 1; add; i32 output; add; get j; store8 ();
                get out; i32 2; add; set out;
                i32 0; set runlen;
              ];
          ])
    (* checksum the output stream *)
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get out ]
        [ get acc; i32 1; rotl; get i; i32 output; add; load8_u (); bxor; set acc ]
    @ [ get acc; get out; add ]);
  build b

(* --- 429.mcf: network simplex-ish relaxation over a node/arc graph --- *)

(* [wide=false]: 32-bit node/arc records (the Wasm layout).
   [wide=true]: 64-bit fields — native pointers and longs — doubling the
   working set (the cache effect behind "mcf runs faster in Wasm"). *)
let mcf_module ~wide () =
  let b = create ~memory_pages:(if wide then 160 else 96) () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* locals: 1 i, 2 state, 3 round, 4 src, 5 dst, 6 w, 7 acc, 8 e *)
  let i = 1 and state = 2 and round = 3 and src = 4 and dst = 5 and w = 6 and acc = 7 and e = 8 in
  let nodes = 65536 in
  let arc_field_sz = if wide then 8 else 4 in
  (* arcs: (src, dst, weight) triples *)
  let arc_base = if wide then nodes * 8 else nodes * 4 in
  let arc_stride = 3 * arc_field_sz in
  (* dist array element access helpers *)
  let dist_addr idx_code =
    if wide then idx_code @ [ i32 3; shl ] else idx_code @ [ i32 2; shl ]
  in
  let load_dist idx_code =
    if wide then dist_addr idx_code @ [ Load (W.I64, None, { offset = 0 }); wrap ]
    else dist_addr idx_code @ [ load32 () ]
  in
  let store_dist idx_code value_code =
    if wide then dist_addr idx_code @ value_code @ [ extend_u; store64 () ]
    else dist_addr idx_code @ value_code @ [ store32 () ]
  in
  let arc_addr e_code field =
    e_code @ [ i32 arc_stride; mul; i32 (arc_base + (field * arc_field_sz)); add ]
  in
  let load_arc e_code field =
    if wide then arc_addr e_code field @ [ Load (W.I64, None, { offset = 0 }); wrap ]
    else arc_addr e_code field @ [ load32 () ]
  in
  let store_arc e_code field value_code =
    if wide then arc_addr e_code field @ value_code @ [ extend_u; store64 () ]
    else arc_addr e_code field @ value_code @ [ store32 () ]
  in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* distances: large sentinel; node 0 = 0 *)
     for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 nodes ]
       (store_dist [ get i ] [ i32 0x3FFFFFFF ])
    @ store_dist [ i32 0 ] [ i32 0 ]
    (* random arcs, locality-poor to stress the cache *)
    @ [ i32 777; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (store_arc [ get i ]
           0
           (Frag.lcg_next ~state @ [ i32 (nodes - 1); band ])
        @ store_arc [ get i ] 1 (Frag.lcg_next ~state @ [ i32 (nodes - 1); band ])
        @ store_arc [ get i ] 2 (Frag.lcg_next ~state @ [ i32 255; band; i32 1; add ]))
    (* relaxation rounds *)
    @ for_loop ~i:round ~start:[ i32 0 ] ~stop:[ i32 6 ]
        (for_loop ~i:e ~start:[ i32 0 ] ~stop:[ get 0 ]
           (load_arc [ get e ] 0
           @ [ set src ]
           @ load_arc [ get e ] 1
           @ [ set dst ]
           @ load_arc [ get e ] 2
           @ [ set w ]
           @ load_dist [ get src ]
           @ [ get w; add ]
           @ load_dist [ get dst ]
           @ [
               lt_u;
               if_
                 (load_dist [ get src ] @ [ get w; add; set w ]
                 @ store_dist [ get dst ] [ get w ])
                 [];
             ]))
    (* checksum distances *)
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 nodes ]
        ([ get acc; i32 1; rotl ] @ load_dist [ get i ] @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- 433.milc: su(2)-flavoured fixed-point lattice arithmetic -------- *)

let milc_module () =
  let b = create ~memory_pages:32 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* Complex 2x2 matrices as 8 i32 fixed-point values (Q16). A link field
     over a 4D lattice flattened into an array; each site multiplies its
     matrix with its neighbour's and accumulates the trace. *)
  let i = 1 and state = 2 and site = 3 and acc = 4 and a = 5 and bb = 6 and t = 7 in
  let sites = 8192 in
  let matw = 32 (* bytes per 2x2 complex matrix of i32 *) in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ i32 (sites * 8) ] ~i ~state ~seed:31415
    @ [ i32 0; set acc ]
    @ for_loop ~i:site ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([
           (* a = base of site's matrix; b = neighbour (site+1 mod sites) *)
           get site; i32 (sites - 1); band; i32 matw; mul; set a;
           get site; i32 1; add; i32 (sites - 1); band; i32 matw; mul; set bb;
         ]
        (* trace of product: sum over k of a[0k]*b[k0] (complex, Q16) *)
        @ [
            (* real part: a00r*b00r - a00i*b00i + a01r*b10r - a01i*b10i *)
            get a; load32 (); get bb; load32 (); mul; i32 16; shr_s;
            get a; load32 ~offset:4 (); get bb; load32 ~offset:4 (); mul; i32 16; shr_s; sub;
            get a; load32 ~offset:8 (); get bb; load32 ~offset:16 (); mul; i32 16; shr_s; add;
            get a; load32 ~offset:12 (); get bb; load32 ~offset:20 (); mul; i32 16; shr_s; sub;
            set t;
            get acc; get t; add; i32 5; rotl; set acc;
            (* imag part folded in as well *)
            get a; load32 (); get bb; load32 ~offset:4 (); mul; i32 16; shr_s;
            get a; load32 ~offset:4 (); get bb; load32 (); mul; i32 16; shr_s; add;
            get acc; bxor; set acc;
            (* store the product's first element back (field update) *)
            get a; get t; store32 ();
          ])
    @ [ get acc ]);
  build b

(* --- 444.namd: pairwise force accumulation --------------------------- *)

let namd_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* atoms: x,y,z,f as parallel i32 arrays (Q8 fixed point) *)
  let i = 1 and state = 2 and jj = 3 and acc = 4 and dx = 5 and dy = 6 and r2 = 7 in
  let n = 1024 in
  let xs = 0 and ys = n * 4 and zs = n * 8 and fs = n * 12 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ i32 (3 * n) ] ~i ~state ~seed:271828
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:jj ~start:[ get i; i32 1; add; i32 (n - 1); band ]
           ~stop:[ get i; i32 33; add; i32 (n - 1); band ]
           [
             (* dx = x[i&mask] - x[j]; dy likewise; r2 = dx^2+dy^2+z term *)
             get i; i32 (n - 1); band; i32 2; shl; i32 xs; add; load32 ();
             get jj; i32 2; shl; i32 xs; add; load32 (); sub; i32 8; shr_s; set dx;
             get i; i32 (n - 1); band; i32 2; shl; i32 ys; add; load32 ();
             get jj; i32 2; shl; i32 ys; add; load32 (); sub; i32 8; shr_s; set dy;
             get dx; get dx; mul; get dy; get dy; mul; add;
             get i; i32 (n - 1); band; i32 2; shl; i32 zs; add; load32 (); i32 16; shr_s; add;
             i32 1; bor; set r2;
             (* force ~ 1/r2 (integer approximation), accumulate *)
             get jj; i32 2; shl; i32 fs; add;
             get jj; i32 2; shl; i32 fs; add; load32 ();
             i32 0x10000; get r2; div_s; add;
             store32 ();
           ])
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:fs ~count:[ i32 n ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- 445.gobmk: board scanning and liberty counting ------------------ *)

let gobmk_module () =
  let b = create ~memory_pages:4 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and pos = 3 and acc = 4 and libs = 5 and stone = 6 and g = 7 in
  let bsize = 21 (* padded 19x19 board *) in
  let board = 0 in
  let cells = bsize * bsize in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 999; set state ]
    @ for_loop ~i:g ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* sprinkle stones *)
         for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 cells ]
           ([ get i; i32 board; add ]
           @ Frag.lcg_next ~state
           @ [ i32 3; rem_u; store8 () ])
        (* scan: for each stone, count empty orthogonal neighbours *)
        @ for_loop ~i:pos ~start:[ i32 bsize ] ~stop:[ i32 (cells - bsize) ]
            [
              get pos; i32 board; add; load8_u (); tee stone;
              if_
                [
                  i32 0; set libs;
                  get pos; i32 1; sub; i32 board; add; load8_u (); eqz;
                  get libs; add; set libs;
                  get pos; i32 1; add; i32 board; add; load8_u (); eqz;
                  get libs; add; set libs;
                  get pos; i32 bsize; sub; i32 board; add; load8_u (); eqz;
                  get libs; add; set libs;
                  get pos; i32 bsize; add; i32 board; add; load8_u (); eqz;
                  get libs; add; set libs;
                  (* pattern bonus: diagonal friends *)
                  get pos; i32 (bsize + 1); add; i32 board; add; load8_u (); get stone; eq;
                  if_ [ get libs; i32 2; mul; set libs ] [];
                  get acc; get libs; add; get stone; rotl; set acc;
                ]
                [];
            ])
    @ [ get acc ]);
  build b

(* --- 458.sjeng: bitboard move generation ------------------------------ *)

let sjeng_module () =
  let b = create ~memory_pages:4 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* locals: 1 i, 2 acc(i64), 3 occ(i64), 4 moves(i64), 5 sq *)
  let i = 1 and acc = 2 and occ = 3 and moves = 4 and sq = 5 in
  let rotl64 = W.Binop (W.I64, W.Rotl) in
  define b run ~locals:[ W.I32; W.I64; W.I64; W.I64; W.I32 ]
    ((* attack table: 64 i64 entries at 0, deterministic bit soup *)
     for_loop ~i:sq ~start:[ i32 0 ] ~stop:[ i32 64 ]
       [
         get sq; i32 3; shl;
         i64 1; get sq; extend_u; shl64;
         i64' 0x9E3779B97F4A7C15L; bxor64;
         get sq; i32 1; add; extend_u; mul64;
         store64 ();
       ]
    @ [ i64' 0xFFFF00000000FFFFL; set occ ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        [
          get i; i32 63; band; set sq;
          (* moves = table[sq] & ~occ *)
          get sq; i32 3; shl; load64 ();
          get occ; i64' (-1L); bxor64; band64; set moves;
          (* count mobility, evolve occupancy *)
          get acc; get moves; W.Popcnt W.I64; add64; set acc;
          get occ; i64 1; rotl64; get moves; bxor64; set occ;
          get acc; get occ; W.Ctz W.I64; add64; set acc;
        ]
    @ [ get acc; wrap; get occ; wrap; bxor; get occ; i64 32; shr_u64; wrap; bxor ]);
  build b

(* --- 462.libquantum: gate application over a state vector ------------ *)

let libquantum_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and gate = 3 and acc = 4 and target = 5 and partner = 6 and t = 7 in
  let amps = 16384 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ i32 amps ] ~i ~state ~seed:161803
    @ for_loop ~i:gate ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* controlled-not-ish on bit (gate mod 14): swap-add amplitude pairs *)
         [ get gate; i32 14; rem_u; set target ]
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 amps ]
            [
              get i; i32 1; get target; shl; band; eqz;
              if_
                [
                  get i; i32 1; get target; shl; bor; set partner;
                  (* butterfly: a' = a + b, b' = a - b (Hadamard-ish) *)
                  get i; i32 2; shl; load32 (); set t;
                  get i; i32 2; shl;
                  get t; get partner; i32 2; shl; load32 (); add; i32 1; shr_s;
                  store32 ();
                  get partner; i32 2; shl;
                  get t; get partner; i32 2; shl; load32 (); sub;
                  store32 ();
                ]
                [];
            ])
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:0 ~count:[ i32 amps ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- 464.h264ref: sum-of-absolute-differences motion search ---------- *)

let h264_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and mv = 3 and acc = 4 and x = 5 and y = 6 and sad = 7 and best = 8
  and d = 9 in
  let w = 256 in
  let frame = 0 and refframe = w * w in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_bytes ~base:frame ~count:[ i32 (w * w) ] ~i ~state ~seed:8080
    @ Frag.fill_random_bytes ~base:refframe ~count:[ i32 (w * w) ] ~i ~state ~seed:8081
    @ for_loop ~i:mv ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([ i32 0x7FFFFFFF; set best ]
        (* search 8 candidate offsets for a 16x16 block *)
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 8 ]
            ([ i32 0; set sad ]
            @ for_loop ~i:y ~start:[ i32 0 ] ~stop:[ i32 16 ]
                (for_loop ~i:x ~start:[ i32 0 ] ~stop:[ i32 16 ]
                   [
                     (* d = cur - ref *)
                     get y; i32 8; shl; get x; add;
                     get mv; i32 63; band; add;
                     i32 frame; add; load8_u ();
                     get y; i32 8; shl; get x; add;
                     get i; i32 9; mul; add; i32 ((w * w) - 1); band;
                     i32 refframe; add; load8_u ();
                     sub; set d;
                     (* sad += |d| via (d ^ (d >> 31)) - (d >> 31) *)
                     get sad;
                     get d; get d; i32 31; shr_s; bxor;
                     get d; i32 31; shr_s; sub;
                     add; set sad;
                   ])
            @ [ get sad; get best; lt_s; if_ [ get sad; set best ] [] ])
        @ [ get acc; get best; add; i32 3; rotl; set acc ])
    @ [ get acc ]);
  build b

(* --- 470.lbm: 5-point stencil streaming ------------------------------- *)

let lbm_module () =
  let b = create ~memory_pages:32 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and step = 3 and acc = 4 and row = 5 and col = 6 and idx = 7 in
  let w = 256 in
  let h = 256 in
  let src = 0 and dst = w * h * 4 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:src ~count:[ i32 (w * h) ] ~i ~state ~seed:55555
    @ for_loop ~i:step ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* one relaxation sweep src -> dst, then swap via copy of a band *)
         for_loop ~i:row ~start:[ i32 1 ] ~stop:[ i32 (h - 1) ]
           (for_loop ~i:col ~start:[ i32 1 ] ~stop:[ i32 (w - 1) ]
              [
                get row; i32 8; shl; get col; add; set idx;
                get idx; i32 2; shl; i32 dst; add;
                (* center*4 + neighbours, averaged *)
                get idx; i32 2; shl; load32 (); i32 2; shl;
                get idx; i32 1; add; i32 2; shl; load32 (); add;
                get idx; i32 1; sub; i32 2; shl; load32 (); add;
                get idx; i32 w; add; i32 2; shl; load32 (); add;
                get idx; i32 w; sub; i32 2; shl; load32 (); add;
                i32 3; shr_s;
                store32 ();
              ])
        (* stream a band back with bulk copy (the real lbm alternates
           grids; the copy keeps a single source array) *)
        @ [ i32 src; i32 dst; i32 (w * h * 4); memory_copy ])
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:src ~count:[ i32 (w * h / 4) ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- 473.astar: grid pathfinding with open-list scans ----------------- *)

let astar_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and q = 3 and acc = 4 and cur = 5 and best = 6 and cost = 7 and n = 8 in
  let w = 128 in
  let grid = 0 and dist = w * w and open_ = 5 * w * w in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* random obstacle grid *)
     Frag.fill_random_bytes ~base:grid ~count:[ i32 (w * w) ] ~i ~state ~seed:2718
    @ for_loop ~i:q ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* reset distances on a strip, then greedy expansion *)
         for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 1024 ]
           [ get i; i32 2; shl; i32 dist; add; i32 0x7FFF; store32 () ]
        @ [
            get q; i32 1023; band; set cur;
            get cur; i32 2; shl; i32 dist; add; i32 0; store32 ();
            i32 0; set n;
          ]
        (* tight inner loop: scan the open window, pick min, close it,
           relax the right neighbour *)
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 48 ]
            ([ i32 0x7FFFFFFF; set best ]
            @ for_loop ~i:n ~start:[ i32 0 ] ~stop:[ i32 32 ]
                [
                  get cur; get n; add; i32 1023; band; i32 2; shl; i32 dist; add; load32 ();
                  tee cost; get best; lt_s;
                  if_ [ get cost; set best; get cur; get n; add; i32 1023; band; set cur ] [];
                ]
            @ [
                (* close the chosen node so it is not re-expanded *)
                get cur; i32 2; shl; i32 dist; add; i32 0x7FFFF0; store32 ();
                (* relax right neighbour *)
                get cur; i32 1; add; i32 1023; band; i32 2; shl; i32 dist; add;
                get best; get cur; i32 grid; add; load8_u (); i32 7; band; add; i32 1; add;
                store32 ();
                get acc; get best; bxor; i32 1; rotl; set acc;
              ]))
    @ [ get acc; i32 open_; add ]);
  build b

(* --- registry --------------------------------------------------------- *)

let bzip2 =
  k "401_bzip2" ~args:18000 ~description:"RLE + move-to-front byte compression"
    (lazy (bzip2_module ()))

let mcf =
  k "429_mcf" ~args:9000
    ~description:"graph relaxation; native variant uses 64-bit node/arc fields"
    ~native:(lazy (mcf_module ~wide:true ()))
    (lazy (mcf_module ~wide:false ()))

let milc =
  k "433_milc" ~args:30000 ~description:"fixed-point complex matrix lattice"
    (lazy (milc_module ()))

let namd =
  k "444_namd" ~args:1400 ~description:"pairwise force accumulation" (lazy (namd_module ()))

let gobmk =
  k "445_gobmk" ~args:160 ~description:"board scanning with branchy liberty counting"
    (lazy (gobmk_module ()))

let sjeng =
  k "458_sjeng" ~args:120000 ~description:"bitboard move generation (i64, popcnt/ctz)"
    (lazy (sjeng_module ()))

let libquantum =
  k "462_libquantum" ~args:40 ~description:"gate application over an amplitude vector"
    (lazy (libquantum_module ()))

let h264ref =
  k "464_h264ref" ~args:120 ~description:"16x16 SAD motion search" (lazy (h264_module ()))

let lbm = k "470_lbm" ~args:7 ~description:"5-point stencil sweeps" (lazy (lbm_module ()))

let astar =
  k "473_astar" ~args:220 ~description:"greedy grid pathfinding, tight scan loop"
    (lazy (astar_module ()))

let all = [ bzip2; mcf; milc; namd; gobmk; sjeng; libquantum; h264ref; lbm; astar ]
