(** SPEC CPU 2017-like kernels (Figure 5): the 14 C/C++ SPECrate
    benchmarks the LFI evaluation uses. Six reuse {!Spec2006} generators
    (shared benchmark lineage); eight are distinct kernels matching their
    namesakes' hot loops. These feed the {!Sfi_lfi} pipeline: lowered
    natively, then rewritten with SFI instrumentation. *)

val gcc : Kernel.t
val mcf_r : Kernel.t
val namd_r : Kernel.t
val parest : Kernel.t
val povray : Kernel.t
val lbm_r : Kernel.t
val omnetpp : Kernel.t
val xalancbmk : Kernel.t
val x264 : Kernel.t
val deepsjeng : Kernel.t
val imagick : Kernel.t
val leela : Kernel.t
val nab : Kernel.t
val xz : Kernel.t

val all : Kernel.t list
(** The fourteen kernels, in Figure 5's order. *)
