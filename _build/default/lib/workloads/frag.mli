(** Reusable Wasm code fragments shared by the benchmark kernels:
    deterministic pseudo-random data generation and checksumming, so every
    kernel is self-seeding and self-validating. *)

val lcg_next : state:int -> Sfi_wasm.Ast.instr list
(** Advance the LCG in local [state] and leave a 15-bit pseudo-random i32
    on the stack. *)

val fill_random_words :
  base:int -> count:Sfi_wasm.Ast.instr list -> i:int -> state:int -> seed:int ->
  Sfi_wasm.Ast.instr list
(** Fill [count] (an i32 expression) 32-bit words at byte address [base]
    with LCG values, using locals [i] and [state] as scratch. *)

val fill_random_bytes :
  base:int -> count:Sfi_wasm.Ast.instr list -> i:int -> state:int -> seed:int ->
  Sfi_wasm.Ast.instr list

val checksum_words :
  base:int -> count:Sfi_wasm.Ast.instr list -> i:int -> acc:int -> Sfi_wasm.Ast.instr list
(** Fold a rotate-xor checksum of [count] words at [base] into local
    [acc]. *)
