(** Sightglass-like micro-benchmarks (Figure 4): WAMR's benchmark suite.
    [memmove] and [sieve] contain byte loops in the exact canonical shape
    the WAMR-style vectorizer recognizes, so compiling them with full
    Segue (which disables the pass, §4.2) reproduces the paper's
    regressions; every other member is a small compute loop. *)

val base64 : Kernel.t
val fib2 : Kernel.t
val gimli : Kernel.t
val heapsort : Kernel.t
val matrix : Kernel.t
val memmove : Kernel.t
val nestedloop : Kernel.t
val nestedloop2 : Kernel.t
val nestedloop3 : Kernel.t
val random : Kernel.t
val seqhash : Kernel.t
val sieve : Kernel.t
val strchr : Kernel.t
val switch2 : Kernel.t

val all : Kernel.t list
(** The fourteen kernels, in Figure 4's order. *)
