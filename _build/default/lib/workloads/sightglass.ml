(* Sightglass-like micro-benchmarks (Figure 4): the Bytecode Alliance suite
   WAMR's developers use. Most are small compute loops; [memmove] and
   [sieve] contain hand-written byte loops in exactly the canonical shape
   WAMR's vectorizer recognizes — the loops whose lost vectorization under
   full Segue causes the paper's +35.6%/+48.7% regressions. *)

module W = Sfi_wasm.Ast
open Sfi_wasm.Builder

let k name ?(entry = "run") ~args ~description wasm =
  Kernel.make ~name ~suite:"sightglass" ~description ~entry ~args:[ Int64.of_int args ] wasm

(* --- base64: encode a buffer ------------------------------------------ *)

let base64_module () =
  let b = create ~memory_pages:8 () in
  data b ~offset:0x40000 "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and acc = 3 and w = 4 and out = 5 in
  let src = 0 and dst = 0x10000 and table = 0x40000 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_bytes ~base:src ~count:[ get 0; i32 3; mul ] ~i ~state ~seed:64
    @ [ i32 0; set out ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        [
          (* w = 3 source bytes *)
          get i; i32 3; mul; i32 src; add; load8_u (); i32 16; shl;
          get i; i32 3; mul; i32 src; add; load8_u ~offset:1 (); i32 8; shl; bor;
          get i; i32 3; mul; i32 src; add; load8_u ~offset:2 (); bor; set w;
          (* 4 output symbols *)
          get out; i32 dst; add;
          get w; i32 18; shr_u; i32 63; band; i32 table; add; load8_u (); store8 ();
          get out; i32 dst; add;
          get w; i32 12; shr_u; i32 63; band; i32 table; add; load8_u (); store8 ~offset:1 ();
          get out; i32 dst; add;
          get w; i32 6; shr_u; i32 63; band; i32 table; add; load8_u (); store8 ~offset:2 ();
          get out; i32 dst; add;
          get w; i32 63; band; i32 table; add; load8_u (); store8 ~offset:3 ();
          get out; i32 4; add; set out;
        ]
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get out ]
        [ get acc; i32 5; rotl; get i; i32 dst; add; load8_u (); bxor; set acc ]
    @ [ get acc ]);
  build b

(* --- fib2: naive recursion (call-heavy) ------------------------------- *)

let fib2_module () =
  let b = create ~memory_pages:1 () in
  let fib = declare b "fib" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b fib
    [
      get 0; i32 2; lt_u;
      if_ ~ty:W.I32 [ get 0 ]
        [ get 0; i32 1; sub; call fib; get 0; i32 2; sub; call fib; add ];
    ];
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b run [ get 0; call fib ];
  build b

(* --- gimli: permutation over 12 words in memory ----------------------- *)

let gimli_module () =
  let b = create ~memory_pages:1 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let r = 1 and col = 2 and x = 3 and y = 4 and z = 5 and i = 6 and state = 7 and acc = 8 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ i32 12 ] ~i ~state ~seed:0x67696d
    @ for_loop ~i:r ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 4 ]
           [
             get col; i32 2; shl; load32 (); i32 24; rotl; set x;
             get col; i32 2; shl; load32 ~offset:16 (); i32 9; rotl; set y;
             get col; i32 2; shl; load32 ~offset:32 (); set z;
             (* column mix *)
             get col; i32 2; shl;
             get x; get z; i32 1; shl; bxor; get y; get z; band; i32 2; shl; bxor;
             store32 ~offset:32 ();
             get col; i32 2; shl;
             get y; get x; bxor; get x; get z; bor; i32 1; shl; bxor;
             store32 ~offset:16 ();
             get col; i32 2; shl;
             get z; get y; bxor; get x; get y; band; i32 3; shl; bxor;
             store32 ();
           ]
        @ [
            (* small swap every 4th round *)
            get r; i32 3; band; eqz;
            if_
              [
                i32 0; load32 (); set x;
                i32 0; i32 4; load32 (); store32 ();
                i32 4; get x; store32 ();
                i32 0; i32 0; load32 (); get r; i32 0x9E377900; bor; bxor; store32 ();
              ]
              [];
          ])
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:0 ~count:[ i32 12 ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- heapsort ---------------------------------------------------------- *)

let heapsort_module () =
  let b = create ~memory_pages:8 () in
  (* sift-down on the i32 array at 0 *)
  let sift = declare b "sift" ~params:[ W.I32; W.I32 ] ~results:[] () in
  (* params: root, count; locals: 2 child, 3 tmp *)
  define b sift ~locals:[ W.I32; W.I32 ]
    (while_loop
       [ get 0; i32 1; shl; i32 1; add; get 1; lt_u ]
       [
         get 0; i32 1; shl; i32 1; add; set 2;
         (* pick larger child *)
         get 2; i32 1; add; get 1; lt_u;
         if_
           [
             get 2; i32 1; add; i32 2; shl; load32 ();
             get 2; i32 2; shl; load32 (); gt_s;
             if_ [ get 2; i32 1; add; set 2 ] [];
           ]
           [];
         get 2; i32 2; shl; load32 (); get 0; i32 2; shl; load32 (); gt_s;
         if_
           [
             (* swap root and child, descend *)
             get 0; i32 2; shl; load32 (); set 3;
             get 0; i32 2; shl; get 2; i32 2; shl; load32 (); store32 ();
             get 2; i32 2; shl; get 3; store32 ();
             get 2; set 0;
           ]
           [ get 1; set 0 (* terminate: root >= children *) ];
       ]);
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and acc = 3 and tmp = 4 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ get 0 ] ~i ~state ~seed:424242
    (* heapify *)
    @ [ get 0; i32 2; div_u; set i ]
    @ while_loop
        [ get i; i32 0; gt_u ]
        [ get i; i32 1; sub; set i; get i; get 0; call sift ]
    (* extract *)
    @ [ get 0; set i ]
    @ while_loop
        [ get i; i32 1; gt_u ]
        [
          get i; i32 1; sub; set i;
          i32 0; load32 (); set tmp;
          i32 0; get i; i32 2; shl; load32 (); store32 ();
          get i; i32 2; shl; get tmp; store32 ();
          i32 0; get i; call sift;
        ]
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:0 ~count:[ get 0 ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- matrix: dense multiply ------------------------------------------- *)

let matrix_module () =
  let b = create ~memory_pages:8 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and kx = 5 and acc = 6 and s = 7 in
  let n = 48 in
  let am = 0 and bm = n * n * 4 and cm = 2 * n * n * 4 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:am ~count:[ i32 (2 * n * n) ] ~i ~state ~seed:9
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           (for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
              ([ i32 0; set s ]
              @ for_loop ~i:kx ~start:[ i32 0 ] ~stop:[ i32 n ]
                  [
                    get row; i32 n; mul; get kx; add; i32 2; shl; i32 am; add; load32 ();
                    get kx; i32 n; mul; get col; add; i32 2; shl; i32 bm; add; load32 ();
                    mul; get s; add; set s;
                  ]
              @ [
                  get row; i32 n; mul; get col; add; i32 2; shl; i32 cm; add;
                  get s; store32 ();
                ])))
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:cm ~count:[ i32 (n * n) ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- memmove: the vectorizer's canonical byte-copy loop ---------------- *)

let memmove_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* locals: 1 i, 2 state, 3 rep, 4 acc, 5 len, 6 dstb, 7 srcb *)
  let i = 1 and state = 2 and rep = 3 and acc = 4 and len = 5 and dstb = 6 and srcb = 7 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_bytes ~base:0 ~count:[ i32 65536 ] ~i ~state ~seed:7777
    @ [ i32 32768; set len ]
    @ for_loop ~i:rep ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([
           get rep; i32 1; band; eqz;
           if_ [ i32 0; set srcb; i32 131072; set dstb ] [ i32 131072; set srcb; i32 0; set dstb ];
         ]
        (* THE canonical loop: for (i = 0; i < len; i++) d[i+dst] = s[i+src] *)
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get len ]
            [ get dstb; get i; add; get srcb; get i; add; load8_u (); store8 () ]
        (* validation pass over the destination (scalar in all variants,
           as the real benchmark hashes what it moved) *)
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 49152 ]
            [ get acc; get dstb; get i; add; i32 65535; band; load8_u (); add; set acc ]
        @ [ get acc; i32 1; rotl; set acc ])
    @ [ get acc ]);
  build b

(* --- nestedloop{,2,3}: pure loop nests -------------------------------- *)

let nestedloop_module depth =
  let b = create () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let acc = depth + 1 in
  let locals = List.init (depth + 1) (fun _ -> W.I32) in
  let rec nest d body =
    if d > depth then body
    else for_loop ~i:d ~start:[ i32 0 ] ~stop:[ get (d - 1) ] (nest (d + 1) body)
  in
  (* innermost body mixes the counters *)
  let body =
    [ get acc; i32 1; add ]
    @ List.concat (List.init depth (fun d -> [ get (d + 1); bxor ]))
    @ [ set acc ]
  in
  define b run ~locals (nest 1 body @ [ get acc ]);
  build b

(* --- random: LCG stream ------------------------------------------------ *)

let random_module () =
  let b = create () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and acc = 3 in
  define b run ~locals:[ W.I32; W.I32; W.I32 ]
    ([ i32 88172645; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (Frag.lcg_next ~state @ [ get acc; bxor; i32 7; rotl; set acc ])
    @ [ get acc ]);
  build b

(* --- seqhash: hash chain over a buffer --------------------------------- *)

let seqhash_module () =
  let b = create ~memory_pages:4 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and rep = 3 and acc = 4 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ i32 8192 ] ~i ~state ~seed:5381
    @ [ i32 2166136261; set acc ]
    @ for_loop ~i:rep ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 8192 ]
           [
             get acc; get i; i32 2; shl; load32 (); bxor;
             i32 16777619; mul; i32 13; rotl; set acc;
           ])
    @ [ get acc ]);
  build b

(* --- sieve: byte-fill init (vectorizable) + strided marking ------------ *)

let sieve_module () =
  let b = create ~memory_pages:10 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and p = 2 and rep = 3 and acc = 4 and count = 5 and limit = 6 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 65536; set limit ]
    @ for_loop ~i:rep ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* init: canonical byte-fill loops (what WAMR vectorizes) — the
           sieve plus a scratch shadow region the benchmark also clears *)
         for_loop ~i ~start:[ i32 0 ] ~stop:[ get limit ] [ i32 0; get i; add; i32 1; store8 () ]
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 425984 ]
            [ i32 131072; get i; add; i32 0; store8 () ]
        (* strided composite marking *)
        @ [ i32 2; set p ]
        @ while_loop
            [ get p; get p; mul; get limit; lt_u ]
            ([ get p; get p; mul; set i ]
            @ while_loop
                [ get i; get limit; lt_u ]
                [ get i; i32 0; store8 (); get i; get p; add; set i ]
            @ [ get p; i32 1; add; set p ])
        (* count survivors on a slice *)
        @ [ i32 0; set count ]
        @ for_loop ~i ~start:[ i32 2 ] ~stop:[ i32 4096 ]
            [ get count; get i; load8_u (); add; set count ]
        @ [ get acc; get count; add; i32 1; rotl; set acc ])
    @ [ get acc ]);
  build b

(* --- strchr: byte scan -------------------------------------------------- *)

let strchr_module () =
  let b = create ~memory_pages:4 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and rep = 3 and acc = 4 and pos = 5 and needle = 6 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_bytes ~base:0 ~count:[ i32 65536 ] ~i ~state ~seed:115
    @ [ i32 65535; i32 255; store8 () (* sentinel *) ]
    @ for_loop ~i:rep ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([ get rep; i32 251; rem_u; i32 1; add; set needle; i32 0; set pos ]
        @ while_loop
            [ get pos; load8_u (); get needle; ne ]
            [ get pos; i32 1; add; i32 65535; band; set pos ]
        @ [ get acc; get pos; add; i32 3; rotl; set acc ])
    @ [ get acc ]);
  build b

(* --- switch2: dense dispatch in a loop ---------------------------------- *)

let switch2_module () =
  let b = create () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and acc = 3 and v = 4 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 3; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (Frag.lcg_next ~state
        @ [ i32 7; band; set v ]
        @ [
            block
              [
                block
                  [
                    block
                      [
                        block
                          [
                            block
                              [
                                block [ get v; W.Br_table ([ 0; 1; 2; 3 ], 4) ];
                                get acc; i32 13; add; set acc; br 4;
                              ];
                            get acc; i32 3; mul; set acc; br 3;
                          ];
                        get acc; i32 7; bxor; set acc; br 2;
                      ];
                    get acc; i32 11; rotl; set acc; br 1;
                  ];
                (* default *) get acc; i32 1; sub; set acc;
              ];
          ])
    @ [ get acc ]);
  build b

(* --- registry ----------------------------------------------------------- *)

let base64 = k "base64" ~args:9000 ~description:"buffer base64 encode" (lazy (base64_module ()))
let fib2 = k "fib2" ~args:24 ~description:"naive recursive fib (call-heavy)" (lazy (fib2_module ()))
let gimli = k "gimli" ~args:16000 ~description:"gimli-like permutation" (lazy (gimli_module ()))

let heapsort =
  k "heapsort" ~args:60000 ~description:"in-place heapsort of random words"
    (lazy (heapsort_module ()))

let matrix = k "matrix" ~args:8 ~description:"48x48 integer matmul" (lazy (matrix_module ()))

let memmove =
  k "memmove" ~args:24 ~description:"canonical byte-copy loop (vectorizer target)"
    (lazy (memmove_module ()))

let nestedloop =
  k "nestedloop" ~args:600000 ~description:"1-deep counted loop" (lazy (nestedloop_module 1))

let nestedloop2 =
  k "nestedloop2" ~args:900 ~description:"2-deep counted loop" (lazy (nestedloop_module 2))

let nestedloop3 =
  k "nestedloop3" ~args:110 ~description:"3-deep counted loop" (lazy (nestedloop_module 3))

let random = k "random" ~args:500000 ~description:"LCG stream" (lazy (random_module ()))
let seqhash = k "seqhash" ~args:80 ~description:"FNV-ish hash sweeps" (lazy (seqhash_module ()))

let sieve =
  k "sieve" ~args:18 ~description:"byte-fill init (vectorizer target) + strided marking"
    (lazy (sieve_module ()))

let strchr = k "strchr" ~args:7000 ~description:"byte scan with sentinel" (lazy (strchr_module ()))
let switch2 = k "switch2" ~args:400000 ~description:"dense br_table dispatch" (lazy (switch2_module ()))

let all =
  [
    base64; fib2; gimli; heapsort; matrix; memmove; nestedloop; nestedloop2; nestedloop3;
    random; seqhash; sieve; strchr; switch2;
  ]
