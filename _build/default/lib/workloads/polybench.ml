(* PolybenchC-like kernels and a Dhrystone-like integer benchmark (§6.2,
   WAMR's benchmark set).

   Polybench kernels are dense linear-algebra loops. The real suite
   computes on 8-byte doubles; our integer port uses Q12 fixed point, so
   the Wasm build stores 4-byte elements while the native build keeps the
   8-byte layout native doubles would have. The halved working set is why
   WAMR measures Wasm ~6% *faster* than native on this suite, a gap Segue
   widens to ~10% (§6.2): the kernels are cache-bound, not
   instruction-bound.

   Each generator is parameterized by [wide] so the two layouts share one
   definition (and therefore one checksum). *)

module W = Sfi_wasm.Ast
open Sfi_wasm.Builder

let k name ~args ~description ?native wasm =
  Kernel.make ~name ~suite:"polybench" ~description ?native ~entry:"run"
    ~args:[ Int64.of_int args ]
    wasm

(* Element accessors for 4-byte (wasm) vs 8-byte (native double) layouts.
   Values are i32 fixed-point in both; the wide layout just spaces them the
   way doubles would be. *)
let elt_shift wide = if wide then 3 else 2

let load_elt ~wide ~base idx_code =
  if wide then idx_code @ [ i32 3; shl; i32 base; add; load64 (); wrap ]
  else idx_code @ [ i32 2; shl; i32 base; add; load32 () ]

let store_elt ~wide ~base idx_code value_code =
  if wide then idx_code @ [ i32 3; shl; i32 base; add ] @ value_code @ [ extend_s; store64 () ]
  else idx_code @ [ i32 2; shl; i32 base; add ] @ value_code @ [ store32 () ]

(* Common array bases, spaced for the wide layout. *)
let arr k = k * 0x80000

(* --- gemm: C = alpha*A*B + beta*C ------------------------------------- *)

let gemm_module ~wide () =
  let b = create ~memory_pages:80 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and kk = 5 and s = 6 and acc = 7 in
  let n = 64 in
  let am = arr 0 and cm = arr 2 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 4099; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (2 * n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ [ i32 2047; band ]
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           (for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
              ([ i32 0; set s ]
              @ for_loop ~i:kk ~start:[ i32 0 ] ~stop:[ i32 n ]
                  (load_elt ~wide ~base:am [ get row; i32 n; mul; get kk; add ]
                  @ load_elt ~wide ~base:am
                      [ get kk; i32 n; mul; get col; add; i32 (n * n); add ]
                  @ [ mul; i32 12; shr_s; get s; add; set s ])
              @ store_elt ~wide ~base:cm
                  [ get row; i32 n; mul; get col; add ]
                  (load_elt ~wide ~base:cm [ get row; i32 n; mul; get col; add ]
                  @ [ i32 3; mul; i32 2; shr_s; get s; add ]))))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get acc; i32 1; rotl ] @ load_elt ~wide ~base:cm [ get i ] @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- atax: y = A^T (A x) ----------------------------------------------- *)

let atax_module ~wide () =
  let b = create ~memory_pages:80 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and s = 5 and acc = 6 in
  let n = 320 in
  let am = arr 0 and xv = arr 4 and yv = arr 5 and tmp = arr 6 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 7001; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ [ i32 1023; band ]
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        (store_elt ~wide ~base:xv [ get i ] [ get i; i32 255; band; i32 1; add ])
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* tmp = A x *)
         for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           ([ i32 0; set s ]
           @ for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
               (load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
               @ load_elt ~wide ~base:xv [ get col ]
               @ [ mul; i32 12; shr_s; get s; add; set s ])
           @ store_elt ~wide ~base:tmp [ get row ] [ get s ])
        (* y = A^T tmp (column-major access: cache-hostile) *)
        @ for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
            ([ i32 0; set s ]
            @ for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
                (load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
                @ load_elt ~wide ~base:tmp [ get row ]
                @ [ mul; i32 12; shr_s; get s; add; set s ])
            @ store_elt ~wide ~base:yv [ get col ] [ get s ]))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        ([ get acc; i32 1; rotl ] @ load_elt ~wide ~base:yv [ get i ] @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- mvt: two matrix-vector products ----------------------------------- *)

let mvt_module ~wide () =
  let b = create ~memory_pages:80 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and s = 5 and acc = 6 in
  let n = 320 in
  let am = arr 0 and x1 = arr 4 and x2 = arr 5 and y1 = arr 6 and y2 = arr 7 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 31337; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ [ i32 511; band ]
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        (store_elt ~wide ~base:y1 [ get i ] [ get i; i32 127; band ]
        @ store_elt ~wide ~base:y2 [ get i ] [ get i; i32 63; band; i32 3; add ])
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           ([ i32 0; set s ]
           @ for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
               (load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
               @ load_elt ~wide ~base:y1 [ get col ]
               @ [ mul; i32 12; shr_s; get s; add; set s ])
           @ store_elt ~wide ~base:x1 [ get row ]
               (load_elt ~wide ~base:x1 [ get row ] @ [ get s; add ]))
        @ for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
            ([ i32 0; set s ]
            @ for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
                (load_elt ~wide ~base:am [ get col; i32 n; mul; get row; add ]
                @ load_elt ~wide ~base:y2 [ get col ]
                @ [ mul; i32 12; shr_s; get s; add; set s ])
            @ store_elt ~wide ~base:x2 [ get row ]
                (load_elt ~wide ~base:x2 [ get row ] @ [ get s; add ])))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        ([ get acc; i32 1; rotl ]
        @ load_elt ~wide ~base:x1 [ get i ]
        @ [ bxor ]
        @ load_elt ~wide ~base:x2 [ get i ]
        @ [ add; set acc ])
    @ [ get acc ]);
  build b

(* --- jacobi2d: 2D stencil sweeps --------------------------------------- *)

let jacobi2d_module ~wide () =
  let b = create ~memory_pages:96 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and acc = 5 and t = 6 in
  let n = 256 in
  let am = arr 0 and bm = arr 4 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 99; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i:t ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 1 ] ~stop:[ i32 (n - 1) ]
           (for_loop ~i:col ~start:[ i32 1 ] ~stop:[ i32 (n - 1) ]
              (store_elt ~wide ~base:bm
                 [ get row; i32 n; mul; get col; add ]
                 (load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
                 @ load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add; i32 1; add ]
                 @ [ add ]
                 @ load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add; i32 1; sub ]
                 @ [ add ]
                 @ load_elt ~wide ~base:am [ get row; i32 1; add; i32 n; mul; get col; add ]
                 @ [ add ]
                 @ load_elt ~wide ~base:am [ get row; i32 1; sub; i32 n; mul; get col; add ]
                 @ [ add; i32 5; div_s ])))
        @ for_loop ~i:row ~start:[ i32 1 ] ~stop:[ i32 (n - 1) ]
            (for_loop ~i:col ~start:[ i32 1 ] ~stop:[ i32 (n - 1) ]
               (store_elt ~wide ~base:am
                  [ get row; i32 n; mul; get col; add ]
                  (load_elt ~wide ~base:bm [ get row; i32 n; mul; get col; add ]))))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        ([ get acc; i32 1; rotl ]
        @ load_elt ~wide ~base:am [ get i; i32 n; mul; get i; add ]
        @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- dhrystone: records, strings, branches, calls ---------------------- *)

let dhrystone_module ~wide () =
  let b = create ~memory_pages:32 () in
  (* record: 5 fields; wide layout = 8-byte fields (native pointers/longs) *)
  let fsz = if wide then 8 else 4 in
  let rec_size = 5 * fsz in
  let nrecs = 1024 in
  let recs = 0 and strings = arr 2 in
  let load_field base_code field =
    if wide then base_code @ [ load64 ~offset:(field * 8) (); wrap ]
    else base_code @ [ load32 ~offset:(field * 4) () ]
  in
  let store_field base_code field value_code =
    if wide then base_code @ value_code @ [ extend_s; Store (W.I64, None, { offset = field * 8 }) ]
    else base_code @ value_code @ [ Store (W.I32, None, { offset = field * 4 }) ]
  in
  (* proc: compare two 30-byte strings, return 0/1 *)
  let str_cmp = declare b "str_cmp" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  define b str_cmp ~locals:[ W.I32 ]
    (while_loop
       [ get 2; i32 30; lt_u ]
       [
         get 0; get 2; add; load8_u (); get 1; get 2; add; load8_u (); ne;
         if_ [ i32 99; set 2 ] [ get 2; i32 1; add; set 2 ];
       ]
    @ [ get 2; i32 99; eq ]);
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and rep = 3 and acc = 4 and r = 5 and next = 6 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* string pool *)
     Frag.fill_random_bytes ~base:strings ~count:[ i32 8192 ] ~i ~state ~seed:1
    (* records: next "pointer" chain + payload; the link is stored as a
       record index and perturbed per-iteration below so the walk covers
       the whole record array (cache-relevant working set) *)
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 nrecs ]
        (store_field [ get i; i32 rec_size; mul; i32 recs; add ] 0
           Frag.(lcg_next ~state @ [ i32 (nrecs - 1); band ])
        @ store_field [ get i; i32 rec_size; mul; i32 recs; add ] 1 [ get i ]
        @ store_field [ get i; i32 rec_size; mul; i32 recs; add ] 2 [ get i; i32 31; band ]
        @ store_field [ get i; i32 rec_size; mul; i32 recs; add ] 3
            Frag.(lcg_next ~state @ [ i32 8191; band ])
        @ store_field [ get i; i32 rec_size; mul; i32 recs; add ] 4 [ i32 0 ])
    @ [ i32 0; set r ]
    @ for_loop ~i:rep ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* follow the chain: next = (recs[r].link + rep) mod nrecs,
           as a byte offset *)
         load_field [ get r; i32 recs; add ] 0
        @ [ get rep; add; i32 (nrecs - 1); band; i32 rec_size; mul; set next ]
        (* record assignment: copy payload fields (struct copy) *)
        @ store_field [ get next; i32 recs; add ] 1 (load_field [ get r; i32 recs; add ] 1)
        @ store_field [ get next; i32 recs; add ] 2
            (load_field [ get r; i32 recs; add ] 2 @ [ i32 1; add; i32 31; band ])
        (* string compare between two pool entries *)
        @ load_field [ get r; i32 recs; add ] 3
        @ [ i32 8191; band; i32 strings; add ]
        @ load_field [ get next; i32 recs; add ] 3
        @ [ i32 8191; band; i32 strings; add ]
        @ [ call str_cmp; get acc; add; set acc ]
        (* branchy arithmetic in the Dhrystone style *)
        @ load_field [ get r; i32 recs; add ] 2
        @ [
            i32 16; lt_u;
            if_ [ get acc; i32 3; mul; set acc ] [ get acc; i32 5; add; set acc ];
            get next; set r;
          ])
    @ [ get acc; get r; i32 rec_size; div_u; add ]);
  build b

(* --- bicg: two vector products against A and A^T in one sweep ---------- *)

let bicg_module ~wide () =
  let b = create ~memory_pages:80 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and s = 5 and acc = 6 in
  let n = 320 in
  let am = arr 0 and sv = arr 4 and qv = arr 5 and pv = arr 6 and rv = arr 7 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 191; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ [ i32 511; band ]
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        (store_elt ~wide ~base:pv [ get i ] [ get i; i32 63; band; i32 1; add ]
        @ store_elt ~wide ~base:rv [ get i ] [ get i; i32 31; band; i32 2; add ])
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* s = A^T r accumulated column-wise while q = A p row-wise *)
         for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           ([ i32 0; set s ]
           @ for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
               ((* q[row] += A[row][col] * p[col] *)
                load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
               @ load_elt ~wide ~base:pv [ get col ]
               @ [ mul; i32 12; shr_s; get s; add; set s ]
               (* s[col] += r[row] * A[row][col] *)
               @ store_elt ~wide ~base:sv [ get col ]
                   (load_elt ~wide ~base:sv [ get col ]
                   @ load_elt ~wide ~base:rv [ get row ]
                   @ load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
                   @ [ mul; i32 12; shr_s; add ]))
           @ store_elt ~wide ~base:qv [ get row ] [ get s ]))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        ([ get acc; i32 1; rotl ]
        @ load_elt ~wide ~base:sv [ get i ]
        @ [ bxor ]
        @ load_elt ~wide ~base:qv [ get i ]
        @ [ add; set acc ])
    @ [ get acc ]);
  build b

(* --- trmm: triangular matrix multiply ----------------------------------- *)

let trmm_module ~wide () =
  let b = create ~memory_pages:80 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and kk = 5 and s = 6 and acc = 7 in
  let n = 96 in
  let am = arr 0 and bm = arr 2 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 737; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (2 * n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ [ i32 1023; band ]
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           (for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
              ((* b[row][col] += sum_{k > row} A[k][row] * b[k][col]:
                  the triangular access pattern *)
               [ i32 0; set s ]
              @ for_loop ~i:kk ~start:[ get row; i32 1; add ] ~stop:[ i32 n ]
                  (load_elt ~wide ~base:am [ get kk; i32 n; mul; get row; add ]
                  @ load_elt ~wide ~base:bm
                      [ get kk; i32 n; mul; get col; add; i32 (n * n); add ]
                  @ [ mul; i32 12; shr_s; get s; add; set s ])
              @ store_elt ~wide ~base:bm
                  [ get row; i32 n; mul; get col; add; i32 (n * n); add ]
                  (load_elt ~wide ~base:bm
                     [ get row; i32 n; mul; get col; add; i32 (n * n); add ]
                  @ [ get s; add ]))))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get acc; i32 1; rotl ]
        @ load_elt ~wide ~base:bm [ get i; i32 (n * n); add ]
        @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- seidel2d: in-place Gauss-Seidel sweeps (loop-carried stencil) ------- *)

let seidel2d_module ~wide () =
  let b = create ~memory_pages:96 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and acc = 5 in
  let n = 256 in
  let am = arr 0 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 515; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get i; i32 sh; shl; i32 am; add ]
        @ Frag.lcg_next ~state
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 1 ] ~stop:[ i32 (n - 1) ]
           (for_loop ~i:col ~start:[ i32 1 ] ~stop:[ i32 (n - 1) ]
              (store_elt ~wide ~base:am
                 [ get row; i32 n; mul; get col; add ]
                 ((* in-place: reads mix already-updated neighbours *)
                  load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add; i32 1; sub ]
                 @ load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add ]
                 @ [ add ]
                 @ load_elt ~wide ~base:am [ get row; i32 n; mul; get col; add; i32 1; add ]
                 @ [ add ]
                 @ load_elt ~wide ~base:am [ get row; i32 1; sub; i32 n; mul; get col; add ]
                 @ [ add ]
                 @ load_elt ~wide ~base:am [ get row; i32 1; add; i32 n; mul; get col; add ]
                 @ [ add; i32 5; div_s ]))))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        ([ get acc; i32 1; rotl ]
        @ load_elt ~wide ~base:am [ get i; i32 n; mul; get i; add ]
        @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- covariance: column means then pairwise products --------------------- *)

let covariance_module ~wide () =
  let b = create ~memory_pages:80 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and s = 5 and acc = 6 and j2 = 7 in
  let n = 64 (* variables *) and m = 128 (* observations *) in
  let data = arr 0 and mean = arr 4 and cov = arr 5 in
  let sh = elt_shift wide in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 1913; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * m) ]
        ([ get i; i32 sh; shl; i32 data; add ]
        @ Frag.lcg_next ~state
        @ [ i32 255; band ]
        @ (if wide then [ extend_s; store64 () ] else [ store32 () ]))
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* column means *)
         for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
           ([ i32 0; set s ]
           @ for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 m ]
               (load_elt ~wide ~base:data [ get row; i32 n; mul; get col; add ]
               @ [ get s; add; set s ])
           @ store_elt ~wide ~base:mean [ get col ] [ get s; i32 m; div_s ])
        (* upper-triangular covariance *)
        @ for_loop ~i:col ~start:[ i32 0 ] ~stop:[ i32 n ]
            (for_loop ~i:j2 ~start:[ get col ] ~stop:[ i32 n ]
               ([ i32 0; set s ]
               @ for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 m ]
                   (load_elt ~wide ~base:data [ get row; i32 n; mul; get col; add ]
                   @ load_elt ~wide ~base:mean [ get col ]
                   @ [ sub ]
                   @ load_elt ~wide ~base:data [ get row; i32 n; mul; get j2; add ]
                   @ load_elt ~wide ~base:mean [ get j2 ]
                   @ [ sub; mul; i32 8; shr_s; get s; add; set s ])
               @ store_elt ~wide ~base:cov [ get col; i32 n; mul; get j2; add ] [ get s ])))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * n) ]
        ([ get acc; i32 1; rotl ]
        @ load_elt ~wide ~base:cov [ get i ]
        @ [ bxor; set acc ])
    @ [ get acc ]);
  build b

(* --- registry ----------------------------------------------------------- *)

let wide_and_narrow name ~args ~description gen =
  k name ~args ~description ~native:(lazy (gen ~wide:true ())) (lazy (gen ~wide:false ()))

let gemm = wide_and_narrow "gemm" ~args:3 ~description:"dense matrix multiply" gemm_module
let atax = wide_and_narrow "atax" ~args:8 ~description:"y = A^T (A x)" atax_module
let mvt = wide_and_narrow "mvt" ~args:8 ~description:"two matrix-vector products" mvt_module

let jacobi2d =
  wide_and_narrow "jacobi2d" ~args:10 ~description:"2D Jacobi stencil" jacobi2d_module

let bicg = wide_and_narrow "bicg" ~args:8 ~description:"q = A p and s = A^T r" bicg_module
let trmm = wide_and_narrow "trmm" ~args:3 ~description:"triangular matrix multiply" trmm_module

let seidel2d =
  wide_and_narrow "seidel2d" ~args:6 ~description:"in-place Gauss-Seidel stencil" seidel2d_module

let covariance =
  wide_and_narrow "covariance" ~args:2 ~description:"column means + covariance matrix"
    covariance_module

let dhrystone =
  Kernel.make ~name:"dhrystone" ~suite:"dhrystone"
    ~description:"records, strings, branches, calls; native variant uses 8-byte fields"
    ~native:(lazy (dhrystone_module ~wide:true ()))
    ~entry:"run" ~args:[ 400000L ]
    (lazy (dhrystone_module ~wide:false ()))

let all = [ gemm; atax; bicg; mvt; trmm; jacobi2d; seidel2d; covariance ]
