(* Reusable Wasm code fragments for the benchmark kernels. *)

module W = Sfi_wasm.Ast
open Sfi_wasm.Builder

(* Park-Miller-ish LCG over a local: state = state * 1103515245 + 12345,
   leaving (state >> 16) & 0x7FFF on the stack. *)
let lcg_next ~state =
  [ get state; i32 1103515245; mul; i32 12345; add; tee state; i32 16; shr_u; i32 0x7FFF; band ]

(* Fill [count] 32-bit slots starting at byte [base] with LCG values.
   [i] and [state] are scratch locals (i32). *)
let fill_random_words ~base ~count ~i ~state ~seed =
  [ i32 seed; set state ]
  @ for_loop ~i ~start:[ i32 0 ] ~stop:count
      ([ get i; i32 2; shl; i32 base; add ] @ lcg_next ~state @ [ store32 () ])

(* Fill [count] bytes at [base] with LCG-derived bytes. *)
let fill_random_bytes ~base ~count ~i ~state ~seed =
  [ i32 seed; set state ]
  @ for_loop ~i ~start:[ i32 0 ] ~stop:count
      ([ get i; i32 base; add ] @ lcg_next ~state @ [ store8 () ])

(* Fold a 32-bit checksum over [count] words at [base] into local [acc]:
   acc = rotl(acc, 1) ^ word. *)
let checksum_words ~base ~count ~i ~acc =
  for_loop ~i ~start:[ i32 0 ] ~stop:count
    [ get acc; i32 1; rotl; get i; i32 2; shl; i32 base; add; load32 (); bxor; set acc ]
