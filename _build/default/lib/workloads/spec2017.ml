(* SPEC CPU 2017-like kernels (Figure 5): the 14 C/C++ SPECrate benchmarks
   the LFI paper uses. Six reuse this repository's 2006 generators (the
   real suites share lineage: mcf, namd, lbm, x264/h264, deepsjeng/sjeng,
   and nab's n-body shape); the other eight are distinct kernels matching
   their namesakes' hot loops: symbol-table hashing (gcc), sparse matvec
   (parest), ray-sphere intersection (povray), an event-heap discrete
   simulator (omnetpp), DOM-ish tree transformation (xalancbmk), 3x3
   convolution (imagick), union-find territory scoring (leela), and
   LZ-style match finding (xz).

   These run through the LFI pipeline: lowered natively, then rewritten
   with SFI instrumentation (with or without Segue). *)

module W = Sfi_wasm.Ast
open Sfi_wasm.Builder

let k name ~args ~description wasm =
  Kernel.make ~name ~suite:"spec2017" ~description ~entry:"run"
    ~args:[ Int64.of_int args ]
    wasm

(* --- 502.gcc: tokenizing + symbol-table hashing ------------------------ *)

let gcc_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and pos = 3 and acc = 4 and h = 5 and slot = 6 and len = 7 in
  let text = 0 and table = 0x40000 in
  (* table must stay under ~50% occupancy so open-addressed probing always
     terminates at full benchmark scale *)
  let tsize = 65536 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* pseudo source text: identifier characters with separators *)
     Frag.fill_random_bytes ~base:text ~count:[ i32 65536 ] ~i ~state ~seed:502
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ([ get i; i32 1031; mul; i32 65535; band; set pos; i32 2166136261; set h; i32 0; set len ]
        (* scan a token: up to 12 bytes until a "separator" (byte < 32) *)
        @ while_loop
            [
              get len; i32 12; lt_u;
              get pos; get len; add; i32 65535; band; i32 text; add; load8_u ();
              i32 32; ge_u; band;
            ]
            [
              get h;
              get pos; get len; add; i32 65535; band; i32 text; add; load8_u ();
              bxor; i32 16777619; mul; set h;
              get len; i32 1; add; set len;
            ]
        (* open-addressed probe *)
        @ [ get h; i32 (tsize - 1); band; set slot ]
        @ while_loop
            [
              get slot; i32 2; shl; i32 table; add; load32 (); tee acc;
              get h; ne; get acc; i32 0; ne; band;
            ]
            [ get slot; i32 1; add; i32 (tsize - 1); band; set slot ]
        @ [ get slot; i32 2; shl; i32 table; add; get h; store32 () ])
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:table ~count:[ i32 tsize ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- 510.parest: CSR sparse matrix-vector products --------------------- *)

let parest_module () =
  let b = create ~memory_pages:32 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and s = 4 and e = 5 and acc = 6 and sweep = 7 in
  let n = 4096 and per_row = 9 in
  let colidx = 0 and vals = 0x40000 and xv = 0x80000 and yv = 0x90000 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* random sparsity pattern and values *)
     [ i32 510; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (n * per_row) ]
        ([ get i; i32 2; shl; i32 colidx; add ]
        @ Frag.lcg_next ~state
        @ [ i32 (n - 1); band; store32 () ])
    @ Frag.fill_random_words ~base:vals ~count:[ i32 (n * per_row) ] ~i ~state ~seed:511
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
        [ get i; i32 2; shl; i32 xv; add; get i; i32 1023; band; i32 1; add; store32 () ]
    @ for_loop ~i:sweep ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 0 ] ~stop:[ i32 n ]
           ([ i32 0; set s ]
           @ for_loop ~i:e ~start:[ get row; i32 per_row; mul ]
               ~stop:[ get row; i32 1; add; i32 per_row; mul ]
               [
                 (* s += vals[e] * x[colidx[e]] (gather) *)
                 get e; i32 2; shl; i32 vals; add; load32 (); i32 2047; band;
                 get e; i32 2; shl; i32 colidx; add; load32 (); i32 2; shl; i32 xv; add;
                 load32 (); mul; i32 8; shr_s; get s; add; set s;
               ]
           @ [ get row; i32 2; shl; i32 yv; add; get s; store32 () ]))
    @ [ i32 0; set acc ]
    @ Frag.checksum_words ~base:yv ~count:[ i32 n ] ~i ~acc
    @ [ get acc ]);
  build b

(* --- 511.povray: fixed-point ray-sphere intersection -------------------- *)

let povray_module () =
  let b = create ~memory_pages:8 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and ray = 3 and acc = 4 and bq = 5 and cq = 6 and disc = 7 and sph = 8 in
  let nspheres = 64 in
  let spheres = 0 (* cx, cy, cz, r2 as Q8 words *) in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:spheres ~count:[ i32 (4 * nspheres) ] ~i ~state ~seed:511
    @ for_loop ~i:ray ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:sph ~start:[ i32 0 ] ~stop:[ i32 nspheres ]
           [
             (* b = oc . dir (dir derived from ray counter), c = |oc|^2 - r^2 *)
             get sph; i32 4; shl; load32 (); i32 255; band; get ray; i32 63; band; mul;
             get sph; i32 4; shl; load32 ~offset:4 (); i32 255; band;
             get ray; i32 3; shr_u; i32 63; band; mul; add;
             get sph; i32 4; shl; load32 ~offset:8 (); i32 255; band;
             get ray; i32 6; shr_u; i32 63; band; mul; add;
             i32 4; shr_s; set bq;
             get sph; i32 4; shl; load32 (); i32 255; band;
             get sph; i32 4; shl; load32 (); i32 255; band; mul;
             get sph; i32 4; shl; load32 ~offset:4 (); i32 255; band;
             get sph; i32 4; shl; load32 ~offset:4 (); i32 255; band; mul; add;
             get sph; i32 4; shl; load32 ~offset:12 (); i32 65535; band; sub;
             set cq;
             (* discriminant *)
             get bq; get bq; mul; get cq; i32 2; shl; sub; set disc;
             get disc; i32 0; gt_s;
             if_ [ get acc; get disc; i32 10; shr_s; add; i32 1; rotl; set acc ] [];
           ])
    @ [ get acc ]);
  build b

(* --- 520.omnetpp: binary-heap event queue -------------------------------- *)

let omnetpp_module () =
  let b = create ~memory_pages:8 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and nheap = 3 and acc = 4 and pos = 5 and child = 6 and t = 7 in
  let heap = 0 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 0; set nheap; i32 520; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        ((* push event with random timestamp: sift-up *)
         [ get nheap; set pos ]
        @ [ get pos; i32 2; shl; i32 heap; add ]
        @ Frag.lcg_next ~state
        @ [ store32 (); get nheap; i32 1; add; set nheap ]
        @ while_loop
            [ get pos; i32 0; gt_u ]
            [
              (* child doubles as the parent index during sift-up *)
              get pos; i32 1; sub; i32 2; div_u; set child;
              get pos; i32 2; shl; i32 heap; add; load32 ();
              get child; i32 2; shl; i32 heap; add; load32 (); lt_u;
              if_
                [
                  get pos; i32 2; shl; i32 heap; add; load32 (); set t;
                  get pos; i32 2; shl; i32 heap; add;
                  get child; i32 2; shl; i32 heap; add; load32 (); store32 ();
                  get child; i32 2; shl; i32 heap; add; get t; store32 ();
                  get child; set pos;
                ]
                [ i32 0; set pos ];
            ]
        (* every third push, pop the minimum: sift-down *)
        @ [
            get i; i32 3; rem_u; eqz;
            if_
              ([
                 get acc; i32 heap; load32 (); add; i32 1; rotl; set acc;
                 get nheap; i32 1; sub; set nheap;
                 i32 heap; get nheap; i32 2; shl; i32 heap; add; load32 (); store32 ();
                 i32 0; set pos;
               ]
              @ while_loop
                  [ get pos; i32 1; shl; i32 1; add; get nheap; lt_u ]
                  [
                    get pos; i32 1; shl; i32 1; add; set child;
                    get child; i32 1; add; get nheap; lt_u;
                    if_
                      [
                        get child; i32 1; add; i32 2; shl; i32 heap; add; load32 ();
                        get child; i32 2; shl; i32 heap; add; load32 (); lt_u;
                        if_ [ get child; i32 1; add; set child ] [];
                      ]
                      [];
                    get child; i32 2; shl; i32 heap; add; load32 ();
                    get pos; i32 2; shl; i32 heap; add; load32 (); lt_u;
                    if_
                      [
                        get pos; i32 2; shl; i32 heap; add; load32 (); set t;
                        get pos; i32 2; shl; i32 heap; add;
                        get child; i32 2; shl; i32 heap; add; load32 (); store32 ();
                        get child; i32 2; shl; i32 heap; add; get t; store32 ();
                        get child; set pos;
                      ]
                      [ get nheap; set pos ];
                  ])
              [];
          ])
    @ [ get acc; get nheap; add ]);
  build b

(* --- 523.xalancbmk: implicit-tree transformation -------------------------- *)

let xalancbmk_module () =
  let b = create ~memory_pages:16 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* nodes in an implicit binary tree; a recursive visitor rewrites values *)
  let visit = declare b "visit" ~params:[ W.I32; W.I32 ] ~results:[ W.I32 ] () in
  let nodes = 65536 in
  define b visit ~locals:[ W.I32 ]
    [
      get 0; i32 nodes; ge_u;
      if_ ~ty:W.I32 [ i32 0 ]
        [
          (* transform this node *)
          get 0; i32 2; shl;
          get 0; i32 2; shl; load32 (); get 1; bxor; i32 5; rotl;
          store32 ();
          (* recurse on children, depth-limited by param 1 *)
          get 1; eqz;
          if_ ~ty:W.I32 [ get 0; i32 2; shl; load32 () ]
            [
              get 0; i32 1; shl; get 1; i32 1; sub; call visit;
              get 0; i32 1; shl; i32 1; add; get 1; i32 1; sub; call visit;
              add;
              get 0; i32 2; shl; load32 (); add;
            ];
        ];
    ];
  let run_i = 1 and state = 2 and acc = 3 in
  define b run ~locals:[ W.I32; W.I32; W.I32 ]
    (Frag.fill_random_words ~base:0 ~count:[ i32 nodes ] ~i:run_i ~state ~seed:523
    @ for_loop ~i:run_i ~start:[ i32 0 ] ~stop:[ get 0 ]
        [ i32 1; i32 14; call visit; get acc; add; set acc ]
    @ [ get acc ]);
  build b

(* --- 538.imagick: 3x3 convolution ----------------------------------------- *)

let imagick_module () =
  let b = create ~memory_pages:32 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and row = 3 and col = 4 and acc = 5 and s = 6 in
  let w = 384 in
  let src = 0 and dst = w * w in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    (Frag.fill_random_bytes ~base:src ~count:[ i32 (w * w) ] ~i ~state ~seed:538
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (for_loop ~i:row ~start:[ i32 1 ] ~stop:[ i32 (w - 1) ]
           (for_loop ~i:col ~start:[ i32 1 ] ~stop:[ i32 (w - 1) ]
              [
                (* 3x3 kernel: 4*c + orthogonals*2 + diagonals, /12 *)
                get row; i32 w; mul; get col; add; i32 src; add; load8_u (); i32 2; shl;
                get row; i32 w; mul; get col; add; i32 src; add; load8_u ~offset:1 (); i32 1; shl; add;
                get row; i32 w; mul; get col; add; i32 (src - 1); add; load8_u (); i32 1; shl; add;
                get row; i32 1; add; i32 w; mul; get col; add; i32 src; add; load8_u (); i32 1; shl; add;
                get row; i32 1; sub; i32 w; mul; get col; add; i32 src; add; load8_u (); i32 1; shl; add;
                get row; i32 1; add; i32 w; mul; get col; add; i32 src; add; load8_u ~offset:1 (); add;
                get row; i32 1; sub; i32 w; mul; get col; add; i32 (src - 1); add; load8_u (); add;
                i32 12; div_u; set s;
                get row; i32 w; mul; get col; add; i32 dst; add; get s; store8 ();
              ]))
    @ [ i32 0; set acc ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 (w * w / 4) ]
        [ get acc; i32 1; rotl; get i; i32 2; shl; i32 dst; add; load32 (); bxor; set acc ]
    @ [ get acc ]);
  build b

(* --- 541.leela: union-find territory scoring ------------------------------- *)

let leela_module () =
  let b = create ~memory_pages:8 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  (* find with path halving over a parent array *)
  let find = declare b "find" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let parents = 0 in
  define b find
    (while_loop
       [ get 0; i32 2; shl; i32 parents; add; load32 (); get 0; ne ]
       [
         (* path halving: parent[x] = parent[parent[x]] *)
         get 0; i32 2; shl; i32 parents; add;
         get 0; i32 2; shl; i32 parents; add; load32 (); i32 2; shl; i32 parents; add; load32 ();
         store32 ();
         get 0; i32 2; shl; i32 parents; add; load32 (); set 0;
       ]
    @ [ get 0 ]);
  let n = 4096 in
  let i = 1 and state = 2 and acc = 3 and a = 4 and bb = 5 in
  let run_body =
    for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 n ]
      [ get i; i32 2; shl; i32 parents; add; get i; store32 () ]
    @ [ i32 541; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ get 0 ]
        (Frag.lcg_next ~state
        @ [ i32 (n - 1); band; call find; set a ]
        @ Frag.lcg_next ~state
        @ [ i32 (n - 1); band; call find; set bb ]
        @ [
            get a; get bb; ne;
            if_ [ get a; i32 2; shl; i32 parents; add; get bb; store32 () ] [];
            get acc; get a; get bb; bxor; add; i32 1; rotl; set acc;
          ])
    @ [ get acc ]
  in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32 ] run_body;
  build b

(* --- 557.xz: LZ-style match finding ---------------------------------------- *)

let xz_module () =
  let b = create ~memory_pages:8 () in
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and pos = 3 and acc = 4 and cand = 5 and len = 6 and h = 7 in
  let text = 0 and htab = 0x30000 in
  let hmask = 4095 in
  define b run ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* compressible input: low-entropy bytes *)
     [ i32 557; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 131072 ]
        ([ get i; i32 text; add ]
        @ Frag.lcg_next ~state
        @ [ i32 9; shr_u; i32 15; band; store8 () ])
    @ for_loop ~i:pos ~start:[ i32 4 ] ~stop:[ get 0 ]
        ([
           (* hash the next 3 bytes *)
           get pos; i32 131071; band; i32 text; add; load8_u ();
           get pos; i32 1; add; i32 131071; band; i32 text; add; load8_u (); i32 4; shl; bxor;
           get pos; i32 2; add; i32 131071; band; i32 text; add; load8_u (); i32 8; shl; bxor;
           i32 hmask; band; set h;
           (* candidate from hash table, then remember current pos *)
           get h; i32 2; shl; i32 htab; add; load32 (); set cand;
           get h; i32 2; shl; i32 htab; add; get pos; i32 131071; band; store32 ();
           i32 0; set len;
         ]
        (* extend the match up to 16 bytes *)
        @ while_loop
            [
              get len; i32 16; lt_u;
              get cand; get len; add; i32 131071; band; i32 text; add; load8_u ();
              get pos; get len; add; i32 131071; band; i32 text; add; load8_u ();
              eq; band;
            ]
            [ get len; i32 1; add; set len ]
        @ [ get acc; get len; add; i32 1; rotl; set acc ])
    @ [ get acc ]);
  build b

(* --- registry: 14 SPECrate-like benchmarks --------------------------------- *)

let gcc = k "502_gcc" ~args:30000 ~description:"tokenizer + symbol hashing" (lazy (gcc_module ()))

let mcf_r =
  k "505_mcf_r" ~args:8000 ~description:"graph relaxation (2006 generator, 2017 scale)"
    (lazy (Spec2006.mcf_module ~wide:false ()))

let namd_r =
  k "508_namd_r" ~args:1200 ~description:"pair forces (2006 generator)"
    (lazy (Spec2006.namd_module ()))

let parest = k "510_parest_r" ~args:16 ~description:"CSR sparse matvec" (lazy (parest_module ()))
let povray = k "511_povray_r" ~args:3000 ~description:"ray-sphere intersection" (lazy (povray_module ()))

let lbm_r =
  k "519_lbm_r" ~args:4 ~description:"stencil sweeps (2006 generator)"
    (lazy (Spec2006.lbm_module ()))

let omnetpp = k "520_omnetpp_r" ~args:50000 ~description:"event-heap simulator" (lazy (omnetpp_module ()))

let xalancbmk =
  k "523_xalancbmk_r" ~args:20 ~description:"recursive tree transform" (lazy (xalancbmk_module ()))

let x264 =
  k "525_x264_r" ~args:110 ~description:"SAD motion search (h264 generator)"
    (lazy (Spec2006.h264_module ()))

let deepsjeng =
  k "531_deepsjeng_r" ~args:110000 ~description:"bitboards (sjeng generator)"
    (lazy (Spec2006.sjeng_module ()))

let imagick = k "538_imagick_r" ~args:3 ~description:"3x3 convolution" (lazy (imagick_module ()))
let leela = k "541_leela_r" ~args:60000 ~description:"union-find scoring" (lazy (leela_module ()))

let nab =
  k "544_nab_r" ~args:1000 ~description:"n-body forces (namd generator, nab scale)"
    (lazy (Spec2006.namd_module ()))

let xz = k "557_xz_r" ~args:60000 ~description:"LZ match finding" (lazy (xz_module ()))

let all =
  [
    gcc; mcf_r; namd_r; parest; povray; lbm_r; omnetpp; xalancbmk; x264; deepsjeng; imagick;
    leela; nab; xz;
  ]
