lib/workloads/frag.mli: Sfi_wasm
