lib/workloads/sightglass.mli: Kernel
