lib/workloads/frag.ml: Sfi_wasm
