lib/workloads/spec2006.ml: Frag Int64 Kernel Sfi_wasm
