lib/workloads/polybench.mli: Kernel Sfi_wasm
