lib/workloads/firefox.ml: Buffer Char Frag Int64 Printf Sfi_core Sfi_machine Sfi_runtime Sfi_wasm Sfi_x86 String
