lib/workloads/sightglass.ml: Frag Int64 Kernel List Sfi_wasm
