lib/workloads/spec2017.mli: Kernel
