lib/workloads/firefox.mli: Sfi_core Sfi_wasm
