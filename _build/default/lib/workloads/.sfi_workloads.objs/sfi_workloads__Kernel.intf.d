lib/workloads/kernel.mli: Lazy Sfi_core Sfi_machine Sfi_wasm
