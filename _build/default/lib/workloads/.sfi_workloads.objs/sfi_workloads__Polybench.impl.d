lib/workloads/polybench.ml: Frag Int64 Kernel Sfi_wasm
