lib/workloads/kernel.ml: Int64 Lazy Printf Sfi_core Sfi_machine Sfi_runtime Sfi_wasm Sfi_x86
