lib/workloads/spec2006.mli: Kernel Sfi_wasm
