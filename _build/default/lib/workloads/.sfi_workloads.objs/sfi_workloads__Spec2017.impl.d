lib/workloads/spec2017.ml: Frag Int64 Kernel Sfi_wasm Spec2006
