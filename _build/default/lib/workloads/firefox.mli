(** Firefox library-sandboxing workloads (§6.1): per-glyph font shaping
    (libgraphite-style, transition-heavy) and SVG/XML parsing
    (libexpat-style, scan-heavy). Measurements cover whole scenarios —
    thousands of sandbox entries — so the per-invocation segment-base
    switch is part of the cost, including the [arch_prctl] fallback on
    CPUs without FSGSBASE (§4.1). *)

val font_module : unit -> Sfi_wasm.Ast.module_
(** Exports [init] (builds the glyph outlines) and
    [shape(glyph, scale) -> bbox checksum]. *)

val svg_document : icons:int -> copies:int -> string
(** A deterministic SVG sprite sheet, amplified by concatenation like the
    paper's Google-Docs toolbar benchmark. *)

val xml_module : document:string -> unit -> Sfi_wasm.Ast.module_
(** Exports [parse(len) -> checksum] over the document placed at offset 0. *)

type scenario_result = {
  invocations : int;
  total_ns : float;
  per_call_ns : float;
  checksum : int64;  (** strategy-independent; validates the runs *)
}

val run_font :
  ?fsgsbase_available:bool ->
  strategy:Sfi_core.Strategy.t ->
  glyphs:int ->
  unit ->
  scenario_result
(** Shape [glyphs] glyphs, entering the sandbox once per glyph. *)

val run_xml :
  ?fsgsbase_available:bool ->
  strategy:Sfi_core.Strategy.t ->
  repeats:int ->
  unit ->
  scenario_result
(** Parse the amplified SVG document [repeats] times. *)
