(** An x86-64 LFI backend (§4.3, Figure 5).

    LFI sandboxes {e native} programs by rewriting their assembly: every
    load and store is forced into the 4 GiB sandbox region, and every
    indirect control transfer (indirect calls/jumps and returns) is
    truncated to 32 bits and rebased into the region, NaCl-style. Code and
    data share one region, so a single reserved GPR ([%r14]) holds the
    region base.

    With Segue, data accesses go through [%gs] instead — one instruction,
    no materializing [lea] — but unlike Wasm the reserved GPR {e stays}
    reserved: segment registers cannot be used on control-flow targets, so
    the truncate-and-add-base sequence on returns and indirect branches
    still needs the base in a GPR. That is exactly the difference §4.3
    describes, and why LFI's Segue win comes from instruction count alone.

    Native input programs come from the repository's own pipeline: a Wasm
    kernel lowered under the [Direct] (native) strategy is an ordinary
    register program whose memory operands are marked as absolute-pointer
    accesses; the rewriter instruments exactly those. Frame (RBP-relative)
    and instance-context ([%fs]) accesses model the protected runtime and
    stay untouched, as LFI's trusted runtime does. *)

val region_base_reg : Sfi_x86.Ast.gpr
(** [%r14], the reserved region base. *)

val halt_label : string
(** Label of the halt trampoline the rewriter prepends; masked return
    addresses land here when the outermost frame returns. *)

val halt_hostcall : int
(** Hostcall id the trampoline issues; the runner terminates on it. *)

val rewrite : segue:bool -> Sfi_x86.Ast.program -> Sfi_x86.Ast.program
(** Instrument a native program. [segue = false] is the LFI baseline
    (reserved-base data sandboxing); [segue = true] uses [%gs] for data.
    Both sandbox control flow identically. *)

val instrumentation_counts : segue:bool -> Sfi_x86.Ast.program -> int * int
(** [(data_sites, control_sites)] the rewriter instruments — used by tests
    and the Figure 5 harness narration. *)

(** {1 Running rewritten programs} *)

type measurement = {
  result : int64;
  cycles : int;
  instructions : int;
  code_bytes : int;
  ns : float;
}

val run_native :
  ?cost:Sfi_machine.Cost.t -> Sfi_wasm.Ast.module_ -> entry:string -> args:int64 list -> measurement
(** Baseline: the [Direct]-lowered program, uninstrumented. *)

val run_lfi :
  ?cost:Sfi_machine.Cost.t ->
  segue:bool ->
  Sfi_wasm.Ast.module_ ->
  entry:string ->
  args:int64 list ->
  measurement
(** Lower the module natively, rewrite with LFI (with or without Segue),
    place code and heap in one shared region, and execute. *)
