module X = Sfi_x86.Ast
module W = Sfi_wasm.Ast
module Machine = Sfi_machine.Machine
module Codegen = Sfi_core.Codegen
module Strategy = Sfi_core.Strategy
module Runtime = Sfi_runtime.Runtime
module Vec = Sfi_util.Vec

let region_base_reg = X.R14
let halt_label = "__lfi_halt"
let halt_hostcall = Runtime.hostcall_halt

(* Scratch registers for materializing sandboxed addresses. R15 is
   transient in the input programs (the Direct lowering's own scratch);
   when an instruction itself touches R15 we fall back to R13 bracketed by
   a save/restore. *)
let primary_scratch = X.R15
let fallback_scratch = X.R13

let regs_of_mem (m : X.mem) =
  (match m.X.base with Some r -> [ r ] | None -> [])
  @ match m.X.index with Some (r, _) -> [ r ] | None -> []

let regs_of_operand = function
  | X.Reg r -> [ r ]
  | X.Imm _ -> []
  | X.Mem m -> regs_of_mem m

let regs_of_instr (i : X.instr) =
  match i with
  | X.Mov (_, a, b) | X.Alu (_, _, a, b) | X.Cmp (_, a, b) | X.Test (_, a, b) ->
      regs_of_operand a @ regs_of_operand b
  | X.Movzx (_, _, r, src) | X.Movsx (_, _, r, src) | X.Imul (_, r, src)
  | X.Bitcnt (_, _, r, src) | X.Cmovcc (_, _, r, src) ->
      r :: regs_of_operand src
  | X.Lea (_, r, m) -> r :: regs_of_mem m
  | X.Shift (_, _, op, _) | X.Neg (_, op) | X.Not (_, op) | X.Push op | X.Div (_, _, op) ->
      regs_of_operand op
  | X.Pop r | X.Jmp_reg r | X.Call_reg r
  | X.Wrfsbase r | X.Wrgsbase r | X.Rdfsbase r | X.Rdgsbase r | X.Setcc (_, r) ->
      [ r ]
  | X.Vload (_, m) | X.Vstore (m, _) -> regs_of_mem m
  | X.Label _ | X.Cqo _ | X.Jmp _ | X.Jcc _ | X.Call _ | X.Ret | X.Wrpkru | X.Rdpkru
  | X.Vzero _ | X.Vdup8 _ | X.Hostcall _ | X.Trap _ | X.Nop ->
      []

(* Rewrite one sandboxed (native_base) memory operand. Returns prelude
   instructions, the replacement operand, and trailer instructions. *)
let sandbox_mem ~segue ~instr_regs (m : X.mem) =
  if segue then
    (* One instruction: gs-relative with 32-bit effective address; the
       address-size override performs the truncation (Figure 1c). *)
    ([], { m with X.native_base = false; seg = Some X.GS; addr32 = true }, [])
  else begin
    let plain = { m with X.native_base = false } in
    match (m.X.base, m.X.index, m.X.disp) with
    | Some r, None, d when d >= 0 && d < 0x4000_0000 ->
        (* Fits the classic form: reserved base + zero-extended index. *)
        ([], X.mem ~base:region_base_reg ~index:(r, X.S1) ~disp:d (), [])
    | None, None, d when d >= 0 ->
        ([], X.mem ~base:region_base_reg ~disp:d (), [])
    | _ ->
        (* Materialize the 32-bit address first (the extra instruction
           Segue eliminates). *)
        if not (List.mem primary_scratch instr_regs) then
          ( [ X.Lea (X.W32, primary_scratch, plain) ],
            X.mem ~base:region_base_reg ~index:(primary_scratch, X.S1) (),
            [] )
        else
          ( [ X.Push (X.Reg fallback_scratch); X.Lea (X.W32, fallback_scratch, plain) ],
            X.mem ~base:region_base_reg ~index:(fallback_scratch, X.S1) (),
            [ X.Pop fallback_scratch ] )
  end

let map_sandboxed_operand ~segue instr op rebuild =
  match op with
  | X.Mem m when m.X.native_base ->
      let prelude, m', trailer = sandbox_mem ~segue ~instr_regs:(regs_of_instr instr) m in
      Some (prelude @ [ rebuild (X.Mem m') ] @ trailer)
  | _ -> None

(* Sandbox an indirect control-flow target held in [r]: truncate to the
   32-bit region offset and rebase. The region base is 4 GiB aligned, so
   in-region targets round-trip. *)
let sandbox_target r =
  [ X.Mov (X.W32, X.Reg r, X.Reg r); X.Alu (X.Add, X.W64, X.Reg r, X.Reg region_base_reg) ]

let rewrite_instr ~segue (i : X.instr) : X.instr list =
  let inline rebuild op =
    match map_sandboxed_operand ~segue i op rebuild with Some l -> Some l | None -> None
  in
  let default = [ i ] in
  match i with
  (* Data sandboxing: the Direct lowering only marks loads and stores
     (plain mov / movzx / movsx and the vector moves). *)
  | X.Mov (w, dst, src) -> (
      match inline (fun dst' -> X.Mov (w, dst', src)) dst with
      | Some l -> l
      | None -> (
          match inline (fun src' -> X.Mov (w, dst, src')) src with
          | Some l -> l
          | None -> default))
  | X.Movzx (dw, sw, r, src) -> (
      match inline (fun src' -> X.Movzx (dw, sw, r, src')) src with
      | Some l -> l
      | None -> default)
  | X.Movsx (dw, sw, r, src) -> (
      match inline (fun src' -> X.Movsx (dw, sw, r, src')) src with
      | Some l -> l
      | None -> default)
  | X.Vload (v, m) when m.X.native_base ->
      let prelude, m', trailer = sandbox_mem ~segue ~instr_regs:(regs_of_instr i) m in
      prelude @ [ X.Vload (v, m') ] @ trailer
  | X.Vstore (m, v) when m.X.native_base ->
      let prelude, m', trailer = sandbox_mem ~segue ~instr_regs:(regs_of_instr i) m in
      prelude @ [ X.Vstore (m', v) ] @ trailer
  (* Control-flow sandboxing: identical with and without Segue (§4.3). *)
  | X.Ret ->
      (* pop the return address into a caller-saved register, mask, jump. *)
      X.Pop X.R11 :: (sandbox_target X.R11 @ [ X.Jmp_reg X.R11 ])
  | X.Call_reg r -> sandbox_target r @ [ X.Call_reg r ]
  | X.Jmp_reg r -> sandbox_target r @ [ X.Jmp_reg r ]
  | _ ->
      (* Any other instruction with a sandboxed operand would be a
         lowering we do not generate. *)
      (match X.mem_operands i with
      | ms when List.exists (fun (m : X.mem) -> m.X.native_base) ms ->
          invalid_arg "Lfi.rewrite: unexpected sandboxed operand shape"
      | _ -> ());
      default

let rewrite ~segue (p : X.program) : X.program =
  let out = Vec.create () in
  ignore (Vec.push out (X.Label halt_label));
  ignore (Vec.push out (X.Hostcall halt_hostcall));
  Array.iter (fun i -> List.iter (fun i' -> ignore (Vec.push out i')) (rewrite_instr ~segue i)) p;
  Vec.to_array out

let instrumentation_counts ~segue (p : X.program) =
  let data = ref 0 and control = ref 0 in
  Array.iter
    (fun i ->
      (match i with
      | X.Ret | X.Call_reg _ | X.Jmp_reg _ -> incr control
      | _ -> ());
      if List.exists (fun (m : X.mem) -> m.X.native_base) (X.mem_operands i) then incr data)
    p;
  ignore segue;
  (!data, !control)

(* ------------------------------------------------------------------ *)
(* Running                                                              *)
(* ------------------------------------------------------------------ *)

type measurement = {
  result : int64;
  cycles : int;
  instructions : int;
  code_bytes : int;
  ns : float;
}

let compile_native ~reserve m =
  let cfg =
    {
      (Codegen.default_config ~strategy:Strategy.native ()) with
      Codegen.lfi_reserve_base = reserve;
    }
  in
  Codegen.compile cfg m

let measure ?cost compiled ~code_base ~set_region_base ~entry ~args =
  let engine = Runtime.create_engine ?cost ~code_base compiled in
  let inst = Runtime.instantiate engine in
  if set_region_base then
    Machine.set_reg (Runtime.machine engine) region_base_reg
      (Int64.of_int (Runtime.heap_base inst));
  Runtime.reset_metrics engine;
  match Runtime.invoke inst entry args with
  | Ok result ->
      let c = Machine.counters (Runtime.machine engine) in
      {
        result;
        cycles = c.Machine.cycles;
        instructions = c.Machine.instructions;
        code_bytes = compiled.Codegen.code_bytes;
        ns = Machine.elapsed_ns (Runtime.machine engine);
      }
  | Error k -> failwith ("Lfi: benchmark trapped: " ^ X.trap_name k)

let run_native ?cost m ~entry ~args =
  let compiled = compile_native ~reserve:false m in
  measure ?cost compiled ~code_base:Runtime.slab_base ~set_region_base:false ~entry ~args

let run_lfi ?cost ~segue m ~entry ~args =
  let compiled = compile_native ~reserve:true m in
  let program = rewrite ~segue compiled.Codegen.program in
  let compiled =
    {
      compiled with
      Codegen.program;
      code_bytes = Sfi_x86.Encode.program_length program;
    }
  in
  (* Code and data share the region: the machine's code base is the heap
     base of slot 0, so a single register bases both. *)
  measure ?cost compiled ~code_base:Runtime.slab_base ~set_region_base:true ~entry ~args
