lib/lfi/lfi.mli: Sfi_machine Sfi_wasm Sfi_x86
