lib/lfi/lfi.ml: Array Int64 List Sfi_core Sfi_machine Sfi_runtime Sfi_util Sfi_wasm Sfi_x86
