lib/machine/machine.ml: Array Bytes Char Cost Hashtbl Int64 Printf Sfi_vmem Sfi_x86
