lib/machine/machine.mli: Cost Sfi_vmem Sfi_x86
