lib/machine/cost.mli:
