lib/machine/cost.ml: Float
