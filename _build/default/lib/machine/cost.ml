type t = {
  frontend_bytes_per_cycle : int;
  alu_cycles : int;
  lea_cycles : int;
  load_cycles : int;
  store_cycles : int;
  mul_cycles : int;
  div_cycles : int;
  branch_cycles : int;
  taken_branch_cycles : int;
  indirect_branch_cycles : int;
  call_ret_cycles : int;
  vector_cycles : int;
  wrsegbase_cycles : int;
  wrsegbase_syscall_cycles : int;
  wrpkru_cycles : int;
  hostcall_cycles : int;
  dcache_miss_cycles : int;
  frequency_ghz : float;
}

let default =
  {
    frontend_bytes_per_cycle = 16;
    alu_cycles = 1;
    lea_cycles = 1;
    load_cycles = 3;
    store_cycles = 1;
    mul_cycles = 3;
    div_cycles = 20;
    branch_cycles = 1;
    taken_branch_cycles = 1;
    indirect_branch_cycles = 4;
    call_ret_cycles = 2;
    vector_cycles = 2;
    wrsegbase_cycles = 12;
    wrsegbase_syscall_cycles = 700;
    wrpkru_cycles = 40;
    hostcall_cycles = 120;
    dcache_miss_cycles = 14;
    frequency_ghz = 2.2;
  }

let no_frontend = { default with frontend_bytes_per_cycle = 0 }

let ns_of_cycles t cycles = float_of_int cycles /. t.frequency_ghz
let cycles_of_ns t ns = int_of_float (Float.round (ns *. t.frequency_ghz))
