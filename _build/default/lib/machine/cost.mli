(** Cycle cost model for the simulated CPU.

    The model charges two components per instruction:

    - a {e backend} cost by instruction class (ALU ops are cheap, loads pay
      L1 latency, division is slow, [wrpkru] pays the ~40 cycles the paper
      measures, etc.); and
    - a {e frontend} cost: the decoder sustains [frontend_bytes_per_cycle]
      of code bytes, so longer encodings cost fetch/decode bandwidth. This
      is what makes Segue's longer (prefixed) memory instructions visible —
      the 473_astar outlier of §6.1 — while still rewarding Segue's halved
      instruction counts.

    Cycles are converted to wall-clock using [frequency_ghz] (the paper pins
    benchmarks at 2.2 GHz). *)

type t = {
  frontend_bytes_per_cycle : int;  (** 16 on modern big cores; 0 disables the frontend model *)
  alu_cycles : int;
  lea_cycles : int;
  load_cycles : int;
  store_cycles : int;
  mul_cycles : int;
  div_cycles : int;
  branch_cycles : int;
  taken_branch_cycles : int;  (** extra cycles for a taken branch *)
  indirect_branch_cycles : int;
  call_ret_cycles : int;
  vector_cycles : int;
  wrsegbase_cycles : int;  (** wrfsbase/wrgsbase — FSGSBASE user instructions *)
  wrsegbase_syscall_cycles : int;  (** arch_prctl fallback on pre-IvyBridge CPUs (§4.1) *)
  wrpkru_cycles : int;  (** ~40 cycles / ~20 ns at 2.2 GHz (§3.2, §6.4.1) *)
  hostcall_cycles : int;
  dcache_miss_cycles : int;
      (** L1D miss penalty (an L2-hit latency; one flat level keeps the
          model simple while exposing working-set effects such as Wasm's
          32-bit "pointer compression" advantage, §6.1's 429_mcf outlier) *)
  frequency_ghz : float;
}

val default : t
(** Calibrated loosely against a modern desktop core at 2.2 GHz. *)

val no_frontend : t
(** [default] with the frontend model disabled — the ablation showing the
    astar outlier disappears when code size is free. *)

val ns_of_cycles : t -> int -> float
val cycles_of_ns : t -> float -> int
