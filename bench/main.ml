(* The experiment harness: one experiment per table and figure of the
   paper's evaluation (§6, §7 and the Table 1 verification narrative).
   Each experiment prints the same rows/series the paper reports, with the
   paper's headline numbers quoted alongside for comparison.

   Independent experiments run on OCaml 5 domains: each experiment writes
   into a per-domain buffer (via the Domain.DLS-keyed [emit] sink below)
   and the buffers are merged in registry order afterwards, so the output
   is byte-for-byte deterministic regardless of the domain count.

   Usage:
     dune exec bench/main.exe                # run everything
     dune exec bench/main.exe -- fig3 fig6   # run selected experiments
     dune exec bench/main.exe -- --quick     # CI-sized subset + engine check
     dune exec bench/main.exe -- --json out.json   # per-experiment wall-clock
                                                   # and instructions/sec
     dune exec bench/main.exe -- --jobs 4    # domain count (default: all cores)
     dune exec bench/main.exe -- --serial    # single-domain, unbuffered output
     dune exec bench/main.exe -- --list      # list experiment ids
     dune exec bench/main.exe -- --bechamel  # Bechamel micro-measurements
                                             # (one Test.make per table/figure)
*)

module Stats = Sfi_util.Stats
module Table = Sfi_util.Table
module Units = Sfi_util.Units
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Invariants = Sfi_core.Invariants
module Colorguard = Sfi_core.Colorguard
module Checked = Sfi_core.Checked
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine
module Cost = Sfi_machine.Cost
module Kernel = Sfi_workloads.Kernel
module Lfi = Sfi_lfi.Lfi
module Sim = Sfi_faas.Sim
module Shard = Sfi_faas.Shard
module Fworkloads = Sfi_faas.Workloads
module Trace = Sfi_trace.Trace

(* ------------------------------------------------------------------ *)
(* Output sink: direct to stdout normally; into a per-domain buffer    *)
(* when the parallel runner is active, so concurrent experiments never *)
(* interleave and the merged transcript matches a serial run.          *)
(* ------------------------------------------------------------------ *)

let out_key : Buffer.t option ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref None)

let emit s =
  match !(Domain.DLS.get out_key) with
  | Some buf -> Buffer.add_string buf s
  | None ->
      print_string s;
      flush stdout

let section title = emit (Printf.sprintf "\n=== %s ===\n\n" title)
let note fmt = Printf.ksprintf (fun s -> emit (s ^ "\n")) fmt
let print_table t = emit (Table.render t ^ "\n")

(* Named numeric results an experiment wants machine-readable: collected
   per domain like [emit], attached to the experiment's JSON entry as a
   "metrics" object. *)
let metrics_key : (string * float) list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let metric name v =
  let r = Domain.DLS.get metrics_key in
  r := (name, v) :: !r

(* ------------------------------------------------------------------ *)
(* Figure 3: SPEC CPU 2006 on Wasm2c, normalized runtime.              *)
(* ------------------------------------------------------------------ *)

let fig3 () =
  section
    "Figure 3 - Segue on Wasm: SPEC CPU 2006 normalized to native (paper: Segue removes 44.7% \
     of Wasm's geomean overhead)";
  let t = Table.create ~headers:[ "benchmark"; "wasm2c"; "wasm2c+segue"; "native cycles" ] in
  let base_norms = ref [] and segue_norms = ref [] in
  List.iter
    (fun (k : Kernel.t) ->
      let native = Kernel.run ~strategy:Strategy.native k in
      let base = Kernel.run ~strategy:Strategy.wasm_default k in
      let segue = Kernel.run ~strategy:Strategy.segue k in
      let nb = float_of_int base.Kernel.cycles /. float_of_int native.Kernel.cycles in
      let ns = float_of_int segue.Kernel.cycles /. float_of_int native.Kernel.cycles in
      base_norms := nb :: !base_norms;
      segue_norms := ns :: !segue_norms;
      Table.add_row t
        [ k.Kernel.name; Table.cell_float nb; Table.cell_float ns;
          string_of_int native.Kernel.cycles ])
    Sfi_workloads.Spec2006.all;
  let gb = Stats.geomean !base_norms and gs = Stats.geomean !segue_norms in
  Table.add_row t [ "geomean"; Table.cell_float gb; Table.cell_float gs; "" ];
  print_table t;
  note
    "Geomean overhead: %.1f%% -> %.1f%%; Segue eliminates %.1f%% of Wasm's overhead (paper: \
     44.7%%)."
    ((gb -. 1.0) *. 100.0)
    ((gs -. 1.0) *. 100.0)
    (Stats.overhead_eliminated ~baseline:1.0 ~unopt:gb ~opt:gs);
  if gs < 1.0 then
    note
      "(An elimination above 100%% means the Segue geomean dipped below native: mcf's 32-bit \
       pointer compression outweighs the residual sandboxing cost. Sharing one compiler \
       across all strategies removes the compiler-quality gap the paper's toolchains have; \
       see EXPERIMENTS.md.)"

(* ------------------------------------------------------------------ *)
(* Table 2: compiled binary sizes.                                     *)
(* ------------------------------------------------------------------ *)

let table2 () =
  section "Table 2 - Compiled binary sizes, stock Wasm vs Segue (paper: median -5.9%)";
  let t = Table.create ~headers:[ "benchmark"; "wasm2c"; "wasm2c+segue"; "size reduction" ] in
  let reductions = ref [] in
  List.iter
    (fun (k : Kernel.t) ->
      let base = Kernel.code_size ~strategy:Strategy.wasm_default k in
      let segue = Kernel.code_size ~strategy:Strategy.segue k in
      let reduction = float_of_int (base - segue) /. float_of_int base *. 100.0 in
      reductions := reduction :: !reductions;
      Table.add_row t
        [ k.Kernel.name; Printf.sprintf "%d B" base; Printf.sprintf "%d B" segue;
          Printf.sprintf "%.1f%%" reduction ])
    Sfi_workloads.Spec2006.all;
  print_table t;
  note "Median size reduction: %.1f%% (paper: 5.9%%)." (Stats.median !reductions)

(* ------------------------------------------------------------------ *)
(* Sec 6.1: Segue under explicit bounds checks.                        *)
(* ------------------------------------------------------------------ *)

let bounds () =
  section
    "Sec 6.1 - Segue on engines with explicit bounds checks (paper: removes 25.2% of overhead)";
  let t = Table.create ~headers:[ "benchmark"; "bounds"; "bounds+segue" ] in
  let b_norms = ref [] and s_norms = ref [] in
  List.iter
    (fun (k : Kernel.t) ->
      let native = Kernel.run ~strategy:Strategy.native k in
      let base = Kernel.run ~strategy:Strategy.wasm_bounds_checked k in
      let segue = Kernel.run ~strategy:Strategy.segue_bounds_checked k in
      let nb = float_of_int base.Kernel.cycles /. float_of_int native.Kernel.cycles in
      let ns = float_of_int segue.Kernel.cycles /. float_of_int native.Kernel.cycles in
      b_norms := nb :: !b_norms;
      s_norms := ns :: !s_norms;
      Table.add_row t [ k.Kernel.name; Table.cell_float nb; Table.cell_float ns ])
    Sfi_workloads.Spec2006.all;
  let gb = Stats.geomean !b_norms and gs = Stats.geomean !s_norms in
  Table.add_row t [ "geomean"; Table.cell_float gb; Table.cell_float gs ];
  print_table t;
  note "Segue eliminates %.1f%% of bounds-checked overhead (paper: 25.2%%)."
    (Stats.overhead_eliminated ~baseline:1.0 ~unopt:gb ~opt:gs)

(* ------------------------------------------------------------------ *)
(* Sec 6.1: Firefox font rendering and XML parsing.                    *)
(* ------------------------------------------------------------------ *)

let firefox () =
  section
    "Sec 6.1 - Firefox library sandboxing (paper: font 264/356/287 ms, Segue removes 75%; XML \
     331/381/347 ms, 68%)";
  let t =
    Table.create
      ~headers:[ "workload"; "native"; "sandboxed"; "sandboxed+segue"; "overhead eliminated" ]
  in
  let scenario name f =
    let native = f ~strategy:Strategy.native in
    let base = f ~strategy:Strategy.wasm_default in
    let segue = f ~strategy:Strategy.segue in
    let eliminated =
      Stats.overhead_eliminated ~baseline:native.Sfi_workloads.Firefox.total_ns
        ~unopt:base.Sfi_workloads.Firefox.total_ns ~opt:segue.Sfi_workloads.Firefox.total_ns
    in
    Table.add_row t
      [
        name;
        Printf.sprintf "%.1f ms" (native.Sfi_workloads.Firefox.total_ns /. 1e6);
        Printf.sprintf "%.1f ms" (base.Sfi_workloads.Firefox.total_ns /. 1e6);
        Printf.sprintf "%.1f ms" (segue.Sfi_workloads.Firefox.total_ns /. 1e6);
        Printf.sprintf "%.0f%%" eliminated;
      ]
  in
  scenario "font rendering" (fun ~strategy ->
      Sfi_workloads.Firefox.run_font ~strategy ~glyphs:12000 ());
  scenario "XML (SVG) parsing" (fun ~strategy ->
      Sfi_workloads.Firefox.run_xml ~strategy ~repeats:30 ());
  print_table t;
  let fast = Sfi_workloads.Firefox.run_font ~strategy:Strategy.segue ~glyphs:12000 () in
  let slow =
    Sfi_workloads.Firefox.run_font ~fsgsbase_available:false ~strategy:Strategy.segue
      ~glyphs:12000 ()
  in
  note
    "FSGSBASE matters for per-call base switching: font+segue costs %.1f ms with user-level \
     wrgsbase vs %.1f ms via the arch_prctl fallback on pre-IvyBridge CPUs (sec 4.1)."
    (fast.Sfi_workloads.Firefox.total_ns /. 1e6)
    (slow.Sfi_workloads.Firefox.total_ns /. 1e6)

(* ------------------------------------------------------------------ *)
(* Figure 4: Sightglass on WAMR.                                       *)
(* ------------------------------------------------------------------ *)

let fig4 () =
  section
    "Figure 4 - Sightglass on WAMR (paper: mostly noise; memmove +35.6% and sieve +48.7% \
     slower under full Segue from lost vectorization; loads-only Segue has no slowdowns)";
  let t =
    Table.create
      ~headers:[ "benchmark"; "wamr"; "wamr+segue"; "wamr+segue-loads"; "segue vs wamr" ]
  in
  List.iter
    (fun (k : Kernel.t) ->
      let native = Kernel.run ~vectorize:true ~strategy:Strategy.native k in
      let run s = Kernel.run ~vectorize:true ~strategy:s k in
      let base = run Strategy.wasm_default in
      let segue = run Strategy.segue in
      let loads = run Strategy.segue_loads_only in
      let norm (m : Kernel.measurement) =
        float_of_int m.Kernel.cycles /. float_of_int native.Kernel.cycles
      in
      Table.add_row t
        [
          k.Kernel.name;
          Table.cell_float (norm base);
          Table.cell_float (norm segue);
          Table.cell_float (norm loads);
          Table.cell_pct
            ((float_of_int segue.Kernel.cycles /. float_of_int base.Kernel.cycles -. 1.0)
            *. 100.0);
        ])
    Sfi_workloads.Sightglass.all;
  print_table t;
  let m = Lazy.force Sfi_workloads.Sightglass.memmove.Kernel.wasm in
  note
    "Vectorizer status: %d loop(s) vectorized under base-reg, %d under full Segue (the pass \
     does not recognize segment-relative operands, sec 4.2)."
    (Sfi_core.Vectorize.loops_vectorized Strategy.wasm_default m)
    (Sfi_core.Vectorize.loops_vectorized Strategy.segue m)

(* ------------------------------------------------------------------ *)
(* Sec 6.2: PolybenchC and Dhrystone.                                  *)
(* ------------------------------------------------------------------ *)

let polybench () =
  section
    "Sec 6.2 - PolybenchC and Dhrystone on WAMR (paper: Wasm 6% faster than native, Segue \
     10%; Dhrystone 9.7% -> 28.2% faster)";
  let t = Table.create ~headers:[ "benchmark"; "wamr"; "wamr+segue"; "native dTLB/dcache" ] in
  let b_norms = ref [] and s_norms = ref [] in
  List.iter
    (fun (k : Kernel.t) ->
      let native = Kernel.run ~strategy:Strategy.native k in
      let base = Kernel.run ~strategy:Strategy.wasm_default k in
      let segue = Kernel.run ~strategy:Strategy.segue k in
      let nb = float_of_int base.Kernel.cycles /. float_of_int native.Kernel.cycles in
      let ns = float_of_int segue.Kernel.cycles /. float_of_int native.Kernel.cycles in
      b_norms := nb :: !b_norms;
      s_norms := ns :: !s_norms;
      Table.add_row t
        [
          k.Kernel.name; Table.cell_float nb; Table.cell_float ns;
          Printf.sprintf "%d/%d" native.Kernel.dtlb_misses native.Kernel.dcache_misses;
        ])
    Sfi_workloads.Polybench.all;
  let gb = Stats.geomean !b_norms and gs = Stats.geomean !s_norms in
  Table.add_row t [ "geomean"; Table.cell_float gb; Table.cell_float gs; "" ];
  print_table t;
  note
    "Polybench: Wasm runs %.1f%% %s native; with Segue %.1f%% %s (paper: 6%% and 10%% faster \
     - the native layout pays for 8-byte elements)."
    (Float.abs ((1.0 -. gb) *. 100.0))
    (if gb < 1.0 then "faster than" else "slower than")
    (Float.abs ((1.0 -. gs) *. 100.0))
    (if gs < 1.0 then "faster" else "slower");
  let k = Sfi_workloads.Polybench.dhrystone in
  let native = Kernel.run ~strategy:Strategy.native k in
  let base = Kernel.run ~strategy:Strategy.wasm_default k in
  let segue = Kernel.run ~strategy:Strategy.segue k in
  note
    "Dhrystone: wasm %.3f, wasm+segue %.3f of native runtime (paper: 0.91 and 0.78 - Wasm \
     faster than native, Segue widening the gap)."
    (float_of_int base.Kernel.cycles /. float_of_int native.Kernel.cycles)
    (float_of_int segue.Kernel.cycles /. float_of_int native.Kernel.cycles)

(* ------------------------------------------------------------------ *)
(* Figure 5: SPEC CPU 2017 on LFI.                                     *)
(* ------------------------------------------------------------------ *)

let fig5 () =
  section
    "Figure 5 - Segue on LFI: SPEC CPU 2017 normalized to native (paper: 17.4% -> 9.4% \
     geomean overhead; Segue eliminates 46%)";
  let t = Table.create ~headers:[ "benchmark"; "lfi"; "lfi+segue" ] in
  let l_norms = ref [] and s_norms = ref [] in
  List.iter
    (fun (k : Kernel.t) ->
      let m = Lazy.force k.Kernel.wasm in
      let args = k.Kernel.args in
      let native = Lfi.run_native m ~entry:k.Kernel.entry ~args in
      let lfi = Lfi.run_lfi ~segue:false m ~entry:k.Kernel.entry ~args in
      let seg = Lfi.run_lfi ~segue:true m ~entry:k.Kernel.entry ~args in
      let nl = float_of_int lfi.Lfi.cycles /. float_of_int native.Lfi.cycles in
      let ns = float_of_int seg.Lfi.cycles /. float_of_int native.Lfi.cycles in
      l_norms := nl :: !l_norms;
      s_norms := ns :: !s_norms;
      Table.add_row t [ k.Kernel.name; Table.cell_float nl; Table.cell_float ns ])
    Sfi_workloads.Spec2017.all;
  let gl = Stats.geomean !l_norms and gs = Stats.geomean !s_norms in
  Table.add_row t [ "geomean"; Table.cell_float gl; Table.cell_float gs ];
  print_table t;
  note
    "LFI overhead %.1f%% -> %.1f%% with Segue: %.0f%% of the overhead eliminated (paper: \
     17.4%% -> 9.4%%, 46%%)."
    ((gl -. 1.0) *. 100.0)
    ((gs -. 1.0) *. 100.0)
    (Stats.overhead_eliminated ~baseline:1.0 ~unopt:gl ~opt:gs)

(* ------------------------------------------------------------------ *)
(* Table 1: ColorGuard safety invariants + verification findings.      *)
(* ------------------------------------------------------------------ *)

let table1 () =
  section "Table 1 - ColorGuard safety invariants in Wasmtime (and the sec 5.2 findings)";
  let t = Table.create ~headers:[ "#"; "invariant" ] in
  List.iter (fun (n, d) -> Table.add_row t [ string_of_int n; d ]) Invariants.descriptions;
  print_table t;
  let params =
    {
      Pool.num_slots = 1000;
      max_memory_bytes = 408 * Units.mib;
      expected_slot_bytes = 408 * Units.mib;
      guard_bytes = 8 * Units.gib;
      pre_guard_enabled = true;
      num_pkeys_available = 15;
      stripe_enabled = true;
    }
  in
  (match Pool.compute params with
  | Ok layout ->
      let violations = Invariants.check layout in
      note "Striped 408 MiB x 1000 layout: %d invariant violations (stripes=%d, stride=%s)."
        (List.length violations) layout.Pool.num_stripes
        (Units.to_string layout.Pool.slot_bytes)
  | Error msg -> note "layout rejected: %s" msg);
  (* The saturating-addition bug found by verification (sec 5.2). *)
  let adversarial =
    {
      Pool.num_slots = 4096;
      max_memory_bytes = 4 * Units.gib;
      expected_slot_bytes = Units.align_up (max_int / 4096) Units.wasm_page_size;
      guard_bytes = 4 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = false;
    }
  in
  (match Pool.compute ~arith:Checked.Checked ~defensive:false adversarial with
  | Error msg -> note "Checked arithmetic rejects the adversarial configuration: %s." msg
  | Ok _ -> note "UNEXPECTED: checked arithmetic accepted the adversarial configuration");
  (match Pool.compute ~arith:Checked.Saturating ~defensive:false adversarial with
  | Ok layout ->
      let violations = Invariants.check layout in
      note
        "Saturating arithmetic (the upstream bug) silently built a layout violating %d \
         invariant(s):"
        (List.length violations);
      List.iter
        (fun v -> note "  - %s" (Format.asprintf "%a" Invariants.pp_violation v))
        violations
  | Error msg -> note "saturating build failed: %s" msg);
  let unaligned = { Pool.default_params with Pool.max_memory_bytes = (3 * Units.mib) + 4096 } in
  (match Pool.compute ~defensive:false unaligned with
  | Ok layout ->
      note "Pre-verification allocator accepts unaligned max_memory_bytes; the checker flags: %s"
        (String.concat "; "
           (List.map
              (fun (v : Invariants.violation) -> Printf.sprintf "inv %d" v.Invariants.number)
              (Invariants.check layout)))
  | Error msg -> note "unaligned params rejected: %s" msg);
  match Pool.compute ~defensive:true unaligned with
  | Error msg -> note "Post-verification (defensive) allocator rejects them up front: %s." msg
  | Ok _ -> note "UNEXPECTED: defensive allocator accepted unaligned parameters"

(* ------------------------------------------------------------------ *)
(* Sec 6.4.1: transition microbenchmark.                               *)
(* ------------------------------------------------------------------ *)

let transitions () =
  section
    "Sec 6.4.1 - Transition cost (paper: 30.34 ns -> 51.52 ns per transition, ~20 ns / 44 \
     cycles for the pkru switch)";
  let m =
    let open Sfi_wasm.Builder in
    let b = create ~memory_pages:1 () in
    let f = declare b "noop" ~params:[] ~results:[ Sfi_wasm.Ast.I32 ] () in
    define b f [ i32 7 ];
    build b
  in
  let measure ~colorguard =
    let cfg = { (Codegen.default_config ()) with Codegen.colorguard } in
    let compiled = Codegen.compile cfg m in
    let allocator =
      if colorguard then begin
        let params =
          {
            Pool.num_slots = 16;
            max_memory_bytes = 4 * Units.mib;
            expected_slot_bytes = 4 * Units.mib;
            guard_bytes = 32 * Units.mib;
            pre_guard_enabled = false;
            num_pkeys_available = 15;
            stripe_enabled = true;
          }
        in
        match Pool.compute params with
        | Ok layout -> Runtime.Pool layout
        | Error msg -> failwith msg
      end
      else Runtime.Simple { reservation = 4 * Units.gib }
    in
    let engine = Runtime.create_engine ~allocator compiled in
    let inst = Runtime.instantiate engine in
    ignore (Runtime.invoke inst "noop" []);
    Runtime.reset_metrics engine;
    let reps = 10_000 in
    for _ = 1 to reps do
      ignore (Runtime.invoke inst "noop" [])
    done;
    Runtime.elapsed_ns engine /. float_of_int (Runtime.transitions engine)
  in
  let plain = measure ~colorguard:false in
  let cg = measure ~colorguard:true in
  note
    "Per-transition cost: %.2f ns without ColorGuard, %.2f ns with (+%.2f ns; paper: 30.34 \
     -> 51.52 ns, +21.18 ns)."
    plain cg (cg -. plain)

(* ------------------------------------------------------------------ *)
(* Sec 6.4.2: scaling microbenchmark.                                  *)
(* ------------------------------------------------------------------ *)

let scaling () =
  section "Sec 6.4.2 - Pool scaling with 408 MiB slots (paper: 14,582 -> 218,716 slots, ~15x)";
  let params =
    {
      Pool.num_slots = 16;
      max_memory_bytes = 408 * Units.mib;
      expected_slot_bytes = 408 * Units.mib;
      guard_bytes = 8 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = false;
    }
  in
  let report = Colorguard.scaling params in
  let t = Table.create ~headers:[ "configuration"; "slots"; "per-slot stride" ] in
  Table.add_row t
    [ "guard regions only"; string_of_int report.Colorguard.unstriped_slots;
      Units.to_string report.Colorguard.unstriped_stride ];
  Table.add_row t
    [ "ColorGuard (15 keys)"; string_of_int report.Colorguard.striped_slots;
      Units.to_string report.Colorguard.striped_stride ];
  print_table t;
  note
    "Density increase: %.1fx (paper: ~15x). Classic Wasm limit: %d instances; Wasmtime's \
     shared-guard scheme: %d (sec 2: 16K and ~21K)."
    report.Colorguard.factor
    (Colorguard.classic_max_instances ())
    (Colorguard.wasmtime_default_max_instances ());
  let space = Sfi_vmem.Space.create ~max_map_count:64 () in
  let rec fill i =
    if i >= 64 then i
    else
      match
        Sfi_vmem.Space.map space ~addr:(0x10000000 + (i * 0x10000)) ~len:4096
          ~prot:Sfi_vmem.Prot.rw
      with
      | Ok () -> fill (i + 1)
      | Error _ -> i
  in
  note
    "Deployment note: each colored stripe is its own VMA; with vm.max_map_count=64 the \
     kernel model stops at %d mappings - production deployments must raise the 65,530 \
     default (sec 5.1)."
    (fill 0)

(* ------------------------------------------------------------------ *)
(* Figures 6 and 7: ColorGuard vs multiprocess scaling.                *)
(* ------------------------------------------------------------------ *)

let process_counts = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 11; 12; 13; 14; 15 ]

let fig6 () =
  section
    "Figure 6 - Multiprocess scaling vs ColorGuard: per-core throughput gain (paper: grows \
     with process count, max ~29%)";
  let t =
    Table.create ~headers:("processes" :: List.map (fun w -> Fworkloads.name w) Fworkloads.all)
  in
  List.iter
    (fun k ->
      let cells =
        List.map
          (fun w ->
            let cfg = Sim.default_config ~workload:w () in
            Table.cell_pct (Sim.throughput_gain ~workload:w ~processes:k cfg))
          Fworkloads.all
      in
      Table.add_row t (string_of_int k :: cells))
    process_counts;
  print_table t

let fig7 () =
  section
    "Figures 7a/7b - Context switches and dTLB misses (paper: ColorGuard flat; multiprocess \
     grows with process count)";
  let t =
    Table.create
      ~headers:
        [ "processes"; "MP ctx switches"; "MP dTLB misses"; "CG transitions"; "CG dTLB misses" ]
  in
  let cfg = { (Sim.default_config ()) with Sim.duration_ns = 40.0e6 } in
  List.iter
    (fun k ->
      let mp = Sim.run { cfg with Sim.mode = Sim.Multiprocess k } in
      let cg = Sim.run { cfg with Sim.mode = Sim.Colorguard } in
      Table.add_row t
        [
          string_of_int k;
          string_of_int mp.Sim.context_switches;
          string_of_int mp.Sim.dtlb_misses;
          string_of_int cg.Sim.user_transitions;
          string_of_int cg.Sim.dtlb_misses;
        ])
    [ 1; 3; 5; 7; 9; 11; 13; 15 ];
  print_table t

(* ------------------------------------------------------------------ *)
(* Degraded mode: the Figure 6 comparison with misbehaving tenants.    *)
(* ------------------------------------------------------------------ *)

let faults () =
  section
    "Degraded mode - Figure 6 under misbehaving tenants: per-instance recovery (ColorGuard) \
     vs per-process blast radius (multiprocess)";
  let t =
    Table.create
      ~headers:
        [
          "trap rate";
          "CG avail";
          "CG goodput";
          "CG collateral";
          "MP avail";
          "MP goodput";
          "MP collateral";
        ]
  in
  (* A 5 us preemption quantum (below the ~16 us service time) and tight
     IO keep several requests mid-service at any instant, so a process
     crash has co-resident victims — the regime where the blast radius is
     visible. *)
  let cfg =
    {
      (Sim.default_config ~workload:Fworkloads.Hash_balance ()) with
      Sim.epoch_ns = 5_000.0;
      io_mean_ns = 200_000.0;
    }
  in
  List.iter
    (fun trap_rate ->
      let cg, mp = Sim.degraded_mode ~workload:Fworkloads.Hash_balance ~processes:8 ~trap_rate cfg in
      Table.add_row t
        [
          Printf.sprintf "%.2f" trap_rate;
          Printf.sprintf "%.4f" cg.Sim.availability;
          Table.cell_float cg.Sim.goodput_rps;
          string_of_int cg.Sim.collateral_aborts;
          Printf.sprintf "%.4f" mp.Sim.availability;
          Table.cell_float mp.Sim.goodput_rps;
          string_of_int mp.Sim.collateral_aborts;
        ])
    [ 0.0; 0.02; 0.05; 0.10 ];
  print_table t;
  (* Key exhaustion: striping degrades to guard regions, never refuses. *)
  let p =
    {
      Sfi_core.Pool.num_slots = 16;
      max_memory_bytes = 4 * Units.mib;
      expected_slot_bytes = 4 * Units.mib;
      guard_bytes = 16 * Units.mib;
      pre_guard_enabled = false;
      num_pkeys_available = 1;
      stripe_enabled = true;
    }
  in
  (match Sfi_core.Pool.compute_with_fallback p with
  | Ok (_, status) ->
      note "striping with 1 key: %s"
        (Format.asprintf "%a" Sfi_core.Pool.pp_stripe_status status)
  | Error msg -> note "striping with 1 key: rejected (%s)" msg);
  note "(paper: a trap kills one instance under ColorGuard; under multiprocess it takes the \
        process and every co-resident request with it)"

(* ------------------------------------------------------------------ *)
(* Overload: adaptive admission control and per-tenant breakers vs     *)
(* uncontrolled congestion collapse, at 2x the serving capacity.       *)
(* ------------------------------------------------------------------ *)

let overload () =
  section
    "Overload - adaptive admission (CoDel sojourn + token buckets) and per-tenant circuit \
     breakers vs uncontrolled queueing, at 2x serving capacity with a 1 ms SLO";
  (* Operating point: ~16.2 us of CPU per hash request caps the single
     simulated core at ~62k req/s. Each closed-loop tenant re-arrives
     ~1.55 ms after completing, so 96 tenants offer ~1x capacity and 192
     offer ~2x. Round-robin scheduling over an 8-slot pool makes the
     excess queue at admission; the SLO says a completion slower than
     1 ms end-to-end is worthless to the client. *)
  let scenario ?(crash = []) ~concurrency ~admission () =
    let ov =
      {
        Sim.no_overload with
        Sim.pool_slots = Some 8;
        request_deadline_ns = Some 1.0e6;
        admission = (if admission then Some Runtime.default_admission else None);
        breaker = (if admission then Some Sfi_faas.Breaker.default_config else None);
        degradation = admission;
        hedged_retries = admission;
        crash_tenants = crash;
      }
    in
    Sim.run
      {
        (Sim.default_config ~workload:Fworkloads.Hash_balance ~churn:true ~overload:ov
           ~fair_scheduling:true ())
        with
        Sim.concurrency;
        duration_ns = 40.0e6;
        io_mean_ns = 1_550_000.0;
        epoch_ns = 5_000.0;
      }
  in
  let max_healthy_p99 ?(skip = []) (r : Sim.result) =
    Array.fold_left
      (fun acc t ->
        if List.mem t.Sim.t_id skip then acc else Float.max acc t.Sim.t_p99_e2e_ns)
      0.0 r.Sim.tenants
  in
  let base = scenario ~concurrency:96 ~admission:true () in
  let un = scenario ~concurrency:192 ~admission:false () in
  let ctl = scenario ~concurrency:192 ~admission:true () in
  let t =
    Table.create
      ~headers:
        [ "scenario"; "tenants"; "goodput"; "retention"; "SLO miss"; "shed"; "p99 e2e ms" ]
  in
  let row name (r : Sim.result) n =
    Table.add_row t
      [
        name;
        string_of_int n;
        Table.cell_float r.Sim.goodput_rps;
        Printf.sprintf "%.2f" (r.Sim.goodput_rps /. base.Sim.goodput_rps);
        string_of_int r.Sim.deadline_misses;
        string_of_int
          (r.Sim.shed_sojourn + r.Sim.shed_rate_limited + r.Sim.shed_queue_full
         + r.Sim.shed_priority);
        Printf.sprintf "%.2f" (max_healthy_p99 r /. 1e6);
      ]
  in
  row "1x baseline" base 96;
  row "2x uncontrolled" un 192;
  row "2x + admission" ctl 192;
  print_table t;
  let retention = ctl.Sim.goodput_rps /. base.Sim.goodput_rps in
  let collapse = un.Sim.goodput_rps /. base.Sim.goodput_rps in
  metric "overload_baseline_goodput_rps" base.Sim.goodput_rps;
  metric "overload_uncontrolled_goodput_rps" un.Sim.goodput_rps;
  metric "overload_controlled_goodput_rps" ctl.Sim.goodput_rps;
  metric "overload_goodput_retention" retention;
  metric "overload_uncontrolled_retention" collapse;
  note
    "At 2x load the uncontrolled queue serves everyone late (goodput x%.2f); shedding at \
     admission keeps served requests inside the SLO (goodput x%.2f)."
    collapse retention;
  (* One tenant crash-loops; its breaker opens and the healthy tenants
     keep their tail latency. *)
  let quiet = scenario ~concurrency:96 ~admission:true () in
  let crash = scenario ~concurrency:96 ~admission:true ~crash:[ 0 ] () in
  let p99_quiet = max_healthy_p99 quiet and p99_crash = max_healthy_p99 ~skip:[ 0 ] crash in
  let opens =
    Array.fold_left (fun acc t -> acc + t.Sim.t_breaker_opens) 0 crash.Sim.tenants
  in
  metric "overload_healthy_p99_ms" (p99_crash /. 1e6);
  metric "overload_crash_breaker_opens" (float_of_int opens);
  note
    "Crash-looping tenant 0: breaker opened %d times, %d fast-fails; healthy-tenant p99 \
     %.2f ms vs %.2f ms with no misbehaver."
    opens crash.Sim.breaker_fast_fails (p99_crash /. 1e6) (p99_quiet /. 1e6);
  if retention < 0.75 then
    failwith
      (Printf.sprintf "overload: controlled goodput retention %.2f below 0.75" retention);
  if p99_crash > 2.0 *. Float.max p99_quiet 1.0 then
    failwith
      (Printf.sprintf "overload: healthy-tenant p99 %.2f ms not bounded (quiet %.2f ms)"
         (p99_crash /. 1e6) (p99_quiet /. 1e6));
  if opens = 0 then failwith "overload: crash-looping tenant never tripped its breaker"

(* ------------------------------------------------------------------ *)
(* Lifecycle: CoW instantiation, dirty-page recycle, transition        *)
(* classes, and FaaS goodput under churn.                              *)
(* ------------------------------------------------------------------ *)

let lifecycle () =
  section
    "Lifecycle - copy-on-write instantiation and dirty-page recycle (Wasmtime-style pooling \
     cold starts; transition classes per Kolosick et al.)";
  let os_page = Sfi_vmem.Space.page_size in
  let mk_module pages =
    let open Sfi_wasm.Builder in
    let b = create ~memory_pages:pages ~max_memory_pages:pages () in
    let f = declare b "run" ~params:[] ~results:[ Sfi_wasm.Ast.I32 ] () in
    define b f [ i32 1 ];
    build b
  in
  let fresh_engine pages =
    Runtime.create_engine (Codegen.compile (Codegen.default_config ()) (mk_module pages))
  in
  (* Warm recycle+instantiate, dirtying exactly [dirty] OS pages of heap
     per cycle: the recycle must pay for those pages and nothing else.
     Timed in batches, reporting the fastest batch — the usual defense
     against GC pauses and scheduler noise in in-process wall timing. *)
  let warm_cycle engine ~dirty ~reps =
    let batches = 8 in
    let per_batch = max 1 (reps / batches) in
    let inst = ref (Runtime.instantiate engine) in
    let z0 = (Runtime.metrics engine).Runtime.m_pages_zeroed_on_recycle in
    let best = ref infinity in
    for _ = 1 to batches do
      let batch = ref 0.0 in
      for _ = 1 to per_batch do
        for p = 0 to dirty - 1 do
          Runtime.write_memory !inst ~addr:(p * os_page) "\001"
        done;
        let t0 = Unix.gettimeofday () in
        Runtime.release !inst;
        inst := Runtime.instantiate engine;
        batch := !batch +. (Unix.gettimeofday () -. t0)
      done;
      if !batch < !best then best := !batch
    done;
    let z1 = (Runtime.metrics engine).Runtime.m_pages_zeroed_on_recycle in
    Runtime.release !inst;
    ( !best *. 1e9 /. float_of_int per_batch,
      float_of_int (z1 - z0) /. float_of_int (batches * per_batch) )
  in
  let reps = 400 in
  (* (a) Recycle cost scales with the dirty fraction, on a fixed 4 MiB
     heap (1024 OS pages). *)
  let heap_pages = 64 in
  let engine = fresh_engine heap_pages in
  let t = Table.create ~headers:[ "dirty OS pages"; "warm cycle ns"; "pages zeroed/recycle" ] in
  List.iter
    (fun dirty ->
      let ns, zeroed = warm_cycle engine ~dirty ~reps in
      metric (Printf.sprintf "warm_cycle_ns_dirty_%d" dirty) ns;
      Table.add_row t
        [ string_of_int dirty; Printf.sprintf "%.0f" ns; Printf.sprintf "%.1f" zeroed ])
    [ 0; 4; 16; 64; 256 ];
  print_table t;
  (* (b) ... and not with the heap size: same dirty footprint on a 128 KiB
     vs an 8 MiB heap. The pre-refactor runtime madvised the whole heap. *)
  let dirty = 16 in
  let small, _ = warm_cycle (fresh_engine 2) ~dirty ~reps in
  let large, _ = warm_cycle (fresh_engine 128) ~dirty ~reps in
  metric "warm_cycle_heap_ratio" (large /. small);
  note
    "Heap-size independence: %d dirty pages cost %.0f ns to recycle on a 128 KiB heap, %.0f \
     ns on an 8 MiB heap (ratio %.2fx; O(min_pages) recycling would be 64x)."
    dirty small large (large /. small);
  (* (c) Cold vs warm instantiation rate. *)
  let rate_engine = fresh_engine 2 in
  let n = 512 in
  let t0 = Unix.gettimeofday () in
  let insts = Array.init n (fun _ -> Runtime.instantiate rate_engine) in
  let cold_s = Unix.gettimeofday () -. t0 in
  Array.iter Runtime.release insts;
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    Runtime.release (Runtime.instantiate rate_engine)
  done;
  let warm_s = Unix.gettimeofday () -. t0 in
  let cold_rate = float_of_int n /. cold_s and warm_rate = float_of_int n /. warm_s in
  metric "cold_instantiations_per_s" cold_rate;
  metric "warm_instantiations_per_s" warm_rate;
  let m = Runtime.metrics rate_engine in
  note
    "Instantiation rate: %.0f/s cold (map host block + attach CoW backing), %.0f/s warm \
     (recycled slot; %d cold + %d warm performed)."
    cold_rate warm_rate m.Runtime.m_instantiations_cold m.Runtime.m_instantiations_warm;
  (* (d) Transition classes: the same import registered Pure / Readonly /
     Full, on a ColorGuard-striped pool (so Full pays two wrpkru per call
     and the cheap classes elide them). *)
  let tmod =
    let open Sfi_wasm.Builder in
    let b = create ~memory_pages:1 () in
    let imp = import b "observe" ~params:[ Sfi_wasm.Ast.I32 ] ~results:[ Sfi_wasm.Ast.I32 ] in
    let f = declare b "run" ~params:[] ~results:[ Sfi_wasm.Ast.I32 ] () in
    define b f [ i32 21; call imp ];
    build b
  in
  let class_cost clazz =
    let params =
      {
        Pool.num_slots = 16;
        max_memory_bytes = 4 * Units.mib;
        expected_slot_bytes = 4 * Units.mib;
        guard_bytes = 32 * Units.mib;
        pre_guard_enabled = false;
        num_pkeys_available = 15;
        stripe_enabled = true;
      }
    in
    let layout = match Pool.compute params with Ok l -> l | Error m -> failwith m in
    let compiled =
      Codegen.compile { (Codegen.default_config ()) with Codegen.colorguard = true } tmod
    in
    let eng = Runtime.create_engine ~allocator:(Runtime.Pool layout) compiled in
    Runtime.register_import ~clazz eng "observe" (fun _ args -> args.(0));
    let inst = Runtime.instantiate eng in
    ignore (Runtime.invoke inst "run" []);
    Runtime.reset_metrics eng;
    let reps = 5_000 in
    for _ = 1 to reps do
      ignore (Runtime.invoke inst "run" [])
    done;
    (Runtime.elapsed_ns eng /. float_of_int reps, Runtime.metrics eng)
  in
  let full_ns, full_m = class_cost Runtime.Full in
  let ro_ns, ro_m = class_cost Runtime.Readonly in
  let pure_ns, pure_m = class_cost Runtime.Pure in
  metric "hostcall_full_ns" full_ns;
  metric "hostcall_readonly_ns" ro_ns;
  metric "hostcall_pure_ns" pure_ns;
  let ct = Table.create ~headers:[ "hostcall class"; "ns/invoke"; "pkru writes elided" ] in
  Table.add_row ct
    [ "full"; Printf.sprintf "%.1f" full_ns; string_of_int full_m.Runtime.m_pkru_writes_elided ];
  Table.add_row ct
    [ "readonly"; Printf.sprintf "%.1f" ro_ns; string_of_int ro_m.Runtime.m_pkru_writes_elided ];
  Table.add_row ct
    [ "pure"; Printf.sprintf "%.1f" pure_ns; string_of_int pure_m.Runtime.m_pkru_writes_elided ];
  print_table ct;
  note
    "Classified springboards skip the stack switch, exception handler and both wrpkru writes \
     (Kolosick et al.: most transitions need almost none of the save/restore work).";
  (* (e) FaaS goodput under churn: every request on a fresh instance, with
     lifecycle work priced at the paper's sec 7 rate of 79 us per 64 KiB
     instance (~4937 ns per OS page). The legacy model bills each
     instantiate at O(min_pages); CoW bills only dirtied pages. *)
  let churn_cfg legacy =
    {
      (Sim.default_config ~workload:Fworkloads.Hash_balance ~churn:true
         ~page_zero_ns:4937.5 ~legacy_lifecycle:legacy ())
      with
      Sim.io_mean_ns = 200_000.0;
      epoch_ns = 50_000.0;
    }
  in
  let cow = Sim.run (churn_cfg false) in
  let legacy = Sim.run (churn_cfg true) in
  let ratio = cow.Sim.goodput_rps /. legacy.Sim.goodput_rps in
  metric "faas_churn_goodput_cow_rps" cow.Sim.goodput_rps;
  metric "faas_churn_goodput_legacy_rps" legacy.Sim.goodput_rps;
  metric "faas_churn_goodput_ratio" ratio;
  let ft = Table.create ~headers:[ "lifecycle model"; "goodput rps"; "recycles"; "pages zeroed" ] in
  Table.add_row ft
    [ "legacy O(min_pages)"; Table.cell_float legacy.Sim.goodput_rps;
      string_of_int legacy.Sim.recycles; string_of_int legacy.Sim.pages_zeroed ];
  Table.add_row ft
    [ "CoW O(dirty pages)"; Table.cell_float cow.Sim.goodput_rps;
      string_of_int cow.Sim.recycles; string_of_int cow.Sim.pages_zeroed ];
  print_table ft;
  note "High-churn goodput: %.2fx CoW over the pre-refactor lifecycle." ratio;
  if ratio < 2.0 then failwith (Printf.sprintf "lifecycle: churn goodput ratio %.2f < 2x" ratio)

(* ------------------------------------------------------------------ *)
(* Sec 7: ColorGuard on ARM MTE.                                       *)
(* ------------------------------------------------------------------ *)

let mte () =
  section
    "Sec 7 - ColorGuard with ARM MTE (paper: init 79 us -> 2,182 us; teardown 29 us -> 377 \
     us per 64 KiB instance)";
  let cost = Colorguard.Mte_cost.default in
  let instances = 40 in
  let memory_bytes = 64 * Units.kib in
  let mte_store = Sfi_vmem.Mte.create () in
  let init_plain = Colorguard.Mte_cost.init_instance cost mte_store ~memory_bytes ~tag:0 in
  let init_mte = Colorguard.Mte_cost.init_instance cost mte_store ~memory_bytes ~tag:3 in
  let down_mte = Colorguard.Mte_cost.teardown_instance cost mte_store ~memory_bytes ~mte:true in
  let down_plain =
    Colorguard.Mte_cost.teardown_instance cost mte_store ~memory_bytes ~mte:false
  in
  let t = Table.create ~headers:[ "operation"; "no MTE"; "MTE"; "paper" ] in
  Table.add_row t
    [ "init (per 64 KiB instance)"; Printf.sprintf "%.0f us" (init_plain /. 1e3);
      Printf.sprintf "%.0f us" (init_mte /. 1e3); "79 -> 2,182 us" ];
  Table.add_row t
    [ "teardown (madvise)"; Printf.sprintf "%.0f us" (down_plain /. 1e3);
      Printf.sprintf "%.0f us" (down_mte /. 1e3); "29 -> 377 us" ];
  print_table t;
  note
    "Observation 1: user-level st2g tags only 32 B per instruction - %d instructions per 64 \
     KiB memory; %d instances cost %.1f ms to tag."
    (Sfi_vmem.Mte.user_tag_instructions mte_store)
    instances
    (float_of_int instances *. init_mte /. 1e6);
  note
    "Observation 2: madvise(MADV_DONTNEED) discards MTE tags (MPK colors survive in the \
     PTEs), forcing a full re-tag on every instance recycle.";
  (* The paper's proposed kernel fix: a tag-preserving madvise flag. *)
  let keep = Colorguard.Mte_cost.teardown_keeping_tags cost mte_store ~memory_bytes in
  ignore (Colorguard.Mte_cost.init_instance cost mte_store ~memory_bytes ~tag:3);
  let reinit_same = Colorguard.Mte_cost.reinit_instance cost mte_store ~memory_bytes ~tag:3 in
  let reinit_diff = Colorguard.Mte_cost.reinit_instance cost mte_store ~memory_bytes ~tag:5 in
  note
    "Proposed fix (madvise flag that leaves tags invariant): teardown %.0f us; recycling for \
     the same color re-inits in %.0f us (vs %.0f us today); a different color still pays %.0f \
     us."
    (keep /. 1e3) (reinit_same /. 1e3) (init_mte /. 1e3) (reinit_diff /. 1e3)

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 6).                                    *)
(* ------------------------------------------------------------------ *)

let ablations () =
  section "Ablations - design-choice sensitivity";
  let k = Sfi_workloads.Spec2006.astar in
  let with_frontend cost =
    let native = Kernel.run ~cost ~strategy:Strategy.native k in
    let segue = Kernel.run ~cost ~strategy:Strategy.segue k in
    float_of_int segue.Kernel.cycles /. float_of_int native.Kernel.cycles
  in
  note
    "astar segue-normalized runtime: %.4f with the frontend fetch model, %.4f without \
     (Segue's prefix bytes only cost when decode bandwidth is modeled, sec 6.1's outlier)."
    (with_frontend Cost.default)
    (with_frontend Cost.no_frontend);
  let tlb_heavy = Sfi_workloads.Polybench.atax in
  let tlb_cost levels =
    let tlb = { Sfi_vmem.Tlb.default_config with Sfi_vmem.Tlb.page_walk_levels = levels } in
    let cfg = Codegen.default_config ~strategy:Strategy.wasm_default () in
    let compiled = Codegen.compile cfg (Lazy.force tlb_heavy.Kernel.wasm) in
    let engine = Runtime.create_engine ~tlb compiled in
    let inst = Runtime.instantiate engine in
    Runtime.reset_metrics engine;
    (match Runtime.invoke inst "run" tlb_heavy.Kernel.args with
    | Ok _ -> ()
    | Error e -> failwith (Sfi_x86.Ast.trap_name e));
    (Machine.counters (Runtime.machine engine)).Machine.cycles
  in
  let c4 = tlb_cost 4 and c5 = tlb_cost 5 in
  note
    "atax (TLB-heavy) under 4-level vs 5-level page walks: %d vs %d cycles (+%.1f%%) - why 57-bit address \
     spaces are not a free alternative to ColorGuard (sec 8)."
    c4 c5
    (float_of_int (c5 - c4) /. float_of_int c4 *. 100.0);
  let with_keys keys =
    let params =
      {
        Pool.num_slots = 64;
        max_memory_bytes = 512 * Units.mib;
        expected_slot_bytes = 512 * Units.mib;
        guard_bytes = 4 * Units.gib;
        pre_guard_enabled = false;
        num_pkeys_available = keys;
        stripe_enabled = true;
      }
    in
    match Pool.compute params with
    | Ok l -> (l.Pool.num_stripes, l.Pool.slot_bytes)
    | Error msg -> failwith msg
  in
  List.iter
    (fun keys ->
      let stripes, stride = with_keys keys in
      note
        "  %2d keys available -> %2d stripes, stride %s (fewer keys = wider slots: stripes \
         combine with guard space, sec 5.1)."
        keys stripes (Units.to_string stride))
    [ 15; 9; 5; 3 ];
  (* Heterogeneous chains (§3.2's closing idea, implemented in Chain). *)
  let sizes =
    List.concat (List.init 20 (fun i -> [ 4; 8; 4; 64; 16; 4; 128; 8 ] |> List.map (fun m -> (m + (i mod 3)) / 1 * Units.mib)))
  in
  let sizes = List.map (fun s -> Units.align_up s Units.wasm_page_size) sizes in
  let reach = 512 * Units.mib in
  (match Sfi_core.Chain.plan ~reach ~sizes () with
  | Ok chain ->
      let uniform = Sfi_core.Chain.uniform_stripe_footprint ~num_keys:15 ~reach ~sizes in
      note
        "Heterogeneous chains (sec 3.2): %d mixed-size sandboxes chained into %s (%.0f%% \
         utilization, %s padding) vs %s under a uniform stripe — different sizes use colors \
         more efficiently."
        (List.length sizes)
        (Units.to_string chain.Sfi_core.Chain.total_bytes)
        (Sfi_core.Chain.utilization chain *. 100.0)
        (Units.to_string chain.Sfi_core.Chain.padding_bytes)
        (Units.to_string uniform)
  | Error m -> note "chain planning failed: %s" m)

(* ------------------------------------------------------------------ *)
(* Engine: threaded-code engine vs the reference interpreter.          *)
(* ------------------------------------------------------------------ *)

let engine_compare () =
  section
    "Engine - reference step interpreter vs threaded code vs superblock tiers (host-side \
     throughput; simulated counters must agree bit-for-bit across all four)";
  let t =
    Table.create
      ~headers:
        [ "kernel"; "engine"; "host ms"; "sim instrs"; "host Minstr/s"; "sb%"; "counters" ]
  in
  let check (k : Kernel.t) =
    let timed engine =
      let t0 = Unix.gettimeofday () in
      let m = Kernel.run ~engine ~strategy:Strategy.segue k in
      (m, Unix.gettimeofday () -. t0)
    in
    let rm, rs = timed Machine.Reference in
    let tm, ts = timed Machine.Threaded in
    let t2m, t2s = timed Machine.Tier2 in
    let am, as_ = timed Machine.Adaptive in
    let agrees (a : Kernel.measurement) (b : Kernel.measurement) =
      a.Kernel.result = b.Kernel.result
      && a.Kernel.cycles = b.Kernel.cycles
      && a.Kernel.instructions = b.Kernel.instructions
      && a.Kernel.dtlb_misses = b.Kernel.dtlb_misses
      && a.Kernel.dcache_misses = b.Kernel.dcache_misses
    in
    let agree = agrees rm tm && agrees rm t2m && agrees rm am in
    let row name (m : Kernel.measurement) s =
      let sb_pct =
        100.0
        *. float_of_int m.Kernel.tier.Machine.superblock_instructions
        /. float_of_int (max 1 m.Kernel.instructions)
      in
      Table.add_row t
        [
          k.Kernel.name; name;
          Printf.sprintf "%.1f" (s *. 1e3);
          string_of_int m.Kernel.instructions;
          Printf.sprintf "%.1f" (float_of_int m.Kernel.instructions /. s /. 1e6);
          Printf.sprintf "%.0f" sb_pct;
          (if agree then "agree" else "DIVERGED");
        ]
    in
    row "reference" rm rs;
    row "threaded" tm ts;
    row "tier2" t2m t2s;
    row "adaptive" am as_;
    if not agree then failwith (k.Kernel.name ^ ": engines diverged");
    (rs, ts, t2s, as_)
  in
  let quads = List.map check [ Sfi_workloads.Polybench.gemm; Sfi_workloads.Polybench.atax ] in
  print_table t;
  let tot f = List.fold_left (fun a q -> a +. f q) 0.0 quads in
  let rs = tot (fun (a, _, _, _) -> a)
  and ts = tot (fun (_, b, _, _) -> b)
  and t2s = tot (fun (_, _, c, _) -> c)
  and as_ = tot (fun (_, _, _, d) -> d) in
  metric "tier2_speedup_vs_threaded" (ts /. t2s);
  metric "adaptive_speedup_vs_threaded" (ts /. as_);
  note
    "Engine ablation on this subset (identical simulated counters on every kernel): threaded \
     %.2fx reference; tier2 %.2fx threaded; adaptive %.2fx threaded (profiler armed, hot \
     blocks promoted mid-run)."
    (rs /. ts) (ts /. t2s) (ts /. as_);
  (* Tracing ablation: the same kernel with the default (no sink), an
     explicit null sink, and a live ring sink. The null sink must be free —
     every emission site is one load-and-branch — and the ring sink must
     stay under a few percent. Best-of-batches wall timing, as above. *)
  let ablate = Sfi_workloads.Polybench.atax in
  let one ?trace () =
    (match trace with Some sink -> Trace.clear sink | None -> ());
    let t0 = Unix.gettimeofday () in
    ignore (Kernel.run ?trace ~engine:Machine.Threaded ~strategy:Strategy.segue ablate);
    Unix.gettimeofday () -. t0
  in
  ignore (one ()) (* warm the code and the kernel's lazy module *);
  let ring = Trace.create_ring () in
  (* Interleave the three configurations within each repetition and take
     the per-configuration minimum: drift across the run (GC heap state,
     neighbours on a shared machine) then biases all three alike instead
     of whichever block ran last. *)
  let base_s = ref infinity and null_s = ref infinity and ring_s = ref infinity in
  for _ = 1 to 7 do
    let m r v = if v < !r then r := v in
    m base_s (one ());
    m null_s (one ~trace:Trace.null ());
    m ring_s (one ~trace:ring ())
  done;
  let base_s = !base_s and null_s = !null_s and ring_s = !ring_s in
  let pct x = (x -. base_s) /. base_s *. 100.0 in
  metric "trace_null_overhead_pct" (pct null_s);
  metric "trace_ring_overhead_pct" (pct ring_s);
  note
    "Tracing ablation (atax, best of 7): no sink %.1f ms, null sink %.1f ms (%+.1f%%), ring \
     sink %.1f ms (%+.1f%%, %d events). Null must be free; the ring budget is <5%%."
    (base_s *. 1e3) (null_s *. 1e3) (pct null_s) (ring_s *. 1e3) (pct ring_s)
    (Trace.length ring);
  (* Wall-clock ablations on shared CI machines are noisy; only a
     pathological regression fails the experiment. *)
  if pct ring_s > 25.0 then
    failwith (Printf.sprintf "engine: ring-sink tracing overhead %.1f%% > 25%%" (pct ring_s))

(* ------------------------------------------------------------------ *)
(* Bechamel micro-measurements: one Test.make per table/figure.        *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  let open Bechamel in
  let quick_kernel (k : Kernel.t) strategy =
    Staged.stage (fun () ->
        let small = { k with Kernel.args = [ 2L ]; native = None } in
        ignore (Kernel.run ~strategy small))
  in
  let tests =
    [
      Test.make ~name:"fig3_spec2006_segue"
        (quick_kernel Sfi_workloads.Spec2006.namd Strategy.segue);
      Test.make ~name:"table2_binary_size"
        (Staged.stage (fun () ->
             ignore (Kernel.code_size ~strategy:Strategy.segue Sfi_workloads.Spec2006.namd)));
      Test.make ~name:"fig4_sightglass_wamr"
        (quick_kernel Sfi_workloads.Sightglass.gimli Strategy.segue_loads_only);
      Test.make ~name:"sec6_2_polybench" (quick_kernel Sfi_workloads.Polybench.atax Strategy.segue);
      Test.make ~name:"fig5_spec2017_lfi"
        (Staged.stage (fun () ->
             let m = Lazy.force Sfi_workloads.Spec2017.leela.Kernel.wasm in
             ignore (Lfi.run_lfi ~segue:true m ~entry:"run" ~args:[ 50L ])));
      Test.make ~name:"table1_invariants"
        (Staged.stage (fun () ->
             match Pool.compute Pool.default_params with
             | Ok l -> ignore (Invariants.check l)
             | Error _ -> ()));
      Test.make ~name:"sec6_4_2_scaling"
        (Staged.stage (fun () -> ignore (Colorguard.scaling Pool.default_params)));
      Test.make ~name:"fig6_faas"
        (Staged.stage (fun () ->
             let cfg = Sim.default_config () in
             ignore (Sim.run { cfg with Sim.duration_ns = 1.0e6; Sim.concurrency = 16 })));
      Test.make ~name:"sec7_mte"
        (Staged.stage (fun () ->
             let store = Sfi_vmem.Mte.create () in
             ignore
               (Colorguard.Mte_cost.init_instance Colorguard.Mte_cost.default store
                  ~memory_bytes:65536 ~tag:5)));
    ]
  in
  List.iter
    (fun test ->
      let instances = Toolkit.Instance.[ monotonic_clock ] in
      let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 0.25) () in
      let results = Benchmark.all cfg instances test in
      Hashtbl.iter
        (fun name b ->
          Printf.printf "bechamel: %-24s %d raw samples\n%!" name
            (Array.length b.Bechamel.Benchmark.lr))
        results)
    tests

(* ------------------------------------------------------------------ *)
(* Differential fuzz gate.                                             *)
(* ------------------------------------------------------------------ *)

let fuzz () =
  section
    "Fuzz - seeded differential corpus: reference interpreter vs all six SFI strategies on \
     both engines (sanitizer armed), plus the LFI triple on tame programs";
  let t0 = Unix.gettimeofday () in
  let report = Sfi_fuzz.Fuzz.run_corpus ~seed:0xC0FFEEL ~count:150 () in
  let wall = Unix.gettimeofday () -. t0 in
  let t = Table.create ~headers:[ "programs"; "executions"; "lfi"; "interp traps"; "wall s" ] in
  Table.add_row t
    [
      string_of_int report.Sfi_fuzz.Fuzz.r_programs;
      string_of_int report.Sfi_fuzz.Fuzz.r_executions;
      string_of_int report.Sfi_fuzz.Fuzz.r_lfi_programs;
      string_of_int report.Sfi_fuzz.Fuzz.r_interp_traps;
      Printf.sprintf "%.2f" wall;
    ];
  print_table t;
  (match report.Sfi_fuzz.Fuzz.r_divergences with
  | [] -> note "No divergences: every semantics agrees on the whole corpus."
  | d :: _ as ds ->
      Format.printf "%a@." Sfi_fuzz.Fuzz.pp_divergence d;
      failwith (Printf.sprintf "fuzz: %d divergence(s)" (List.length ds)))

(* ------------------------------------------------------------------ *)
(* Scale: sharded serving across OCaml domains.                        *)
(* ------------------------------------------------------------------ *)

let scale () =
  section
    "Scale - sharded FaaS serving across OCaml domains (hash placement + deterministic \
     work stealing), 1M+ requests of trace-shaped open-loop load";
  (* Operating point: a Micro-KV request costs ~180 ns of simulated CPU,
     capping one shard's core at ~5.6M req/s. 20M req/s offered over
     60 ms (1.2M arrivals, Zipf 0.6 popularity over 256 tenants, diurnal
     rate) saturates one shard ~3.5x over; four shards clear the whole
     schedule. Goodput is per *simulated* second — each shard serves on
     its own simulated core — so the sweep measures the serving
     architecture, not this machine's core count, and is bit-reproducible
     anywhere. *)
  let tenants = 256 in
  let duration_ns = 60.0e6 in
  let seed = 0x5CA1EL in
  let arrivals =
    Fworkloads.synthesize ~seed ~tenants ~duration_ns
      ~rps:20_000_000.0
      ~shape:(Fworkloads.Diurnal { trough = 0.25 })
      ~popularity:(Fworkloads.Zipf { skew = 0.6 })
      ()
  in
  let offered = Array.length arrivals in
  if offered < 1_000_000 then
    failwith (Printf.sprintf "scale: only %d arrivals synthesized (< 1M)" offered);
  let base =
    {
      (Sim.default_config ~workload:Fworkloads.Micro_kv
         ~overload:
           {
             Sim.no_overload with
             Sim.admission =
               Some { Runtime.default_admission with Runtime.tenant_rate = 60_000.0 };
           }
         ~fair_scheduling:true ()) with
      Sim.concurrency = tenants;
      duration_ns;
      seed;
      arrivals = Some arrivals;
    }
  in
  let run k = Shard.run (Shard.default_config ~shards:k base) in
  let t =
    Table.create
      ~headers:[ "shards"; "steals"; "completed"; "goodput req/s"; "speedup"; "p99 us" ]
  in
  let goodputs = ref [] in
  let g1 = ref 0.0 in
  List.iter
    (fun k ->
      let rep = run k in
      let r = rep.Shard.r_result in
      let _, _, p99 = Shard.latency_summary r in
      if k = 1 then g1 := r.Sim.goodput_rps;
      goodputs := (k, r.Sim.goodput_rps) :: !goodputs;
      Table.add_row t
        [
          string_of_int k;
          string_of_int rep.Shard.r_steals;
          string_of_int r.Sim.completed;
          Table.cell_float r.Sim.goodput_rps;
          Printf.sprintf "%.2fx" (r.Sim.goodput_rps /. !g1);
          Printf.sprintf "%.2f" (p99 /. 1e3);
        ];
      metric (Printf.sprintf "scale_goodput_%d_shards" k) r.Sim.goodput_rps;
      metric (Printf.sprintf "scale_completed_%d_shards" k) (float_of_int r.Sim.completed);
      metric
        (Printf.sprintf "scale_transitions_%d_shards" k)
        (float_of_int rep.Shard.r_metrics.Runtime.m_transitions))
    [ 1; 2; 4; 8 ];
  print_table t;
  metric "scale_offered_arrivals" (float_of_int offered);
  let g of_k = List.assoc of_k !goodputs in
  let speedup4 = g 4 /. g 1 in
  metric "scale_speedup_4_shards" speedup4;
  note
    "%d arrivals offered; goodput scales x%.2f at 2 shards, x%.2f at 4 (per simulated \
     second; shards serve on independent simulated cores)."
    offered (g 2 /. g 1) speedup4;
  if not (g 2 > g 1 && g 4 > g 2) then
    failwith "scale: goodput not monotonic from 1 to 4 shards";
  if speedup4 < 2.0 then
    failwith (Printf.sprintf "scale: speedup at 4 shards %.2fx < 2x" speedup4);
  (* Determinism: the 4-shard point repeated at the same seed must be
     bit-identical — result, per-tenant stats, and the runtime counters
     harvested from the worker domains. *)
  let a = run 4 and b = run 4 in
  if
    Shard.result_fingerprint a.Shard.r_result <> Shard.result_fingerprint b.Shard.r_result
    || Shard.metrics_fingerprint a.Shard.r_metrics
       <> Shard.metrics_fingerprint b.Shard.r_metrics
  then failwith "scale: repeat at fixed seed diverged";
  note "Repeat at the same seed: bit-identical (result + runtime counters)."

(* ------------------------------------------------------------------ *)
(* Registry and the domain-parallel runner.                            *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("fig3", fig3);
    ("table2", table2);
    ("bounds", bounds);
    ("firefox", firefox);
    ("fig4", fig4);
    ("polybench", polybench);
    ("fig5", fig5);
    ("table1", table1);
    ("transitions", transitions);
    ("scaling", scaling);
    ("fig6", fig6);
    ("fig7", fig7);
    ("faults", faults);
    ("overload", overload);
    ("lifecycle", lifecycle);
    ("mte", mte);
    ("ablations", ablations);
    ("engine", engine_compare);
    ("fuzz", fuzz);
    ("scale", scale);
  ]

(* The CI tier: cheap experiments only, plus the engine cross-check and
   the differential fuzz gate. *)
let quick_ids =
  [ "table2"; "table1"; "scaling"; "lifecycle"; "overload"; "mte"; "engine"; "fuzz"; "scale" ]

(* Kernel modules are built lazily and shared between experiments;
   force them all before spawning domains (concurrent Lazy.force of the
   same suspension raises). *)
let preforce_kernels () =
  let force (k : Kernel.t) =
    ignore (Lazy.force k.Kernel.wasm);
    match k.Kernel.native with None -> () | Some l -> ignore (Lazy.force l)
  in
  List.iter (List.iter force)
    [
      Sfi_workloads.Spec2006.all;
      Sfi_workloads.Spec2017.all;
      Sfi_workloads.Sightglass.all;
      Sfi_workloads.Polybench.all;
      [ Sfi_workloads.Polybench.dhrystone ];
    ]

type outcome = {
  o_name : string;
  o_output : string;
  o_wall_s : float;
  o_instructions : int;  (** simulated instructions retired by this experiment *)
  o_failed : bool;
  o_metrics : (string * float) list;  (** named scalars published via [metric] *)
}

let run_one (name, f) =
  let buf = Buffer.create 4096 in
  Domain.DLS.get out_key := Some buf;
  Domain.DLS.get metrics_key := [];
  Machine.reset_retired_instructions ();
  Runtime.reset_domain_metrics ();
  let t0 = Unix.gettimeofday () in
  let failed =
    try
      f ();
      false
    with e ->
      Buffer.add_string buf (Printf.sprintf "\nexperiment %s FAILED: %s\n" name (Printexc.to_string e));
      true
  in
  let wall = Unix.gettimeofday () -. t0 in
  let instructions = Machine.retired_instructions () in
  (* Every experiment that exercised a runtime engine gets the domain-local
     aggregate of the runtime counters attached to its "metrics" object —
     engines created and dropped inside the experiment included. The
     counters live in Domain.DLS, so this snapshot only sees work done on
     *this* domain: an experiment that spawns further domains (e.g.
     [scale]) must harvest inside each worker before it exits, as
     Shard.run does, and publish the merge through [metric]. *)
  let rt = Runtime.domain_metrics () in
  let rt_metrics =
    if
      rt.Runtime.m_transitions = 0
      && rt.Runtime.m_instantiations_cold = 0
      && rt.Runtime.m_instantiations_warm = 0
    then []
    else
      let f = float_of_int in
      [
        ("rt_transitions", f rt.Runtime.m_transitions);
        ("rt_calls_pure", f rt.Runtime.m_calls_pure);
        ("rt_calls_readonly", f rt.Runtime.m_calls_readonly);
        ("rt_calls_full", f rt.Runtime.m_calls_full);
        ("rt_pkru_writes_elided", f rt.Runtime.m_pkru_writes_elided);
        ("rt_pages_zeroed_on_recycle", f rt.Runtime.m_pages_zeroed_on_recycle);
        ("rt_instantiations_cold", f rt.Runtime.m_instantiations_cold);
        ("rt_instantiations_warm", f rt.Runtime.m_instantiations_warm);
      ]
  in
  let metrics = List.rev !(Domain.DLS.get metrics_key) @ rt_metrics in
  Domain.DLS.get out_key := None;
  {
    o_name = name;
    o_output = Buffer.contents buf;
    o_wall_s = wall;
    o_instructions = instructions;
    o_failed = failed;
    o_metrics = metrics;
  }

(* Work-stealing over an atomic index: each domain claims the next
   unstarted experiment; results land in per-experiment slots, so the
   merge below is deterministic in registry order. *)
let run_parallel selected ~jobs =
  let exps = Array.of_list selected in
  let n = Array.length exps in
  let results : outcome option array = Array.make n None in
  let next = Atomic.make 0 in
  let rec worker () =
    let i = Atomic.fetch_and_add next 1 in
    if i < n then begin
      results.(i) <- Some (run_one exps.(i));
      worker ()
    end
  in
  let jobs = max 1 (min jobs n) in
  let helpers = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join helpers;
  Array.to_list (Array.map (function Some o -> o | None -> assert false) results)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Full serial run of the pre-threaded-code harness (step interpreter) on
   the same container, measured before this engine landed. *)
let baseline_step_serial_total_wall_s = 309.9

let write_json file outcomes ~jobs ~total_wall_s =
  let oc = open_out file in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"harness\": \"bench/main.exe\",\n";
  p "  \"engine\": \"adaptive\",\n";
  p "  \"jobs\": %d,\n" jobs;
  p "  \"total_wall_s\": %.3f,\n" total_wall_s;
  p "  \"baseline_step_serial_total_wall_s\": %.1f,\n" baseline_step_serial_total_wall_s;
  p "  \"speedup_vs_baseline\": %.2f,\n" (baseline_step_serial_total_wall_s /. total_wall_s);
  (* Aggregate simulated throughput over the experiments that actually
     execute instructions; the layout-only ones (table1, table2, scaling,
     mte) would otherwise drag the average toward zero. *)
  let agg_instr, agg_wall =
    List.fold_left
      (fun (i, w) o ->
        if o.o_instructions > 0 then (i + o.o_instructions, w +. o.o_wall_s) else (i, w))
      (0, 0.0) outcomes
  in
  p "  \"aggregate_instructions_per_sec\": %s,\n"
    (if agg_instr > 0 && agg_wall > 0.0 then
       Printf.sprintf "%.0f" (float_of_int agg_instr /. agg_wall)
     else "null");
  p "  \"experiments\": [\n";
  List.iteri
    (fun i o ->
      (* Experiments that execute no simulated instructions report null
         rather than a misleading 0 instructions/sec. *)
      let ips =
        if o.o_instructions > 0 && o.o_wall_s > 0.0 then
          Printf.sprintf "%.0f" (float_of_int o.o_instructions /. o.o_wall_s)
        else "null"
      in
      let metrics =
        match o.o_metrics with
        | [] -> ""
        | ms ->
            let fields =
              List.map (fun (k, v) -> Printf.sprintf "\"%s\": %.3f" (json_escape k) v) ms
            in
            Printf.sprintf ", \"metrics\": { %s }" (String.concat ", " fields)
      in
      p "    { \"name\": \"%s\", \"wall_s\": %.3f, \"instructions\": %d, \"instructions_per_sec\": %s, \"ok\": %b%s }%s\n"
        (json_escape o.o_name) o.o_wall_s o.o_instructions ips (not o.o_failed) metrics
        (if i = List.length outcomes - 1 then "" else ","))
    outcomes;
  p "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n%!" file

(* --- perf-regression gate (--check-baseline) -------------------------- *)

(* Tolerance class per baseline metric. Deterministic simulation counters
   must reproduce exactly — the sim is a pure function of its seed, so any
   drift is a real behavior change, not noise. Host wall-clock timings
   (cycle/hostcall ns, instantiation rates, speedups, trace overheads) are
   skipped: they measure the CI machine, not the code. Everything else —
   simulated-time rates and ratios — gets a relative band. *)
type tolerance = Exact | Rel of float | Skip

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let tolerance_of name =
  let prefixed p =
    String.length name >= String.length p && String.sub name 0 (String.length p) = p
  in
  if
    prefixed "rt_" || prefixed "scale_completed" || prefixed "scale_transitions"
    || prefixed "scale_offered"
    || name = "overload_crash_breaker_opens"
  then Exact
  else if
    contains name "_ns" || contains name "_per_s" || contains name "per_sec"
    || contains name "speedup" || contains name "overhead" || contains name "heap_ratio"
  then Skip
  else Rel 0.25

let check_baseline file outcomes =
  let module T = Sfi_trace.Trace in
  let failures = ref 0 in
  let complain msg =
    incr failures;
    Printf.eprintf "regress: %s\n" msg
  in
  let text =
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  in
  let j =
    try T.parse_json text
    with T.Bad_json m ->
      Printf.eprintf "regress: %s: bad JSON: %s\n" file m;
      exit 1
  in
  let obj = function T.J_obj kvs -> kvs | _ -> [] in
  let top = obj j in
  (* Aggregate throughput floor: half the recorded baseline. The baseline
     may cover more experiments than this run (full vs --quick), so the
     aggregate is only comparable to a generous floor, not a band. *)
  (match List.assoc_opt "aggregate_instructions_per_sec" top with
  | Some (T.J_num base_ips) ->
      let agg_instr, agg_wall =
        List.fold_left
          (fun (i, w) o ->
            if o.o_instructions > 0 then (i + o.o_instructions, w +. o.o_wall_s) else (i, w))
          (0, 0.0) outcomes
      in
      let cur = if agg_wall > 0.0 then float_of_int agg_instr /. agg_wall else 0.0 in
      if cur < 0.5 *. base_ips then
        complain
          (Printf.sprintf
             "aggregate_instructions_per_sec %.0f fell below half the baseline %.0f" cur
             base_ips)
  | _ -> ());
  let baseline_exps =
    match List.assoc_opt "experiments" top with
    | Some (T.J_arr es) -> List.map obj es
    | _ -> []
  in
  let checked = ref 0 and skipped = ref 0 in
  List.iter
    (fun e ->
      let name =
        match List.assoc_opt "name" e with Some (T.J_str s) -> s | _ -> ""
      in
      (* Experiments absent from this run (baseline is the full suite, the
         gate usually runs the --quick subset) are out of scope. *)
      match List.find_opt (fun o -> o.o_name = name) outcomes with
      | None -> ()
      | Some o ->
          let bmetrics =
            match List.assoc_opt "metrics" e with Some (T.J_obj kvs) -> kvs | _ -> []
          in
          List.iter
            (fun (k, bj) ->
              match bj with
              | T.J_num bv -> (
                  match List.assoc_opt k o.o_metrics with
                  | None ->
                      complain
                        (Printf.sprintf
                           "%s: metric %s present in baseline but missing from this run"
                           name k)
                  | Some cv -> (
                      match tolerance_of k with
                      | Skip -> incr skipped
                      | Exact ->
                          incr checked;
                          (* The baseline JSON rounds to 3 decimals. *)
                          if Float.abs (cv -. bv) > 0.0005 then
                            complain
                              (Printf.sprintf
                                 "%s: %s = %.3f, baseline %.3f (deterministic counter \
                                  must match exactly)"
                                 name k cv bv)
                      | Rel tol ->
                          incr checked;
                          let denom = Float.max (Float.abs bv) 1e-6 in
                          if Float.abs (cv -. bv) /. denom > tol then
                            complain
                              (Printf.sprintf
                                 "%s: %s = %.3f, baseline %.3f (beyond the ±%.0f%% band)"
                                 name k cv bv (100.0 *. tol))))
              | _ -> ())
            bmetrics)
    baseline_exps;
  Printf.printf
    "regress: %d metric(s) checked against %s (%d host-timing metrics skipped), %d \
     violation(s)\n%!"
    !checked file !skipped !failures;
  !failures = 0

let summarize outcomes ~total_wall_s =
  let t = Table.create ~headers:[ "experiment"; "wall s"; "sim Minstr"; "Minstr/s" ] in
  List.iter
    (fun o ->
      let mi = float_of_int o.o_instructions /. 1e6 in
      Table.add_row t
        [
          o.o_name;
          Printf.sprintf "%.2f" o.o_wall_s;
          Printf.sprintf "%.1f" mi;
          (if o.o_instructions > 0 && o.o_wall_s > 0.0 then
             Printf.sprintf "%.1f" (mi /. o.o_wall_s)
           else "-");
        ])
    outcomes;
  Printf.printf "\n=== Harness summary ===\n\n%!";
  Table.print t;
  Printf.printf "Total wall clock: %.1f s across %d experiments.\n%!" total_wall_s
    (List.length outcomes)

let () =
  (* The interpreter allocates boxed Int64 temporaries at a high rate; a
     larger minor heap cuts the minor-GC frequency noticeably. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  let args = List.tl (Array.to_list Sys.argv) in
  let json = ref None
  and baseline = ref None
  and quick = ref false
  and serial = ref false
  and jobs = ref (Domain.recommended_domain_count ())
  and names = ref [] in
  let usage () =
    prerr_endline
      "usage: main.exe [--list] [--bechamel] [--quick] [--serial] [--jobs N] [--json FILE] \
       [--check-baseline FILE] [experiment ...]";
    exit 1
  in
  let rec parse = function
    | [] -> ()
    | "--list" :: _ ->
        List.iter (fun (name, _) -> print_endline name) experiments;
        exit 0
    | "--bechamel" :: _ ->
        bechamel_suite ();
        exit 0
    | "--json" :: file :: rest ->
        json := Some file;
        parse rest
    | "--check-baseline" :: file :: rest ->
        baseline := Some file;
        parse rest
    | "--quick" :: rest ->
        quick := true;
        parse rest
    | "--serial" :: rest ->
        serial := true;
        parse rest
    | "--jobs" :: n :: rest -> (
        match int_of_string_opt n with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ -> usage ())
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | name :: rest ->
        names := name :: !names;
        parse rest
  in
  parse args;
  let ids =
    match (List.rev !names, !quick) with
    | [], false -> List.map fst experiments
    | [], true -> quick_ids
    | names, _ -> names
  in
  let selected =
    List.map
      (fun name ->
        match List.assoc_opt name experiments with
        | Some f -> (name, f)
        | None ->
            Printf.eprintf "unknown experiment %s (try --list)\n" name;
            exit 1)
      ids
  in
  let jobs = if !serial then 1 else !jobs in
  Printf.printf "Running %d experiment(s) on %d domain(s)...\n%!" (List.length selected) jobs;
  preforce_kernels ();
  let t0 = Unix.gettimeofday () in
  let outcomes = run_parallel selected ~jobs in
  let total_wall_s = Unix.gettimeofday () -. t0 in
  List.iter (fun o -> print_string o.o_output) outcomes;
  flush stdout;
  summarize outcomes ~total_wall_s;
  (match !json with Some file -> write_json file outcomes ~jobs ~total_wall_s | None -> ());
  let regress_ok =
    match !baseline with Some file -> check_baseline file outcomes | None -> true
  in
  if List.exists (fun o -> o.o_failed) outcomes || not regress_ok then exit 1
