(* The sfi command-line tool: inspect and run the repository's benchmark
   kernels through the SFI toolchain, compute ColorGuard pool layouts, and
   run FaaS scaling simulations.

     dune exec bin/sfi.exe -- list
     dune exec bin/sfi.exe -- disasm sightglass/fib2 --strategy segue
     dune exec bin/sfi.exe -- run spec2006/429_mcf --strategy segue
     dune exec bin/sfi.exe -- layout --slots 64 --max-mem 408 --guard 8192 --keys 15 --stripe
     dune exec bin/sfi.exe -- simulate --workload regex --processes 8
*)

open Cmdliner
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Kernel = Sfi_workloads.Kernel
module Pool = Sfi_core.Pool
module Invariants = Sfi_core.Invariants
module Units = Sfi_util.Units
module Sim = Sfi_faas.Sim

let all_kernels : Kernel.t list =
  Sfi_workloads.Spec2006.all @ Sfi_workloads.Sightglass.all @ Sfi_workloads.Polybench.all
  @ [ Sfi_workloads.Polybench.dhrystone ]
  @ Sfi_workloads.Spec2017.all

let kernel_id (k : Kernel.t) = k.Kernel.suite ^ "/" ^ k.Kernel.name

let find_kernel name =
  match List.find_opt (fun k -> kernel_id k = name || k.Kernel.name = name) all_kernels with
  | Some k -> Ok k
  | None -> Error (`Msg (Printf.sprintf "unknown kernel %s (see `sfi list`)" name))

let strategy_of_string = function
  | "native" -> Ok Strategy.native
  | "base" | "wasm" -> Ok Strategy.wasm_default
  | "segue" -> Ok Strategy.segue
  | "segue-loads" -> Ok Strategy.segue_loads_only
  | "bounds" -> Ok Strategy.wasm_bounds_checked
  | "segue-bounds" -> Ok Strategy.segue_bounds_checked
  | "mask" -> Ok { Strategy.addressing = Strategy.Reserved_base; bounds = Strategy.Mask }
  | s -> Error (`Msg ("unknown strategy " ^ s ^ " (native|base|segue|segue-loads|bounds|segue-bounds|mask)"))

let strategy_conv =
  Arg.conv ((fun s -> strategy_of_string s), fun ppf s -> Strategy.pp ppf s)

let strategy_arg =
  Arg.(value & opt strategy_conv Strategy.segue & info [ "strategy"; "s" ] ~docv:"STRATEGY"
         ~doc:"Compilation strategy: native, base, segue, segue-loads, bounds, segue-bounds, mask.")

let vectorize_arg =
  Arg.(value & flag & info [ "vectorize" ] ~doc:"Enable the WAMR-style loop vectorizer.")

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (k : Kernel.t) ->
        Printf.printf "%-28s %s\n" (kernel_id k) k.Kernel.description)
      all_kernels
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmark kernels.")
    Term.(const run $ const ())

(* --- disasm --------------------------------------------------------- *)

let kernel_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel id (see list).")

let disasm_cmd =
  let run name strategy vectorize =
    match find_kernel name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok k ->
        let cfg = { (Codegen.default_config ~strategy ()) with Codegen.vectorize } in
        let compiled = Codegen.compile cfg (Lazy.force k.Kernel.wasm) in
        Format.printf "; %s under %a (%d bytes)@.%a"
          (kernel_id k) Strategy.pp strategy compiled.Codegen.code_bytes
          Sfi_x86.Ast.pp_program compiled.Codegen.program
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Compile a kernel and print the generated x86-64.")
    Term.(const run $ kernel_arg $ strategy_arg $ vectorize_arg)

(* --- run ------------------------------------------------------------ *)

let engine_conv =
  let parse = function
    | "threaded" -> Ok Sfi_machine.Machine.Threaded
    | "reference" -> Ok Sfi_machine.Machine.Reference
    | s -> Error (`Msg ("unknown engine " ^ s ^ " (threaded|reference)"))
  in
  let print ppf = function
    | Sfi_machine.Machine.Threaded -> Format.pp_print_string ppf "threaded"
    | Sfi_machine.Machine.Reference -> Format.pp_print_string ppf "reference"
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value & opt engine_conv Sfi_machine.Machine.Threaded
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: threaded (pre-translated closures, default) or reference \
                 (the AST interpreter used as the differential oracle).")

let run_cmd =
  let arg_override =
    Arg.(value & opt (some int) None & info [ "arg" ] ~docv:"N" ~doc:"Override the scale argument.")
  in
  let run name strategy vectorize arg engine =
    match find_kernel name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok k ->
        let k =
          match arg with
          | Some n -> { k with Kernel.args = [ Int64.of_int n ] }
          | None -> k
        in
        let m = Kernel.run ~vectorize ~engine ~strategy k in
        Printf.printf "%s under %s (args %s)\n" (kernel_id k) (Strategy.name strategy)
          (String.concat "," (List.map Int64.to_string k.Kernel.args));
        Printf.printf "  result        %Ld\n" m.Kernel.result;
        Printf.printf "  instructions  %d\n" m.Kernel.instructions;
        Printf.printf "  cycles        %d (%.3f ms at 2.2 GHz)\n" m.Kernel.cycles
          (m.Kernel.ns /. 1e6);
        Printf.printf "  code size     %d bytes (static), %d fetched\n" m.Kernel.code_bytes
          m.Kernel.fetched_bytes;
        Printf.printf "  dTLB misses   %d\n" m.Kernel.dtlb_misses;
        Printf.printf "  dcache misses %d\n" m.Kernel.dcache_misses
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a kernel on the simulated machine and print its counters.")
    Term.(const run $ kernel_arg $ strategy_arg $ vectorize_arg $ arg_override $ engine_arg)

(* --- layout ---------------------------------------------------------- *)

let layout_cmd =
  let slots = Arg.(value & opt int 64 & info [ "slots" ] ~docv:"N" ~doc:"Number of slots.") in
  let max_mem =
    Arg.(value & opt int 4096 & info [ "max-mem" ] ~docv:"MIB" ~doc:"Max memory per slot (MiB).")
  in
  let expected =
    Arg.(value & opt (some int) None
         & info [ "expected" ] ~docv:"MIB" ~doc:"Expected reservation (MiB, default max-mem).")
  in
  let guard = Arg.(value & opt int 4096 & info [ "guard" ] ~docv:"MIB" ~doc:"Guard size (MiB).") in
  let keys = Arg.(value & opt int 15 & info [ "keys" ] ~docv:"N" ~doc:"Available MPK keys.") in
  let stripe = Arg.(value & flag & info [ "stripe" ] ~doc:"Enable ColorGuard striping.") in
  let pre = Arg.(value & flag & info [ "pre-guard" ] ~doc:"Enable shared pre-guards.") in
  let run slots max_mem expected guard keys stripe pre =
    let params =
      {
        Pool.num_slots = slots;
        max_memory_bytes = max_mem * Units.mib;
        expected_slot_bytes = Option.value expected ~default:max_mem * Units.mib;
        guard_bytes = guard * Units.mib;
        pre_guard_enabled = pre;
        num_pkeys_available = keys;
        stripe_enabled = stripe;
      }
    in
    match Pool.compute params with
    | Error msg ->
        Printf.printf "rejected: %s\n" msg;
        exit 1
    | Ok l ->
        Format.printf "%a@." Pool.pp_layout l;
        (match Invariants.check l with
        | [] -> print_endline "all Table 1 invariants hold"
        | vs -> List.iter (fun v -> Format.printf "%a@." Invariants.pp_violation v) vs);
        let r = Sfi_core.Colorguard.scaling params in
        Printf.printf
          "address-space capacity: %d slots unstriped, %d striped (%.1fx)\n"
          r.Sfi_core.Colorguard.unstriped_slots r.Sfi_core.Colorguard.striped_slots
          r.Sfi_core.Colorguard.factor
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Compute and verify a ColorGuard pool layout.")
    Term.(const run $ slots $ max_mem $ expected $ guard $ keys $ stripe $ pre)

(* --- simulate --------------------------------------------------------- *)

let simulate_cmd =
  let workload =
    let workload_conv =
      Arg.conv
        ( (function
          | "hash" -> Ok Sfi_faas.Workloads.Hash_balance
          | "regex" -> Ok Sfi_faas.Workloads.Regex_filter
          | "template" -> Ok Sfi_faas.Workloads.Templating
          | s -> Error (`Msg ("unknown workload " ^ s ^ " (hash|regex|template)"))),
          fun ppf w -> Format.pp_print_string ppf (Sfi_faas.Workloads.name w) )
    in
    Arg.(value & opt workload_conv Sfi_faas.Workloads.Hash_balance
         & info [ "workload"; "w" ] ~docv:"W" ~doc:"hash, regex or template.")
  in
  let processes =
    Arg.(value & opt int 8 & info [ "processes"; "p" ] ~docv:"K" ~doc:"Process count to compare.")
  in
  let trap_rate =
    Arg.(value & opt float 0.0
         & info [ "trap-rate" ] ~docv:"P" ~doc:"Per-request probability of a trapping handler.")
  in
  let runaway_rate =
    Arg.(value & opt float 0.0
         & info [ "runaway-rate" ] ~docv:"P"
             ~doc:"Per-request probability of a runaway (watchdog-killed) handler.")
  in
  let run workload processes trap_rate runaway_rate =
    let faults = { Sim.no_faults with Sim.trap_rate; runaway_rate } in
    let cfg = Sim.default_config ~workload ~faults () in
    let cg = Sim.run { cfg with Sim.mode = Sim.Colorguard } in
    let mp = Sim.run { cfg with Sim.mode = Sim.Multiprocess processes } in
    Printf.printf "%s, %d in-flight requests, %.0f ms simulated:\n"
      (Sfi_faas.Workloads.name workload) cfg.Sim.concurrency (cfg.Sim.duration_ns /. 1e6);
    Printf.printf "  ColorGuard:      %5d served, %8.0f req/s-core, %6d transitions, %d dTLB\n"
      cg.Sim.completed cg.Sim.capacity_rps cg.Sim.user_transitions cg.Sim.dtlb_misses;
    Printf.printf "  %2d processes:    %5d served, %8.0f req/s-core, %6d ctx switches, %d dTLB\n"
      processes mp.Sim.completed mp.Sim.capacity_rps mp.Sim.context_switches mp.Sim.dtlb_misses;
    Printf.printf "  per-core efficiency gain: %+.1f%%\n"
      ((cg.Sim.capacity_rps -. mp.Sim.capacity_rps) /. mp.Sim.capacity_rps *. 100.0);
    if trap_rate > 0.0 || runaway_rate > 0.0 then begin
      Printf.printf "  faults (trap %.2f, runaway %.2f):\n" trap_rate runaway_rate;
      Printf.printf
        "    ColorGuard:   availability %.4f, %d failed, %d watchdog, %d collateral\n"
        cg.Sim.availability cg.Sim.failed cg.Sim.watchdog_kills cg.Sim.collateral_aborts;
      Printf.printf
        "    %2d processes: availability %.4f, %d failed, %d watchdog, %d collateral\n"
        processes mp.Sim.availability mp.Sim.failed mp.Sim.watchdog_kills
        mp.Sim.collateral_aborts
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compare ColorGuard vs multiprocess FaaS scaling.")
    Term.(const run $ workload $ processes $ trap_rate $ runaway_rate)

(* --- inject ----------------------------------------------------------- *)

let inject_cmd =
  let strategy_name =
    Arg.(value & opt (some string) None
         & info [ "strategy"; "s" ] ~docv:"S"
             ~doc:"Attack only this strategy (segue, segue-loads, base-reg, bounds-check, mask).")
  in
  let self_test =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Weaken the isolation deliberately and verify the harness detects the escape.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every attempt, not just escapes.")
  in
  let run strategy_name self_test verbose =
    let module Inject = Sfi_inject.Inject in
    if self_test then begin
      match Inject.self_test () with
      | Ok () ->
          print_endline "self-test passed: weakened isolation was detected as an escape"
      | Error msg ->
          prerr_endline msg;
          exit 1
    end
    else begin
      let targets =
        match strategy_name with
        | None -> Inject.strategies
        | Some n -> (
            match List.filter (fun (name, _) -> name = n) Inject.strategies with
            | [] ->
                prerr_endline
                  ("unknown strategy " ^ n ^ " (segue|segue-loads|base-reg|bounds-check|mask)");
                exit 1
            | l -> l)
      in
      let reports = List.map (fun (name, s) -> Inject.run_strategy name s) targets in
      List.iter
        (fun r ->
          Format.printf "%a" Inject.pp_report r;
          if verbose then
            List.iter
              (fun (a : Inject.attempt) ->
                Format.printf "  %-16s %-40s %-8s %a@." a.Inject.a_class a.Inject.a_desc
                  a.Inject.a_entry Inject.pp_outcome a.Inject.outcome)
              r.Inject.attempts)
        reports;
      let escaped =
        List.fold_left (fun n r -> n + (Inject.tally r).Inject.escaped) 0 reports
      in
      if escaped > 0 then begin
        Printf.printf "%d escape(s) — containment FAILED\n" escaped;
        exit 1
      end
      else print_endline "zero escapes: all attempts contained or diverged"
    end
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run the fault-injection containment harness against the SFI strategies.")
    Term.(const run $ strategy_name $ self_test $ verbose)

let fuzz_cmd =
  let module Fuzz = Sfi_fuzz.Fuzz in
  let count =
    Arg.(value & opt int 100
         & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of random programs to check.")
  in
  let seed =
    Arg.(value & opt int 0xC0FFEE
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Base seed; program $(i,i) uses seed SEED+$(i,i), so failures replay alone.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"The fixed-seed CI corpus: 500 programs with the default seed, sanitizer on.")
  in
  let replay =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Regenerate and print one program from its seed, then re-run the full oracle.")
  in
  let self_test =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Weaken the isolation deliberately (guard-region hole; swapped ColorGuard \
                   PKRU image) and verify the sanitizer reports the faulting instruction.")
  in
  let no_sanitizer =
    Arg.(value & flag
         & info [ "no-sanitizer" ] ~doc:"Run compiled programs without the SFI sanitizer armed.")
  in
  let no_minimize =
    Arg.(value & flag & info [ "no-minimize" ] ~doc:"Report divergences without shrinking them.")
  in
  let no_churn =
    Arg.(value & flag
         & info [ "no-churn" ]
             ~doc:"Skip the lifecycle arm (instantiate/kill/recycle, then re-run on the \
                   recycled slot).")
  in
  let run count seed quick replay self_test no_sanitizer no_minimize no_churn =
    let sanitizer = not no_sanitizer in
    let churn = not no_churn in
    if self_test then begin
      match Fuzz.self_test () with
      | Ok msg -> print_endline ("self-test passed: " ^ msg)
      | Error msg ->
          prerr_endline ("self-test FAILED: " ^ msg);
          exit 1
    end
    else
      match replay with
      | Some s ->
          let r = Fuzz.replay ~sanitizer ~churn Format.std_formatter (Int64.of_int s) in
          if r.Fuzz.failure <> None then exit 1
      | None ->
          let count, seed = if quick then (500, 0xC0FFEE) else (count, seed) in
          let report =
            Fuzz.run_corpus ~sanitizer ~churn ~minimize_failures:(not no_minimize)
              ~progress:(fun i ->
                if i > 0 && i mod 100 = 0 then Printf.eprintf "... %d programs\n%!" i)
              ~seed:(Int64.of_int seed) ~count ()
          in
          Format.printf "%a" Fuzz.pp_report report;
          if report.Fuzz.r_divergences <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz every execution path: reference interpreter vs all six SFI \
          strategies on both machine engines (plus the LFI rewriter on tame programs), with \
          the SFI sanitizer shadow-checking every access.")
    Term.(
      const run $ count $ seed $ quick $ replay $ self_test $ no_sanitizer $ no_minimize
      $ no_churn)

let () =
  let doc = "Segue & ColorGuard SFI toolchain (simulated x86-64)" in
  let info = Cmd.info "sfi" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ list_cmd; disasm_cmd; run_cmd; layout_cmd; simulate_cmd; inject_cmd; fuzz_cmd ]))
