(* The sfi command-line tool: inspect and run the repository's benchmark
   kernels through the SFI toolchain, compute ColorGuard pool layouts, and
   run FaaS scaling simulations.

     dune exec bin/sfi.exe -- list
     dune exec bin/sfi.exe -- disasm sightglass/fib2 --strategy segue
     dune exec bin/sfi.exe -- run spec2006/429_mcf --strategy segue
     dune exec bin/sfi.exe -- layout --slots 64 --max-mem 408 --guard 8192 --keys 15 --stripe
     dune exec bin/sfi.exe -- simulate --workload regex --processes 8
     dune exec bin/sfi.exe -- trace sightglass/matrix -o trace.json --check
     dune exec bin/sfi.exe -- top --workload hash --trap-rate 0.01
*)

open Cmdliner
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Kernel = Sfi_workloads.Kernel
module Pool = Sfi_core.Pool
module Invariants = Sfi_core.Invariants
module Units = Sfi_util.Units
module Sim = Sfi_faas.Sim
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine
module Trace = Sfi_trace.Trace

let all_kernels : Kernel.t list =
  Sfi_workloads.Spec2006.all @ Sfi_workloads.Sightglass.all @ Sfi_workloads.Polybench.all
  @ [ Sfi_workloads.Polybench.dhrystone ]
  @ Sfi_workloads.Spec2017.all

let kernel_id (k : Kernel.t) = k.Kernel.suite ^ "/" ^ k.Kernel.name

let find_kernel name =
  match List.find_opt (fun k -> kernel_id k = name || k.Kernel.name = name) all_kernels with
  | Some k -> Ok k
  | None -> Error (`Msg (Printf.sprintf "unknown kernel %s (see `sfi list`)" name))

let strategy_of_string = function
  | "native" -> Ok Strategy.native
  | "base" | "wasm" -> Ok Strategy.wasm_default
  | "segue" -> Ok Strategy.segue
  | "segue-loads" -> Ok Strategy.segue_loads_only
  | "bounds" -> Ok Strategy.wasm_bounds_checked
  | "segue-bounds" -> Ok Strategy.segue_bounds_checked
  | "mask" -> Ok { Strategy.addressing = Strategy.Reserved_base; bounds = Strategy.Mask }
  | s -> Error (`Msg ("unknown strategy " ^ s ^ " (native|base|segue|segue-loads|bounds|segue-bounds|mask)"))

let strategy_conv =
  Arg.conv ((fun s -> strategy_of_string s), fun ppf s -> Strategy.pp ppf s)

let strategy_arg =
  Arg.(value & opt strategy_conv Strategy.segue & info [ "strategy"; "s" ] ~docv:"STRATEGY"
         ~doc:"Compilation strategy: native, base, segue, segue-loads, bounds, segue-bounds, mask.")

let vectorize_arg =
  Arg.(value & flag & info [ "vectorize" ] ~doc:"Enable the WAMR-style loop vectorizer.")

(* --- list ----------------------------------------------------------- *)

let list_cmd =
  let run () =
    List.iter
      (fun (k : Kernel.t) ->
        Printf.printf "%-28s %s\n" (kernel_id k) k.Kernel.description)
      all_kernels
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available benchmark kernels.")
    Term.(const run $ const ())

(* --- disasm --------------------------------------------------------- *)

let kernel_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"KERNEL" ~doc:"Kernel id (see list).")

let disasm_cmd =
  let run name strategy vectorize =
    match find_kernel name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok k ->
        let cfg = { (Codegen.default_config ~strategy ()) with Codegen.vectorize } in
        let compiled = Codegen.compile cfg (Lazy.force k.Kernel.wasm) in
        Format.printf "; %s under %a (%d bytes)@.%a"
          (kernel_id k) Strategy.pp strategy compiled.Codegen.code_bytes
          Sfi_x86.Ast.pp_program compiled.Codegen.program
  in
  Cmd.v (Cmd.info "disasm" ~doc:"Compile a kernel and print the generated x86-64.")
    Term.(const run $ kernel_arg $ strategy_arg $ vectorize_arg)

(* --- run ------------------------------------------------------------ *)

let engine_conv =
  let parse = function
    | "threaded" -> Ok Sfi_machine.Machine.Threaded
    | "reference" -> Ok Sfi_machine.Machine.Reference
    | "tier2" -> Ok Sfi_machine.Machine.Tier2
    | "adaptive" -> Ok Sfi_machine.Machine.Adaptive
    | s -> Error (`Msg ("unknown engine " ^ s ^ " (threaded|reference|tier2|adaptive)"))
  in
  let print ppf = function
    | Sfi_machine.Machine.Threaded -> Format.pp_print_string ppf "threaded"
    | Sfi_machine.Machine.Reference -> Format.pp_print_string ppf "reference"
    | Sfi_machine.Machine.Tier2 -> Format.pp_print_string ppf "tier2"
    | Sfi_machine.Machine.Adaptive -> Format.pp_print_string ppf "adaptive"
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value & opt engine_conv Sfi_machine.Machine.Adaptive
       & info [ "engine" ] ~docv:"ENGINE"
           ~doc:"Execution engine: adaptive (profiler-driven superblock promotion of hot \
                 blocks, default), tier2 (eager superblock promotion of every eligible \
                 basic block), threaded (pre-translated closures, no superblocks), or \
                 reference (the AST interpreter used as the differential oracle).")

(* The unified Prometheus-style snapshot: machine counters of one
   measurement plus the domain-local runtime aggregate (transitions by
   class, PKRU elisions, lifecycle work) accumulated since the matching
   [reset_domain_metrics]. *)
let prometheus_snapshot (m : Kernel.measurement) (dm : Runtime.metrics) =
  Trace.prometheus (Kernel.prometheus_gauges m dm)

let run_cmd =
  let arg_override =
    Arg.(value & opt (some int) None & info [ "arg" ] ~docv:"N" ~doc:"Override the scale argument.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write a Prometheus text-exposition snapshot of the run's machine and \
                   runtime counters to $(docv).")
  in
  let run name strategy vectorize arg engine metrics_out =
    match find_kernel name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok k ->
        let k =
          match arg with
          | Some n -> { k with Kernel.args = [ Int64.of_int n ] }
          | None -> k
        in
        Runtime.reset_domain_metrics ();
        let m = Kernel.run ~vectorize ~engine ~strategy k in
        Printf.printf "%s under %s (args %s)\n" (kernel_id k) (Strategy.name strategy)
          (String.concat "," (List.map Int64.to_string k.Kernel.args));
        Printf.printf "  result        %Ld\n" m.Kernel.result;
        Printf.printf "  instructions  %d\n" m.Kernel.instructions;
        Printf.printf "  cycles        %d (%.3f ms at 2.2 GHz)\n" m.Kernel.cycles
          (m.Kernel.ns /. 1e6);
        Printf.printf "  code size     %d bytes (static), %d fetched\n" m.Kernel.code_bytes
          m.Kernel.fetched_bytes;
        Printf.printf "  dTLB misses   %d\n" m.Kernel.dtlb_misses;
        Printf.printf "  dcache misses %d\n" m.Kernel.dcache_misses;
        match metrics_out with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            output_string oc (prometheus_snapshot m (Runtime.domain_metrics ()));
            close_out oc;
            Printf.printf "  metrics       -> %s\n" path
  in
  Cmd.v (Cmd.info "run" ~doc:"Run a kernel on the simulated machine and print its counters.")
    Term.(const run $ kernel_arg $ strategy_arg $ vectorize_arg $ arg_override $ engine_arg
          $ metrics_out)

(* --- trace ------------------------------------------------------------ *)

let trace_cmd =
  let out =
    Arg.(value & opt string "trace.json"
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Chrome trace_event JSON output path (Perfetto-loadable).")
  in
  let check =
    Arg.(value & flag
         & info [ "check" ]
             ~doc:"Validate the captured stream (span nesting, per-track time order) and the \
                   emitted JSON against the event schema; exit non-zero on any failure or if \
                   a core event category is missing.")
  in
  let capacity =
    Arg.(value & opt int 65536
         & info [ "capacity" ] ~docv:"N"
             ~doc:"Ring-buffer capacity in events; on overflow the earliest events are kept.")
  in
  let interval =
    Arg.(value & opt int 64
         & info [ "profile-interval" ] ~docv:"N"
             ~doc:"Hot-PC profiler sampling period in simulated instructions.")
  in
  let run name strategy vectorize engine out check capacity interval =
    match find_kernel name with
    | Error (`Msg m) -> prerr_endline m; exit 1
    | Ok k ->
        let cfg = { (Codegen.default_config ~strategy ()) with Codegen.vectorize } in
        let compiled = Codegen.compile cfg (Lazy.force k.Kernel.wasm) in
        let eng = Runtime.create_engine ~engine compiled in
        let sink = Trace.create_ring ~capacity () in
        Runtime.set_trace eng sink;
        Machine.arm_profiler ~interval (Runtime.machine eng);
        let inst = Runtime.instantiate eng in
        (* A deliberately fuel-starved probe on a second slot exercises the
           watchdog-kill path, so the capture always carries fault and kill
           events on their own sandbox track. *)
        let probe = Runtime.instantiate eng in
        (match Runtime.invoke_protected ~fuel:32 probe k.Kernel.entry k.Kernel.args with
        | Ok _ | Error _ -> ());
        (match Runtime.invoke inst k.Kernel.entry k.Kernel.args with
        | Error trap ->
            Printf.eprintf "trap: %s\n" (Sfi_x86.Ast.trap_name trap);
            exit 1
        | Ok result ->
            let json = Trace.to_chrome_json ~process_name:(kernel_id k) sink in
            let oc = open_out out in
            output_string oc json;
            close_out oc;
            Printf.printf "%s under %s: result %Ld\n" (kernel_id k) (Strategy.name strategy)
              result;
            Printf.printf "  %d events captured (%d dropped, capacity %d) -> %s\n"
              (Trace.length sink) (Trace.dropped sink) (Trace.capacity sink) out;
            Printf.printf "  categories: %s\n" (String.concat ", " (Trace.categories sink));
            List.iter
              (fun (nm, s) ->
                Printf.printf "  %-18s n=%-6d p50=%-9.0f p95=%-9.0f p99=%-9.0f total=%.0f\n"
                  nm s.Trace.s_count s.Trace.s_p50 s.Trace.s_p95 s.Trace.s_p99
                  s.Trace.s_total)
              (Trace.summaries sink);
            let mach = Runtime.machine eng in
            let samples = Machine.profile_samples mach in
            if samples > 0 then begin
              Printf.printf "  hot regions (%d samples, 1 per %d instructions):\n" samples
                interval;
              List.iteri
                (fun i (label, n) ->
                  if i < 10 then
                    Printf.printf "    %5.1f%% %6d  %s\n"
                      (100.0 *. float_of_int n /. float_of_int samples)
                      n label)
                (Machine.hot_regions mach)
            end;
            if check then begin
              (match Trace.validate sink with
              | Ok () -> print_endline "  stream: well-formed (nesting, per-track time order)"
              | Error msg ->
                  Printf.eprintf "stream INVALID: %s\n" msg;
                  exit 1);
              match Trace.validate_chrome_json json with
              | Error msg ->
                  Printf.eprintf "json INVALID: %s\n" msg;
                  exit 1
              | Ok r ->
                  Printf.printf "  json: %d events, schema OK, categories: %s\n"
                    r.Trace.json_events
                    (String.concat ", " r.Trace.json_cats);
                  let missing =
                    List.filter
                      (fun c -> not (List.mem c r.Trace.json_cats))
                      [ "transition"; "lifecycle"; "fault"; "tlb" ]
                  in
                  if missing <> [] then begin
                    Printf.eprintf "missing categories: %s\n" (String.concat ", " missing);
                    exit 1
                  end
            end)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a kernel with structured tracing and the hot-PC profiler armed; export a \
          Chrome trace_event JSON (one track per sandbox plus the machine track) and print \
          per-class latency summaries.")
    Term.(const run $ kernel_arg $ strategy_arg $ vectorize_arg $ engine_arg $ out $ check
          $ capacity $ interval)

(* --- layout ---------------------------------------------------------- *)

let layout_cmd =
  let slots = Arg.(value & opt int 64 & info [ "slots" ] ~docv:"N" ~doc:"Number of slots.") in
  let max_mem =
    Arg.(value & opt int 4096 & info [ "max-mem" ] ~docv:"MIB" ~doc:"Max memory per slot (MiB).")
  in
  let expected =
    Arg.(value & opt (some int) None
         & info [ "expected" ] ~docv:"MIB" ~doc:"Expected reservation (MiB, default max-mem).")
  in
  let guard = Arg.(value & opt int 4096 & info [ "guard" ] ~docv:"MIB" ~doc:"Guard size (MiB).") in
  let keys = Arg.(value & opt int 15 & info [ "keys" ] ~docv:"N" ~doc:"Available MPK keys.") in
  let stripe = Arg.(value & flag & info [ "stripe" ] ~doc:"Enable ColorGuard striping.") in
  let pre = Arg.(value & flag & info [ "pre-guard" ] ~doc:"Enable shared pre-guards.") in
  let run slots max_mem expected guard keys stripe pre =
    let params =
      {
        Pool.num_slots = slots;
        max_memory_bytes = max_mem * Units.mib;
        expected_slot_bytes = Option.value expected ~default:max_mem * Units.mib;
        guard_bytes = guard * Units.mib;
        pre_guard_enabled = pre;
        num_pkeys_available = keys;
        stripe_enabled = stripe;
      }
    in
    match Pool.compute params with
    | Error msg ->
        Printf.printf "rejected: %s\n" msg;
        exit 1
    | Ok l ->
        Format.printf "%a@." Pool.pp_layout l;
        (match Invariants.check l with
        | [] -> print_endline "all Table 1 invariants hold"
        | vs -> List.iter (fun v -> Format.printf "%a@." Invariants.pp_violation v) vs);
        let r = Sfi_core.Colorguard.scaling params in
        Printf.printf
          "address-space capacity: %d slots unstriped, %d striped (%.1fx)\n"
          r.Sfi_core.Colorguard.unstriped_slots r.Sfi_core.Colorguard.striped_slots
          r.Sfi_core.Colorguard.factor
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Compute and verify a ColorGuard pool layout.")
    Term.(const run $ slots $ max_mem $ expected $ guard $ keys $ stripe $ pre)

(* --- simulate --------------------------------------------------------- *)

let workload_conv =
  Arg.conv
    ( (function
      | "hash" -> Ok Sfi_faas.Workloads.Hash_balance
      | "regex" -> Ok Sfi_faas.Workloads.Regex_filter
      | "template" -> Ok Sfi_faas.Workloads.Templating
      | "micro" -> Ok Sfi_faas.Workloads.Micro_kv
      | s -> Error (`Msg ("unknown workload " ^ s ^ " (hash|regex|template|micro)"))),
      fun ppf w -> Format.pp_print_string ppf (Sfi_faas.Workloads.name w) )

let workload_arg =
  Arg.(value & opt workload_conv Sfi_faas.Workloads.Hash_balance
       & info [ "workload"; "w" ] ~docv:"W" ~doc:"hash, regex, template or micro.")

let simulate_cmd =
  let workload = workload_arg in
  let processes =
    Arg.(value & opt int 8 & info [ "processes"; "p" ] ~docv:"K" ~doc:"Process count to compare.")
  in
  let trap_rate =
    Arg.(value & opt float 0.0
         & info [ "trap-rate" ] ~docv:"P" ~doc:"Per-request probability of a trapping handler.")
  in
  let runaway_rate =
    Arg.(value & opt float 0.0
         & info [ "runaway-rate" ] ~docv:"P"
             ~doc:"Per-request probability of a runaway (watchdog-killed) handler.")
  in
  let run workload processes trap_rate runaway_rate =
    let faults = { Sim.no_faults with Sim.trap_rate; runaway_rate } in
    let cfg = Sim.default_config ~workload ~faults () in
    let cg = Sim.run { cfg with Sim.mode = Sim.Colorguard } in
    let mp = Sim.run { cfg with Sim.mode = Sim.Multiprocess processes } in
    Printf.printf "%s, %d in-flight requests, %.0f ms simulated:\n"
      (Sfi_faas.Workloads.name workload) cfg.Sim.concurrency (cfg.Sim.duration_ns /. 1e6);
    Printf.printf "  ColorGuard:      %5d served, %8.0f req/s-core, %6d transitions, %d dTLB\n"
      cg.Sim.completed cg.Sim.capacity_rps cg.Sim.user_transitions cg.Sim.dtlb_misses;
    Printf.printf "  %2d processes:    %5d served, %8.0f req/s-core, %6d ctx switches, %d dTLB\n"
      processes mp.Sim.completed mp.Sim.capacity_rps mp.Sim.context_switches mp.Sim.dtlb_misses;
    Printf.printf "  per-core efficiency gain: %+.1f%%\n"
      ((cg.Sim.capacity_rps -. mp.Sim.capacity_rps) /. mp.Sim.capacity_rps *. 100.0);
    if trap_rate > 0.0 || runaway_rate > 0.0 then begin
      Printf.printf "  faults (trap %.2f, runaway %.2f):\n" trap_rate runaway_rate;
      Printf.printf
        "    ColorGuard:   availability %.4f, %d failed, %d watchdog, %d collateral\n"
        cg.Sim.availability cg.Sim.failed cg.Sim.watchdog_kills cg.Sim.collateral_aborts;
      Printf.printf
        "    %2d processes: availability %.4f, %d failed, %d watchdog, %d collateral\n"
        processes mp.Sim.availability mp.Sim.failed mp.Sim.watchdog_kills
        mp.Sim.collateral_aborts
    end
  in
  Cmd.v
    (Cmd.info "simulate" ~doc:"Compare ColorGuard vs multiprocess FaaS scaling.")
    Term.(const run $ workload $ processes $ trap_rate $ runaway_rate)

(* --- top -------------------------------------------------------------- *)

let top_cmd =
  let processes =
    Arg.(value & opt (some int) None
         & info [ "processes"; "p" ] ~docv:"K"
             ~doc:"Simulate K-process OS scaling instead of ColorGuard.")
  in
  let duration =
    Arg.(value & opt float 20.0
         & info [ "duration" ] ~docv:"MS" ~doc:"Simulated wall-clock to run for (ms).")
  in
  let trap_rate =
    Arg.(value & opt float 0.0
         & info [ "trap-rate" ] ~docv:"P" ~doc:"Per-request probability of a trapping handler.")
  in
  let runaway_rate =
    Arg.(value & opt float 0.0
         & info [ "runaway-rate" ] ~docv:"P"
             ~doc:"Per-request probability of a runaway (watchdog-killed) handler.")
  in
  let rows =
    Arg.(value & opt int 16
         & info [ "rows"; "n" ] ~docv:"N" ~doc:"Tenants to show (busiest first).")
  in
  let resilient =
    Arg.(value & flag
         & info [ "resilient" ]
             ~doc:"Arm the overload-resilience stack: adaptive admission over a quarter-size \
                   slot pool, per-tenant circuit breakers and SLO burn-rate tracking. Adds \
                   SHED/BRKOPEN/BRK/BURN columns.")
  in
  let crash_tenants =
    Arg.(value & opt_all int []
         & info [ "crash-tenant" ] ~docv:"ID"
             ~doc:"Make tenant $(docv) crash-loop (every request traps). Repeatable. \
                   Implies nothing else; combine with $(b,--resilient) to watch its breaker \
                   open while healthy tenants keep their p99.")
  in
  let run workload processes duration trap_rate runaway_rate rows resilient crash_tenants =
    let faults = { Sim.no_faults with Sim.trap_rate; runaway_rate } in
    let mode =
      match processes with None -> Sim.Colorguard | Some p -> Sim.Multiprocess p
    in
    let overload =
      if not (resilient || crash_tenants <> []) then Sim.no_overload
      else
        {
          Sim.no_overload with
          Sim.crash_tenants;
          pool_slots = (if resilient then Some 32 else None);
          admission = (if resilient then Some Runtime.default_admission else None);
          breaker = (if resilient then Some Sfi_faas.Breaker.default_config else None);
          degradation = resilient;
          hedged_retries = resilient;
          slo = (if resilient then Some (Sfi_faas.Slo.default_config ()) else None);
        }
    in
    (* Churn when the resilience stack is armed: released slots keep
       admission continuously contested, so sheds, breaker trips and
       recoveries actually show up in a short run. *)
    let churn = resilient || crash_tenants <> [] in
    let cfg =
      { (Sim.default_config ~mode ~workload ~faults ~overload ~churn
           ~fair_scheduling:churn ()) with
        Sim.duration_ns = duration *. 1e6 }
    in
    let r = Sim.run cfg in
    Printf.printf "%s, %s, %d tenants, %.0f ms simulated\n"
      (Sfi_faas.Workloads.name workload)
      (match mode with
      | Sim.Colorguard -> "ColorGuard"
      | Sim.Multiprocess p -> Printf.sprintf "%d processes" p)
      cfg.Sim.concurrency (cfg.Sim.duration_ns /. 1e6);
    Printf.printf
      "%d completed, %d failed, %.0f req/s-core, availability %.4f, %d transitions\n"
      r.Sim.completed r.Sim.failed r.Sim.capacity_rps r.Sim.availability
      r.Sim.user_transitions;
    if resilient then
      Printf.printf
        "admitted %d, shed %d (sojourn %d, rate %d, queue %d), breaker opens %d, \
         fast-fails %d\n"
        r.Sim.admitted
        (r.Sim.shed_sojourn + r.Sim.shed_rate_limited + r.Sim.shed_queue_full
       + r.Sim.shed_priority)
        r.Sim.shed_sojourn r.Sim.shed_rate_limited r.Sim.shed_queue_full r.Sim.breaker_opens
        r.Sim.breaker_fast_fails;
    print_newline ();
    let show_breakers = resilient || crash_tenants <> [] in
    print_endline (Sim.top_header ~breakers:show_breakers);
    let tenants = Array.copy r.Sim.tenants in
    Array.sort
      (fun a b ->
        match compare b.Sim.t_completed a.Sim.t_completed with
        | 0 -> compare a.Sim.t_id b.Sim.t_id
        | c -> c)
      tenants;
    Array.iteri
      (fun i t ->
        if i < rows then print_endline (Sim.top_row ~breakers:show_breakers t))
      tenants
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Run the FaaS simulation and print a per-tenant breakdown (completions, failures, \
          shed/breaker state and fast-window SLO burn rate with --resilient, \
          request-latency percentiles), busiest tenants first.")
    Term.(const run $ workload_arg $ processes $ duration $ trap_rate $ runaway_rate $ rows
          $ resilient $ crash_tenants)

(* --- inject ----------------------------------------------------------- *)

let inject_cmd =
  let strategy_name =
    Arg.(value & opt (some string) None
         & info [ "strategy"; "s" ] ~docv:"S"
             ~doc:"Attack only this strategy (segue, segue-loads, base-reg, bounds-check, mask).")
  in
  let self_test =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Weaken the isolation deliberately and verify the harness detects the escape.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print every attempt, not just escapes.")
  in
  let run strategy_name self_test verbose =
    let module Inject = Sfi_inject.Inject in
    if self_test then begin
      match Inject.self_test () with
      | Ok () ->
          print_endline "self-test passed: weakened isolation was detected as an escape"
      | Error msg ->
          prerr_endline msg;
          exit 1
    end
    else begin
      let targets =
        match strategy_name with
        | None -> Inject.strategies
        | Some n -> (
            match List.filter (fun (name, _) -> name = n) Inject.strategies with
            | [] ->
                prerr_endline
                  ("unknown strategy " ^ n ^ " (segue|segue-loads|base-reg|bounds-check|mask)");
                exit 1
            | l -> l)
      in
      let reports = List.map (fun (name, s) -> Inject.run_strategy name s) targets in
      List.iter
        (fun r ->
          Format.printf "%a" Inject.pp_report r;
          if verbose then
            List.iter
              (fun (a : Inject.attempt) ->
                Format.printf "  %-16s %-40s %-8s %a@." a.Inject.a_class a.Inject.a_desc
                  a.Inject.a_entry Inject.pp_outcome a.Inject.outcome)
              r.Inject.attempts)
        reports;
      let escaped =
        List.fold_left (fun n r -> n + (Inject.tally r).Inject.escaped) 0 reports
      in
      if escaped > 0 then begin
        Printf.printf "%d escape(s) — containment FAILED\n" escaped;
        exit 1
      end
      else print_endline "zero escapes: all attempts contained or diverged"
    end
  in
  Cmd.v
    (Cmd.info "inject"
       ~doc:"Run the fault-injection containment harness against the SFI strategies.")
    Term.(const run $ strategy_name $ self_test $ verbose)

let fuzz_cmd =
  let module Fuzz = Sfi_fuzz.Fuzz in
  let count =
    Arg.(value & opt int 100
         & info [ "count"; "n" ] ~docv:"N" ~doc:"Number of random programs to check.")
  in
  let seed =
    Arg.(value & opt int 0xC0FFEE
         & info [ "seed" ] ~docv:"SEED"
             ~doc:"Base seed; program $(i,i) uses seed SEED+$(i,i), so failures replay alone.")
  in
  let quick =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"The fixed-seed CI corpus: 500 programs with the default seed, sanitizer on.")
  in
  let replay =
    Arg.(value & opt (some int) None
         & info [ "replay" ] ~docv:"SEED"
             ~doc:"Regenerate and print one program from its seed, then re-run the full oracle.")
  in
  let self_test =
    Arg.(value & flag
         & info [ "self-test" ]
             ~doc:"Weaken the isolation deliberately (guard-region hole; swapped ColorGuard \
                   PKRU image) and verify the sanitizer reports the faulting instruction.")
  in
  let no_sanitizer =
    Arg.(value & flag
         & info [ "no-sanitizer" ] ~doc:"Run compiled programs without the SFI sanitizer armed.")
  in
  let no_minimize =
    Arg.(value & flag & info [ "no-minimize" ] ~doc:"Report divergences without shrinking them.")
  in
  let no_churn =
    Arg.(value & flag
         & info [ "no-churn" ]
             ~doc:"Skip the lifecycle arm (instantiate/kill/recycle, then re-run on the \
                   recycled slot).")
  in
  let run count seed quick replay self_test no_sanitizer no_minimize no_churn =
    let sanitizer = not no_sanitizer in
    let churn = not no_churn in
    if self_test then begin
      match Fuzz.self_test () with
      | Ok msg -> print_endline ("self-test passed: " ^ msg)
      | Error msg ->
          prerr_endline ("self-test FAILED: " ^ msg);
          exit 1
    end
    else
      match replay with
      | Some s ->
          let r = Fuzz.replay ~sanitizer ~churn Format.std_formatter (Int64.of_int s) in
          if r.Fuzz.failure <> None then exit 1
      | None ->
          let count, seed = if quick then (500, 0xC0FFEE) else (count, seed) in
          let report =
            Fuzz.run_corpus ~sanitizer ~churn ~minimize_failures:(not no_minimize)
              ~progress:(fun i ->
                if i > 0 && i mod 100 = 0 then Printf.eprintf "... %d programs\n%!" i)
              ~seed:(Int64.of_int seed) ~count ()
          in
          Format.printf "%a" Fuzz.pp_report report;
          if report.Fuzz.r_divergences <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz every execution path: reference interpreter vs all six SFI \
          strategies on both machine engines (plus the LFI rewriter on tame programs), with \
          the SFI sanitizer shadow-checking every access.")
    Term.(
      const run $ count $ seed $ quick $ replay $ self_test $ no_sanitizer $ no_minimize
      $ no_churn)

(* --- chaos ------------------------------------------------------------ *)

let chaos_cmd =
  let module Chaos = Sfi_inject.Chaos in
  let seed =
    Arg.(value & opt int 0xC4A05
         & info [ "seed" ] ~docv:"N"
             ~doc:"Plan seed. Same seed, same schedule, same counters — byte-identical runs.")
  in
  let perturbations =
    Arg.(value & opt int 200
         & info [ "perturbations"; "n" ] ~docv:"N" ~doc:"Perturbations in the schedule.")
  in
  let duration =
    Arg.(value & opt float 50.0
         & info [ "duration" ] ~docv:"MS" ~doc:"Simulated wall-clock to run for (ms).")
  in
  let floor =
    Arg.(value & opt float 0.90
         & info [ "floor" ] ~docv:"A" ~doc:"Availability floor invariant (0-1).")
  in
  let repeat =
    Arg.(value & flag
         & info [ "repeat" ]
             ~doc:"Run the plan twice and fail unless schedule digest and sim counters match.")
  in
  let metrics_out =
    Arg.(value & opt (some string) None
         & info [ "metrics-out" ] ~docv:"FILE"
             ~doc:"Write a Prometheus snapshot of the chaos run's serving counters to $(docv).")
  in
  let run workload engine seed perturbations duration floor repeat metrics_out =
    let cfg =
      {
        (Chaos.default_config ~seed:(Int64.of_int seed) ~perturbations ()) with
        Chaos.workload;
        duration_ns = duration *. 1e6;
        availability_floor = floor;
        engine = Some engine;
      }
    in
    let flight = Sfi_trace.Flight.create () in
    let r = Chaos.run ~flight cfg in
    let s = r.Chaos.sim in
    Printf.printf "chaos: %d perturbations over %.0f ms (%s, seed %#x)\n" perturbations
      duration (Sfi_faas.Workloads.name workload) seed;
    Printf.printf "  schedule digest   %s\n" r.Chaos.digest;
    Printf.printf "  applied           %d (%d kills found an in-flight victim)\n"
      s.Sim.chaos_applied s.Sim.chaos_kills;
    Printf.printf "  completed         %d (%d failed, availability %.4f >= %.2f)\n"
      s.Sim.completed s.Sim.failed s.Sim.availability floor;
    Printf.printf "  admission         %d admitted, shed %d/%d/%d (sojourn/rate/queue)\n"
      s.Sim.admitted s.Sim.shed_sojourn s.Sim.shed_rate_limited s.Sim.shed_queue_full;
    Printf.printf "  breakers          %d opened, %d fast-fails, %d open at end\n"
      s.Sim.breaker_opens s.Sim.breaker_fast_fails s.Sim.breakers_open_at_end;
    Printf.printf "  slo               %d burn alerts raised, %d cleared, %d burning at end\n"
      s.Sim.slo_burn_starts s.Sim.slo_burn_stops s.Sim.slo_burning_at_end;
    Printf.printf "  flight recorder   %d freezes, %d bundles kept (see sfi postmortem)\n"
      (Sfi_trace.Flight.freezes flight)
      (List.length (Sfi_trace.Flight.bundles flight));
    (match metrics_out with
    | None -> ()
    | Some path ->
        let f = float_of_int in
        let oc = open_out path in
        output_string oc
          (Trace.prometheus
             [
               ("sfi_chaos_perturbations_total", "perturbations applied", f s.Sim.chaos_applied);
               ("sfi_chaos_kills_total", "chaos kills with a victim", f s.Sim.chaos_kills);
               ("sfi_requests_completed_total", "requests completed", f s.Sim.completed);
               ("sfi_requests_failed_total", "requests failed", f s.Sim.failed);
               ("sfi_availability", "completions / attempts", s.Sim.availability);
               ("sfi_admission_admitted_total", "slot grants through admission", f s.Sim.admitted);
               ( "sfi_admission_shed_sojourn_total",
                 "CoDel / ticket-deadline sheds",
                 f s.Sim.shed_sojourn );
               ( "sfi_admission_shed_rate_limited_total",
                 "per-tenant token-bucket sheds",
                 f s.Sim.shed_rate_limited );
               ( "sfi_admission_shed_queue_full_total",
                 "queue-at-capacity sheds",
                 f s.Sim.shed_queue_full );
               ("sfi_breaker_opens_total", "circuit-breaker trips", f s.Sim.breaker_opens);
               ( "sfi_breaker_fast_fails_total",
                 "requests refused by an open breaker",
                 f s.Sim.breaker_fast_fails );
               ( "sfi_breakers_open",
                 "breakers not closed at end of run",
                 f s.Sim.breakers_open_at_end );
               ( "sfi_slo_burn_alerts_started_total",
                 "SLO burn-rate alerts raised",
                 f s.Sim.slo_burn_starts );
               ( "sfi_slo_burn_alerts_stopped_total",
                 "SLO burn-rate alerts cleared",
                 f s.Sim.slo_burn_stops );
               ( "sfi_slo_tenants_burning",
                 "tenants with a fast-window burn alert raised at end of run",
                 f s.Sim.slo_burning_at_end );
             ]);
        close_out oc;
        Printf.printf "  metrics           -> %s\n" path);
    let ok = ref (r.Chaos.violations = []) in
    List.iter
      (fun v ->
        Printf.printf "  VIOLATION [%d] %s: %s\n" v.Chaos.v_index v.Chaos.v_kind
          v.Chaos.v_detail)
      r.Chaos.violations;
    if r.Chaos.violations = [] then Printf.printf "  invariants        all held\n";
    if repeat then begin
      let r2 = Chaos.run cfg in
      let same =
        r.Chaos.digest = r2.Chaos.digest
        && Chaos.fingerprint r = Chaos.fingerprint r2
        && r2.Chaos.violations = []
      in
      if same then Printf.printf "  repeat            deterministic (digest + counters match)\n"
      else begin
        Printf.printf "  repeat            MISMATCH\n    run1 %s\n    run2 %s\n"
          (Chaos.fingerprint r) (Chaos.fingerprint r2);
        ok := false
      end
    end;
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Perturb a live FaaS sim on a seeded schedule (kill in-flight instances, spike IO \
          latency, fail instantiations) with admission control and circuit breakers armed, \
          and check resilience invariants: no cross-tenant blast radius, availability floor, \
          all breakers re-closed at quiescence. Deterministic per seed.")
    Term.(
      const run $ workload_arg $ engine_arg $ seed $ perturbations $ duration $ floor
      $ repeat $ metrics_out)

(* --- postmortem ------------------------------------------------------- *)

let postmortem_cmd =
  let module Chaos = Sfi_inject.Chaos in
  let module Flight = Sfi_trace.Flight in
  let seed =
    Arg.(value & opt int 0xC4A05
         & info [ "seed" ] ~docv:"N"
             ~doc:"Plan seed — the same seed replays the same faults and freezes the same \
                   bundles.")
  in
  let perturbations =
    Arg.(value & opt int 200
         & info [ "perturbations"; "n" ] ~docv:"N" ~doc:"Perturbations in the schedule.")
  in
  let duration =
    Arg.(value & opt float 50.0
         & info [ "duration" ] ~docv:"MS" ~doc:"Simulated wall-clock to run for (ms).")
  in
  let reason =
    Arg.(value & opt (some string) None
         & info [ "reason" ] ~docv:"R"
             ~doc:"Dump only the bundle frozen for this reason (e.g. chaos.kill, \
                   breaker.open, fault); default dumps every kept bundle.")
  in
  let capacity =
    Arg.(value & opt int 256
         & info [ "last" ] ~docv:"N"
             ~doc:"Flight-recorder ring capacity: each bundle keeps the last $(docv) events \
                   before its freeze.")
  in
  let run workload engine seed perturbations duration reason capacity =
    let cfg =
      {
        (Chaos.default_config ~seed:(Int64.of_int seed) ~perturbations ()) with
        Chaos.workload;
        duration_ns = duration *. 1e6;
        engine = Some engine;
      }
    in
    let flight = Flight.create ~capacity () in
    let r = Chaos.run ~flight cfg in
    Printf.printf
      "postmortem: %d perturbations over %.0f ms (%s, seed %#x), %d freezes, %d bundles\n"
      perturbations duration (Sfi_faas.Workloads.name workload) seed
      (Flight.freezes flight)
      (List.length (Flight.bundles flight));
    Printf.printf "  schedule digest %s\n\n" r.Chaos.digest;
    let dump b = print_endline (Flight.render b) in
    (match reason with
    | Some why -> (
        match Flight.find flight why with
        | Some b -> dump b
        | None ->
            Printf.eprintf "no bundle frozen for reason %S (kept: %s)\n" why
              (String.concat ", "
                 (List.map (fun b -> b.Flight.b_reason) (Flight.bundles flight)));
            exit 1)
    | None -> List.iter dump (Flight.bundles flight));
    if r.Chaos.violations <> [] then begin
      List.iter
        (fun v ->
          Printf.printf "VIOLATION [%d] %s: %s\n" v.Chaos.v_index v.Chaos.v_kind
            v.Chaos.v_detail)
        r.Chaos.violations;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "postmortem"
       ~doc:
         "Replay a seeded chaos run with the fault flight recorder armed and dump the \
          frozen post-mortem bundles: for each fault class the last events before the \
          freeze, the machine and serving counters at the instant of the fault, and the \
          admission/breaker/ladder state. Deterministic per seed.")
    Term.(
      const run $ workload_arg $ engine_arg $ seed $ perturbations $ duration $ reason
      $ capacity)

(* --- scale ------------------------------------------------------------ *)

let scale_cmd =
  let module Shard = Sfi_faas.Shard in
  let module Wk = Sfi_faas.Workloads in
  let shard_counts =
    Arg.(value & opt (list int) [ 1; 2; 4; 8 ]
         & info [ "shards"; "k" ] ~docv:"K,.."
             ~doc:"Comma-separated shard counts to sweep (domains per point).")
  in
  let tenants =
    Arg.(value & opt int 256 & info [ "tenants" ] ~docv:"N" ~doc:"Tenant population.")
  in
  let duration =
    Arg.(value & opt float 25.0
         & info [ "duration" ] ~docv:"MS" ~doc:"Simulated wall-clock per point (ms).")
  in
  let rps =
    Arg.(value & opt float 20_000_000.0
         & info [ "rps" ] ~docv:"R"
             ~doc:"Mean offered load (requests per simulated second). Keep it above one \
                   shard's capacity to see goodput scale with $(b,--shards).")
  in
  let skew =
    Arg.(value & opt float 0.6
         & info [ "skew" ] ~docv:"S"
             ~doc:"Zipf popularity skew. Higher concentrates load on a few hot tenants; \
                   past ~1.0 a single tenant's serial (one-in-flight) capacity becomes \
                   the bottleneck and shard scaling flattens.")
  in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Root seed. Per-shard streams are split from it; same seed, same report.")
  in
  let no_steal =
    Arg.(value & flag
         & info [ "no-steal" ] ~doc:"Disable the work-stealing rebalance (pure hash placement).")
  in
  let repeat =
    Arg.(value & flag
         & info [ "repeat" ]
             ~doc:"Run every point twice and fail unless results are bit-identical \
                   (result, runtime counters and trace fingerprints).")
  in
  let run workload engine shard_counts tenants duration rps skew seed no_steal repeat =
    let duration_ns = duration *. 1e6 in
    let seed = Int64.of_int seed in
    let arrivals =
      Wk.synthesize ~seed ~tenants ~duration_ns ~rps
        ~shape:(Wk.Diurnal { trough = 0.25 })
        ~popularity:(Wk.Zipf { skew })
        ()
    in
    (* Per-shard backpressure: CoDel sojourn control plus per-tenant
       token buckets, shedding immediately rather than parking (a parked
       ticket re-presents once per epoch, which would quantize a small
       shard's pool into 1 ms admission waves and mask core scaling). *)
    let overload =
      {
        Sim.no_overload with
        Sim.admission =
          Some { Runtime.default_admission with Runtime.tenant_rate = 60_000.0 };
      }
    in
    let base =
      {
        (Sim.default_config ~workload ~engine ~overload ~fair_scheduling:true ()) with
        Sim.concurrency = tenants;
        duration_ns;
        seed;
        arrivals = Some arrivals;
      }
    in
    Printf.printf
      "%s, %d tenants, %.0f ms simulated, %.0f req/s offered (%d arrivals, zipf %.2f, \
       diurnal)\n"
      (Wk.name workload) tenants duration rps (Array.length arrivals) skew;
    Printf.printf "%6s %7s %6s %9s %8s %12s %9s %9s %9s\n" "SHARDS" "STEALS" "MOVED"
      "COMPLETED" "SHED" "GOODPUT(r/s)" "P50(ms)" "P95(ms)" "P99(ms)";
    let ok = ref true in
    List.iter
      (fun k ->
        let cfg = Shard.default_config ~steal:(not no_steal) ~shards:k base in
        let rep = Shard.run cfg in
        let r = rep.Shard.r_result in
        let moved =
          Array.fold_left (fun acc s -> acc + s.Shard.sh_stolen) 0 rep.Shard.r_shards
        in
        let shed =
          r.Sim.shed_sojourn + r.Sim.shed_rate_limited + r.Sim.shed_queue_full
          + r.Sim.shed_priority
        in
        let p50, p95, p99 = Shard.latency_summary r in
        Printf.printf "%6d %7d %6d %9d %8d %12.0f %9.3f %9.3f %9.3f\n" k
          rep.Shard.r_steals moved r.Sim.completed shed r.Sim.goodput_rps (p50 /. 1e6)
          (p95 /. 1e6) (p99 /. 1e6);
        if repeat then begin
          let rep2 = Shard.run cfg in
          let same =
            Shard.result_fingerprint r = Shard.result_fingerprint rep2.Shard.r_result
            && Shard.metrics_fingerprint rep.Shard.r_metrics
               = Shard.metrics_fingerprint rep2.Shard.r_metrics
          in
          if not same then begin
            Printf.printf "       ^ REPEAT MISMATCH at %d shards\n" k;
            ok := false
          end
        end)
      shard_counts;
    if repeat && !ok then Printf.printf "repeats bit-identical at every point\n";
    if not !ok then exit 1
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Shard the FaaS sim across OCaml domains and sweep the shard count under a \
          trace-shaped open-loop load (Zipf popularity, diurnal rate). Each shard owns an \
          engine, pool, admission controller and trace sink; tenants are hash-placed with \
          deterministic tail work-stealing. Goodput is per simulated time, so the sweep is \
          reproducible on any host.")
    Term.(
      const run $ workload_arg $ engine_arg $ shard_counts $ tenants $ duration $ rps $ skew
      $ seed $ no_steal $ repeat)

let () =
  let doc = "Segue & ColorGuard SFI toolchain (simulated x86-64)" in
  let info = Cmd.info "sfi" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd; disasm_cmd; run_cmd; trace_cmd; layout_cmd; simulate_cmd; top_cmd;
            scale_cmd; inject_cmd; fuzz_cmd; chaos_cmd; postmortem_cmd;
          ]))
