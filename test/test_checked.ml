(* Property tests for the overflow-aware layout arithmetic (§5.2): Checked
   is exact or raises; Saturating silently clamps — the divergence is
   exactly the bug class verification found in the ColorGuard layout
   code. *)

module Checked = Sfi_core.Checked

(* Operands concentrated at the overflow boundary, where the modes
   diverge. *)
let boundary_int =
  QCheck.Gen.(
    oneof
      [
        int_range 0 4096;
        map (fun d -> max_int - d) (int_range 0 4096);
        map (fun d -> (max_int / 2) + d) (int_range (-2048) 2048);
        int_range 0 max_int;
      ])

let boundary_pair = QCheck.make QCheck.Gen.(pair boundary_int boundary_int)

let prop_add_exact_or_overflow =
  QCheck.Test.make ~name:"checked add is exact or raises, never wraps" ~count:1000
    boundary_pair (fun (a, b) ->
      match Checked.add Checked.Checked a b with
      | s -> s >= a && s >= b && s = a + b
      | exception Checked.Overflow _ -> a > max_int - b)

let prop_add_modes_diverge_only_on_overflow =
  QCheck.Test.make ~name:"saturating add = checked add except at the clamp" ~count:1000
    boundary_pair (fun (a, b) ->
      let sat = Checked.add Checked.Saturating a b in
      match Checked.add Checked.Checked a b with
      | s -> s = sat
      | exception Checked.Overflow _ -> sat = max_int)

let prop_mul_exact_or_overflow =
  QCheck.Test.make ~name:"checked mul is exact or raises, never wraps" ~count:1000
    boundary_pair (fun (a, b) ->
      match Checked.mul Checked.Checked a b with
      | p -> (a = 0 && p = 0) || (p mod a = 0 && p / a = b)
      | exception Checked.Overflow _ -> a > 0 && b > 0 && b > max_int / a)

let prop_mul_modes_diverge_only_on_overflow =
  QCheck.Test.make ~name:"saturating mul = checked mul except at the clamp" ~count:1000
    boundary_pair (fun (a, b) ->
      let sat = Checked.mul Checked.Saturating a b in
      match Checked.mul Checked.Checked a b with
      | p -> p = sat
      | exception Checked.Overflow _ -> sat = max_int)

let prop_align_up_checked =
  QCheck.Test.make ~name:"checked align_up: aligned, >= input, < input + align" ~count:1000
    (QCheck.make QCheck.Gen.(pair (int_range 0 (max_int / 2)) (int_range 0 30)))
    (fun (x, k) ->
      let a = 1 lsl k in
      let r = Checked.align_up Checked.Checked x a in
      r >= x && r mod a = 0 && r - x < a)

let test_add_edges () =
  Alcotest.check_raises "add max_int 1 overflows"
    (Checked.Overflow (Printf.sprintf "add %d 1" max_int)) (fun () ->
      ignore (Checked.add Checked.Checked max_int 1));
  Alcotest.(check int) "saturating clamps" max_int (Checked.add Checked.Saturating max_int 1);
  Alcotest.(check int) "exact at the boundary" max_int
    (Checked.add Checked.Checked (max_int - 1) 1)

let test_mul_edges () =
  (match Checked.mul Checked.Checked ((max_int / 2) + 1) 2 with
  | _ -> Alcotest.fail "expected Overflow"
  | exception Checked.Overflow _ -> ());
  Alcotest.(check int) "saturating clamps" max_int
    (Checked.mul Checked.Saturating ((max_int / 2) + 1) 2);
  Alcotest.(check int) "exact below the boundary" (max_int - 1)
    (Checked.mul Checked.Checked ((max_int - 1) / 2) 2)

(* The §5.2 bug shape: near max_int, saturating align_up silently returns a
   value *below* its input — the broken invariant checked arithmetic turns
   into a loud Overflow. *)
let test_align_up_edges () =
  (match Checked.align_up Checked.Checked (max_int - 2) 4096 with
  | _ -> Alcotest.fail "expected Overflow"
  | exception Checked.Overflow _ -> ());
  let s = Checked.align_up Checked.Saturating (max_int - 2) 4096 in
  Alcotest.(check bool) "saturating align_up under-aligns near max_int" true
    (s < max_int - 2)

let tests =
  [
    Alcotest.test_case "add edge cases" `Quick test_add_edges;
    Alcotest.test_case "mul edge cases" `Quick test_mul_edges;
    Alcotest.test_case "align_up edge cases" `Quick test_align_up_edges;
    QCheck_alcotest.to_alcotest prop_add_exact_or_overflow;
    QCheck_alcotest.to_alcotest prop_add_modes_diverge_only_on_overflow;
    QCheck_alcotest.to_alcotest prop_mul_exact_or_overflow;
    QCheck_alcotest.to_alcotest prop_mul_modes_diverge_only_on_overflow;
    QCheck_alcotest.to_alcotest prop_align_up_checked;
  ]
