(* Tests for the structured tracing layer: ring-buffer semantics, the
   null sink's inertness, span validation, the event stream a traced
   engine run produces, the hot-PC profiler, aggregation, and the
   Chrome-JSON / Prometheus exports. The load-bearing properties are
   observational: attaching a sink (or the profiler) must never change
   what the machine computes or counts, and the captured stream must
   stay structurally well-formed (nested spans, per-track time order). *)

module W = Sfi_wasm.Ast
module Trace = Sfi_trace.Trace
module Machine = Sfi_machine.Machine
module Codegen = Sfi_core.Codegen
module Runtime = Sfi_runtime.Runtime
module Sim = Sfi_faas.Sim
open Sfi_wasm.Builder

let expect_ok = function
  | Ok v -> v
  | Error k -> Alcotest.failf "unexpected trap: %s" (Sfi_x86.Ast.trap_name k)

let check_valid name sink =
  match Trace.validate sink with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%s: invalid stream: %s" name m

(* A loop that stores then reloads [n] words: enough memory traffic for
   TLB events and enough straight-line work for the sampling profiler. *)
let traced_module () =
  let b = create ~memory_pages:1 () in
  let touch = declare b "touch" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b touch ~locals:[ W.I32; W.I32 ]
    [
      block
        [
          loop
            [
              get 1;
              get 0;
              ge_u;
              br_if 1;
              get 1;
              i32 4;
              mul;
              get 1;
              store32 ();
              get 2;
              get 1;
              i32 4;
              mul;
              load32 ();
              add;
              set 2;
              get 1;
              i32 1;
              add;
              set 1;
              br 0;
            ];
        ];
      get 2;
    ];
  build b

let traced_compiled = lazy (Codegen.compile (Codegen.default_config ()) (traced_module ()))

let test_null_sink_inert () =
  let t = Trace.null in
  Alcotest.(check bool) "disabled" false (Trace.enabled t);
  Alcotest.(check int) "capacity" 0 (Trace.capacity t);
  (* Emitters are no-ops, not errors. *)
  Trace.call_begin t ~sandbox:0;
  Trace.hostcall t ~sandbox:0 ~cls:2 ~cycles:100;
  Trace.call_end t ~sandbox:0;
  Trace.tlb_fill t ~page:42;
  Alcotest.(check int) "no events recorded" 0 (Trace.length t);
  Alcotest.(check int) "nothing dropped" 0 (Trace.dropped t);
  check_valid "null" t

let test_ring_keeps_first_and_counts_drops () =
  let t = Trace.create_ring ~capacity:4 () in
  Alcotest.(check bool) "enabled" true (Trace.enabled t);
  Alcotest.(check int) "capacity" 4 (Trace.capacity t);
  for page = 1 to 6 do
    Trace.tlb_fill t ~page
  done;
  Alcotest.(check int) "length clamped" 4 (Trace.length t);
  Alcotest.(check int) "overflow counted" 2 (Trace.dropped t);
  (* Keep-first policy: the retained prefix is events 1..4. *)
  let pages = List.map (fun e -> e.Trace.ev_a0) (Trace.events t) in
  Alcotest.(check (list int)) "earliest events kept" [ 1; 2; 3; 4 ] pages;
  Trace.clear t;
  Alcotest.(check int) "clear empties" 0 (Trace.length t);
  Alcotest.(check int) "clear resets drops" 0 (Trace.dropped t)

let test_clock_stamps_events () =
  let t = Trace.create_ring ~capacity:16 () in
  let now = ref 100 in
  Trace.set_clock t (fun () -> !now);
  Trace.pkru_write t ~value:0x55;
  now := 250;
  Trace.pkru_write t ~value:0xAA;
  (match Trace.events t with
  | [ e1; e2 ] ->
      Alcotest.(check int) "first stamp" 100 e1.Trace.ev_ts;
      Alcotest.(check int) "second stamp" 250 e2.Trace.ev_ts;
      Alcotest.(check string) "category" "pkru" e1.Trace.ev_cat;
      Alcotest.(check char) "instant phase" 'i' e1.Trace.ev_phase
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  Alcotest.(check int) "now reads the clock" 250 (Trace.now t)

let test_validate_rejects_unbalanced_spans () =
  let balanced = Trace.create_ring ~capacity:16 () in
  Trace.call_begin balanced ~sandbox:0;
  Trace.call_end balanced ~sandbox:0;
  check_valid "balanced" balanced;
  let unopened = Trace.create_ring ~capacity:16 () in
  Trace.call_end unopened ~sandbox:3;
  (match Trace.validate unopened with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "end without begin must not validate");
  let unclosed = Trace.create_ring ~capacity:16 () in
  Trace.call_begin unclosed ~sandbox:0;
  match Trace.validate unclosed with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "dangling begin must not validate (nothing dropped)"

(* No event in the vocabulary legitimately self-nests, so a span opening
   inside an open span of the same name on the same track means two
   shards' streams collided on one track id. The validator must reject
   it even though the stream is balanced. *)
let test_validate_rejects_colliding_streams () =
  let r = Trace.create_ring ~capacity:16 () in
  Trace.request_begin r ~tenant:0;
  Trace.request_begin r ~tenant:0;
  Trace.request_end r ~tenant:0 ~ok:true;
  Trace.request_end r ~tenant:0 ~ok:true;
  (match Trace.validate r with
  | Ok () -> Alcotest.fail "colliding streams must not validate"
  | Error m ->
      Alcotest.(check bool) "names the duplicate span" true
        (let needle = "duplicate overlapping span" in
         let rec find i =
           i + String.length needle <= String.length m
           && (String.sub m i (String.length needle) = needle || find (i + 1))
         in
         find 0));
  (* The same spans on distinct tracks stay valid. *)
  let ok = Trace.create_ring ~capacity:16 () in
  Trace.request_begin ok ~tenant:0;
  Trace.request_begin ok ~tenant:1;
  Trace.request_end ok ~tenant:0 ~ok:true;
  Trace.request_end ok ~tenant:1 ~ok:true;
  check_valid "distinct tracks" ok

(* merge_shards: simulated-time interleave, per-shard track namespacing
   (so equal tenant ids from different shards can never collide), and
   identity on a single shard. *)
let test_merge_shards () =
  let clocked off =
    let r = Trace.create_ring ~capacity:64 () in
    let t = ref off in
    Trace.set_clock r (fun () -> !t);
    (r, t)
  in
  let r0, t0 = clocked 10 in
  Trace.request_begin r0 ~tenant:0;
  t0 := 15;
  Trace.pkru_write r0 ~value:3;
  t0 := 20;
  Trace.request_end r0 ~tenant:0 ~ok:true;
  let r1, t1 = clocked 5 in
  Trace.request_begin r1 ~tenant:1;
  t1 := 6;
  Trace.pkru_write r1 ~value:7;
  t1 := 25;
  Trace.request_end r1 ~tenant:1 ~ok:true;
  let merged = Trace.merge_shards [ r0; r1 ] in
  Alcotest.(check int) "all events retained" 6 (Trace.length merged);
  let evs = Trace.events merged in
  Alcotest.(check (list int)) "interleaved by simulated time"
    [ 5; 6; 10; 15; 20; 25 ]
    (List.map (fun e -> e.Trace.ev_ts) evs);
  (* widest shard has tenant track 1, so the stride is 2: shard 0 keeps
     tenant 0 on track 0, shard 1's tenant 1 lands on 1*2+1 = 3, and the
     machine tracks become -1 and -2. *)
  Alcotest.(check (list int)) "tracks namespaced per shard"
    [ 3; -2; 0; -1; 0; 3 ]
    (List.map (fun e -> e.Trace.ev_track) evs);
  check_valid "merged stream" merged;
  (* A single-shard merge is the identity: same fingerprint, no remap. *)
  Alcotest.(check int64) "one-shard merge is the identity"
    (Trace.fingerprint r0)
    (Trace.fingerprint (Trace.merge_shards [ r0 ]));
  Alcotest.(check int) "drop counts are summed" 0 (Trace.dropped merged)

(* End-to-end: a traced engine run must produce the four headline
   categories on the right tracks, validate structurally, and export
   schema-clean Chrome JSON. *)
let test_engine_run_categories_and_export () =
  let eng = Runtime.create_engine (Lazy.force traced_compiled) in
  let ring = Trace.create_ring () in
  Runtime.set_trace eng ring;
  let inst = Runtime.instantiate eng in
  (* A fuel-starved probe on a second slot exercises fault + kill. *)
  let probe = Runtime.instantiate eng in
  (match Runtime.invoke_protected ~fuel:8 probe "touch" [ 4096L ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "probe should not complete on 8 fuel");
  Alcotest.(check int64) "traced run result" (expect_ok (Runtime.invoke inst "touch" [ 64L ]))
    (Int64.of_int (64 * 63 / 2));
  check_valid "engine stream" ring;
  let cats = Trace.categories ring in
  List.iter
    (fun c ->
      if not (List.mem c cats) then Alcotest.failf "category %s missing (have: %s)" c (String.concat ", " cats))
    [ "transition"; "lifecycle"; "fault"; "tlb" ];
  (* Both sandbox tracks and the machine track are populated. *)
  let on_track id = List.exists (fun e -> e.Trace.ev_track = id) (Trace.events ring) in
  Alcotest.(check bool) "machine track" true (on_track (-1));
  Alcotest.(check bool) "slot 0 track" true (on_track (Runtime.instance_id inst));
  Alcotest.(check bool) "slot 1 track" true (on_track (Runtime.instance_id probe));
  let json = Trace.to_chrome_json ~process_name:"test" ring in
  match Trace.validate_chrome_json json with
  | Error m -> Alcotest.failf "chrome json rejected: %s" m
  | Ok r ->
      Alcotest.(check int) "every retained event exported" (Trace.length ring) r.Trace.json_events;
      List.iter
        (fun c ->
          if not (List.mem c r.Trace.json_cats) then Alcotest.failf "category %s missing from json" c)
        [ "transition"; "lifecycle"; "fault"; "tlb" ]

(* Observational neutrality: the same program on the same engine config
   must retire the same instructions and cycles whether it runs under
   the null sink, a ring sink, or the armed profiler. *)
let counters_after ?(profile = false) trace =
  let eng = Runtime.create_engine (Lazy.force traced_compiled) in
  Runtime.set_trace eng trace;
  if profile then Machine.arm_profiler ~interval:16 (Runtime.machine eng);
  let inst = Runtime.instantiate eng in
  ignore (expect_ok (Runtime.invoke inst "touch" [ 200L ]));
  let c = Machine.counters (Runtime.machine eng) in
  ((c.Machine.instructions, c.Machine.cycles), (c.Machine.loads, c.Machine.stores))

let counters_t = Alcotest.(pair (pair int int) (pair int int))

let test_tracing_is_observationally_neutral () =
  let base = counters_after Trace.null in
  Alcotest.check counters_t "ring sink" base (counters_after (Trace.create_ring ()));
  Alcotest.check counters_t "armed profiler" base
    (counters_after ~profile:true (Trace.create_ring ()))

let test_hostcall_classes_summarized () =
  let b = create ~memory_pages:1 () in
  let p = import b "p" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let r = import b "r" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let f = import b "f" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let go = declare b "go" ~params:[] ~results:[ W.I32 ] () in
  define b go [ i32 1; call p; call r; call f ];
  let eng = Runtime.create_engine (Codegen.compile (Codegen.default_config ()) (build b)) in
  let bump = fun _ args -> Int64.add args.(0) 1L in
  Runtime.register_import ~clazz:Runtime.Pure eng "p" bump;
  Runtime.register_import ~clazz:Runtime.Readonly eng "r" bump;
  Runtime.register_import ~clazz:Runtime.Full eng "f" bump;
  let ring = Trace.create_ring () in
  Runtime.set_trace eng ring;
  let inst = Runtime.instantiate eng in
  Alcotest.(check int64) "result" 4L (expect_ok (Runtime.invoke inst "go" []));
  check_valid "hostcall stream" ring;
  let sums = Trace.summaries ring in
  List.iter
    (fun name ->
      match List.assoc_opt name sums with
      | Some s ->
          Alcotest.(check int) (name ^ " count") 1 s.Trace.s_count;
          Alcotest.(check bool) (name ^ " cost positive") true (s.Trace.s_total > 0.0)
      | None -> Alcotest.failf "no summary for %s" name)
    [ "hostcall.pure"; "hostcall.readonly"; "hostcall.full" ];
  (* The call span wraps the whole invoke. *)
  match List.assoc_opt "call" sums with
  | Some s -> Alcotest.(check int) "one call span" 1 s.Trace.s_count
  | None -> Alcotest.fail "no call summary"

let test_profiler_attributes_hot_loop () =
  let eng = Runtime.create_engine (Lazy.force traced_compiled) in
  let m = Runtime.machine eng in
  Machine.arm_profiler ~interval:16 m;
  let inst = Runtime.instantiate eng in
  ignore (expect_ok (Runtime.invoke inst "touch" [ 500L ]));
  let samples = Machine.profile_samples m in
  Alcotest.(check bool) "samples collected" true (samples > 0);
  let regions = Machine.hot_regions m in
  Alcotest.(check bool) "regions attributed" true (regions <> []);
  let total = List.fold_left (fun acc (_, n) -> acc + n) 0 regions in
  Alcotest.(check int) "every sample attributed" samples total;
  (* The store/load loop dominates: its region must hold most samples. *)
  let _, top = List.hd regions in
  Alcotest.(check bool) "hot loop dominates" true (float_of_int top > 0.5 *. float_of_int samples);
  Machine.disarm_profiler m;
  ignore (expect_ok (Runtime.invoke inst "touch" [ 500L ]));
  Alcotest.(check int) "disarmed: no new samples" samples (Machine.profile_samples m)

let test_prometheus_format () =
  let text =
    Trace.prometheus
      [ ("sfi_cycles_total", "Simulated cycles", 1234.0); ("sfi_ratio", "A ratio", 0.5) ]
  in
  let has needle =
    let nl = String.length needle and tl = String.length text in
    let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "help line" true (has "# HELP sfi_cycles_total Simulated cycles");
  Alcotest.(check bool) "type line" true (has "# TYPE sfi_cycles_total gauge");
  Alcotest.(check bool) "sample line" true (has "sfi_cycles_total 1234");
  Alcotest.(check bool) "second metric" true (has "# TYPE sfi_ratio gauge")

let test_sim_tenant_breakdown () =
  let ring = Trace.create_ring () in
  let cfg =
    {
      (Sim.default_config ()) with
      Sim.concurrency = 8;
      duration_ns = 4e6;
      io_mean_ns = 100_000.0;
      trace = ring;
    }
  in
  let res = Sim.run cfg in
  Alcotest.(check int) "one stat per tenant" 8 (Array.length res.Sim.tenants);
  Alcotest.(check bool) "work happened" true (res.Sim.completed > 0);
  let sum f = Array.fold_left (fun acc t -> acc + f t) 0 res.Sim.tenants in
  Alcotest.(check int) "completions attributed" res.Sim.completed (sum (fun t -> t.Sim.t_completed));
  Alcotest.(check int)
    "failures attributed"
    (res.Sim.failed + res.Sim.collateral_aborts)
    (sum (fun t -> t.Sim.t_failed));
  Array.iter
    (fun t ->
      if t.Sim.t_completed > 0 then begin
        Alcotest.(check bool) "p50 positive" true (t.Sim.t_p50_ns > 0.0);
        Alcotest.(check bool) "percentiles ordered" true
          (t.Sim.t_p50_ns <= t.Sim.t_p95_ns && t.Sim.t_p95_ns <= t.Sim.t_p99_ns)
      end)
    res.Sim.tenants;
  (* Request spans balance: the sim closes spans still open at the end. *)
  check_valid "sim stream" ring;
  let begins, ends =
    List.fold_left
      (fun (b, e) ev ->
        if ev.Trace.ev_name = "request" then
          match ev.Trace.ev_phase with 'B' -> (b + 1, e) | 'E' -> (b, e + 1) | _ -> (b, e)
        else (b, e))
      (0, 0) (Trace.events ring)
  in
  Alcotest.(check bool) "request spans recorded" true (begins > 0);
  if Trace.dropped ring = 0 then Alcotest.(check int) "request spans balance" begins ends

let tests =
  [
    Harness.case "null sink is inert" test_null_sink_inert;
    Harness.case "ring keeps first events, counts drops" test_ring_keeps_first_and_counts_drops;
    Harness.case "clock stamps events" test_clock_stamps_events;
    Harness.case "validate rejects unbalanced spans" test_validate_rejects_unbalanced_spans;
    Harness.case "validate rejects colliding streams" test_validate_rejects_colliding_streams;
    Harness.case "merge_shards namespaces and interleaves" test_merge_shards;
    Harness.case "engine run: categories, tracks, chrome json" test_engine_run_categories_and_export;
    Harness.case "tracing is observationally neutral" test_tracing_is_observationally_neutral;
    Harness.case "hostcall classes summarized" test_hostcall_classes_summarized;
    Harness.case "profiler attributes the hot loop" test_profiler_attributes_hot_loop;
    Harness.case "prometheus exposition format" test_prometheus_format;
    Harness.case "sim per-tenant breakdown" test_sim_tenant_breakdown;
  ]
