(* Unit and property tests for the shared utilities. *)

module Prng = Sfi_util.Prng
module Stats = Sfi_util.Stats
module Units = Sfi_util.Units
module Table = Sfi_util.Table
module Vec = Sfi_util.Vec

let test_prng_determinism () =
  let a = Prng.create ~seed:42L and b = Prng.create ~seed:42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done;
  let c = Prng.create ~seed:43L in
  Alcotest.(check bool) "different seed, different stream" false
    (Prng.next_int64 (Prng.create ~seed:42L) = Prng.next_int64 c)

let test_prng_copy () =
  let a = Prng.create ~seed:7L in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues the stream" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_ranges () =
  let t = Prng.create ~seed:1L in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "int in range" true (v >= 0 && v < 17);
    let v = Prng.int_in t 5 9 in
    Alcotest.(check bool) "int_in inclusive" true (v >= 5 && v <= 9);
    let f = Prng.float t 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_prng_distributions () =
  let t = Prng.create ~seed:99L in
  let n = 20000 in
  let exp_sum = ref 0.0 and poi_sum = ref 0 in
  for _ = 1 to n do
    exp_sum := !exp_sum +. Prng.exponential t ~mean:5.0;
    poi_sum := !poi_sum + Prng.poisson t ~mean:5.0
  done;
  let exp_mean = !exp_sum /. float_of_int n in
  let poi_mean = float_of_int !poi_sum /. float_of_int n in
  Alcotest.(check bool) "exponential mean ~5" true (exp_mean > 4.6 && exp_mean < 5.4);
  Alcotest.(check bool) "poisson mean ~5" true (poi_mean > 4.6 && poi_mean < 5.4);
  (* large-mean path uses the normal approximation *)
  let big = Prng.poisson t ~mean:5000.0 in
  Alcotest.(check bool) "poisson large mean plausible" true (big > 4000 && big < 6000)

(* Uniformity near the top of the draw range. [Prng.int] draws 62 raw
   bits; with [bound = 3 * 2^60] the final block [3*2^60, 4*2^60) is
   incomplete, so plain modulo reduction would map it back onto
   [0, 2^60) and double that third's frequency: P(v < bound/3) would be
   1/2 instead of 1/3. Rejection sampling must keep it at 1/3. *)
let test_prng_uniformity () =
  let t = Prng.create ~seed:0xB1A5L in
  let bound = 3 * (1 lsl 60) in
  let third = bound / 3 in
  let n = 10_000 in
  let low = ref 0 in
  for _ = 1 to n do
    let v = Prng.int t bound in
    Alcotest.(check bool) "in range" true (v >= 0 && v < bound);
    if v < third then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "low third drawn uniformly (%.3f)" frac)
    true
    (frac > 0.30 && frac < 0.37)

(* Splitting must not advance the parent, children must be pairwise
   distinct and decorrelated from each other and the parent's own walk.
   The per-shard / per-breaker / per-workload streams all ride on these
   properties. *)
let test_prng_split () =
  let parent = Prng.create ~seed:0xFEEDL in
  let expected = Prng.next_int64 (Prng.copy parent) in
  let c0 = Prng.split parent 0 in
  Alcotest.(check int64) "split does not advance the parent" expected
    (Prng.next_int64 (Prng.copy parent));
  Alcotest.(check int64) "split is deterministic"
    (Prng.next_int64 (Prng.split parent 0))
    (Prng.next_int64 c0);
  Alcotest.check_raises "negative index rejected"
    (Invalid_argument "Prng.split: negative index") (fun () ->
      ignore (Prng.split parent (-1)));
  (* Children are pairwise distinct across indices and across unrelated
     seeds. (Seeds that differ by an exact multiple of the golden gamma
     alias by construction — SplitMix lattice — which is why per-shard
     seeds are split from one root, never hand-picked per shard.) *)
  let seen = Hashtbl.create 4096 in
  List.iter
    (fun seed ->
      for i = 0 to 511 do
        let s = Prng.split_seed ~seed i in
        Alcotest.(check bool)
          (Printf.sprintf "child (%Ld, %d) distinct" seed i)
          false (Hashtbl.mem seen s);
        Hashtbl.replace seen s ()
      done)
    [ 0L; 1L; 42L; -1L; 0xFEEDL; 0xDEADBEEFL ];
  (* Child streams must not coincide with the parent's own walk: the
     split finalizer avalanches differently from next_int64, so a child
     state never lands on a state the parent will step through. *)
  let p = Prng.create ~seed:0xFEEDL in
  for _ = 1 to 256 do
    Alcotest.(check bool) "child state off the parent's walk" false
      (Hashtbl.mem seen (Prng.next_int64 p))
  done

(* Uniformity: the first draw of consecutive child streams must be
   uniform even though the split indices are sequential — exactly how
   per-shard and per-tenant streams are derived. *)
let test_prng_split_uniformity () =
  let parent = Prng.create ~seed:0xC0FFEEL in
  let buckets = 64 in
  let n = 4096 in
  let hist = Array.make buckets 0 in
  let ones = ref 0 in
  for i = 0 to n - 1 do
    let child = Prng.split parent i in
    let v = Prng.int child buckets in
    hist.(v) <- hist.(v) + 1;
    (* monobit: set bits of the raw child seed *)
    let s = ref (Prng.split_seed ~seed:0xC0FFEEL i) in
    for _ = 1 to 64 do
      if Int64.logand !s 1L = 1L then incr ones;
      s := Int64.shift_right_logical !s 1
    done
  done;
  (* expected 64 per bucket, sigma ~ 8: a 5-sigma band *)
  Array.iteri
    (fun b c ->
      Alcotest.(check bool)
        (Printf.sprintf "bucket %d uniform (%d)" b c)
        true
        (c > 24 && c < 104))
    hist;
  (* expected 131072 set bits, sigma ~ 256 *)
  Alcotest.(check bool)
    (Printf.sprintf "child seeds unbiased (%d ones)" !ones)
    true
    (abs (!ones - 131072) < 1536)

let test_stats () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "median odd" 3.0 (Stats.median [ 5.0; 3.0; 1.0 ]);
  Alcotest.(check (float 1e-9)) "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "percentile 0" 1.0 (Stats.percentile [ 1.0; 2.0; 3.0 ] 0.0);
  Alcotest.(check (float 1e-9)) "percentile 100" 3.0 (Stats.percentile [ 1.0; 2.0; 3.0 ] 100.0);
  Alcotest.(check (float 1e-9)) "percentile 50" 2.0 (Stats.percentile [ 3.0; 1.0; 2.0 ] 50.0);
  Alcotest.(check (float 1e-9)) "overhead" 25.0
    (Stats.percent_overhead ~baseline:4.0 ~measured:5.0);
  (* the paper's metric: native 1.0, wasm 1.186, segue 1.103 -> 44.6% *)
  let eliminated = Stats.overhead_eliminated ~baseline:1.0 ~unopt:1.186 ~opt:1.103 in
  Alcotest.(check bool) "overhead eliminated" true (Float.abs (eliminated -. 44.62) < 0.1);
  Alcotest.(check (float 1e-9)) "no overhead -> 0" 0.0
    (Stats.overhead_eliminated ~baseline:2.0 ~unopt:2.0 ~opt:1.5);
  Alcotest.check_raises "geomean rejects non-positive"
    (Invalid_argument "Stats.geomean: non-positive input") (fun () ->
      ignore (Stats.geomean [ 1.0; 0.0 ]))

(* Known answer: the population stddev of this set is exactly 2; the
   Bessel-corrected sample stddev must be sqrt(32/7). A divisor-n
   regression would report 2.0 here. *)
let test_stddev () =
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  Alcotest.(check (float 1e-12)) "bessel-corrected known answer"
    (sqrt (32.0 /. 7.0))
    (Stats.stddev xs);
  Alcotest.(check (float 1e-12)) "two points" (sqrt 2.0) (Stats.stddev [ 1.0; 3.0 ]);
  Alcotest.(check (float 1e-12)) "single observation well-defined" 0.0
    (Stats.stddev [ 42.0 ]);
  Alcotest.(check (float 1e-12)) "constant data" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ])

let test_units () =
  Alcotest.(check int) "gib" (1 lsl 30) Units.gib;
  Alcotest.(check int) "user address space" (1 lsl 47) Units.user_address_space_bytes;
  Alcotest.(check bool) "aligned" true (Units.is_aligned 8192 4096);
  Alcotest.(check bool) "unaligned" false (Units.is_aligned 8193 4096);
  Alcotest.(check int) "align_up" 8192 (Units.align_up 4097 4096);
  Alcotest.(check int) "align_up exact" 4096 (Units.align_up 4096 4096);
  Alcotest.(check int) "align_down" 4096 (Units.align_down 8191 4096);
  Alcotest.(check string) "pp exact" "8 GiB" (Units.to_string (8 * Units.gib));
  Alcotest.(check string) "pp fractional" "1.50 KiB" (Units.to_string 1536);
  Alcotest.(check string) "pp bytes" "17 B" (Units.to_string 17)

let prop_align_up =
  QCheck.Test.make ~name:"align_up yields the smallest aligned value >= x" ~count:500
    QCheck.(pair (int_bound 1_000_000) (int_range 1 65536))
    (fun (x, a) ->
      let r = Sfi_util.Units.align_up x a in
      r >= x && r mod a = 0 && r - x < a)

let test_table () =
  let t = Table.create ~headers:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b" ];
  let rendered = Table.render t in
  Alcotest.(check bool) "contains header rule" true (String.contains rendered '+');
  Alcotest.(check bool) "row padded" true
    (List.length (String.split_on_char '\n' (String.trim rendered)) = 4);
  Alcotest.check_raises "too-wide row rejected"
    (Invalid_argument "Table.add_row: row wider than header") (fun () ->
      Table.add_row t [ "a"; "b"; "c" ]);
  Alcotest.(check string) "pct cell" "+3.5%" (Table.cell_pct 3.5);
  Alcotest.(check string) "neg pct cell" "-0.5%" (Table.cell_pct (-0.5))

let test_vec () =
  let v = Vec.create () in
  Alcotest.(check int) "empty" 0 (Vec.length v);
  for i = 0 to 99 do
    Alcotest.(check int) "push returns index" i (Vec.push v (i * 2))
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 84 (Vec.get v 42);
  Vec.set v 42 7;
  Alcotest.(check int) "set" 7 (Vec.get v 42);
  Vec.append_array v [| 1; 2 |];
  Alcotest.(check int) "append" 102 (Vec.length v);
  Alcotest.(check int) "to_array keeps order" 0 (Vec.to_array v).(0);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 200))

let tests =
  [
    Harness.case "prng determinism" test_prng_determinism;
    Harness.case "prng copy" test_prng_copy;
    Harness.case "prng ranges" test_prng_ranges;
    Harness.case "prng distributions" test_prng_distributions;
    Harness.case "prng uniformity at large bounds" test_prng_uniformity;
    Harness.case "prng split streams" test_prng_split;
    Harness.case "prng split uniformity" test_prng_split_uniformity;
    Harness.case "stats" test_stats;
    Harness.case "stddev is sample stddev" test_stddev;
    Harness.case "units" test_units;
    QCheck_alcotest.to_alcotest prop_align_up;
    Harness.case "table" test_table;
    Harness.case "vec" test_vec;
  ]
