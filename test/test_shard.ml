(* Tests for the sharded serving layer: the 1-shard bit-identity
   contract with the unsharded sim (result, runtime counters and trace
   fingerprint, on both engines, closed and open loop), K-shard
   determinism at a fixed seed, and the dispatch-plan properties
   (hash placement, tail-only work stealing). *)

module Sim = Sfi_faas.Sim
module Shard = Sfi_faas.Shard
module Wk = Sfi_faas.Workloads
module Trace = Sfi_trace.Trace
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine

let base_cfg ?(seed = 11L) ?(workload = Wk.Micro_kv) ?(engine = Machine.Threaded)
    ?(concurrency = 24) ?(open_loop = false) () =
  let cfg = Sim.default_config ~workload ~engine () in
  let cfg = { cfg with Sim.concurrency; duration_ns = 8.0e6; io_mean_ns = 1.0e6; seed } in
  if open_loop then
    {
      cfg with
      Sim.arrivals =
        Some
          (Wk.synthesize ~seed ~tenants:concurrency ~duration_ns:cfg.Sim.duration_ns
             ~rps:80_000.0
             ~shape:(Wk.Diurnal { trough = 0.3 })
             ~popularity:(Wk.Zipf { skew = 1.1 })
             ());
    }
  else cfg

(* Run the unsharded sim on this domain with a fresh ring and a fresh
   DLS scope, and digest everything the identity contract covers. *)
let unsharded_fingerprints cfg ~trace_capacity =
  let ring = Trace.create_ring ~capacity:trace_capacity () in
  Runtime.reset_domain_metrics ();
  let r = Sim.run { cfg with Sim.trace = ring } in
  let m = Runtime.domain_metrics () in
  ( Shard.result_fingerprint r,
    Trace.fingerprint ring,
    Shard.metrics_fingerprint m )

let sharded_fingerprints cfg ~shards ~trace_capacity =
  let rep =
    Shard.run
      (Shard.default_config ~trace_capacity ~shards
         { cfg with Sim.trace = Trace.create_ring ~capacity:1 () })
  in
  ( Shard.result_fingerprint rep.Shard.r_result,
    (match rep.Shard.r_trace with Some t -> Trace.fingerprint t | None -> 0L),
    Shard.metrics_fingerprint rep.Shard.r_metrics )

let test_one_shard_identity () =
  (* Exercise the full merge surface: admission, faults, open loop. *)
  let ov =
    {
      Sim.no_overload with
      Sim.pool_slots = Some 16;
      admission = Some Runtime.default_admission;
    }
  in
  let faults = { Sim.no_faults with Sim.trap_rate = 0.05; deadline_epochs = 3 } in
  List.iter
    (fun open_loop ->
      let cfg = { (base_cfg ~open_loop ()) with Sim.overload = ov; faults } in
      let r1, t1, m1 = unsharded_fingerprints cfg ~trace_capacity:4096 in
      let r2, t2, m2 = sharded_fingerprints cfg ~shards:1 ~trace_capacity:4096 in
      let tag = if open_loop then "open loop" else "closed loop" in
      Alcotest.(check int64) (tag ^ ": result bit-identical") r1 r2;
      Alcotest.(check int64) (tag ^ ": trace fingerprint identical") t1 t2;
      Alcotest.(check int64) (tag ^ ": runtime counters identical") m1 m2)
    [ false; true ]

let prop_one_shard_bit_identical =
  QCheck.Test.make ~name:"1-shard run == unsharded Sim.run (both engines)"
    ~count:6
    QCheck.(triple small_nat bool bool)
    (fun (seed, open_loop, threaded) ->
      let engine = if threaded then Machine.Threaded else Machine.Reference in
      let cfg =
        base_cfg
          ~seed:(Int64.of_int (seed + 1))
          ~engine ~open_loop ~concurrency:12 ()
      in
      let r1, t1, m1 = unsharded_fingerprints cfg ~trace_capacity:4096 in
      let r2, t2, m2 = sharded_fingerprints cfg ~shards:1 ~trace_capacity:4096 in
      r1 = r2 && t1 = t2 && m1 = m2)

let test_ksharded_deterministic () =
  List.iter
    (fun engine ->
      let cfg = base_cfg ~engine ~open_loop:true ~concurrency:32 ~seed:7L () in
      let run c = sharded_fingerprints c ~shards:4 ~trace_capacity:4096 in
      let r1, t1, m1 = run cfg in
      let r2, t2, m2 = run cfg in
      Alcotest.(check int64) "result deterministic across repeats" r1 r2;
      Alcotest.(check int64) "trace deterministic across repeats" t1 t2;
      Alcotest.(check int64) "metrics deterministic across repeats" m1 m2;
      let r3, _, _ = run (base_cfg ~engine ~open_loop:true ~concurrency:32 ~seed:8L ()) in
      Alcotest.(check bool) "different seed diverges" true (r1 <> r3))
    [ Machine.Threaded; Machine.Reference ]

let test_ksharded_report_shape () =
  let cfg = base_cfg ~open_loop:true ~concurrency:32 () in
  let rep = Shard.run (Shard.default_config ~shards:4 cfg) in
  let r = rep.Shard.r_result in
  Alcotest.(check int) "tenants preserved under re-indexing" 32
    (Array.length r.Sim.tenants);
  Array.iteri
    (fun g t -> Alcotest.(check int) "tenant ids global and in order" g t.Sim.t_id)
    r.Sim.tenants;
  Alcotest.(check int) "every tenant lives on exactly one shard" 32
    (Array.fold_left (fun acc s -> acc + s.Shard.sh_tenants) 0 rep.Shard.r_shards);
  Alcotest.(check bool) "work completed" true (r.Sim.completed > 0);
  Alcotest.(check bool) "completions attributed to shards" true
    (Array.fold_left (fun acc s -> acc + s.Shard.sh_completed) 0 rep.Shard.r_shards
    = r.Sim.completed);
  Alcotest.(check bool) "runtime metrics harvested before the join" true
    (rep.Shard.r_metrics.Runtime.m_transitions > 0);
  Alcotest.(check bool) "no trace requested, none produced" true
    (rep.Shard.r_trace = None);
  let p50, p95, p99 = Shard.latency_summary r in
  Alcotest.(check bool) "latency summary ordered" true
    (p50 > 0.0 && p50 <= p95 && p95 <= p99)

let test_more_shards_than_tenants () =
  let cfg = base_cfg ~concurrency:2 () in
  let rep = Shard.run (Shard.default_config ~shards:4 cfg) in
  Alcotest.(check int) "tenants preserved" 2
    (Array.length rep.Shard.r_result.Sim.tenants);
  Alcotest.(check bool) "both tenants served" true
    (Array.for_all (fun t -> t.Sim.t_completed > 0) rep.Shard.r_result.Sim.tenants);
  Alcotest.check_raises "zero shards rejected"
    (Invalid_argument "Shard.run: shards must be >= 1") (fun () ->
      ignore (Shard.run (Shard.default_config ~shards:0 cfg)))

let test_plan_stealing () =
  let shards = 4 in
  let n = 64 in
  (* one scorching tenant, a flat tail *)
  let weights = Array.init n (fun i -> if i = 0 then 50.0 else 1.0) in
  let spread a =
    let load = Array.make shards 0.0 in
    Array.iteri (fun t s -> load.(s) <- load.(s) +. weights.(t)) a;
    Array.fold_left Float.max neg_infinity load
    -. Array.fold_left Float.min infinity load
  in
  let home, s0 = Shard.plan ~shards ~steal:false weights in
  Alcotest.(check int) "no steals when disabled" 0 s0;
  Array.iteri
    (fun t s ->
      Alcotest.(check int) "steal-free plan is home placement"
        (Shard.home_shard ~shards t) s)
    home;
  let assign, steals = Shard.plan ~shards ~steal:true weights in
  Array.iter
    (fun s -> Alcotest.(check bool) "assignment in range" true (s >= 0 && s < shards))
    assign;
  Alcotest.(check bool) "imbalance triggers steals" true (steals > 0);
  Alcotest.(check int) "hot tenant stays shard-local (tail-only stealing)"
    (Shard.home_shard ~shards 0)
    assign.(0);
  Alcotest.(check bool) "stealing shrinks the load spread" true
    (spread assign < spread home);
  let assign', steals' = Shard.plan ~shards ~steal:true weights in
  Alcotest.(check bool) "plan is deterministic" true
    (assign' = assign && steals' = steals)

let tests =
  [
    Harness.case "one shard is bit-identical to the unsharded sim"
      test_one_shard_identity;
    QCheck_alcotest.to_alcotest prop_one_shard_bit_identical;
    Harness.case "k-shard runs are deterministic" test_ksharded_deterministic;
    Harness.case "k-shard report shape and merge accounting"
      test_ksharded_report_shape;
    Harness.case "more shards than tenants" test_more_shards_than_tenants;
    Harness.case "dispatch plan: placement and tail stealing" test_plan_stealing;
  ]
