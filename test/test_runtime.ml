(* Tests for the engine: instance lifecycle, memory growth, epochs,
   transitions, and — most importantly — the ColorGuard isolation property:
   with striped slots, an out-of-bounds access that lands in a neighbour's
   memory must trap via MPK exactly as a guard region would (§3.2). *)

module W = Sfi_wasm.Ast
module X = Sfi_x86.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine
module Units = Sfi_util.Units
open Sfi_wasm.Builder

let touch_module () =
  let b = create ~memory_pages:2 ~max_memory_pages:64 () in
  let load = declare b "load" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b load [ get 0; load32 () ];
  let store = declare b "store" ~params:[ W.I32; W.I32 ] ~results:[] () in
  define b store [ get 0; get 1; store32 () ];
  let grow = declare b "grow" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b grow [ get 0; memory_grow ];
  let size = declare b "size" ~params:[] ~results:[ W.I32 ] () in
  define b size [ memory_size ];
  let spin = declare b "spin" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b spin ~locals:[ W.I32; W.I32 ]
    (for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
       [ get 2; get 1; add; set 2 ]
    @ [ get 2 ]);
  build b

let small_pool ~stripe =
  let params =
    {
      Pool.num_slots = 8;
      max_memory_bytes = 4 * Units.mib;
      expected_slot_bytes = 4 * Units.mib;
      guard_bytes = 16 * Units.mib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = stripe;
    }
  in
  match Pool.compute params with Ok l -> l | Error m -> failwith m

let engine ?allocator ?(colorguard = false) ?(strategy = Strategy.wasm_default) () =
  let cfg = { (Codegen.default_config ~strategy ()) with Codegen.colorguard } in
  Runtime.create_engine ?allocator (Codegen.compile cfg (touch_module ()))

let expect_ok = function
  | Ok v -> v
  | Error k -> Alcotest.failf "unexpected trap: %s" (X.trap_name k)

let test_lifecycle_and_recycling () =
  let e = engine () in
  let i1 = Runtime.instantiate e in
  Alcotest.(check int) "slot 0 first" 0 (Runtime.instance_id i1);
  ignore (expect_ok (Runtime.invoke i1 "store" [ 16L; 1234L ]));
  Alcotest.(check int64) "written" 1234L (expect_ok (Runtime.invoke i1 "load" [ 16L ]));
  let i2 = Runtime.instantiate e in
  Alcotest.(check int) "slot 1 next" 1 (Runtime.instance_id i2);
  Alcotest.(check bool) "separate heaps" true (Runtime.heap_base i1 <> Runtime.heap_base i2);
  Alcotest.(check int64) "i2 unaffected" 0L (expect_ok (Runtime.invoke i2 "load" [ 16L ]));
  Runtime.release i1;
  let i3 = Runtime.instantiate e in
  Alcotest.(check int) "slot recycled" 0 (Runtime.instance_id i3);
  (* Wasmtime zeroes recycled slots with madvise. *)
  Alcotest.(check int64) "recycled memory zeroed" 0L (expect_ok (Runtime.invoke i3 "load" [ 16L ]))

let test_memory_grow () =
  let e = engine () in
  let i = Runtime.instantiate e in
  Alcotest.(check int64) "initial size" 2L (expect_ok (Runtime.invoke i "size" []));
  Alcotest.(check int64) "grow returns old size" 2L (expect_ok (Runtime.invoke i "grow" [ 3L ]));
  Alcotest.(check int64) "size updated" 5L (expect_ok (Runtime.invoke i "size" []));
  Alcotest.(check int) "runtime view agrees" 5 (Runtime.memory_pages i);
  (* The grown page is usable... *)
  ignore (expect_ok (Runtime.invoke i "store" [ Int64.of_int ((4 * 65536) + 8); 7L ]));
  (* ...but past the bound still traps. *)
  (match Runtime.invoke i "load" [ Int64.of_int (5 * 65536) ] with
  | Error X.Trap_out_of_bounds -> ()
  | _ -> Alcotest.fail "expected oob after growth limit");
  (* Growing past the declared max fails with -1. *)
  Alcotest.(check int64) "grow beyond max" 0xFFFFFFFFL
    (expect_ok (Runtime.invoke i "grow" [ 1000L ]))

let test_read_write_memory () =
  let e = engine () in
  let i = Runtime.instantiate e in
  Runtime.write_memory i ~addr:100 "payload";
  Alcotest.(check string) "host read back" "payload" (Runtime.read_memory i ~addr:100 ~len:7);
  Alcotest.(check int64) "sandbox sees host writes" (Int64.of_int (Char.code 'p'))
    (Int64.logand (expect_ok (Runtime.invoke i "load" [ 100L ])) 0xFFL)

let test_colorguard_isolation () =
  (* Striped pool without the 16 MiB of guard between slots: slot 1's
     memory begins within slot 0's 4 GiB index range. An OOB access from
     slot 0 that lands exactly on slot 1's memory must trap via MPK. *)
  let layout = small_pool ~stripe:true in
  Alcotest.(check bool) "slots are adjacent (no interior guards)" true
    (layout.Pool.slot_bytes < 8 * Units.mib + 1);
  let e = engine ~allocator:(Runtime.Pool layout) ~colorguard:true () in
  let i0 = Runtime.instantiate e in
  let i1 = Runtime.instantiate e in
  Alcotest.(check bool) "distinct colors" true (Runtime.color i0 <> Runtime.color i1);
  (* Put a secret in i1 at offset 64. *)
  ignore (expect_ok (Runtime.invoke i1 "store" [ 64L; 0x5EC2E7L ]));
  let delta = Runtime.heap_base i1 - Runtime.heap_base i0 in
  Alcotest.(check bool) "within 32-bit index range" true (delta > 0 && delta + 64 < 0x1_0000_0000);
  (* In-bounds access from i0 still works... *)
  ignore (expect_ok (Runtime.invoke i0 "load" [ 0L ]));
  (* ...but reaching into i1's pages traps on the color mismatch. *)
  (match Runtime.invoke i0 "load" [ Int64.of_int (delta + 64) ] with
  | Error X.Trap_out_of_bounds -> ()
  | Ok v -> Alcotest.failf "ISOLATION BREACH: read neighbour's %Ld" v
  | Error k -> Alcotest.failf "wrong trap: %s" (X.trap_name k));
  (match Runtime.invoke i0 "store" [ Int64.of_int (delta + 64); 0L ] with
  | Error X.Trap_out_of_bounds -> ()
  | Ok _ -> Alcotest.fail "ISOLATION BREACH: wrote neighbour's memory"
  | Error k -> Alcotest.failf "wrong trap: %s" (X.trap_name k));
  (* And the secret is intact. *)
  Alcotest.(check int64) "secret intact" 0x5EC2E7L
    (expect_ok (Runtime.invoke i1 "load" [ 64L ]))

let test_colorguard_same_color_distance () =
  (* Two same-colored slots are a full stripe period apart, beyond the
     33-bit reach of any sandboxed access. *)
  let layout = small_pool ~stripe:true in
  let stripes = layout.Pool.num_stripes in
  Alcotest.(check bool) "multiple stripes" true (stripes > 1);
  Alcotest.(check bool) "same-color distance exceeds reach" true
    (Pool.bytes_to_next_stripe_slot layout >= (4 * Units.mib) + (16 * Units.mib))

let test_epochs () =
  let e = engine () in
  let i = Runtime.instantiate e in
  let act = Runtime.start_call i "spin" [ 200000L ] in
  let steps = ref 0 in
  let rec drive () =
    incr steps;
    if !steps > 10000 then Alcotest.fail "never finished"
    else
      match Runtime.step act ~fuel:10_000 with
      | `More -> drive ()
      | `Done v -> v
      | `Trapped k -> Alcotest.failf "trapped: %s" (X.trap_name k)
      | `Fault f -> Alcotest.failf "fault: %s" (Runtime.fault_name f)
  in
  let v = drive () in
  Alcotest.(check bool) "preempted at least a few times" true (!steps > 3);
  (* sum 0..199999 mod 2^32 *)
  let expected = Int64.logand (Int64.of_int (200000 * 199999 / 2)) 0xFFFFFFFFL in
  Alcotest.(check int64) "result across epochs" expected (Int64.logand v 0xFFFFFFFFL)

let test_interleaved_activations () =
  (* Two instances progress in alternating epochs over one machine: the
     user-level context switching of §2. *)
  let e = engine () in
  let i1 = Runtime.instantiate e in
  let i2 = Runtime.instantiate e in
  let a1 = Runtime.start_call i1 "spin" [ 50000L ] in
  let a2 = Runtime.start_call i2 "spin" [ 60000L ] in
  let r1 = ref None and r2 = ref None in
  let guard = ref 0 in
  while (!r1 = None || !r2 = None) && !guard < 10000 do
    incr guard;
    (if !r1 = None then
       match Runtime.step a1 ~fuel:5000 with `Done v -> r1 := Some v | _ -> ());
    if !r2 = None then
      match Runtime.step a2 ~fuel:5000 with `Done v -> r2 := Some v | _ -> ()
  done;
  let low32 v = Int64.logand v 0xFFFFFFFFL in
  Alcotest.(check (option int64)) "first result"
    (Some (low32 (Int64.of_int (50000 * 49999 / 2))))
    (Option.map low32 !r1);
  Alcotest.(check (option int64)) "second result"
    (Some (low32 (Int64.of_int (60000 * 59999 / 2))))
    (Option.map low32 !r2)

let test_transition_accounting () =
  let e = engine () in
  let i = Runtime.instantiate e in
  Runtime.reset_metrics e;
  ignore (expect_ok (Runtime.invoke i "size" []));
  Alcotest.(check int) "an invocation is two transitions" 2 (Runtime.transitions e);
  Alcotest.(check bool) "time advanced" true (Runtime.elapsed_ns e > 0.0)

let test_colorguard_transition_cost () =
  let plain = engine () in
  let cg = engine ~allocator:(Runtime.Pool (small_pool ~stripe:true)) ~colorguard:true () in
  let cost e =
    let i = Runtime.instantiate e in
    ignore (expect_ok (Runtime.invoke i "size" []));
    Runtime.reset_metrics e;
    for _ = 1 to 100 do
      ignore (expect_ok (Runtime.invoke i "size" []))
    done;
    Runtime.elapsed_ns e /. float_of_int (Runtime.transitions e)
  in
  let base = cost plain and with_cg = cost cg in
  (* ~40 cycles = ~18 ns at 2.2 GHz per direction (§6.4.1). *)
  Alcotest.(check bool) "pkru switch adds 15-25 ns per transition" true
    (with_cg -. base > 15.0 && with_cg -. base < 25.0)

let test_pool_exhaustion () =
  let e = engine ~allocator:(Runtime.Pool (small_pool ~stripe:false)) () in
  let instances = List.init 8 (fun _ -> Runtime.instantiate e) in
  (try
     ignore (Runtime.instantiate e);
     Alcotest.fail "pool should be exhausted"
   with Runtime.Fault Runtime.Pool_exhausted -> ());
  (match Runtime.try_instantiate e with
  | Error Runtime.Pool_exhausted -> ()
  | _ -> Alcotest.fail "try_instantiate should report pool exhaustion");
  Runtime.release (List.hd instances);
  ignore (Runtime.instantiate e)

let test_fault_recovery () =
  (* A trap under [invoke_protected] kills the instance, recycles the slot,
     and the engine keeps serving — no host exception. *)
  let e = engine ~allocator:(Runtime.Pool (small_pool ~stripe:true)) ~colorguard:true () in
  let victim = Runtime.instantiate e in
  let bad = Runtime.instantiate e in
  ignore (expect_ok (Runtime.invoke victim "store" [ 8L; 77L ]));
  let bad_slot = Runtime.instance_id bad in
  (match Runtime.invoke_protected bad "load" [ Int64.of_int (64 * Units.mib) ] with
  | Error (Runtime.Trap X.Trap_out_of_bounds) -> ()
  | Ok v -> Alcotest.failf "oob load returned %Ld" v
  | Error f -> Alcotest.failf "wrong fault: %s" (Runtime.fault_name f));
  Alcotest.(check bool) "faulting instance is dead" false (Runtime.live bad);
  (match Runtime.invoke_protected bad "load" [ 0L ] with
  | Error Runtime.Instance_dead -> ()
  | _ -> Alcotest.fail "dead instance should report Instance_dead");
  (* The survivor is untouched and the engine still serves. *)
  Alcotest.(check int64) "survivor memory intact" 77L
    (expect_ok (Runtime.invoke victim "load" [ 8L ]));
  let fresh = Runtime.instantiate e in
  Alcotest.(check int) "killed slot recycled" bad_slot (Runtime.instance_id fresh);
  Alcotest.(check int64) "recycled slot zeroed" 0L
    (expect_ok (Runtime.invoke fresh "load" [ 0L ]))

let test_watchdog_deadline () =
  (* A runaway activation is killed once it overruns its fuel deadline. *)
  let e = engine () in
  let i = Runtime.instantiate e in
  let act = Runtime.start_call ~deadline_fuel:30_000 i "spin" [ 1_000_000_000L ] in
  let rec drive n =
    if n > 100 then Alcotest.fail "watchdog never fired"
    else
      match Runtime.step act ~fuel:10_000 with
      | `More -> drive (n + 1)
      | `Fault Runtime.Fuel_exhausted -> n
      | `Done _ -> Alcotest.fail "runaway loop finished?"
      | `Trapped k -> Alcotest.failf "trapped: %s" (X.trap_name k)
      | `Fault f -> Alcotest.failf "wrong fault: %s" (Runtime.fault_name f)
  in
  let epochs = drive 1 in
  Alcotest.(check bool) "killed around the deadline" true (epochs >= 3 && epochs <= 5);
  Alcotest.(check bool) "instance killed by watchdog" false (Runtime.live i);
  (* A fresh instance on the recycled slot still works. *)
  let j = Runtime.instantiate e in
  Alcotest.(check int64) "engine keeps serving" 0L (expect_ok (Runtime.invoke j "load" [ 0L ]))

let test_invoke_fuel_fault () =
  let e = engine () in
  let i = Runtime.instantiate e in
  (try
     ignore (Runtime.invoke ~fuel:100 i "spin" [ 1_000_000L ]);
     Alcotest.fail "expected Fuel_exhausted"
   with Runtime.Fault Runtime.Fuel_exhausted -> ());
  (match Runtime.invoke_protected ~fuel:100 i "spin" [ 1_000_000L ] with
  | Error Runtime.Fuel_exhausted -> ()
  | _ -> Alcotest.fail "invoke_protected should contain fuel exhaustion")

let test_retry_queue () =
  (* Pool full: tickets park in FIFO order, get slots as kills free them,
     and overflow beyond the queue capacity is shed. *)
  let e =
    Runtime.create_engine
      ~allocator:(Runtime.Pool (small_pool ~stripe:false))
      ~retry_queue_capacity:2
      (Codegen.compile (Codegen.default_config ()) (touch_module ()))
  in
  let instances = Array.init 8 (fun _ -> Runtime.instantiate e) in
  (match Runtime.instantiate_queued e ~ticket:100 with
  | `Wait -> ()
  | _ -> Alcotest.fail "ticket 100 should wait");
  (match Runtime.instantiate_queued e ~ticket:101 with
  | `Wait -> ()
  | _ -> Alcotest.fail "ticket 101 should wait");
  (match Runtime.instantiate_queued e ~ticket:102 with
  | `Rejected -> ()
  | _ -> Alcotest.fail "queue full: ticket 102 should be rejected");
  Alcotest.(check int) "two waiters" 2 (Runtime.waiting e);
  Runtime.kill instances.(3);
  (* The freed slot goes to the queue head, not a line-jumper. *)
  (match Runtime.instantiate_queued e ~ticket:101 with
  | `Wait -> ()
  | _ -> Alcotest.fail "ticket 101 must not jump the queue");
  (match Runtime.instantiate_queued e ~ticket:100 with
  | `Ready inst -> Alcotest.(check int) "head got the killed slot" 3 (Runtime.instance_id inst)
  | _ -> Alcotest.fail "queue head should get the freed slot");
  Runtime.kill instances.(5);
  (match Runtime.instantiate_queued e ~ticket:101 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "next waiter should get the next slot");
  Alcotest.(check int) "queue drained" 0 (Runtime.waiting e)

let test_fault_attribution () =
  (* The faulting address from the machine attributes to the right slot. *)
  let layout = small_pool ~stripe:true in
  let e = engine ~allocator:(Runtime.Pool layout) ~colorguard:true () in
  let i0 = Runtime.instantiate e in
  let i1 = Runtime.instantiate e in
  let delta = Runtime.heap_base i1 - Runtime.heap_base i0 in
  (match Runtime.invoke_protected i0 "load" [ Int64.of_int (delta + 64) ] with
  | Error (Runtime.Trap X.Trap_out_of_bounds) -> ()
  | _ -> Alcotest.fail "expected mpk trap");
  (match Runtime.last_fault_info e with
  | None -> Alcotest.fail "no fault metadata recorded"
  | Some { Machine.fault_addr; fault_write } ->
      Alcotest.(check bool) "a read fault" false fault_write;
      Alcotest.(check int) "faulting address is i1's heap + 64"
        (Runtime.heap_base i1 + 64) fault_addr;
      (match Runtime.attribute_address e fault_addr with
      | `Slot s -> Alcotest.(check int) "attributed to the neighbour slot" 1 s
      | `Guard _ | `Host -> Alcotest.fail "should attribute to a slot"))

let test_import_dispatch () =
  let b = create ~memory_pages:1 () in
  let log = import b "observe" ~params:[ W.I32; W.I32; W.I32 ] ~results:[ W.I32 ] in
  let f = declare b "f" ~params:[] ~results:[ W.I32 ] () in
  define b f [ i32 10; i32 20; i32 30; call log ];
  let m = build b in
  let e = Runtime.create_engine (Codegen.compile (Codegen.default_config ()) m) in
  let seen = ref [] in
  Runtime.register_import e "observe" (fun _ args ->
      seen := Array.to_list args;
      99L);
  let i = Runtime.instantiate e in
  Alcotest.(check int64) "import result" 99L (expect_ok (Runtime.invoke i "f" []));
  Alcotest.(check (list int64)) "arguments in order" [ 10L; 20L; 30L ] !seen

(* §4.1: Wasm2c sets the segment base on entry from outside the module;
   intra-module calls use the path that elides the reset. One invocation of
   an export that makes many internal calls must execute exactly one
   wrgsbase. *)
let test_segment_base_once_per_entry () =
  let b = create ~memory_pages:1 () in
  let leaf = declare b "leaf" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b leaf [ get 0; i32 0; load32 (); add ];
  let run = declare b "run" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b run ~locals:[ W.I32; W.I32 ]
    (for_loop ~i:1 ~start:[ i32 0 ] ~stop:[ get 0 ]
       [ get 2; call leaf; set 2 ]
    @ [ get 2 ]);
  let m = build b in
  let cfg = Codegen.default_config ~strategy:Strategy.segue () in
  let e = Runtime.create_engine (Codegen.compile cfg m) in
  let i = Runtime.instantiate e in
  Runtime.reset_metrics e;
  (match Runtime.invoke i "run" [ 50L ] with
  | Ok _ -> ()
  | Error k -> Alcotest.failf "trap: %s" (X.trap_name k));
  let c = Machine.counters (Runtime.machine e) in
  Alcotest.(check int) "one wrgsbase per sandbox entry, none per internal call" 1
    c.Machine.seg_base_writes

(* The per-domain counters live in Domain.DLS, so they die with their
   worker domain: a parent reading [domain_metrics ()] after the join
   observes none of the child's work. Multi-domain harnesses must
   snapshot inside each worker and combine with [merged_metrics] — this
   is the per-domain metrics-lifetime bug the sharded sim exposed. *)
let test_domain_metrics_harvest () =
  Runtime.reset_domain_metrics ();
  let work () =
    Runtime.reset_domain_metrics ();
    let e = engine () in
    let i = Runtime.instantiate e in
    ignore (expect_ok (Runtime.invoke i "spin" [ 100L ]));
    Runtime.domain_metrics ()
  in
  let child = Domain.join (Domain.spawn work) in
  Alcotest.(check bool) "child harvested its own transitions" true
    (child.Runtime.m_transitions > 0);
  Alcotest.(check int) "child's DLS counters die with its domain" 0
    (Runtime.domain_metrics ()).Runtime.m_transitions;
  let parent = work () in
  let merged = Runtime.merged_metrics [ parent; child ] in
  Alcotest.(check int) "merged_metrics sees both domains"
    (parent.Runtime.m_transitions + child.Runtime.m_transitions)
    merged.Runtime.m_transitions;
  Alcotest.(check int) "warm+cold instantiations summed"
    (parent.Runtime.m_instantiations_cold + child.Runtime.m_instantiations_cold)
    merged.Runtime.m_instantiations_cold;
  Alcotest.(check bool) "zero_metrics is the identity" true
    (Runtime.add_metrics Runtime.zero_metrics merged = merged)

let tests =
  [
    Harness.case "lifecycle and recycling" test_lifecycle_and_recycling;
    Harness.case "memory grow" test_memory_grow;
    Harness.case "host memory access" test_read_write_memory;
    Harness.case "colorguard isolation" test_colorguard_isolation;
    Harness.case "same-color distance" test_colorguard_same_color_distance;
    Harness.case "epoch preemption" test_epochs;
    Harness.case "interleaved activations" test_interleaved_activations;
    Harness.case "transition accounting" test_transition_accounting;
    Harness.case "colorguard transition cost" test_colorguard_transition_cost;
    Harness.case "pool exhaustion" test_pool_exhaustion;
    Harness.case "fault recovery" test_fault_recovery;
    Harness.case "watchdog deadline" test_watchdog_deadline;
    Harness.case "invoke fuel fault" test_invoke_fuel_fault;
    Harness.case "bounded retry queue" test_retry_queue;
    Harness.case "fault attribution" test_fault_attribution;
    Harness.case "import dispatch" test_import_dispatch;
    Harness.case "segment base once per entry (sec 4.1)" test_segment_base_once_per_entry;
    Harness.case "domain metrics harvest across domains" test_domain_metrics_harvest;
  ]
