(* Tests for the virtual-memory substrate: VMAs, MPK, TLB and MTE. *)

module Space = Sfi_vmem.Space
module Prot = Sfi_vmem.Prot
module Mpk = Sfi_vmem.Mpk
module Tlb = Sfi_vmem.Tlb
module Mte = Sfi_vmem.Mte

let ok = function Ok () -> () | Error m -> Alcotest.failf "unexpected error: %s" m
let err what = function Ok () -> Alcotest.failf "expected failure: %s" what | Error _ -> ()

let page = Space.page_size
let mb = 1 lsl 20

let test_map_unmap () =
  let s = Space.create () in
  ok (Space.map s ~addr:mb ~len:(4 * page) ~prot:Prot.rw);
  Alcotest.(check int) "one vma" 1 (Space.vma_count s);
  err "overlap" (Space.map s ~addr:(mb + page) ~len:page ~prot:Prot.rw);
  err "unaligned addr" (Space.map s ~addr:(mb + 1) ~len:page ~prot:Prot.rw);
  err "empty" (Space.map s ~addr:(2 * mb) ~len:0 ~prot:Prot.rw);
  (match Space.find_vma s (mb + page) with
  | Some v ->
      Alcotest.(check int) "vma start" mb v.Space.start;
      Alcotest.(check int) "vma len" (4 * page) v.Space.len
  | None -> Alcotest.fail "vma not found");
  Space.write64 s mb 0xDEADL;
  ok (Space.unmap s ~addr:mb ~len:(4 * page));
  Alcotest.(check int) "no vmas" 0 (Space.vma_count s);
  Alcotest.(check bool) "contents dropped" true (Space.read64 s mb = 0L)

let test_protect_split_merge () =
  let s = Space.create () in
  ok (Space.map s ~addr:mb ~len:(8 * page) ~prot:Prot.rw);
  (* Protect the middle: the VMA must split into three. *)
  ok (Space.protect s ~addr:(mb + (2 * page)) ~len:(2 * page) ~prot:Prot.none);
  Alcotest.(check int) "split into three" 3 (Space.vma_count s);
  (* Restore: the kernel-style merge collapses them back into one. *)
  ok (Space.protect s ~addr:(mb + (2 * page)) ~len:(2 * page) ~prot:Prot.rw);
  Alcotest.(check int) "merged back" 1 (Space.vma_count s);
  err "protect unmapped" (Space.protect s ~addr:(16 * mb) ~len:page ~prot:Prot.rw)

let test_pkey_and_access () =
  let s = Space.create () in
  ok (Space.map s ~addr:mb ~len:(2 * page) ~prot:Prot.rw);
  ok (Space.pkey_protect s ~addr:mb ~len:(2 * page) ~prot:Prot.rw ~key:5);
  (match Space.page_info s ~addr:mb with
  | Some (_, key) -> Alcotest.(check int) "pkey stored" 5 key
  | None -> Alcotest.fail "unmapped");
  let allow5 = Mpk.allow_only [ 0; 5 ] in
  let allow7 = Mpk.allow_only [ 0; 7 ] in
  Alcotest.(check bool) "pkey allows" true
    (Space.check_access s ~pkru:allow5 ~addr:mb ~len:8 ~write:true = Ok ());
  (match Space.check_access s ~pkru:allow7 ~addr:mb ~len:8 ~write:false with
  | Error Prot.Pkey_violation -> ()
  | _ -> Alcotest.fail "expected pkey violation");
  (* Unmapped and protection faults are distinguished. *)
  (match Space.check_access s ~pkru:Mpk.allow_all ~addr:(64 * mb) ~len:8 ~write:false with
  | Error Prot.Unmapped -> ()
  | _ -> Alcotest.fail "expected unmapped");
  ok (Space.protect s ~addr:mb ~len:page ~prot:Prot.r);
  (match Space.check_access s ~pkru:Mpk.allow_all ~addr:mb ~len:8 ~write:true with
  | Error Prot.Prot_violation -> ()
  | _ -> Alcotest.fail "expected prot violation");
  (* A range straddling two pages checks both. *)
  (match
     Space.check_access s ~pkru:Mpk.allow_all ~addr:(mb + (2 * page) - 4) ~len:8 ~write:false
   with
  | Error Prot.Unmapped -> ()
  | _ -> Alcotest.fail "straddle should fault on the unmapped second page")

let test_madvise_zeroes_but_keeps_layout () =
  let s = Space.create () in
  ok (Space.map s ~addr:mb ~len:page ~prot:Prot.rw);
  ok (Space.pkey_protect s ~addr:mb ~len:page ~prot:Prot.rw ~key:3);
  Space.write64 s mb 77L;
  let generation = Space.generation s in
  ok (Space.madvise_dontneed s ~addr:mb ~len:page);
  Alcotest.(check int64) "zeroed" 0L (Space.read64 s mb);
  (match Space.page_info s ~addr:mb with
  | Some (prot, key) ->
      Alcotest.(check bool) "still writable" true prot.Prot.write;
      (* The MPK color survives madvise — the §7 contrast with MTE. *)
      Alcotest.(check int) "color survives" 3 key
  | None -> Alcotest.fail "mapping lost");
  Alcotest.(check int) "no layout change" generation (Space.generation s)

let test_max_map_count () =
  let s = Space.create ~max_map_count:3 () in
  ok (Space.map s ~addr:mb ~len:page ~prot:Prot.rw);
  ok (Space.map s ~addr:(2 * mb) ~len:page ~prot:Prot.rw);
  ok (Space.map s ~addr:(3 * mb) ~len:page ~prot:Prot.rw);
  err "vma budget" (Space.map s ~addr:(4 * mb) ~len:page ~prot:Prot.rw);
  Alcotest.(check int) "reports limit" 3 (Space.max_map_count s)

let test_data_ops () =
  let s = Space.create () in
  ok (Space.map s ~addr:mb ~len:(2 * page) ~prot:Prot.rw);
  Space.write8 s mb 0xAB;
  Alcotest.(check int) "u8" 0xAB (Space.read8 s mb);
  Space.write16 s (mb + 1) 0xBEEF;
  Alcotest.(check int) "u16" 0xBEEF (Space.read16 s (mb + 1));
  Space.write32 s (mb + 8) 0xCAFE1234l;
  Alcotest.(check int32) "u32" 0xCAFE1234l (Space.read32 s (mb + 8));
  (* Cross-page accesses. *)
  let edge = mb + page - 4 in
  Space.write64 s edge 0x1122334455667788L;
  Alcotest.(check int64) "u64 cross page" 0x1122334455667788L (Space.read64 s edge);
  Space.write_bytes s ~addr:(mb + 100) (Bytes.of_string "hello world");
  Alcotest.(check string) "bytes roundtrip" "hello world"
    (Bytes.to_string (Space.read_bytes s ~addr:(mb + 100) ~len:11));
  Space.fill s ~addr:(mb + 200) ~len:300 ~byte:0x7;
  Alcotest.(check int) "fill" 7 (Space.read8 s (mb + 499));
  (* Overlapping copy is memmove-safe. *)
  Space.write_bytes s ~addr:(mb + 600) (Bytes.of_string "abcdef");
  Space.copy s ~src:(mb + 600) ~dst:(mb + 602) ~len:6;
  Alcotest.(check string) "memmove semantics" "ababcdef"
    (Bytes.to_string (Space.read_bytes s ~addr:(mb + 600) ~len:8));
  Alcotest.(check bool) "resident pages tracked" true (Space.resident_pages s > 0)

let test_mpk () =
  Alcotest.(check bool) "allow_all allows" true (Mpk.allows Mpk.allow_all ~key:9 ~write:true);
  let pkru = Mpk.allow_only [ 0; 4 ] in
  Alcotest.(check bool) "key 0" true (Mpk.allows pkru ~key:0 ~write:true);
  Alcotest.(check bool) "key 4" true (Mpk.allows pkru ~key:4 ~write:true);
  Alcotest.(check bool) "key 5 read" false (Mpk.allows pkru ~key:5 ~write:false);
  Alcotest.(check bool) "key 5 write" false (Mpk.allows pkru ~key:5 ~write:true);
  Alcotest.(check int) "15 usable colors" 15 Mpk.max_usable_keys;
  Alcotest.check_raises "bad key" (Invalid_argument "Mpk: key 16 out of range") (fun () ->
      ignore (Mpk.allow_only [ 16 ]))

let test_tlb () =
  let t = Tlb.create { Tlb.entries = 8; ways = 2; page_walk_levels = 4; walk_cycles_per_level = 5 }
  in
  Alcotest.(check int) "walk cost" 20 (Tlb.walk_cost t);
  Alcotest.(check bool) "cold miss" true (Tlb.lookup t ~page:1 = None);
  Tlb.fill t ~page:1 ~payload:42;
  Alcotest.(check (option int)) "hit returns payload" (Some 42) (Tlb.lookup t ~page:1);
  (* Fill a 2-way set beyond capacity: pages 1, 5, 9 map to the same set
     (4 sets); the LRU entry is evicted. *)
  Tlb.fill t ~page:5 ~payload:1;
  ignore (Tlb.lookup t ~page:1);
  (* 1 is now most recent; adding 9 evicts 5 *)
  Tlb.fill t ~page:9 ~payload:2;
  Alcotest.(check (option int)) "lru survivor" (Some 42) (Tlb.lookup t ~page:1);
  Alcotest.(check bool) "lru victim gone" true (Tlb.lookup t ~page:5 = None);
  Alcotest.(check bool) "hits counted" true (Tlb.hits t > 0);
  Alcotest.(check bool) "misses counted" true (Tlb.misses t > 0);
  Tlb.flush t;
  Alcotest.(check bool) "flush empties" true (Tlb.lookup t ~page:1 = None);
  Tlb.reset_counters t;
  Alcotest.(check int) "counters reset" 0 (Tlb.hits t)

(* Each fill must be a recency event of its own. Before the clock bump in
   [fill_slot], a filled line reused the last lookup's stamp: two
   back-to-back fills into one set tied at the same stamp and the second
   evicted the first, and a just-filled line lost LRU ties against lines
   touched long before it. *)
let test_tlb_fill_recency () =
  let t = Tlb.create { Tlb.entries = 2; ways = 2; page_walk_levels = 4; walk_cycles_per_level = 5 }
  in
  (* one set, two ways: consecutive fills must occupy distinct ways *)
  Tlb.fill t ~page:0 ~payload:10;
  Tlb.fill t ~page:1 ~payload:11;
  Alcotest.(check (option int)) "first fill survives the second" (Some 10) (Tlb.lookup t ~page:0);
  Alcotest.(check (option int)) "second fill present" (Some 11) (Tlb.lookup t ~page:1);
  (* page 1 is now older than page 0 (both were just looked up, page 1
     first): a fill evicts page 1, and the freshly filled page 2 must in
     turn survive the next fill while page 0 - older than it - is evicted *)
  ignore (Tlb.lookup t ~page:1);
  ignore (Tlb.lookup t ~page:0);
  Tlb.fill t ~page:2 ~payload:12;
  Alcotest.(check bool) "lru line evicted" true (Tlb.lookup t ~page:1 = None);
  Tlb.fill t ~page:3 ~payload:13;
  Alcotest.(check (option int)) "just-filled line outranks older lines" (Some 12)
    (Tlb.lookup t ~page:2);
  Alcotest.(check bool) "older line was the victim" true (Tlb.lookup t ~page:0 = None)

let test_mte () =
  let m = Mte.create () in
  Alcotest.(check int) "untagged is 0" 0 (Mte.tag_of m ~addr:0x100);
  Mte.st2g m ~addr:0x100 ~tag:7;
  Alcotest.(check int) "tagged" 7 (Mte.tag_of m ~addr:0x100);
  Alcotest.(check int) "st2g covers two granules" 7 (Mte.tag_of m ~addr:0x110);
  Alcotest.(check int) "third granule untouched" 0 (Mte.tag_of m ~addr:0x120);
  Alcotest.(check bool) "check matches" true (Mte.check m ~addr:0x100 ~ptr_tag:7);
  Alcotest.(check bool) "check mismatch" false (Mte.check m ~addr:0x100 ~ptr_tag:3);
  Mte.reset_counters m;
  (* Observation 1: a 64 KiB memory takes 2048 user tagging instructions. *)
  let instrs = Mte.tag_range_user m ~addr:0 ~len:65536 ~tag:5 in
  Alcotest.(check int) "2048 st2g per 64 KiB" 2048 instrs;
  Alcotest.(check int) "counter matches" 2048 (Mte.user_tag_instructions m);
  (* Observation 2: discard clears tags (madvise behaviour). *)
  let granules = Mte.discard_range m ~addr:0 ~len:65536 in
  Alcotest.(check int) "4096 granules per 64 KiB" 4096 granules;
  Alcotest.(check int) "tags gone" 0 (Mte.tag_of m ~addr:0x40);
  (* count_mismatched drives the proposed tag-preserving recycle path. *)
  Alcotest.(check int) "all mismatch after discard" 4096
    (Mte.count_mismatched m ~addr:0 ~len:65536 ~tag:5);
  ignore (Mte.tag_range_user m ~addr:0 ~len:65536 ~tag:5);
  Alcotest.(check int) "none mismatch when retagged" 0
    (Mte.count_mismatched m ~addr:0 ~len:65536 ~tag:5);
  Alcotest.(check int) "different color mismatches everywhere" 4096
    (Mte.count_mismatched m ~addr:0 ~len:65536 ~tag:7)

let prop_space_roundtrip =
  QCheck.Test.make ~name:"space write64/read64 roundtrip at random offsets" ~count:300
    QCheck.(pair (int_bound (4 * page - 8)) int64)
    (fun (off, v) ->
      let s = Space.create () in
      (match Space.map s ~addr:mb ~len:(4 * page) ~prot:Prot.rw with
      | Ok () -> ()
      | Error m -> failwith m);
      Space.write64 s (mb + off) v;
      Int64.equal (Space.read64 s (mb + off)) v)

let tests =
  [
    Harness.case "map/unmap" test_map_unmap;
    Harness.case "protect split/merge" test_protect_split_merge;
    Harness.case "pkey + access checks" test_pkey_and_access;
    Harness.case "madvise keeps colors" test_madvise_zeroes_but_keeps_layout;
    Harness.case "max_map_count" test_max_map_count;
    Harness.case "data ops" test_data_ops;
    Harness.case "mpk" test_mpk;
    Harness.case "tlb" test_tlb;
    Harness.case "tlb fill recency" test_tlb_fill_recency;
    Harness.case "mte" test_mte;
    QCheck_alcotest.to_alcotest prop_space_roundtrip;
  ]
