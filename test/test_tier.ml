(* Tests for the tiered execution pipeline: profiler sample accounting
   across program swaps (the [profile_dropped] contract), eager and
   adaptive superblock promotion, bit-identity of mid-run promotion with
   the per-instruction engines (handcrafted, qcheck-random, and fuzzer
   corpus programs), trace-driven demotion of trappable superblocks, and
   the page-access-cache invalidation edge across a superblock boundary. *)

module X = Sfi_x86.Ast
module Machine = Sfi_machine.Machine
module Lockstep = Sfi_machine.Lockstep
module Space = Sfi_vmem.Space
module Prot = Sfi_vmem.Prot
module Mpk = Sfi_vmem.Mpk
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Runtime = Sfi_runtime.Runtime
module Prng = Sfi_util.Prng
module Trace = Sfi_trace.Trace
module Fuzz = Sfi_fuzz.Fuzz

let mb = 1 lsl 20

let make_machine ?(setup = fun _ -> ()) instrs () =
  let space = Space.create () in
  (match Space.map space ~addr:mb ~len:(16 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error m -> failwith m);
  let m = Machine.create space in
  Machine.load_program m (Array.of_list ((X.Label "entry" :: instrs) @ [ X.Ret ]));
  Machine.set_reg m X.RSP (Int64.of_int (mb + (8 * Space.page_size)));
  setup m;
  m

(* A pure hot loop of [n] iterations, 6 instructions per trip. *)
let loop_program n =
  [
    X.Mov (X.W64, X.Reg X.RAX, X.Imm 0L);
    X.Mov (X.W64, X.Reg X.RCX, X.Imm (Int64.of_int n));
    X.Label "loop";
    X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Reg X.RCX);
    X.Alu (X.Xor, X.W64, X.Reg X.RDX, X.Reg X.RAX);
    X.Alu (X.Add, X.W64, X.Reg X.RDX, X.Imm 3L);
    X.Alu (X.Sub, X.W64, X.Reg X.RCX, X.Imm 1L);
    X.Cmp (X.W64, X.Reg X.RCX, X.Imm 0L);
    X.Jcc (X.NE, "loop");
  ]

(* ------------------------------------------------------------------ *)
(* Satellite: profiler samples across load_program.                    *)
(* ------------------------------------------------------------------ *)

let test_profile_dropped_on_swap () =
  let m = make_machine (loop_program 200) () in
  Machine.arm_profiler ~interval:4 m;
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "loop should halt");
  let s = Machine.profile_samples m in
  Alcotest.(check bool) "collected samples" true (s > 0);
  Alcotest.(check int) "nothing dropped yet" 0 (Machine.profile_dropped m);
  (* Swapping the program invalidates every collected PC: the histogram
     indexes the old instruction array. The samples must be surfaced as
     dropped, not silently zeroed. *)
  Machine.load_program m [| X.Label "entry"; X.Nop; X.Ret |];
  Alcotest.(check int) "swap drops the histogram" s (Machine.profile_dropped m);
  Alcotest.(check int) "histogram empty after swap" 0 (Machine.profile_samples m);
  (* The profiler stays armed: the fresh program fills a fresh histogram. *)
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "nop program should halt");
  Alcotest.(check int) "dropped count is lifetime, not clobbered" s
    (Machine.profile_dropped m)

let test_disarm_sticks_under_adaptive () =
  let m = make_machine (loop_program 200) () in
  Machine.set_engine m Machine.Adaptive;
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "loop should halt");
  let s = Machine.profile_samples m in
  Alcotest.(check bool) "adaptive auto-armed the profiler" true (s > 0);
  (* An explicit disarm must survive further adaptive runs: promotion
     freezes, sampling stops, and the histogram is left readable. *)
  Machine.disarm_profiler m;
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "loop should halt");
  Alcotest.(check int) "disarmed: no new samples" s (Machine.profile_samples m)

(* ------------------------------------------------------------------ *)
(* Promotion policy: eager tier 2, adaptive, trace demotion.           *)
(* ------------------------------------------------------------------ *)

(* A pure block (entry, ends in jmp) followed by a hazardous block (the
   store) and a bypass block (the hostcall). *)
let mixed_program =
  [
    X.Mov (X.W64, X.Reg X.RAX, X.Imm 1L);
    X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Imm 2L);
    X.Jmp "stores";
    X.Label "stores";
    X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
    X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 5L);
    X.Hostcall 1;
    X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Imm 1L);
    X.Nop;
  ]

let test_tier2_eager_promotion () =
  let setup m = Machine.set_hostcall_handler m (fun _ _ -> ()) in
  let m = make_machine ~setup mixed_program () in
  Machine.set_engine m Machine.Tier2;
  let st = Machine.tier_stats m in
  Alcotest.(check bool) "blocks discovered" true (st.Machine.blocks_total >= 3);
  (* The hostcall block can never be a superblock, so promotion must stop
     short of the full block count. *)
  Alcotest.(check bool) "some blocks promoted" true (st.Machine.blocks_promoted > 0);
  Alcotest.(check bool) "bypass block not promoted" true
    (st.Machine.blocks_promoted < st.Machine.blocks_total);
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "should halt");
  Alcotest.(check bool) "instructions retired in superblocks" true
    (Machine.superblock_retired m > 0)

let test_adaptive_promotes_hot_loop () =
  let m = make_machine (loop_program 20_000) () in
  Machine.set_engine m Machine.Adaptive;
  Alcotest.(check int) "nothing promoted before running" 0
    (Machine.tier_stats m).Machine.blocks_promoted;
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "loop should halt");
  let st = Machine.tier_stats m in
  Alcotest.(check bool) "hot loop promoted mid-run" true (st.Machine.blocks_promoted > 0);
  Alcotest.(check bool) "superblock instructions retired" true
    (st.Machine.superblock_instructions > 0)

let test_trace_demotes_trappable_blocks () =
  let setup m = Machine.set_hostcall_handler m (fun _ _ -> ()) in
  let m = make_machine ~setup mixed_program () in
  Machine.set_engine m Machine.Tier2;
  let before = (Machine.tier_stats m).Machine.blocks_promoted in
  (* An enabled trace sink derives timestamps from the cycle counter, and
     a trappable superblock batches its cycle charges; those blocks fall
     back to tier 1. Pure blocks cannot trap mid-block, so they stay. *)
  Machine.set_trace m (Trace.create_ring ~capacity:64 ());
  let after = (Machine.tier_stats m).Machine.blocks_promoted in
  Alcotest.(check bool) "trappable superblocks demoted" true (after < before);
  Alcotest.(check bool) "pure superblocks survive tracing" true (after > 0);
  match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "should halt"

let test_tier_config_validated () =
  let m = make_machine [ X.Nop ] () in
  Alcotest.(check bool) "defaults exposed" true
    (Machine.tier_config m = Machine.default_tier_config);
  Alcotest.check_raises "zero stride rejected"
    (Invalid_argument "Machine.set_tier_config: knobs must be > 0") (fun () ->
      Machine.set_tier_config m { Machine.default_tier_config with Machine.stride = 0 });
  let cfg = { Machine.threshold = 2; stride = 64; min_len = 3 } in
  Machine.set_tier_config m cfg;
  Alcotest.(check bool) "knobs round-trip" true (Machine.tier_config m = cfg)

(* ------------------------------------------------------------------ *)
(* Mid-run promotion is unobservable.                                  *)
(* ------------------------------------------------------------------ *)

(* Drive two identical machines in fixed slices; promote every block on
   one of them between two slices (set_engine Tier2 mid-run) and demand
   the full snapshot stays bit-identical at every later slice edge. *)
let test_midrun_promotion_snapshot_identical () =
  let a = make_machine (loop_program 500) () in
  let b = make_machine (loop_program 500) () in
  Machine.start a ~entry:"entry";
  Machine.start b ~entry:"entry";
  let stride = 57 in
  let slice = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    incr slice;
    if !slice = 4 then Machine.set_engine b Machine.Tier2;
    let sa = Machine.run a ~fuel:stride in
    let sb = Machine.run b ~fuel:stride in
    if sa <> sb then Alcotest.failf "status diverged at slice %d" !slice;
    if Machine.snapshot a <> Machine.snapshot b then
      Alcotest.failf "snapshot diverged at slice %d" !slice;
    if sa <> Machine.Yielded then continue_ := false
  done;
  Alcotest.(check bool) "promoted machine actually used superblocks" true
    (Machine.superblock_retired b > 0)

(* The same property via Lockstep: a stride wide enough to enter
   superblocks, reference vs the two tiered engines. *)
let lockstep_tiered ?setup engines instrs =
  match
    Lockstep.run_pair ~engines ~stride:97 ~make:(make_machine ?setup instrs) ~entry:"entry"
      ()
  with
  | Ok _ -> ()
  | Error d ->
      Alcotest.failf "engines diverged: %s" (Format.asprintf "%a" Lockstep.pp_divergence d)

let test_lockstep_tiered_engines () =
  lockstep_tiered (Machine.Reference, Machine.Tier2) (loop_program 300);
  lockstep_tiered (Machine.Threaded, Machine.Adaptive) (loop_program 300);
  lockstep_tiered
    ~setup:(fun m -> Machine.set_hostcall_handler m (fun _ _ -> ()))
    (Machine.Reference, Machine.Tier2) mixed_program

(* Randomized: the adaptive engine against the reference interpreter
   through the full Wasm pipeline. Promotion happens at chunk boundaries
   mid-invoke, so agreement here pins "promoting between run slices is
   unobservable" on generated programs. *)
let run_wasm engine m args =
  let cfg = Codegen.default_config ~strategy:Strategy.segue () in
  let compiled = Codegen.compile cfg m in
  let eng = Runtime.create_engine ~engine compiled in
  let inst = Runtime.instantiate eng in
  let result = Runtime.invoke inst "run" args in
  let mach = Runtime.machine eng in
  ( result,
    Machine.counters mach,
    Machine.dtlb_misses mach,
    Machine.dcache_misses mach,
    Runtime.read_memory inst ~addr:0 ~len:4096 )

let check_adaptive_agrees seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let m = Test_random_programs.gen_module rng in
  let a = Int64.logand (Prng.next_int64 rng) 0xFFFFFFFFL in
  let b = Prng.next_int64 rng in
  let r_res, r_c, r_tlb, r_dc, r_mem = run_wasm Machine.Reference m [ a; b ] in
  let t_res, t_c, t_tlb, t_dc, t_mem = run_wasm Machine.Adaptive m [ a; b ] in
  (match (r_res, t_res) with
  | Ok rv, Ok tv ->
      if rv <> tv then QCheck.Test.fail_reportf "seed %d: result %Ld vs %Ld" seed rv tv
  | Error rk, Error tk ->
      if rk <> tk then
        QCheck.Test.fail_reportf "seed %d: trap %s vs %s" seed (X.trap_name rk)
          (X.trap_name tk)
  | Ok rv, Error tk ->
      QCheck.Test.fail_reportf "seed %d: reference %Ld, adaptive trapped %s" seed rv
        (X.trap_name tk)
  | Error rk, Ok tv ->
      QCheck.Test.fail_reportf "seed %d: reference trapped %s, adaptive %Ld" seed
        (X.trap_name rk) tv);
  if r_c <> t_c then QCheck.Test.fail_reportf "seed %d: counters diverged" seed;
  if r_tlb <> t_tlb then QCheck.Test.fail_reportf "seed %d: dTLB %d vs %d" seed r_tlb t_tlb;
  if r_dc <> t_dc then QCheck.Test.fail_reportf "seed %d: dcache %d vs %d" seed r_dc t_dc;
  if not (String.equal r_mem t_mem) then
    QCheck.Test.fail_reportf "seed %d: final memory images differ" seed;
  true

let qcheck_adaptive =
  QCheck.Test.make ~count:40 ~name:"adaptive = reference on random programs"
    QCheck.(int_range 20000 29999)
    check_adaptive_agrees

(* Fuzzer corpus: a dozen generated programs through the full oracle,
   whose engine arm is now the reference / threaded / tier2 triple. Seeds
   deliberately disjoint from the test_fuzz corpus. *)
let test_fuzz_corpus_tiered () =
  for i = 0 to 11 do
    let p = Fuzz.generate (Int64.of_int (0xC0FFEE + i)) in
    let r = Fuzz.check_program p in
    match r.Fuzz.failure with
    | Some (oracle, detail) ->
        Alcotest.failf "seed %Ld: %s: %s" p.Fuzz.p_seed oracle detail
    | None -> ()
  done

(* ------------------------------------------------------------------ *)
(* Page-access cache invalidation across a superblock boundary.        *)
(* ------------------------------------------------------------------ *)

(* The hostcall mprotects the data page to read-only; the following block
   is a promoted (guarded) superblock whose store must still trap, with
   the unexecuted suffix rolled back so the snapshot matches the
   reference interpreter's. *)
let pcache_program =
  [
    X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
    X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 5L);
    X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ()));
    X.Hostcall 1;
    X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Imm 1L);
    X.Mov (X.W64, X.Reg X.RCX, X.Reg X.RAX);
    X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 6L);
    X.Alu (X.Add, X.W64, X.Reg X.RCX, X.Imm 2L);
    X.Nop;
  ]

let pcache_setup m =
  Machine.set_hostcall_handler m (fun m' _ ->
      match Space.protect (Machine.space m') ~addr:mb ~len:Space.page_size ~prot:Prot.r with
      | Ok () -> ()
      | Error e -> failwith e)

let test_pcache_superblock_boundary () =
  let run engine =
    let m = make_machine ~setup:pcache_setup pcache_program () in
    Machine.set_engine m engine;
    let st = Machine.execute m ~entry:"entry" () in
    (m, st, Machine.snapshot m)
  in
  let t2, st2, snap2 = run Machine.Tier2 in
  (match st2 with
  | Machine.Trapped X.Trap_out_of_bounds -> ()
  | Machine.Trapped k -> Alcotest.failf "wrong trap: %s" (X.trap_name k)
  | _ -> Alcotest.fail "store after mprotect must trap under tier 2");
  (* The trapping store lives inside a promoted superblock: the trap
     crossed a batched block, exercising the rollback side table. *)
  Alcotest.(check bool) "store block was promoted" true
    ((Machine.tier_stats t2).Machine.blocks_promoted > 0);
  Alcotest.(check bool) "superblock entered before the trap" true
    (Machine.superblock_retired t2 > 0);
  let _, st_ref, snap_ref = run Machine.Reference in
  if st2 <> st_ref then Alcotest.fail "status differs from reference";
  Alcotest.(check bool) "post-trap snapshot bit-identical to reference" true
    (snap2 = snap_ref)

let case name f = Alcotest.test_case name `Quick f

let tests =
  [
    case "profiler: load_program surfaces dropped samples" test_profile_dropped_on_swap;
    case "profiler: disarm sticks under adaptive" test_disarm_sticks_under_adaptive;
    case "tier2: eager promotion and stats" test_tier2_eager_promotion;
    case "adaptive: hot loop promoted mid-run" test_adaptive_promotes_hot_loop;
    case "trace: trappable superblocks demoted" test_trace_demotes_trappable_blocks;
    case "tier config: knobs validated and round-trip" test_tier_config_validated;
    case "mid-run promotion: snapshots bit-identical" test_midrun_promotion_snapshot_identical;
    case "lockstep: tiered engine pairs" test_lockstep_tiered_engines;
    QCheck_alcotest.to_alcotest qcheck_adaptive;
    case "fuzz corpus through the tiered engine arm" test_fuzz_corpus_tiered;
    case "page cache: invalidation across a superblock" test_pcache_superblock_boundary;
  ]
