(* Tests for the pooling-allocator layout, the Table 1 invariants, and the
   §5.2 verification findings (checked vs saturating arithmetic). *)

module Pool = Sfi_core.Pool
module Invariants = Sfi_core.Invariants
module Checked = Sfi_core.Checked
module Colorguard = Sfi_core.Colorguard
module Units = Sfi_util.Units

let ok_layout ?arith ?defensive p =
  match Pool.compute ?arith ?defensive p with
  | Ok l -> l
  | Error msg -> Alcotest.failf "layout rejected: %s" msg

let test_checked_arithmetic () =
  Alcotest.(check int) "add" 7 (Checked.add Checked.Checked 3 4);
  Alcotest.(check int) "mul" 12 (Checked.mul Checked.Checked 3 4);
  Alcotest.(check int) "align" 8192 (Checked.align_up Checked.Checked 4097 4096);
  Alcotest.check_raises "checked add overflows"
    (Checked.Overflow (Printf.sprintf "add %d %d" max_int 1)) (fun () ->
      ignore (Checked.add Checked.Checked max_int 1));
  Alcotest.(check int) "saturating add clamps" max_int (Checked.add Checked.Saturating max_int 1);
  Alcotest.(check int) "saturating mul clamps" max_int
    (Checked.mul Checked.Saturating max_int 2);
  Alcotest.check_raises "negative operands rejected"
    (Invalid_argument "Checked.add: negative operand") (fun () ->
      ignore (Checked.add Checked.Checked (-1) 1))

let test_unstriped_layout () =
  (* The classic 4 GiB + 4 GiB configuration of §2. *)
  let l = ok_layout Pool.default_params in
  Alcotest.(check int) "stride = 8 GiB" (8 * Units.gib) l.Pool.slot_bytes;
  Alcotest.(check int) "single stripe" 1 l.Pool.num_stripes;
  Alcotest.(check int) "color 0 everywhere" 0 (Pool.color_of_slot l 3);
  Alcotest.(check (list Alcotest.reject)) "all invariants hold" [] (Invariants.check l)

let test_shared_guard_layout () =
  (* Wasmtime's 2 GiB pre + 2 GiB post sharing: 6 GiB per slot (§5.1). *)
  let p = { Pool.default_params with Pool.pre_guard_enabled = true } in
  let l = ok_layout p in
  Alcotest.(check int) "stride = 6 GiB" (6 * Units.gib) l.Pool.slot_bytes;
  Alcotest.(check int) "pre-guard = 2 GiB" (2 * Units.gib) l.Pool.pre_slot_guard_bytes;
  Alcotest.(check int) "post-guard = 2 GiB" (2 * Units.gib) l.Pool.post_slot_guard_bytes;
  Alcotest.(check (list Alcotest.reject)) "invariants hold" [] (Invariants.check l)

let test_striped_layout () =
  let p =
    {
      Pool.num_slots = 64;
      max_memory_bytes = 408 * Units.mib;
      expected_slot_bytes = 408 * Units.mib;
      guard_bytes = 8 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = true;
    }
  in
  let l = ok_layout p in
  Alcotest.(check int) "15 stripes" 15 l.Pool.num_stripes;
  Alcotest.(check (list Alcotest.reject)) "invariants hold" [] (Invariants.check l);
  (* Colors cycle 1..15 and repeat every 15 slots. *)
  Alcotest.(check int) "first color" 1 (Pool.color_of_slot l 0);
  Alcotest.(check int) "fifteenth color" 15 (Pool.color_of_slot l 14);
  Alcotest.(check int) "sixteenth wraps" 1 (Pool.color_of_slot l 15);
  (* Same-colored slots keep the isolation distance (invariant 6). *)
  Alcotest.(check bool) "stripe distance covers reservation + guard" true
    (Pool.bytes_to_next_stripe_slot l >= (408 * Units.mib) + (8 * Units.gib));
  (* Slot bases are stride-spaced from the pre-guard. *)
  Alcotest.(check int) "slot base arithmetic"
    (l.Pool.pre_slot_guard_bytes + (7 * l.Pool.slot_bytes))
    (Pool.slot_base l 7);
  (* The headline: ~15x density (§6.4.2). *)
  let d = Pool.density_vs_unstriped p in
  Alcotest.(check bool) "density ~15x" true (d > 14.5 && d <= 15.5)

let test_key_shortage_fallback () =
  (* With too few keys the stride grows: stripes combine with guards. *)
  let p =
    {
      Pool.num_slots = 64;
      max_memory_bytes = 512 * Units.mib;
      expected_slot_bytes = 512 * Units.mib;
      guard_bytes = 4 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 3;
      stripe_enabled = true;
    }
  in
  let l = ok_layout p in
  Alcotest.(check int) "3 stripes" 3 l.Pool.num_stripes;
  Alcotest.(check bool) "stride grew beyond max_memory" true
    (l.Pool.slot_bytes > 512 * Units.mib);
  Alcotest.(check (list Alcotest.reject)) "invariants still hold" [] (Invariants.check l);
  (* Zero keys: silently an unstriped layout. *)
  let l0 = ok_layout { p with Pool.num_pkeys_available = 0 } in
  Alcotest.(check int) "no keys, no stripes" 1 l0.Pool.num_stripes

let test_defensive_preconditions () =
  let bad_cases =
    [
      ("inv 7", { Pool.default_params with Pool.expected_slot_bytes = Units.mib + 512 });
      ("inv 8", { Pool.default_params with Pool.max_memory_bytes = Units.mib + 512 });
      ("inv 9", { Pool.default_params with Pool.guard_bytes = 4097 });
      ( "inv 10",
        { Pool.default_params with Pool.num_slots = 1 lsl 22 (* 4M x 8 GiB >> 2^47 *) } );
    ]
  in
  List.iter
    (fun (name, p) ->
      match Pool.compute ~defensive:true p with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s: defensive mode should reject" name)
    bad_cases;
  (* The pre-verification allocator accepts them and the checker catches
     the violation — the dynamic version of the Flux findings. *)
  List.iter
    (fun (name, p) ->
      match Pool.compute ~defensive:false p with
      | Ok l ->
          Alcotest.(check bool)
            (name ^ " flagged by checker")
            true
            (Invariants.check l <> [])
      | Error _ -> () (* arithmetic overflow may still stop it *))
    bad_cases

let test_saturating_bug () =
  (* §5.2: the saturating addition that should have been checked. *)
  let adversarial =
    {
      Pool.num_slots = 4096;
      max_memory_bytes = 4 * Units.gib;
      expected_slot_bytes = Units.align_up (max_int / 4096) Units.wasm_page_size;
      guard_bytes = 4 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = false;
    }
  in
  (match Pool.compute ~arith:Checked.Checked ~defensive:false adversarial with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "checked arithmetic must reject");
  match Pool.compute ~arith:Checked.Saturating ~defensive:false adversarial with
  | Ok l ->
      let violations = Invariants.check l in
      Alcotest.(check bool) "saturated layout breaks invariant 1" true
        (List.exists (fun v -> v.Invariants.number = 1) violations)
  | Error _ -> Alcotest.fail "saturating mode silently accepts (that is the bug)"

let test_scaling_report () =
  let p =
    {
      Pool.num_slots = 16;
      max_memory_bytes = 408 * Units.mib;
      expected_slot_bytes = 408 * Units.mib;
      guard_bytes = 8 * Units.gib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = false;
    }
  in
  let r = Colorguard.scaling p in
  Alcotest.(check bool) "unstriped ~15.6K slots" true
    (r.Colorguard.unstriped_slots > 15_000 && r.Colorguard.unstriped_slots < 16_500);
  Alcotest.(check bool) "striped ~234K slots" true
    (r.Colorguard.striped_slots > 220_000 && r.Colorguard.striped_slots < 250_000);
  Alcotest.(check bool) "factor ~15x" true
    (r.Colorguard.factor > 14.5 && r.Colorguard.factor < 15.5);
  Alcotest.(check int) "classic limit 16K" 16384 (Colorguard.classic_max_instances ());
  Alcotest.(check int) "wasmtime limit ~21K" 21845 (Colorguard.wasmtime_default_max_instances ())

(* Property: every accepted (checked, defensive) layout satisfies all ten
   Table 1 invariants — the dynamic analogue of the Flux proof. *)
let prop_layout_invariants =
  let gen =
    QCheck.Gen.(
      let page_mult hi = map (fun k -> k * Units.wasm_page_size) (int_range 1 hi) in
      let* num_slots = int_range 1 256 in
      let* max_memory_bytes = page_mult 2048 in
      let* extra = page_mult 1024 in
      let expected_slot_bytes = max_memory_bytes + if extra mod (2 * Units.wasm_page_size) = 0 then extra else 0 in
      let* guard_pages = int_range 0 (1 lsl 16) in
      let guard_bytes = guard_pages * Units.os_page_size in
      let* pre_guard_enabled = bool in
      let* num_pkeys_available = int_range 0 15 in
      let* stripe_enabled = bool in
      return
        {
          Pool.num_slots;
          max_memory_bytes;
          expected_slot_bytes;
          guard_bytes;
          pre_guard_enabled;
          num_pkeys_available;
          stripe_enabled;
        })
  in
  QCheck.Test.make ~name:"accepted layouts satisfy all Table 1 invariants" ~count:500
    (QCheck.make gen) (fun p ->
      match Pool.compute ~arith:Checked.Checked ~defensive:true p with
      | Error _ -> true (* rejection is always safe *)
      | Ok l -> Invariants.check l = [])

let prop_density_bounded =
  QCheck.Test.make ~name:"striping density never exceeds the color budget" ~count:200
    QCheck.(pair (int_range 2 15) (int_range 1 128))
    (fun (keys, mem_pages) ->
      let p =
        {
          Pool.num_slots = 64;
          max_memory_bytes = mem_pages * Units.wasm_page_size;
          expected_slot_bytes = mem_pages * Units.wasm_page_size;
          guard_bytes = 4 * Units.gib;
          pre_guard_enabled = false;
          num_pkeys_available = keys;
          stripe_enabled = true;
        }
      in
      let d = Pool.density_vs_unstriped p in
      d <= float_of_int keys +. 0.01)

let test_mte_cost_model () =
  let cost = Colorguard.Mte_cost.default in
  let mte = Sfi_vmem.Mte.create () in
  let memory_bytes = 65536 in
  let init0 = Colorguard.Mte_cost.init_instance cost mte ~memory_bytes ~tag:0 in
  let init3 = Colorguard.Mte_cost.init_instance cost mte ~memory_bytes ~tag:3 in
  (* Paper's calibration: 79 us -> 2,182 us. *)
  Alcotest.(check bool) "init without MTE ~79us" true (Float.abs (init0 -. 79_000.0) < 1.0);
  Alcotest.(check bool) "init with MTE ~2182us" true (Float.abs (init3 -. 2_182_000.0) < 2000.0);
  let down = Colorguard.Mte_cost.teardown_instance cost mte ~memory_bytes ~mte:true in
  Alcotest.(check bool) "teardown with MTE ~377us" true (Float.abs (down -. 377_000.0) < 2000.0);
  (* The proposed madvise flag: same-color recycle becomes cheap. *)
  ignore (Colorguard.Mte_cost.init_instance cost mte ~memory_bytes ~tag:3);
  let keep = Colorguard.Mte_cost.teardown_keeping_tags cost mte ~memory_bytes in
  Alcotest.(check bool) "tag-preserving teardown ~29us" true
    (Float.abs (keep -. 29_000.0) < 1.0);
  let re_same = Colorguard.Mte_cost.reinit_instance cost mte ~memory_bytes ~tag:3 in
  Alcotest.(check bool) "same-color reinit ~ base cost" true (re_same < 100_000.0);
  let re_diff = Colorguard.Mte_cost.reinit_instance cost mte ~memory_bytes ~tag:7 in
  Alcotest.(check bool) "different color pays full retag" true (re_diff > 1_000_000.0)

module Chain = Sfi_core.Chain

let test_chain_planner () =
  let mib = Units.mib in
  let reach = 64 * mib in
  (* A mixed population: a few large slots advance all colors quickly. *)
  let sizes = [ 16 * mib; 4 * mib; 32 * mib; 4 * mib; 8 * mib; 16 * mib; 4 * mib; 64 * mib ] in
  let chain =
    match Chain.plan ~reach ~sizes () with Ok c -> c | Error m -> Alcotest.failf "plan: %s" m
  in
  (match Chain.check chain with
  | Ok () -> ()
  | Error m -> Alcotest.failf "isolation violated: %s" m);
  Alcotest.(check int) "all slots placed" (List.length sizes)
    (List.length chain.Chain.placements);
  Alcotest.(check int) "packed with no padding" 0 chain.Chain.padding_bytes;
  (* Section 3.2's claim: mixed sizes beat uniform striping. *)
  let uniform = Chain.uniform_stripe_footprint ~num_keys:15 ~reach ~sizes in
  Alcotest.(check bool) "chain denser than a uniform stripe" true
    (chain.Chain.total_bytes < uniform);
  (* Degenerate inputs. *)
  (match Chain.plan ~reach ~sizes:[] () with Error _ -> () | Ok _ -> Alcotest.fail "empty");
  (match Chain.plan ~reach ~sizes:[ 100 ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unaligned size");
  match Chain.plan ~reach:0 ~sizes:[ mib ] () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero reach"

let test_chain_forced_padding () =
  (* With one color, every slot must be a full reach apart: the planner
     pads — the guard-region fallback of §3.2. *)
  let mib = Units.mib in
  let chain =
    match Chain.plan ~num_keys:1 ~reach:(16 * mib) ~sizes:[ mib; mib; mib ] () with
    | Ok c -> c
    | Error m -> Alcotest.failf "plan: %s" m
  in
  (match Chain.check chain with Ok () -> () | Error m -> Alcotest.failf "unsafe: %s" m);
  Alcotest.(check bool) "padding inserted" true (chain.Chain.padding_bytes > 0);
  Alcotest.(check bool) "utilization is low" true (Chain.utilization chain < 0.25)

let prop_chain_isolation =
  QCheck.Test.make ~name:"planned chains always satisfy the isolation distance" ~count:200
    QCheck.(pair (int_range 1 15) (list_of_size (QCheck.Gen.int_range 1 40) (int_range 1 64)))
    (fun (keys, size_pages) ->
      QCheck.assume (size_pages <> []);
      let sizes = List.map (fun p -> p * Units.wasm_page_size) size_pages in
      match Chain.plan ~num_keys:keys ~reach:(32 * Units.wasm_page_size) ~sizes () with
      | Error _ -> false
      | Ok chain -> Chain.check chain = Ok ())

let test_fallback_statuses () =
  let striped =
    {
      Pool.num_slots = 16;
      max_memory_bytes = 4 * Units.mib;
      expected_slot_bytes = 4 * Units.mib;
      guard_bytes = 16 * Units.mib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = true;
    }
  in
  (match Pool.compute_with_fallback striped with
  | Ok (l, Pool.Striped) ->
      Alcotest.(check bool) "striping engaged" true (l.Pool.num_stripes > 1)
  | Ok (_, s) -> Alcotest.failf "expected Striped, got %a" Pool.pp_stripe_status s
  | Error m -> Alcotest.failf "rejected: %s" m);
  (* Striping requested but the key budget cannot stripe: degrade to
     guard-region isolation, never refuse to boot (Invariant 5 path). *)
  (match Pool.compute_with_fallback { striped with Pool.num_pkeys_available = 1 } with
  | Ok (l, Pool.Guards_fallback why) ->
      Alcotest.(check int) "one stripe" 1 l.Pool.num_stripes;
      Alcotest.(check bool) "reason names the key budget" true
        (String.length why > 0 && Pool.color_of_slot l 0 = 0)
  | Ok (_, s) -> Alcotest.failf "expected Guards_fallback, got %a" Pool.pp_stripe_status s
  | Error m -> Alcotest.failf "rejected: %s" m);
  (* Striping never requested: plain Unstriped. *)
  (match Pool.compute_with_fallback { striped with Pool.stripe_enabled = false } with
  | Ok (_, Pool.Unstriped) -> ()
  | Ok (_, s) -> Alcotest.failf "expected Unstriped, got %a" Pool.pp_stripe_status s
  | Error m -> Alcotest.failf "rejected: %s" m);
  (* A layout broken regardless of striping still fails loudly. *)
  match
    Pool.compute_with_fallback
      { striped with Pool.max_memory_bytes = max_int / 2; guard_bytes = max_int / 2 }
  with
  | Error _ -> ()
  | Ok (_, s) ->
      Alcotest.failf "overflowing layout accepted (%a)" Pool.pp_stripe_status s

let tests =
  [
    Harness.case "checked arithmetic" test_checked_arithmetic;
    Harness.case "unstriped layout" test_unstriped_layout;
    Harness.case "shared-guard layout" test_shared_guard_layout;
    Harness.case "striped layout" test_striped_layout;
    Harness.case "key shortage fallback" test_key_shortage_fallback;
    Harness.case "fallback statuses" test_fallback_statuses;
    Harness.case "defensive preconditions" test_defensive_preconditions;
    Harness.case "saturating bug (sec 5.2)" test_saturating_bug;
    Harness.case "scaling report" test_scaling_report;
    Harness.case "mte cost model (sec 7)" test_mte_cost_model;
    Harness.case "chain planner (sec 3.2)" test_chain_planner;
    Harness.case "chain forced padding" test_chain_forced_padding;
    QCheck_alcotest.to_alcotest prop_chain_isolation;
    QCheck_alcotest.to_alcotest prop_layout_invariants;
    QCheck_alcotest.to_alcotest prop_density_bounded;
  ]
