let () =
  Alcotest.run "sfi-repro"
    [
      ("util", Test_util.tests);
      ("x86", Test_x86.tests);
      ("vmem", Test_vmem.tests);
      ("machine", Test_machine.tests);
      ("trace", Test_trace.tests);
      ("wasm", Test_wasm.tests);
      ("pool", Test_pool.tests);
      ("checked", Test_checked.tests);
      ("runtime", Test_runtime.tests);
      ("lifecycle", Test_lifecycle.tests);
      ("inject", Test_inject.tests);
      ("lfi", Test_lfi.tests);
      ("vectorize", Test_vectorize.tests);
      ("workloads", Test_workloads.tests);
      ("faas", Test_faas.tests);
      ("resilience", Test_resilience.tests);
      ("shard", Test_shard.tests);
      ("codegen", Test_codegen.tests);
      ("figure1", Test_figure1.tests);
      ("codegen-random", Test_random_programs.tests);
      ("fuzz", Test_fuzz.tests);
      ("engine", Test_engine.tests);
      ("tier", Test_tier.tests);
      ("observability", Test_obs.tests);
    ]
