(* Differential validation of the threaded execution engine against the
   reference step interpreter: lockstep snapshot comparison on handcrafted
   programs covering every trap kind and control-flow shape, a randomized
   qcheck property reusing the test_random_programs generator through the
   full Wasm pipeline, and targeted tests for the page-access cache's
   invalidation edges (mprotect, pkru writes, unmap/generation bumps,
   madvise, host stores). *)

module X = Sfi_x86.Ast
module Machine = Sfi_machine.Machine
module Lockstep = Sfi_machine.Lockstep
module Space = Sfi_vmem.Space
module Prot = Sfi_vmem.Prot
module Mpk = Sfi_vmem.Mpk
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Runtime = Sfi_runtime.Runtime
module Prng = Sfi_util.Prng

let mb = 1 lsl 20

(* A fresh machine per call: lockstep runs the thunk twice and the two
   machines must not share a Space. *)
let make_machine ?(pkru = Mpk.allow_all) ?(setup = fun _ -> ()) instrs () =
  let space = Space.create () in
  (match Space.map space ~addr:mb ~len:(16 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error m -> failwith m);
  let m = Machine.create space in
  Machine.load_program m (Array.of_list ((X.Label "entry" :: instrs) @ [ X.Ret ]));
  Machine.set_reg m X.RSP (Int64.of_int (mb + (8 * Space.page_size)));
  Machine.set_pkru m pkru;
  setup m;
  m

let lockstep ?pkru ?setup instrs =
  match Lockstep.run_pair ~make:(make_machine ?pkru ?setup instrs) ~entry:"entry" () with
  | Ok status -> status
  | Error d -> Alcotest.failf "engines diverged: %s" (Format.asprintf "%a" Lockstep.pp_divergence d)

let check_lockstep_halted ?pkru ?setup instrs =
  match lockstep ?pkru ?setup instrs with
  | Machine.Halted -> ()
  | Machine.Trapped k -> Alcotest.failf "trapped: %s" (X.trap_name k)
  | Machine.Yielded -> Alcotest.fail "yielded"

let check_lockstep_trap expected ?pkru ?setup instrs =
  match lockstep ?pkru ?setup instrs with
  | Machine.Trapped k when k = expected -> ()
  | Machine.Trapped k -> Alcotest.failf "wrong trap: %s" (X.trap_name k)
  | Machine.Halted -> Alcotest.fail "expected trap, halted"
  | Machine.Yielded -> Alcotest.fail "expected trap, yielded"

(* ------------------------------------------------------------------ *)
(* Lockstep on handcrafted programs.                                   *)
(* ------------------------------------------------------------------ *)

let test_lockstep_control_flow () =
  check_lockstep_halted
    [
      X.Mov (X.W64, X.Reg X.RAX, X.Imm 0L);
      X.Mov (X.W64, X.Reg X.RCX, X.Imm 10L);
      X.Label "loop";
      X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Reg X.RCX);
      X.Alu (X.Sub, X.W64, X.Reg X.RCX, X.Imm 1L);
      X.Cmp (X.W64, X.Reg X.RCX, X.Imm 0L);
      X.Jcc (X.NE, "loop");
      X.Jmp "over";
      X.Trap X.Trap_unreachable;
      X.Label "over";
      X.Call "leaf";
      X.Jmp "done";
      X.Label "leaf";
      X.Alu (X.Xor, X.W64, X.Reg X.RDX, X.Reg X.RDX);
      X.Setcc (X.E, X.RDX);
      X.Ret;
      X.Label "done";
      X.Cmovcc (X.NE, X.W64, X.RSI, X.Reg X.RAX);
      X.Nop;
    ]

let test_lockstep_indirect () =
  (* Jmp_reg / Call_reg through label addresses resolved after load. *)
  let setup m =
    Machine.set_reg m X.R10 (Int64.of_int (Machine.label_address m "target"));
    Machine.set_reg m X.R11 (Int64.of_int (Machine.label_address m "fn"))
  in
  check_lockstep_halted ~setup
    [
      X.Jmp_reg X.R10;
      X.Trap X.Trap_unreachable;
      X.Label "target";
      X.Call_reg X.R11;
      X.Jmp "done";
      X.Label "fn";
      X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Imm 3L);
      X.Ret;
      X.Label "done";
      X.Nop;
    ]

let test_lockstep_memory_and_segments () =
  check_lockstep_halted
    [
      X.Wrfsbase X.RBP;
      (* RBP is 0 here: fs base 0 keeps absolute disp addressing valid. *)
      X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
      X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 0x1122334455667788L);
      X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ~disp:4 ()));
      X.Movzx (X.W64, X.W8, X.RCX, X.Mem (X.mem ~base:X.RBX ~disp:7 ()));
      X.Movsx (X.W64, X.W16, X.RDX, X.Mem (X.mem ~base:X.RBX ~disp:6 ()));
      X.Lea (X.W64, X.RSI, X.mem ~base:X.RBX ~index:(X.RCX, X.S8) ~disp:(-8) ());
      X.Push (X.Reg X.RAX);
      X.Push (X.Imm 42L);
      X.Pop X.RDI;
      X.Pop X.R8;
      X.Vdup8 (X.XMM 1, 0x5A);
      X.Vstore (X.mem ~base:X.RBX ~disp:64 (), X.XMM 1);
      X.Vload (X.XMM 2, X.mem ~base:X.RBX ~disp:64 ());
      X.Vzero (X.XMM 3);
      (* a page-crossing store exercises the slow path next to the fast one *)
      X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ~disp:4092 ()), X.Reg X.RAX);
      X.Shift (X.Rol, X.W64, X.Reg X.RAX, X.Count_imm 9);
      X.Mov (X.W8, X.Reg X.RCX, X.Imm 3L);
      X.Shift (X.Shl, X.W32, X.Reg X.RAX, X.Count_cl);
      X.Bitcnt (X.Popcnt, X.W64, X.R9, X.Reg X.RAX);
    ]

let test_lockstep_traps () =
  check_lockstep_trap X.Trap_unreachable [ X.Trap X.Trap_unreachable ];
  check_lockstep_trap X.Trap_indirect_call_type [ X.Trap X.Trap_indirect_call_type ];
  check_lockstep_trap X.Trap_out_of_bounds
    [ X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~disp:(5 * mb) ())) ];
  check_lockstep_trap X.Trap_integer_divide_by_zero
    [
      X.Mov (X.W64, X.Reg X.RAX, X.Imm 7L); X.Cqo X.W64;
      X.Div (X.W64, false, X.Imm 0L);
    ];
  check_lockstep_trap X.Trap_integer_overflow
    [
      X.Mov (X.W64, X.Reg X.RAX, X.Imm Int64.min_int); X.Cqo X.W64;
      X.Div (X.W64, true, X.Imm (-1L));
    ];
  (* jumping into the void is an out-of-bounds pc in both engines *)
  check_lockstep_trap X.Trap_out_of_bounds
    ~setup:(fun m -> Machine.set_reg m X.R10 2L)
    [ X.Jmp_reg X.R10 ]

let test_lockstep_pkru_and_hostcall () =
  (* wrpkru revoking the default key makes the next load trap, identically
     under both engines; a hostcall in between exercises the handler path. *)
  let setup m = Machine.set_hostcall_handler m (fun m' _ -> Machine.set_reg m' X.R15 99L) in
  check_lockstep_trap X.Trap_out_of_bounds ~setup
    [
      X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
      X.Mov (X.W64, X.Reg X.RDX, X.Mem (X.mem ~base:X.RBX ()));
      X.Hostcall 7;
      X.Rdpkru;
      X.Mov (X.W64, X.Reg X.RAX, X.Imm (Int64.of_int (Mpk.allow_only [ 1 ])));
      X.Wrpkru;
      X.Mov (X.W64, X.Reg X.RDX, X.Mem (X.mem ~base:X.RBX ()));
    ]

(* ------------------------------------------------------------------ *)
(* Randomized differential property through the full Wasm pipeline.    *)
(* ------------------------------------------------------------------ *)

let run_wasm engine m args =
  let cfg = Codegen.default_config ~strategy:Strategy.segue () in
  let compiled = Codegen.compile cfg m in
  let eng = Runtime.create_engine ~engine compiled in
  let inst = Runtime.instantiate eng in
  let result = Runtime.invoke inst "run" args in
  let mach = Runtime.machine eng in
  let c = Machine.counters mach in
  ( result,
    c,
    Machine.dtlb_misses mach,
    Machine.dcache_misses mach,
    Runtime.read_memory inst ~addr:0 ~len:4096 )

let check_engines_agree seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let m = Test_random_programs.gen_module rng in
  let a = Int64.logand (Prng.next_int64 rng) 0xFFFFFFFFL in
  let b = Prng.next_int64 rng in
  let r_res, r_c, r_tlb, r_dc, r_mem = run_wasm Machine.Reference m [ a; b ] in
  let t_res, t_c, t_tlb, t_dc, t_mem = run_wasm Machine.Threaded m [ a; b ] in
  (match (r_res, t_res) with
  | Ok rv, Ok tv ->
      if rv <> tv then QCheck.Test.fail_reportf "seed %d: result %Ld vs %Ld" seed rv tv
  | Error rk, Error tk ->
      if rk <> tk then
        QCheck.Test.fail_reportf "seed %d: trap %s vs %s" seed (X.trap_name rk) (X.trap_name tk)
  | Ok rv, Error tk ->
      QCheck.Test.fail_reportf "seed %d: reference %Ld, threaded trapped %s" seed rv
        (X.trap_name tk)
  | Error rk, Ok tv ->
      QCheck.Test.fail_reportf "seed %d: reference trapped %s, threaded %Ld" seed
        (X.trap_name rk) tv);
  if r_c <> t_c then QCheck.Test.fail_reportf "seed %d: counters diverged" seed;
  if r_tlb <> t_tlb then QCheck.Test.fail_reportf "seed %d: dTLB %d vs %d" seed r_tlb t_tlb;
  if r_dc <> t_dc then QCheck.Test.fail_reportf "seed %d: dcache %d vs %d" seed r_dc t_dc;
  if not (String.equal r_mem t_mem) then
    QCheck.Test.fail_reportf "seed %d: final memory images differ" seed;
  true

let qcheck_differential =
  QCheck.Test.make ~count:60 ~name:"threaded = reference on random programs"
    QCheck.(int_range 1000 9999)
    check_engines_agree

(* ------------------------------------------------------------------ *)
(* Page-access cache invalidation edges.                               *)
(* ------------------------------------------------------------------ *)

(* Run the same program on a given engine with a private machine; used to
   assert machine-observable state the lockstep API does not expose. *)
let run_with engine ?pkru ?setup instrs =
  let m = make_machine ?pkru ?setup instrs () in
  Machine.set_engine m engine;
  let st = Machine.execute m ~entry:"entry" () in
  (m, st)

let both_engines f =
  List.iter (fun e -> f e) [ Machine.Reference; Machine.Threaded ]

let test_pcache_prot_change () =
  (* A warm read of the page must not let a later store bypass mprotect. *)
  both_engines (fun engine ->
      let setup m =
        Machine.set_hostcall_handler m (fun m' _ ->
            match
              Space.protect (Machine.space m') ~addr:mb ~len:Space.page_size ~prot:Prot.r
            with
            | Ok () -> ()
            | Error e -> failwith e)
      in
      let _, st =
        run_with engine ~setup
          [
            X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
            X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 5L);
            X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ()));
            X.Hostcall 1;
            X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 6L);
          ]
      in
      match st with
      | Machine.Trapped X.Trap_out_of_bounds -> ()
      | st ->
          Alcotest.failf "store after mprotect: expected oob trap, got %s"
            (match st with
            | Machine.Halted -> "halted"
            | Machine.Yielded -> "yielded"
            | Machine.Trapped k -> X.trap_name k))

let test_pcache_pkru_write () =
  (* set_pkru from the host between runs must flush the baked verdicts.
     The data page gets its own pkey so the stack (key 0) stays usable. *)
  both_engines (fun engine ->
      let setup m =
        let space = Machine.space m in
        (match Space.map space ~addr:(2 * mb) ~len:Space.page_size ~prot:Prot.rw with
        | Ok () -> ()
        | Error e -> failwith e);
        match
          Space.pkey_protect space ~addr:(2 * mb) ~len:Space.page_size ~prot:Prot.rw ~key:2
        with
        | Ok () -> ()
        | Error e -> failwith e
      in
      let m =
        make_machine ~setup [ X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~disp:(2 * mb) ())) ] ()
      in
      Machine.set_engine m engine;
      (match Machine.execute m ~entry:"entry" () with
      | Machine.Halted -> ()
      | _ -> Alcotest.fail "first load should succeed");
      Machine.set_pkru m (Mpk.allow_only [ 0 ]);
      match Machine.execute m ~entry:"entry" () with
      | Machine.Trapped X.Trap_out_of_bounds -> ()
      | _ -> Alcotest.fail "load after set_pkru should trap")

let test_pcache_unmap () =
  (* unmap bumps the space generation; the cached translation must die. *)
  both_engines (fun engine ->
      let setup m =
        Machine.set_hostcall_handler m (fun m' _ ->
            match Space.unmap (Machine.space m') ~addr:mb ~len:Space.page_size with
            | Ok () -> ()
            | Error e -> failwith e)
      in
      let _, st =
        run_with engine ~setup
          [
            X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
            X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ()));
            X.Hostcall 1;
            X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ()));
          ]
      in
      match st with
      | Machine.Trapped X.Trap_out_of_bounds -> ()
      | _ -> Alcotest.fail "load after unmap should trap")

let test_pcache_madvise () =
  (* madvise(DONTNEED) drops the backing page: the cached bytes must not
     serve the stale contents. *)
  both_engines (fun engine ->
      let setup m =
        Machine.set_hostcall_handler m (fun m' _ ->
            match Space.madvise_dontneed (Machine.space m') ~addr:mb ~len:Space.page_size with
            | Ok () -> ()
            | Error e -> failwith e)
      in
      let m, st =
        run_with engine ~setup
          [
            X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
            X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 0xABL);
            X.Mov (X.W64, X.Reg X.RCX, X.Mem (X.mem ~base:X.RBX ()));
            X.Hostcall 1;
            X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ()));
          ]
      in
      (match st with Machine.Halted -> () | _ -> Alcotest.fail "should halt");
      Alcotest.(check int64) "read before madvise" 0xABL (Machine.get_reg m X.RCX);
      Alcotest.(check int64) "read after madvise is zero" 0L (Machine.get_reg m X.RAX))

let test_pcache_host_write_visible () =
  (* Host-side stores through the Space must be visible to a machine with
     a warm page cache. *)
  both_engines (fun engine ->
      let setup m =
        Machine.set_hostcall_handler m (fun m' _ ->
            Space.write64 (Machine.space m') mb 7L)
      in
      let m, st =
        run_with engine ~setup
          [
            X.Mov (X.W64, X.Reg X.RBX, X.Imm (Int64.of_int mb));
            X.Mov (X.W64, X.Mem (X.mem ~base:X.RBX ()), X.Imm 5L);
            X.Mov (X.W64, X.Reg X.RCX, X.Mem (X.mem ~base:X.RBX ()));
            X.Hostcall 1;
            X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RBX ()));
          ]
      in
      (match st with Machine.Halted -> () | _ -> Alcotest.fail "should halt");
      Alcotest.(check int64) "read before host store" 5L (Machine.get_reg m X.RCX);
      Alcotest.(check int64) "host store visible" 7L (Machine.get_reg m X.RAX))

let case name f = Alcotest.test_case name `Quick f

let tests =
  [
    case "lockstep: control flow" test_lockstep_control_flow;
    case "lockstep: indirect jumps and calls" test_lockstep_indirect;
    case "lockstep: memory, segments, vectors" test_lockstep_memory_and_segments;
    case "lockstep: every trap kind" test_lockstep_traps;
    case "lockstep: pkru and hostcalls" test_lockstep_pkru_and_hostcall;
    QCheck_alcotest.to_alcotest qcheck_differential;
    case "page cache: mprotect invalidates" test_pcache_prot_change;
    case "page cache: set_pkru invalidates" test_pcache_pkru_write;
    case "page cache: unmap invalidates" test_pcache_unmap;
    case "page cache: madvise drops cached bytes" test_pcache_madvise;
    case "page cache: host writes visible" test_pcache_host_write_visible;
  ]
