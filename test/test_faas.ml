(* Tests for the FaaS platform simulator (Figures 6/7): determinism,
   cross-mode agreement on the computed work, and the qualitative
   properties the figures rely on. *)

module Sim = Sfi_faas.Sim
module Wk = Sfi_faas.Workloads
module W = Sfi_wasm.Ast
module Interp = Sfi_wasm.Interp

let quick_cfg ?(mode = Sim.Colorguard) ?(workload = Wk.Hash_balance) () =
  let cfg = Sim.default_config ~mode ~workload () in
  { cfg with Sim.duration_ns = 8.0e6; concurrency = 48 }

let test_workload_modules_run () =
  (* Each request handler is a real Wasm module: spot-check them in the
     interpreter with a couple of seeds. *)
  List.iter
    (fun w ->
      let m = Wk.module_of w in
      let inst = Interp.instantiate m in
      List.iter
        (fun seed ->
          match Interp.invoke inst "handle" [ W.V_i32 seed ] with
          | Ok [ W.V_i32 _ ] -> ()
          | Ok _ -> Alcotest.fail "arity"
          | Error t -> Alcotest.failf "%s trapped: %s" (Wk.name w) (Interp.trap_name t))
        [ 1l; 77l; 123456l ])
    Wk.all

let test_determinism () =
  let r1 = Sim.run (quick_cfg ()) in
  let r2 = Sim.run (quick_cfg ()) in
  Alcotest.(check int) "same completions" r1.Sim.completed r2.Sim.completed;
  Alcotest.(check int64) "same checksum" r1.Sim.checksum r2.Sim.checksum;
  Alcotest.(check int) "same dtlb misses" r1.Sim.dtlb_misses r2.Sim.dtlb_misses

let test_modes_compute_same_requests () =
  (* For a fixed seed and load, ColorGuard and multiprocess complete the
     same requests with the same results (the strategies differ in cost,
     not function). *)
  let cg = Sim.run (quick_cfg ()) in
  let mp = Sim.run (quick_cfg ~mode:(Sim.Multiprocess 4) ()) in
  Alcotest.(check bool) "both complete work" true (cg.Sim.completed > 10 && mp.Sim.completed > 10);
  (* Per-request results are seed-determined, so equal completion counts
     imply equal checksums. *)
  if cg.Sim.completed = mp.Sim.completed then
    Alcotest.(check int64) "checksums agree" cg.Sim.checksum mp.Sim.checksum

let test_colorguard_properties () =
  let r = Sim.run (quick_cfg ()) in
  Alcotest.(check int) "no OS context switches" 0 r.Sim.context_switches;
  Alcotest.(check bool) "user transitions happen" true (r.Sim.user_transitions > 0);
  Alcotest.(check bool) "cpu busy below wall clock" true (r.Sim.cpu_busy_ns <= r.Sim.simulated_ns)

let test_multiprocess_scaling_shape () =
  let switches k =
    (Sim.run (quick_cfg ~mode:(Sim.Multiprocess k) ())).Sim.context_switches
  in
  let s1 = switches 1 and s4 = switches 4 and s12 = switches 12 in
  Alcotest.(check int) "one process never switches" 0 s1;
  Alcotest.(check bool) "switches grow with process count (fig 7a)" true (s4 > 0 && s12 > s4)

let test_efficiency_gap () =
  (* Figure 6's direction: at high process counts ColorGuard serves the
     same load with less CPU. *)
  let cfg = quick_cfg () in
  let gain = Sim.throughput_gain ~workload:Wk.Hash_balance ~processes:12 cfg in
  Alcotest.(check bool) "double-digit gain at 12 processes" true (gain > 5.0);
  let gain1 = Sim.throughput_gain ~workload:Wk.Hash_balance ~processes:1 cfg in
  Alcotest.(check bool) "no gain against a single process" true (Float.abs gain1 < 3.0)

let test_dtlb_direction () =
  let cfg = { (quick_cfg ()) with Sim.duration_ns = 12.0e6 } in
  let cg = Sim.run { cfg with Sim.mode = Sim.Colorguard } in
  let mp = Sim.run { cfg with Sim.mode = Sim.Multiprocess 12 } in
  Alcotest.(check bool) "multiprocess misses more (fig 7b)" true
    (mp.Sim.dtlb_misses > cg.Sim.dtlb_misses)

let test_config_validation () =
  Alcotest.check_raises "zero processes rejected"
    (Invalid_argument "Sim: process count must be >= 1") (fun () ->
      ignore (Sim.run (quick_cfg ~mode:(Sim.Multiprocess 0) ())))

let test_faulty_sim_contained () =
  (* Misbehaving tenants: the simulation must run to completion (nothing
     sandbox-attributable escapes Sim.run), report a degraded availability,
     and keep serving the well-behaved majority. *)
  let faults =
    { Sim.no_faults with Sim.trap_rate = 0.15; runaway_rate = 0.05; deadline_epochs = 2 }
  in
  let base = quick_cfg () in
  let cfg = { base with Sim.faults } in
  let r = Sim.run cfg in
  Alcotest.(check bool) "some requests completed" true (r.Sim.completed > 0);
  Alcotest.(check bool) "some requests failed" true (r.Sim.failed > 0);
  Alcotest.(check bool) "availability strictly between 0 and 1" true
    (r.Sim.availability > 0.0 && r.Sim.availability < 1.0);
  Alcotest.(check bool) "goodput below throughput" true
    (r.Sim.goodput_rps < r.Sim.throughput_rps);
  Alcotest.(check int) "colorguard has no blast radius" 0 r.Sim.collateral_aborts;
  Alcotest.(check bool) "killed slots were recycled" true (r.Sim.recycles > 0);
  (* Same faults under multiprocess: still contained, still completes. *)
  let mp = Sim.run { cfg with Sim.mode = Sim.Multiprocess 4 } in
  Alcotest.(check bool) "multiprocess completes too" true (mp.Sim.completed > 0);
  Alcotest.(check bool) "multiprocess availability sane" true
    (mp.Sim.availability > 0.0 && mp.Sim.availability <= 1.0)

let test_fault_free_unchanged () =
  (* The fault machinery must not perturb the legacy zero-fault results:
     same seed, same checksum, availability exactly 1. *)
  let r = Sim.run (quick_cfg ()) in
  Alcotest.(check int) "no failures" 0 r.Sim.failed;
  Alcotest.(check bool) "availability 1.0" true (r.Sim.availability = 1.0);
  Alcotest.(check bool) "goodput = throughput" true
    (Float.abs (r.Sim.goodput_rps -. r.Sim.throughput_rps) < 1e-9)

let tests =
  [
    Harness.case "workload modules run" test_workload_modules_run;
    Alcotest.test_case "determinism" `Slow test_determinism;
    Alcotest.test_case "modes compute the same requests" `Slow test_modes_compute_same_requests;
    Alcotest.test_case "colorguard properties" `Slow test_colorguard_properties;
    Alcotest.test_case "multiprocess switch growth" `Slow test_multiprocess_scaling_shape;
    Alcotest.test_case "efficiency gap" `Slow test_efficiency_gap;
    Alcotest.test_case "dtlb direction" `Slow test_dtlb_direction;
    Harness.case "config validation" test_config_validation;
    Alcotest.test_case "faulty sim contained" `Slow test_faulty_sim_contained;
    Alcotest.test_case "fault-free behavior unchanged" `Slow test_fault_free_unchanged;
  ]
