(* Tests for the CPU emulator: semantics of the instruction subset, the
   architectural features Segue/ColorGuard rely on (segment bases, addr32
   truncation, PKRU enforcement), traps, counters, and contexts. *)

module X = Sfi_x86.Ast
module Machine = Sfi_machine.Machine
module Cost = Sfi_machine.Cost
module Space = Sfi_vmem.Space
module Prot = Sfi_vmem.Prot
module Mpk = Sfi_vmem.Mpk

let mb = 1 lsl 20

(* Build a machine with a mapped stack and data area, load [instrs]
   wrapped in an entry label, run, and return it. *)
let run_program ?(pkru = Mpk.allow_all) ?(setup = fun _ -> ()) instrs =
  let space = Space.create () in
  (match Space.map space ~addr:mb ~len:(16 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error m -> failwith m);
  (match Space.map space ~addr:(2 * mb) ~len:(16 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error m -> failwith m);
  let m = Machine.create space in
  Machine.load_program m (Array.of_list (X.Label "entry" :: instrs @ [ X.Ret ]));
  Machine.set_reg m X.RSP (Int64.of_int (mb + (8 * Space.page_size)));
  Machine.set_pkru m pkru;
  setup m;
  let status = Machine.execute m ~entry:"entry" () in
  (m, status)

let check_halted status =
  match status with
  | Machine.Halted -> ()
  | Machine.Trapped k -> Alcotest.failf "trapped: %s" (X.trap_name k)
  | Machine.Yielded -> Alcotest.fail "yielded"

let check_trap expected status =
  match status with
  | Machine.Trapped k when k = expected -> ()
  | Machine.Trapped k -> Alcotest.failf "wrong trap: %s" (X.trap_name k)
  | Machine.Halted -> Alcotest.fail "expected trap, halted"
  | Machine.Yielded -> Alcotest.fail "expected trap, yielded"

let test_mov_zero_extension () =
  let m, st =
    run_program
      [
        X.Mov (X.W64, X.Reg X.RAX, X.Imm (-1L));
        (* A 32-bit write zero-extends: the inline truncation Segue uses. *)
        X.Mov (X.W32, X.Reg X.RAX, X.Reg X.RAX);
        (* 8/16-bit writes preserve the upper bits. *)
        X.Mov (X.W64, X.Reg X.RCX, X.Imm 0x1122334455667788L);
        X.Mov (X.W8, X.Reg X.RCX, X.Imm 0L);
      ]
  in
  check_halted st;
  Alcotest.(check int64) "w32 zero-extends" 0xFFFFFFFFL (Machine.get_reg m X.RAX);
  Alcotest.(check int64) "w8 preserves upper" 0x1122334455667700L (Machine.get_reg m X.RCX)

let test_flags_and_branches () =
  let m, st =
    run_program
      [
        X.Mov (X.W64, X.Reg X.RAX, X.Imm 0L);
        X.Mov (X.W32, X.Reg X.RCX, X.Imm (-5L));
        X.Cmp (X.W32, X.Reg X.RCX, X.Imm 3L);
        X.Jcc (X.L, "signed_less");
        X.Trap X.Trap_unreachable;
        X.Label "signed_less";
        (* unsigned comparison sees -5 as huge *)
        X.Cmp (X.W32, X.Reg X.RCX, X.Imm 3L);
        X.Jcc (X.A, "unsigned_above");
        X.Trap X.Trap_unreachable;
        X.Label "unsigned_above";
        X.Setcc (X.NE, X.RAX);
        X.Test (X.W32, X.Reg X.RAX, X.Reg X.RAX);
        X.Jcc (X.NE, "done");
        X.Trap X.Trap_unreachable;
        X.Label "done";
        X.Cmovcc (X.E, X.W64, X.RAX, X.Reg X.RCX);
      ]
  in
  check_halted st;
  Alcotest.(check int64) "setcc wrote 1, cmov not taken" 1L (Machine.get_reg m X.RAX)

let test_arithmetic () =
  let m, st =
    run_program
      [
        X.Mov (X.W64, X.Reg X.RAX, X.Imm 7L);
        X.Imul (X.W64, X.RAX, X.Imm 6L);
        X.Shift (X.Shl, X.W64, X.Reg X.RAX, X.Count_imm 2);
        X.Alu (X.Sub, X.W64, X.Reg X.RAX, X.Imm 8L);
        (* 42*4 - 8 = 160 *)
        X.Mov (X.W64, X.Reg X.RCX, X.Imm 0x80000000L);
        X.Shift (X.Rol, X.W32, X.Reg X.RCX, X.Count_imm 1);
        X.Bitcnt (X.Popcnt, X.W64, X.RDX, X.Imm 0xF0F0L);
        X.Bitcnt (X.Tzcnt, X.W64, X.RSI, X.Imm 0x100L);
        X.Bitcnt (X.Lzcnt, X.W32, X.RDI, X.Imm 1L);
      ]
  in
  check_halted st;
  Alcotest.(check int64) "mul/shift/sub" 160L (Machine.get_reg m X.RAX);
  Alcotest.(check int64) "rol32 wraps to 1" 1L (Machine.get_reg m X.RCX);
  Alcotest.(check int64) "popcnt" 8L (Machine.get_reg m X.RDX);
  Alcotest.(check int64) "tzcnt" 8L (Machine.get_reg m X.RSI);
  Alcotest.(check int64) "lzcnt32" 31L (Machine.get_reg m X.RDI)

let test_division () =
  let m, st =
    run_program
      [
        X.Mov (X.W64, X.Reg X.RAX, X.Imm (-17L));
        X.Mov (X.W64, X.Reg X.R15, X.Imm 5L);
        X.Cqo X.W64;
        X.Div (X.W64, true, X.Reg X.R15);
      ]
  in
  check_halted st;
  Alcotest.(check int64) "idiv quotient truncates toward zero" (-3L) (Machine.get_reg m X.RAX);
  Alcotest.(check int64) "idiv remainder" (-2L) (Machine.get_reg m X.RDX);
  let _, st =
    run_program [ X.Mov (X.W64, X.Reg X.RAX, X.Imm 1L); X.Div (X.W64, false, X.Imm 0L) ]
  in
  check_trap X.Trap_integer_divide_by_zero st;
  let _, st =
    run_program
      [
        X.Mov (X.W32, X.Reg X.RAX, X.Imm 0x80000000L);
        X.Mov (X.W64, X.Reg X.R15, X.Imm (-1L));
        X.Cqo X.W32;
        X.Div (X.W32, true, X.Reg X.R15);
      ]
  in
  check_trap X.Trap_integer_overflow st

let test_segment_and_addr32 () =
  let m, st =
    run_program
      ~setup:(fun m ->
        Space.write32 (Machine.space m) (2 * mb) 0x1234l;
        Space.write32 (Machine.space m) ((2 * mb) + 16) 0x5678l)
      [
        X.Mov (X.W64, X.Reg X.RAX, X.Imm (Int64.of_int (2 * mb)));
        X.Wrgsbase X.RAX;
        (* gs:[0] *)
        X.Mov (X.W64, X.Reg X.RBX, X.Imm 0L);
        X.Mov (X.W32, X.Reg X.RCX, X.Mem (X.mem ~seg:X.GS ~base:X.RBX ~addr32:true ()));
        (* The addr32 override truncates a poisoned upper half: Figure 1's
           pattern 1. Without it this address would be far out of range. *)
        X.Mov (X.W64, X.Reg X.RDX, X.Imm 0xFFFFFFFF_00000010L);
        X.Mov (X.W32, X.Reg X.RSI, X.Mem (X.mem ~seg:X.GS ~base:X.RDX ~addr32:true ()));
        X.Rdgsbase X.RDI;
      ]
  in
  check_halted st;
  Alcotest.(check int64) "gs-relative load" 0x1234L (Machine.get_reg m X.RCX);
  Alcotest.(check int64) "addr32 truncates" 0x5678L (Machine.get_reg m X.RSI);
  Alcotest.(check int64) "rdgsbase" (Int64.of_int (2 * mb)) (Machine.get_reg m X.RDI);
  Alcotest.(check int) "seg base writes counted" 1 (Machine.counters m).Machine.seg_base_writes

let test_pkru_enforcement () =
  (* Color the data page 5 and run with a pkru that excludes it: the load
     traps exactly like a guard-region hit (§3.2). *)
  let setup m =
    match
      Space.pkey_protect (Machine.space m) ~addr:(2 * mb) ~len:Space.page_size ~prot:Prot.rw
        ~key:5
    with
    | Ok () -> ()
    | Error e -> failwith e
  in
  let load =
    [
      X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~disp:(2 * mb) ()));
    ]
  in
  let _, st = run_program ~pkru:(Mpk.allow_only [ 0; 5 ]) ~setup load in
  check_halted st;
  let _, st = run_program ~pkru:(Mpk.allow_only [ 0; 4 ]) ~setup load in
  check_trap X.Trap_out_of_bounds st;
  (* wrpkru changes enforcement mid-program and is charged ~40 cycles. *)
  let m, st =
    run_program ~pkru:(Mpk.allow_only [ 0 ]) ~setup
      [
        X.Mov (X.W64, X.Reg X.RAX, X.Imm (Int64.of_int (Mpk.allow_only [ 0; 5 ])));
        X.Wrpkru;
        X.Mov (X.W32, X.Reg X.RCX, X.Mem (X.mem ~disp:(2 * mb) ()));
      ]
  in
  check_halted st;
  Alcotest.(check int) "pkru writes counted" 1 (Machine.counters m).Machine.pkru_writes

let test_memory_traps () =
  let _, st = run_program [ X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~disp:(64 * mb) ())) ] in
  check_trap X.Trap_out_of_bounds st;
  let _, st = run_program [ X.Trap X.Trap_indirect_call_type ] in
  check_trap X.Trap_indirect_call_type st

let test_calls_and_stack () =
  let m, st =
    run_program
      [
        X.Mov (X.W64, X.Reg X.RCX, X.Imm 10L);
        X.Push (X.Reg X.RCX);
        X.Call "double";
        X.Alu (X.Add, X.W64, X.Reg X.RSP, X.Imm 8L);
        X.Jmp "after";
        X.Label "double";
        X.Mov (X.W64, X.Reg X.RAX, X.Mem (X.mem ~base:X.RSP ~disp:8 ()));
        X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Reg X.RAX);
        X.Ret;
        X.Label "after";
      ]
  in
  check_halted st;
  Alcotest.(check int64) "call/ret with stack argument" 20L (Machine.get_reg m X.RAX)

let test_indirect_jump () =
  let space = Space.create () in
  (match Space.map space ~addr:mb ~len:(16 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error e -> failwith e);
  let m = Machine.create space in
  (* The placeholder immediate must encode at the same width as the real
     target so the second layout matches the first. *)
  Machine.load_program m
    [|
      X.Label "entry";
      X.Mov (X.W64, X.Reg X.RAX, X.Imm 0x1_0000_0000L); (* patched below *)
      X.Jmp_reg X.RAX;
      X.Trap X.Trap_unreachable;
      X.Label "target";
      X.Mov (X.W64, X.Reg X.RCX, X.Imm 99L);
      X.Ret;
    |];
  (* Patch the target address now that the label has one. *)
  let target = Machine.label_address m "target" in
  Machine.load_program m
    [|
      X.Label "entry";
      X.Mov (X.W64, X.Reg X.RAX, X.Imm (Int64.of_int target));
      X.Jmp_reg X.RAX;
      X.Trap X.Trap_unreachable;
      X.Label "target";
      X.Mov (X.W64, X.Reg X.RCX, X.Imm 99L);
      X.Ret;
    |];
  Machine.set_reg m X.RSP (Int64.of_int (mb + 4096));
  (match Machine.execute m ~entry:"entry" () with
  | Machine.Halted -> ()
  | _ -> Alcotest.fail "should halt");
  Alcotest.(check int64) "indirect jump reached target" 99L (Machine.get_reg m X.RCX);
  (* An unaligned/invalid code address traps. *)
  Machine.set_reg m X.RSP (Int64.of_int (mb + 4096));
  Machine.start m ~entry:"entry";
  Machine.set_reg m X.RAX 12345L;
  (* jump target overwritten after the mov executes? simpler: jump to a
     non-instruction address directly *)
  let st =
    let m2 = Machine.create space in
    Machine.load_program m2 [| X.Label "entry"; X.Jmp_reg X.RBX; X.Ret |];
    Machine.set_reg m2 X.RSP (Int64.of_int (mb + 4096));
    Machine.set_reg m2 X.RBX 0x1234L;
    Machine.execute m2 ~entry:"entry" ()
  in
  check_trap X.Trap_out_of_bounds st

let test_fuel_and_resume () =
  let space = Space.create () in
  (match Space.map space ~addr:mb ~len:(4 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error e -> failwith e);
  let m = Machine.create space in
  (* A long counting loop. *)
  Machine.load_program m
    [|
      X.Label "entry";
      X.Mov (X.W64, X.Reg X.RAX, X.Imm 0L);
      X.Label "loop";
      X.Alu (X.Add, X.W64, X.Reg X.RAX, X.Imm 1L);
      X.Cmp (X.W64, X.Reg X.RAX, X.Imm 10000L);
      X.Jcc (X.NE, "loop");
      X.Ret;
    |];
  Machine.set_reg m X.RSP (Int64.of_int (mb + 4096));
  Machine.start m ~entry:"entry";
  (match Machine.run m ~fuel:100 with
  | Machine.Yielded -> ()
  | _ -> Alcotest.fail "should yield on fuel exhaustion");
  (* Epoch-style resume: keep going until done. *)
  let rec finish n =
    if n > 1000 then Alcotest.fail "never finished"
    else match Machine.run m ~fuel:1000 with Machine.Halted -> () | _ -> finish (n + 1)
  in
  finish 0;
  Alcotest.(check int64) "loop completed across epochs" 10000L (Machine.get_reg m X.RAX)

let test_context_switch () =
  let space = Space.create () in
  (match Space.map space ~addr:mb ~len:(4 * Space.page_size) ~prot:Prot.rw with
  | Ok () -> ()
  | Error e -> failwith e);
  let m = Machine.create space in
  Machine.load_program m [| X.Label "entry"; X.Ret |];
  Machine.set_reg m X.RAX 111L;
  Machine.set_seg_base m X.GS 0x1000;
  Machine.set_pkru m (Mpk.allow_only [ 0; 2 ]);
  let ctx = Machine.save_context m in
  Machine.set_reg m X.RAX 222L;
  Machine.set_seg_base m X.GS 0x2000;
  Machine.set_pkru m Mpk.allow_all;
  Machine.restore_context m ctx;
  Alcotest.(check int64) "regs restored" 111L (Machine.get_reg m X.RAX);
  Alcotest.(check int) "gs restored" 0x1000 (Machine.get_seg_base m X.GS);
  Alcotest.(check int) "pkru restored" (Mpk.allow_only [ 0; 2 ]) (Machine.get_pkru m)

let test_counters_and_costs () =
  let m, st =
    run_program
      [
        X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~disp:(2 * mb) ()));
        X.Mov (X.W32, X.Mem (X.mem ~disp:(2 * mb) ()), X.Reg X.RAX);
        X.Nop;
      ]
  in
  check_halted st;
  let c = Machine.counters m in
  (* one data load + the final ret's pop; one data store + the sentinel push *)
  Alcotest.(check int) "loads" 2 c.Machine.loads;
  Alcotest.(check int) "stores" 2 c.Machine.stores;
  Alcotest.(check bool) "cycles accumulate" true (c.Machine.cycles > 0);
  Alcotest.(check bool) "code bytes fetched" true (c.Machine.code_bytes > 0);
  Alcotest.(check bool) "first touch misses TLB" true (Machine.dtlb_misses m > 0);
  Alcotest.(check bool) "elapsed ns positive" true (Machine.elapsed_ns m > 0.0);
  Machine.reset_counters m;
  Alcotest.(check int) "reset" 0 (Machine.counters m).Machine.cycles

(* machine.mli documents that reset_counters also clears the TLB
   hit/miss counters — pin it. Repeated access to the same page gives
   hits; the first touches give misses. *)
let test_reset_counters_resets_tlb () =
  let m, st =
    run_program
      [
        X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~disp:(2 * mb) ()));
        X.Mov (X.W32, X.Mem (X.mem ~disp:(2 * mb) ()), X.Reg X.RAX);
        X.Mov (X.W32, X.Reg X.RCX, X.Mem (X.mem ~disp:(2 * mb) ()));
      ]
  in
  check_halted st;
  Alcotest.(check bool) "misses before reset" true (Machine.dtlb_misses m > 0);
  Alcotest.(check bool) "hits before reset" true (Machine.dtlb_hits m > 0);
  Machine.reset_counters m;
  Alcotest.(check int) "misses reset" 0 (Machine.dtlb_misses m);
  Alcotest.(check int) "hits reset" 0 (Machine.dtlb_hits m)

(* [Machine.counters] returns a snapshot: further execution must not
   mutate a record already handed out. *)
let qcheck_counters_snapshot_immutable =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"counters snapshot immutable under further execution" ~count:50
       QCheck.(int_range 1 8)
       (fun reruns ->
         let m, st =
           run_program
             [
               X.Mov (X.W32, X.Reg X.RAX, X.Mem (X.mem ~disp:(2 * mb) ()));
               X.Mov (X.W32, X.Mem (X.mem ~disp:(2 * mb) ()), X.Reg X.RAX);
             ]
         in
         (match st with Machine.Halted -> () | _ -> QCheck.Test.fail_report "setup run did not halt");
         let snap = Machine.counters m in
         let saved =
           ( snap.Machine.instructions,
             snap.Machine.cycles,
             snap.Machine.loads,
             snap.Machine.stores,
             snap.Machine.code_bytes )
         in
         for _ = 1 to reruns do
           Machine.set_reg m X.RSP (Int64.of_int (mb + (8 * Space.page_size)));
           ignore (Machine.execute m ~entry:"entry" ())
         done;
         let live = Machine.counters m in
         live.Machine.instructions > snap.Machine.instructions
         && saved
            = ( snap.Machine.instructions,
                snap.Machine.cycles,
                snap.Machine.loads,
                snap.Machine.stores,
                snap.Machine.code_bytes )))

let test_fsgsbase_fallback_cost () =
  let run_with avail =
    let space = Space.create () in
    (match Space.map space ~addr:mb ~len:(4 * Space.page_size) ~prot:Prot.rw with
    | Ok () -> ()
    | Error e -> failwith e);
    let m = Machine.create ~fsgsbase_available:avail space in
    Machine.load_program m [| X.Label "entry"; X.Wrgsbase X.RAX; X.Ret |];
    Machine.set_reg m X.RSP (Int64.of_int (mb + 4096));
    ignore (Machine.execute m ~entry:"entry" ());
    (Machine.counters m).Machine.cycles
  in
  Alcotest.(check bool) "arch_prctl fallback is much slower (sec 4.1)" true
    (run_with false > (10 * run_with true))

let tests =
  [
    Harness.case "mov widths / zero extension" test_mov_zero_extension;
    Harness.case "flags and branches" test_flags_and_branches;
    Harness.case "arithmetic" test_arithmetic;
    Harness.case "division" test_division;
    Harness.case "segment + addr32" test_segment_and_addr32;
    Harness.case "pkru enforcement" test_pkru_enforcement;
    Harness.case "memory traps" test_memory_traps;
    Harness.case "calls and stack" test_calls_and_stack;
    Harness.case "indirect jumps" test_indirect_jump;
    Harness.case "fuel and resume" test_fuel_and_resume;
    Harness.case "context save/restore" test_context_switch;
    Harness.case "counters" test_counters_and_costs;
    Harness.case "reset_counters clears TLB counters" test_reset_counters_resets_tlb;
    qcheck_counters_snapshot_immutable;
    Harness.case "fsgsbase fallback cost" test_fsgsbase_fallback_cost;
  ]
