(* Tests for the overload-resilience stack: the circuit-breaker state
   machine, the adaptive admission layer (CoDel sojourn + token buckets)
   and its legacy FIFO fallback (model-checked), the always-armed sim
   watchdog, and determinism of the chaos harness on both engines. *)

module W = Sfi_wasm.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine
module Units = Sfi_util.Units
module Breaker = Sfi_faas.Breaker
module Sim = Sfi_faas.Sim
module Chaos = Sfi_inject.Chaos
open Sfi_wasm.Builder

(* --- circuit breaker state machine --------------------------------- *)

(* Jitter 0 makes every backoff exactly base * 2^(streak-1), so the
   schedule is checkable to the nanosecond. *)
let bcfg =
  {
    Breaker.failure_threshold = 3;
    base_backoff_ns = 1000.0;
    max_backoff_ns = 8000.0;
    backoff_jitter = 0.0;
    latency_threshold_ns = Some 500.0;
  }

let test_breaker_trips () =
  let b = Breaker.create bcfg in
  Alcotest.(check bool) "closed breaker admits" true (Breaker.allow b ~now:0.0);
  Breaker.on_failure b ~now:1.0;
  Breaker.on_failure b ~now:2.0;
  Alcotest.(check bool) "below threshold stays closed" true (Breaker.state b = Breaker.Closed);
  Breaker.on_failure b ~now:3.0;
  Alcotest.(check bool) "threshold failure opens" true (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "one open so far" 1 (Breaker.opens b);
  Alcotest.(check (float 0.0)) "backoff is exactly base" 1003.0 (Breaker.retry_at b);
  Alcotest.(check bool) "open breaker refuses" false (Breaker.allow b ~now:1000.0)

let test_breaker_success_resets_streak () =
  let b = Breaker.create bcfg in
  Breaker.on_failure b ~now:1.0;
  Breaker.on_failure b ~now:2.0;
  Breaker.on_success b ~now:3.0;
  Breaker.on_failure b ~now:4.0;
  Breaker.on_failure b ~now:5.0;
  Alcotest.(check bool) "streak restarted by success" true (Breaker.state b = Breaker.Closed)

let trip b ~now =
  Breaker.on_failure b ~now;
  Breaker.on_failure b ~now;
  Breaker.on_failure b ~now

let test_breaker_half_open_single_probe () =
  let b = Breaker.create bcfg in
  trip b ~now:0.0;
  Alcotest.(check bool) "still backing off" false (Breaker.allow b ~now:999.0);
  Alcotest.(check bool) "backoff elapsed: probe admitted" true (Breaker.allow b ~now:1001.0);
  Alcotest.(check bool) "half-open" true (Breaker.state b = Breaker.Half_open);
  Alcotest.(check bool) "second probe refused while one is outstanding" false
    (Breaker.allow b ~now:1002.0);
  Breaker.on_success b ~now:1100.0;
  Alcotest.(check bool) "probe success closes" true (Breaker.state b = Breaker.Closed);
  Alcotest.(check bool) "closed again admits" true (Breaker.allow b ~now:1101.0)

let test_breaker_probe_failure_doubles_backoff () =
  let b = Breaker.create bcfg in
  trip b ~now:0.0;
  Alcotest.(check bool) "probe admitted" true (Breaker.allow b ~now:1000.0);
  Breaker.on_failure b ~now:1000.0;
  Alcotest.(check bool) "probe failure re-opens" true (Breaker.state b = Breaker.Open);
  Alcotest.(check int) "second open" 2 (Breaker.opens b);
  Alcotest.(check (float 0.0)) "backoff doubled" 3000.0 (Breaker.retry_at b);
  Alcotest.(check bool) "refused inside doubled backoff" false (Breaker.allow b ~now:2500.0);
  (* Keep failing: the backoff keeps doubling until max_backoff_ns. *)
  ignore (Breaker.allow b ~now:3001.0);
  Breaker.on_failure b ~now:3001.0;
  Alcotest.(check (float 0.0)) "backoff x4" 7001.0 (Breaker.retry_at b);
  ignore (Breaker.allow b ~now:7002.0);
  Breaker.on_failure b ~now:7002.0;
  Alcotest.(check (float 0.0)) "backoff reaches the cap" 15002.0 (Breaker.retry_at b);
  ignore (Breaker.allow b ~now:15003.0);
  Breaker.on_failure b ~now:15003.0;
  Alcotest.(check (float 0.0)) "backoff capped at max" 23003.0 (Breaker.retry_at b)

let test_breaker_latency_signal () =
  let b = Breaker.create bcfg in
  Breaker.on_slow b ~now:1.0 ~elapsed_ns:600.0;
  Breaker.on_slow b ~now:2.0 ~elapsed_ns:600.0;
  Breaker.on_slow b ~now:3.0 ~elapsed_ns:400.0;
  Alcotest.(check bool) "fast success resets the slow streak" true
    (Breaker.state b = Breaker.Closed);
  Breaker.on_slow b ~now:4.0 ~elapsed_ns:600.0;
  Breaker.on_slow b ~now:5.0 ~elapsed_ns:600.0;
  Breaker.on_slow b ~now:6.0 ~elapsed_ns:600.0;
  Alcotest.(check bool) "three slow successes trip the breaker" true
    (Breaker.state b = Breaker.Open)

let test_breaker_jitter_bounded_and_deterministic () =
  let cfg = { bcfg with Breaker.backoff_jitter = 0.5 } in
  let backoff_of seed =
    let b = Breaker.create ~seed cfg in
    trip b ~now:0.0;
    Breaker.retry_at b
  in
  let x = backoff_of 42L in
  Alcotest.(check (float 0.0)) "same seed, same jitter" x (backoff_of 42L);
  for s = 1 to 20 do
    let w = backoff_of (Int64.of_int s) in
    Alcotest.(check bool)
      (Printf.sprintf "jitter within [0.75, 1.25] x base (seed %d)" s)
      true
      (w >= 0.75 *. bcfg.Breaker.base_backoff_ns && w <= 1.25 *. bcfg.Breaker.base_backoff_ns)
  done

(* --- admission: engine helpers ------------------------------------- *)

let tiny_module () =
  let b = create ~memory_pages:1 () in
  let f = declare b "f" ~params:[] ~results:[ W.I32 ] () in
  define b f [ i32 7 ];
  build b

let pool8 () =
  let params =
    {
      Pool.num_slots = 8;
      max_memory_bytes = 4 * Units.mib;
      expected_slot_bytes = 4 * Units.mib;
      guard_bytes = 16 * Units.mib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = false;
    }
  in
  match Pool.compute params with Ok l -> l | Error m -> failwith m

let code = lazy (Codegen.compile (Codegen.default_config ()) (tiny_module ()))

let engine ?(retry_queue_capacity = 64) ?admission () =
  let e =
    Runtime.create_engine
      ~allocator:(Runtime.Pool (pool8 ()))
      ~retry_queue_capacity (Lazy.force code)
  in
  Runtime.set_admission e admission;
  e

let fill ?n e =
  let n = match n with Some n -> n | None -> Runtime.num_slots e in
  Array.init n (fun _ -> Runtime.instantiate e)

(* --- admission: CoDel queue + token buckets ------------------------ *)

let test_admission_grant_and_fifo () =
  let e = engine ~admission:Runtime.default_admission () in
  (match Runtime.admit e ~ticket:1 ~tenant:1 ~now:0.0 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "free pool should grant immediately");
  let live = fill ~n:7 e in
  (* Pool now exhausted: 1 admission grant + 7 direct instantiations. *)
  (match Runtime.admit e ~ticket:2 ~tenant:2 ~now:1000.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "exhausted pool should park the ticket");
  (match Runtime.admit e ~ticket:3 ~tenant:3 ~now:2000.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "second ticket parks behind the first");
  Alcotest.(check int) "two parked" 2 (Runtime.waiting e);
  Runtime.kill live.(0);
  (match Runtime.admit e ~ticket:3 ~tenant:3 ~now:3000.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "ticket 3 must not jump the queue");
  (match Runtime.admit e ~ticket:2 ~tenant:2 ~now:3000.0 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "freed slot goes to the queue head");
  Alcotest.(check int) "one parked left" 1 (Runtime.waiting e)

let test_admission_ticket_deadline () =
  let e = engine ~admission:Runtime.default_admission () in
  let _live = fill e in
  (match Runtime.admit e ~ticket:9 ~tenant:9 ~now:0.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "should park");
  (* default ticket_deadline_ns = 2 ms: a ticket re-presented after that
     has lost its client and is shed even if a slot were free. *)
  match Runtime.admit e ~ticket:9 ~tenant:9 ~now:2.5e6 with
  | `Shed Runtime.Shed_sojourn -> ()
  | _ -> Alcotest.fail "stale ticket should shed on sojourn"

let test_admission_codel_sheds_at_head () =
  let e = engine ~admission:Runtime.default_admission () in
  let _live = fill e in
  (match Runtime.admit e ~ticket:1 ~tenant:1 ~now:0.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "should park");
  (* Sojourn 150 us > 100 us target: arms first_above = now + 500 us. *)
  (match Runtime.admit e ~ticket:1 ~tenant:1 ~now:150_000.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "first above-target pass only arms the interval");
  (* Still above target once the interval elapses: the head is shed. *)
  match Runtime.admit e ~ticket:1 ~tenant:1 ~now:700_000.0 with
  | `Shed Runtime.Shed_sojourn -> ()
  | _ -> Alcotest.fail "persistent above-target sojourn should shed the head"

let test_admission_codel_recovers_below_target () =
  let e = engine ~admission:Runtime.default_admission () in
  let live = fill e in
  (match Runtime.admit e ~ticket:1 ~tenant:1 ~now:0.0 with
  | `Wait -> ()
  | _ -> Alcotest.fail "should park");
  Runtime.kill live.(0);
  (* Sojourn 50 us < target: the queue is healthy, the head is granted. *)
  match Runtime.admit e ~ticket:1 ~tenant:1 ~now:50_000.0 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "below-target head with a free slot should be granted"

let test_admission_rate_limit () =
  let acfg = { Runtime.default_admission with Runtime.tenant_rate = 1000.0; tenant_burst = 1.0 } in
  let e = engine ~admission:acfg () in
  (match Runtime.admit e ~ticket:1 ~tenant:7 ~now:0.0 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "burst token admits the first arrival");
  (match Runtime.admit e ~ticket:2 ~tenant:7 ~now:0.0 with
  | `Shed Runtime.Shed_rate_limited -> ()
  | _ -> Alcotest.fail "empty bucket sheds the second arrival");
  (match Runtime.admit e ~ticket:3 ~tenant:8 ~now:0.0 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "buckets are per tenant");
  (* 1000 tokens/s: 2 ms refills the (burst-capped) single token. *)
  match Runtime.admit e ~ticket:4 ~tenant:7 ~now:2.0e6 with
  | `Ready _ -> ()
  | _ -> Alcotest.fail "bucket refills at the configured rate"

let test_admission_queue_capacity () =
  let e = engine ~retry_queue_capacity:2 ~admission:Runtime.default_admission () in
  let _live = fill e in
  (match Runtime.admit e ~ticket:1 ~tenant:1 ~now:0.0 with `Wait -> () | _ -> Alcotest.fail "park 1");
  (match Runtime.admit e ~ticket:2 ~tenant:2 ~now:0.0 with `Wait -> () | _ -> Alcotest.fail "park 2");
  (match Runtime.admit e ~ticket:3 ~tenant:3 ~now:0.0 with
  | `Shed Runtime.Shed_queue_full -> ()
  | _ -> Alcotest.fail "arrival beyond queue capacity sheds");
  (* Shed reasons carry stable codes for the trace stream. *)
  Alcotest.(check int) "sojourn code" 0 (Runtime.shed_reason_code Runtime.Shed_sojourn);
  Alcotest.(check int) "rate code" 1 (Runtime.shed_reason_code Runtime.Shed_rate_limited);
  Alcotest.(check int) "capacity code" 2 (Runtime.shed_reason_code Runtime.Shed_queue_full)

(* --- legacy FIFO queue: model-checked ------------------------------ *)

(* Random interleavings of ticket presentation, release and kill against
   a reference model of the documented discipline: strict FIFO, only the
   head (or a newcomer finding an empty queue) may claim a freed slot,
   and [`Rejected] exactly when a non-parked ticket arrives with the
   queue already holding [retry_queue_capacity] tickets. *)
let prop_fifo_model =
  let cap = 3 in
  let gen = QCheck.(list_of_size Gen.(int_range 1 80) (pair (int_range 0 11) (int_range 0 9))) in
  QCheck.Test.make ~count:120 ~name:"instantiate_queued matches the FIFO model" gen
    (fun ops ->
      let e = engine ~retry_queue_capacity:cap () in
      let queue = ref [] and free = ref (Runtime.num_slots e) and live = ref [] in
      let ok = ref true in
      let fail_at op msg =
        ok := false;
        QCheck.Test.fail_reportf "op %d: %s" op msg
      in
      List.iteri
        (fun i (op, ticket) ->
          if !ok then
            if op >= 10 then (
              match !live with
              | [] -> ()
              | inst :: rest ->
                  if op = 10 then Runtime.kill inst else Runtime.release inst;
                  live := rest;
                  incr free)
            else begin
              let queued = List.mem ticket !queue in
              let is_head = match !queue with h :: _ -> h = ticket | [] -> false in
              let can_claim = (is_head || ((not queued) && !queue = [])) && !free > 0 in
              let expect_reject = (not queued) && (not can_claim) && List.length !queue >= cap in
              (match Runtime.instantiate_queued e ~ticket with
              | `Ready inst ->
                  if not can_claim then fail_at i "granted out of FIFO order"
                  else begin
                    decr free;
                    live := inst :: !live;
                    if is_head then queue := List.tl !queue
                  end
              | `Rejected ->
                  if not expect_reject then
                    fail_at i "rejected though the queue was below capacity"
              | `Wait ->
                  if can_claim then fail_at i "parked though head + free slot"
                  else if expect_reject then fail_at i "parked though the queue was full"
                  else if not queued then queue := !queue @ [ ticket ]);
              if !ok && Runtime.waiting e <> List.length !queue then
                fail_at i
                  (Printf.sprintf "queue depth %d, model %d" (Runtime.waiting e)
                     (List.length !queue))
            end)
        ops;
      !ok)

(* --- sim: the watchdog is always armed ----------------------------- *)

(* Regression pin: deadline fuel used to be attached only when the
   probabilistic fault model was non-zero, so a deliberately runaway
   tenant under [no_faults] spun forever without a watchdog kill. *)
let test_watchdog_always_armed () =
  let ov = { Sim.no_overload with Sim.runaway_tenants = [ 0 ] } in
  let r =
    Sim.run
      {
        (Sim.default_config ~overload:ov ()) with
        Sim.concurrency = 8;
        duration_ns = 2.0e6;
        io_mean_ns = 200_000.0;
        epoch_ns = 5_000.0;
      }
  in
  Alcotest.(check bool) "watchdog kills the runaway under a fault-free model" true
    (r.Sim.watchdog_kills > 0);
  Alcotest.(check bool) "healthy tenants still complete" true (r.Sim.completed > 0)

(* --- chaos determinism --------------------------------------------- *)

let chaos_cfg engine =
  {
    (Chaos.default_config ~seed:0xDE7L ~perturbations:40 ()) with
    Chaos.duration_ns = 15.0e6;
    concurrency = 32;
    engine = Some engine;
  }

let check_chaos_deterministic engine =
  let cfg = chaos_cfg engine in
  let a = Chaos.run cfg in
  let b = Chaos.run cfg in
  (match a.Chaos.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "chaos violation [%d] %s: %s" v.Chaos.v_index v.Chaos.v_kind
        v.Chaos.v_detail);
  Alcotest.(check string) "same schedule digest" a.Chaos.digest b.Chaos.digest;
  Alcotest.(check string) "same sim counters" (Chaos.fingerprint a) (Chaos.fingerprint b);
  Alcotest.(check int) "every perturbation applied" 40 a.Chaos.sim.Sim.chaos_applied;
  Alcotest.(check int) "all breakers re-closed" 0 a.Chaos.sim.Sim.breakers_open_at_end

let test_chaos_deterministic_threaded () = check_chaos_deterministic Machine.Threaded
let test_chaos_deterministic_reference () = check_chaos_deterministic Machine.Reference

let test_chaos_seed_changes_schedule () =
  let p cfg = Chaos.plan_digest (Chaos.plan cfg) in
  let a = p (Chaos.default_config ~seed:1L ()) in
  let b = p (Chaos.default_config ~seed:2L ()) in
  Alcotest.(check bool) "different seeds, different schedules" true (a <> b)

let tests =
  [
    Harness.case "breaker trips at threshold" test_breaker_trips;
    Harness.case "breaker success resets streak" test_breaker_success_resets_streak;
    Harness.case "breaker half-open single probe" test_breaker_half_open_single_probe;
    Harness.case "breaker probe failure doubles backoff" test_breaker_probe_failure_doubles_backoff;
    Harness.case "breaker latency signal" test_breaker_latency_signal;
    Harness.case "breaker jitter bounded, deterministic" test_breaker_jitter_bounded_and_deterministic;
    Harness.case "admission grant and fifo" test_admission_grant_and_fifo;
    Harness.case "admission ticket deadline" test_admission_ticket_deadline;
    Harness.case "admission codel sheds at head" test_admission_codel_sheds_at_head;
    Harness.case "admission codel recovers below target" test_admission_codel_recovers_below_target;
    Harness.case "admission per-tenant rate limit" test_admission_rate_limit;
    Harness.case "admission queue capacity" test_admission_queue_capacity;
    QCheck_alcotest.to_alcotest prop_fifo_model;
    Harness.case "sim watchdog always armed" test_watchdog_always_armed;
    Harness.case "chaos deterministic (threaded)" test_chaos_deterministic_threaded;
    Harness.case "chaos deterministic (reference)" test_chaos_deterministic_reference;
    Harness.case "chaos seed changes schedule" test_chaos_seed_changes_schedule;
  ]
