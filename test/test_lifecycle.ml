(* Instance-lifecycle tests: copy-on-write instantiation, dirty-page
   recycle, and classified transitions.

   The load-bearing property is the qcheck one: a slot that has been
   dirtied by an arbitrary tenant (stores, globals, memory.grow) and then
   recycled must be indistinguishable from a fresh instantiation on a
   fresh engine — heap bytes, data segments, globals, memory size, and
   behavior. The dirty-page accounting tests pin the cost side: recycling
   is O(pages the tenant actually touched), never O(heap). *)

module W = Sfi_wasm.Ast
module X = Sfi_x86.Ast
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Runtime = Sfi_runtime.Runtime
module Space = Sfi_vmem.Space
module Units = Sfi_util.Units
module Prng = Sfi_util.Prng
open Sfi_wasm.Builder

let os_page = Space.page_size
let wasm_page = 65536

(* A module with every kind of instance state the recycler must restore:
   a data segment (CoW image content), two mutable globals with nonzero
   initial values, and a growable memory. *)
let tenant_module () =
  let b = create ~memory_pages:2 ~max_memory_pages:8 () in
  let g0 = global b W.I32 (W.V_i32 7l) in
  let g1 = global b W.I64 (W.V_i64 0xABCDL) in
  data b ~offset:64 "lifecycle-image-bytes";
  let load = declare b "load" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b load [ get 0; load32 () ];
  let store = declare b "store" ~params:[ W.I32; W.I32 ] ~results:[] () in
  define b store [ get 0; get 1; store32 () ];
  let grow = declare b "grow" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b grow [ get 0; memory_grow ];
  let size = declare b "size" ~params:[] ~results:[ W.I32 ] () in
  define b size [ memory_size ];
  let bump = declare b "bump" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b bump [ gget g0; get 0; add; gset g0; gget g0 ];
  let glob1 = declare b "glob1" ~params:[] ~results:[ W.I64 ] () in
  define b glob1 [ gget g1 ];
  build b

let compiled = lazy (Codegen.compile (Codegen.default_config ()) (tenant_module ()))

let expect_ok = function
  | Ok v -> v
  | Error k -> Alcotest.failf "unexpected trap: %s" (X.trap_name k)

(* ------------------------------------------------------------------ *)
(* Recycled slot = fresh instantiate, under random dirty patterns.     *)
(* ------------------------------------------------------------------ *)

(* Dirty an instance the way an adversarial tenant would: host-side
   writes to random OS pages, sandbox stores, global mutation, and the
   occasional memory.grow. *)
let churn_instance rng inst =
  let writes = Prng.int rng 24 in
  for _ = 1 to writes do
    let page = Prng.int rng (2 * wasm_page / os_page) in
    let off = Prng.int rng (os_page - 8) in
    Runtime.write_memory inst ~addr:((page * os_page) + off)
      (String.init (Prng.int_in rng 1 8) (fun _ -> Char.chr (Prng.int rng 256)))
  done;
  if Prng.bool rng then
    ignore (expect_ok (Runtime.invoke inst "store" [ Int64.of_int (Prng.int rng 1000 * 4); 77L ]));
  if Prng.bool rng then ignore (expect_ok (Runtime.invoke inst "bump" [ 13L ]));
  if Prng.int rng 4 = 0 then
    ignore (expect_ok (Runtime.invoke inst "grow" [ Int64.of_int (Prng.int_in rng 1 3) ]))

let check_recycled_equals_fresh seed =
  let rng = Prng.create ~seed:(Int64.of_int seed) in
  let churned_engine = Runtime.create_engine (Lazy.force compiled) in
  let victim = Runtime.instantiate churned_engine in
  churn_instance rng victim;
  if Prng.bool rng then Runtime.kill victim else Runtime.release victim;
  let recycled = Runtime.instantiate churned_engine in
  if Runtime.instance_id recycled <> Runtime.instance_id victim then
    QCheck.Test.fail_reportf "seed %d: slot not recycled" seed;
  let fresh_engine = Runtime.create_engine (Lazy.force compiled) in
  let fresh = Runtime.instantiate fresh_engine in
  if Runtime.memory_pages recycled <> Runtime.memory_pages fresh then
    QCheck.Test.fail_reportf "seed %d: memory_pages %d vs fresh %d" seed
      (Runtime.memory_pages recycled) (Runtime.memory_pages fresh);
  let len = 2 * wasm_page in
  if
    not
      (String.equal
         (Runtime.read_memory recycled ~addr:0 ~len)
         (Runtime.read_memory fresh ~addr:0 ~len))
  then QCheck.Test.fail_reportf "seed %d: recycled heap differs from fresh" seed;
  for g = 0 to 1 do
    if Runtime.read_global recycled g <> Runtime.read_global fresh g then
      QCheck.Test.fail_reportf "seed %d: global %d: %Ld vs fresh %Ld" seed g
        (Runtime.read_global recycled g) (Runtime.read_global fresh g)
  done;
  (* Both are slot 0 of their engine, so the raw vmctx pages (memory
     bound, PKRU images, globals, stack limit) must be byte-identical. *)
  let vmctx eng inst =
    Bytes.to_string
      (Space.read_bytes (Runtime.space eng) ~addr:(Runtime.vmctx_addr inst) ~len:4096)
  in
  if not (String.equal (vmctx churned_engine recycled) (vmctx fresh_engine fresh)) then
    QCheck.Test.fail_reportf "seed %d: recycled vmctx differs from fresh" seed;
  (* Behavioral equivalence, not just state: same results from the same
     invocations. *)
  List.iter
    (fun (export, args) ->
      let a = Runtime.invoke recycled export args and b = Runtime.invoke fresh export args in
      if a <> b then QCheck.Test.fail_reportf "seed %d: %s diverged on recycled slot" seed export)
    [ ("load", [ 64L ]); ("glob1", []); ("bump", [ 5L ]); ("size", []) ];
  true

let qcheck_recycled_fresh =
  QCheck.Test.make ~count:80 ~name:"recycled slot = fresh instantiate"
    QCheck.(int_range 1 100_000)
    check_recycled_equals_fresh

(* ------------------------------------------------------------------ *)
(* Dirty-page accounting.                                              *)
(* ------------------------------------------------------------------ *)

let test_dirty_tracking () =
  let e = Runtime.create_engine (Lazy.force compiled) in
  let i = Runtime.instantiate e in
  Alcotest.(check int) "fresh instance has no dirty heap pages" 0 (Runtime.dirty_heap_pages i);
  Runtime.write_memory i ~addr:0 "x";
  Runtime.write_memory i ~addr:10 "y";
  Alcotest.(check int) "same page counted once" 1 (Runtime.dirty_heap_pages i);
  Runtime.write_memory i ~addr:(5 * os_page) "z";
  Runtime.write_memory i ~addr:(9 * os_page) "w";
  Alcotest.(check int) "three distinct pages" 3 (Runtime.dirty_heap_pages i);
  let before = (Runtime.metrics e).Runtime.m_pages_zeroed_on_recycle in
  Runtime.release i;
  let zeroed = (Runtime.metrics e).Runtime.m_pages_zeroed_on_recycle - before in
  (* Heap dirt plus the vmctx page the instantiation itself touched —
     nowhere near the 32-page heap. *)
  Alcotest.(check bool)
    (Printf.sprintf "recycle dropped ~dirty pages (got %d)" zeroed)
    true
    (zeroed >= 3 && zeroed <= 6)

let test_recycle_cost_tracks_dirt_not_heap () =
  (* Same dirt on a 64x larger heap must recycle the same page count. *)
  let big =
    let b = create ~memory_pages:128 ~max_memory_pages:128 () in
    let store = declare b "store" ~params:[ W.I32; W.I32 ] ~results:[] () in
    define b store [ get 0; get 1; store32 () ];
    build b
  in
  let e = Runtime.create_engine (Codegen.compile (Codegen.default_config ()) big) in
  let i = Runtime.instantiate e in
  for p = 0 to 2 do
    Runtime.write_memory i ~addr:(p * os_page) "dirt"
  done;
  let before = (Runtime.metrics e).Runtime.m_pages_zeroed_on_recycle in
  Runtime.release i;
  let zeroed = (Runtime.metrics e).Runtime.m_pages_zeroed_on_recycle - before in
  let heap_os_pages = 128 * wasm_page / os_page in
  Alcotest.(check bool)
    (Printf.sprintf "O(dirty), not O(heap=%d os pages): zeroed %d" heap_os_pages zeroed)
    true
    (zeroed >= 3 && zeroed < 16)

let test_cold_warm_counters () =
  let e = Runtime.create_engine (Lazy.force compiled) in
  let i0 = Runtime.instantiate e in
  let i1 = Runtime.instantiate e in
  Runtime.release i0;
  Runtime.release i1;
  let i2 = Runtime.instantiate e in
  ignore (expect_ok (Runtime.invoke i2 "size" []));
  let m = Runtime.metrics e in
  Alcotest.(check int) "two cold bring-ups" 2 m.Runtime.m_instantiations_cold;
  Alcotest.(check int) "one warm reuse" 1 m.Runtime.m_instantiations_warm

(* ------------------------------------------------------------------ *)
(* Cross-tenant host-block hygiene.                                    *)
(* ------------------------------------------------------------------ *)

let test_host_block_scrubbed_on_recycle () =
  (* A hostcall implementation may spill tenant secrets onto the host
     stack inside the instance's host block. After a kill, the next
     tenant on the slot must read only zeroes there. *)
  let e = Runtime.create_engine (Lazy.force compiled) in
  let sp = Runtime.space e in
  let victim = Runtime.instantiate e in
  let host_stack = Runtime.vmctx_addr victim + 0x1_0000 in
  Space.write_bytes sp ~addr:(host_stack + 128) (Bytes.of_string "tenant-secret");
  Runtime.kill victim;
  let next = Runtime.instantiate e in
  Alcotest.(check int) "same slot" (Runtime.instance_id victim) (Runtime.instance_id next);
  let leaked = Bytes.to_string (Space.read_bytes sp ~addr:(host_stack + 128) ~len:13) in
  Alcotest.(check string) "host stack scrubbed" (String.make 13 '\000') leaked

(* ------------------------------------------------------------------ *)
(* Transition classes.                                                 *)
(* ------------------------------------------------------------------ *)

let import_module () =
  let b = create ~memory_pages:1 () in
  let p = import b "pure_fn" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let r = import b "ro_fn" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let f = import b "full_fn" ~params:[ W.I32 ] ~results:[ W.I32 ] in
  let run = declare b "run" ~params:[] ~results:[ W.I32 ] () in
  define b run [ i32 1; call p; call r; call f ];
  build b

let striped_pool () =
  let params =
    {
      Pool.num_slots = 8;
      max_memory_bytes = 4 * Units.mib;
      expected_slot_bytes = 4 * Units.mib;
      guard_bytes = 16 * Units.mib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = true;
    }
  in
  match Pool.compute params with Ok l -> l | Error m -> failwith m

let test_transition_classes () =
  let cfg = { (Codegen.default_config ()) with Codegen.colorguard = true } in
  let e =
    Runtime.create_engine
      ~allocator:(Runtime.Pool (striped_pool ()))
      (Codegen.compile cfg (import_module ()))
  in
  Runtime.register_import ~clazz:Runtime.Pure e "pure_fn" (fun _ args -> Int64.add args.(0) 1L);
  Runtime.register_import ~clazz:Runtime.Readonly e "ro_fn" (fun _ args -> Int64.add args.(0) 1L);
  Runtime.register_import e "full_fn" (fun _ args -> Int64.add args.(0) 1L);
  let i = Runtime.instantiate e in
  Alcotest.(check bool) "striped slot has a color" true (Runtime.color i <> 0);
  Alcotest.(check int64) "chain result" 4L (expect_ok (Runtime.invoke i "run" []));
  let m = Runtime.metrics e in
  Alcotest.(check int) "one pure call" 1 m.Runtime.m_calls_pure;
  Alcotest.(check int) "one readonly call" 1 m.Runtime.m_calls_readonly;
  Alcotest.(check int) "one full call (default class)" 1 m.Runtime.m_calls_full;
  (* Pure and Readonly each skip a wrpkru pair the full path would pay. *)
  Alcotest.(check int) "four pkru writes elided" 4 m.Runtime.m_pkru_writes_elided;
  (* invoke entry+exit (2) plus three hostcall round trips (6). *)
  Alcotest.(check int) "eight one-way crossings" 8 m.Runtime.m_transitions;
  Runtime.reset_metrics e;
  Alcotest.(check int) "metrics reset" 0 (Runtime.metrics e).Runtime.m_transitions

let case name f = Alcotest.test_case name `Quick f

let tests =
  [
    QCheck_alcotest.to_alcotest qcheck_recycled_fresh;
    case "dirty-page tracking" test_dirty_tracking;
    case "recycle cost tracks dirt, not heap size" test_recycle_cost_tracks_dirt_not_heap;
    case "cold/warm instantiation counters" test_cold_warm_counters;
    case "host block scrubbed across tenants" test_host_block_scrubbed_on_recycle;
    case "transition classes and pkru elision" test_transition_classes;
  ]
