(* Tests for the cross-layer differential fuzzer: a fixed-seed corpus
   through the full oracle (locking the six-strategy / two-engine / LFI
   lockstep property into `dune runtest`), the sanitizer self-test, the
   delta-debugging shrinker, and a regression module for the bulk-memory
   bounds bug the fuzzer found. *)

module W = Sfi_wasm.Ast
module B = Sfi_wasm.Builder
module Fuzz = Sfi_fuzz.Fuzz

(* Forty programs with per-program seeds 0x5EED+i: every one runs through
   the reference interpreter, all six SFI strategies on both the step and
   threaded engines (sanitizer armed), and — for the tame subset — the
   native / LFI / LFI+Segue triple. Any divergence fails the suite with
   the minimized reproducer. *)
let test_corpus () =
  let report = Fuzz.run_corpus ~seed:0x5EEDL ~count:40 () in
  (match report.Fuzz.r_divergences with
  | [] -> ()
  | d :: _ -> Alcotest.failf "%s" (Format.asprintf "%a" Fuzz.pp_divergence d));
  Alcotest.(check int) "all programs checked" 40 report.Fuzz.r_programs;
  Alcotest.(check bool) "interp + 6 strategies x 2 engines + LFI triple" true
    (report.Fuzz.r_executions
    >= (13 * (report.Fuzz.r_programs - report.Fuzz.r_skipped))
       + (3 * report.Fuzz.r_lfi_programs));
  Alcotest.(check bool) "some programs exercised the LFI oracle" true
    (report.Fuzz.r_lfi_programs > 0)

let test_generate_deterministic () =
  let a = Fuzz.generate 12345L and b = Fuzz.generate 12345L in
  Alcotest.(check string) "equal seeds, equal programs"
    (Format.asprintf "%a" Fuzz.pp_module a.Fuzz.p_module)
    (Format.asprintf "%a" Fuzz.pp_module b.Fuzz.p_module);
  Alcotest.(check bool) "equal args" true (a.Fuzz.p_args = b.Fuzz.p_args)

let test_self_test () =
  match Fuzz.self_test () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sanitizer self-test: %s" e

(* Regression for the bug fuzzer seed 7053 caught (minimized to this
   shape): a zero-length bulk op at an out-of-bounds address performs no
   memory access, so the guard region never faults — the builtins must
   bounds-check [dst + len] (and [src + len]) explicitly, like the
   interpreter does. Also pins the boundary: [dst + len = memory size] is
   in bounds. *)
let test_bulk_zero_length_oob () =
  let build body =
    let b = B.create ~memory_pages:1 () in
    let run = B.declare b "run" ~params:[] ~results:[ W.I32 ] () in
    B.define b run (body @ [ B.i32 1 ]);
    B.build b
  in
  let check name body ~traps =
    let r = Fuzz.check_module ~lfi:false (build body) [] in
    (match r.Fuzz.failure with
    | None -> ()
    | Some (oracle, detail) -> Alcotest.failf "%s: %s: %s" name oracle detail);
    Alcotest.(check bool) (name ^ " trap") traps r.Fuzz.interp_trapped
  in
  check "fill oob dst" [ B.i32 65537; B.i32 0; B.i32 0; W.Memory_fill ] ~traps:true;
  check "copy oob dst" [ B.i32 65537; B.i32 0; B.i32 0; W.Memory_copy ] ~traps:true;
  check "copy oob src" [ B.i32 0; B.i32 65537; B.i32 0; W.Memory_copy ] ~traps:true;
  check "fill at exact bound" [ B.i32 65536; B.i32 0; B.i32 0; W.Memory_fill ] ~traps:false;
  check "copy at exact bound" [ B.i32 65536; B.i32 65536; B.i32 0; W.Memory_copy ]
    ~traps:false

let contains_fill m =
  let rec in_instr = function
    | W.Memory_fill -> true
    | W.Block (_, body) | W.Loop (_, body) -> List.exists in_instr body
    | W.If (_, then_, else_) -> List.exists in_instr then_ || List.exists in_instr else_
    | _ -> false
  in
  Array.exists (fun f -> List.exists in_instr f.W.body) m.W.funcs

(* The shrinker must strip the junk around the one interesting instruction
   while every candidate it keeps still validates and reproduces. *)
let test_minimize () =
  let b = B.create ~memory_pages:1 () in
  let run = B.declare b "run" ~params:[] ~results:[ W.I32 ] () in
  B.define b run ~locals:[ W.I32 ]
    ([ B.i32 1; B.i32 2; B.add; B.set 0; B.i32 9; B.i32 3; B.mul; B.set 0 ]
    @ [ B.i32 0; B.i32 0xAB; B.i32 16; W.Memory_fill ]
    @ [ B.get 0; B.i32 7; B.add; B.set 0; B.get 0 ]);
  let m = B.build b in
  let original = Fuzz.module_size m in
  let small = Fuzz.minimize ~reproduces:contains_fill m in
  Alcotest.(check bool) "still reproduces" true (contains_fill small);
  Alcotest.(check bool) "shrank" true (Fuzz.module_size small < original);
  (* minimal valid shape: three operands, the fill, and the result *)
  Alcotest.(check bool)
    (Printf.sprintf "near-minimal (%d instrs)" (Fuzz.module_size small))
    true
    (Fuzz.module_size small <= 8)

let tests =
  [
    Harness.case "generator is deterministic" test_generate_deterministic;
    Harness.case "fixed-seed corpus: all oracles agree" test_corpus;
    Harness.case "sanitizer self-test" test_self_test;
    Harness.case "bulk ops bounds-check zero-length ranges" test_bulk_zero_length_oob;
    Harness.case "shrinker strips junk around a reproducer" test_minimize;
  ]
