(* Fault-injection containment: every synthesized escape attempt against
   every strategy must end contained (trapped) or diverged — an escape is a
   broken isolation invariant. The self-test proves the harness would see
   an escape if one existed. *)

module Inject = Sfi_inject.Inject

let test_strategy (name, strat) () =
  let r = Inject.run_strategy name strat in
  let t = Inject.tally r in
  Alcotest.(check bool)
    (name ^ ": harness generated attempts")
    true
    (t.Inject.contained + t.Inject.escaped + t.Inject.diverged > 0);
  Alcotest.(check bool)
    (name ^ ": at least one attempt was contained by a trap")
    true (t.Inject.contained > 0);
  List.iter
    (fun (a : Inject.attempt) ->
      match a.Inject.outcome with
      | Inject.Escaped why ->
          Alcotest.failf "%s: %s / %s (entry %s) ESCAPED: %s" name a.Inject.a_class
            a.Inject.a_desc a.Inject.a_entry why
      | _ -> ())
    r.Inject.attempts

let test_all_classes_exercised () =
  (* Segue exercises every mutation class; each must contribute attempts. *)
  let r = Inject.run_strategy "segue" Sfi_core.Strategy.segue in
  let classes =
    List.sort_uniq compare (List.map (fun a -> a.Inject.a_class) r.Inject.attempts)
  in
  List.iter
    (fun c ->
      Alcotest.(check bool) ("class present: " ^ c) true (List.mem c classes))
    [ "operand-rewrite"; "guard-strip"; "setup-corrupt"; "neighbour-probe" ]

let test_neighbour_probe_contained () =
  (* The headline ColorGuard property: a direct probe at the neighbour
     slot's stripe traps under every strategy. *)
  List.iter
    (fun (name, strat) ->
      let r = Inject.run_strategy name strat in
      let probes =
        List.filter (fun a -> a.Inject.a_class = "neighbour-probe") r.Inject.attempts
      in
      Alcotest.(check bool) (name ^ ": neighbour probes ran") true (List.length probes >= 3);
      List.iter
        (fun (a : Inject.attempt) ->
          match a.Inject.outcome with
          | Inject.Contained _ -> ()
          | o ->
              Alcotest.failf "%s: neighbour probe (%s) not contained: %s" name
                a.Inject.a_desc
                (Format.asprintf "%a" Inject.pp_outcome o))
        probes)
    Inject.strategies

let test_self_test () =
  match Inject.self_test () with
  | Ok () -> ()
  | Error msg -> Alcotest.fail msg

let tests =
  List.map
    (fun (name, strat) ->
      Alcotest.test_case ("zero escapes: " ^ name) `Quick (test_strategy (name, strat)))
    Inject.strategies
  @ [
      Alcotest.test_case "all mutation classes exercised" `Quick test_all_classes_exercised;
      Alcotest.test_case "neighbour probes contained everywhere" `Quick
        test_neighbour_probe_contained;
      Alcotest.test_case "self-test: weakened isolation is detected" `Quick test_self_test;
    ]
