(* Tests for the observability plane: log-bucketed histograms with
   exemplars, SLO burn-rate alerting, the fault flight recorder, tail
   rings and tees, ring-overflow accounting, Prometheus exposition
   hygiene, and the fixed-width `sfi top` table. *)

module Hist = Sfi_util.Hist
module Stats = Sfi_util.Stats
module Prng = Sfi_util.Prng
module Trace = Sfi_trace.Trace
module Flight = Sfi_trace.Flight
module Slo = Sfi_faas.Slo
module Sim = Sfi_faas.Sim
module Shard = Sfi_faas.Shard
module Chaos = Sfi_inject.Chaos
module Kernel = Sfi_workloads.Kernel
module Runtime = Sfi_runtime.Runtime
module Machine = Sfi_machine.Machine

(* --- histogram vs exact percentiles -------------------------------- *)

(* The histogram's percentile mirrors Stats.percentile's rank semantics
   with each order statistic quantized to its bucket midpoint. With
   [sub] sub-buckets per octave a bucket at magnitude v is at most
   v / sub wide, so the interpolated answer stays within one bucket
   width of the exact sorted-array result at that magnitude. *)
let prop_hist_percentile_close =
  QCheck.Test.make ~name:"hist percentile within one bucket width of Stats.percentile"
    ~count:500
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 200) (float_range 1e-3 1e12))
        (float_range 0.0 100.0))
    (fun (xs, p) ->
      let h = Hist.create () in
      List.iter (Hist.record h) xs;
      let exact = Stats.percentile xs p in
      let approx = Hist.percentile h p in
      let tol =
        Float.max (Hist.bucket_width_at h exact)
          (exact /. float_of_int (Hist.sub_buckets h))
        +. 1e-9
      in
      Float.abs (approx -. exact) <= tol)

let hist_digest h =
  ( Hist.count h,
    Hist.total h,
    Hist.percentile h 50.0,
    Hist.percentile h 99.0,
    match Hist.exemplar_at h 0.0 with
    | Some e -> (e.Hist.ex_value, e.Hist.ex_index)
    | None -> (0.0, -1) )

let prop_hist_merge_assoc_commut =
  QCheck.Test.make ~name:"hist merge is associative and commutative" ~count:200
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 50) (float_range 1e-3 1e9))
        (list_of_size Gen.(int_range 1 50) (float_range 1e-3 1e9))
        (list_of_size Gen.(int_range 0 50) (float_range 1e-3 1e9)))
    (fun (a, b, c) ->
      let build off xs =
        let h = Hist.create () in
        List.iteri (fun i v -> Hist.record_exemplar h v ~index:(off + i)) xs;
        h
      in
      let ha () = build 0 a and hb () = build 1000 b and hc () = build 2000 c in
      (* (a + b) + c *)
      let left = ha () in
      let ab = ha () in
      Hist.merge ab (hb ());
      Hist.merge left (hb ());
      Hist.merge left (hc ());
      (* a + (b + c) *)
      let bc = hb () in
      Hist.merge bc (hc ());
      let right = ha () in
      Hist.merge right bc;
      (* b + a *)
      let ba = hb () in
      Hist.merge ba (ha ());
      let close (c1, t1, p50a, p99a, ex1) (c2, t2, p50b, p99b, ex2) =
        c1 = c2
        && Float.abs (t1 -. t2) <= 1e-6 *. Float.max 1.0 (Float.abs t1)
        && p50a = p50b && p99a = p99b && ex1 = ex2
      in
      close (hist_digest left) (hist_digest right)
      && close (hist_digest ab) (hist_digest ba))

let test_hist_zero_and_edge () =
  let h = Hist.create () in
  Alcotest.check_raises "empty percentile raises"
    (Invalid_argument "Hist.percentile: empty histogram") (fun () ->
      ignore (Hist.percentile h 50.0));
  Hist.record h 0.0;
  Hist.record h (-3.0);
  Alcotest.(check int) "zero/negative samples counted" 2 (Hist.count h);
  Alcotest.(check (float 0.0)) "zero bucket reports 0" 0.0 (Hist.percentile h 50.0);
  let h1 = Hist.create () in
  Hist.record h1 12345.0;
  let p = Hist.percentile h1 77.0 in
  Alcotest.(check bool) "single sample within its bucket" true
    (Float.abs (p -. 12345.0) <= Hist.bucket_width_at h1 12345.0)

let test_hist_exemplar_seal_and_merge_mismatch () =
  let h = Hist.create () in
  Hist.record_exemplar h 500.0 ~index:3;
  Hist.record_exemplar h 800.0 ~index:7;
  Hist.seal_exemplars h 0xFEEDL;
  (match Hist.exemplar_at h 99.0 with
  | Some e ->
      Alcotest.(check int64) "sealed ref" 0xFEEDL e.Hist.ex_ref;
      Alcotest.(check (float 0.0)) "largest value wins" 800.0 e.Hist.ex_value;
      Alcotest.(check int) "winning index" 7 e.Hist.ex_index
  | None -> Alcotest.fail "exemplar expected");
  let coarse = Hist.create ~sub:8 () in
  Alcotest.check_raises "sub mismatch refuses to merge"
    (Invalid_argument "Hist.merge: sub-bucket counts differ") (fun () ->
      Hist.merge h coarse)

(* --- Stats.percentile edge cases ----------------------------------- *)

let test_stats_percentile_edges () =
  Alcotest.check_raises "empty list raises"
    (Invalid_argument "Stats.percentile: empty list") (fun () ->
      ignore (Stats.percentile [] 50.0));
  List.iter
    (fun p ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "singleton at p=%.0f" p)
        42.0
        (Stats.percentile [ 42.0 ] p))
    [ 0.0; 37.0; 100.0 ];
  (* Duplicate-heavy: 99 copies of 1.0 and a single outlier. *)
  let xs = List.init 99 (fun _ -> 1.0) @ [ 100.0 ] in
  Alcotest.(check (float 1e-9)) "median of duplicates" 1.0 (Stats.percentile xs 50.0);
  Alcotest.(check (float 1e-9)) "p100 is the outlier" 100.0 (Stats.percentile xs 100.0);
  Alcotest.(check bool) "p99 interpolates toward the outlier" true
    (Stats.percentile xs 99.0 > 1.0)

(* --- trace ring overflow accounting -------------------------------- *)

let test_ring_overflow_keep_first () =
  let t = Trace.create_ring ~capacity:8 () in
  for i = 0 to 19 do
    Trace.pkru_write t ~value:i
  done;
  Alcotest.(check int) "keeps capacity events" 8 (Trace.length t);
  Alcotest.(check int) "dropped is exact" 12 (Trace.dropped t);
  let evs = Trace.events t in
  Alcotest.(check int) "first events retained" 0 (List.hd evs).Trace.ev_a0;
  Alcotest.(check int) "eighth event retained" 7
    (List.nth evs 7).Trace.ev_a0

let test_tail_ring_keep_last () =
  let t = Trace.create_tail_ring ~capacity:8 () in
  for i = 0 to 19 do
    Trace.pkru_write t ~value:i
  done;
  Alcotest.(check int) "keeps capacity events" 8 (Trace.length t);
  Alcotest.(check int) "overwritten count as dropped" 12 (Trace.dropped t);
  let evs = Trace.events t in
  Alcotest.(check int) "oldest retained is event 12" 12 (List.hd evs).Trace.ev_a0;
  Alcotest.(check int) "newest retained is event 19" 19
    (List.nth evs 7).Trace.ev_a0;
  Alcotest.(check bool) "logical order validates" true
    (Trace.validate t = Ok ())

let test_tee_forwards_with_shared_timestamp () =
  let primary = Trace.create_ring ~capacity:4 () in
  let tail = Trace.create_tail_ring ~capacity:8 () in
  let now = ref 0 in
  Trace.set_clock primary (fun () -> !now);
  Trace.set_tee primary (Some tail);
  for i = 0 to 9 do
    now := 100 * i;
    Trace.pkru_write primary ~value:i
  done;
  Alcotest.(check int) "primary keeps first 4" 4 (Trace.length primary);
  Alcotest.(check int) "primary dropped 6" 6 (Trace.dropped primary);
  Alcotest.(check int) "tail keeps last 8" 8 (Trace.length tail);
  let tl = Trace.events tail in
  Alcotest.(check int) "tail sees events the primary dropped" 9
    (List.nth tl 7).Trace.ev_a0;
  Alcotest.(check int) "tee shares the primary's timestamp" 900
    (List.nth tl 7).Trace.ev_ts

(* --- merge_shards: drop summing and determinism --------------------- *)

let prop_merge_shards_drops_and_fingerprint =
  QCheck.Test.make ~name:"merge_shards sums drops, deterministic fingerprint"
    ~count:50
    QCheck.(int_bound 10_000)
    (fun seed ->
      let rng = Prng.create ~seed:(Int64.of_int seed) in
      let make_shard () =
        (* Tiny capacity so some shards overflow and drop. *)
        let cap = 4 + Prng.int rng 8 in
        let t = Trace.create_ring ~capacity:cap () in
        let now = ref 0 in
        Trace.set_clock t (fun () -> !now);
        let n = Prng.int rng 24 in
        for _ = 1 to n do
          now := !now + Prng.int rng 50;
          match Prng.int rng 3 with
          | 0 -> Trace.pkru_write t ~value:(Prng.int rng 100)
          | 1 -> Trace.tlb_fill t ~page:(Prng.int rng 100)
          | _ -> Trace.instantiate t ~sandbox:(Prng.int rng 3) ~warm:true
        done;
        t
      in
      let shards = List.init 3 (fun _ -> make_shard ()) in
      let merged = Trace.merge_shards shards in
      let drop_sum = List.fold_left (fun a t -> a + Trace.dropped t) 0 shards in
      Trace.dropped merged = drop_sum
      && Trace.length merged = List.fold_left (fun a t -> a + Trace.length t) 0 shards
      && Trace.fingerprint merged
         = Trace.fingerprint (Trace.merge_shards shards)
      && Trace.validate merged = Ok ())

(* --- SLO burn-rate engine ------------------------------------------- *)

let slo_cfg =
  Slo.default_config ~latency_ns:1000.0 ~availability:0.9 ~fast_window_ns:1000.0
    ~slow_window_ns:8000.0 ~fast_burn:5.0 ~slow_burn:2.0 ()

let test_slo_burn_raises_and_clears () =
  let s = Slo.create slo_cfg in
  Alcotest.(check bool) "quiet tracker not alerting" false (Slo.alerting s Slo.Fast);
  (* All-bad traffic: bad fraction 1.0 against a 0.1 budget = burn 10. *)
  for i = 0 to 9 do
    Slo.record s ~now:(float_of_int (i * 50)) ~good:false
  done;
  Alcotest.(check (float 1e-9)) "burn = bad_fraction / budget" 10.0
    (Slo.burn s ~now:450.0 Slo.Fast);
  let trs = Slo.evaluate s ~now:450.0 in
  Alcotest.(check bool) "fast alert raised" true
    (List.exists (fun tr -> tr.Slo.tr_window = Slo.Fast && tr.Slo.tr_started) trs);
  Alcotest.(check bool) "alerting after raise" true (Slo.alerting s Slo.Fast);
  (* Edge-triggered: evaluating again at the same burn reports nothing. *)
  Alcotest.(check int) "no duplicate transitions" 0
    (List.length (Slo.evaluate s ~now:460.0));
  (* The window slides through an idle gap: far in the future every
     sub-bucket is stale, burn reads 0 and the alert clears. *)
  let trs = Slo.evaluate s ~now:1_000_000.0 in
  Alcotest.(check bool) "fast alert cleared after idle gap" true
    (List.exists (fun tr -> tr.Slo.tr_window = Slo.Fast && not tr.Slo.tr_started) trs);
  Alcotest.(check bool) "not alerting at quiescence" false (Slo.alerting s Slo.Fast)

let test_slo_good_traffic_never_alerts () =
  let s = Slo.create slo_cfg in
  for i = 0 to 99 do
    Slo.record s ~now:(float_of_int (i * 10)) ~good:true
  done;
  Alcotest.(check int) "no transitions on good traffic" 0
    (List.length (Slo.evaluate s ~now:1000.0));
  Alcotest.(check (float 1e-9)) "burn 0 on good traffic" 0.0
    (Slo.burn s ~now:1000.0 Slo.Fast)

(* --- flight recorder ------------------------------------------------ *)

let test_flight_untraced_tap_and_freeze () =
  let fr = Flight.create ~capacity:4 () in
  let sink = Flight.tap fr Trace.null in
  Alcotest.(check bool) "tail ring becomes the effective sink" true
    (Trace.enabled sink);
  for i = 0 to 5 do
    Trace.pkru_write sink ~value:i
  done;
  Flight.freeze fr ~reason:"fault" ~at_ns:123 ~counters:[ ("completed", 9.0) ];
  (match Flight.find fr "fault" with
  | None -> Alcotest.fail "bundle expected"
  | Some b ->
      Alcotest.(check int) "bundle keeps last capacity events" 4
        (List.length b.Flight.b_events);
      Alcotest.(check int) "scrolled-out events reported" 2 b.Flight.b_dropped;
      Alcotest.(check int) "freeze time recorded" 123 b.Flight.b_at_ns;
      Alcotest.(check (float 0.0)) "counters snapshotted" 9.0
        (List.assoc "completed" b.Flight.b_counters);
      Alcotest.(check int) "newest event in the tail" 5
        (List.nth b.Flight.b_events 3).Trace.ev_a0);
  Flight.freeze fr ~reason:"fault" ~at_ns:456 ~counters:[];
  Alcotest.(check int) "latest bundle per reason" 1
    (List.length (Flight.bundles fr));
  Alcotest.(check int) "freeze ordinal still advances" 2 (Flight.freezes fr);
  match Flight.find fr "fault" with
  | Some b -> Alcotest.(check int) "replacement kept" 456 b.Flight.b_at_ns
  | None -> Alcotest.fail "bundle expected"

let test_flight_tap_tees_enabled_primary () =
  let fr = Flight.create ~capacity:4 () in
  let primary = Trace.create_ring ~capacity:64 () in
  let sink = Flight.tap fr primary in
  Alcotest.(check bool) "enabled primary stays the sink" true (sink == primary);
  for i = 0 to 9 do
    Trace.pkru_write sink ~value:i
  done;
  Flight.freeze fr ~reason:"breaker.open" ~at_ns:0 ~counters:[];
  match Flight.find fr "breaker.open" with
  | Some b ->
      Alcotest.(check int) "recorder shadowed the primary" 4
        (List.length b.Flight.b_events);
      Alcotest.(check int) "tail holds the newest events" 9
        (List.nth b.Flight.b_events 3).Trace.ev_a0
  | None -> Alcotest.fail "bundle expected"

(* --- sim: tracing + recorder are pure observers --------------------- *)

(* Traced-vs-untraced bit-identity with the full observability plane
   armed: histograms always on, SLOs tracking, flight recorder frozen by
   real faults. The result fingerprint covers every counter, rate,
   percentile and burn value, so any behavioral leak from the observers
   shows up here. Pinned on both execution engines. *)
let check_sim_observers_bit_identical engine =
  let overload =
    {
      Sim.no_overload with
      Sim.pool_slots = Some 8;
      admission = Some Runtime.default_admission;
      breaker = Some Sfi_faas.Breaker.default_config;
      slo = Some (Slo.default_config ());
    }
  in
  let faults = { Sim.no_faults with Sim.trap_rate = 0.05 } in
  let cfg =
    {
      (Sim.default_config ~overload ~faults ~churn:true ~fair_scheduling:true
         ~engine ())
      with
      Sim.concurrency = 16;
      duration_ns = 3.0e6;
      io_mean_ns = 200_000.0;
      epoch_ns = 10_000.0;
    }
  in
  let plain = Sim.run cfg in
  let ring = Trace.create_ring ~capacity:4096 () in
  let fr = Flight.create () in
  let observed = Sim.run { cfg with Sim.trace = ring; flight = Some fr } in
  Alcotest.(check int64) "observers never change the result"
    (Shard.result_fingerprint plain)
    (Shard.result_fingerprint observed);
  Alcotest.(check int64) "checksum identical" plain.Sim.checksum observed.Sim.checksum;
  Alcotest.(check bool) "the run had faults to record" true (observed.Sim.failed > 0);
  Alcotest.(check bool) "flight recorder froze a fault bundle" true
    (match Flight.find fr "fault" with
    | Some b -> b.Flight.b_events <> []
    | None -> false)

let test_sim_observers_bit_identical_threaded () =
  check_sim_observers_bit_identical Machine.Threaded

let test_sim_observers_bit_identical_reference () =
  check_sim_observers_bit_identical Machine.Reference

(* --- chaos: a post-mortem for every fault class --------------------- *)

let test_chaos_postmortems_nonempty () =
  let fr = Flight.create () in
  let cfg =
    {
      (Chaos.default_config ~seed:0xF11EL ~perturbations:40 ()) with
      Chaos.duration_ns = 15.0e6;
      concurrency = 32;
    }
  in
  let r = Chaos.run ~flight:fr cfg in
  (match r.Chaos.violations with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "chaos violation [%d] %s: %s" v.Chaos.v_index v.Chaos.v_kind
        v.Chaos.v_detail);
  (* The harness already enforces the per-class bundle invariant as a
     violation; re-check the bundles directly so this pin stands even if
     the harness's own check regresses. *)
  List.iter
    (fun cls ->
      match Flight.find fr cls with
      | Some b ->
          Alcotest.(check bool) (cls ^ " bundle non-empty") true
            (b.Flight.b_events <> []);
          Alcotest.(check bool) (cls ^ " counters snapshotted") true
            (List.mem_assoc "chaos_applied" b.Flight.b_counters)
      | None -> Alcotest.failf "no post-mortem bundle for %s" cls)
    [ "chaos.kill"; "chaos.latency"; "chaos.instantiate_fail" ];
  Alcotest.(check bool) "renders a readable post-mortem" true
    (match Flight.find fr "chaos.kill" with
    | Some b ->
        let s = Flight.render b in
        String.length s > 0
    | None -> false)

(* --- sfi top table: golden fixed-width output ----------------------- *)

let top_stat =
  {
    Sim.t_id = 7;
    t_completed = 1234;
    t_failed = 5;
    t_shed = 6;
    t_breaker_opens = 2;
    t_breaker_state = "open";
    t_p50_ns = 1.5e6;
    t_p95_ns = 2.25e6;
    t_p99_ns = 9.875e6;
    t_p99_e2e_ns = 10.0e6;
    t_sb_share = 0.995;
    t_burn = 3.21;
    t_lat_hist = Hist.create ();
    t_e2e_hist = Hist.create ();
  }

let test_top_golden_breakers () =
  Alcotest.(check string) "breaker-mode header"
    "TENANT       OK   FAIL   SHED  BRKOPEN        BRK    BURN    P50(ms)    \
     P95(ms)    P99(ms)    SB%"
    (Sim.top_header ~breakers:true);
  Alcotest.(check string) "breaker-mode row"
    "     7     1234      5      6        2       open    3.21       1.50       \
     2.25       9.88  99.5%"
    (Sim.top_row ~breakers:true top_stat);
  Alcotest.(check int) "row aligns under header"
    (String.length (Sim.top_header ~breakers:true))
    (String.length (Sim.top_row ~breakers:true top_stat))

let test_top_golden_plain () =
  Alcotest.(check string) "plain header"
    "TENANT       OK   FAIL    P50(ms)    P95(ms)    P99(ms)    SB%"
    (Sim.top_header ~breakers:false);
  Alcotest.(check string) "plain row"
    "     7     1234      5       1.50       2.25       9.88  99.5%"
    (Sim.top_row ~breakers:false top_stat);
  Alcotest.(check int) "row aligns under header"
    (String.length (Sim.top_header ~breakers:false))
    (String.length (Sim.top_row ~breakers:false top_stat))

(* --- Prometheus exposition hygiene ---------------------------------- *)

(* Lint one exposition document: every metric has # HELP and # TYPE
   headers before its sample, names are legal, samples parse as floats,
   and nothing else appears. *)
let lint_exposition text =
  let legal_name n =
    n <> ""
    && (match n.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
    && String.for_all
         (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true | _ -> false)
         n
  in
  let helped = Hashtbl.create 16 and typed = Hashtbl.create 16 in
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "")
  |> List.iter (fun line ->
         match String.split_on_char ' ' line with
         | "#" :: "HELP" :: name :: _rest ->
             if not (legal_name name) then Alcotest.failf "bad HELP name: %s" line;
             Hashtbl.replace helped name ()
         | "#" :: "TYPE" :: name :: [ "gauge" ] ->
             if not (legal_name name) then Alcotest.failf "bad TYPE name: %s" line;
             Hashtbl.replace typed name ()
         | [ sample; value ] ->
             let name =
               match String.index_opt sample '{' with
               | Some i -> String.sub sample 0 i
               | None -> sample
             in
             if not (legal_name name) then Alcotest.failf "bad metric name: %s" line;
             if not (Hashtbl.mem helped name) then
               Alcotest.failf "sample before # HELP: %s" line;
             if not (Hashtbl.mem typed name) then
               Alcotest.failf "sample before # TYPE: %s" line;
             if Float.is_nan (float_of_string value) then
               Alcotest.failf "NaN sample: %s" line
         | _ -> Alcotest.failf "unparseable exposition line: %s" line)

let test_prometheus_lint_kernel_gauges () =
  (* The exact gauge set `sfi run --metrics-out` writes. *)
  Runtime.reset_domain_metrics ();
  let m =
    Kernel.run ~strategy:Sfi_core.Strategy.segue Sfi_workloads.Sightglass.gimli
  in
  let gauges = Kernel.prometheus_gauges m (Runtime.domain_metrics ()) in
  Alcotest.(check bool) "covers machine and runtime counters" true
    (List.length gauges >= 20);
  lint_exposition (Trace.prometheus gauges)

let test_prometheus_labeled_escaping () =
  let text =
    Trace.prometheus_labeled
      [
        ("sfi_demo", "a \"quoted\" help\nwith newline", [ ("tenant", "a\\b\"c\nd") ], 1.0);
        ("sfi_demo", "a \"quoted\" help\nwith newline", [ ("tenant", "plain") ], 2.0);
      ]
  in
  lint_exposition text;
  Alcotest.(check bool) "label backslash escaped" true
    (let rec has i =
       i + 4 <= String.length text && (String.sub text i 4 = "a\\\\b" || has (i + 1))
     in
     has 0);
  Alcotest.(check bool) "label newline escaped" true
    (let rec has i =
       i + 2 <= String.length text && (String.sub text i 2 = "\\n" || has (i + 1))
     in
     has 0);
  (* One HELP/TYPE header for the two samples of the shared name. *)
  let count_sub sub =
    let n = String.length sub in
    let rec go i acc =
      if i + n > String.length text then acc
      else go (i + 1) (acc + if String.sub text i n = sub then 1 else 0)
    in
    go 0 0
  in
  Alcotest.(check int) "single HELP for a shared metric name" 1
    (count_sub "# HELP sfi_demo")

let tests =
  [
    QCheck_alcotest.to_alcotest prop_hist_percentile_close;
    QCheck_alcotest.to_alcotest prop_hist_merge_assoc_commut;
    Harness.case "hist zero bucket and single sample" test_hist_zero_and_edge;
    Harness.case "hist exemplar seal, merge mismatch"
      test_hist_exemplar_seal_and_merge_mismatch;
    Harness.case "stats percentile edge cases" test_stats_percentile_edges;
    Harness.case "ring overflow keeps first, counts dropped"
      test_ring_overflow_keep_first;
    Harness.case "tail ring keeps last, counts overwrites" test_tail_ring_keep_last;
    Harness.case "tee forwards with shared timestamp"
      test_tee_forwards_with_shared_timestamp;
    QCheck_alcotest.to_alcotest prop_merge_shards_drops_and_fingerprint;
    Harness.case "slo burn raises and clears" test_slo_burn_raises_and_clears;
    Harness.case "slo good traffic never alerts" test_slo_good_traffic_never_alerts;
    Harness.case "flight untraced tap and freeze" test_flight_untraced_tap_and_freeze;
    Harness.case "flight taps an enabled primary" test_flight_tap_tees_enabled_primary;
    Harness.case "sim observers bit-identical (threaded)"
      test_sim_observers_bit_identical_threaded;
    Harness.case "sim observers bit-identical (reference)"
      test_sim_observers_bit_identical_reference;
    Harness.case "chaos freezes a post-mortem per fault class"
      test_chaos_postmortems_nonempty;
    Harness.case "top golden output (breakers)" test_top_golden_breakers;
    Harness.case "top golden output (plain)" test_top_golden_plain;
    Harness.case "prometheus lint over kernel gauges"
      test_prometheus_lint_kernel_gauges;
    Harness.case "prometheus labeled escaping" test_prometheus_labeled_escaping;
  ]
