type config = {
  entries : int;
  ways : int;
  page_walk_levels : int;
  walk_cycles_per_level : int;
}

let default_config = { entries = 64; ways = 4; page_walk_levels = 4; walk_cycles_per_level = 5 }

type t = {
  config : config;
  sets : int;
  tags : int array; (* tags.(set * ways + way) = page number, -1 = invalid *)
  payloads : int array;
  stamps : int array; (* LRU stamps; larger = more recent *)
  mutable clock : int;
  mutable hits : int;
  mutable misses : int;
  mutable trace : Sfi_trace.Trace.t;
}

let create config =
  if config.entries <= 0 || config.ways <= 0 || config.entries mod config.ways <> 0 then
    invalid_arg "Tlb.create: entries must be a positive multiple of ways";
  let sets = config.entries / config.ways in
  {
    config;
    sets;
    tags = Array.make config.entries (-1);
    payloads = Array.make config.entries 0;
    stamps = Array.make config.entries 0;
    clock = 0;
    hits = 0;
    misses = 0;
    trace = Sfi_trace.Trace.null;
  }

let set_trace t sink = t.trace <- sink

let walk_cost t = t.config.page_walk_levels * t.config.walk_cycles_per_level

let lookup_slot t ~page =
  let set = page mod t.sets in
  let base = set * t.config.ways in
  t.clock <- t.clock + 1;
  let rec find way =
    if way >= t.config.ways then None
    else if t.tags.(base + way) = page then Some way
    else find (way + 1)
  in
  match find 0 with
  | Some way ->
      t.hits <- t.hits + 1;
      t.stamps.(base + way) <- t.clock;
      Some (t.payloads.(base + way), base + way)
  | None ->
      t.misses <- t.misses + 1;
      None

let lookup t ~page =
  match lookup_slot t ~page with Some (payload, _) -> Some payload | None -> None

let fill_slot t ~page ~payload =
  let set = page mod t.sets in
  let base = set * t.config.ways in
  let victim = ref 0 in
  for way = 1 to t.config.ways - 1 do
    if t.stamps.(base + way) < t.stamps.(base + !victim) then victim := way
  done;
  (* A fill is a recency event of its own: without the increment a
     just-filled line reuses the last lookup/touch clock, ties with the
     most-recently-touched line, and can be evicted by the very next fill
     in the set. *)
  t.clock <- t.clock + 1;
  if Sfi_trace.Trace.enabled t.trace then begin
    let displaced = t.tags.(base + !victim) in
    if displaced >= 0 then Sfi_trace.Trace.tlb_evict t.trace ~page:displaced;
    Sfi_trace.Trace.tlb_fill t.trace ~page
  end;
  t.tags.(base + !victim) <- page;
  t.payloads.(base + !victim) <- payload;
  t.stamps.(base + !victim) <- t.clock;
  base + !victim

let fill t ~page ~payload = ignore (fill_slot t ~page ~payload)

let holds t ~slot ~page = t.tags.(slot) = page

let touch t ~slot =
  t.clock <- t.clock + 1;
  t.hits <- t.hits + 1;
  t.stamps.(slot) <- t.clock

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0

let misses t = t.misses
let hits t = t.hits

let reset_counters t =
  t.hits <- 0;
  t.misses <- 0
