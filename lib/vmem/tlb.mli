(** A small data-TLB model.

    Figure 7b explains multiprocess scaling's throughput loss partly through
    dTLB misses: every OS process switch flushes the TLB, while ColorGuard's
    in-process transitions keep it warm. We model a set-associative TLB with
    LRU replacement; a miss costs a page walk whose latency depends on the
    paging depth (4-level vs 5-level — §8's 57-bit address-space
    discussion).

    Entries carry an integer payload. The machine stores each page's
    protection bits and MPK key there, mirroring hardware: permissions and
    the key are cached in the TLB entry, while the PKRU check happens on
    every access against the cached key. *)

type t

type config = {
  entries : int;  (** total entries, e.g. 64 *)
  ways : int;  (** associativity, e.g. 4 *)
  page_walk_levels : int;  (** 4 (48-bit VA) or 5 (57-bit VA) *)
  walk_cycles_per_level : int;  (** cycles per level, e.g. 5 *)
}

val default_config : config
(** 64-entry, 4-way, 4-level walk. *)

val create : config -> t

val lookup : t -> page:int -> int option
(** [lookup t ~page] returns the cached payload on a hit (updating recency)
    or [None] on a miss. The caller walks the page table, charges
    {!walk_cost}, and {!fill}s. *)

val fill : t -> page:int -> payload:int -> unit
(** Insert a translation, evicting the set's LRU entry if needed. The fill
    is itself a recency event: the inserted line is stamped strictly newer
    than every line touched before it. *)

val lookup_slot : t -> page:int -> (int * int) option
(** Like {!lookup} but also returns the entry's slot index, so callers can
    pin a hot translation and re-touch it cheaply via {!touch} without a
    full set scan. Counter effects are identical to {!lookup}. *)

val fill_slot : t -> page:int -> payload:int -> int
(** Like {!fill} but returns the slot index the translation landed in. *)

val holds : t -> slot:int -> page:int -> bool
(** Is [slot] still caching the translation for [page]? False once the
    entry is evicted or the TLB flushed. *)

val touch : t -> slot:int -> unit
(** Record a repeat hit on a pinned slot: advances the clock, counts a hit
    and refreshes the entry's LRU stamp — exactly what {!lookup} would do
    on a hit, minus the set scan. Only call when {!holds} is true. *)

val walk_cost : t -> int
(** Cycles for one page walk under this configuration. *)

val flush : t -> unit
(** Full flush — what a CR3 write (process context switch) does.
    ColorGuard transitions never call this. *)

val misses : t -> int
val hits : t -> int
val reset_counters : t -> unit

val set_trace : t -> Sfi_trace.Trace.t -> unit
(** Attach a trace sink. Fills then emit a [tlb.fill] event (and a
    [tlb.evict] for the displaced entry when the victim way was valid)
    on the machine track; the sink's clock supplies timestamps. The
    default sink is {!Sfi_trace.Trace.null}, which costs one branch per
    fill. *)
