(** A simulated user virtual address space.

    Backs the guard-region SFI story: Wasm engines allocate a 4 GiB linear
    memory followed by a 4 GiB unmapped guard region per sandbox, so that
    any "base + 33-bit offset" access either hits linear memory or traps
    (§2). ColorGuard replaces most guard space with MPK-colored slots (§3.2).

    The space tracks VMAs (start, length, protection, MPK key) like a kernel
    would, lazily materializes 4 KiB pages in a sparse store, and enforces
    a configurable [vm.max_map_count] — the Linux limit ColorGuard
    deployments must raise because each colored stripe is its own VMA
    (§5.1, "Other deployment considerations"). *)

type t

type vma = { start : int; len : int; prot : Prot.t; pkey : int }

val create : ?max_map_count:int -> unit -> t
(** Fresh empty space. [max_map_count] defaults to 65530 (Linux's default),
    the limit the paper notes must be raised to fully use ColorGuard. *)

val page_size : int
val page_of_addr : int -> int

(** {1 Mapping system calls} *)

val map : t -> addr:int -> len:int -> prot:Prot.t -> (unit, string) result
(** [mmap(MAP_FIXED)]-style: map [\[addr, addr+len)] with [prot] and the
    default pkey. Page-aligned arguments required. Fails on overlap with an
    existing mapping or when the VMA budget is exhausted. *)

val unmap : t -> addr:int -> len:int -> (unit, string) result

val protect : t -> addr:int -> len:int -> prot:Prot.t -> (unit, string) result
(** [mprotect]. The range must be fully mapped. *)

val pkey_protect : t -> addr:int -> len:int -> prot:Prot.t -> key:int -> (unit, string) result
(** [pkey_mprotect] — assign an MPK color to a mapped range (§5.1, step 2 of
    ColorGuard). Splitting a VMA can exceed the map-count budget, which this
    reports as an error. *)

val madvise_dontneed : t -> addr:int -> len:int -> (unit, string) result
(** Zero the range's contents but keep mapping, protection and pkey — how
    Wasmtime recycles an instance slot. Notably MPK colors survive this call
    while MTE tags do not (§7, Observation 2); MTE tag discarding is modeled
    in {!Mte}. *)

(** {1 Inspection} *)

val find_vma : t -> int -> vma option
val vma_count : t -> int
val max_map_count : t -> int

val generation : t -> int
(** Incremented on every layout change ([map], [unmap], [protect],
    [pkey_protect]). The machine's TLB model uses this to invalidate cached
    translations, exactly as a kernel shoots down TLBs after mapping
    changes. *)

val data_epoch : t -> int
(** Incremented whenever a page's backing store changes identity — a fresh
    page is materialized, pages are discarded by [madvise_dontneed], or a
    range is unmapped. Callers caching a [Bytes.t] from {!page_for_read} /
    {!page_for_write} must revalidate when this moves. *)

val page_info : t -> addr:int -> (Prot.t * int) option
(** Protection and pkey covering this address, if mapped. *)

(** {1 Access checking}

    The machine consults this on every load/store, after its TLB model. *)

val check_access :
  t -> pkru:Mpk.pkru -> addr:int -> len:int -> write:bool -> (unit, Prot.fault) result

(** {1 Data access}

    Little-endian. These do {e not} re-check permissions — callers go
    through {!check_access} first (the machine does). Reading unmapped
    memory returns zeros, mirroring a fresh anonymous mapping. *)

val read8 : t -> int -> int
val read16 : t -> int -> int
val read32 : t -> int -> int32
val read64 : t -> int -> int64
val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int32 -> unit
val write64 : t -> int -> int64 -> unit

val page_for_read : t -> page:int -> bytes
(** The backing bytes of [page] for reading. Unmaterialized pages return a
    shared all-zero page — do {e not} write through this. Valid until
    {!data_epoch} changes. *)

val page_for_write : t -> page:int -> bytes
(** The backing bytes of [page], materializing it if needed (which bumps
    {!data_epoch}). Valid until {!data_epoch} changes again. *)

val read_bytes : t -> addr:int -> len:int -> bytes
val write_bytes : t -> addr:int -> bytes -> unit
val fill : t -> addr:int -> len:int -> byte:int -> unit
val copy : t -> src:int -> dst:int -> len:int -> unit
(** Overlap-safe (memmove semantics). *)

val resident_pages : t -> int
(** Number of materialized pages — a proxy for RSS, used to show that Wasm
    FaaS instances "rarely exceed a few hundred megabytes" of the 8 GiB
    reservation (§2). Pages served straight from a backing {!image} are
    shared, not resident. *)

(** {1 Copy-on-write backing images}

    How Wasmtime's pooling allocator gets its cold-start numbers: the
    pre-initialized module image (data segments, vmctx template) is mapped
    [MAP_PRIVATE] behind every slot. Reads hit the shared image; the first
    write to a page takes a CoW fault and privatizes it; recycling a slot
    is [madvise(MADV_DONTNEED)] over {e only the privatized pages}, after
    which reads see the pristine image again — O(dirtied pages), not
    O(heap size). *)

type image
(** An immutable page store shared by every region backed by it. *)

val image_of_data : (int * string) list -> image
(** Build an image from [(byte_offset, bytes)] segments, offsets relative
    to the start of the region the image will back. Untouched bytes read as
    zeros. *)

val image_pages : image -> int
(** Pages materialized in the image itself. *)

val set_backing : t -> addr:int -> len:int -> image -> (unit, string) result
(** Register [image] as the copy-on-write backing of [\[addr, addr+len)]
    and start dirty-page tracking for the range. Orthogonal to the VMA
    layer (map/protect the range separately); must not overlap another
    backing region, and must be registered before any page in the range is
    materialized (pages materialized earlier would escape the dirty
    tracking). An empty image gives a zero-backed tracked region. *)

val dirty_pages : t -> addr:int -> int
(** Privatized (dirtied) page count of the backing region starting at
    [addr]; 0 if none is registered. O(1). *)

val recycle : t -> addr:int -> len:int -> (int, string) result
(** Drop every private page of the backing region exactly covering
    [\[addr, addr+len)], so reads revert to the pristine image. Returns the
    number of pages dropped — the recycle's whole cost, O(dirty pages).
    Mapping, protection and pkeys are untouched (MPK colors survive, §7
    Observation 2). *)
