module Imap = Map.Make (Int)

let page_size = 4096
let page_shift = 12
let page_of_addr addr = addr lsr page_shift

type vma = { start : int; len : int; prot : Prot.t; pkey : int }

(* A frozen page store shared by every region backed by it: page index
   relative to the region start -> pristine contents. Pages absent from the
   image read as zeros, like the untouched parts of an anonymous mapping. *)
type image = { img_pages : (int, Bytes.t) Hashtbl.t }

(* A copy-on-write region: reads fall through to the (shared, immutable)
   image; the first write to a page copies it into the space's private page
   store and records it in [r_private], so recycling the region is
   O(dirtied pages) — drop the private copies and reads revert to the
   image, exactly what madvise(MADV_DONTNEED) does to a MAP_PRIVATE file
   mapping. *)
type region = {
  r_start : int;
  r_len : int;
  r_image : image;
  r_private : (int, unit) Hashtbl.t; (* absolute page numbers dirtied *)
}

type t = {
  mutable vmas : vma Imap.t; (* keyed by start address *)
  pages : (int, Bytes.t) Hashtbl.t;
  mutable regions : region Imap.t; (* keyed by start address *)
  max_map_count : int;
  mutable generation : int; (* bumped whenever the VMA layout changes *)
  mutable data_epoch : int; (* bumped whenever a page's backing store changes *)
}

let create ?(max_map_count = 65530) () =
  {
    vmas = Imap.empty;
    pages = Hashtbl.create 4096;
    regions = Imap.empty;
    max_map_count;
    generation = 0;
    data_epoch = 0;
  }

let generation t = t.generation
let data_epoch t = t.data_epoch

let vma_count t = Imap.cardinal t.vmas
let max_map_count t = t.max_map_count

let vma_end v = v.start + v.len

let find_vma t addr =
  match Imap.find_last_opt (fun s -> s <= addr) t.vmas with
  | Some (_, v) when addr < vma_end v -> Some v
  | Some _ | None -> None

let page_info t ~addr =
  match find_vma t addr with Some v -> Some (v.prot, v.pkey) | None -> None

let aligned addr len =
  addr >= 0 && len > 0 && addr mod page_size = 0 && len mod page_size = 0

let region_of_page t p =
  if Imap.is_empty t.regions then None
  else
    let addr = p lsl page_shift in
    match Imap.find_last_opt (fun s -> s <= addr) t.regions with
    | Some (_, r) when addr < r.r_start + r.r_len -> Some r
    | Some _ | None -> None

let image_page r p = Hashtbl.find_opt r.r_image.img_pages (p - (r.r_start lsr page_shift))

(* Forget a page's private copy; if a COW region covers it, its dirty set
   must forget it too (the next write re-privatizes from the image). *)
let drop_page t p =
  Hashtbl.remove t.pages p;
  match region_of_page t p with Some r -> Hashtbl.remove r.r_private p | None -> ()

(* Any existing VMA overlapping [addr, addr+len)? *)
let overlapping t addr len =
  let finish = addr + len in
  (* The VMA starting before addr may extend into the range... *)
  let before =
    match Imap.find_last_opt (fun s -> s < addr) t.vmas with
    | Some (_, v) when vma_end v > addr -> [ v ]
    | Some _ | None -> []
  in
  (* ...and any VMA starting inside the range overlaps. *)
  let inside =
    Imap.fold
      (fun s v acc -> if s >= addr && s < finish then v :: acc else acc)
      t.vmas []
  in
  before @ inside

let map t ~addr ~len ~prot =
  if not (aligned addr len) then Error "map: unaligned or empty range"
  else if overlapping t addr len <> [] then Error "map: overlaps existing mapping"
  else if vma_count t >= t.max_map_count then Error "map: vm.max_map_count exceeded"
  else begin
    t.vmas <- Imap.add addr { start = addr; len; prot; pkey = Mpk.default_key } t.vmas;
    t.generation <- t.generation + 1;
    Ok ()
  end

(* Split the VMA containing [addr] (if any) so that a VMA boundary falls
   exactly at [addr]. *)
let split_at t addr =
  match find_vma t addr with
  | Some v when v.start < addr ->
      let left = { v with len = addr - v.start } in
      let right = { v with start = addr; len = vma_end v - addr } in
      t.vmas <- Imap.add addr right (Imap.add v.start left t.vmas)
  | Some _ | None -> ()

(* Merge VMAs with identical attributes that became adjacent after an
   update, as the kernel does — keeps vma_count honest for the
   max_map_count experiments. *)
let merge_range t addr len =
  let finish = addr + len in
  let rec merge_from pos =
    if pos > finish then ()
    else
      match Imap.find_last_opt (fun s -> s <= pos) t.vmas with
      | None -> ()
      | Some (_, v) -> (
          match Imap.find_opt (vma_end v) t.vmas with
          | Some next when next.prot = v.prot && next.pkey = v.pkey ->
              t.vmas <- Imap.remove next.start t.vmas;
              t.vmas <- Imap.add v.start { v with len = v.len + next.len } t.vmas;
              merge_from pos
          | Some next -> merge_from (vma_end next)
          | None -> ())
  in
  (* Start just before the range so a merge across the left edge happens. *)
  merge_from (max 0 (addr - 1))

(* Apply [f] to every VMA fully inside [addr, addr+len), after splitting at
   the edges. The range must be fully mapped. *)
let update_range t addr len f =
  if not (aligned addr len) then Error "unaligned or empty range"
  else begin
    let finish = addr + len in
    (* Verify full coverage before mutating. *)
    let rec covered pos =
      if pos >= finish then true
      else
        match find_vma t pos with
        | Some v -> covered (vma_end v)
        | None -> false
    in
    if not (covered addr) then Error "range not fully mapped"
    else begin
      split_at t addr;
      split_at t finish;
      let updated =
        Imap.map (fun v -> if v.start >= addr && vma_end v <= finish then f v else v) t.vmas
      in
      t.vmas <- updated;
      if vma_count t > t.max_map_count then Error "vm.max_map_count exceeded"
      else begin
        merge_range t addr len;
        t.generation <- t.generation + 1;
        Ok ()
      end
    end
  end

let protect t ~addr ~len ~prot = update_range t addr len (fun v -> { v with prot })

let pkey_protect t ~addr ~len ~prot ~key =
  if key < 0 || key >= Mpk.num_keys then Error "pkey_protect: invalid key"
  else update_range t addr len (fun v -> { v with prot; pkey = key })

let unmap t ~addr ~len =
  if not (aligned addr len) then Error "unmap: unaligned or empty range"
  else begin
    split_at t addr;
    split_at t (addr + len);
    let finish = addr + len in
    t.vmas <- Imap.filter (fun s v -> not (s >= addr && vma_end v <= finish)) t.vmas;
    (* Drop page contents. *)
    for p = page_of_addr addr to page_of_addr (finish - 1) do
      drop_page t p
    done;
    (* Backing registrations fully inside the range die with the mapping. *)
    t.regions <-
      Imap.filter (fun s r -> not (s >= addr && s + r.r_len <= finish)) t.regions;
    t.generation <- t.generation + 1;
    t.data_epoch <- t.data_epoch + 1;
    Ok ()
  end

let madvise_dontneed t ~addr ~len =
  if not (aligned addr len) then Error "madvise: unaligned or empty range"
  else begin
    for p = page_of_addr addr to page_of_addr (addr + len - 1) do
      drop_page t p
    done;
    t.data_epoch <- t.data_epoch + 1;
    Ok ()
  end

let check_access t ~pkru ~addr ~len ~write =
  if len <= 0 then Ok ()
  else begin
    let first = page_of_addr addr and last = page_of_addr (addr + len - 1) in
    let rec check page =
      if page > last then Ok ()
      else
        match find_vma t (page lsl page_shift) with
        | None -> Error Prot.Unmapped
        | Some v ->
            if (write && not v.prot.Prot.write) || ((not write) && not v.prot.Prot.read) then
              Error Prot.Prot_violation
            else if not (Mpk.allows pkru ~key:v.pkey ~write) then Error Prot.Pkey_violation
            else check (page + 1)
    in
    check first
  end

(* --- Sparse data store --- *)

let zero_page = Bytes.make page_size '\000'

let get_page_ro t p =
  match Hashtbl.find_opt t.pages p with
  | Some b -> b
  | None -> (
      match region_of_page t p with
      | Some r -> ( match image_page r p with Some b -> b | None -> zero_page)
      | None -> zero_page)

let get_page_rw t p =
  match Hashtbl.find_opt t.pages p with
  | Some b -> b
  | None ->
      let b =
        match region_of_page t p with
        | Some r ->
            (* Copy-on-write fault: privatize the image page. *)
            Hashtbl.replace r.r_private p ();
            (match image_page r p with
            | Some img -> Bytes.copy img
            | None -> Bytes.make page_size '\000')
        | None -> Bytes.make page_size '\000'
      in
      Hashtbl.replace t.pages p b;
      (* A fresh backing page replaces the shared zero/image page for reads
         too, so any cached read-only view of this page is now stale. *)
      t.data_epoch <- t.data_epoch + 1;
      b

let page_for_read t ~page = get_page_ro t page
let page_for_write t ~page = get_page_rw t page

let read8 t addr = Char.code (Bytes.get (get_page_ro t (page_of_addr addr)) (addr land (page_size - 1)))

let write8 t addr v =
  Bytes.set (get_page_rw t (page_of_addr addr)) (addr land (page_size - 1)) (Char.chr (v land 0xFF))

let within_page addr len = addr land (page_size - 1) <= page_size - len

let read16 t addr =
  if within_page addr 2 then
    Bytes.get_uint16_le (get_page_ro t (page_of_addr addr)) (addr land (page_size - 1))
  else read8 t addr lor (read8 t (addr + 1) lsl 8)

let write16 t addr v =
  if within_page addr 2 then
    Bytes.set_uint16_le (get_page_rw t (page_of_addr addr)) (addr land (page_size - 1)) (v land 0xFFFF)
  else begin
    write8 t addr v;
    write8 t (addr + 1) (v lsr 8)
  end

let read32 t addr =
  if within_page addr 4 then
    Bytes.get_int32_le (get_page_ro t (page_of_addr addr)) (addr land (page_size - 1))
  else
    let lo = read16 t addr and hi = read16 t (addr + 2) in
    Int32.logor (Int32.of_int lo) (Int32.shift_left (Int32.of_int hi) 16)

let write32 t addr v =
  if within_page addr 4 then
    Bytes.set_int32_le (get_page_rw t (page_of_addr addr)) (addr land (page_size - 1)) v
  else begin
    write16 t addr (Int32.to_int v land 0xFFFF);
    write16 t (addr + 2) (Int32.to_int (Int32.shift_right_logical v 16) land 0xFFFF)
  end

let read64 t addr =
  if within_page addr 8 then
    Bytes.get_int64_le (get_page_ro t (page_of_addr addr)) (addr land (page_size - 1))
  else
    let lo = read32 t addr and hi = read32 t (addr + 4) in
    Int64.logor
      (Int64.logand (Int64.of_int32 lo) 0xFFFFFFFFL)
      (Int64.shift_left (Int64.of_int32 hi) 32)

let write64 t addr v =
  if within_page addr 8 then
    Bytes.set_int64_le (get_page_rw t (page_of_addr addr)) (addr land (page_size - 1)) v
  else begin
    write32 t addr (Int64.to_int32 v);
    write32 t (addr + 4) (Int64.to_int32 (Int64.shift_right_logical v 32))
  end

let read_bytes t ~addr ~len =
  let out = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let in_page = a land (page_size - 1) in
    let chunk = min (len - !pos) (page_size - in_page) in
    Bytes.blit (get_page_ro t (page_of_addr a)) in_page out !pos chunk;
    pos := !pos + chunk
  done;
  out

let write_bytes t ~addr b =
  let len = Bytes.length b in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let in_page = a land (page_size - 1) in
    let chunk = min (len - !pos) (page_size - in_page) in
    Bytes.blit b !pos (get_page_rw t (page_of_addr a)) in_page chunk;
    pos := !pos + chunk
  done

let fill t ~addr ~len ~byte =
  let c = Char.chr (byte land 0xFF) in
  let pos = ref 0 in
  while !pos < len do
    let a = addr + !pos in
    let in_page = a land (page_size - 1) in
    let chunk = min (len - !pos) (page_size - in_page) in
    Bytes.fill (get_page_rw t (page_of_addr a)) in_page chunk c;
    pos := !pos + chunk
  done

let copy t ~src ~dst ~len =
  if len > 0 then begin
    (* Read-then-write gives memmove semantics for overlapping ranges. *)
    let data = read_bytes t ~addr:src ~len in
    write_bytes t ~addr:dst data
  end

let resident_pages t = Hashtbl.length t.pages

(* --- Copy-on-write backing images --- *)

let image_of_data segments =
  let img_pages = Hashtbl.create 16 in
  let page_for p =
    match Hashtbl.find_opt img_pages p with
    | Some b -> b
    | None ->
        let b = Bytes.make page_size '\000' in
        Hashtbl.replace img_pages p b;
        b
  in
  List.iter
    (fun (off, s) ->
      if off < 0 then invalid_arg "image_of_data: negative offset";
      let len = String.length s in
      let pos = ref 0 in
      while !pos < len do
        let a = off + !pos in
        let in_page = a land (page_size - 1) in
        let chunk = min (len - !pos) (page_size - in_page) in
        Bytes.blit_string s !pos (page_for (a lsr page_shift)) in_page chunk;
        pos := !pos + chunk
      done)
    segments;
  { img_pages }

let image_pages img = Hashtbl.length img.img_pages

let find_region_exact t ~addr ~len =
  match Imap.find_opt addr t.regions with
  | Some r when r.r_len = len -> Some r
  | Some _ | None -> None

let set_backing t ~addr ~len image =
  if not (aligned addr len) then Error "set_backing: unaligned or empty range"
  else if
    Imap.exists (fun s r -> s < addr + len && s + r.r_len > addr) t.regions
  then Error "set_backing: overlaps an existing backing region"
  else begin
    t.regions <-
      Imap.add addr
        { r_start = addr; r_len = len; r_image = image; r_private = Hashtbl.create 16 }
        t.regions;
    (* Reads in the range change from zeros to the image contents. *)
    t.data_epoch <- t.data_epoch + 1;
    Ok ()
  end

let dirty_pages t ~addr =
  match Imap.find_opt addr t.regions with
  | Some r -> Hashtbl.length r.r_private
  | None -> 0

let recycle t ~addr ~len =
  match find_region_exact t ~addr ~len with
  | None -> Error "recycle: no backing region registered for this range"
  | Some r ->
      let n = Hashtbl.length r.r_private in
      if n > 0 then begin
        Hashtbl.iter (fun p () -> Hashtbl.remove t.pages p) r.r_private;
        Hashtbl.reset r.r_private;
        t.data_epoch <- t.data_epoch + 1
      end;
      Ok n
