module W = Sfi_wasm.Ast
module Machine = Sfi_machine.Machine
module Codegen = Sfi_core.Codegen
module Strategy = Sfi_core.Strategy
module Runtime = Sfi_runtime.Runtime

type t = {
  name : string;
  suite : string;
  description : string;
  wasm : W.module_ Lazy.t;
  native : W.module_ Lazy.t option;
  entry : string;
  args : int64 list;
  checksum : int64 option;
}

let make ~name ~suite ?(description = "") ?native ?checksum ~entry ~args wasm =
  { name; suite; description; wasm; native; entry; args; checksum }

type measurement = {
  result : int64;
  cycles : int;
  instructions : int;
  code_bytes : int;
  fetched_bytes : int;
  dcache_misses : int;
  dtlb_misses : int;
  ns : float;
  tier : Machine.tier_stats;
}

let module_for k (strategy : Strategy.t) =
  match (strategy.Strategy.addressing, k.native) with
  | Strategy.Direct, Some native -> Lazy.force native
  | _ -> Lazy.force k.wasm

let compile ?(vectorize = false) ~strategy k =
  let cfg = { (Codegen.default_config ~strategy ()) with Codegen.vectorize } in
  Codegen.compile cfg (module_for k strategy)

let run ?cost ?vectorize ?engine ?trace ~strategy k =
  let compiled = compile ?vectorize ~strategy k in
  let engine = Runtime.create_engine ?cost ?engine compiled in
  (match trace with Some sink -> Runtime.set_trace engine sink | None -> ());
  let inst = Runtime.instantiate engine in
  Runtime.reset_metrics engine;
  match Runtime.invoke inst k.entry k.args with
  | Error trap ->
      failwith
        (Printf.sprintf "%s/%s (%s): trapped: %s" k.suite k.name (Strategy.name strategy)
           (Sfi_x86.Ast.trap_name trap))
  | Ok raw ->
      let m = module_for k strategy in
      let result =
        match (W.type_of_func m (W.func_index_of_export m k.entry)).W.results with
        | [ W.I32 ] -> Int64.logand raw 0xFFFFFFFFL
        | _ -> raw
      in
      (match k.checksum with
      | Some expected when not (Int64.equal expected result) ->
          failwith
            (Printf.sprintf "%s/%s (%s): checksum mismatch: expected %Ld, got %Ld" k.suite
               k.name (Strategy.name strategy) expected result)
      | Some _ | None -> ());
      let mach = Runtime.machine engine in
      let c = Machine.counters mach in
      {
        result;
        cycles = c.Machine.cycles;
        instructions = c.Machine.instructions;
        code_bytes = compiled.Codegen.code_bytes;
        fetched_bytes = c.Machine.code_bytes;
        dcache_misses = Machine.dcache_misses mach;
        dtlb_misses = Machine.dtlb_misses mach;
        ns = Machine.elapsed_ns mach;
        tier = Machine.tier_stats mach;
      }

let normalized ?cost ?vectorize strategy k =
  let native = run ?cost ?vectorize ~strategy:Strategy.native k in
  let measured = run ?cost ?vectorize ~strategy k in
  float_of_int measured.cycles /. float_of_int native.cycles

let code_size ~strategy k = (compile ~strategy k).Codegen.code_bytes

(* The Prometheus gauge set of one kernel run: machine counters of the
   measurement plus the domain-runtime aggregate. Lives here (not in the
   CLI) so the exposition-format lint can cover every gauge `sfi run
   --metrics-out` produces without shelling out. *)
let runtime_gauge_help =
  [
    ("transitions", "one-way sandbox crossings");
    ("hostcalls_pure", "hostcalls through the pure springboard");
    ("hostcalls_readonly", "hostcalls through the read-only springboard");
    ("hostcalls_full", "hostcalls through the full springboard");
    ("pkru_writes_elided", "PKRU writes skipped by the elision rules");
    ("pages_zeroed_on_recycle", "dirty pages dropped by slot recycles");
    ("instantiations_cold", "first-use slot bring-ups");
    ("instantiations_warm", "recycled-slot reuses");
    ("admission_admitted", "slot grants through admission");
    ("admission_queued", "tickets parked by the admission controller");
    ("admission_shed_sojourn", "CoDel / ticket-deadline sheds");
    ("admission_shed_rate_limited", "per-tenant token-bucket sheds");
    ("admission_shed_queue_full", "queue-at-capacity sheds");
  ]

let prometheus_gauges m (dm : Runtime.metrics) =
  let f = float_of_int in
  [
    ("sfi_instructions_total", "simulated instructions retired", f m.instructions);
    ("sfi_cycles_total", "simulated machine cycles", f m.cycles);
    ("sfi_ns_total", "simulated nanoseconds at the modeled clock", m.ns);
    ("sfi_code_bytes_static", "static compiled code size", f m.code_bytes);
    ("sfi_code_bytes_fetched", "dynamic code bytes through the frontend", f m.fetched_bytes);
    ("sfi_dtlb_misses_total", "simulated dTLB misses", f m.dtlb_misses);
    ("sfi_dcache_misses_total", "simulated dcache misses", f m.dcache_misses);
    ( "sfi_tier_blocks_total",
      "basic blocks discovered at translation",
      f m.tier.Machine.blocks_total );
    ( "sfi_tier_blocks_promoted",
      "blocks currently installed as superblocks",
      f m.tier.Machine.blocks_promoted );
    ("sfi_tier_promotions_total", "lifetime superblock promotions", f m.tier.Machine.promotions);
    ( "sfi_tier_superblock_instructions_total",
      "instructions retired inside superblocks",
      f m.tier.Machine.superblock_instructions );
  ]
  @ List.map
      (fun (field, v) ->
        let help =
          match List.assoc_opt field runtime_gauge_help with
          | Some h -> h
          | None -> field
        in
        ("sfi_" ^ field ^ "_total", help, v))
      (Runtime.metrics_fields dm)
