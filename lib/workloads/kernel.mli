(** Benchmark kernel registry and measurement harness.

    Every figure in the paper's evaluation runs a set of benchmarks through
    one or more SFI toolchain configurations and reports runtime normalized
    to native execution. A {!t} bundles the Wasm module, its entry point
    and arguments, an expected checksum (so a misbehaving compilation can
    never masquerade as a speedup), and — when the native version genuinely
    differs (64-bit pointers vs Wasm's 32-bit indices, the §6.1/§6.2
    "faster than native" effect) — a separate native-layout module. *)

type t = {
  name : string;
  suite : string;
  description : string;
  wasm : Sfi_wasm.Ast.module_ Lazy.t;
  native : Sfi_wasm.Ast.module_ Lazy.t option;
      (** module compiled for the native baseline when its data layout
          differs from the Wasm one; [None] reuses [wasm] *)
  entry : string;
  args : int64 list;
  checksum : int64 option;
}

val make :
  name:string ->
  suite:string ->
  ?description:string ->
  ?native:Sfi_wasm.Ast.module_ Lazy.t ->
  ?checksum:int64 ->
  entry:string ->
  args:int64 list ->
  Sfi_wasm.Ast.module_ Lazy.t ->
  t

type measurement = {
  result : int64;
  cycles : int;
  instructions : int;
  code_bytes : int;  (** static size of the compiled module *)
  fetched_bytes : int;  (** dynamic code bytes through the frontend *)
  dcache_misses : int;
  dtlb_misses : int;
  ns : float;
  tier : Sfi_machine.Machine.tier_stats;
      (** superblock occupancy of the run — all zeros under the
          untiered engines *)
}

val run :
  ?cost:Sfi_machine.Cost.t ->
  ?vectorize:bool ->
  ?engine:Sfi_machine.Machine.engine_kind ->
  ?trace:Sfi_trace.Trace.t ->
  strategy:Sfi_core.Strategy.t ->
  t ->
  measurement
(** Compile under [strategy] (picking the native-layout module for the
    [Direct] strategy when one exists), instantiate, invoke, verify the
    checksum, and return the performance counters of the invocation.
    [engine] selects the machine execution engine (default [Threaded]).
    [trace] installs a structured-event sink on the engine before the
    invocation (see {!Sfi_trace.Trace}); omitted, tracing stays the no-op
    [Trace.null]. Raises [Failure] on a trap or checksum mismatch. *)

val normalized : ?cost:Sfi_machine.Cost.t -> ?vectorize:bool -> Sfi_core.Strategy.t -> t -> float
(** Runtime (cycles) normalized to the native baseline — the y-axis of
    Figures 3, 4 and 5. *)

val code_size : strategy:Sfi_core.Strategy.t -> t -> int
(** Static compiled size in bytes (Table 2) without running. *)

val prometheus_gauges :
  measurement -> Sfi_runtime.Runtime.metrics -> (string * string * float) list
(** The [(name, help, value)] gauge set a kernel run exports — machine
    counters of [measurement] plus the domain-runtime aggregate — i.e.
    exactly what [sfi run --metrics-out] renders through
    {!Sfi_trace.Trace.prometheus}. Exposed so format lints can iterate
    over every gauge without shelling out to the CLI. *)
