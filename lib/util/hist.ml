(* Log-linear histogram: each power-of-two range [2^(e-1), 2^e) is cut
   into [sub] equal linear sub-buckets.  [sub] is a power of two, so
   every boundary is a dyadic rational and [Float.frexp] computes the
   bucket index exactly — there is no boundary jitter to reason about
   in the qcheck pin against [Stats.percentile]. *)

type exemplar = { ex_value : float; ex_ref : int64; ex_index : int }

(* Exponent range: frexp's [e] for 1.0 is 1; e_min = -20 tracks values
   down to ~5e-7 (anything smaller joins the zero bucket), e_max = 63
   covers the full simulated-nanosecond range.  Out-of-range highs
   clamp into the top bucket. *)
let e_min = -20
let e_max = 63
let n_exp = e_max - e_min + 1

type t = {
  sub : int;
  counts : int array; (* slot 0 = zero/underflow, then n_exp * sub slots *)
  mutable n : int;
  mutable sum : float;
  mutable vmax : float;
  mutable exemplars : exemplar option array; (* [||] until first exemplar *)
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ?(sub = 16) () =
  if not (is_pow2 sub) then invalid_arg "Hist.create: sub must be a power of two";
  {
    sub;
    counts = Array.make (1 + (n_exp * sub)) 0;
    n = 0;
    sum = 0.0;
    vmax = 0.0;
    exemplars = [||];
  }

let sub_buckets t = t.sub
let count t = t.n
let total t = t.sum
let max_recorded t = t.vmax

let index t v =
  if not (v > 0.0) then 0
  else
    let m, e = Float.frexp v in
    if e < e_min then 0
    else if e > e_max then Array.length t.counts - 1
    else
      let s = int_of_float ((m -. 0.5) *. 2.0 *. float_of_int t.sub) in
      let s = if s >= t.sub then t.sub - 1 else s in
      1 + (((e - e_min) * t.sub) + s)

(* Midpoint representative of a bucket: for slot 0 that is 0.0, else the
   centre of the linear sub-range [0.5 + s/(2*sub), 0.5 + (s+1)/(2*sub))
   scaled by 2^e. *)
let representative t i =
  if i = 0 then 0.0
  else
    let b = i - 1 in
    let e = e_min + (b / t.sub) in
    let s = b mod t.sub in
    Float.ldexp (0.5 +. ((float_of_int s +. 0.5) /. (2.0 *. float_of_int t.sub))) e

let width_of_slot t i =
  if i = 0 then Float.ldexp 1.0 (e_min - 1)
  else
    let e = e_min + ((i - 1) / t.sub) in
    Float.ldexp (1.0 /. (2.0 *. float_of_int t.sub)) e

let bucket_width_at t v = width_of_slot t (index t v)

let record t v =
  let i = index t v in
  t.counts.(i) <- t.counts.(i) + 1;
  t.n <- t.n + 1;
  t.sum <- t.sum +. v;
  if v > t.vmax then t.vmax <- v

(* Total order on exemplars so merge is commutative and associative:
   larger value wins, then larger event index, then larger ref. *)
let better_exemplar a b =
  if a.ex_value <> b.ex_value then a.ex_value > b.ex_value
  else if a.ex_index <> b.ex_index then a.ex_index > b.ex_index
  else Int64.unsigned_compare a.ex_ref b.ex_ref > 0

let ensure_exemplars t =
  if Array.length t.exemplars = 0 then t.exemplars <- Array.make (Array.length t.counts) None

let offer_exemplar t i ex =
  ensure_exemplars t;
  match t.exemplars.(i) with
  | None -> t.exemplars.(i) <- Some ex
  | Some cur -> if better_exemplar ex cur then t.exemplars.(i) <- Some ex

let record_exemplar t v ~index:ev_index =
  record t v;
  offer_exemplar t (index t v) { ex_value = v; ex_ref = 0L; ex_index = ev_index }

let seal_exemplars t fp =
  Array.iteri
    (fun i ex ->
      match ex with
      | Some e when e.ex_ref = 0L -> t.exemplars.(i) <- Some { e with ex_ref = fp }
      | _ -> ())
    t.exemplars

(* Value of the k-th order statistic (k in [0, n-1]) as its bucket's
   representative.  Single forward scan over the bucket array. *)
let value_at_order t k =
  let acc = ref 0 in
  let res = ref 0.0 in
  (try
     for i = 0 to Array.length t.counts - 1 do
       acc := !acc + t.counts.(i);
       if !acc > k then begin
         res := representative t i;
         raise Exit
       end
     done
   with Exit -> ());
  !res

let slot_at_order t k =
  let acc = ref 0 in
  let res = ref (Array.length t.counts - 1) in
  (try
     for i = 0 to Array.length t.counts - 1 do
       acc := !acc + t.counts.(i);
       if !acc > k then begin
         res := i;
         raise Exit
       end
     done
   with Exit -> ());
  !res

let clamp_order t k = if k < 0 then 0 else if k > t.n - 1 then t.n - 1 else k

let percentile t p =
  if t.n = 0 then invalid_arg "Hist.percentile: empty histogram";
  if t.n = 1 then value_at_order t 0
  else
    let rank = p /. 100.0 *. float_of_int (t.n - 1) in
    let lo = clamp_order t (int_of_float (Float.floor rank)) in
    let hi = clamp_order t (int_of_float (Float.ceil rank)) in
    let vlo = value_at_order t lo in
    if lo = hi then vlo
    else
      let vhi = value_at_order t hi in
      let frac = rank -. Float.floor rank in
      vlo +. (frac *. (vhi -. vlo))

let exemplar_at t p =
  if t.n = 0 then None
  else
    let rank = if t.n = 1 then 0.0 else p /. 100.0 *. float_of_int (t.n - 1) in
    let k = clamp_order t (int_of_float (Float.ceil rank)) in
    let start = slot_at_order t k in
    if Array.length t.exemplars = 0 then None
    else
      let res = ref None in
      (try
         for i = start to Array.length t.exemplars - 1 do
           match t.exemplars.(i) with
           | Some _ as ex -> res := ex; raise Exit
           | None -> ()
         done
       with Exit -> ());
      !res

let merge dst src =
  if dst.sub <> src.sub then invalid_arg "Hist.merge: sub-bucket counts differ";
  for i = 0 to Array.length dst.counts - 1 do
    dst.counts.(i) <- dst.counts.(i) + src.counts.(i)
  done;
  dst.n <- dst.n + src.n;
  dst.sum <- dst.sum +. src.sum;
  if src.vmax > dst.vmax then dst.vmax <- src.vmax;
  if Array.length src.exemplars > 0 then
    Array.iteri
      (fun i ex -> match ex with Some e -> offer_exemplar dst i e | None -> ())
      src.exemplars

let copy t =
  {
    sub = t.sub;
    counts = Array.copy t.counts;
    n = t.n;
    sum = t.sum;
    vmax = t.vmax;
    exemplars = (if Array.length t.exemplars = 0 then [||] else Array.copy t.exemplars);
  }
