type t = { mutable state : int64 }

let create ~seed = { state = seed }
let copy t = { state = t.state }

(* SplitMix64: a single 64-bit state advanced by the golden-gamma constant,
   finalized by two xor-shift multiplies. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* MurmurHash3's 64-bit finalizer — deliberately a different avalanche
   function (different shifts and multipliers) from the SplitMix64
   finalizer in [next_int64], so split-derived child states can never
   coincide with states the parent stream itself walks through. *)
let mix64 z =
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L
  in
  Int64.logxor z (Int64.shift_right_logical z 33)

let split_seed ~seed index =
  if index < 0 then invalid_arg "Prng.split: negative index";
  (* Two mixing rounds over (seed, index): ad-hoc derivations like
     [seed xor k] or [seed xor (index * small_constant)] leave child
     SplitMix64 states on the same gamma lattice as the parent, which
     visibly correlates the streams. Avalanche the pair instead. *)
  let z = Int64.add seed (Int64.mul (Int64.of_int (index + 1)) golden_gamma) in
  mix64 (Int64.logxor (mix64 z) 0xD6E8FEB86659FD93L)

let split t index = { state = split_seed ~seed:t.state index }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling over a 62-bit draw: [2^62 mod bound] residues sit in
     an incomplete final block, so accepting them would skew small values
     (visible once [bound] approaches 2^62). Reject draws past the largest
     multiple of [bound]; for small bounds the rejection probability is
     ~bound/2^62, so existing seeded streams are preserved in practice. *)
  let rem = ((max_int mod bound) + 1) mod bound in
  let cutoff = max_int - rem in
  let rec draw () =
    let raw = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if raw <= cutoff then raw mod bound else draw ()
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 uniform bits scaled into [0, bound). *)
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let poisson t ~mean =
  if mean <= 0.0 then 0
  else if mean < 60.0 then begin
    (* Knuth: multiply uniforms until below e^-mean. *)
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. float t 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
  else begin
    (* Normal approximation, adequate for large means. *)
    let u1 = float t 1.0 and u2 = float t 1.0 in
    let u1 = if u1 <= 0.0 then 1e-12 else u1 in
    let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
    let v = mean +. (sqrt mean *. z) in
    if v < 0.0 then 0 else int_of_float (Float.round v)
  end

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
