let require_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | xs -> xs

let mean xs =
  let xs = require_nonempty "Stats.mean" xs in
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  let xs = require_nonempty "Stats.geomean" xs in
  let log_sum =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive input";
        acc +. log x)
      0.0 xs
  in
  exp (log_sum /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median xs =
  let xs = sorted (require_nonempty "Stats.median" xs) in
  let a = Array.of_list xs in
  let n = Array.length a in
  if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let stddev xs =
  let m = mean xs in
  let n = List.length xs in
  if n = 1 then 0.0
  else begin
    let sq =
      List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    in
    (* Bessel-corrected sample standard deviation: the bench harness feeds
       this a handful of repeat measurements (a sample, not a population),
       so dividing by [n] would bias the reported spread low. *)
    sqrt (sq /. float_of_int (n - 1))
  end

let percent_overhead ~baseline ~measured = (measured -. baseline) /. baseline *. 100.0

let overhead_eliminated ~baseline ~unopt ~opt =
  let before = unopt -. baseline in
  if before <= 0.0 then 0.0 else (unopt -. opt) /. before *. 100.0

let percentile xs p =
  let xs = sorted (require_nonempty "Stats.percentile" xs) in
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list xs in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end
