(** Small statistics helpers used by the benchmark harness.

    The paper reports geometric means over normalized runtimes, medians over
    repeated measurements, and standard deviations; these are the
    corresponding computations. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean. All inputs must be positive; raises [Invalid_argument]
    otherwise. This is how SPEC-style normalized runtimes are aggregated. *)

val median : float list -> float
(** Median (average of the two central elements for even lengths). Raises
    [Invalid_argument] on the empty list. *)

val stddev : float list -> float
(** Bessel-corrected sample standard deviation (divides by [n - 1]):
    the bench harness reports the spread of a handful of repeat
    measurements, which are a sample, not a population. Returns [0.] for
    a single observation; raises [Invalid_argument] on the empty list. *)

val percent_overhead : baseline:float -> measured:float -> float
(** [percent_overhead ~baseline ~measured] is
    [(measured - baseline) / baseline * 100.]: the paper's
    "overhead vs native" metric. *)

val overhead_eliminated : baseline:float -> unopt:float -> opt:float -> float
(** [overhead_eliminated ~baseline ~unopt ~opt] is the share (in percent) of
    the overhead over [baseline] that the optimization removed — e.g. the
    paper's "Segue eliminates 44.7% of Wasm's overheads". Returns 0 if the
    unoptimized configuration had no overhead to begin with. *)

val percentile : float list -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation. *)
