(** Deterministic pseudo-random number generation.

    All simulations in this repository are seeded explicitly so that every
    experiment is reproducible run-to-run. The generator is SplitMix64,
    which is small, fast, and passes BigCrush; it is more than adequate for
    driving synthetic workloads and property tests. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val split : t -> int -> t
(** [split t index] derives an independent child generator from [t]'s
    current state and a caller-chosen [index] (shard id, breaker id,
    chaos stream, ...), without advancing [t]. The derivation avalanches
    [(state, index)] through MurmurHash3's 64-bit finalizer — a
    different mixing function from the output finalizer — so child
    streams neither overlap the parent stream nor each other for
    distinct indices. Equal [(state, index)] pairs yield equal children;
    this is how every per-shard workload/chaos/jitter stream is derived
    from the one root seed. Raises [Invalid_argument] if [index < 0]. *)

val split_seed : seed:int64 -> int -> int64
(** [split_seed ~seed index] is the raw seed [split] would hand the
    child: a pure function usable where only an [int64] seed is wanted
    (e.g. deriving per-shard [Sim.config] seeds from the root seed). *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling over a 62-bit draw, not modulo reduction. Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution with the
    given mean. Used to model inter-arrival and service times. *)

val poisson : t -> mean:float -> int
(** [poisson t ~mean] draws from a Poisson distribution (Knuth's method for
    small means, normal approximation above 60). Used for the FaaS IO-delay
    model, which the paper draws "from a Poisson distribution at 5ms". *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
