(** Deterministic pseudo-random number generation.

    All simulations in this repository are seeded explicitly so that every
    experiment is reproducible run-to-run. The generator is SplitMix64,
    which is small, fast, and passes BigCrush; it is more than adequate for
    driving synthetic workloads and property tests. *)

type t
(** Mutable generator state. *)

val create : seed:int64 -> t
(** [create ~seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same future
    stream as [t]. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, via
    rejection sampling over a 62-bit draw, not modulo reduction. Raises
    [Invalid_argument] if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Raises
    [Invalid_argument] if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val exponential : t -> mean:float -> float
(** [exponential t ~mean] draws from an exponential distribution with the
    given mean. Used to model inter-arrival and service times. *)

val poisson : t -> mean:float -> int
(** [poisson t ~mean] draws from a Poisson distribution (Knuth's method for
    small means, normal approximation above 60). Used for the FaaS IO-delay
    model, which the paper draws "from a Poisson distribution at 5ms". *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
