(** Log-bucketed (HDR-style) latency histogram.

    Values are binned into log-linear buckets: each power-of-two range
    [2^(e-1), 2^e) is split into [sub] equal-width linear sub-buckets,
    where [sub] is a power of two so every bucket boundary is an exact
    dyadic rational (no accumulated rounding at the edges).  Recording is
    O(1) and allocation-free on the hot path; histograms from different
    shards merge element-wise, and percentile queries mirror the rank
    semantics of {!Stats.percentile} — the answer is always within one
    bucket width of the exact sorted-array result (pinned by qcheck).

    Buckets may carry an {e exemplar}: a concrete recorded value tagged
    with a trace-ring fingerprint and event index, so a percentile spike
    in a report links back to the exact span in the trace export. *)

type t

type exemplar = {
  ex_value : float;  (** the recorded value the exemplar stands for *)
  ex_ref : int64;  (** trace-ring fingerprint (0L until {!seal_exemplars}) *)
  ex_index : int;  (** event index inside the referenced ring *)
}

val create : ?sub:int -> unit -> t
(** [create ?sub ()] makes an empty histogram.  [sub] is the number of
    linear sub-buckets per power-of-two range and must be a power of two
    (default 16, giving <= 1/16 relative bucket width).  Raises
    [Invalid_argument] otherwise. *)

val sub_buckets : t -> int
(** The [sub] parameter the histogram was created with. *)

val record : t -> float -> unit
(** [record t v] adds one sample.  Values [<= 0] (and denormal-range
    underflow) land in a dedicated zero bucket; values beyond the top
    of the tracked range clamp into the highest bucket. *)

val record_exemplar : t -> float -> index:int -> unit
(** [record_exemplar t v ~index] records [v] like {!record} and offers
    [(v, index)] as the bucket's exemplar.  The bucket keeps the
    largest-value exemplar seen (ties broken toward the larger index),
    so merging stays commutative.  The exemplar's [ex_ref] is 0 until
    {!seal_exemplars} stamps the owning ring's fingerprint. *)

val seal_exemplars : t -> int64 -> unit
(** [seal_exemplars t ref] sets [ex_ref] to [ref] on every exemplar
    still carrying the placeholder [0L].  Call once the owning trace
    ring's fingerprint is known (i.e. after the run completes). *)

val count : t -> int
(** Number of recorded samples (exact). *)

val total : t -> float
(** Sum of recorded sample values (accumulated exactly, not
    reconstructed from bucket representatives). *)

val max_recorded : t -> float
(** Largest value recorded so far, [0.0] when empty. *)

val percentile : t -> float -> float
(** [percentile t p] mirrors {!Stats.percentile}: rank [p/100 * (n-1)]
    with linear interpolation between the two straddling order
    statistics, each taken as its bucket's midpoint representative.
    Raises [Invalid_argument] when the histogram is empty. *)

val bucket_width_at : t -> float -> float
(** [bucket_width_at t v] is the width of the bucket [v] falls into —
    the error bound for {!percentile} against the exact sorted-array
    answer at that magnitude. *)

val exemplar_at : t -> float -> exemplar option
(** [exemplar_at t p] walks from the bucket holding percentile [p]
    upward and returns the first exemplar found, if any: "what does a
    >= p-th percentile request actually look like?". *)

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst] element-wise: counts add,
    exemplars keep the larger (value, index) pair.  Merging is
    commutative and associative up to float-addition rounding in
    {!total}.  Raises [Invalid_argument] if the [sub] parameters
    differ. *)

val copy : t -> t
(** Deep copy (bucket counts and exemplars). *)
