(* Sharded serving: partition the tenant population across N OCaml
   domains, each running its own engine (pool allocator, pkru/TLB state,
   admission controller, trace sink) over its own simulated core, and
   merge the per-shard outcomes deterministically.

   Determinism is the design constraint everything else bends around:
   shard placement and work stealing are resolved at dispatch-plan time
   in simulated time (not by racing domains), per-shard PRNG streams are
   split from the root seed, per-shard DLS metrics are harvested inside
   each worker domain before it dies, and per-shard trace rings are
   merged by simulated time under per-shard track namespacing. A K-shard
   run is a pure function of (config, K); a 1-shard run is bit-identical
   to the unsharded [Sim.run]. *)

module Runtime = Sfi_runtime.Runtime
module Prng = Sfi_util.Prng
module Hist = Sfi_util.Hist
module Trace = Sfi_trace.Trace

type config = {
  base : Sim.config;
  shards : int;
  steal : bool;
  trace_capacity : int;
}

let default_config ?(steal = true) ?(trace_capacity = 65536) ~shards base =
  { base; shards; steal; trace_capacity }

(* Hash-based home placement: avalanche the tenant id so consecutive
   tenants spread instead of striping (tenant ids are dense). *)
let home_shard ~shards tenant =
  if shards <= 0 then invalid_arg "Shard.home_shard: shards must be > 0";
  let h = Prng.split_seed ~seed:(Int64.of_int tenant) 0 in
  Int64.to_int (Int64.logand h 0x3FFFFFFFFFFFFFFFL) mod shards

(* Work-stealing dispatch plan. Each shard keeps a deque of its tenants
   ordered hot (head) to cold (tail) by offered load. The plan walks the
   virtual dispatch: while the least-loaded shard would sit idle next to
   a backlogged neighbor, it steals the tenant at the *tail* of the most
   loaded shard's deque — the coldest one, so hot tenants stay
   shard-local — provided the move strictly reduces the imbalance.
   Resolving the steals here, in simulated time, is what keeps K-shard
   runs deterministic: domains never race for work at execution time. *)
let plan ~shards ~steal weights =
  let n = Array.length weights in
  let assign = Array.init n (fun t -> home_shard ~shards t) in
  let load = Array.make shards 0.0 in
  Array.iteri (fun t s -> load.(s) <- load.(s) +. weights.(t)) assign;
  let steals = ref 0 in
  if steal && shards > 1 && n > 0 then begin
    (* Deques as cold-first lists: the list head is the deque tail. *)
    let dq =
      Array.init shards (fun s ->
          List.init n Fun.id
          |> List.filter (fun t -> assign.(t) = s)
          |> List.sort (fun a b ->
                 let c = compare weights.(a) weights.(b) in
                 if c <> 0 then c else compare b a))
    in
    let budget = ref (4 * n) in
    let continue = ref true in
    while !continue && !budget > 0 do
      decr budget;
      let mn = ref 0 and mx = ref 0 in
      for s = 1 to shards - 1 do
        if load.(s) < load.(!mn) then mn := s;
        if load.(s) > load.(!mx) then mx := s
      done;
      let d = load.(!mx) -. load.(!mn) in
      match dq.(!mx) with
      | tail :: rest when !mx <> !mn && weights.(tail) < d ->
          dq.(!mx) <- rest;
          dq.(!mn) <- tail :: dq.(!mn);
          assign.(tail) <- !mn;
          load.(!mx) <- load.(!mx) -. weights.(tail);
          load.(!mn) <- load.(!mn) +. weights.(tail);
          incr steals
      | _ -> continue := false
    done
  end;
  (assign, !steals)

type shard_stat = {
  sh_id : int;
  sh_tenants : int;
  sh_stolen : int;
  sh_weight : float;
  sh_completed : int;
  sh_shed : int;
  sh_busy_ns : float;
  sh_metrics : Runtime.metrics;
}

type report = {
  r_result : Sim.result;
  r_shards : shard_stat array;
  r_steals : int;
  r_metrics : Runtime.metrics;
  r_trace : Trace.t option;
}

let run cfg =
  if cfg.shards < 1 then invalid_arg "Shard.run: shards must be >= 1";
  let base = cfg.base in
  let n = base.Sim.concurrency in
  let shards = cfg.shards in
  (* Offered load per tenant: scheduled arrivals in open-loop mode, one
     closed-loop client each otherwise. *)
  let weights =
    match base.Sim.arrivals with
    | None -> Array.make n 1.0
    | Some arr ->
        let w = Array.make n 0.0 in
        Array.iter
          (fun a -> w.(a.Workloads.tenant) <- w.(a.Workloads.tenant) +. 1.0)
          arr;
        w
  in
  let assign, steals = plan ~shards ~steal:cfg.steal weights in
  (* Shard-local tenant numbering, ascending global id. *)
  let locals =
    Array.init shards (fun s ->
        List.init n Fun.id
        |> List.filter (fun g -> assign.(g) = s)
        |> Array.of_list)
  in
  let local_of = Array.make (max 1 n) (-1) in
  Array.iter
    (Array.iteri (fun l g -> local_of.(g) <- l))
    locals;
  let tracing = Trace.enabled base.Sim.trace in
  let rings =
    Array.init shards (fun _ ->
        if tracing then Trace.create_ring ~capacity:cfg.trace_capacity ()
        else Trace.null)
  in
  let shard_cfg s =
    let ls = locals.(s) in
    let ns = Array.length ls in
    let ov = base.Sim.overload in
    let sub_tenants l =
      List.filter_map
        (fun g -> if g >= 0 && g < n && assign.(g) = s then Some local_of.(g) else None)
        l
    in
    let overload =
      {
        ov with
        Sim.pool_slots =
          (match ov.Sim.pool_slots with
          | None -> None
          | Some slots ->
              (* Per-shard backpressure: each shard's admission controller
                 guards its proportional share of the global pool. *)
              Some (max 1 (if n = 0 then slots else slots * ns / n)));
        crash_tenants = sub_tenants ov.Sim.crash_tenants;
        runaway_tenants = sub_tenants ov.Sim.runaway_tenants;
        low_priority = (fun l -> l >= 0 && l < ns && ov.Sim.low_priority ls.(l));
      }
    in
    let arrivals =
      match base.Sim.arrivals with
      | None -> None
      | Some arr ->
          Some
            (Array.to_list arr
            |> List.filter_map (fun a ->
                   if assign.(a.Workloads.tenant) = s then
                     Some { a with Workloads.tenant = local_of.(a.Workloads.tenant) }
                   else None)
            |> Array.of_list)
    in
    (* Chaos events are dealt round-robin across shards so the schedule's
       total perturbation count is preserved. *)
    let chaos = List.filteri (fun i _ -> i mod shards = s) base.Sim.chaos in
    {
      base with
      Sim.concurrency = ns;
      (* The root seed is used unchanged when there is one shard (the
         bit-identity contract with the unsharded sim); K > 1 shards get
         avalanche-split child seeds, never xor'd or offset ones. *)
      seed =
        (if shards = 1 then base.Sim.seed
         else Prng.split_seed ~seed:base.Sim.seed s);
      trace = rings.(s);
      overload;
      arrivals;
      chaos;
    }
  in
  (* A shard the hash left without tenants (possible when shards is close
     to the tenant count) serves nothing: synthesize its empty result
     rather than spinning up an engine over a zero-slot pool. *)
  let empty_result =
    {
      Sim.completed = 0;
      failed = 0;
      watchdog_kills = 0;
      collateral_aborts = 0;
      recycles = 0;
      pages_zeroed = 0;
      admitted = 0;
      shed_sojourn = 0;
      shed_rate_limited = 0;
      shed_queue_full = 0;
      shed_priority = 0;
      deadline_misses = 0;
      breaker_opens = 0;
      breaker_fast_fails = 0;
      breakers_open_at_end = 0;
      degrade_steps = 0;
      max_degrade_level = 0;
      chaos_applied = 0;
      chaos_kills = 0;
      slo_burn_starts = 0;
      slo_burn_stops = 0;
      slo_burning_at_end = 0;
      throughput_rps = 0.0;
      goodput_rps = 0.0;
      availability = 1.0;
      capacity_rps = 0.0;
      context_switches = 0;
      user_transitions = 0;
      dtlb_misses = 0;
      checksum = 0L;
      simulated_ns = 0.0;
      cpu_busy_ns = 0.0;
      tenants = [||];
    }
  in
  (* One domain per shard. The DLS-backed [Runtime.domain_metrics]
     counters die with the worker domain, so each worker snapshots them
     *before* returning — reading them after [Domain.join] would observe
     nothing (the per-domain-metrics-lifetime bug this layer exposed). *)
  let worker s () =
    if Array.length locals.(s) = 0 then (empty_result, Runtime.zero_metrics)
    else
      let r = Sim.run (shard_cfg s) in
      (r, Runtime.domain_metrics ())
  in
  let handles = Array.init shards (fun s -> Domain.spawn (worker s)) in
  let joined = Array.map Domain.join handles in
  let results = Array.map fst joined in
  let metrics = Runtime.merged_metrics (Array.to_list (Array.map snd joined)) in
  let merged_trace =
    if tracing then Some (Trace.merge_shards (Array.to_list rings)) else None
  in
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
  let sumf f = Array.fold_left (fun acc r -> acc +. f r) 0.0 results in
  let maxi f = Array.fold_left (fun acc r -> max acc (f r)) 0 results in
  let completed = sum (fun r -> r.Sim.completed) in
  let failed = sum (fun r -> r.Sim.failed) in
  let collateral = sum (fun r -> r.Sim.collateral_aborts) in
  let deadline_misses = sum (fun r -> r.Sim.deadline_misses) in
  (* Each shard serves on its own simulated core over the same simulated
     interval, so merged wall time is the max, busy time the sum. *)
  let simulated_ns =
    Array.fold_left (fun acc r -> Float.max acc r.Sim.simulated_ns) 0.0 results
  in
  let cpu_busy_ns = sumf (fun r -> r.Sim.cpu_busy_ns) in
  let attempts = completed + failed + collateral in
  let tenants =
    Array.init n (fun g ->
        let st = results.(assign.(g)).Sim.tenants.(local_of.(g)) in
        { st with Sim.t_id = g })
  in
  let merged =
    {
      Sim.completed;
      failed;
      watchdog_kills = sum (fun r -> r.Sim.watchdog_kills);
      collateral_aborts = collateral;
      recycles = sum (fun r -> r.Sim.recycles);
      pages_zeroed = sum (fun r -> r.Sim.pages_zeroed);
      admitted = sum (fun r -> r.Sim.admitted);
      shed_sojourn = sum (fun r -> r.Sim.shed_sojourn);
      shed_rate_limited = sum (fun r -> r.Sim.shed_rate_limited);
      shed_queue_full = sum (fun r -> r.Sim.shed_queue_full);
      shed_priority = sum (fun r -> r.Sim.shed_priority);
      deadline_misses;
      breaker_opens = sum (fun r -> r.Sim.breaker_opens);
      breaker_fast_fails = sum (fun r -> r.Sim.breaker_fast_fails);
      breakers_open_at_end = sum (fun r -> r.Sim.breakers_open_at_end);
      degrade_steps = sum (fun r -> r.Sim.degrade_steps);
      max_degrade_level = maxi (fun r -> r.Sim.max_degrade_level);
      chaos_applied = sum (fun r -> r.Sim.chaos_applied);
      chaos_kills = sum (fun r -> r.Sim.chaos_kills);
      slo_burn_starts = sum (fun r -> r.Sim.slo_burn_starts);
      slo_burn_stops = sum (fun r -> r.Sim.slo_burn_stops);
      slo_burning_at_end = sum (fun r -> r.Sim.slo_burning_at_end);
      throughput_rps = float_of_int attempts /. (simulated_ns /. 1.0e9);
      goodput_rps =
        float_of_int (completed - deadline_misses) /. (simulated_ns /. 1.0e9);
      availability =
        (if attempts = 0 then 1.0
         else float_of_int completed /. float_of_int attempts);
      capacity_rps = float_of_int completed /. (cpu_busy_ns /. 1.0e9);
      context_switches = sum (fun r -> r.Sim.context_switches);
      user_transitions = sum (fun r -> r.Sim.user_transitions);
      dtlb_misses = sum (fun r -> r.Sim.dtlb_misses);
      checksum =
        Array.fold_left (fun acc r -> Int64.add acc r.Sim.checksum) 0L results;
      simulated_ns;
      cpu_busy_ns;
      tenants;
    }
  in
  let stolen_into = Array.make shards 0 in
  for g = 0 to n - 1 do
    if assign.(g) <> home_shard ~shards g then
      stolen_into.(assign.(g)) <- stolen_into.(assign.(g)) + 1
  done;
  let shard_stats =
    Array.init shards (fun s ->
        let r = results.(s) in
        {
          sh_id = s;
          sh_tenants = Array.length locals.(s);
          sh_stolen = stolen_into.(s);
          sh_weight =
            Array.fold_left
              (fun acc g -> acc +. weights.(g))
              0.0 locals.(s);
          sh_completed = r.Sim.completed;
          sh_shed =
            r.Sim.shed_sojourn + r.Sim.shed_rate_limited + r.Sim.shed_queue_full
            + r.Sim.shed_priority;
          sh_busy_ns = r.Sim.cpu_busy_ns;
          sh_metrics = (snd joined.(s));
        })
  in
  {
    r_result = merged;
    r_shards = shard_stats;
    r_steals = steals;
    r_metrics = metrics;
    r_trace = merged_trace;
  }

(* ------------------------------------------------------------------ *)
(* Result digests and summaries                                        *)

let result_fingerprint (r : Sim.result) =
  let h = ref 0xCBF29CE484222325L in
  let mix64 v = h := Int64.mul (Int64.logxor !h v) 0x100000001B3L in
  let mixi v = mix64 (Int64.of_int v) in
  let mixf v = mix64 (Int64.bits_of_float v) in
  mixi r.Sim.completed;
  mixi r.Sim.failed;
  mixi r.Sim.watchdog_kills;
  mixi r.Sim.collateral_aborts;
  mixi r.Sim.recycles;
  mixi r.Sim.pages_zeroed;
  mixi r.Sim.admitted;
  mixi r.Sim.shed_sojourn;
  mixi r.Sim.shed_rate_limited;
  mixi r.Sim.shed_queue_full;
  mixi r.Sim.shed_priority;
  mixi r.Sim.deadline_misses;
  mixi r.Sim.breaker_opens;
  mixi r.Sim.breaker_fast_fails;
  mixi r.Sim.breakers_open_at_end;
  mixi r.Sim.degrade_steps;
  mixi r.Sim.max_degrade_level;
  mixi r.Sim.chaos_applied;
  mixi r.Sim.chaos_kills;
  mixi r.Sim.slo_burn_starts;
  mixi r.Sim.slo_burn_stops;
  mixi r.Sim.slo_burning_at_end;
  mixf r.Sim.throughput_rps;
  mixf r.Sim.goodput_rps;
  mixf r.Sim.availability;
  mixf r.Sim.capacity_rps;
  mixi r.Sim.context_switches;
  mixi r.Sim.user_transitions;
  mixi r.Sim.dtlb_misses;
  mix64 r.Sim.checksum;
  mixf r.Sim.simulated_ns;
  mixf r.Sim.cpu_busy_ns;
  Array.iter
    (fun t ->
      mixi t.Sim.t_id;
      mixi t.Sim.t_completed;
      mixi t.Sim.t_failed;
      mixi t.Sim.t_shed;
      mixi t.Sim.t_breaker_opens;
      String.iter (fun c -> mixi (Char.code c)) t.Sim.t_breaker_state;
      mixf t.Sim.t_p50_ns;
      mixf t.Sim.t_p95_ns;
      mixf t.Sim.t_p99_ns;
      mixf t.Sim.t_p99_e2e_ns;
      mixf t.Sim.t_burn)
    r.Sim.tenants;
  !h

let metrics_fingerprint (m : Runtime.metrics) =
  let h = ref 0xCBF29CE484222325L in
  let mixi v = h := Int64.mul (Int64.logxor !h (Int64.of_int v)) 0x100000001B3L in
  mixi m.Runtime.m_transitions;
  mixi m.Runtime.m_calls_pure;
  mixi m.Runtime.m_calls_readonly;
  mixi m.Runtime.m_calls_full;
  mixi m.Runtime.m_pkru_writes_elided;
  mixi m.Runtime.m_pages_zeroed_on_recycle;
  mixi m.Runtime.m_instantiations_cold;
  mixi m.Runtime.m_instantiations_warm;
  mixi m.Runtime.m_admitted;
  mixi m.Runtime.m_adm_queued;
  mixi m.Runtime.m_shed_sojourn;
  mixi m.Runtime.m_shed_rate_limited;
  mixi m.Runtime.m_shed_queue_full;
  !h

(* Global latency percentiles from the merged per-tenant histograms:
   log-bucketed, so the merge across tenants (and shards) is exact at
   bucket granularity — no completions-weighted interpolation over
   per-tenant percentile values anymore. *)
let merged_latency_hist (r : Sim.result) =
  let merged = Hist.create () in
  Array.iter (fun t -> Hist.merge merged t.Sim.t_lat_hist) r.Sim.tenants;
  merged

let latency_summary (r : Sim.result) =
  let h = merged_latency_hist r in
  if Hist.count h = 0 then (0.0, 0.0, 0.0)
  else (Hist.percentile h 50.0, Hist.percentile h 95.0, Hist.percentile h 99.0)
