(** Per-tenant circuit breaker with jittered exponential backoff.

    A breaker guards one tenant's access to the serving path. It is a
    three-state machine driven by the tenant's own outcomes:

    - {b Closed} — requests flow normally. [failure_threshold]
      consecutive failures (traps, watchdog kills, or — when
      [latency_threshold_ns] is set — slow successes) trip it open.
    - {b Open} — requests fast-fail without touching the pool. After a
      backoff of [base_backoff_ns * 2^(streak-1)], capped at
      [max_backoff_ns] and scattered by deterministic jitter, the next
      {!allow} moves to half-open.
    - {b Half_open} — exactly one probe request is admitted. Success
      closes the breaker; failure re-opens it with a doubled streak.

    All time is the caller's simulated clock (nanoseconds). Jitter comes
    from a {!Sfi_util.Prng} seeded at {!create}, so a run is
    reproducible from its seed. *)

type state = Closed | Open | Half_open

val state_name : state -> string
(** ["closed"] / ["open"] / ["half-open"]. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip the breaker *)
  base_backoff_ns : float;  (** first open interval *)
  max_backoff_ns : float;  (** backoff growth cap *)
  backoff_jitter : float;
      (** jitter width [j] in [[0, 1]]: each backoff is scaled by a
          uniform draw from [[1 - j/2, 1 + j/2]] so breakers tripped
          together don't probe in lockstep *)
  latency_threshold_ns : float option;
      (** when set, a success slower than this counts as a failure *)
}

val default_config : config
(** Threshold 5, base 1 ms, cap 64 ms, jitter 0.2, no latency signal. *)

type t

val create : ?seed:int64 -> config -> t
(** A fresh closed breaker. [seed] (default a fixed constant) seeds the
    jitter PRNG; two breakers created with the same seed and config
    behave identically. Raises [Invalid_argument] on a non-positive
    threshold/backoff or jitter outside [[0, 1]]. *)

val state : t -> state
val opens : t -> int
(** Times the breaker has transitioned into [Open]. *)

val retry_at : t -> float
(** When [Open]: the simulated time at which the next {!allow} will move
    to half-open. Meaningless (0) otherwise. *)

val allow : t -> now:float -> bool
(** May a request proceed at time [now]? [Closed]: always. [Open]: if
    the backoff has elapsed, transition to [Half_open] and admit this
    single probe; otherwise refuse. [Half_open]: refuse while the probe
    is outstanding. *)

val on_success : t -> now:float -> unit
(** Report a successful request that {!allow} admitted. If the latency
    signal is armed, call {!on_slow} instead when the request exceeded
    the threshold. Half-open probe success closes the breaker and resets
    the failure streak. *)

val on_failure : t -> now:float -> unit
(** Report a failed request (trap, watchdog kill, chaos kill). In
    [Closed], [failure_threshold] consecutive failures trip the breaker;
    a half-open probe failure re-opens it with a doubled backoff. *)

val on_slow : t -> now:float -> elapsed_ns:float -> unit
(** Report a request that succeeded after [elapsed_ns]. Counts as a
    failure when [latency_threshold_ns] is set and exceeded, as a
    success otherwise. *)
