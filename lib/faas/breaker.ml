(* Per-tenant circuit breaker: closed / open / half-open with jittered
   exponential backoff. Pure state machine over the caller's simulated
   clock — no wall time, no global state — so sim runs stay reproducible
   from their seed. *)

module Prng = Sfi_util.Prng

type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = {
  failure_threshold : int;
  base_backoff_ns : float;
  max_backoff_ns : float;
  backoff_jitter : float;
  latency_threshold_ns : float option;
}

let default_config =
  {
    failure_threshold = 5;
    base_backoff_ns = 1e6;
    max_backoff_ns = 64e6;
    backoff_jitter = 0.2;
    latency_threshold_ns = None;
  }

type t = {
  cfg : config;
  rng : Prng.t;
  mutable st : state;
  mutable failures : int; (* consecutive failures while closed *)
  mutable streak : int; (* consecutive opens without a closing probe *)
  mutable until : float; (* open: when the next probe is allowed *)
  mutable opens : int;
}

let create ?(seed = 0xB4EA4E4L) cfg =
  if cfg.failure_threshold <= 0 then
    invalid_arg "Breaker.create: failure_threshold must be positive";
  if cfg.base_backoff_ns <= 0.0 || cfg.max_backoff_ns < cfg.base_backoff_ns then
    invalid_arg "Breaker.create: need 0 < base_backoff_ns <= max_backoff_ns";
  if cfg.backoff_jitter < 0.0 || cfg.backoff_jitter > 1.0 then
    invalid_arg "Breaker.create: backoff_jitter must be in [0, 1]";
  {
    cfg;
    rng = Prng.create ~seed;
    st = Closed;
    failures = 0;
    streak = 0;
    until = 0.0;
    opens = 0;
  }

let state b = b.st
let opens b = b.opens
let retry_at b = b.until

(* backoff = min(max, base * 2^(streak-1)), scattered by a uniform draw
   from [1 - j/2, 1 + j/2] so a cohort of breakers tripped by the same
   incident doesn't hammer the pool with synchronized probes. *)
let backoff b =
  let exp = Float.min 62.0 (float_of_int (b.streak - 1)) in
  let raw = Float.min b.cfg.max_backoff_ns (b.cfg.base_backoff_ns *. (2.0 ** exp)) in
  let j = b.cfg.backoff_jitter in
  raw *. (1.0 -. (j /. 2.0) +. Prng.float b.rng j)

let trip b ~now =
  b.st <- Open;
  b.streak <- b.streak + 1;
  b.opens <- b.opens + 1;
  b.failures <- 0;
  b.until <- now +. backoff b

let allow b ~now =
  match b.st with
  | Closed -> true
  | Half_open -> false (* one probe outstanding *)
  | Open ->
      if now >= b.until then begin
        b.st <- Half_open;
        true
      end
      else false

let on_success b ~now:_ =
  match b.st with
  | Closed -> b.failures <- 0
  | Half_open ->
      b.st <- Closed;
      b.failures <- 0;
      b.streak <- 0
  | Open -> () (* stale report from before the trip *)

let on_failure b ~now =
  match b.st with
  | Closed ->
      b.failures <- b.failures + 1;
      if b.failures >= b.cfg.failure_threshold then trip b ~now
  | Half_open -> trip b ~now
  | Open -> ()

let on_slow b ~now ~elapsed_ns =
  match b.cfg.latency_threshold_ns with
  | Some limit when elapsed_ns > limit -> on_failure b ~now
  | _ -> on_success b ~now
