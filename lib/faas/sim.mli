(** The simulated FaaS edge platform of §6.4.3 (Figures 6, 7a, 7b).

    A single core serves a fixed population of in-flight requests. Each
    request waits on IO (delay drawn from a Poisson-parameterized
    distribution with a 5 ms mean, like the paper's simulation), then runs
    its workload inside a Wasm instance under epoch-based preemption
    (1 ms epochs).

    Two scaling strategies are compared:

    - {b ColorGuard}: one process; instances live in a striped pool and
      transitions are user-level (a pkru write — no TLB flush);
    - {b Multiprocess}: [processes] separate engines (own address space,
      own TLB state); the OS round-robins between them on 1 ms timeslices,
      paying a context-switch cost and a TLB flush per switch.

    Compute is real: the workload modules execute on the machine, so dTLB
    misses (Figure 7b) come out of the TLB model rather than a formula.

    The {!fault_model} adds misbehaving tenants: with per-request
    probabilities a request runs a trapping or runaway handler instead of
    [handle]. Faults are contained — a trap kills only the offending
    instance (ColorGuard) or its whole process (multiprocess, the blast
    radius), a runaway loop is stopped by the epoch watchdog, and the
    simulation always runs to completion, reporting availability. *)

type mode = Colorguard | Multiprocess of int  (** process count (1-15) *)

type fault_model = {
  trap_rate : float;  (** per-request probability of a trapping handler *)
  runaway_rate : float;  (** per-request probability of an infinite loop *)
  deadline_epochs : int;
      (** watchdog: epochs a request may consume before being killed *)
  respawn_ns : float;  (** cost to restart a crashed process (multiprocess) *)
}

val no_faults : fault_model
(** Zero fault rates (the legacy behavior); deadline 8 epochs, respawn
    0.5 ms. *)

type config = {
  mode : mode;
  workload : Workloads.t;
  concurrency : int;  (** in-flight requests (closed loop) *)
  duration_ns : float;  (** simulated wall-clock to run for *)
  io_mean_ns : float;  (** mean IO delay (paper: 5 ms) *)
  epoch_ns : float;  (** preemption epoch (paper: 1 ms) *)
  os_switch_ns : float;  (** OS context-switch direct cost *)
  faults : fault_model;
  seed : int64;
  churn : bool;
      (** release every instance after its request completes, so each
          request runs on a fresh instantiation — the §6.4.3 FaaS pattern *)
  page_zero_ns : float;
      (** price of one OS page of instantiation/recycle work (zeroing or
          copying); 0.0 (default) makes lifecycle work free, the historical
          behavior. The paper's 79 us / 64 KiB instance (§7) gives
          ~4937 ns/page. *)
  legacy_lifecycle : bool;
      (** bill every instantiate at the pre-refactor runtime's O(min_pages)
          cost (whole-heap madvise + data-segment rewrite) instead of the
          CoW runtime's O(dirty pages); only meaningful with
          [page_zero_ns > 0] *)
  trace : Sfi_trace.Trace.t;
      (** structured-event sink for per-tenant request spans
          ([Trace.null] by default, a no-op). The sim installs the simulated
          clock on the sink and emits one [request] span per activation on
          track [id] — so a Chrome/Perfetto export shows one lane per
          tenant. Spans still open when the simulated duration expires are
          closed without being counted as failures. *)
}

val default_config :
  ?mode:mode ->
  ?workload:Workloads.t ->
  ?faults:fault_model ->
  ?churn:bool ->
  ?page_zero_ns:float ->
  ?legacy_lifecycle:bool ->
  unit ->
  config
(** concurrency 128, duration 20 ms, IO mean 5 ms, epoch 1 ms, OS switch
    5 us (direct + indirect cost of a Linux process switch), ColorGuard,
    hash workload, no faults, no churn, free lifecycle work, no tracing. *)

type tenant_stat = {
  t_id : int;  (** the request slot — one closed-loop tenant *)
  t_completed : int;
  t_failed : int;  (** kills, watchdog stops and collateral aborts *)
  t_p50_ns : float;  (** request latency percentiles over completed
                         activations (activation start to completion, in
                         simulated ns); 0 when the tenant completed
                         nothing *)
  t_p95_ns : float;
  t_p99_ns : float;
}

type result = {
  completed : int;  (** requests that finished successfully *)
  failed : int;  (** requests killed by a trap or the watchdog *)
  watchdog_kills : int;  (** subset of [failed] stopped by the deadline *)
  collateral_aborts : int;
      (** in-flight requests aborted because a co-resident tenant crashed
          their shared process — the blast radius; always 0 for ColorGuard *)
  recycles : int;  (** instances re-created on recycled slots *)
  pages_zeroed : int;
      (** OS pages of dirty state dropped by slot recycles, summed over all
          engines — the CoW runtime's whole lifecycle cost *)
  throughput_rps : float;
      (** requests retired (successfully or not) per simulated second *)
  goodput_rps : float;  (** successful completions per simulated second *)
  availability : float;
      (** completed / (completed + failed + collateral_aborts) *)
  capacity_rps : float;
      (** completions per CPU-busy second — the per-core efficiency that
          Figure 6's throughput-gain percentages compare *)
  context_switches : int;
      (** OS-level process switches (multiprocess) — Figure 7a's metric;
          always 0 for ColorGuard, whose switches are user-level *)
  user_transitions : int;  (** sandbox entries/exits *)
  dtlb_misses : int;  (** summed over all engines — Figure 7b *)
  checksum : int64;  (** folded request results, for validation *)
  simulated_ns : float;
  cpu_busy_ns : float;
  tenants : tenant_stat array;
      (** per-tenant breakdown, indexed by request slot — the [sfi top]
          table *)
}

val run : config -> result
(** Always runs to completion: sandbox misbehavior (traps, runaway loops,
    crashed processes) is contained and reported in the counters, never
    re-raised to the caller. *)

val throughput_gain : workload:Workloads.t -> processes:int -> config -> float
(** Percent throughput advantage of ColorGuard over [processes]-process
    scaling for the same load — one point of Figure 6. The [config] supplies
    everything except mode/workload. *)

val degraded_mode :
  workload:Workloads.t ->
  processes:int ->
  trap_rate:float ->
  config ->
  result * result
(** Run the Figure 6 comparison with misbehaving tenants at [trap_rate]:
    [(colorguard, multiprocess)] results under identical load and faults.
    The interesting deltas are [availability] and [collateral_aborts] — the
    per-process blast radius multiprocess pays that per-instance recovery
    avoids. *)
