(** The simulated FaaS edge platform of §6.4.3 (Figures 6, 7a, 7b).

    A single core serves a fixed population of in-flight requests. Each
    request waits on IO (delay drawn from a Poisson-parameterized
    distribution with a 5 ms mean, like the paper's simulation), then runs
    its workload inside a Wasm instance under epoch-based preemption
    (1 ms epochs).

    Two scaling strategies are compared:

    - {b ColorGuard}: one process; instances live in a striped pool and
      transitions are user-level (a pkru write — no TLB flush);
    - {b Multiprocess}: [processes] separate engines (own address space,
      own TLB state); the OS round-robins between them on 1 ms timeslices,
      paying a context-switch cost and a TLB flush per switch.

    Compute is real: the workload modules execute on the machine, so dTLB
    misses (Figure 7b) come out of the TLB model rather than a formula.

    The {!fault_model} adds misbehaving tenants: with per-request
    probabilities a request runs a trapping or runaway handler instead of
    [handle]. Faults are contained — a trap kills only the offending
    instance (ColorGuard) or its whole process (multiprocess, the blast
    radius), a runaway loop is stopped by the epoch watchdog, and the
    simulation always runs to completion, reporting availability. *)

type mode = Colorguard | Multiprocess of int  (** process count (1-15) *)

type fault_model = {
  trap_rate : float;  (** per-request probability of a trapping handler *)
  runaway_rate : float;  (** per-request probability of an infinite loop *)
  deadline_epochs : int;
      (** watchdog: epochs a request may consume before being killed *)
  respawn_ns : float;  (** cost to restart a crashed process (multiprocess) *)
}

val no_faults : fault_model
(** Zero fault rates (the legacy behavior); deadline 8 epochs, respawn
    0.5 ms. The watchdog deadline applies to {e every} request, fault
    model or not — a runaway guest is always bounded. *)

(** {1 Overload resilience}

    Policy knobs for serving under sustained overload. Everything
    defaults off ({!no_overload}), in which case the sim behaves exactly
    as it historically did. *)

type overload = {
  pool_slots : int option;
      (** ColorGuard pool size; default [concurrency]. Setting it below
          [concurrency] makes slots a contended resource acquired through
          admission — the overload regime. *)
  admission : Sfi_runtime.Runtime.admission_config option;
      (** arm {!Sfi_runtime.Runtime.set_admission} on every engine: CoDel
          sojourn control + per-tenant token buckets instead of the blind
          FIFO reject *)
  breaker : Breaker.config option;
      (** per-tenant circuit breakers: trap/watchdog/latency failures trip
          them, open breakers fast-fail requests without touching the
          pool, half-open probes close them again *)
  degradation : bool;
      (** graceful-degradation ladder: under sustained shedding step down
          deliberately — L1 tightens admission (pressure 0.5) and reserves
          1/8 of the slots, L2 also stops hedging failed requests, L3 also
          sheds low-priority arrivals; steps back up after calm windows.
          Each step emits a [degrade.step] trace event. *)
  hedged_retries : bool;
      (** retry failed requests next epoch instead of after a full IO
          round-trip (downgraded by the ladder at L2) *)
  request_deadline_ns : float option;
      (** end-to-end deadline (arrival to completion): a completion past
          it counts as a [deadline_miss] and is excluded from goodput *)
  crash_tenants : int list;  (** tenants whose every request traps *)
  runaway_tenants : int list;  (** tenants whose every request spins *)
  low_priority : int -> bool;
      (** tenants the ladder may shed at L3 (default: none) *)
  slo : Slo.config option;
      (** per-tenant latency/availability objectives: every request outcome
          (completion checked against the latency threshold; failures and
          sheds count as bad) feeds a per-tenant {!Slo} tracker, burn-rate
          alert edges are emitted as [slo.burn_start]/[slo.burn_stop] trace
          events, and the degradation ladder treats any tenant burning its
          fast window as overload (shedding starts on burn rate, not just
          queue sojourn) *)
}

val no_overload : overload

(** {1 Chaos}

    Perturbations applied to the live run on a caller-supplied schedule
    (see {!Sfi_inject.Chaos} for the seeded planner and invariant
    checks). Chaos randomness (victim choice, respawn delays) comes from
    a dedicated PRNG stream derived from [seed], so a chaos run is
    deterministic and the workload stream is untouched. *)

type chaos_action =
  | Chaos_kill
      (** kill a random in-flight instance; its request fails
          (attributed to that tenant only) and the slot recycles *)
  | Chaos_latency of { factor : float; window_ns : float }
      (** multiply IO delays by [factor] for the next [window_ns] *)
  | Chaos_instantiate_fail of int
      (** make the next [n] slot acquisitions fail transiently *)

type chaos_event = { at_ns : float; action : chaos_action }

type chaos_report = {
  cr_index : int;  (** 0-based perturbation number *)
  cr_at_ns : float;  (** scheduled time (application may lag slightly) *)
  cr_action : chaos_action;
  cr_victim : int;  (** tenant killed by [Chaos_kill]; [-1] otherwise *)
  cr_failed : int array;  (** per-tenant failure counts after application *)
}

type config = {
  mode : mode;
  workload : Workloads.t;
  concurrency : int;  (** in-flight requests (closed loop) *)
  duration_ns : float;  (** simulated wall-clock to run for *)
  io_mean_ns : float;  (** mean IO delay (paper: 5 ms) *)
  epoch_ns : float;  (** preemption epoch (paper: 1 ms) *)
  os_switch_ns : float;  (** OS context-switch direct cost *)
  faults : fault_model;
  seed : int64;
  churn : bool;
      (** release every instance after its request completes, so each
          request runs on a fresh instantiation — the §6.4.3 FaaS pattern *)
  page_zero_ns : float;
      (** price of one OS page of instantiation/recycle work (zeroing or
          copying); 0.0 (default) makes lifecycle work free, the historical
          behavior. The paper's 79 us / 64 KiB instance (§7) gives
          ~4937 ns/page. *)
  legacy_lifecycle : bool;
      (** bill every instantiate at the pre-refactor runtime's O(min_pages)
          cost (whole-heap madvise + data-segment rewrite) instead of the
          CoW runtime's O(dirty pages); only meaningful with
          [page_zero_ns > 0] *)
  trace : Sfi_trace.Trace.t;
      (** structured-event sink for per-tenant request spans
          ([Trace.null] by default, a no-op). The sim installs the simulated
          clock on the sink and emits one [request] span per activation on
          track [id] — so a Chrome/Perfetto export shows one lane per
          tenant. Spans still open when the simulated duration expires are
          closed without being counted as failures. *)
  flight : Sfi_trace.Flight.t option;
      (** fault flight recorder ([None] by default). When armed it taps
          the trace sink (or becomes the effective sink when the run is
          otherwise untraced) and freezes a post-mortem bundle — event
          tail plus a machine/admission/breaker/ladder counter snapshot —
          on every request failure ([fault]), breaker trip
          ([breaker.open]) and chaos perturbation ([chaos.kill] /
          [chaos.latency] / [chaos.instantiate_fail]). Pure observer:
          arming it never changes simulation results. *)
  overload : overload;  (** resilience policy ({!no_overload} = legacy) *)
  engine : Sfi_machine.Machine.engine_kind option;
      (** execution engine for the machines (default: the machine's own
          default, [Threaded]); [Reference] runs the differential oracle *)
  chaos : chaos_event list;  (** perturbation schedule (applied in time order) *)
  on_perturbation : (chaos_report -> unit) option;
      (** called after each perturbation is applied — the chaos harness's
          invariant-check hook *)
  fair_scheduling : bool;
      (** [false] (legacy): the scheduler picks the lowest-index ready
          request, so a started request runs to completion before anything
          behind it starts — slots are barely contended and overload shows
          up as silent starvation of the highest-index tenants. [true]:
          round-robin processor sharing — every ready request gets an
          epoch in turn, in-flight requests hold their pool slots across
          preemption, and excess demand queues (and is shed) at admission.
          The overload/chaos experiments run with this on. *)
  arrivals : Workloads.arrival array option;
      (** [None] (default): the historical closed loop. [Some schedule]:
          open loop — [concurrency] is the tenant count, one slot per
          tenant, and each slot serves its tenant's scheduled arrival
          times (see {!Workloads.synthesize}). A tenant's requests are
          served in order with at most one in flight: an arrival that
          fires while the previous request is still being served waits
          (its e2e latency includes the queueing delay), and a shed or
          failed request is dropped — the tenant moves on to its next
          scheduled arrival. The run still ends at [duration_ns]. This is
          the trace-shaped load the sharded serving layer
          ({!Sfi_faas.Shard}) drives each shard with. *)
}

val default_config :
  ?mode:mode ->
  ?workload:Workloads.t ->
  ?faults:fault_model ->
  ?churn:bool ->
  ?page_zero_ns:float ->
  ?legacy_lifecycle:bool ->
  ?overload:overload ->
  ?engine:Sfi_machine.Machine.engine_kind ->
  ?chaos:chaos_event list ->
  ?on_perturbation:(chaos_report -> unit) ->
  ?fair_scheduling:bool ->
  ?flight:Sfi_trace.Flight.t ->
  unit ->
  config
(** concurrency 128, duration 20 ms, IO mean 5 ms, epoch 1 ms, OS switch
    5 us (direct + indirect cost of a Linux process switch), ColorGuard,
    hash workload, no faults, no churn, free lifecycle work, no tracing,
    legacy (run-to-completion) scheduling. *)

type tenant_stat = {
  t_id : int;  (** the request slot — one closed-loop tenant *)
  t_completed : int;
  t_failed : int;  (** kills, watchdog stops and collateral aborts *)
  t_shed : int;  (** requests shed at admission (all reasons) *)
  t_breaker_opens : int;  (** times this tenant's breaker tripped *)
  t_breaker_state : string;
      (** breaker state at end of run (["closed"] / ["open"] /
          ["half-open"]); ["-"] when breakers are off *)
  t_p50_ns : float;  (** request latency percentiles over completed
                         activations (activation start to completion, in
                         simulated ns); 0 when the tenant completed
                         nothing *)
  t_p95_ns : float;
  t_p99_ns : float;
  t_p99_e2e_ns : float;
      (** p99 end-to-end latency (arrival to completion, including
          admission queueing) — what the request deadline is checked
          against *)
  t_sb_share : float;
      (** fraction of this tenant's retired instructions executed inside
          promoted superblocks (0 under the untiered engines) *)
  t_burn : float;
      (** fast-window error-budget burn rate at end of run (0 when SLOs
          are off) — the [sfi top] BURN column *)
  t_lat_hist : Sfi_util.Hist.t;
      (** the latency histogram behind the percentiles, with per-bucket
          exemplars pointing into the trace ring; mergeable across shards *)
  t_e2e_hist : Sfi_util.Hist.t;  (** end-to-end latency histogram *)
}

type result = {
  completed : int;  (** requests that finished successfully *)
  failed : int;  (** requests killed by a trap or the watchdog *)
  watchdog_kills : int;  (** subset of [failed] stopped by the deadline *)
  collateral_aborts : int;
      (** in-flight requests aborted because a co-resident tenant crashed
          their shared process — the blast radius; always 0 for ColorGuard *)
  recycles : int;  (** instances re-created on recycled slots *)
  pages_zeroed : int;
      (** OS pages of dirty state dropped by slot recycles, summed over all
          engines — the CoW runtime's whole lifecycle cost *)
  admitted : int;  (** slot grants through admission, summed over engines *)
  shed_sojourn : int;  (** CoDel / ticket-deadline sheds *)
  shed_rate_limited : int;  (** per-tenant token-bucket sheds *)
  shed_queue_full : int;  (** admission-queue-at-capacity sheds *)
  shed_priority : int;  (** low-priority arrivals shed by the ladder at L3 *)
  deadline_misses : int;
      (** completions past [request_deadline_ns] — completed but excluded
          from goodput *)
  breaker_opens : int;  (** breaker trips, summed over tenants *)
  breaker_fast_fails : int;
      (** requests refused by an open breaker without entering service
          (not counted in [failed]) *)
  breakers_open_at_end : int;  (** breakers not Closed when the run ended *)
  degrade_steps : int;  (** ladder transitions (up or down) *)
  max_degrade_level : int;  (** deepest ladder level reached (0-3) *)
  chaos_applied : int;  (** perturbations applied from the schedule *)
  chaos_kills : int;  (** [Chaos_kill]s that found an in-flight victim *)
  slo_burn_starts : int;  (** burn-rate alert raises, both windows *)
  slo_burn_stops : int;  (** burn-rate alert clears, both windows *)
  slo_burning_at_end : int;
      (** tenants whose fast-window alert was still raised at end of run *)
  throughput_rps : float;
      (** requests retired (successfully or not) per simulated second *)
  goodput_rps : float;
      (** successful in-deadline completions per simulated second
          ([completed - deadline_misses]; identical to completions/s when
          no deadline is set) *)
  availability : float;
      (** completed / (completed + failed + collateral_aborts) *)
  capacity_rps : float;
      (** completions per CPU-busy second — the per-core efficiency that
          Figure 6's throughput-gain percentages compare *)
  context_switches : int;
      (** OS-level process switches (multiprocess) — Figure 7a's metric;
          always 0 for ColorGuard, whose switches are user-level *)
  user_transitions : int;  (** sandbox entries/exits *)
  dtlb_misses : int;  (** summed over all engines — Figure 7b *)
  checksum : int64;  (** folded request results, for validation *)
  simulated_ns : float;
  cpu_busy_ns : float;
  tenants : tenant_stat array;
      (** per-tenant breakdown, indexed by request slot — the [sfi top]
          table *)
}

val run : config -> result
(** Always runs to completion: sandbox misbehavior (traps, runaway loops,
    crashed processes) is contained and reported in the counters, never
    re-raised to the caller. *)

val throughput_gain : workload:Workloads.t -> processes:int -> config -> float
(** Percent throughput advantage of ColorGuard over [processes]-process
    scaling for the same load — one point of Figure 6. The [config] supplies
    everything except mode/workload. *)

val degraded_mode :
  workload:Workloads.t ->
  processes:int ->
  trap_rate:float ->
  config ->
  result * result
(** Run the Figure 6 comparison with misbehaving tenants at [trap_rate]:
    [(colorguard, multiprocess)] results under identical load and faults.
    The interesting deltas are [availability] and [collateral_aborts] — the
    per-process blast radius multiprocess pays that per-instance recovery
    avoids. *)

val top_header : breakers:bool -> string
(** Column header of the [sfi top] per-tenant table. With [breakers] the
    table carries the resilience columns (SHED, BRKOPEN, BRK state) and
    the fast-window SLO BURN rate. *)

val top_row : breakers:bool -> tenant_stat -> string
(** One fixed-width [sfi top] row, aligned with {!top_header} of the same
    [breakers] mode. *)
