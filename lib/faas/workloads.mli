(** The three FaaS request workloads of §6.4.3, as real Wasm modules:
    HTML templating, FNV-based load balancing, and DFA-driven URL
    filtering. Each module exports [handle(seed) -> i32]: the request body
    is synthesized in-sandbox from the seed, processed, and checksummed,
    so the simulator's requests perform genuine, validated work. *)

type t =
  | Templating
  | Hash_balance
  | Regex_filter
  | Micro_kv
      (** The smallest request that still does attributable work (hash a
          key, bump a counter, checksum): a few dozen instructions, built
          for the 1M+-request shard-scaling experiment. *)

val name : t -> string

val all : t list
(** The paper's three figure workloads — [Micro_kv] is deliberately
    excluded so the fig6/fig7 tables keep their published columns. *)

val module_of : t -> Sfi_wasm.Ast.module_

val template : string
(** The order-page template the templating workload expands. *)

(** {1 Trace-shaped load}

    Deterministic open-loop request schedules for the sharded serving
    layer ({!Sfi_faas.Shard}): who arrives when, shaped like production
    FaaS traffic rather than a fixed closed loop. *)

type arrival = { at_ns : float;  (** simulated arrival time *) tenant : int }

(** Rate modulation over the run. Every shape preserves the requested
    mean rate, so shard-count sweeps serve the same offered load. *)
type shape =
  | Steady  (** homogeneous Poisson arrivals *)
  | Diurnal of { trough : float }
      (** one sinusoidal "day" over the run, dipping to [trough] (in
          [\[0, 1\]]) of the peak overnight *)
  | Bursts of { every_ns : float; len_ns : float; boost : float }
      (** a [len_ns]-long burst at [boost] times the base rate every
          [every_ns] *)

(** Tenant popularity across arrivals. *)
type popularity =
  | Flat
  | Zipf of { skew : float }
      (** rank-[k] tenant drawn with weight [1/(k+1)^skew]: a few hot
          tenants, a long tail of cold ones (tenant 0 hottest) *)

val synthesize :
  seed:int64 ->
  tenants:int ->
  duration_ns:float ->
  rps:float ->
  ?shape:shape ->
  ?popularity:popularity ->
  unit ->
  arrival array
(** Draw a time-ordered arrival schedule: a non-homogeneous Poisson
    process (thinning at the peak rate) with mean [rps] requests per
    simulated second over [duration_ns], tenants drawn per [popularity].
    Arrival times and tenant draws use {!Sfi_util.Prng.split} child
    streams of [seed], so equal seeds yield equal schedules and the
    popularity model never perturbs the arrival process. *)
