type window = Fast | Slow

type config = {
  latency_ns : float;
  availability : float;
  fast_window_ns : float;
  slow_window_ns : float;
  fast_burn : float;
  slow_burn : float;
}

let default_config ?(latency_ns = 5.0e6) ?(availability = 0.999)
    ?(fast_window_ns = 200_000.0) ?(slow_window_ns = 1_000_000.0)
    ?(fast_burn = 14.4) ?(slow_burn = 6.0) () =
  if not (availability > 0.0 && availability < 1.0) then
    invalid_arg "Slo: availability must be in (0, 1)";
  if fast_window_ns <= 0.0 || slow_window_ns <= 0.0 then
    invalid_arg "Slo: windows must be positive";
  { latency_ns; availability; fast_window_ns; slow_window_ns; fast_burn; slow_burn }

(* A sliding window of [n_sub] circular sub-buckets. Each bucket owns a
   fixed absolute epoch (time / bucket width); a record landing on a
   bucket whose stored epoch is stale resets it first, and burn queries
   only sum buckets whose epoch is still inside the window — so the
   window slides correctly through idle gaps without any timer. *)
let n_sub = 8

type win = {
  width : float; (* sub-bucket width in ns *)
  epoch : int array;
  good : int array;
  bad : int array;
}

let make_win window_ns =
  {
    width = window_ns /. float_of_int n_sub;
    epoch = Array.make n_sub (-1);
    good = Array.make n_sub 0;
    bad = Array.make n_sub 0;
  }

let win_record w ~now ~good =
  let e = int_of_float (now /. w.width) in
  let i = e mod n_sub in
  if w.epoch.(i) <> e then begin
    w.epoch.(i) <- e;
    w.good.(i) <- 0;
    w.bad.(i) <- 0
  end;
  if good then w.good.(i) <- w.good.(i) + 1 else w.bad.(i) <- w.bad.(i) + 1

let win_bad_fraction w ~now =
  let e = int_of_float (now /. w.width) in
  let good = ref 0 and bad = ref 0 in
  for i = 0 to n_sub - 1 do
    if w.epoch.(i) >= 0 && e - w.epoch.(i) < n_sub then begin
      good := !good + w.good.(i);
      bad := !bad + w.bad.(i)
    end
  done;
  let total = !good + !bad in
  if total = 0 then 0.0 else float_of_int !bad /. float_of_int total

type t = {
  cfg : config;
  fast : win;
  slow : win;
  mutable fast_alert : bool;
  mutable slow_alert : bool;
}

type transition = { tr_window : window; tr_started : bool; tr_burn : float }

let create cfg =
  {
    cfg;
    fast = make_win cfg.fast_window_ns;
    slow = make_win cfg.slow_window_ns;
    fast_alert = false;
    slow_alert = false;
  }

let record t ~now ~good =
  win_record t.fast ~now ~good;
  win_record t.slow ~now ~good

let burn t ~now w =
  let frac =
    match w with
    | Fast -> win_bad_fraction t.fast ~now
    | Slow -> win_bad_fraction t.slow ~now
  in
  frac /. (1.0 -. t.cfg.availability)

let evaluate t ~now =
  let step w active threshold set =
    let b = burn t ~now w in
    if (not active) && b >= threshold then begin
      set true;
      [ { tr_window = w; tr_started = true; tr_burn = b } ]
    end
    else if active && b < threshold then begin
      set false;
      [ { tr_window = w; tr_started = false; tr_burn = b } ]
    end
    else []
  in
  step Fast t.fast_alert t.cfg.fast_burn (fun v -> t.fast_alert <- v)
  @ step Slow t.slow_alert t.cfg.slow_burn (fun v -> t.slow_alert <- v)

let alerting t = function Fast -> t.fast_alert | Slow -> t.slow_alert
