(** Per-tenant SLO tracking with multi-window burn-rate alerting.

    A tenant's objective says what fraction of requests must be good —
    completed, and under the latency threshold. The tracker counts
    good/bad events into sliding windows of circular sub-buckets and
    reports the {e burn rate}: the observed bad fraction divided by the
    error budget [(1 - objective)]. Burn 1.0 means the budget is being
    spent exactly at the sustainable rate; 14.4 means a 30-day budget
    would be gone in 50 hours (the classic Google SRE fast-page
    threshold).

    Two windows are tracked per tenant — a fast one that catches sharp
    spikes and a slow one that catches simmering burn — each with its
    own alerting threshold. {!evaluate} edge-triggers alert state per
    window; the caller turns the transitions into trace events and
    gauges. *)

type window = Fast | Slow

type config = {
  latency_ns : float;  (** a completion slower than this is a bad event *)
  availability : float;  (** objective: required good fraction, in (0, 1) *)
  fast_window_ns : float;
  slow_window_ns : float;
  fast_burn : float;  (** alert when the fast-window burn reaches this *)
  slow_burn : float;  (** alert when the slow-window burn reaches this *)
}

val default_config :
  ?latency_ns:float ->
  ?availability:float ->
  ?fast_window_ns:float ->
  ?slow_window_ns:float ->
  ?fast_burn:float ->
  ?slow_burn:float ->
  unit ->
  config
(** Defaults: 5 ms latency objective at 99.9% availability, 200 us /
    1 ms windows (sim scale), burn thresholds 14.4 (fast) and 6.0
    (slow). Raises [Invalid_argument] if [availability] is not in
    (0, 1) or a window is not positive. *)

type t
(** One tenant's tracker. *)

type transition = {
  tr_window : window;
  tr_started : bool;  (** [true] = alert raised, [false] = cleared *)
  tr_burn : float;  (** the burn rate at the transition *)
}

val create : config -> t

val record : t -> now:float -> good:bool -> unit
(** Count one request outcome at simulated time [now] (monotonic). *)

val burn : t -> now:float -> window -> float
(** Current burn rate over the given window ending at [now]; [0.0] when
    the window holds no samples. *)

val evaluate : t -> now:float -> transition list
(** Edge-trigger alert state against the thresholds: returns the
    transitions (at most one per window) caused by the current burn
    rates, updating internal state so each edge is reported once. *)

val alerting : t -> window -> bool
(** Is the alert for this window currently raised? *)
