(* The three FaaS request workloads of §6.4.3, as Wasm modules: HTML
   templating, hash-based load balancing, and regular-expression filtering
   of URLs — "benchmarks typical of FaaS edge environments". Each exports
   [handle(seed) -> i32]: the request body is synthesized in-sandbox from
   the seed, processed, and checksummed. *)

module W = Sfi_wasm.Ast
module Frag = Sfi_workloads.Frag
open Sfi_wasm.Builder

type t = Templating | Hash_balance | Regex_filter

(* Misbehaving request handlers, same signature as [handle]. Every workload
   module exports both, so the fault-injecting simulator can dispatch a
   request to them with a per-request probability:
   - [misbehave_trap] reaches far outside the linear memory — under guard
     regions it lands in unmapped space, under ColorGuard striping in a
     differently-colored stripe, under bounds checks/masking it fails the
     check: a trap under every strategy;
   - [misbehave_spin] never terminates — only the epoch watchdog stops it. *)
let add_misbehavior b =
  let t = declare b "misbehave_trap" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b t [ i32 0x7FF0_0000; load32 () ];
  let s = declare b "misbehave_spin" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b s (while_loop [ i32 1 ] [] @ [ get 0 ])

let name = function
  | Templating -> "HTML templating"
  | Hash_balance -> "Hash load-balance"
  | Regex_filter -> "Regex filtering"

let all = [ Hash_balance; Regex_filter; Templating ]

(* --- HTML templating ---------------------------------------------------- *)

(* The template lives in a data segment; [handle] expands {{0}}..{{9}}
   placeholders with request-derived values into the output buffer. *)
let template =
  let item =
    "<tr><td>{{0}}</td><td>{{1}}</td><td class=\"price\">{{2}}</td><td>{{3}}</td></tr>"
  in
  "<html><body><h1>Order {{4}}</h1><table>"
  ^ String.concat "" (List.init 8 (fun _ -> item))
  ^ "</table><footer>{{5}} - {{6}}</footer></body></html>"

let templating_module () =
  let b = create ~memory_pages:2 () in
  data b ~offset:0 template;
  let tlen = String.length template in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let pos = 1 and out = 2 and c = 3 and acc = 4 and v = 5 and d = 6 in
  let outbuf = 0x8000 in
  define b handle ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 0; set pos; i32 0; set out ]
    @ while_loop
        [ get pos; i32 tlen; lt_u ]
        [
          get pos; load8_u (); set c;
          (* "{{d}}" ? *)
          get c; i32 (Char.code '{'); eq;
          get pos; load8_u ~offset:1 (); i32 (Char.code '{'); eq; band;
          if_
            ([
               (* placeholder index *)
               get pos; load8_u ~offset:2 (); i32 (Char.code '0'); sub; set d;
               (* value = digits of seed*(d+1) *)
               get 0; get d; i32 1; add; mul; i32 0x7FFFFF; band; set v;
             ]
            @ while_loop
                [ get v; i32 0; gt_u ]
                [
                  get out; i32 outbuf; add;
                  get v; i32 10; rem_u; i32 (Char.code '0'); add; store8 ();
                  get out; i32 1; add; set out;
                  get v; i32 10; div_u; set v;
                ]
            @ [ get pos; i32 5; add; set pos ])
            [
              get out; i32 outbuf; add; get c; store8 ();
              get out; i32 1; add; set out;
              get pos; i32 1; add; set pos;
            ];
        ]
    (* checksum the rendered page *)
    @ [ i32 0; set acc; i32 0; set pos ]
    @ while_loop
        [ get pos; get out; lt_u ]
        [
          get acc; i32 5; rotl; get pos; i32 outbuf; add; load8_u (); bxor; set acc;
          get pos; i32 1; add; set pos;
        ]
    @ [ get acc ]);
  add_misbehavior b;
  build b

(* --- hash-based load balancing ------------------------------------------ *)

let hash_module () =
  let b = create ~memory_pages:2 () in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and h = 3 and backend = 4 and key = 5 in
  let counts = 0x4000 in
  define b handle ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* synthesize a 192-byte request key from the seed *)
     [ get 0; i32 1; bor; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 192 ]
        ([ get i ] @ Frag.lcg_next ~state @ [ store8 () ])
    (* FNV-1a over the key, one sweep per consistent-hash ring probe *)
    @ [ i32 0; set backend ]
    @ for_loop ~i:key ~start:[ i32 0 ] ~stop:[ i32 8 ]
        ([ i32 2166136261; set h ]
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 192 ]
            [ get h; get i; load8_u (); bxor; i32 16777619; mul; set h ]
        @ [
            (* bump the chosen backend's counter *)
            get h; i32 63; band; i32 2; shl; i32 counts; add;
            get h; i32 63; band; i32 2; shl; i32 counts; add; load32 (); i32 1; add;
            store32 ();
            get backend; get h; bxor; set backend;
          ])
    @ [ get backend ]);
  add_misbehavior b;
  build b

(* --- regex filtering ------------------------------------------------------ *)

(* Matches URLs against an /api/v<digits>/<word>/<digits> shape with a
   hand-compiled DFA — the table-driven inner loop a regex engine runs. *)
let regex_module () =
  let b = create ~memory_pages:2 () in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and st = 3 and c = 4 and acc = 5 and ulen = 6 in
  let url = 0 in
  define b handle ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* synthesize a URL: "/api/vN/usersNNN/..." with seed-driven noise *)
     [ get 0; i32 1; bor; set state; i32 0; set ulen ]
    @ (let emit_str s =
         List.concat_map
           (fun ch ->
             [ get ulen; i32 url; add; i32 (Char.code ch); store8 ();
               get ulen; i32 1; add; set ulen ])
           (List.init (String.length s) (String.get s))
       in
       emit_str "/api/v"
       @ [ get ulen; i32 url; add ]
       @ Frag.lcg_next ~state
       @ [ i32 10; rem_u; i32 (Char.code '0'); add; store8 (); get ulen; i32 1; add; set ulen ]
       @ emit_str "/users/"
       @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 40 ]
           ([ get ulen; i32 url; add ]
           @ Frag.lcg_next ~state
           @ [ i32 36; rem_u;
               tee c; i32 10; lt_u;
               if_ ~ty:W.I32 [ get c; i32 (Char.code '0'); add ]
                 [ get c; i32 (Char.code 'a'); add; i32 10; sub ];
               store8 (); get ulen; i32 1; add; set ulen ]))
    (* DFA over the URL, one pass per rule of a 48-rule filter chain *)
    @ for_loop ~i:acc ~start:[ i32 0 ] ~stop:[ i32 96 ]
        ([ i32 0; set st; i32 0; set i ]
        @ while_loop
            [ get i; get ulen; lt_u; get st; i32 255; ne; band ]
            [
              get i; i32 url; add; load8_u (); set c;
              (* transition: states 0../api/v..digits..slash..word *)
              get st; i32 0; eq;
              if_
                [ get c; i32 (Char.code '/'); eq; if_ [ i32 1; set st ] [ i32 255; set st ] ]
                [
                  get st; i32 5; lt_u;
                  if_
                    [
                      (* literal "api/v" *)
                      get c;
                      get st; i32 1; sub;
                      i32 url; add; load8_u ~offset:1 (); eq;
                      if_ [ get st; i32 1; add; set st ] [ i32 255; set st ];
                    ]
                    [
                      get st; i32 5; eq;
                      if_
                        [
                          (* digits *)
                          get c; i32 (Char.code '0'); ge_u;
                          get c; i32 (Char.code '9'); le_u; band;
                          if_ [ i32 5; set st ]
                            [
                              get c; i32 (Char.code '/'); eq;
                              if_ [ i32 6; set st ] [ i32 255; set st ];
                            ];
                        ]
                        [
                          (* tail: anything word-ish *)
                          get c; i32 (Char.code 'a'); ge_u;
                          get c; i32 (Char.code 'z'); le_u; band;
                          get c; i32 (Char.code '0'); ge_u;
                          get c; i32 (Char.code '9'); le_u; band;
                          bor; get c; i32 (Char.code '/'); eq; bor;
                          if_ [] [ i32 255; set st ];
                        ];
                    ];
                ];
              get i; i32 1; add; set i;
            ])
    @ [ get st; get ulen; add ]);
  add_misbehavior b;
  build b

let module_of = function
  | Templating -> templating_module ()
  | Hash_balance -> hash_module ()
  | Regex_filter -> regex_module ()
