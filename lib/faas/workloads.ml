(* The three FaaS request workloads of §6.4.3, as Wasm modules: HTML
   templating, hash-based load balancing, and regular-expression filtering
   of URLs — "benchmarks typical of FaaS edge environments". Each exports
   [handle(seed) -> i32]: the request body is synthesized in-sandbox from
   the seed, processed, and checksummed. *)

module W = Sfi_wasm.Ast
module Frag = Sfi_workloads.Frag
open Sfi_wasm.Builder

module Prng = Sfi_util.Prng

type t = Templating | Hash_balance | Regex_filter | Micro_kv

(* Misbehaving request handlers, same signature as [handle]. Every workload
   module exports both, so the fault-injecting simulator can dispatch a
   request to them with a per-request probability:
   - [misbehave_trap] reaches far outside the linear memory — under guard
     regions it lands in unmapped space, under ColorGuard striping in a
     differently-colored stripe, under bounds checks/masking it fails the
     check: a trap under every strategy;
   - [misbehave_spin] never terminates — only the epoch watchdog stops it. *)
let add_misbehavior b =
  let t = declare b "misbehave_trap" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b t [ i32 0x7FF0_0000; load32 () ];
  let s = declare b "misbehave_spin" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  define b s (while_loop [ i32 1 ] [] @ [ get 0 ])

let name = function
  | Templating -> "HTML templating"
  | Hash_balance -> "Hash load-balance"
  | Regex_filter -> "Regex filtering"
  | Micro_kv -> "Micro KV"

(* The paper's three figure workloads. [Micro_kv] is deliberately kept out
   of [all] so the fig6/fig7 tables keep their published columns; the
   sharding scale experiment references it directly. *)
let all = [ Hash_balance; Regex_filter; Templating ]

(* --- HTML templating ---------------------------------------------------- *)

(* The template lives in a data segment; [handle] expands {{0}}..{{9}}
   placeholders with request-derived values into the output buffer. *)
let template =
  let item =
    "<tr><td>{{0}}</td><td>{{1}}</td><td class=\"price\">{{2}}</td><td>{{3}}</td></tr>"
  in
  "<html><body><h1>Order {{4}}</h1><table>"
  ^ String.concat "" (List.init 8 (fun _ -> item))
  ^ "</table><footer>{{5}} - {{6}}</footer></body></html>"

let templating_module () =
  let b = create ~memory_pages:2 () in
  data b ~offset:0 template;
  let tlen = String.length template in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let pos = 1 and out = 2 and c = 3 and acc = 4 and v = 5 and d = 6 in
  let outbuf = 0x8000 in
  define b handle ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ([ i32 0; set pos; i32 0; set out ]
    @ while_loop
        [ get pos; i32 tlen; lt_u ]
        [
          get pos; load8_u (); set c;
          (* "{{d}}" ? *)
          get c; i32 (Char.code '{'); eq;
          get pos; load8_u ~offset:1 (); i32 (Char.code '{'); eq; band;
          if_
            ([
               (* placeholder index *)
               get pos; load8_u ~offset:2 (); i32 (Char.code '0'); sub; set d;
               (* value = digits of seed*(d+1) *)
               get 0; get d; i32 1; add; mul; i32 0x7FFFFF; band; set v;
             ]
            @ while_loop
                [ get v; i32 0; gt_u ]
                [
                  get out; i32 outbuf; add;
                  get v; i32 10; rem_u; i32 (Char.code '0'); add; store8 ();
                  get out; i32 1; add; set out;
                  get v; i32 10; div_u; set v;
                ]
            @ [ get pos; i32 5; add; set pos ])
            [
              get out; i32 outbuf; add; get c; store8 ();
              get out; i32 1; add; set out;
              get pos; i32 1; add; set pos;
            ];
        ]
    (* checksum the rendered page *)
    @ [ i32 0; set acc; i32 0; set pos ]
    @ while_loop
        [ get pos; get out; lt_u ]
        [
          get acc; i32 5; rotl; get pos; i32 outbuf; add; load8_u (); bxor; set acc;
          get pos; i32 1; add; set pos;
        ]
    @ [ get acc ]);
  add_misbehavior b;
  build b

(* --- hash-based load balancing ------------------------------------------ *)

let hash_module () =
  let b = create ~memory_pages:2 () in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and h = 3 and backend = 4 and key = 5 in
  let counts = 0x4000 in
  define b handle ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* synthesize a 192-byte request key from the seed *)
     [ get 0; i32 1; bor; set state ]
    @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 192 ]
        ([ get i ] @ Frag.lcg_next ~state @ [ store8 () ])
    (* FNV-1a over the key, one sweep per consistent-hash ring probe *)
    @ [ i32 0; set backend ]
    @ for_loop ~i:key ~start:[ i32 0 ] ~stop:[ i32 8 ]
        ([ i32 2166136261; set h ]
        @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 192 ]
            [ get h; get i; load8_u (); bxor; i32 16777619; mul; set h ]
        @ [
            (* bump the chosen backend's counter *)
            get h; i32 63; band; i32 2; shl; i32 counts; add;
            get h; i32 63; band; i32 2; shl; i32 counts; add; load32 (); i32 1; add;
            store32 ();
            get backend; get h; bxor; set backend;
          ])
    @ [ get backend ]);
  add_misbehavior b;
  build b

(* --- regex filtering ------------------------------------------------------ *)

(* Matches URLs against an /api/v<digits>/<word>/<digits> shape with a
   hand-compiled DFA — the table-driven inner loop a regex engine runs. *)
let regex_module () =
  let b = create ~memory_pages:2 () in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let i = 1 and state = 2 and st = 3 and c = 4 and acc = 5 and ulen = 6 in
  let url = 0 in
  define b handle ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I32; W.I32 ]
    ((* synthesize a URL: "/api/vN/usersNNN/..." with seed-driven noise *)
     [ get 0; i32 1; bor; set state; i32 0; set ulen ]
    @ (let emit_str s =
         List.concat_map
           (fun ch ->
             [ get ulen; i32 url; add; i32 (Char.code ch); store8 ();
               get ulen; i32 1; add; set ulen ])
           (List.init (String.length s) (String.get s))
       in
       emit_str "/api/v"
       @ [ get ulen; i32 url; add ]
       @ Frag.lcg_next ~state
       @ [ i32 10; rem_u; i32 (Char.code '0'); add; store8 (); get ulen; i32 1; add; set ulen ]
       @ emit_str "/users/"
       @ for_loop ~i ~start:[ i32 0 ] ~stop:[ i32 40 ]
           ([ get ulen; i32 url; add ]
           @ Frag.lcg_next ~state
           @ [ i32 36; rem_u;
               tee c; i32 10; lt_u;
               if_ ~ty:W.I32 [ get c; i32 (Char.code '0'); add ]
                 [ get c; i32 (Char.code 'a'); add; i32 10; sub ];
               store8 (); get ulen; i32 1; add; set ulen ]))
    (* DFA over the URL, one pass per rule of a 48-rule filter chain *)
    @ for_loop ~i:acc ~start:[ i32 0 ] ~stop:[ i32 96 ]
        ([ i32 0; set st; i32 0; set i ]
        @ while_loop
            [ get i; get ulen; lt_u; get st; i32 255; ne; band ]
            [
              get i; i32 url; add; load8_u (); set c;
              (* transition: states 0../api/v..digits..slash..word *)
              get st; i32 0; eq;
              if_
                [ get c; i32 (Char.code '/'); eq; if_ [ i32 1; set st ] [ i32 255; set st ] ]
                [
                  get st; i32 5; lt_u;
                  if_
                    [
                      (* literal "api/v" *)
                      get c;
                      get st; i32 1; sub;
                      i32 url; add; load8_u ~offset:1 (); eq;
                      if_ [ get st; i32 1; add; set st ] [ i32 255; set st ];
                    ]
                    [
                      get st; i32 5; eq;
                      if_
                        [
                          (* digits *)
                          get c; i32 (Char.code '0'); ge_u;
                          get c; i32 (Char.code '9'); le_u; band;
                          if_ [ i32 5; set st ]
                            [
                              get c; i32 (Char.code '/'); eq;
                              if_ [ i32 6; set st ] [ i32 255; set st ];
                            ];
                        ]
                        [
                          (* tail: anything word-ish *)
                          get c; i32 (Char.code 'a'); ge_u;
                          get c; i32 (Char.code 'z'); le_u; band;
                          get c; i32 (Char.code '0'); ge_u;
                          get c; i32 (Char.code '9'); le_u; band;
                          bor; get c; i32 (Char.code '/'); eq; bor;
                          if_ [] [ i32 255; set st ];
                        ];
                    ];
                ];
              get i; i32 1; add; set i;
            ])
    @ [ get st; get ulen; add ]);
  add_misbehavior b;
  build b

(* --- micro key-value bump ------------------------------------------------ *)

(* The smallest request that still does attributable work: mix the seed,
   bump one of 64 counters (dirtying a page, so recycles stay priced), and
   return a checksum. A few dozen instructions per request — this is the
   workload the 1M+-request shard-scaling experiment serves. *)
let micro_module () =
  let b = create ~memory_pages:1 () in
  let handle = declare b "handle" ~params:[ W.I32 ] ~results:[ W.I32 ] () in
  let h = 1 and slot = 2 in
  let counts = 0x100 in
  define b handle ~locals:[ W.I32; W.I32 ]
    [
      (* h = avalanche(seed) *)
      get 0; i32 1; bor; i32 2654435761; mul; set h;
      get h; get h; i32 13; rotl; bxor; i32 16777619; mul; set h;
      (* counts[h & 63] += h *)
      get h; i32 63; band; i32 2; shl; i32 counts; add; set slot;
      get slot; get slot; load32 (); get h; add; store32 ();
      (* checksum *)
      get h; get slot; load32 (); bxor;
    ];
  add_misbehavior b;
  build b

let module_of = function
  | Templating -> templating_module ()
  | Hash_balance -> hash_module ()
  | Regex_filter -> regex_module ()
  | Micro_kv -> micro_module ()

(* --- trace-shaped load generators ---------------------------------------- *)

type arrival = { at_ns : float; tenant : int }

type shape =
  | Steady
  | Diurnal of { trough : float }
  | Bursts of { every_ns : float; len_ns : float; boost : float }

type popularity = Flat | Zipf of { skew : float }

let synthesize ~seed ~tenants ~duration_ns ~rps ?(shape = Steady)
    ?(popularity = Flat) () =
  if tenants <= 0 then invalid_arg "Workloads.synthesize: tenants must be > 0";
  if rps <= 0.0 || duration_ns <= 0.0 then
    invalid_arg "Workloads.synthesize: rps and duration must be > 0";
  (* Independent child streams for arrival times and tenant draws, so a
     different popularity model never perturbs the arrival process. *)
  let root = Prng.create ~seed in
  let time_rng = Prng.split root 0 in
  let tenant_rng = Prng.split root 1 in
  let mean_rate = rps /. 1e9 in
  (* Instantaneous rate (requests per simulated ns) and its peak; every
     shape preserves the requested mean rate so shard-count sweeps serve
     the same offered load. *)
  let rate_at, peak_rate =
    match shape with
    | Steady -> ((fun _ -> mean_rate), mean_rate)
    | Diurnal { trough } ->
        (* One sinusoidal day over the run: peak at mid-morning, dipping
           to [trough] of the peak overnight. *)
        let trough = Float.max 0.0 (Float.min 1.0 trough) in
        let a = (1.0 -. trough) /. (1.0 +. trough) in
        ( (fun t ->
            mean_rate
            *. (1.0 +. (a *. sin (2.0 *. Float.pi *. t /. duration_ns)))),
          mean_rate *. (1.0 +. a) )
    | Bursts { every_ns; len_ns; boost } ->
        if every_ns <= 0.0 || len_ns <= 0.0 || len_ns > every_ns || boost < 1.0
        then invalid_arg "Workloads.synthesize: bad burst parameters";
        let duty = len_ns /. every_ns in
        let base = mean_rate /. (1.0 +. ((boost -. 1.0) *. duty)) in
        ( (fun t ->
            let phase = Float.rem t every_ns in
            if phase < len_ns then base *. boost else base),
          base *. boost )
  in
  (* Tenant popularity: flat, or Zipf over ranks (tenant 0 hottest). *)
  let pick_tenant =
    match popularity with
    | Flat -> fun () -> Prng.int tenant_rng tenants
    | Zipf { skew } ->
        if skew < 0.0 then invalid_arg "Workloads.synthesize: negative skew";
        let cdf = Array.make tenants 0.0 in
        let total = ref 0.0 in
        for k = 0 to tenants - 1 do
          total := !total +. (1.0 /. Float.pow (float_of_int (k + 1)) skew);
          cdf.(k) <- !total
        done;
        fun () ->
          let u = Prng.float tenant_rng !total in
          let lo = ref 0 and hi = ref (tenants - 1) in
          while !lo < !hi do
            let mid = (!lo + !hi) / 2 in
            if cdf.(mid) < u then lo := mid + 1 else hi := mid
          done;
          !lo
  in
  (* Non-homogeneous Poisson arrivals by thinning at the peak rate. *)
  let acc = ref [] in
  let count = ref 0 in
  let t = ref 0.0 in
  let continue = ref true in
  while !continue do
    t := !t +. Prng.exponential time_rng ~mean:(1.0 /. peak_rate);
    if !t >= duration_ns then continue := false
    else if Prng.float time_rng peak_rate <= rate_at !t then begin
      acc := { at_ns = !t; tenant = pick_tenant () } :: !acc;
      incr count
    end
  done;
  let out = Array.make !count { at_ns = 0.0; tenant = 0 } in
  List.iteri (fun i a -> out.(!count - 1 - i) <- a) !acc;
  out
