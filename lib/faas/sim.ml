module Machine = Sfi_machine.Machine
module Cost = Sfi_machine.Cost
module Runtime = Sfi_runtime.Runtime
module Codegen = Sfi_core.Codegen
module Strategy = Sfi_core.Strategy
module Pool = Sfi_core.Pool
module Prng = Sfi_util.Prng
module Units = Sfi_util.Units
module Stats = Sfi_util.Stats
module Trace = Sfi_trace.Trace

type mode = Colorguard | Multiprocess of int

type fault_model = {
  trap_rate : float;
  runaway_rate : float;
  deadline_epochs : int;
  respawn_ns : float;
}

let no_faults =
  { trap_rate = 0.0; runaway_rate = 0.0; deadline_epochs = 8; respawn_ns = 500_000.0 }

type config = {
  mode : mode;
  workload : Workloads.t;
  concurrency : int;
  duration_ns : float;
  io_mean_ns : float;
  epoch_ns : float;
  os_switch_ns : float;
  faults : fault_model;
  seed : int64;
  churn : bool;
  page_zero_ns : float;
  legacy_lifecycle : bool;
  trace : Trace.t;
}

let default_config ?(mode = Colorguard) ?(workload = Workloads.Hash_balance)
    ?(faults = no_faults) ?(churn = false) ?(page_zero_ns = 0.0)
    ?(legacy_lifecycle = false) () =
  {
    mode;
    workload;
    concurrency = 128;
    duration_ns = 20.0e6;
    io_mean_ns = 5.0e6;
    epoch_ns = 1.0e6;
    os_switch_ns = 5000.0;
    faults;
    seed = 0x5EEDL;
    churn;
    page_zero_ns;
    legacy_lifecycle;
    trace = Trace.null;
  }

type tenant_stat = {
  t_id : int;
  t_completed : int;
  t_failed : int;
  t_p50_ns : float;
  t_p95_ns : float;
  t_p99_ns : float;
}

type result = {
  completed : int;
  failed : int;
  watchdog_kills : int;
  collateral_aborts : int;
  recycles : int;
  pages_zeroed : int;
  throughput_rps : float;
  goodput_rps : float;
  availability : float;
  capacity_rps : float;
  context_switches : int;
  user_transitions : int;
  dtlb_misses : int;
  checksum : int64;
  simulated_ns : float;
  cpu_busy_ns : float;
  tenants : tenant_stat array;
}

type request = {
  id : int;
  proc : int;
  mutable inst : Runtime.instance;
  mutable ready_at : float;
  mutable act : Runtime.activation option;
  mutable seq : int; (* per-slot completion count, seeds the next request *)
  mutable started_at : float; (* sim time the current activation started *)
}

(* A server-class second-level dTLB (1536 entries, as on the paper's
   RaptorLake testbed) — large enough that ColorGuard's instances stay
   resident, which is exactly what process switching destroys. *)
let server_tlb =
  { Sfi_vmem.Tlb.entries = 1536; ways = 8; page_walk_levels = 4; walk_cycles_per_level = 5 }

let fresh_engines cfg m =
  match cfg.mode with
  | Multiprocess n ->
      if n < 1 then invalid_arg "Sim: process count must be >= 1";
      List.init n (fun _ ->
          let compiled = Codegen.compile (Codegen.default_config ()) m in
          Runtime.create_engine ~tlb:server_tlb compiled)
  | Colorguard ->
      let params =
        {
          Pool.num_slots = cfg.concurrency;
          max_memory_bytes = 4 * Units.mib;
          expected_slot_bytes = 4 * Units.mib;
          guard_bytes = 32 * Units.mib;
          pre_guard_enabled = false;
          num_pkeys_available = Sfi_vmem.Mpk.max_usable_keys;
          stripe_enabled = true;
        }
      in
      let layout =
        (* Degrade stripes -> guards rather than refusing to serve when the
           striped layout is rejected (key budget, overflow). *)
        match Pool.compute_with_fallback params with
        | Ok (l, _status) -> l
        | Error msg -> failwith ("Sim: pool layout: " ^ msg)
      in
      let compiled =
        Codegen.compile { (Codegen.default_config ()) with Codegen.colorguard = true } m
      in
      [ Runtime.create_engine ~tlb:server_tlb ~allocator:(Runtime.Pool layout) compiled ]

let run cfg =
  let m = Workloads.module_of cfg.workload in
  let engines = Array.of_list (fresh_engines cfg m) in
  let nprocs = Array.length engines in
  let rng = Prng.create ~seed:cfg.seed in
  let io_delay () =
    (* "The value of the delay is drawn from a Poisson distribution at
       5ms": delays of a Poisson arrival process, i.e. exponential with a
       5 ms mean — "to model typical network request patterns". *)
    Prng.exponential rng ~mean:cfg.io_mean_ns
  in
  let f = cfg.faults in
  let has_faults = f.trap_rate > 0.0 || f.runaway_rate > 0.0 in
  let requests =
    Array.init cfg.concurrency (fun id ->
        let proc = id mod nprocs in
        {
          id;
          proc;
          inst = Runtime.instantiate engines.(proc);
          ready_at = io_delay ();
          act = None;
          seq = 0;
          started_at = 0.0;
        })
  in
  (* Lifecycle cost model: instantiation / recycle work in OS pages, priced
     at [page_zero_ns] each (0.0 = free, the historical behavior). The CoW
     runtime pays the dirty pages its recycles actually dropped plus one
     privatized vmctx page per instantiate; [legacy_lifecycle] re-prices
     every instantiate as the pre-refactor runtime's O(min_pages) work — a
     whole-heap madvise plus a full data-segment rewrite. *)
  let heap_os_pages =
    match m.Sfi_wasm.Ast.memory with
    | Some mem ->
        mem.Sfi_wasm.Ast.min_pages * (Sfi_wasm.Ast.page_size / Sfi_vmem.Space.page_size)
    | None -> 0
  in
  let lifecycle_pages proc =
    let mt = Runtime.metrics engines.(proc) in
    let instantiates =
      mt.Runtime.m_instantiations_cold + mt.Runtime.m_instantiations_warm
    in
    if cfg.legacy_lifecycle then instantiates * 2 * heap_os_pages
    else mt.Runtime.m_pages_zeroed_on_recycle + instantiates
  in
  (* Startup instantiation is warm-up, not serving time: snapshot after the
     request array is built so only churn-driven lifecycle work is billed. *)
  let lifecycle_prev = Array.init nprocs lifecycle_pages in
  let cost = Machine.cost_model (Runtime.machine engines.(0)) in
  let cycles_of_ns ns = Cost.cycles_of_ns cost ns in
  let ns_of_cycles c = Cost.ns_of_cycles cost c in
  let epoch_fuel = cycles_of_ns cfg.epoch_ns in
  let deadline_fuel = if has_faults then Some (f.deadline_epochs * epoch_fuel) else None in
  let clock = ref 0.0 in
  let busy = ref 0.0 in
  (* Request spans run on the simulated clock, one trace track per request
     slot (= tenant), so a Perfetto load shows each tenant's activations as
     nested bars over sim time. *)
  Trace.set_clock cfg.trace (fun () -> int_of_float !clock);
  let t_completed = Array.make cfg.concurrency 0 in
  let t_failed = Array.make cfg.concurrency 0 in
  let t_lat = Array.make cfg.concurrency [] in
  let completed = ref 0 in
  let failed = ref 0 in
  let watchdog_kills = ref 0 in
  let collateral = ref 0 in
  let recycles = ref 0 in
  let checksum = ref 0L in
  let context_switches = ref 0 in
  let current_proc = ref 0 in
  let slice_start = ref 0.0 in
  let engine_cycles = Array.make nprocs 0 in
  (* Advance the global clock by the cycles an engine just spent. *)
  let charge proc =
    let c = (Machine.counters (Runtime.machine engines.(proc))).Machine.cycles in
    let delta = ns_of_cycles (c - engine_cycles.(proc)) in
    clock := !clock +. delta;
    busy := !busy +. delta;
    engine_cycles.(proc) <- c;
    if cfg.page_zero_ns > 0.0 then begin
      let w = lifecycle_pages proc in
      let dw = w - lifecycle_prev.(proc) in
      if dw > 0 then begin
        let ns = float_of_int dw *. cfg.page_zero_ns in
        clock := !clock +. ns;
        busy := !busy +. ns
      end;
      lifecycle_prev.(proc) <- w
    end
  in
  (* Which handler serves this request: the per-request fault model draws
     a misbehaving one with the configured probabilities. *)
  let draw_entry () =
    if not has_faults then "handle"
    else begin
      let x = Prng.float rng 1.0 in
      if x < f.trap_rate then "misbehave_trap"
      else if x < f.trap_rate +. f.runaway_rate then "misbehave_spin"
      else "handle"
    end
  in
  (* Crash recovery: the request's instance is dead; get a fresh slot via
     the bounded retry queue. Returns false while the request must wait. *)
  let ensure_instance r =
    if Runtime.live r.inst then true
    else begin
      match Runtime.instantiate_queued engines.(r.proc) ~ticket:r.id with
      | `Ready inst ->
          incr recycles;
          r.inst <- inst;
          true
      | `Wait | `Rejected ->
          r.ready_at <- !clock +. cfg.epoch_ns;
          false
    end
  in
  (* Blast radius of a crash. Under multiprocess scaling a trap is a process
     death: every co-resident instance dies and its in-flight request is
     aborted. Under ColorGuard only the faulting instance is torn down. *)
  let crash_process proc ~except =
    Array.iter
      (fun r2 ->
        if r2.proc = proc && r2.id <> except then begin
          if r2.act <> None then begin
            incr collateral;
            t_failed.(r2.id) <- t_failed.(r2.id) + 1;
            Trace.request_end cfg.trace ~tenant:r2.id ~ok:false;
            r2.act <- None
          end;
          if Runtime.live r2.inst then Runtime.kill r2.inst;
          r2.ready_at <- !clock +. f.respawn_ns
        end)
      requests;
    clock := !clock +. f.respawn_ns;
    busy := !busy +. f.respawn_ns
  in
  let fail_request r ~is_crash =
    incr failed;
    t_failed.(r.id) <- t_failed.(r.id) + 1;
    Trace.request_end cfg.trace ~tenant:r.id ~ok:false;
    r.act <- None;
    r.seq <- r.seq + 1;
    (match cfg.mode with
    | Multiprocess _ when is_crash -> crash_process r.proc ~except:r.id
    | _ -> ());
    r.ready_at <- !clock +. io_delay ()
  in
  let run_request r =
    if ensure_instance r then begin
      let completed_now = ref false in
      let act =
        match r.act with
        | Some a -> a
        | None ->
            let seed = Int64.of_int (1 + r.id + (r.seq * 8191)) in
            let a = Runtime.start_call ?deadline_fuel r.inst (draw_entry ()) [ seed ] in
            r.act <- Some a;
            r.started_at <- !clock;
            Trace.request_begin cfg.trace ~tenant:r.id;
            a
      in
      (match Runtime.step act ~fuel:epoch_fuel with
      | `Done v ->
          incr completed;
          checksum := Int64.add !checksum (Int64.logand v 0xFFFFFFFFL);
          completed_now := true;
          r.act <- None;
          r.seq <- r.seq + 1;
          (* High-churn mode: every request runs on a fresh instance, the
             §6.4.3 FaaS pattern. Release recycles the slot (dirty pages
             revert to the image); the next request re-instantiates. *)
          if cfg.churn then Runtime.release r.inst;
          r.ready_at <- !clock +. io_delay ()
      | `Trapped _ ->
          (* The sandbox crashed; Runtime.step already killed the instance
             and recycled its slot. The request failed — count it, never
             abort the simulation. *)
          fail_request r ~is_crash:true
      | `Fault Runtime.Fuel_exhausted ->
          (* Watchdog kill: runaway loop exceeded its deadline. *)
          incr watchdog_kills;
          fail_request r ~is_crash:false
      | `Fault _ ->
          (* Instance died under us (e.g. collateral of a neighbour's
             crash); retry on a fresh instance. *)
          fail_request r ~is_crash:false
      | `More -> () (* preempted; stays ready *));
      charge r.proc;
      (* Latency is measured after [charge] so it includes the execution
         time the engine just billed; the failure paths above keep their
         pre-charge timestamps (ready_at, respawn) unchanged. *)
      if !completed_now then begin
        t_completed.(r.id) <- t_completed.(r.id) + 1;
        t_lat.(r.id) <- (!clock -. r.started_at) :: t_lat.(r.id);
        Trace.request_end cfg.trace ~tenant:r.id ~ok:true
      end
    end
  in
  let ready_in proc =
    let found = ref None in
    Array.iter
      (fun r ->
        if !found = None && (proc < 0 || r.proc = proc) && r.ready_at <= !clock then
          found := Some r)
      requests;
    !found
  in
  let next_ready_time () =
    Array.fold_left (fun acc r -> min acc r.ready_at) infinity requests
  in
  let switch_to proc =
    incr context_switches;
    clock := !clock +. cfg.os_switch_ns;
    busy := !busy +. cfg.os_switch_ns;
    (* The incoming process finds the shared TLB polluted by whoever ran in
       between: model as a flush of its TLB state. *)
    Machine.flush_tlb (Runtime.machine engines.(proc));
    current_proc := proc;
    slice_start := !clock
  in
  while !clock < cfg.duration_ns do
    match cfg.mode with
    | Colorguard -> (
        match ready_in (-1) with
        | Some r -> run_request r
        | None -> clock := max !clock (min (next_ready_time ()) cfg.duration_ns))
    | Multiprocess _ -> (
        (* A timeslice expires: move on if someone else has work. *)
        let other_with_work () =
          let found = ref None in
          for k = 1 to nprocs - 1 do
            let p = (!current_proc + k) mod nprocs in
            if !found = None && ready_in p <> None then found := Some p
          done;
          !found
        in
        if !clock -. !slice_start >= cfg.epoch_ns then begin
          match other_with_work () with
          | Some p -> switch_to p
          | None -> slice_start := !clock
        end;
        match ready_in !current_proc with
        | Some r -> run_request r
        | None -> (
            match other_with_work () with
            | Some p -> switch_to p
            | None -> clock := max !clock (min (next_ready_time ()) cfg.duration_ns)))
  done;
  (* Balance the trace: activations still in flight when the simulated
     duration expires get their span closed (not counted as failures). *)
  Array.iter
    (fun r -> if r.act <> None then Trace.request_end cfg.trace ~tenant:r.id ~ok:false)
    requests;
  let tenants =
    Array.init cfg.concurrency (fun id ->
        let lat = t_lat.(id) in
        let pct p = if lat = [] then 0.0 else Stats.percentile lat p in
        {
          t_id = id;
          t_completed = t_completed.(id);
          t_failed = t_failed.(id);
          t_p50_ns = pct 50.0;
          t_p95_ns = pct 95.0;
          t_p99_ns = pct 99.0;
        })
  in
  let user_transitions =
    Array.fold_left (fun acc e -> acc + Runtime.transitions e) 0 engines
  in
  let dtlb_misses =
    Array.fold_left (fun acc e -> acc + Machine.dtlb_misses (Runtime.machine e)) 0 engines
  in
  let attempts = !completed + !failed + !collateral in
  let pages_zeroed =
    Array.fold_left
      (fun acc e -> acc + (Runtime.metrics e).Runtime.m_pages_zeroed_on_recycle)
      0 engines
  in
  {
    completed = !completed;
    failed = !failed;
    watchdog_kills = !watchdog_kills;
    collateral_aborts = !collateral;
    recycles = !recycles;
    pages_zeroed;
    throughput_rps = float_of_int attempts /. (!clock /. 1.0e9);
    goodput_rps = float_of_int !completed /. (!clock /. 1.0e9);
    availability =
      (if attempts = 0 then 1.0 else float_of_int !completed /. float_of_int attempts);
    capacity_rps = float_of_int !completed /. (!busy /. 1.0e9);
    context_switches = !context_switches;
    user_transitions;
    dtlb_misses;
    checksum = !checksum;
    simulated_ns = !clock;
    cpu_busy_ns = !busy;
    tenants;
  }

let throughput_gain ~workload ~processes cfg =
  (* Capacity per core-second: below CPU saturation both strategies finish
     the same IO-bound load, but multiprocess scaling burns core time on
     process switches and cold TLBs — time that at scale would have served
     additional requests. This is the per-core efficiency Figure 6 reports. *)
  let cg = run { cfg with mode = Colorguard; workload } in
  let mp = run { cfg with mode = Multiprocess processes; workload } in
  (cg.capacity_rps -. mp.capacity_rps) /. mp.capacity_rps *. 100.0

let degraded_mode ~workload ~processes ~trap_rate cfg =
  (* The Fig. 6 comparison re-run with misbehaving tenants: same load, same
     fault rate, two isolation strategies. ColorGuard pays one instance per
     crash; multiprocess loses every co-resident in-flight request. *)
  let faults = { cfg.faults with trap_rate } in
  let cg = run { cfg with mode = Colorguard; workload; faults } in
  let mp = run { cfg with mode = Multiprocess processes; workload; faults } in
  (cg, mp)
