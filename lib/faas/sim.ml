module Machine = Sfi_machine.Machine
module Cost = Sfi_machine.Cost
module Runtime = Sfi_runtime.Runtime
module Codegen = Sfi_core.Codegen
module Strategy = Sfi_core.Strategy
module Pool = Sfi_core.Pool
module Prng = Sfi_util.Prng
module Units = Sfi_util.Units
module Stats = Sfi_util.Stats
module Hist = Sfi_util.Hist
module Trace = Sfi_trace.Trace
module Flight = Sfi_trace.Flight

type mode = Colorguard | Multiprocess of int

type fault_model = {
  trap_rate : float;
  runaway_rate : float;
  deadline_epochs : int;
  respawn_ns : float;
}

let no_faults =
  { trap_rate = 0.0; runaway_rate = 0.0; deadline_epochs = 8; respawn_ns = 500_000.0 }

(* Overload-resilience policy: adaptive admission over a slot pool that
   may be smaller than the closed-loop population, per-tenant circuit
   breakers, a graceful-degradation ladder, and deliberately misbehaving
   tenants to aim them at. All off by default ([no_overload]), in which
   case the sim behaves exactly as before. *)
type overload = {
  pool_slots : int option;
  admission : Sfi_runtime.Runtime.admission_config option;
  breaker : Breaker.config option;
  degradation : bool;
  hedged_retries : bool;
  request_deadline_ns : float option;
  crash_tenants : int list;
  runaway_tenants : int list;
  low_priority : int -> bool;
  slo : Slo.config option;
}

let no_overload =
  {
    pool_slots = None;
    admission = None;
    breaker = None;
    degradation = false;
    hedged_retries = false;
    request_deadline_ns = None;
    crash_tenants = [];
    runaway_tenants = [];
    low_priority = (fun _ -> false);
    slo = None;
  }

(* Chaos perturbations applied to the live run on a schedule the caller
   supplies (see {!Sfi_inject.Chaos} for the seeded planner). *)
type chaos_action =
  | Chaos_kill
  | Chaos_latency of { factor : float; window_ns : float }
  | Chaos_instantiate_fail of int

type chaos_event = { at_ns : float; action : chaos_action }

type chaos_report = {
  cr_index : int;
  cr_at_ns : float;
  cr_action : chaos_action;
  cr_victim : int;
  cr_failed : int array;
}

type config = {
  mode : mode;
  workload : Workloads.t;
  concurrency : int;
  duration_ns : float;
  io_mean_ns : float;
  epoch_ns : float;
  os_switch_ns : float;
  faults : fault_model;
  seed : int64;
  churn : bool;
  page_zero_ns : float;
  legacy_lifecycle : bool;
  trace : Trace.t;
  flight : Flight.t option;
      (* Fault flight recorder. When armed it taps the trace sink (or
         becomes the sink for untraced runs) and freezes a post-mortem
         bundle on faults, breaker trips and chaos perturbations. Pure
         observer: arming it never changes simulation state. *)
  overload : overload;
  engine : Machine.engine_kind option;
  chaos : chaos_event list;
  on_perturbation : (chaos_report -> unit) option;
  fair_scheduling : bool;
  arrivals : Workloads.arrival array option;
      (* [None] = the historical closed loop: [concurrency] clients that
         re-issue after an exponential think time. [Some schedule] = open
         loop: one slot per tenant ([concurrency] = tenant count) serving
         that tenant's scheduled arrival times — the trace-shaped load
         the sharded serving layer generates. A tenant whose previous
         request is still in service when the next arrival fires serves
         it late (e2e latency then includes the queueing delay); shed or
         failed requests are dropped and the tenant moves on to its next
         scheduled arrival. *)
}

let default_config ?(mode = Colorguard) ?(workload = Workloads.Hash_balance)
    ?(faults = no_faults) ?(churn = false) ?(page_zero_ns = 0.0)
    ?(legacy_lifecycle = false) ?(overload = no_overload) ?engine ?(chaos = [])
    ?on_perturbation ?(fair_scheduling = false) ?flight () =
  {
    mode;
    workload;
    concurrency = 128;
    duration_ns = 20.0e6;
    io_mean_ns = 5.0e6;
    epoch_ns = 1.0e6;
    os_switch_ns = 5000.0;
    faults;
    seed = 0x5EEDL;
    churn;
    page_zero_ns;
    legacy_lifecycle;
    trace = Trace.null;
    flight;
    overload;
    engine;
    chaos;
    on_perturbation;
    fair_scheduling;
    arrivals = None;
  }

type tenant_stat = {
  t_id : int;
  t_completed : int;
  t_failed : int;
  t_shed : int;
  t_breaker_opens : int;
  t_breaker_state : string;
  t_p50_ns : float;
  t_p95_ns : float;
  t_p99_ns : float;
  t_p99_e2e_ns : float;
  t_sb_share : float;
  t_burn : float;
  t_lat_hist : Hist.t;
  t_e2e_hist : Hist.t;
}

type result = {
  completed : int;
  failed : int;
  watchdog_kills : int;
  collateral_aborts : int;
  recycles : int;
  pages_zeroed : int;
  admitted : int;
  shed_sojourn : int;
  shed_rate_limited : int;
  shed_queue_full : int;
  shed_priority : int;
  deadline_misses : int;
  breaker_opens : int;
  breaker_fast_fails : int;
  breakers_open_at_end : int;
  degrade_steps : int;
  max_degrade_level : int;
  chaos_applied : int;
  chaos_kills : int;
  slo_burn_starts : int;
  slo_burn_stops : int;
  slo_burning_at_end : int;
  throughput_rps : float;
  goodput_rps : float;
  availability : float;
  capacity_rps : float;
  context_switches : int;
  user_transitions : int;
  dtlb_misses : int;
  checksum : int64;
  simulated_ns : float;
  cpu_busy_ns : float;
  tenants : tenant_stat array;
}

type request = {
  id : int;
  proc : int;
  mutable inst : Runtime.instance option;
  mutable had_inst : bool; (* ever held a slot (recycle accounting) *)
  mutable ready_at : float;
  mutable arrived_at : float; (* when the current logical request arrived *)
  mutable parked : bool; (* ticket parked in the admission queue *)
  mutable bk_admitted : bool; (* breaker already admitted this request *)
  mutable act : Runtime.activation option;
  mutable seq : int; (* per-slot completion count, seeds the next request *)
  mutable started_at : float; (* sim time the current activation started *)
}

(* A server-class second-level dTLB (1536 entries, as on the paper's
   RaptorLake testbed) — large enough that ColorGuard's instances stay
   resident, which is exactly what process switching destroys. *)
let server_tlb =
  { Sfi_vmem.Tlb.entries = 1536; ways = 8; page_walk_levels = 4; walk_cycles_per_level = 5 }

let fresh_engines cfg m =
  match cfg.mode with
  | Multiprocess n ->
      if n < 1 then invalid_arg "Sim: process count must be >= 1";
      List.init n (fun _ ->
          let compiled = Codegen.compile (Codegen.default_config ()) m in
          Runtime.create_engine ~tlb:server_tlb ?engine:cfg.engine compiled)
  | Colorguard ->
      let params =
        {
          Pool.num_slots =
            (match cfg.overload.pool_slots with
            | Some n ->
                if n < 1 then invalid_arg "Sim: pool_slots must be >= 1";
                n
            | None -> cfg.concurrency);
          max_memory_bytes = 4 * Units.mib;
          expected_slot_bytes = 4 * Units.mib;
          guard_bytes = 32 * Units.mib;
          pre_guard_enabled = false;
          num_pkeys_available = Sfi_vmem.Mpk.max_usable_keys;
          stripe_enabled = true;
        }
      in
      let layout =
        (* Degrade stripes -> guards rather than refusing to serve when the
           striped layout is rejected (key budget, overflow). *)
        match Pool.compute_with_fallback params with
        | Ok (l, _status) -> l
        | Error msg -> failwith ("Sim: pool layout: " ^ msg)
      in
      let compiled =
        Codegen.compile { (Codegen.default_config ()) with Codegen.colorguard = true } m
      in
      [
        Runtime.create_engine ~tlb:server_tlb ~allocator:(Runtime.Pool layout)
          ?engine:cfg.engine compiled;
      ]

let run cfg =
  let m = Workloads.module_of cfg.workload in
  let engines = Array.of_list (fresh_engines cfg m) in
  let nprocs = Array.length engines in
  let rng = Prng.create ~seed:cfg.seed in
  let ov = cfg.overload in
  (* Effective trace sink: the flight recorder taps the primary ring (or
     stands in for it on untraced runs). Everything below emits into
     [trace], never [cfg.trace] directly. *)
  let trace =
    match cfg.flight with
    | Some fr -> Flight.tap fr cfg.trace
    | None -> cfg.trace
  in
  (* Chaos draws its own PRNG stream so perturbation policy (victim
     choice, respawn delays) never perturbs the workload's stream. The
     stream is derived with [Prng.split] — an xor of the seed (the old
     derivation) leaves the child SplitMix64 state on the same
     golden-gamma lattice as the parent and the streams correlate, which
     breaks chaos determinism fingerprints once sharding multiplies the
     number of parallel consumers of one root seed. *)
  let chaos_rng = Prng.split rng 0 in
  let latency_until = ref 0.0 in
  let latency_factor = ref 1.0 in
  let io_delay () =
    (* "The value of the delay is drawn from a Poisson distribution at
       5ms": delays of a Poisson arrival process, i.e. exponential with a
       5 ms mean — "to model typical network request patterns". *)
    let d = Prng.exponential rng ~mean:cfg.io_mean_ns in
    if !latency_factor > 1.0 then d *. !latency_factor else d
  in
  Array.iter (fun e -> Runtime.set_admission e ov.admission) engines;
  if ov.admission <> None then
    (* Admission/breaker decisions are trace-worthy: route the engines'
       event streams into the sim's sink so Perfetto shows shed/grant
       markers on the tenant lanes. Legacy runs keep engine tracing off. *)
    Array.iter (fun e -> Runtime.set_trace e trace) engines;
  let breakers =
    match ov.breaker with
    | None -> None
    | Some bc ->
        Some
          (Array.init cfg.concurrency (fun id ->
               (* Per-tenant jitter streams, split from the root seed
                  (index 0 is the chaos stream). *)
               Breaker.create ~seed:(Prng.split_seed ~seed:cfg.seed (id + 1)) bc))
  in
  let f = cfg.faults in
  let has_faults = f.trap_rate > 0.0 || f.runaway_rate > 0.0 in
  (* With a slot pool smaller than the closed-loop population, slots are a
     contended resource acquired through admission; otherwise every
     request gets its instance up front (the historical behavior). *)
  let prewarm =
    match ov.pool_slots with None -> true | Some n -> n >= cfg.concurrency
  in
  (* Open-loop arrival schedules, one sorted queue per tenant. *)
  let open_loop = cfg.arrivals <> None in
  let arr_times =
    match cfg.arrivals with
    | None -> [||]
    | Some arr ->
        let per = Array.make cfg.concurrency [] in
        Array.iter
          (fun a ->
            if a.Workloads.tenant < 0 || a.Workloads.tenant >= cfg.concurrency
            then invalid_arg "Sim: arrival tenant out of range";
            per.(a.Workloads.tenant) <- a.Workloads.at_ns :: per.(a.Workloads.tenant))
          arr;
        Array.map (fun l -> Array.of_list (List.sort compare l)) per
  in
  let arr_next = Array.make (max 1 cfg.concurrency) 0 in
  let initial_arrival id =
    let q = arr_times.(id) in
    if Array.length q = 0 then infinity
    else begin
      arr_next.(id) <- 1;
      q.(0)
    end
  in
  let requests =
    Array.init cfg.concurrency (fun id ->
        let proc = id mod nprocs in
        let ready_at = if open_loop then initial_arrival id else io_delay () in
        {
          id;
          proc;
          inst = (if prewarm then Some (Runtime.instantiate engines.(proc)) else None);
          had_inst = prewarm;
          ready_at;
          arrived_at = ready_at;
          parked = false;
          bk_admitted = false;
          act = None;
          seq = 0;
          started_at = 0.0;
        })
  in
  (* Lifecycle cost model: instantiation / recycle work in OS pages, priced
     at [page_zero_ns] each (0.0 = free, the historical behavior). The CoW
     runtime pays the dirty pages its recycles actually dropped plus one
     privatized vmctx page per instantiate; [legacy_lifecycle] re-prices
     every instantiate as the pre-refactor runtime's O(min_pages) work — a
     whole-heap madvise plus a full data-segment rewrite. *)
  let heap_os_pages =
    match m.Sfi_wasm.Ast.memory with
    | Some mem ->
        mem.Sfi_wasm.Ast.min_pages * (Sfi_wasm.Ast.page_size / Sfi_vmem.Space.page_size)
    | None -> 0
  in
  let lifecycle_pages proc =
    let mt = Runtime.metrics engines.(proc) in
    let instantiates =
      mt.Runtime.m_instantiations_cold + mt.Runtime.m_instantiations_warm
    in
    if cfg.legacy_lifecycle then instantiates * 2 * heap_os_pages
    else mt.Runtime.m_pages_zeroed_on_recycle + instantiates
  in
  (* Startup instantiation is warm-up, not serving time: snapshot after the
     request array is built so only churn-driven lifecycle work is billed. *)
  let lifecycle_prev = Array.init nprocs lifecycle_pages in
  let cost = Machine.cost_model (Runtime.machine engines.(0)) in
  let cycles_of_ns ns = Cost.cycles_of_ns cost ns in
  let ns_of_cycles c = Cost.ns_of_cycles cost c in
  let epoch_fuel = cycles_of_ns cfg.epoch_ns in
  (* The watchdog deadline bounds every request, not only fault-injected
     runs: a runaway guest must be stopped even when the fault model is
     off (e.g. a chaos run or a deliberately misbehaving tenant). *)
  let deadline_fuel = Some (f.deadline_epochs * epoch_fuel) in
  let clock = ref 0.0 in
  let busy = ref 0.0 in
  (* Request spans run on the simulated clock, one trace track per request
     slot (= tenant), so a Perfetto load shows each tenant's activations as
     nested bars over sim time. *)
  Trace.set_clock trace (fun () -> int_of_float !clock);
  (* Move a slot on to its tenant's next logical request: the next
     scheduled arrival in open-loop mode (possibly already in the past —
     then it has been queueing and is immediately ready, with its e2e
     latency including the wait), or a fresh think-time arrival in the
     closed loop. *)
  let next_arrival r =
    let q = arr_times.(r.id) in
    let i = arr_next.(r.id) in
    if i >= Array.length q then begin
      r.ready_at <- infinity;
      r.arrived_at <- infinity
    end
    else begin
      arr_next.(r.id) <- i + 1;
      r.ready_at <- q.(i);
      r.arrived_at <- q.(i)
    end
  in
  let rearm r =
    if open_loop then next_arrival r
    else begin
      r.ready_at <- !clock +. io_delay ();
      r.arrived_at <- r.ready_at
    end
  in
  let t_completed = Array.make cfg.concurrency 0 in
  let t_failed = Array.make cfg.concurrency 0 in
  let t_shed = Array.make cfg.concurrency 0 in
  let t_breaker_opens = Array.make cfg.concurrency 0 in
  let t_lat = Array.init cfg.concurrency (fun _ -> Hist.create ()) in
  let t_e2e = Array.init cfg.concurrency (fun _ -> Hist.create ()) in
  let t_sb = Array.make cfg.concurrency 0 in
  let t_instr = Array.make cfg.concurrency 0 in
  let completed = ref 0 in
  let failed = ref 0 in
  let watchdog_kills = ref 0 in
  let collateral = ref 0 in
  let recycles = ref 0 in
  let shed_sojourn = ref 0 in
  let shed_rate_limited = ref 0 in
  let shed_queue_full = ref 0 in
  let shed_priority = ref 0 in
  let deadline_misses = ref 0 in
  let breaker_opens = ref 0 in
  let breaker_fast_fails = ref 0 in
  let chaos_applied = ref 0 in
  let chaos_kills = ref 0 in
  let inst_fail_budget = ref 0 in
  let checksum = ref 0L in
  let context_switches = ref 0 in
  let current_proc = ref 0 in
  let slice_start = ref 0.0 in
  (* Hoisted out of the degradation section: the flight recorder's
     counter snapshot wants the current ladder level too. *)
  let ladder_level = ref 0 in
  let engine_cycles = Array.make nprocs 0 in
  (* Advance the global clock by the cycles an engine just spent. *)
  let charge proc =
    let c = (Machine.counters (Runtime.machine engines.(proc))).Machine.cycles in
    let delta = ns_of_cycles (c - engine_cycles.(proc)) in
    clock := !clock +. delta;
    busy := !busy +. delta;
    engine_cycles.(proc) <- c;
    if cfg.page_zero_ns > 0.0 then begin
      let w = lifecycle_pages proc in
      let dw = w - lifecycle_prev.(proc) in
      if dw > 0 then begin
        let ns = float_of_int dw *. cfg.page_zero_ns in
        clock := !clock +. ns;
        busy := !busy +. ns
      end;
      lifecycle_prev.(proc) <- w
    end
  in
  (* --- flight recorder: post-mortem freezes --- *)
  let flight_counters () =
    let fold f = Array.fold_left (fun acc e -> acc + f e) 0 engines in
    let mach f = fold (fun e -> f (Runtime.machine e)) in
    [
      ("clock_ns", !clock);
      ("completed", float_of_int !completed);
      ("failed", float_of_int !failed);
      ("watchdog_kills", float_of_int !watchdog_kills);
      ("collateral_aborts", float_of_int !collateral);
      ("recycles", float_of_int !recycles);
      ("shed_sojourn", float_of_int !shed_sojourn);
      ("shed_rate_limited", float_of_int !shed_rate_limited);
      ("shed_queue_full", float_of_int !shed_queue_full);
      ("shed_priority", float_of_int !shed_priority);
      ("breaker_opens", float_of_int !breaker_opens);
      ("breaker_fast_fails", float_of_int !breaker_fast_fails);
      ( "breakers_open",
        match breakers with
        | None -> 0.0
        | Some arr ->
            float_of_int
              (Array.fold_left
                 (fun acc b -> if Breaker.state b <> Breaker.Closed then acc + 1 else acc)
                 0 arr) );
      ("admission_waiting", float_of_int (fold Runtime.waiting));
      ("ladder_level", float_of_int !ladder_level);
      ("chaos_applied", float_of_int !chaos_applied);
      ("machine_cycles", float_of_int (mach (fun m -> (Machine.counters m).Machine.cycles)));
      ( "machine_instructions",
        float_of_int (mach (fun m -> (Machine.counters m).Machine.instructions)) );
      ("dtlb_misses", float_of_int (mach Machine.dtlb_misses));
      ("superblocks_retired", float_of_int (mach Machine.superblock_retired));
      ("transitions", float_of_int (fold Runtime.transitions));
    ]
  in
  let freeze_flight reason =
    match cfg.flight with
    | None -> ()
    | Some fr ->
        Flight.freeze fr ~reason ~at_ns:(int_of_float !clock)
          ~counters:(flight_counters ())
  in
  (* --- SLO burn-rate tracking --- *)
  let slo_burn_starts = ref 0 in
  let slo_burn_stops = ref 0 in
  let burning = ref 0 in
  let slos =
    match ov.slo with
    | None -> None
    | Some sc -> Some (sc, Array.init cfg.concurrency (fun _ -> Slo.create sc))
  in
  (* Edge-trigger a tenant's alerts: count transitions, track how many
     tenants are burning their fast window (the ladder's SLO-aware
     trigger), and emit the slo.burn_start/stop markers. *)
  let slo_transitions id s =
    List.iter
      (fun tr ->
        let burn_milli = int_of_float (tr.Slo.tr_burn *. 1000.0) in
        let window = match tr.Slo.tr_window with Slo.Fast -> 0 | Slo.Slow -> 1 in
        if tr.Slo.tr_started then begin
          incr slo_burn_starts;
          if tr.Slo.tr_window = Slo.Fast then incr burning;
          Trace.slo_burn_start trace ~tenant:id ~burn_milli ~window
        end
        else begin
          incr slo_burn_stops;
          if tr.Slo.tr_window = Slo.Fast then decr burning;
          Trace.slo_burn_stop trace ~tenant:id ~burn_milli ~window
        end)
      (Slo.evaluate s ~now:!clock)
  in
  let slo_record id ~good =
    match slos with
    | None -> ()
    | Some (_, arr) ->
        let s = arr.(id) in
        Slo.record s ~now:!clock ~good;
        slo_transitions id s
  in
  let slo_good lat =
    match slos with Some (sc, _) -> lat <= sc.Slo.latency_ns | None -> true
  in
  (* Which handler serves this request: deliberately misbehaving tenants
     (overload policy) crash-loop or spin on every request; otherwise the
     per-request fault model draws one with the configured probabilities. *)
  let draw_entry id =
    if List.mem id ov.crash_tenants then "misbehave_trap"
    else if List.mem id ov.runaway_tenants then "misbehave_spin"
    else if not has_faults then "handle"
    else begin
      let x = Prng.float rng 1.0 in
      if x < f.trap_rate then "misbehave_trap"
      else if x < f.trap_rate +. f.runaway_rate then "misbehave_spin"
      else "handle"
    end
  in
  (* --- circuit breakers: transition tracking + trace emission --- *)
  let note_breaker_transition id b prev =
    let st = Breaker.state b in
    if st <> prev then
      match st with
      | Breaker.Open ->
          incr breaker_opens;
          t_breaker_opens.(id) <- t_breaker_opens.(id) + 1;
          Trace.breaker_open trace ~tenant:id
            ~backoff:(int_of_float (Breaker.retry_at b -. !clock));
          freeze_flight "breaker.open"
      | Breaker.Half_open -> Trace.breaker_half_open trace ~tenant:id
      | Breaker.Closed -> Trace.breaker_close trace ~tenant:id
  in
  let with_breaker id fn =
    match breakers with
    | None -> ()
    | Some arr ->
        let b = arr.(id) in
        let prev = Breaker.state b in
        fn b;
        note_breaker_transition id b prev
  in
  (* May tenant [id]'s next request proceed? An open breaker fast-fails it
     without touching the pool; the refusal parks the request until the
     breaker's next probe time. Fast-fails are not serving failures — the
     request never entered service — so they are counted separately. The
     breaker is consulted once per logical request ([bk_admitted]): a
     request it admitted that then waits on admission or a transient
     instantiate failure is not re-asked — in particular a half-open
     probe delayed that way must not fast-fail its own tenant forever. *)
  let breaker_allow r =
    match breakers with
    | None -> true
    | Some arr ->
        let b = arr.(r.id) in
        let prev = Breaker.state b in
        let ok = Breaker.allow b ~now:!clock in
        note_breaker_transition r.id b prev;
        if ok then r.bk_admitted <- true
        else begin
          incr breaker_fast_fails;
          r.ready_at <-
            (match Breaker.state b with
            | Breaker.Open -> Float.max (Breaker.retry_at b) (!clock +. cfg.epoch_ns)
            | _ -> !clock +. cfg.epoch_ns)
        end;
        ok
  in
  (* --- graceful-degradation ladder ([ladder_level] hoisted above) --- *)
  let degrade_steps = ref 0 in
  let max_degrade_level = ref 0 in
  let hedged = ref ov.hedged_retries in
  let window_len = 4.0 *. cfg.epoch_ns in
  let window_end = ref window_len in
  let window_sheds = ref 0 in
  let over_windows = ref 0 in
  let calm_windows = ref 0 in
  let apply_level lvl =
    ladder_level := lvl;
    max_degrade_level := max !max_degrade_level lvl;
    incr degrade_steps;
    (* L1: tighten admission and keep recycle headroom. L2: + stop hedging
       failed requests. L3 additionally sheds low-priority arrivals (in
       [run_request]). Stepping down unwinds in the same order. *)
    let pressure = if lvl >= 1 then 0.5 else 1.0 in
    Array.iter
      (fun e ->
        Runtime.set_admission_pressure e pressure;
        let slots = Runtime.num_slots e in
        let reserve = if lvl >= 1 then min (slots - 1) (max 1 (slots / 8)) else 0 in
        Runtime.set_slot_reserve e reserve)
      engines;
    hedged := ov.hedged_retries && lvl < 2;
    Trace.degrade_step trace ~level:lvl
  in
  let ladder_tick () =
    if ov.degradation && !clock >= !window_end then begin
      (* Re-evaluate burn-rate alerts at every window boundary so alerts
         also clear while a tenant is idle (its windows slide empty). *)
      (match slos with
      | Some (_, arr) -> Array.iteri slo_transitions arr
      | None -> ());
      (* SLO-aware trigger: shedding starts when any tenant is burning
         its fast error-budget window, not only on queue sojourn. *)
      let overloaded = !window_sheds > 0 || !burning > 0 in
      window_sheds := 0;
      while !window_end <= !clock do
        window_end := !window_end +. window_len
      done;
      if overloaded then begin
        incr over_windows;
        calm_windows := 0
      end
      else begin
        incr calm_windows;
        over_windows := 0
      end;
      if !over_windows >= 2 && !ladder_level < 3 then begin
        over_windows := 0;
        apply_level (!ladder_level + 1)
      end
      else if !calm_windows >= 2 && !ladder_level > 0 then begin
        calm_windows := 0;
        apply_level (!ladder_level - 1)
      end
    end
  in
  (* The client behind a shed ticket gives up and issues a fresh request
     later; a half-open breaker whose probe was shed re-opens. *)
  let note_shed r reason =
    t_shed.(r.id) <- t_shed.(r.id) + 1;
    slo_record r.id ~good:false;
    (match reason with
    | Runtime.Shed_sojourn ->
        incr shed_sojourn;
        incr window_sheds
    | Runtime.Shed_rate_limited -> incr shed_rate_limited
    | Runtime.Shed_queue_full ->
        incr shed_queue_full;
        incr window_sheds);
    (match breakers with
    | Some arr when Breaker.state arr.(r.id) = Breaker.Half_open ->
        with_breaker r.id (Breaker.on_failure ~now:!clock)
    | _ -> ());
    r.parked <- false;
    r.bk_admitted <- false;
    rearm r
  in
  (* Crash recovery / slot acquisition: get a slot through admission (the
     CoDel path when armed, the bounded FIFO retry queue otherwise).
     Returns false while the request must wait or was shed. *)
  let ensure_instance r =
    match r.inst with
    | Some i when Runtime.live i -> true
    | _ ->
        if !inst_fail_budget > 0 then begin
          (* Chaos: transient instantiate failure — behaves like a full
             pool; the request retries next epoch. *)
          decr inst_fail_budget;
          r.ready_at <- !clock +. cfg.epoch_ns;
          false
        end
        else begin
          match Runtime.admit engines.(r.proc) ~ticket:r.id ~tenant:r.id ~now:!clock with
          | `Ready inst ->
              if r.had_inst then incr recycles;
              r.had_inst <- true;
              r.parked <- false;
              r.inst <- Some inst;
              true
          | `Wait ->
              if ov.admission <> None then r.parked <- true;
              r.ready_at <- !clock +. cfg.epoch_ns;
              false
          | `Shed reason ->
              if ov.admission = None then begin
                (* Legacy FIFO reject: keep the historical epoch retry (and
                   its PRNG stream) byte-for-byte. *)
                r.ready_at <- !clock +. cfg.epoch_ns;
                false
              end
              else begin
                note_shed r reason;
                false
              end
        end
  in
  (* Blast radius of a crash. Under multiprocess scaling a trap is a process
     death: every co-resident instance dies and its in-flight request is
     aborted. Under ColorGuard only the faulting instance is torn down. *)
  let crash_process proc ~except =
    Array.iter
      (fun r2 ->
        if r2.proc = proc && r2.id <> except then begin
          if r2.act <> None then begin
            incr collateral;
            t_failed.(r2.id) <- t_failed.(r2.id) + 1;
            slo_record r2.id ~good:false;
            Trace.request_end trace ~tenant:r2.id ~ok:false;
            r2.act <- None
          end;
          (match r2.inst with
          | Some i when Runtime.live i -> Runtime.kill i
          | _ -> ());
          r2.ready_at <- !clock +. f.respawn_ns
        end)
      requests;
    clock := !clock +. f.respawn_ns;
    busy := !busy +. f.respawn_ns
  in
  let fail_request r ~is_crash =
    incr failed;
    t_failed.(r.id) <- t_failed.(r.id) + 1;
    slo_record r.id ~good:false;
    Trace.request_end trace ~tenant:r.id ~ok:false;
    with_breaker r.id (Breaker.on_failure ~now:!clock);
    freeze_flight "fault";
    r.act <- None;
    r.seq <- r.seq + 1;
    r.bk_admitted <- false;
    (match cfg.mode with
    | Multiprocess _ when is_crash -> crash_process r.proc ~except:r.id
    | _ -> ());
    (* Hedged retry (until the ladder downgrades it at L2): resubmit the
       failed request next epoch instead of after a full IO round-trip.
       Open loop: the failed request is dropped and the tenant moves on
       to its next scheduled arrival. *)
    if open_loop then next_arrival r
    else begin
      r.ready_at <- (if !hedged then !clock +. cfg.epoch_ns else !clock +. io_delay ());
      r.arrived_at <- r.ready_at
    end
  in
  let run_request r =
    if
      !ladder_level >= 3 && r.act = None && (not r.parked) && ov.low_priority r.id
    then begin
      (* L3: shed low-priority arrivals outright. Reason code 3 in the
         trace = priority shed (the runtime codes cover 0-2). *)
      incr shed_priority;
      t_shed.(r.id) <- t_shed.(r.id) + 1;
      slo_record r.id ~good:false;
      Trace.admission_shed trace ~tenant:r.id ~sojourn:0 ~reason:3;
      r.bk_admitted <- false;
      rearm r
    end
    else if r.act <> None || r.parked || r.bk_admitted || breaker_allow r then begin
      if ensure_instance r then begin
        let inst = match r.inst with Some i -> i | None -> assert false in
        let arrival = r.arrived_at in
        let completed_now = ref false in
        let act =
          match r.act with
          | Some a -> a
          | None ->
              let seed = Int64.of_int (1 + r.id + (r.seq * 8191)) in
              let a = Runtime.start_call ?deadline_fuel inst (draw_entry r.id) [ seed ] in
              r.act <- Some a;
              r.started_at <- !clock;
              Trace.request_begin trace ~tenant:r.id;
              a
        in
        (* Tenant-attributed superblock occupancy: the engine's counters are
           monotonic across requests, so per-slice deltas sum cleanly even
           when the instance is killed or recycled mid-request. *)
        let mach = Runtime.machine engines.(r.proc) in
        let sb0 = Machine.superblock_retired mach in
        let in0 = (Machine.counters mach).Machine.instructions in
        (match Runtime.step act ~fuel:epoch_fuel with
        | `Done v ->
            incr completed;
            checksum := Int64.add !checksum (Int64.logand v 0xFFFFFFFFL);
            completed_now := true;
            r.act <- None;
            r.seq <- r.seq + 1;
            (* High-churn mode: every request runs on a fresh instance, the
               §6.4.3 FaaS pattern. Release recycles the slot (dirty pages
               revert to the image); the next request re-instantiates. *)
            if cfg.churn then Runtime.release inst;
            r.bk_admitted <- false;
            rearm r
        | `Trapped _ ->
            (* The sandbox crashed; Runtime.step already killed the instance
               and recycled its slot. The request failed — count it, never
               abort the simulation. *)
            fail_request r ~is_crash:true
        | `Fault Runtime.Fuel_exhausted ->
            (* Watchdog kill: runaway loop exceeded its deadline. *)
            incr watchdog_kills;
            fail_request r ~is_crash:false
        | `Fault _ ->
            (* Instance died under us (e.g. collateral of a neighbour's
               crash); retry on a fresh instance. *)
            fail_request r ~is_crash:false
        | `More -> () (* preempted; stays ready *));
        t_sb.(r.id) <- t_sb.(r.id) + (Machine.superblock_retired mach - sb0);
        t_instr.(r.id) <-
          t_instr.(r.id) + ((Machine.counters mach).Machine.instructions - in0);
        charge r.proc;
        (* Latency is measured after [charge] so it includes the execution
           time the engine just billed; the failure paths above keep their
           pre-charge timestamps (ready_at, respawn) unchanged. *)
        if !completed_now then begin
          t_completed.(r.id) <- t_completed.(r.id) + 1;
          let lat = !clock -. r.started_at in
          let e2e = !clock -. arrival in
          (match ov.request_deadline_ns with
          | Some d when e2e > d -> incr deadline_misses
          | _ -> ());
          with_breaker r.id (fun b ->
              Breaker.on_slow b ~now:!clock ~elapsed_ns:lat);
          Trace.request_end trace ~tenant:r.id ~ok:true;
          (* The exemplar points at the request-end event just stored, so
             a percentile spike links to the exact span in the export. *)
          Hist.record_exemplar t_lat.(r.id) lat
            ~index:(max 0 (Trace.length trace - 1));
          Hist.record t_e2e.(r.id) e2e;
          slo_record r.id ~good:(slo_good lat)
        end
      end
    end
  in
  (* --- chaos: seeded perturbations applied to the live run --- *)
  let chaos_pending =
    ref (List.sort (fun a b -> compare a.at_ns b.at_ns) cfg.chaos)
  in
  let next_chaos_time () =
    match !chaos_pending with ev :: _ -> ev.at_ns | [] -> infinity
  in
  let chaos_index = ref 0 in
  let apply_chaos ev =
    let victim = ref (-1) in
    (match ev.action with
    | Chaos_kill -> (
        (* Kill a random in-flight instance: the victim's request fails
           (attributed to the victim alone — that's the blast-radius
           invariant the harness checks) and the slot recycles. *)
        let candidates =
          Array.to_list requests
          |> List.filter (fun r ->
                 r.act <> None
                 && match r.inst with Some i -> Runtime.live i | None -> false)
        in
        match candidates with
        | [] -> ()
        | l ->
            let r = List.nth l (Prng.int chaos_rng (List.length l)) in
            victim := r.id;
            incr chaos_kills;
            incr failed;
            t_failed.(r.id) <- t_failed.(r.id) + 1;
            slo_record r.id ~good:false;
            Trace.request_end trace ~tenant:r.id ~ok:false;
            with_breaker r.id (Breaker.on_failure ~now:!clock);
            (match r.inst with
            | Some i when Runtime.live i -> Runtime.kill i
            | _ -> ());
            r.act <- None;
            r.seq <- r.seq + 1;
            r.parked <- false;
            r.bk_admitted <- false;
            if open_loop then next_arrival r
            else begin
              r.ready_at <- !clock +. Prng.exponential chaos_rng ~mean:cfg.io_mean_ns;
              r.arrived_at <- r.ready_at
            end)
    | Chaos_latency { factor; window_ns } ->
        latency_factor := factor;
        latency_until := !clock +. window_ns
    | Chaos_instantiate_fail n -> inst_fail_budget := !inst_fail_budget + n);
    incr chaos_applied;
    freeze_flight
      (match ev.action with
      | Chaos_kill -> "chaos.kill"
      | Chaos_latency _ -> "chaos.latency"
      | Chaos_instantiate_fail _ -> "chaos.instantiate_fail");
    (match cfg.on_perturbation with
    | Some fn ->
        fn
          {
            cr_index = !chaos_index;
            cr_at_ns = ev.at_ns;
            cr_action = ev.action;
            cr_victim = !victim;
            cr_failed = Array.copy t_failed;
          }
    | None -> ());
    incr chaos_index
  in
  let chaos_tick () =
    if !latency_until > 0.0 && !clock >= !latency_until then begin
      latency_factor := 1.0;
      latency_until := 0.0
    end;
    let rec drain () =
      match !chaos_pending with
      | ev :: rest when ev.at_ns <= !clock ->
          chaos_pending := rest;
          apply_chaos ev;
          drain ()
      | _ -> ()
    in
    drain ()
  in
  (* Scheduler. The legacy scan picks the lowest-index ready request, so a
     started request runs to completion before anything behind it starts:
     slots are barely contended and overload shows up as silent starvation
     of high-index tenants. [fair_scheduling] switches to a round-robin
     cursor (processor sharing): every ready request gets an epoch in
     turn, in-flight requests hold their slots across preemption, and
     excess demand queues at admission — the regime the overload stack is
     built for. Off by default to keep earlier figures reproducible. *)
  let rr_cursor = ref 0 in
  let n_requests = Array.length requests in
  let ready_in proc =
    let found = ref None in
    if cfg.fair_scheduling then begin
      let i = ref 0 in
      while !found = None && !i < n_requests do
        let r = requests.((!rr_cursor + !i) mod n_requests) in
        if (proc < 0 || r.proc = proc) && r.ready_at <= !clock then begin
          found := Some r;
          rr_cursor := (!rr_cursor + !i + 1) mod n_requests
        end;
        incr i
      done
    end
    else
      Array.iter
        (fun r ->
          if !found = None && (proc < 0 || r.proc = proc) && r.ready_at <= !clock then
            found := Some r)
        requests;
    !found
  in
  let next_ready_time () =
    Array.fold_left (fun acc r -> min acc r.ready_at) infinity requests
  in
  let switch_to proc =
    incr context_switches;
    clock := !clock +. cfg.os_switch_ns;
    busy := !busy +. cfg.os_switch_ns;
    (* The incoming process finds the shared TLB polluted by whoever ran in
       between: model as a flush of its TLB state. *)
    Machine.flush_tlb (Runtime.machine engines.(proc));
    current_proc := proc;
    slice_start := !clock
  in
  let idle_jump () =
    clock :=
      max !clock (min (min (next_ready_time ()) (next_chaos_time ())) cfg.duration_ns)
  in
  while !clock < cfg.duration_ns do
    chaos_tick ();
    ladder_tick ();
    match cfg.mode with
    | Colorguard -> (
        match ready_in (-1) with Some r -> run_request r | None -> idle_jump ())
    | Multiprocess _ -> (
        (* A timeslice expires: move on if someone else has work. *)
        let other_with_work () =
          let found = ref None in
          for k = 1 to nprocs - 1 do
            let p = (!current_proc + k) mod nprocs in
            if !found = None && ready_in p <> None then found := Some p
          done;
          !found
        in
        if !clock -. !slice_start >= cfg.epoch_ns then begin
          match other_with_work () with
          | Some p -> switch_to p
          | None -> slice_start := !clock
        end;
        match ready_in !current_proc with
        | Some r -> run_request r
        | None -> (
            match other_with_work () with
            | Some p -> switch_to p
            | None -> idle_jump ()))
  done;
  (* Balance the trace: activations still in flight when the simulated
     duration expires get their span closed (not counted as failures). *)
  Array.iter
    (fun r -> if r.act <> None then Trace.request_end trace ~tenant:r.id ~ok:false)
    requests;
  (* Final burn-rate sweep so [slo_burning_at_end] reflects the stream's
     last state, then stamp the ring's fingerprint into the exemplars. *)
  (match slos with
  | Some (_, arr) -> Array.iteri slo_transitions arr
  | None -> ());
  if Trace.enabled trace then begin
    let fp = Trace.fingerprint trace in
    Array.iter (fun h -> Hist.seal_exemplars h fp) t_lat
  end;
  let tenants =
    Array.init cfg.concurrency (fun id ->
        let lat = t_lat.(id) in
        let pct h p = if Hist.count h = 0 then 0.0 else Hist.percentile h p in
        let e2e = t_e2e.(id) in
        {
          t_id = id;
          t_completed = t_completed.(id);
          t_failed = t_failed.(id);
          t_shed = t_shed.(id);
          t_breaker_opens = t_breaker_opens.(id);
          t_breaker_state =
            (match breakers with
            | None -> "-"
            | Some arr -> Breaker.state_name (Breaker.state arr.(id)));
          t_p50_ns = pct lat 50.0;
          t_p95_ns = pct lat 95.0;
          t_p99_ns = pct lat 99.0;
          t_p99_e2e_ns = pct e2e 99.0;
          t_sb_share =
            (if t_instr.(id) = 0 then 0.0
             else float_of_int t_sb.(id) /. float_of_int t_instr.(id));
          t_burn =
            (match slos with
            | Some (_, arr) -> Slo.burn arr.(id) ~now:!clock Slo.Fast
            | None -> 0.0);
          t_lat_hist = lat;
          t_e2e_hist = e2e;
        })
  in
  let breakers_open_at_end =
    match breakers with
    | None -> 0
    | Some arr ->
        Array.fold_left
          (fun acc b -> if Breaker.state b <> Breaker.Closed then acc + 1 else acc)
          0 arr
  in
  let admitted =
    Array.fold_left
      (fun acc e -> acc + (Runtime.metrics e).Runtime.m_admitted)
      0 engines
  in
  let user_transitions =
    Array.fold_left (fun acc e -> acc + Runtime.transitions e) 0 engines
  in
  let dtlb_misses =
    Array.fold_left (fun acc e -> acc + Machine.dtlb_misses (Runtime.machine e)) 0 engines
  in
  let attempts = !completed + !failed + !collateral in
  let pages_zeroed =
    Array.fold_left
      (fun acc e -> acc + (Runtime.metrics e).Runtime.m_pages_zeroed_on_recycle)
      0 engines
  in
  {
    completed = !completed;
    failed = !failed;
    watchdog_kills = !watchdog_kills;
    collateral_aborts = !collateral;
    recycles = !recycles;
    pages_zeroed;
    admitted;
    shed_sojourn = !shed_sojourn;
    shed_rate_limited = !shed_rate_limited;
    shed_queue_full = !shed_queue_full;
    shed_priority = !shed_priority;
    deadline_misses = !deadline_misses;
    breaker_opens = !breaker_opens;
    breaker_fast_fails = !breaker_fast_fails;
    breakers_open_at_end;
    degrade_steps = !degrade_steps;
    max_degrade_level = !max_degrade_level;
    chaos_applied = !chaos_applied;
    chaos_kills = !chaos_kills;
    slo_burn_starts = !slo_burn_starts;
    slo_burn_stops = !slo_burn_stops;
    slo_burning_at_end = !burning;
    throughput_rps = float_of_int attempts /. (!clock /. 1.0e9);
    goodput_rps = float_of_int (!completed - !deadline_misses) /. (!clock /. 1.0e9);
    availability =
      (if attempts = 0 then 1.0 else float_of_int !completed /. float_of_int attempts);
    capacity_rps = float_of_int !completed /. (!busy /. 1.0e9);
    context_switches = !context_switches;
    user_transitions;
    dtlb_misses;
    checksum = !checksum;
    simulated_ns = !clock;
    cpu_busy_ns = !busy;
    tenants;
  }

let throughput_gain ~workload ~processes cfg =
  (* Capacity per core-second: below CPU saturation both strategies finish
     the same IO-bound load, but multiprocess scaling burns core time on
     process switches and cold TLBs — time that at scale would have served
     additional requests. This is the per-core efficiency Figure 6 reports. *)
  let cg = run { cfg with mode = Colorguard; workload } in
  let mp = run { cfg with mode = Multiprocess processes; workload } in
  (cg.capacity_rps -. mp.capacity_rps) /. mp.capacity_rps *. 100.0

let degraded_mode ~workload ~processes ~trap_rate cfg =
  (* The Fig. 6 comparison re-run with misbehaving tenants: same load, same
     fault rate, two isolation strategies. ColorGuard pays one instance per
     crash; multiprocess loses every co-resident in-flight request. *)
  let faults = { cfg.faults with trap_rate } in
  let cg = run { cfg with mode = Colorguard; workload; faults } in
  let mp = run { cfg with mode = Multiprocess processes; workload; faults } in
  (cg, mp)

(* The `sfi top` table formats live here so the golden-output test can pin
   the column alignment without shelling out to the binary. *)
let top_header ~breakers =
  if breakers then
    Printf.sprintf "%6s %8s %6s %6s %8s %10s %7s %10s %10s %10s %6s" "TENANT" "OK"
      "FAIL" "SHED" "BRKOPEN" "BRK" "BURN" "P50(ms)" "P95(ms)" "P99(ms)" "SB%"
  else
    Printf.sprintf "%6s %8s %6s %10s %10s %10s %6s" "TENANT" "OK" "FAIL" "P50(ms)"
      "P95(ms)" "P99(ms)" "SB%"

let top_row ~breakers t =
  if breakers then
    Printf.sprintf "%6d %8d %6d %6d %8d %10s %7.2f %10.2f %10.2f %10.2f %5.1f%%"
      t.t_id t.t_completed t.t_failed t.t_shed t.t_breaker_opens t.t_breaker_state
      t.t_burn (t.t_p50_ns /. 1e6) (t.t_p95_ns /. 1e6) (t.t_p99_ns /. 1e6)
      (100.0 *. t.t_sb_share)
  else
    Printf.sprintf "%6d %8d %6d %10.2f %10.2f %10.2f %5.1f%%" t.t_id t.t_completed
      t.t_failed (t.t_p50_ns /. 1e6) (t.t_p95_ns /. 1e6) (t.t_p99_ns /. 1e6)
      (100.0 *. t.t_sb_share)
