(** Sharded serving across OCaml domains.

    Partitions the engine pool across [shards] domains — each with its own
    engine, pooling allocator, pkru/TLB state, trace sink and admission
    controller — places tenants on shards by hash, rebalances with a
    deterministic work-stealing dispatch plan, runs one {!Sim.run} per
    shard on its own domain, and merges the per-shard outcomes back into a
    single {!Sim.result}:

    - per-shard trace rings are merged by simulated time with per-shard
      track namespacing ({!Sfi_trace.Trace.merge_shards});
    - per-shard PRNG streams are split from the root seed
      ({!Sfi_util.Prng.split_seed}), never xor-derived;
    - per-shard DLS metrics are snapshotted {e inside} each worker domain
      before [Domain.join] ({!Sfi_runtime.Runtime.merged_metrics}).

    Determinism contract: [run] is a pure function of its config — equal
    configs (same seed, same shard count) produce bit-identical reports on
    every repeat, and a 1-shard run is bit-identical to the unsharded
    [Sim.run] of [base] (same result, same counters, same trace
    fingerprint). *)

type config = {
  base : Sim.config;
      (** the template config; [base.concurrency] is the global tenant
          count, [base.seed] the root seed. Used verbatim when
          [shards = 1]. *)
  shards : int;  (** number of domains / engine partitions, [>= 1] *)
  steal : bool;  (** enable the work-stealing rebalance pass *)
  trace_capacity : int;
      (** per-shard trace-ring capacity (only used when [base.trace] is a
          live ring) *)
}

val default_config :
  ?steal:bool -> ?trace_capacity:int -> shards:int -> Sim.config -> config
(** [steal] defaults to [true], [trace_capacity] to [65536]. *)

val home_shard : shards:int -> int -> int
(** Hash placement of a tenant id onto [0 .. shards-1] (avalanched, not
    striped, so dense tenant ids spread evenly). *)

val plan : shards:int -> steal:bool -> float array -> int array * int
(** [plan ~shards ~steal weights] resolves the dispatch plan for tenants
    [0 .. n-1] with offered loads [weights]: every tenant starts on its
    {!home_shard}; then, while the least-loaded shard would sit idle next
    to a backlogged one, it steals the tenant at the {e tail} of the most
    loaded shard's hot-to-cold deque (the coldest tenant, keeping hot
    tenants shard-local) whenever the move strictly shrinks the
    imbalance. Returns the final tenant-to-shard assignment and the
    number of steals. Pure and deterministic — stealing is resolved at
    plan time, so worker domains never race for work. *)

type shard_stat = {
  sh_id : int;
  sh_tenants : int;  (** tenants served by this shard after stealing *)
  sh_stolen : int;  (** tenants that arrived here via a steal *)
  sh_weight : float;  (** offered load share (arrivals, or tenant count) *)
  sh_completed : int;
  sh_shed : int;  (** admission sheds, all reasons *)
  sh_busy_ns : float;
  sh_metrics : Sfi_runtime.Runtime.metrics;
      (** this shard's DLS counters, harvested on the worker domain *)
}

type report = {
  r_result : Sim.result;
      (** merged result; [tenants] re-indexed by global tenant id, counters
          summed, [simulated_ns] the max over shards (each shard serves on
          its own simulated core), rates recomputed from the merged
          counters *)
  r_shards : shard_stat array;
  r_steals : int;
  r_metrics : Sfi_runtime.Runtime.metrics;
  r_trace : Sfi_trace.Trace.t option;
      (** the namespaced, time-merged trace ([None] when [base.trace] is
          the null sink) *)
}

val run : config -> report
(** Run the sharded simulation: one spawned domain per shard, joined and
    merged deterministically. Raises [Invalid_argument] if [shards < 1].

    When [base.chaos] is non-empty the schedule is dealt round-robin
    across shards (preserving the total perturbation count); a supplied
    [base.on_perturbation] callback then runs concurrently on worker
    domains and must be thread-safe. *)

val result_fingerprint : Sim.result -> int64
(** FNV-1a digest of every counter, rate and per-tenant stat (floats by
    bit pattern) — the equality witness for the determinism and 1-shard
    bit-identity contracts. *)

val metrics_fingerprint : Sfi_runtime.Runtime.metrics -> int64
(** FNV-1a digest of a runtime-metrics snapshot. *)

val latency_summary : Sim.result -> float * float * float
(** Global (p50, p95, p99) request latency in ns, computed by merging the
    per-tenant log-bucketed histograms — exact at bucket granularity
    across tenants and shards, no completions-weighted interpolation. *)
