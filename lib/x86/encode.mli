(** Instruction length model.

    Segue's costs and benefits both show up in code bytes: it halves the
    number of instructions per sandboxed memory access (Table 2's 5.9%
    median binary-size reduction) but each remaining instruction is longer
    (segment-override prefix, address-size override prefix) — the source of
    the 473_astar outlier (§6.1). This module computes byte-accurate-enough
    lengths following the x86-64 encoding rules: legacy prefixes, REX,
    opcode, ModRM, SIB, displacement, immediate.

    We do not emit actual machine code (nothing executes it — the machine
    interprets the AST); only lengths are needed, for binary-size reporting
    and for the frontend fetch/decode cost model. *)

val instr_length : Ast.instr -> int
(** Encoded length in bytes. [Label] is 0. *)

val program_length : Ast.program -> int
(** Total code bytes of a program. *)

val lengths : Ast.program -> int array
(** Per-instruction encoded lengths (array index = instruction index), so
    executors can charge frontend costs without re-deriving the encoding on
    every step. *)

val layout : Ast.program -> int array
(** [layout p] gives the byte offset of each instruction (array index =
    instruction index). Labels share the offset of the following
    instruction. The machine uses this to give instructions addresses so
    that indirect control flow (and LFI's masking of it) operates on
    realistic code addresses. *)
