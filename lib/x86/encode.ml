open Ast

let fits_int8 n = n >= -128 && n <= 127
let fits_int8_64 n = Int64.compare n (-128L) >= 0 && Int64.compare n 127L <= 0

let fits_int32_64 n =
  Int64.compare n (-2147483648L) >= 0 && Int64.compare n 2147483647L <= 0

let is_extended r = gpr_index r >= 8

(* Legacy prefixes contributed by a memory operand: segment override and
   address-size override. *)
let mem_prefixes (m : mem) =
  (* native_base models absolute-pointer addressing: no prefixes. *)
  if m.native_base then 0
  else (if m.seg <> None then 1 else 0) + if m.addr32 then 1 else 0

(* ModRM + SIB + displacement bytes for a memory operand. *)
let modrm_sib_disp (m : mem) =
  let needs_sib =
    m.index <> None
    || (match m.base with Some (RSP | R12) -> true | _ -> false)
    || m.base = None
  in
  let disp_bytes =
    match m.base with
    | None -> 4 (* absolute/rip-style always carries disp32 *)
    | Some (RBP | R13) -> if fits_int8 m.disp then 1 else 4
    | Some _ -> if m.disp = 0 then 0 else if fits_int8 m.disp then 1 else 4
  in
  1 + (if needs_sib then 1 else 0) + disp_bytes

(* Does a memory operand reference extended registers (forcing REX)? *)
let mem_uses_extended (m : mem) =
  (match m.base with Some r -> is_extended r | None -> false)
  || match m.index with Some (r, _) -> is_extended r | None -> false

let rex_needed w regs mems =
  w = W64 || List.exists is_extended regs || List.exists mem_uses_extended mems

let operand_size_prefix w = if w = W16 then 1 else 0

(* Generic "op reg/mem, reg/mem-or-imm" shape shared by mov/alu/cmp/test. *)
let rm_form w dst src ~imm_is_8_ok =
  let regs = List.filter_map (function Reg r -> Some r | _ -> None) [ dst; src ] in
  let mems = List.filter_map (function Mem m -> Some m | _ -> None) [ dst; src ] in
  let prefix = List.fold_left (fun acc m -> acc + mem_prefixes m) 0 mems in
  let rex = if rex_needed w regs mems then 1 else 0 in
  let body =
    match mems with
    | m :: _ -> modrm_sib_disp m
    | [] -> 1 (* ModRM only, register-direct *)
  in
  let imm =
    match src with
    | Imm i ->
        if w = W8 then 1
        else if imm_is_8_ok && fits_int8_64 i then 1
        else if w = W64 && not (fits_int32_64 i) then 8
        else 4
    | Reg _ | Mem _ -> 0
  in
  operand_size_prefix w + prefix + rex + 1 + body + imm

let instr_length (i : instr) =
  match i with
  | Label _ -> 0
  | Mov (w, dst, src) -> rm_form w dst src ~imm_is_8_ok:false
  | Movzx (dw, _, dst, src) | Movsx (dw, _, dst, src) ->
      (* 0F B6/B7/BE/BF: two-byte opcode. *)
      1 + rm_form dw (Reg dst) src ~imm_is_8_ok:false
  | Lea (w, dst, m) ->
      let rex = if rex_needed w [ dst ] [ m ] then 1 else 0 in
      operand_size_prefix w + mem_prefixes m + rex + 1 + modrm_sib_disp m
  | Alu (_, w, dst, src) | Cmp (w, dst, src) -> rm_form w dst src ~imm_is_8_ok:true
  | Test (w, dst, src) -> rm_form w dst src ~imm_is_8_ok:false
  | Shift (_, w, dst, count) ->
      let base = rm_form w dst (Reg RCX) ~imm_is_8_ok:false in
      (match count with Count_imm 1 | Count_cl -> base | Count_imm _ -> base + 1)
  | Imul (w, dst, src) -> 1 + rm_form w (Reg dst) src ~imm_is_8_ok:false
  | Bitcnt (_, w, dst, src) ->
      (* F3 0F B8/BC/BD /r: mandatory prefix + two-byte opcode. *)
      2 + rm_form w (Reg dst) src ~imm_is_8_ok:false
  | Div (w, _, src) -> rm_form w src (Reg RAX) ~imm_is_8_ok:false
  | Cqo w -> if w = W64 then 2 else 1
  | Neg (w, op) | Not (w, op) -> rm_form w op (Reg RAX) ~imm_is_8_ok:false
  | Setcc (_, r) ->
      (* setcc r8 (3 + possible REX) followed by the folded movzx (3). *)
      (if is_extended r then 4 else 3) + 3
  | Cmovcc (_, w, dst, src) -> 1 + rm_form w (Reg dst) src ~imm_is_8_ok:false
  | Jmp _ -> 5 (* jmp rel32 *)
  | Jcc _ -> 6 (* 0F 8x rel32 *)
  | Jmp_reg r | Call_reg r -> if is_extended r then 3 else 2
  | Call _ -> 5
  | Ret -> 1
  | Push (Reg r) | Pop r -> if is_extended r then 2 else 1
  | Push (Imm i) -> if fits_int8_64 i then 2 else 5
  | Push (Mem m) -> mem_prefixes m + 1 + modrm_sib_disp m
  | Wrfsbase _ | Wrgsbase _ | Rdfsbase _ | Rdgsbase _ -> 5 (* F3 REX.W 0F AE /r *)
  | Wrpkru | Rdpkru -> 3 (* 0F 01 EF / 0F 01 EE *)
  | Vload (_, m) | Vstore (m, _) -> 3 + mem_prefixes m + 1 + modrm_sib_disp m
  | Vzero _ -> 4
  | Vdup8 (_, _) -> 6
  | Hostcall _ -> 7 (* mov eax, imm32 ; syscall *)
  | Trap _ -> 2 (* ud2 *)
  | Nop -> 1

let program_length (p : program) = Array.fold_left (fun acc i -> acc + instr_length i) 0 p

let lengths (p : program) = Array.map instr_length p

let layout (p : program) =
  let offsets = Array.make (Array.length p) 0 in
  let off = ref 0 in
  Array.iteri
    (fun idx i ->
      offsets.(idx) <- !off;
      off := !off + instr_length i)
    p;
  offsets
