(** Cross-layer differential fuzzer.

    Every execution path this repository implements is a semantics for the
    same mini-Wasm language: the reference interpreter
    ({!Sfi_wasm.Interp}), the {!Sfi_core.Codegen} lowerings under each of
    the six SFI strategies executed by both machine engines (step and
    threaded), and the LFI rewriter applied to the native lowering. This
    module generates seeded random programs over the full op set —
    loads/stores of every width with boundary-hugging addresses, bulk
    memory ops, [memory.grow], [br_table], [call_indirect] with
    out-of-bounds and type-mismatching indices — and runs each program
    through every semantics, comparing results, trap kinds, final linear
    memories, memory sizes, globals, and (within a strategy) the
    bit-identical performance counters the two engines must agree on.

    Compiled runs execute with the runtime's SFI sanitizer armed
    ({!Sfi_runtime.Runtime.arm_sanitizer}), so an access that escapes the
    sandbox into {e mapped} neighbour memory — invisible to a differential
    check — is reported at the faulting instruction.

    Divergences are auto-minimized by a delta-debugging shrinker over the
    Wasm AST and are replayable from their seed alone. *)

(** {1 Program generation} *)

type program = {
  p_seed : int64;
  p_module : Sfi_wasm.Ast.module_;
  p_args : Sfi_wasm.Ast.value list;  (** arguments for the [run] export *)
  p_tame : bool;
      (** all addresses masked in-bounds and indirect calls well-typed —
          the subset also run through the LFI oracle, whose native arm has
          no bounds to trap on *)
}

val generate : int64 -> program
(** Deterministic: equal seeds yield equal programs. *)

(** {1 The differential oracle} *)

type check_result = {
  executions : int;  (** semantics actually run (interp + 6x2 + LFI arms) *)
  interp_trapped : bool;
  skipped : bool;
      (** the interpreter ran out of fuel; the program was not compared *)
  failure : (string * string) option;
      (** [(oracle, detail)]: which comparison failed and how *)
}

val check_module :
  ?sanitizer:bool ->
  ?churn:bool ->
  lfi:bool ->
  Sfi_wasm.Ast.module_ ->
  Sfi_wasm.Ast.value list ->
  check_result
(** Run one module through every semantics and compare. [sanitizer]
    (default true) arms the runtime SFI sanitizer on compiled runs.
    [churn] (default true) adds a lifecycle arm: run, then
    instantiate/kill/recycle the slot and run again on the recycled slot,
    which must stay indistinguishable from a fresh instantiation. [lfi]
    adds the native / LFI / LFI+Segue triple (only sound for tame
    programs). *)

val check_program : ?sanitizer:bool -> ?churn:bool -> program -> check_result

(** {1 Minimization} *)

val module_size : Sfi_wasm.Ast.module_ -> int
(** Total instruction count across all function bodies. *)

val minimize :
  ?budget:int ->
  reproduces:(Sfi_wasm.Ast.module_ -> bool) ->
  Sfi_wasm.Ast.module_ ->
  Sfi_wasm.Ast.module_
(** Delta-debugging shrink: chunk removal over every body (halving chunk
    sizes), recursive descent into block/loop/if arms, structural
    simplification, and constant shrinking — greedy first-improvement to a
    fixpoint or until [budget] (default 300) predicate evaluations.
    Candidates that fail validation are discarded ([reproduces] exceptions
    count as "not reproduced"). *)

(** {1 Corpus runs} *)

type divergence = {
  d_seed : int64;
  d_oracle : string;
  d_detail : string;
  d_module : Sfi_wasm.Ast.module_;  (** minimized *)
  d_original_size : int;
}

type report = {
  r_programs : int;
  r_executions : int;
  r_interp_traps : int;
  r_lfi_programs : int;
  r_skipped : int;
  r_divergences : divergence list;
}

val run_corpus :
  ?sanitizer:bool ->
  ?churn:bool ->
  ?minimize_failures:bool ->
  ?progress:(int -> unit) ->
  seed:int64 ->
  count:int ->
  unit ->
  report
(** Check [count] programs with per-program seeds [seed + i], so any
    divergence replays from its own seed. *)

val replay : ?sanitizer:bool -> ?churn:bool -> Format.formatter -> int64 -> check_result
(** Regenerate the program for a seed, print it, re-run the full oracle,
    and report. *)

(** {1 Sanitizer self-test}

    Deliberately weakened configurations that the sanitizer — and nothing
    else — must catch, mirroring the fault-injection harness's self-test:
    a guard-region hole (an rw page mapped inside the reservation past the
    memory bound, silently writable without the sanitizer) and a swapped
    PKRU image under ColorGuard (the entry sequence installs allow-all
    instead of the sandbox's color). *)

val self_test : unit -> (string, string) result

(** {1 Printers} *)

val pp_module : Format.formatter -> Sfi_wasm.Ast.module_ -> unit
val pp_divergence : Format.formatter -> divergence -> unit
val pp_report : Format.formatter -> report -> unit
