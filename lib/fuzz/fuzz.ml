module W = Sfi_wasm.Ast
module B = Sfi_wasm.Builder
module Interp = Sfi_wasm.Interp
module X = Sfi_x86.Ast
module Prng = Sfi_util.Prng
module Units = Sfi_util.Units
module Strategy = Sfi_core.Strategy
module Codegen = Sfi_core.Codegen
module Pool = Sfi_core.Pool
module Machine = Sfi_machine.Machine
module Runtime = Sfi_runtime.Runtime
module Space = Sfi_vmem.Space
module Prot = Sfi_vmem.Prot
module Mpk = Sfi_vmem.Mpk
module Lfi = Sfi_lfi.Lfi

type program = {
  p_seed : int64;
  p_module : W.module_;
  p_args : W.value list;
  p_tame : bool;
}

(* --- generator ---------------------------------------------------------- *)

(* Programs are built around one exported [run : i32 i64 -> i32] plus a few
   leaf helpers reachable by [call] and [call_indirect]. Only [run] makes
   calls and [run] itself is never in the table, so call depth is bounded
   and the interpreter's fuel limit and the machine's stack limit can never
   disagree about a runaway recursion. Loops count up a dedicated counter
   local that generated statements cannot touch, so every program
   terminates. *)

type env = {
  rng : Prng.t;
  b : B.t;
  i32s : int array;  (* i32-typed locals visible to generated code *)
  i64s : int array;
  g32s : int array;  (* global indices by type *)
  g64s : int array;
  counters : int list;  (* free loop-counter locals *)
  callees : (B.fn * W.functype) array;  (* empty inside helpers *)
  table_sigs : W.functype array;  (* signature of each table slot *)
  tame : bool;
  mutable budget : int;
}

let pick_arr rng a = a.(Prng.int rng (Array.length a))
let pick_list rng l = List.nth l (Prng.int rng (List.length l))

(* Constants cluster around the interesting places: zero, small, the
   64 KiB memory boundary, and full-width patterns. *)
let const32 rng =
  match Prng.int rng 6 with
  | 0 -> Prng.int rng 16
  | 1 -> Prng.int rng 256
  | 2 -> W.page_size - (1 lsl Prng.int rng 5)
  | 3 -> 0xFFF0 + Prng.int rng 0x40
  | 4 -> Prng.int rng W.page_size
  | _ -> ( match Prng.int rng 3 with 0 -> -1 | 1 -> 0x7FFFFFFF | _ -> 0x80000000)

let const64 rng =
  match Prng.int rng 4 with
  | 0 -> Int64.of_int (Prng.int rng 256)
  | 1 -> Int64.of_int (const32 rng)
  | 2 -> 0xDEAD_BEEF_CAFE_F00DL
  | _ -> Prng.next_int64 rng

let sig_pool =
  [
    { W.params = [ W.I32 ]; results = [ W.I32 ] };
    { W.params = [ W.I32; W.I32 ]; results = [ W.I32 ] };
    { W.params = [ W.I64 ]; results = [ W.I64 ] };
    { W.params = [ W.I32 ]; results = [] };
  ]

let rec gen_i32 env depth =
  env.budget <- env.budget - 1;
  let leaf () =
    match Prng.int env.rng 4 with
    | 0 -> [ B.i32 (const32 env.rng) ]
    | 1 -> [ B.get (pick_arr env.rng env.i32s) ]
    | 2 when Array.length env.g32s > 0 -> [ B.gget (pick_arr env.rng env.g32s) ]
    | _ -> [ B.i32 (Prng.int env.rng 64) ]
  in
  if depth <= 0 || env.budget <= 0 then leaf ()
  else
    match Prng.int env.rng 14 with
    | 0 | 1 -> leaf ()
    | 2 | 3 ->
        let op =
          pick_list env.rng
            [ B.add; B.sub; B.mul; B.band; B.bor; B.bxor; B.shl; B.shr_u; B.shr_s; B.rotl ]
        in
        gen_i32 env (depth - 1) @ gen_i32 env (depth - 1) @ [ op ]
    | 4 ->
        (* division family: divide-by-zero and INT_MIN/-1 trap coverage,
           but usually with a forced-nonzero divisor so most programs get
           past their first division *)
        let op = pick_list env.rng [ B.div_s; B.div_u; B.rem_s; B.rem_u ] in
        let divisor =
          if Prng.int env.rng 4 = 0 then gen_i32 env (depth - 1)
          else gen_i32 env (depth - 1) @ [ B.i32 (1 + Prng.int env.rng 7); B.bor ]
        in
        gen_i32 env (depth - 1) @ divisor @ [ op ]
    | 5 ->
        let op =
          pick_list env.rng [ B.eq; B.ne; B.lt_s; B.lt_u; B.gt_s; B.gt_u; B.le_u; B.ge_s ]
        in
        gen_i32 env (depth - 1) @ gen_i32 env (depth - 1) @ [ op ]
    | 6 -> gen_i32 env (depth - 1) @ [ B.eqz ]
    | 7 -> gen_i64 env (depth - 1) @ [ B.wrap ]
    | 8 ->
        let load =
          pick_list env.rng [ B.load32; B.load8_u; B.load8_s; B.load16_u ]
        in
        gen_addr env @ [ load ~offset:(gen_offset env) () ]
    | 9 -> if Prng.bool env.rng then [ B.memory_size ] else gen_i32 env (depth - 1)
    | 10 ->
        let op = pick_list env.rng [ W.Clz W.I32; W.Ctz W.I32; W.Popcnt W.I32 ] in
        gen_i32 env (depth - 1) @ [ op ]
    | 11 ->
        gen_i32 env (depth - 1) @ gen_i32 env (depth - 1) @ gen_i32 env (depth - 1)
        @ [ B.select ]
    | 12 -> (
        let cands =
          Array.of_list
            (List.filter
               (fun (_, ft) -> ft.W.results = [ W.I32 ])
               (Array.to_list env.callees))
        in
        match Array.length cands with
        | 0 -> leaf ()
        | _ ->
            let fn, ft = pick_arr env.rng cands in
            List.concat_map (fun ty -> gen_ty env (depth - 1) ty) ft.W.params @ [ B.call fn ])
    | _ -> gen_call_indirect env depth [ W.I32 ] leaf

and gen_i64 env depth =
  env.budget <- env.budget - 1;
  let leaf () =
    match Prng.int env.rng 4 with
    | 0 -> [ B.i64' (const64 env.rng) ]
    | 1 when Array.length env.i64s > 0 -> [ B.get (pick_arr env.rng env.i64s) ]
    | 2 when Array.length env.g64s > 0 -> [ B.gget (pick_arr env.rng env.g64s) ]
    | _ -> [ B.i64 (Prng.int env.rng 4096) ]
  in
  if depth <= 0 || env.budget <= 0 then leaf ()
  else
    match Prng.int env.rng 10 with
    | 0 | 1 -> leaf ()
    | 2 | 3 ->
        let op =
          pick_list env.rng
            [ B.add64; B.sub64; B.mul64; B.band64; B.bor64; B.bxor64; B.shl64; B.shr_u64; B.shr_s64 ]
        in
        gen_i64 env (depth - 1) @ gen_i64 env (depth - 1) @ [ op ]
    | 4 | 5 ->
        gen_i32 env (depth - 1)
        @ [ (if Prng.bool env.rng then B.extend_u else B.extend_s) ]
    | 6 -> gen_addr env @ [ B.load64 ~offset:(gen_offset env) () ]
    | 7 ->
        let op = pick_list env.rng [ W.Clz W.I64; W.Ctz W.I64; W.Popcnt W.I64 ] in
        gen_i64 env (depth - 1) @ [ op ]
    | _ -> (
        let cands =
          Array.of_list
            (List.filter
               (fun (_, ft) -> ft.W.results = [ W.I64 ])
               (Array.to_list env.callees))
        in
        match Array.length cands with
        | 0 -> leaf ()
        | _ ->
            let fn, ft = pick_arr env.rng cands in
            List.concat_map (fun ty -> gen_ty env (depth - 1) ty) ft.W.params @ [ B.call fn ])

and gen_ty env depth = function W.I32 -> gen_i32 env depth | W.I64 -> gen_i64 env depth

(* Address classes: masked always-in-bounds (the only class in tame mode),
   boundary-hugging constants on both sides of the 64 KiB line, and rare
   wild pointers deep in the guard region. *)
and gen_addr env =
  if env.tame then gen_i32 env 1 @ [ B.i32 0xFF8; B.band ]
  else
    match Prng.int env.rng 12 with
    | 0 | 1 | 2 | 3 | 4 | 5 | 6 -> gen_i32 env 1 @ [ B.i32 0xFF8; B.band ]
    | 7 | 8 -> [ B.i32 (W.page_size - (1 lsl Prng.int env.rng 5)) ]
    | 9 -> [ B.i32 (0xFFC0 + Prng.int env.rng 0x80) ]
    | 10 -> [ B.i32 (0xFFF8 land const32 env.rng) ]
    | _ -> [ B.i32 (pick_list env.rng [ 0x1_0000; 0x2_0000; 0x7FF0_0000 ]) ]

and gen_offset env =
  if env.tame then pick_list env.rng [ 0; 0; 1; 2; 4; 8 ]
  else pick_list env.rng [ 0; 0; 0; 1; 2; 4; 8; 16; 0xFF0; 0xFFF0 ]

and gen_call_indirect env depth results fallback =
  let n = Array.length env.table_sigs in
  if n = 0 then fallback ()
  else if env.tame then begin
    (* exact signature of an in-bounds slot: never traps, safe for the
       native LFI arm which has no type-check or table-bounds semantics to
       compare against *)
    let cands = ref [] in
    Array.iteri (fun i ft -> if ft.W.results = results then cands := (i, ft) :: !cands) env.table_sigs;
    match !cands with
    | [] -> fallback ()
    | l ->
        let idx, ft = pick_list env.rng l in
        List.concat_map (fun ty -> gen_ty env (depth - 1) ty) ft.W.params
        @ [ B.i32 idx; B.call_indirect env.b ~params:ft.W.params ~results ]
  end
  else begin
    (* free-for-all: out-of-bounds indices and signature mismatches are
       trap paths the oracle compares *)
    let ft = pick_list env.rng (List.filter (fun s -> s.W.results = results) sig_pool) in
    let idx = Prng.int env.rng (n + 2) in
    List.concat_map (fun ty -> gen_ty env (depth - 1) ty) ft.W.params
    @ [ B.i32 idx; B.call_indirect env.b ~params:ft.W.params ~results ]
  end

let rec gen_stmt env depth =
  env.budget <- env.budget - 1;
  if env.budget <= 0 then [ B.nop ]
  else
    let n_choices = if depth > 0 then 16 else 9 in
    match Prng.int env.rng n_choices with
    | 0 | 1 -> gen_i32 env 2 @ [ B.set (pick_arr env.rng env.i32s) ]
    | 2 when Array.length env.i64s > 0 ->
        gen_i64 env 2 @ [ B.set (pick_arr env.rng env.i64s) ]
    | 2 -> gen_i32 env 1 @ [ B.set (pick_arr env.rng env.i32s) ]
    | 3 ->
        if Array.length env.g32s > 0 && (Array.length env.g64s = 0 || Prng.bool env.rng)
        then gen_i32 env 2 @ [ B.gset (pick_arr env.rng env.g32s) ]
        else if Array.length env.g64s > 0 then
          gen_i64 env 2 @ [ B.gset (pick_arr env.rng env.g64s) ]
        else [ B.nop ]
    | 4 | 5 -> (
        let offset = gen_offset env in
        match Prng.int env.rng 4 with
        | 0 -> gen_addr env @ gen_i32 env 1 @ [ B.store32 ~offset () ]
        | 1 -> gen_addr env @ gen_i32 env 1 @ [ B.store8 ~offset () ]
        | 2 -> gen_addr env @ gen_i32 env 1 @ [ B.store16 ~offset () ]
        | _ -> gen_addr env @ gen_i64 env 1 @ [ B.store64 ~offset () ])
    | 6 ->
        let len = pick_list env.rng [ 0; 1; 17; 255; 4096 ] in
        if Prng.bool env.rng then
          gen_addr env @ gen_i32 env 1 @ [ B.i32 len; B.memory_fill ]
        else gen_addr env @ gen_addr env @ [ B.i32 len; B.memory_copy ]
    | 7 ->
        let delta = pick_list env.rng [ 0; 1; 1; 2; 100 ] in
        [ B.i32 delta; B.memory_grow; B.set (pick_arr env.rng env.i32s) ]
    | 8 ->
        (* rare unreachable behind a data-dependent condition *)
        gen_i32 env 1 @ [ B.if_ [ B.unreachable ] [] ]
    | 9 ->
        gen_i32 env 1
        @ [
            B.if_ (gen_block env (depth - 1))
              (if Prng.bool env.rng then gen_block env (depth - 1) else []);
          ]
    | 10 | 11 -> (
        match env.counters with
        | [] -> gen_i32 env 1 @ [ B.set (pick_arr env.rng env.i32s) ]
        | c :: rest ->
            let env' = { env with counters = rest } in
            let stop = 2 + Prng.int env.rng 12 in
            if Prng.bool env.rng then
              B.for_loop ~i:c ~start:[ B.i32 (Prng.int env.rng 3) ] ~stop:[ B.i32 stop ]
                (gen_block env' (depth - 1))
            else
              [ B.i32 0; B.set c ]
              @ B.while_loop
                  [ B.get c; B.i32 stop; B.lt_u ]
                  (gen_block env' (depth - 1) @ [ B.get c; B.i32 1; B.add; B.set c ]))
    | 12 -> gen_br_table env
    | 13 ->
        [
          B.block
            (gen_block env (depth - 1) @ gen_i32 env 1 @ [ B.br_if 0 ]
            @ gen_block env (depth - 1));
        ]
    | 14 -> (
        let cands =
          Array.of_list
            (List.filter (fun (_, ft) -> ft.W.results = []) (Array.to_list env.callees))
        in
        match Array.length cands with
        | 0 -> gen_i32 env 2 @ [ B.drop ]
        | _ ->
            let fn, ft = pick_arr env.rng cands in
            List.concat_map (fun ty -> gen_ty env 1 ty) ft.W.params @ [ B.call fn ])
    | _ -> gen_call_indirect env 1 [] (fun () -> gen_i32 env 2 @ [ B.drop ])

and gen_block env depth =
  List.concat (List.init (1 + Prng.int env.rng 2) (fun _ -> gen_stmt env depth))

(* The nested-void-block br_table shape (the only one the codegen
   supports): the innermost block holds the selector and the br_table, each
   wrapping block appends one case, the outermost holds the default. *)
and gen_br_table env =
  let ncases = 2 + Prng.int env.rng 3 in
  let sel = gen_i32 env 1 in
  let inner = B.block (sel @ [ W.Br_table (List.init ncases (fun i -> i), ncases) ]) in
  let rec wrap j acc =
    if j >= ncases then acc
    else wrap (j + 1) (B.block ((acc :: gen_block env 0) @ [ B.br (ncases - j) ]))
  in
  [ B.block (wrap 0 inner :: gen_block env 0) ]

let generate seed =
  let rng = Prng.create ~seed in
  let tame = Prng.int rng 100 < 40 in
  let b = B.create ~memory_pages:1 ~max_memory_pages:2 () in
  let g32s = ref [] and g64s = ref [] in
  for _ = 1 to 2 + Prng.int rng 3 do
    if Prng.bool rng then
      g32s := B.global b W.I32 (W.V_i32 (Int32.of_int (Prng.int rng 1024))) :: !g32s
    else g64s := B.global b W.I64 (W.V_i64 (Int64.of_int (Prng.int rng 1024))) :: !g64s
  done;
  let g32s = Array.of_list (List.rev !g32s) and g64s = Array.of_list (List.rev !g64s) in
  let nhelpers = 1 + Prng.int rng 3 in
  let helpers =
    Array.init nhelpers (fun i ->
        let ft = pick_list rng sig_pool in
        let fn =
          B.declare b (Printf.sprintf "h%d" i) ~params:ft.W.params ~results:ft.W.results ()
        in
        (fn, ft))
  in
  let run = B.declare b "run" ~params:[ W.I32; W.I64 ] ~results:[ W.I32 ] () in
  let table_fns = Array.init (1 + Prng.int rng 3) (fun _ -> helpers.(Prng.int rng nhelpers)) in
  B.elem b (Array.to_list (Array.map fst table_fns));
  let table_sigs = Array.map snd table_fns in
  if Prng.bool rng then begin
    let len = 16 + Prng.int rng 241 in
    B.data b ~offset:(Prng.int rng 4096) (String.init len (fun _ -> Char.chr (Prng.int rng 256)))
  end;
  Array.iter
    (fun (fn, ft) ->
      let nparams = List.length ft.W.params in
      let p32 = List.concat (List.mapi (fun i ty -> if ty = W.I32 then [ i ] else []) ft.W.params) in
      let p64 = List.concat (List.mapi (fun i ty -> if ty = W.I64 then [ i ] else []) ft.W.params) in
      let env =
        {
          rng;
          b;
          i32s = Array.of_list (p32 @ [ nparams ]);
          i64s = Array.of_list p64;
          g32s;
          g64s;
          counters = [ nparams + 1 ];
          callees = [||];
          table_sigs = [||];
          tame;
          budget = 20 + Prng.int rng 30;
        }
      in
      let stmts = gen_block env 1 in
      let final =
        match ft.W.results with
        | [ W.I32 ] -> gen_i32 env 2
        | [ W.I64 ] -> gen_i64 env 2
        | _ -> []
      in
      B.define b fn ~locals:[ W.I32; W.I32 ] (stmts @ final))
    helpers;
  let env =
    {
      rng;
      b;
      i32s = [| 0; 2; 3; 4; 5 |];
      i64s = [| 1; 6; 7 |];
      g32s;
      g64s;
      counters = [ 8; 9 ];
      callees = helpers;
      table_sigs;
      tame;
      budget = 60 + Prng.int rng 60;
    }
  in
  let stmts = List.concat (List.init (3 + Prng.int rng 5) (fun _ -> gen_stmt env 2)) in
  let final = gen_i32 env 3 in
  B.define b run
    ~locals:[ W.I32; W.I32; W.I32; W.I32; W.I64; W.I64; W.I32; W.I32 ]
    (stmts @ final);
  let m = B.build b in
  let args = [ W.V_i32 (Int32.of_int (const32 rng)); W.V_i64 (const64 rng) ] in
  { p_seed = seed; p_module = m; p_args = args; p_tame = tame }

(* --- printers ----------------------------------------------------------- *)

let rec pp_body ppf indent body =
  let pad = String.make indent ' ' in
  List.iter
    (fun i ->
      match i with
      | W.Block (_, b) ->
          Format.fprintf ppf "%sblock@." pad;
          pp_body ppf (indent + 2) b;
          Format.fprintf ppf "%send@." pad
      | W.Loop (_, b) ->
          Format.fprintf ppf "%sloop@." pad;
          pp_body ppf (indent + 2) b;
          Format.fprintf ppf "%send@." pad
      | W.If (_, t, e) ->
          Format.fprintf ppf "%sif@." pad;
          pp_body ppf (indent + 2) t;
          if e <> [] then begin
            Format.fprintf ppf "%selse@." pad;
            pp_body ppf (indent + 2) e
          end;
          Format.fprintf ppf "%send@." pad
      | i -> Format.fprintf ppf "%s%a@." pad W.pp_instr i)
    body

let pp_module ppf (m : W.module_) =
  (match m.W.memory with
  | Some mem ->
      Format.fprintf ppf "memory %d page(s)%s@." mem.W.min_pages
        (match mem.W.max_pages with
        | Some mx -> Printf.sprintf " (max %d)" mx
        | None -> "")
  | None -> ());
  Array.iteri
    (fun i (g : W.global) ->
      Format.fprintf ppf "global %d: %s = %a@." i (W.valty_name g.W.gtype) W.pp_value g.W.ginit)
    m.W.globals;
  if Array.length m.W.table > 0 then
    Format.fprintf ppf "table: [%s]@."
      (String.concat " " (Array.to_list (Array.map string_of_int m.W.table)));
  List.iter
    (fun (d : W.data_segment) ->
      Format.fprintf ppf "data: %d bytes at %d@." (String.length d.W.dbytes) d.W.doffset)
    m.W.data;
  Array.iteri
    (fun i (f : W.func) ->
      Format.fprintf ppf "func %d (%s) %a locals=[%s]@."
        (i + Array.length m.W.imports)
        f.W.fname W.pp_functype m.W.types.(f.W.ftype)
        (String.concat " " (List.map W.valty_name f.W.locals));
      pp_body ppf 2 f.W.body)
    m.W.funcs

(* --- the differential oracle -------------------------------------------- *)

let value_bits = function
  | W.V_i32 v -> Int64.logand (Int64.of_int32 v) 0xFFFFFFFFL
  | W.V_i64 v -> v

let mask_global ty bits =
  match ty with W.I32 -> Int64.logand bits 0xFFFFFFFFL | W.I64 -> bits

let mask_result m bits =
  match (W.type_of_func m (W.func_index_of_export m "run")).W.results with
  | [ W.I32 ] -> Int64.logand bits 0xFFFFFFFFL
  | [] -> 0L
  | _ -> bits

(* Everything one semantics leaves behind. Memory, pages and globals are
   only compared when both sides returned normally: a trap legitimately
   leaves partial effects and Wasm does not pin them down. *)
type exec = {
  x_outcome : (int64, string) result;
  x_memory : string;
  x_pages : int;
  x_globals : int64 array;
}

let run_interp m args =
  let inst = Interp.instantiate m in
  let outcome =
    match Interp.invoke inst "run" args with
    | Ok [] -> Ok 0L
    | Ok (v :: _) -> Ok (value_bits v)
    | Error t -> Error (Interp.trap_name t)
    | exception Interp.Out_of_fuel -> Error "out of fuel"
  in
  {
    x_outcome = outcome;
    x_memory =
      (match outcome with
      | Ok _ -> Interp.read_memory inst ~addr:0 ~len:(Interp.memory_size_bytes inst)
      | Error _ -> "");
    x_pages = Interp.memory_size_bytes inst / W.page_size;
    x_globals =
      Array.mapi
        (fun i (g : W.global) -> mask_global g.W.gtype (value_bits (Interp.global_value inst i)))
        m.W.globals;
  }

(* Per-engine machine state the two engines must agree on bit-for-bit. *)
type mach_extra = { c_counters : Machine.counters; c_dtlb : int; c_dcache : int }

let copy_counters (c : Machine.counters) = { c with Machine.instructions = c.Machine.instructions }

let run_compiled ~sanitizer ~strategy ~kind m args =
  let cfg = Codegen.default_config ~strategy () in
  let compiled = Codegen.compile cfg m in
  let eng = Runtime.create_engine ~engine:kind compiled in
  if sanitizer then Runtime.arm_sanitizer eng;
  let inst = Runtime.instantiate eng in
  let outcome =
    match Runtime.invoke inst "run" (List.map value_bits args) with
    | Ok raw -> Ok (mask_result m raw)
    | Error k -> Error (X.trap_name k)
  in
  let pages = Runtime.memory_pages inst in
  let mach = Runtime.machine eng in
  ( {
      x_outcome = outcome;
      x_memory =
        (match outcome with
        | Ok _ -> Runtime.read_memory inst ~addr:0 ~len:(pages * W.page_size)
        | Error _ -> "");
      x_pages = pages;
      x_globals =
        Array.mapi
          (fun i (g : W.global) -> mask_global g.W.gtype (Runtime.read_global inst i))
          m.W.globals;
    },
    {
      c_counters = copy_counters (Machine.counters mach);
      c_dtlb = Machine.dtlb_misses mach;
      c_dcache = Machine.dcache_misses mach;
    } )

(* Churn arm: exercise the instance lifecycle between runs of the same
   program. The first instance runs (dirtying heap, vmctx and host-stack
   pages), a neighbour is instantiated, the first is killed and its slot
   re-instantiated — so the second run executes on a recycled slot. If
   recycle misses a dirty page (or drops a clean one), the recycled run
   diverges from the interpreter. Default codegen config, threaded
   engine. *)
let run_churned ~sanitizer m args =
  let compiled = Codegen.compile (Codegen.default_config ()) m in
  let eng = Runtime.create_engine ~engine:Machine.Threaded compiled in
  if sanitizer then Runtime.arm_sanitizer eng;
  let args64 = List.map value_bits args in
  let i0 = Runtime.instantiate eng in
  (match Runtime.invoke i0 "run" args64 with Ok _ | Error _ -> ());
  let i1 = Runtime.instantiate eng in
  Runtime.kill i0;
  let i2 = Runtime.instantiate eng in
  if Runtime.instance_id i2 <> Runtime.instance_id i0 then
    failwith "churn: kill did not recycle the slot";
  Runtime.release i1;
  let outcome =
    match Runtime.invoke i2 "run" args64 with
    | Ok raw -> Ok (mask_result m raw)
    | Error k -> Error (X.trap_name k)
  in
  let pages = Runtime.memory_pages i2 in
  {
    x_outcome = outcome;
    x_memory =
      (match outcome with
      | Ok _ -> Runtime.read_memory i2 ~addr:0 ~len:(pages * W.page_size)
      | Error _ -> "");
    x_pages = pages;
    x_globals =
      Array.mapi
        (fun i (g : W.global) -> mask_global g.W.gtype (Runtime.read_global i2 i))
        m.W.globals;
  }

let traps_agree interp_name mach_name =
  String.equal interp_name mach_name
  || (String.equal interp_name "undefined table element"
     && String.equal mach_name (X.trap_name X.Trap_out_of_bounds))

let first_diff a b =
  let n = min (String.length a) (String.length b) in
  let rec go i = if i >= n then n else if a.[i] <> b.[i] then i else go (i + 1) in
  go 0

let globals_diff a b =
  let rec go i =
    if i >= Array.length a then None
    else if not (Int64.equal a.(i) b.(i)) then Some (i, a.(i), b.(i))
    else go (i + 1)
  in
  go 0

let compare_to_interp interp mach =
  match (interp.x_outcome, mach.x_outcome) with
  | Ok a, Ok b when not (Int64.equal a b) ->
      Some (Printf.sprintf "result: interpreter %Ld, compiled %Ld" a b)
  | Ok _, Ok _ -> (
      if interp.x_pages <> mach.x_pages then
        Some
          (Printf.sprintf "memory size: interpreter %d pages, compiled %d" interp.x_pages
             mach.x_pages)
      else if not (String.equal interp.x_memory mach.x_memory) then
        Some
          (Printf.sprintf "final memory differs (first diff at byte %d)"
             (first_diff interp.x_memory mach.x_memory))
      else
        match globals_diff interp.x_globals mach.x_globals with
        | Some (i, a, b) ->
            Some (Printf.sprintf "global %d: interpreter %Ld, compiled %Ld" i a b)
        | None -> None)
  | Error t, Error k when traps_agree t k -> None
  | Error t, Error k -> Some (Printf.sprintf "trap: interpreter %S, compiled %S" t k)
  | Ok a, Error k -> Some (Printf.sprintf "interpreter returned %Ld but compiled trapped: %s" a k)
  | Error t, Ok b -> Some (Printf.sprintf "interpreter trapped (%s) but compiled returned %Ld" t b)

let outcome_string = function
  | Ok v -> Printf.sprintf "Ok %Ld" v
  | Error t -> Printf.sprintf "Error %S" t

(* Any two engines under the same strategy: observationally identical
   means the full counter record too — the lockstep contract at whole-run
   granularity. [na]/[nb] name the engines for the report. *)
let compare_engines ~na ~nb (ea, ca) (eb, cb) =
  if ea.x_outcome <> eb.x_outcome then
    Some
      (Printf.sprintf "outcome: %s %s, %s %s" na (outcome_string ea.x_outcome) nb
         (outcome_string eb.x_outcome))
  else if not (String.equal ea.x_memory eb.x_memory) then
    Some
      (Printf.sprintf "final memory differs between engines (first diff at byte %d)"
         (first_diff ea.x_memory eb.x_memory))
  else if ea.x_pages <> eb.x_pages then Some "memory size differs between engines"
  else if ea.x_globals <> eb.x_globals then Some "globals differ between engines"
  else if ca.c_counters <> cb.c_counters then
    Some
      (Printf.sprintf "counters differ: %s %d instrs / %d cycles, %s %d / %d" na
         ca.c_counters.Machine.instructions ca.c_counters.Machine.cycles nb
         cb.c_counters.Machine.instructions cb.c_counters.Machine.cycles)
  else if ca.c_dtlb <> cb.c_dtlb then
    Some (Printf.sprintf "dTLB misses differ: %s %d, %s %d" na ca.c_dtlb nb cb.c_dtlb)
  else if ca.c_dcache <> cb.c_dcache then
    Some (Printf.sprintf "dcache misses differ: %s %d, %s %d" na ca.c_dcache nb cb.c_dcache)
  else None

(* The LFI triple: the native lowering, its LFI rewrite, and the LFI+Segue
   rewrite must agree among themselves (the native arm has no Wasm bounds
   semantics, so it is only compared to its own rewrites — and only tame
   programs reach here). All-trapped counts as agreement; the machine's
   trap surfaces as [Failure] from the measurement path. *)
let lfi_arms m args64 =
  let attempt name f =
    match f () with
    | (r : Lfi.measurement) -> (name, Ok (Int64.logand r.Lfi.result 0xFFFF_FFFFL))
    | exception Failure msg -> (name, Error msg)
    | exception Runtime.Fault f -> (name, Error (Runtime.fault_name f))
    | exception Invalid_argument msg -> (name, Error ("invalid: " ^ msg))
  in
  [
    attempt "native" (fun () -> Lfi.run_native m ~entry:"run" ~args:args64);
    attempt "lfi" (fun () -> Lfi.run_lfi ~segue:false m ~entry:"run" ~args:args64);
    attempt "lfi-segue" (fun () -> Lfi.run_lfi ~segue:true m ~entry:"run" ~args:args64);
  ]

let lfi_agreement arms =
  match arms with
  | (n0, first) :: rest ->
      List.fold_left
        (fun acc (n, r) ->
          match acc with
          | Some _ -> acc
          | None -> (
              match (first, r) with
              | Ok a, Ok b when Int64.equal a b -> None
              | Error _, Error _ -> None
              | a, b ->
                  Some
                    (Printf.sprintf "%s %s vs %s %s" n0 (outcome_string a) n (outcome_string b))))
        None rest
  | [] -> None

type check_result = {
  executions : int;
  interp_trapped : bool;
  skipped : bool;
  failure : (string * string) option;
}

(* The three-way differential arm: the reference oracle, the threaded
   tier-1 engine, and the eagerly tiered superblock engine. [Tier2]
   (every eligible block promoted up front) dominates [Adaptive] for
   coverage — the adaptive engine executes a subset of the same
   superblocks, and its promotion timing is separately pinned by the
   tier test suite. *)
let engine_kinds =
  [ ("step", Machine.Reference); ("threaded", Machine.Threaded); ("tier2", Machine.Tier2) ]

exception Found of string * string

let check_module ?(sanitizer = true) ?(churn = true) ~lfi m args =
  let execs = ref 0 in
  incr execs;
  let interp = run_interp m args in
  let interp_trapped = Result.is_error interp.x_outcome in
  if interp.x_outcome = Error "out of fuel" then
    { executions = !execs; interp_trapped; skipped = true; failure = None }
  else begin
    let failure =
      try
        List.iter
          (fun strategy ->
            let sname = Strategy.name strategy in
            let run_one (ename, kind) =
              incr execs;
              match run_compiled ~sanitizer ~strategy ~kind m args with
              | r -> (ename, r)
              | exception Runtime.Sanitizer_violation v ->
                  raise
                    (Found
                       ( Printf.sprintf "sanitizer/%s/%s" sname ename,
                         Format.asprintf "%a" Runtime.pp_violation v ))
              | exception Invalid_argument msg ->
                  raise (Found (Printf.sprintf "compile/%s" sname, msg))
              | exception Runtime.Fault f ->
                  raise
                    (Found (Printf.sprintf "fault/%s/%s" sname ename, Runtime.fault_name f))
            in
            let runs = List.map run_one engine_kinds in
            List.iter
              (fun (ename, (ex, _)) ->
                match compare_to_interp interp ex with
                | Some d -> raise (Found (Printf.sprintf "interp-vs-%s/%s" sname ename, d))
                | None -> ())
              runs;
            match runs with
            | (na, a) :: rest ->
                List.iter
                  (fun (nb, b) ->
                    match compare_engines ~na ~nb a b with
                    | Some d ->
                        raise (Found (Printf.sprintf "engines/%s/%s-vs-%s" sname na nb, d))
                    | None -> ())
                  rest
            | [] -> assert false)
          Strategy.all_sfi;
        if churn then begin
          incr execs;
          match run_churned ~sanitizer m args with
          | ex -> (
              match compare_to_interp interp ex with
              | Some d -> raise (Found ("churn", d))
              | None -> ())
          | exception Runtime.Sanitizer_violation v ->
              raise (Found ("churn/sanitizer", Format.asprintf "%a" Runtime.pp_violation v))
          | exception Runtime.Fault f -> raise (Found ("churn/fault", Runtime.fault_name f))
          | exception Failure msg -> raise (Found ("churn", msg))
        end;
        if lfi then begin
          execs := !execs + 3;
          match lfi_agreement (lfi_arms m (List.map value_bits args)) with
          | Some d -> Some ("lfi", d)
          | None -> None
        end
        else None
      with Found (oracle, detail) -> Some (oracle, detail)
    in
    { executions = !execs; interp_trapped; skipped = false; failure }
  end

let check_program ?(sanitizer = true) ?(churn = true) p =
  check_module ~sanitizer ~churn ~lfi:p.p_tame p.p_module p.p_args

(* --- delta-debugging shrinker ------------------------------------------- *)

let rec instr_size = function
  | W.Block (_, b) | W.Loop (_, b) -> 1 + body_size b
  | W.If (_, t, e) -> 1 + body_size t + body_size e
  | _ -> 1

and body_size b = List.fold_left (fun a i -> a + instr_size i) 0 b

let module_size (m : W.module_) =
  Array.fold_left (fun a (f : W.func) -> a + body_size f.W.body) 0 m.W.funcs

(* Secondary measure so same-size simplifications (br_table -> br, const
   halving) still strictly decrease and the greedy loop terminates. *)
let bits_weight v64 =
  let rec go v acc = if Int64.equal v 0L then acc else go (Int64.shift_right_logical v 1) (acc + 1) in
  go v64 0

let rec instr_weight = function
  | W.Const (W.V_i32 v) -> bits_weight (Int64.of_int32 v)
  | W.Const (W.V_i64 v) -> bits_weight v
  | W.Br_table (ts, _) -> 2 + List.length ts
  | W.Block (_, b) | W.Loop (_, b) -> body_weight b
  | W.If (_, t, e) -> body_weight t + body_weight e
  | _ -> 0

and body_weight b = List.fold_left (fun a i -> a + instr_weight i) 0 b

let module_weight (m : W.module_) =
  Array.fold_left (fun a (f : W.func) -> a + body_weight f.W.body) 0 m.W.funcs

let splice arr idx repl =
  Array.to_list
    (Array.concat
       [ Array.sub arr 0 idx; Array.of_list repl; Array.sub arr (idx + 1) (Array.length arr - idx - 1) ])

(* ddmin-style chunk removal: every contiguous chunk, large chunks first. *)
let seq_removals body =
  let arr = Array.of_list body in
  let n = Array.length arr in
  if n = 0 then Seq.empty
  else
    let sizes =
      let rec go s acc = if s >= 1 then go (s / 2) (s :: acc) else acc in
      List.rev (List.sort_uniq compare (go n []))
    in
    List.to_seq sizes
    |> Seq.concat_map (fun s ->
           Seq.init (n - s + 1) (fun start ->
               Array.to_list
                 (Array.append (Array.sub arr 0 start)
                    (Array.sub arr (start + s) (n - start - s)))))

let rec body_candidates body : W.instr list Seq.t =
  Seq.append (seq_removals body) (in_place body)

and in_place body =
  let arr = Array.of_list body in
  Seq.concat_map
    (fun idx -> Seq.map (fun repl -> splice arr idx repl) (instr_candidates arr.(idx)))
    (Seq.init (Array.length arr) Fun.id)

and instr_candidates (i : W.instr) : W.instr list Seq.t =
  match i with
  | W.Block (ty, b) ->
      Seq.append
        (Seq.map (fun b' -> [ W.Block (ty, b') ]) (body_candidates b))
        (Seq.return b (* unwrap; the validator rejects it when labels matter *))
  | W.Loop (ty, b) ->
      Seq.append (Seq.map (fun b' -> [ W.Loop (ty, b') ]) (body_candidates b)) (Seq.return b)
  | W.If (ty, t, e) ->
      Seq.append
        (Seq.append
           (Seq.map (fun t' -> [ W.If (ty, t', e) ]) (body_candidates t))
           (Seq.map (fun e' -> [ W.If (ty, t, e') ]) (body_candidates e)))
        (if ty = None then Seq.return [ W.Drop ] else Seq.empty)
  | W.Const (W.V_i32 v) when v <> 0l ->
      let half = Int32.div v 2l in
      List.to_seq
        (List.map
           (fun c -> [ W.Const (W.V_i32 c) ])
           (if half <> 0l && half <> v then [ 0l; half ] else [ 0l ]))
  | W.Const (W.V_i64 v) when v <> 0L ->
      let half = Int64.div v 2L in
      List.to_seq
        (List.map
           (fun c -> [ W.Const (W.V_i64 c) ])
           (if half <> 0L && half <> v then [ 0L; half ] else [ 0L ]))
  | W.Br_table (_, d) -> Seq.return [ W.Br d ]
  | _ -> Seq.empty

let with_body (m : W.module_) fidx body =
  { m with W.funcs = Array.mapi (fun i f -> if i = fidx then { f with W.body } else f) m.W.funcs }

let minimize ?(budget = 300) ~reproduces m0 =
  let evals = ref 0 in
  let check m =
    if !evals >= budget then false
    else begin
      incr evals;
      try reproduces m with _ -> false
    end
  in
  let rec improve m =
    if !evals >= budget then m
    else begin
      let sz = module_size m and wt = module_weight m in
      let found = ref None in
      (try
         Array.iteri
           (fun fidx (f : W.func) ->
             Seq.iter
               (fun body' ->
                 if !evals >= budget then raise Exit;
                 let m' = with_body m fidx body' in
                 let sz' = module_size m' and wt' = module_weight m' in
                 if (sz' < sz || (sz' = sz && wt' < wt)) && check m' then begin
                   found := Some m';
                   raise Exit
                 end)
               (body_candidates f.W.body))
           m.W.funcs
       with Exit -> ());
      match !found with Some m' -> improve m' | None -> m
    end
  in
  improve m0

(* --- corpus runs -------------------------------------------------------- *)

type divergence = {
  d_seed : int64;
  d_oracle : string;
  d_detail : string;
  d_module : W.module_;
  d_original_size : int;
}

type report = {
  r_programs : int;
  r_executions : int;
  r_interp_traps : int;
  r_lfi_programs : int;
  r_skipped : int;
  r_divergences : divergence list;
}

let run_corpus ?(sanitizer = true) ?(churn = true) ?(minimize_failures = true) ?progress
    ~seed ~count () =
  let execs = ref 0 and traps = ref 0 and lfi_count = ref 0 and skipped = ref 0 in
  let divs = ref [] in
  for i = 0 to count - 1 do
    (match progress with Some f -> f i | None -> ());
    let pseed = Int64.add seed (Int64.of_int i) in
    let p = generate pseed in
    if p.p_tame then incr lfi_count;
    let r = check_program ~sanitizer ~churn p in
    execs := !execs + r.executions;
    if r.interp_trapped then incr traps;
    if r.skipped then incr skipped;
    match r.failure with
    | None -> ()
    | Some (oracle, detail) ->
        let d_module =
          if not minimize_failures then p.p_module
          else
            minimize
              ~reproduces:(fun m ->
                match (check_module ~sanitizer ~churn ~lfi:p.p_tame m p.p_args).failure with
                | Some (o, _) -> String.equal o oracle
                | None -> false)
              p.p_module
        in
        divs :=
          {
            d_seed = pseed;
            d_oracle = oracle;
            d_detail = detail;
            d_module;
            d_original_size = module_size p.p_module;
          }
          :: !divs
  done;
  {
    r_programs = count;
    r_executions = !execs;
    r_interp_traps = !traps;
    r_lfi_programs = !lfi_count;
    r_skipped = !skipped;
    r_divergences = List.rev !divs;
  }

let pp_divergence ppf d =
  Format.fprintf ppf "seed %Ld — oracle %s@.  %s@.  minimized module (%d instrs, from %d):@."
    d.d_seed d.d_oracle d.d_detail (module_size d.d_module) d.d_original_size;
  pp_module ppf d.d_module

let pp_report ppf r =
  Format.fprintf ppf
    "%d programs, %d executions (%d with the LFI triple), %d interpreter traps, %d skipped@."
    r.r_programs r.r_executions r.r_lfi_programs r.r_interp_traps r.r_skipped;
  match r.r_divergences with
  | [] -> Format.fprintf ppf "no divergences@."
  | l ->
      Format.fprintf ppf "%d DIVERGENCE(S):@." (List.length l);
      List.iter (fun d -> pp_divergence ppf d) l

let replay ?(sanitizer = true) ?(churn = true) ppf seed =
  let p = generate seed in
  Format.fprintf ppf "seed %Ld: %s, args [%s]@." p.p_seed
    (if p.p_tame then "tame (LFI oracle on)" else "wild (LFI oracle off)")
    (String.concat "; " (List.map (Format.asprintf "%a" W.pp_value) p.p_args));
  pp_module ppf p.p_module;
  let r = check_program ~sanitizer ~churn p in
  (match r.failure with
  | None ->
      Format.fprintf ppf "no divergence (%d executions%s)@." r.executions
        (if r.skipped then ", interpreter out of fuel: skipped" else "")
  | Some (oracle, detail) -> Format.fprintf ppf "DIVERGENCE [%s]: %s@." oracle detail);
  r

(* --- sanitizer self-test ------------------------------------------------ *)

(* Weakening 1: Simple allocator, an rw page mapped deep inside the guard
   reservation, and a store that reaches it. The hardware accepts the
   access, the differential oracle cannot see it (the interpreter would
   trap, but here we run the weakened configuration only), so the run is
   silently "fine" — unless the sanitizer is armed, in which case it must
   flag exactly that store, at the faulting instruction. *)
let self_test_guard_hole () =
  let b = B.create ~memory_pages:1 ~max_memory_pages:1 () in
  let f = B.declare b "run" ~params:[] ~results:[ W.I32 ] () in
  B.define b f [ B.i32 0x10_0000; B.i64' 0xDEAD_BEEFL; B.store64 (); B.i32 42 ];
  let m = B.build b in
  let compiled = Codegen.compile (Codegen.default_config ~strategy:Strategy.segue ()) m in
  let run ~sanitized =
    let eng =
      Runtime.create_engine ~allocator:(Runtime.Simple { reservation = 4 * Units.gib }) compiled
    in
    let inst = Runtime.instantiate eng in
    let hole = Runtime.heap_base inst + 0x10_0000 in
    (match Space.map (Runtime.space eng) ~addr:hole ~len:Space.page_size ~prot:Prot.rw with
    | Ok () -> ()
    | Error msg -> failwith ("fuzz self-test: map guard hole: " ^ msg));
    if sanitized then Runtime.arm_sanitizer eng;
    ( hole,
      try `Result (Runtime.invoke inst "run" [])
      with Runtime.Sanitizer_violation v -> `Violation v )
  in
  match run ~sanitized:false with
  | _, `Violation _ -> Error "guard hole: violation raised with the sanitizer disarmed"
  | _, `Result (Error k) ->
      Error ("guard hole: probe trapped without sanitizer: " ^ X.trap_name k)
  | _, `Result (Ok raw) when Int64.logand raw 0xFFFFFFFFL <> 42L ->
      Error (Printf.sprintf "guard hole: probe returned %Ld, expected 42" raw)
  | hole, `Result (Ok _) -> (
      match run ~sanitized:true with
      | _, `Result _ -> Error "guard hole: sanitizer missed the out-of-slot store"
      | _, `Violation v ->
          if
            v.Runtime.v_kind = `Write
            && v.Runtime.v_addr = hole
            && v.Runtime.v_len = 8
            && v.Runtime.v_attribution = `Slot 0
            && v.Runtime.v_instr <> "<no instruction>"
          then
            Ok
              (Printf.sprintf "guard-hole store flagged at instruction #%d `%s`"
                 v.Runtime.v_instr_count v.Runtime.v_instr)
          else Error (Format.asprintf "guard hole: wrong violation: %a" Runtime.pp_violation v))

(* Weakening 2: striped ColorGuard pool, but the sandbox PKRU image in the
   vmctx is overwritten with allow-all — the entry sequence then installs
   a PKRU that can reach every color. Architecturally nothing faults; the
   sanitizer must notice the wrong PKRU on the first data access executed
   under it. *)
let self_test_pkru_swap () =
  let b = B.create ~memory_pages:1 ~max_memory_pages:1 () in
  let f = B.declare b "run" ~params:[] ~results:[ W.I32 ] () in
  B.define b f [ B.i32 64; B.i32 5; B.store32 (); B.i32 7 ];
  let m = B.build b in
  let cfg = { (Codegen.default_config ~strategy:Strategy.segue ()) with Codegen.colorguard = true } in
  let compiled = Codegen.compile cfg m in
  let params =
    {
      Pool.num_slots = 4;
      max_memory_bytes = 4 * Units.mib;
      expected_slot_bytes = 4 * Units.mib;
      guard_bytes = 16 * Units.mib;
      pre_guard_enabled = false;
      num_pkeys_available = 15;
      stripe_enabled = true;
    }
  in
  let layout =
    match Pool.compute params with
    | Ok l -> l
    | Error e -> failwith ("fuzz self-test: pool layout: " ^ e)
  in
  let run ~sanitized =
    let eng = Runtime.create_engine ~allocator:(Runtime.Pool layout) compiled in
    let inst = Runtime.instantiate eng in
    if Runtime.color inst = 0 then failwith "fuzz self-test: pool did not color slot 0";
    Space.write64 (Runtime.space eng)
      (Runtime.vmctx_addr inst + Codegen.vmctx_pkru_sandbox)
      (Int64.of_int Mpk.allow_all);
    if sanitized then Runtime.arm_sanitizer eng;
    try `Result (Runtime.invoke inst "run" [])
    with Runtime.Sanitizer_violation v -> `Violation v
  in
  match run ~sanitized:false with
  | `Violation _ -> Error "pkru swap: violation raised with the sanitizer disarmed"
  | `Result (Error k) -> Error ("pkru swap: probe trapped without sanitizer: " ^ X.trap_name k)
  | `Result (Ok raw) when Int64.logand raw 0xFFFFFFFFL <> 7L ->
      Error (Printf.sprintf "pkru swap: probe returned %Ld, expected 7" raw)
  | `Result (Ok _) -> (
      match run ~sanitized:true with
      | `Result _ -> Error "pkru swap: sanitizer missed the swapped PKRU image"
      | `Violation v ->
          let mentions_pkru =
            let s = v.Runtime.v_detail in
            let rec find i =
              i + 4 <= String.length s && (String.equal (String.sub s i 4) "PKRU" || find (i + 1))
            in
            find 0
          in
          if mentions_pkru && v.Runtime.v_instr <> "<no instruction>" then
            Ok
              (Printf.sprintf "swapped PKRU flagged at instruction #%d `%s`"
                 v.Runtime.v_instr_count v.Runtime.v_instr)
          else Error (Format.asprintf "pkru swap: wrong violation: %a" Runtime.pp_violation v))

let self_test () =
  match self_test_guard_hole () with
  | Error _ as e -> e
  | Ok msg1 -> (
      match self_test_pkru_swap () with
      | Error _ as e -> e
      | Ok msg2 -> Ok (msg1 ^ "; " ^ msg2))
