(* Machine state: the [t] record, its satellite types, construction, and the
   small accessors that touch only state. The execution pipeline is layered
   on top — [Decode] (operand/memory primitives + the reference
   interpreter), [Translate] (threaded-code compiler + basic-block
   analysis), [Tier] (superblock promotion) — and re-exported through the
   [Machine] facade, which is the only module with a public interface. *)

open Sfi_x86.Ast
module Space = Sfi_vmem.Space
module Tlb = Sfi_vmem.Tlb
module Mpk = Sfi_vmem.Mpk

type counters = {
  mutable instructions : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable code_bytes : int;
  mutable seg_base_writes : int;
  mutable pkru_writes : int;
}

type status = Halted | Trapped of trap_kind | Yielded

type fault_info = { fault_addr : int; fault_write : bool }

exception Hostcall_exit of int
exception Trap_exn of trap_kind

(* Raised by the engines when the entry function returns to the halt
   sentinel. *)
exception Halt_exn

type engine_kind = Threaded | Reference | Tier2 | Adaptive

(* SFI sanitizer hook. [San_read]/[San_write] fire after an access passed
   every architectural check (mapping, protection, PKRU) — i.e. for
   accesses that would silently succeed; a policy installed by the runtime
   can then flag accesses that are architecturally legal but outside the
   owning sandbox's slot. [San_branch] fires when an indirect branch target
   is about to be resolved, before the machine's own code-bounds check, so
   a wild target is attributed to the faulting instruction rather than to a
   generic out-of-bounds trap. *)
type sanitizer_access = San_read | San_write | San_branch

(* Basic-block classes, after the Adaptive Flow Director tier taxonomy:
   [Bpure] is compute-only code that cannot trap or touch memory, [Bload]
   is no-store-no-branch code (loads, pops, division — trappable but
   side-effect-free until retirement), [Bhazard] is everything with stores
   or indirect control flow (promotable, but needs the guarded superblock
   with trap rollback and pc attribution), and [Bbypass] serializes on the
   tier-1 dispatcher forever (hostcalls, explicit traps, unresolved branch
   targets). *)
type block_class = Bpure | Bload | Bhazard | Bbypass

type block = {
  b_start : int; (* instruction index of the block head *)
  b_len : int; (* dispatch slots, including a leading Label *)
  b_class : block_class;
}

type loaded = {
  program : program;
  offsets : int array; (* byte offset of each instruction *)
  labels : (string, int) Hashtbl.t; (* label -> instruction index; cold lookups only *)
  code_len : int;
  lengths : int array; (* encoded length of each instruction *)
  targets : int array; (* direct-branch target index, -1 = unresolved label *)
  ret_addrs : int64 array; (* byte address of the following instruction *)
  index_of_off : int array; (* code byte offset -> instruction index, -1 = none *)
  exec : (t -> unit) array; (* threaded code; exec.(n) is the off-end sentinel *)
  blocks : block array; (* partition of [0, n) into basic blocks *)
  block_of : int array; (* instruction index -> block index *)
  (* Tier-2 dispatch tables, indexed by instruction like [exec].
     [sb_len.(i) = 0] means instruction [i] does not head a promoted
     superblock; [k > 0] means [sb_exec.(i)] executes the whole [k]-slot
     block with batched counter charges. *)
  sb_len : int array;
  sb_exec : (t -> unit) array;
  mutable promoted : int; (* blocks currently promoted *)
}

and t = {
  space : Space.t;
  cost : Cost.t;
  tlb : Tlb.t;
  dcache : Tlb.t; (* reused set-associative structure; 64-byte lines *)
  code_base : int;
  fsgsbase_available : bool;
  (* 16 GPRs stored unboxed as 128 bytes (native-endian int64 at [8*i]),
     so register writes neither allocate nor hit the GC write barrier. *)
  regs : Bytes.t;
  vregs : Bytes.t array;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable pkru : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
  mutable pc : int;
  mutable loaded : loaded option;
  mutable space_generation : int;
  mutable fetch_accum : int;
  counters : counters;
  mutable last_fault : fault_info option;
  mutable hostcall : t -> int -> unit;
  mutable engine : engine_kind;
  (* Shadow-checker consulted on successful data accesses and on indirect
     branch resolution; [None] (the default) costs one predictable branch
     on the access path. The callback must not mutate machine state — all
     execution engines run it and must stay bit-identical. *)
  mutable sanitizer : (t -> kind:sanitizer_access -> addr:int -> len:int -> unit) option;
  (* Page access cache: a small direct-mapped table (indexed by
     [page land pc_mask]) that skips the TLB/prot/MPK walk when an access
     hits a recently checked page and nothing that could change the
     verdict (TLB contents, PKRU, VMA layout) has moved. [pc_tag] = -1
     means invalid; [pc_read_ok]/[pc_write_ok] bake in the protection bits
     AND the current PKRU, so any PKRU write must invalidate. *)
  pc_tag : int array;
  pc_slot : int array;
  pc_read_ok : bool array;
  pc_write_ok : bool array;
  (* Cached backing bytes for the entry's page; valid while [pc_bepoch]
     equals the space's data epoch (-1 = invalid). Reset whenever the tag
     is refilled, so a valid epoch always describes the tag's page. *)
  pc_bepoch : int array;
  pc_bytes : Bytes.t array;
  pc_bwritable : bool array;
  (* Direct-mapped dcache line fast path. *)
  lc_tag : int array;
  lc_slot : int array;
  (* Structured tracing. [Trace.null] (the default) keeps every emission
     site down to one load-and-branch; [set_trace] also points the sink's
     clock at this machine's cycle counter. *)
  mutable trace : Sfi_trace.Trace.t;
  (* Sampling hot-PC profiler: every [prof_interval] executed instructions
     (0 = disarmed) the current pc is bucketed into [prof_counts]. The
     sampling run loops are separate from the untraced ones, so the
     default path keeps its tight dispatch. [prof_total] mirrors the
     histogram sum so promotion scans can throttle without an O(n) fold;
     [prof_dropped] counts samples discarded when [load_program] replaces
     the program the histogram described. *)
  mutable prof_interval : int;
  mutable prof_credit : int;
  mutable prof_counts : int array;
  mutable prof_total : int;
  mutable prof_dropped : int;
  mutable prof_last_scan : int;
  (* Tier promotion policy knobs + lifetime stats. [sb_retired] counts
     instructions retired inside superblocks (a host-side statistic, not
     part of the observable snapshot — tiered and untierd runs differ on
     it by design). *)
  mutable tier_threshold : int;
  mutable tier_stride : int;
  mutable tier_min_len : int;
  mutable tier_promotions : int;
  mutable sb_retired : int;
}

(* Cache geometries: big enough that kernels alternating between a few hot
   pages (heap vs stack) or streaming over arrays don't thrash, small
   enough that invalidation is a handful of cache lines. *)
let pc_size = 64

let pc_mask = pc_size - 1
let lc_size = 256
let lc_mask = lc_size - 1

let default_code_base = 8 * 1024 * 1024 * 1024 (* 8 GiB: 4 GiB-aligned, above null *)

let fresh_counters () =
  {
    instructions = 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    code_bytes = 0;
    seg_base_writes = 0;
    pkru_writes = 0;
  }

let default_dcache_config =
  (* 512 lines x 8 ways x 64 B = 32 KiB, a typical L1D. *)
  { Tlb.entries = 512; ways = 8; page_walk_levels = 0; walk_cycles_per_level = 0 }

(* Defaults for the promotion policy: a block is worth a superblock once
   the profiler has seen ~threshold samples land in it (at the default
   1-in-64 sampling cadence that is ~512 retired instructions), scans are
   amortized over [tier_stride] fresh samples, and 1-slot blocks are never
   promoted (nothing to batch). *)
let default_tier_threshold = 8
let default_tier_stride = 256
let default_tier_min_len = 2

let create ?(cost = Cost.default) ?(tlb = Tlb.default_config) ?(code_base = default_code_base)
    ?(fsgsbase_available = true) space =
  {
    space;
    cost;
    tlb = Tlb.create tlb;
    dcache = Tlb.create default_dcache_config;
    code_base;
    fsgsbase_available;
    regs = Bytes.make 128 '\000';
    vregs = Array.init 16 (fun _ -> Bytes.make 16 '\000');
    fs_base = 0;
    gs_base = 0;
    pkru = Mpk.allow_all;
    zf = false;
    sf = false;
    cf = false;
    of_ = false;
    pc = 0;
    loaded = None;
    space_generation = Space.generation space;
    fetch_accum = 0;
    counters = fresh_counters ();
    last_fault = None;
    hostcall = (fun _ n -> invalid_arg (Printf.sprintf "no hostcall handler (hostcall %d)" n));
    engine = Threaded;
    sanitizer = None;
    pc_tag = Array.make pc_size (-1);
    pc_slot = Array.make pc_size 0;
    pc_read_ok = Array.make pc_size false;
    pc_write_ok = Array.make pc_size false;
    pc_bepoch = Array.make pc_size (-1);
    pc_bytes = Array.make pc_size Bytes.empty;
    pc_bwritable = Array.make pc_size false;
    lc_tag = Array.make lc_size (-1);
    lc_slot = Array.make lc_size 0;
    trace = Sfi_trace.Trace.null;
    prof_interval = 0;
    prof_credit = 0;
    prof_counts = [||];
    prof_total = 0;
    prof_dropped = 0;
    prof_last_scan = 0;
    tier_threshold = default_tier_threshold;
    tier_stride = default_tier_stride;
    tier_min_len = default_tier_min_len;
    tier_promotions = 0;
    sb_retired = 0;
  }

let space t = t.space
let cost_model t = t.cost

(* Invalidate the access-permission fast path. Needed whenever the cached
   verdict could change: PKRU writes, TLB flushes, VMA layout changes. *)
let invalidate_pcache t =
  Array.fill t.pc_tag 0 pc_size (-1);
  Array.fill t.pc_bepoch 0 pc_size (-1)

let get_loaded t =
  match t.loaded with Some l -> l | None -> invalid_arg "Machine: no program loaded"

let label_index t name =
  let l = get_loaded t in
  match Hashtbl.find_opt l.labels name with
  | Some idx -> idx
  | None -> raise Not_found

let label_address t name =
  let l = get_loaded t in
  t.code_base + l.offsets.(label_index t name)

let code_bounds t =
  let l = get_loaded t in
  (t.code_base, l.code_len)

(* --- Register access --- *)

let reg_get t i = Bytes.get_int64_ne t.regs (i lsl 3)
let reg_set t i v = Bytes.set_int64_ne t.regs (i lsl 3) v
let get_reg t r = reg_get t (gpr_index r)
let set_reg t r v = reg_set t (gpr_index r) v

let read_reg_w t w r =
  let v = reg_get t (gpr_index r) in
  match w with
  | W64 -> v
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W8 -> Int64.logand v 0xFFL

(* x86 semantics: 32-bit writes zero-extend; 8/16-bit writes preserve the
   upper bits of the destination. *)
let write_reg_w t w r v =
  let i = gpr_index r in
  match w with
  | W64 -> reg_set t i v
  | W32 -> reg_set t i (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
      reg_set t i
        (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFFFL)) (Int64.logand v 0xFFFFL))
  | W8 ->
      reg_set t i
        (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFL)) (Int64.logand v 0xFFL))

let get_seg_base t = function FS -> t.fs_base | GS -> t.gs_base
let set_seg_base t seg v = match seg with FS -> t.fs_base <- v | GS -> t.gs_base <- v
let get_pkru t = t.pkru

let set_pkru t v =
  t.pkru <- v;
  invalidate_pcache t

let set_hostcall_handler t f = t.hostcall <- f
let engine t = t.engine
let trace t = t.trace
let last_fault_info t = t.last_fault
let set_sanitizer t f = t.sanitizer <- f
let pc t = t.pc

let instr_at t idx =
  match t.loaded with
  | Some l when idx >= 0 && idx < Array.length l.program -> Some l.program.(idx)
  | _ -> None

(* Bucket the pc a sampling loop stopped at. Counter effects: none — the
   profiler observes execution without perturbing it, so armed and
   disarmed runs stay bit-identical under lockstep comparison. *)
let[@inline] prof_sample t =
  t.prof_credit <- t.prof_credit - 1;
  if t.prof_credit <= 0 then begin
    t.prof_credit <- t.prof_interval;
    let pc = t.pc in
    if pc >= 0 && pc < Array.length t.prof_counts then begin
      t.prof_counts.(pc) <- t.prof_counts.(pc) + 1;
      t.prof_total <- t.prof_total + 1
    end
  end

(* Same cadence for a superblock that just retired [slots] dispatch slots:
   spend the credit in one subtraction and bucket the block-exit pc. The
   histogram is a statistical view, so attributing the whole block to its
   exit pc is fine — and it is never part of the observable snapshot. *)
let[@inline] prof_sample_block t slots =
  t.prof_credit <- t.prof_credit - slots;
  if t.prof_credit <= 0 then begin
    t.prof_credit <- t.prof_interval;
    let pc = t.pc in
    if pc >= 0 && pc < Array.length t.prof_counts then begin
      t.prof_counts.(pc) <- t.prof_counts.(pc) + 1;
      t.prof_total <- t.prof_total + 1
    end
  end
