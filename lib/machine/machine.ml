(* The [Machine] facade over the execution pipeline:

     {!Mstate}    — the [t] record, satellite types, state accessors
     {!Decode}    — operand/memory/flag primitives + the reference
                    interpreter ([step])
     {!Translate} — load-time threaded-code compiler + basic-block
                    discovery and classification
     {!Tier}      — superblock promotion (batched counter charges with a
                    rollback side table) and the tiered dispatch loop

   Only this module has a public interface; the pipeline stages are
   private to the library. Everything engine-selection-dependent
   ([load_program], [set_engine], [set_trace], [run]) lives here because
   it has to see all the stages at once. *)

include Mstate

let start = Decode.start

(* --- Sampling hot-PC profiler --- *)

let arm_profiler ?(interval = 64) t =
  if interval <= 0 then invalid_arg "Machine.arm_profiler: interval must be > 0";
  t.prof_interval <- interval;
  t.prof_credit <- interval;
  let n = match t.loaded with Some l -> Array.length l.program + 1 | None -> 1 in
  t.prof_counts <- Array.make n 0;
  t.prof_total <- 0;
  t.prof_last_scan <- 0

let disarm_profiler t = t.prof_interval <- 0
let profile_samples t = Array.fold_left ( + ) 0 t.prof_counts
let profile_dropped t = t.prof_dropped

let hot_regions t =
  match t.loaded with
  | None -> []
  | Some l ->
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let current = ref "<entry>" in
      let n = Array.length l.program in
      Array.iteri
        (fun idx count ->
          if idx < n then
            (match l.program.(idx) with Sfi_x86.Ast.Label lbl -> current := lbl | _ -> ());
          if count > 0 then
            Hashtbl.replace tbl !current
              ((match Hashtbl.find_opt tbl !current with Some c -> c | None -> 0) + count))
        t.prof_counts;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (la, a) (lb, b) -> if a <> b then compare b a else compare la lb)

(* --- Tier policy and stats --- *)

type tier_config = { threshold : int; stride : int; min_len : int }

let tier_config t =
  { threshold = t.tier_threshold; stride = t.tier_stride; min_len = t.tier_min_len }

let set_tier_config t { threshold; stride; min_len } =
  if threshold <= 0 || stride <= 0 || min_len <= 0 then
    invalid_arg "Machine.set_tier_config: knobs must be > 0";
  t.tier_threshold <- threshold;
  t.tier_stride <- stride;
  t.tier_min_len <- min_len

let default_tier_config =
  {
    threshold = default_tier_threshold;
    stride = default_tier_stride;
    min_len = default_tier_min_len;
  }

type tier_stats = {
  blocks_total : int;
  blocks_promoted : int;
  promotions : int;
  superblock_instructions : int;
}

let tier_stats t =
  let total, promoted =
    match t.loaded with None -> (0, 0) | Some l -> (Array.length l.blocks, l.promoted)
  in
  {
    blocks_total = total;
    blocks_promoted = promoted;
    promotions = t.tier_promotions;
    superblock_instructions = t.sb_retired;
  }

let superblock_retired t = t.sb_retired

(* --- Program loading, engine and trace selection --- *)

let load_program t program =
  Translate.install t program;
  match t.engine with Tier2 -> Tier.promote_all t | _ -> ()

let set_engine t k =
  t.engine <- k;
  if k = Tier2 && t.loaded <> None then Tier.promote_all t;
  (* Adaptive promotion feeds on profiler samples; arm at the default
     cadence when the engine is selected. An explicit [disarm_profiler]
     afterwards sticks — sampling stops and the tier assignment freezes
     at whatever has been promoted so far. *)
  if k = Adaptive && t.prof_interval = 0 then arm_profiler t

let set_trace t sink =
  t.trace <- sink;
  (* Timestamps are simulated nanoseconds derived from the cycle counter,
     so trace emission never perturbs the counters both engines must agree
     on. The dTLB shares the sink (fill/evict events on the machine
     track). *)
  Sfi_trace.Trace.set_clock sink (fun () ->
      int_of_float (Cost.ns_of_cycles t.cost t.counters.cycles));
  Tlb.set_trace t.tlb sink;
  (* Promoted trappable blocks batch the cycle charges the sink's
     timestamps derive from; fall back to tier 1 for them. *)
  if Sfi_trace.Trace.enabled sink then Tier.demote_unsafe t

(* --- Execution --- *)

let retired_key = Domain.DLS.new_key (fun () -> ref 0)
let retired_instructions () = !(Domain.DLS.get retired_key)
let reset_retired_instructions () = Domain.DLS.get retired_key := 0

(* The adaptive engine re-scans for newly hot blocks between dispatch
   chunks of this many slots. Promotion only ever happens at a dispatch
   boundary, where tiered and untiered counters agree bit-for-bit, so the
   chunking is unobservable; it exists so a single large [run ~fuel] call
   (the runtime invokes with 2^30) still tiers up mid-activation. *)
let adaptive_chunk = 1 lsl 15

let run t ~fuel =
  let before = t.counters.instructions in
  let status =
    match t.engine with
    | Threaded -> Translate.run_threaded t ~fuel
    | Reference -> Decode.run_reference t ~fuel
    | Tier2 -> Tier.run_tiered t ~fuel
    | Adaptive ->
        let rec go remaining =
          Tier.adaptive_scan t;
          let slice = if remaining < adaptive_chunk then remaining else adaptive_chunk in
          let st = Tier.run_tiered t ~fuel:slice in
          if st = Yielded && remaining > slice then go (remaining - slice) else st
        in
        go fuel
  in
  let r = Domain.DLS.get retired_key in
  r := !r + (t.counters.instructions - before);
  if status = Yielded && Sfi_trace.Trace.enabled t.trace then
    Sfi_trace.Trace.fuel_checkpoint t.trace ~sandbox:(-1) ~executed:t.counters.instructions;
  status

let execute t ~entry ?(fuel = 1 lsl 30) () =
  start t ~entry;
  run t ~fuel

(* An immutable snapshot: callers get a private copy, so further execution
   (or the runtime's transition cost charges) cannot mutate a value a test
   or report already captured. *)
let counters t =
  let c = t.counters in
  {
    instructions = c.instructions;
    cycles = c.cycles;
    loads = c.loads;
    stores = c.stores;
    code_bytes = c.code_bytes;
    seg_base_writes = c.seg_base_writes;
    pkru_writes = c.pkru_writes;
  }

let charge_extra_cycles t n = t.counters.cycles <- t.counters.cycles + n

let reset_counters t =
  let c = t.counters in
  c.instructions <- 0;
  c.cycles <- 0;
  c.loads <- 0;
  c.stores <- 0;
  c.code_bytes <- 0;
  c.seg_base_writes <- 0;
  c.pkru_writes <- 0;
  t.fetch_accum <- 0;
  Tlb.reset_counters t.tlb;
  Tlb.reset_counters t.dcache

(* --- Execution contexts --- *)

type context = {
  c_regs : Bytes.t;
  c_vregs : Bytes.t array;
  c_fs : int;
  c_gs : int;
  c_pkru : int;
  c_zf : bool;
  c_sf : bool;
  c_cf : bool;
  c_of : bool;
  c_pc : int;
  c_fetch : int;
}

let save_context t =
  {
    c_regs = Bytes.copy t.regs;
    c_vregs = Array.map Bytes.copy t.vregs;
    c_fs = t.fs_base;
    c_gs = t.gs_base;
    c_pkru = t.pkru;
    c_zf = t.zf;
    c_sf = t.sf;
    c_cf = t.cf;
    c_of = t.of_;
    c_pc = t.pc;
    c_fetch = t.fetch_accum;
  }

let restore_context t c =
  Bytes.blit c.c_regs 0 t.regs 0 128;
  Array.iteri (fun i b -> Bytes.blit c.c_vregs.(i) 0 b 0 16) t.vregs;
  t.fs_base <- c.c_fs;
  t.gs_base <- c.c_gs;
  t.pkru <- c.c_pkru;
  t.zf <- c.c_zf;
  t.sf <- c.c_sf;
  t.cf <- c.c_cf;
  t.of_ <- c.c_of;
  t.pc <- c.c_pc;
  t.fetch_accum <- c.c_fetch;
  (* The restored PKRU may differ from the one baked into the fast path. *)
  invalidate_pcache t

let dtlb_misses t = Tlb.misses t.tlb
let dtlb_hits t = Tlb.hits t.tlb
let elapsed_ns t = Cost.ns_of_cycles t.cost t.counters.cycles

let flush_tlb t =
  Tlb.flush t.tlb;
  Tlb.flush t.dcache;
  invalidate_pcache t;
  Array.fill t.lc_tag 0 lc_size (-1)

let dcache_misses t = Tlb.misses t.dcache

(* --- Observable-state snapshots (lockstep differential validation) --- *)

type snapshot = {
  s_regs : int64 array;
  s_zf : bool;
  s_sf : bool;
  s_cf : bool;
  s_of : bool;
  s_fs_base : int;
  s_gs_base : int;
  s_pkru : int;
  s_pc : int;
  s_instructions : int;
  s_cycles : int;
  s_loads : int;
  s_stores : int;
  s_code_bytes : int;
  s_seg_base_writes : int;
  s_pkru_writes : int;
  s_dtlb_hits : int;
  s_dtlb_misses : int;
  s_dcache_misses : int;
}

let snapshot t =
  {
    s_regs = Array.init 16 (fun i -> Bytes.get_int64_ne t.regs (i lsl 3));
    s_zf = t.zf;
    s_sf = t.sf;
    s_cf = t.cf;
    s_of = t.of_;
    s_fs_base = t.fs_base;
    s_gs_base = t.gs_base;
    s_pkru = t.pkru;
    s_pc = t.pc;
    s_instructions = t.counters.instructions;
    s_cycles = t.counters.cycles;
    s_loads = t.counters.loads;
    s_stores = t.counters.stores;
    s_code_bytes = t.counters.code_bytes;
    s_seg_base_writes = t.counters.seg_base_writes;
    s_pkru_writes = t.counters.pkru_writes;
    s_dtlb_hits = Tlb.hits t.tlb;
    s_dtlb_misses = Tlb.misses t.tlb;
    s_dcache_misses = Tlb.misses t.dcache;
  }
