open Sfi_x86.Ast
module Space = Sfi_vmem.Space
module Tlb = Sfi_vmem.Tlb
module Mpk = Sfi_vmem.Mpk
module Encode = Sfi_x86.Encode

type counters = {
  mutable instructions : int;
  mutable cycles : int;
  mutable loads : int;
  mutable stores : int;
  mutable code_bytes : int;
  mutable seg_base_writes : int;
  mutable pkru_writes : int;
}

type status = Halted | Trapped of trap_kind | Yielded

type fault_info = { fault_addr : int; fault_write : bool }

exception Hostcall_exit of int
exception Trap_exn of trap_kind

(* Raised by [step] when the entry function returns to the halt sentinel. *)
exception Halt_exn

type engine_kind = Threaded | Reference

(* SFI sanitizer hook. [San_read]/[San_write] fire after an access passed
   every architectural check (mapping, protection, PKRU) — i.e. for
   accesses that would silently succeed; a policy installed by the runtime
   can then flag accesses that are architecturally legal but outside the
   owning sandbox's slot. [San_branch] fires when an indirect branch target
   is about to be resolved, before the machine's own code-bounds check, so
   a wild target is attributed to the faulting instruction rather than to a
   generic out-of-bounds trap. *)
type sanitizer_access = San_read | San_write | San_branch

type loaded = {
  program : program;
  offsets : int array; (* byte offset of each instruction *)
  labels : (string, int) Hashtbl.t; (* label -> instruction index; cold lookups only *)
  code_len : int;
  lengths : int array; (* encoded length of each instruction *)
  targets : int array; (* direct-branch target index, -1 = unresolved label *)
  ret_addrs : int64 array; (* byte address of the following instruction *)
  index_of_off : int array; (* code byte offset -> instruction index, -1 = none *)
  exec : (t -> unit) array; (* threaded code; exec.(n) is the off-end sentinel *)
}

and t = {
  space : Space.t;
  cost : Cost.t;
  tlb : Tlb.t;
  dcache : Tlb.t; (* reused set-associative structure; 64-byte lines *)
  code_base : int;
  fsgsbase_available : bool;
  (* 16 GPRs stored unboxed as 128 bytes (native-endian int64 at [8*i]),
     so register writes neither allocate nor hit the GC write barrier. *)
  regs : Bytes.t;
  vregs : Bytes.t array;
  mutable fs_base : int;
  mutable gs_base : int;
  mutable pkru : int;
  mutable zf : bool;
  mutable sf : bool;
  mutable cf : bool;
  mutable of_ : bool;
  mutable pc : int;
  mutable loaded : loaded option;
  mutable space_generation : int;
  mutable fetch_accum : int;
  counters : counters;
  mutable last_fault : fault_info option;
  mutable hostcall : t -> int -> unit;
  mutable engine : engine_kind;
  (* Shadow-checker consulted on successful data accesses and on indirect
     branch resolution; [None] (the default) costs one predictable branch
     on the access path. The callback must not mutate machine state — both
     execution engines run it and must stay bit-identical. *)
  mutable sanitizer : (t -> kind:sanitizer_access -> addr:int -> len:int -> unit) option;
  (* Page access cache: a small direct-mapped table (indexed by
     [page land pc_mask]) that skips the TLB/prot/MPK walk when an access
     hits a recently checked page and nothing that could change the
     verdict (TLB contents, PKRU, VMA layout) has moved. [pc_tag] = -1
     means invalid; [pc_read_ok]/[pc_write_ok] bake in the protection bits
     AND the current PKRU, so any PKRU write must invalidate. *)
  pc_tag : int array;
  pc_slot : int array;
  pc_read_ok : bool array;
  pc_write_ok : bool array;
  (* Cached backing bytes for the entry's page; valid while [pc_bepoch]
     equals the space's data epoch (-1 = invalid). Reset whenever the tag
     is refilled, so a valid epoch always describes the tag's page. *)
  pc_bepoch : int array;
  pc_bytes : Bytes.t array;
  pc_bwritable : bool array;
  (* Direct-mapped dcache line fast path. *)
  lc_tag : int array;
  lc_slot : int array;
  (* Structured tracing. [Trace.null] (the default) keeps every emission
     site down to one load-and-branch; [set_trace] also points the sink's
     clock at this machine's cycle counter. *)
  mutable trace : Sfi_trace.Trace.t;
  (* Sampling hot-PC profiler: every [prof_interval] executed instructions
     (0 = disarmed) the current pc is bucketed into [prof_counts]. The
     sampling run loops are separate from the untraced ones, so the
     default path keeps its tight dispatch. *)
  mutable prof_interval : int;
  mutable prof_credit : int;
  mutable prof_counts : int array;
}

(* Cache geometries: big enough that kernels alternating between a few hot
   pages (heap vs stack) or streaming over arrays don't thrash, small
   enough that invalidation is a handful of cache lines. *)
let pc_size = 64

let pc_mask = pc_size - 1
let lc_size = 256
let lc_mask = lc_size - 1

let default_code_base = 8 * 1024 * 1024 * 1024 (* 8 GiB: 4 GiB-aligned, above null *)

let fresh_counters () =
  {
    instructions = 0;
    cycles = 0;
    loads = 0;
    stores = 0;
    code_bytes = 0;
    seg_base_writes = 0;
    pkru_writes = 0;
  }

let default_dcache_config =
  (* 512 lines x 8 ways x 64 B = 32 KiB, a typical L1D. *)
  { Tlb.entries = 512; ways = 8; page_walk_levels = 0; walk_cycles_per_level = 0 }

let create ?(cost = Cost.default) ?(tlb = Tlb.default_config) ?(code_base = default_code_base)
    ?(fsgsbase_available = true) space =
  {
    space;
    cost;
    tlb = Tlb.create tlb;
    dcache = Tlb.create default_dcache_config;
    code_base;
    fsgsbase_available;
    regs = Bytes.make 128 '\000';
    vregs = Array.init 16 (fun _ -> Bytes.make 16 '\000');
    fs_base = 0;
    gs_base = 0;
    pkru = Mpk.allow_all;
    zf = false;
    sf = false;
    cf = false;
    of_ = false;
    pc = 0;
    loaded = None;
    space_generation = Space.generation space;
    fetch_accum = 0;
    counters = fresh_counters ();
    last_fault = None;
    hostcall = (fun _ n -> invalid_arg (Printf.sprintf "no hostcall handler (hostcall %d)" n));
    engine = Threaded;
    sanitizer = None;
    pc_tag = Array.make pc_size (-1);
    pc_slot = Array.make pc_size 0;
    pc_read_ok = Array.make pc_size false;
    pc_write_ok = Array.make pc_size false;
    pc_bepoch = Array.make pc_size (-1);
    pc_bytes = Array.make pc_size Bytes.empty;
    pc_bwritable = Array.make pc_size false;
    lc_tag = Array.make lc_size (-1);
    lc_slot = Array.make lc_size 0;
    trace = Sfi_trace.Trace.null;
    prof_interval = 0;
    prof_credit = 0;
    prof_counts = [||];
  }

let space t = t.space
let cost_model t = t.cost

(* Invalidate the access-permission fast path. Needed whenever the cached
   verdict could change: PKRU writes, TLB flushes, VMA layout changes. *)
let invalidate_pcache t =
  Array.fill t.pc_tag 0 pc_size (-1);
  Array.fill t.pc_bepoch 0 pc_size (-1)

let get_loaded t =
  match t.loaded with Some l -> l | None -> invalid_arg "Machine: no program loaded"

let label_index t name =
  let l = get_loaded t in
  match Hashtbl.find_opt l.labels name with
  | Some idx -> idx
  | None -> raise Not_found

let label_address t name =
  let l = get_loaded t in
  t.code_base + l.offsets.(label_index t name)

let code_bounds t =
  let l = get_loaded t in
  (t.code_base, l.code_len)

(* --- Register access --- *)

let reg_get t i = Bytes.get_int64_ne t.regs (i lsl 3)
let reg_set t i v = Bytes.set_int64_ne t.regs (i lsl 3) v
let get_reg t r = reg_get t (gpr_index r)
let set_reg t r v = reg_set t (gpr_index r) v

let read_reg_w t w r =
  let v = reg_get t (gpr_index r) in
  match w with
  | W64 -> v
  | W32 -> Int64.logand v 0xFFFFFFFFL
  | W16 -> Int64.logand v 0xFFFFL
  | W8 -> Int64.logand v 0xFFL

(* x86 semantics: 32-bit writes zero-extend; 8/16-bit writes preserve the
   upper bits of the destination. *)
let write_reg_w t w r v =
  let i = gpr_index r in
  match w with
  | W64 -> reg_set t i v
  | W32 -> reg_set t i (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
      reg_set t i
        (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFFFL)) (Int64.logand v 0xFFFFL))
  | W8 ->
      reg_set t i
        (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFL)) (Int64.logand v 0xFFL))

let get_seg_base t = function FS -> t.fs_base | GS -> t.gs_base
let set_seg_base t seg v = match seg with FS -> t.fs_base <- v | GS -> t.gs_base <- v
let get_pkru t = t.pkru

let set_pkru t v =
  t.pkru <- v;
  invalidate_pcache t

let set_hostcall_handler t f = t.hostcall <- f
let engine t = t.engine
let set_engine t k = t.engine <- k
let trace t = t.trace

let set_trace t sink =
  t.trace <- sink;
  (* Timestamps are simulated nanoseconds derived from the cycle counter,
     so trace emission never perturbs the counters both engines must agree
     on. The dTLB shares the sink (fill/evict events on the machine
     track). *)
  Sfi_trace.Trace.set_clock sink (fun () ->
      int_of_float (Cost.ns_of_cycles t.cost t.counters.cycles));
  Tlb.set_trace t.tlb sink

(* --- Effective addresses --- *)

let addr_mask_47 = (1 lsl 47) - 1

let effective_address t (m : mem) =
  let base = match m.base with Some r -> reg_get t (gpr_index r) | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) -> Int64.mul (reg_get t (gpr_index r)) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let sum = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  let sum = if m.addr32 && not m.native_base then Int64.logand sum 0xFFFFFFFFL else sum in
  let seg =
    if m.native_base then t.gs_base
    else match m.seg with Some s -> get_seg_base t s | None -> 0
  in
  Int64.to_int (Int64.add (Int64.of_int seg) sum) land addr_mask_47

(* Lea computes the address expression but never adds the segment base and
   never touches memory. *)
let lea_value t (m : mem) =
  let base = match m.base with Some r -> reg_get t (gpr_index r) | None -> 0L in
  let index =
    match m.index with
    | Some (r, s) -> Int64.mul (reg_get t (gpr_index r)) (Int64.of_int (scale_factor s))
    | None -> 0L
  in
  let sum = Int64.add (Int64.add base index) (Int64.of_int m.disp) in
  if m.addr32 then Int64.logand sum 0xFFFFFFFFL else sum

(* --- Memory access with TLB and MPK --- *)

(* TLB payload: bits 0-1 = read/write permission, bits 3+ = pkey. *)
let payload_of prot key =
  (if (prot : Sfi_vmem.Prot.t).read then 1 else 0)
  lor (if prot.Sfi_vmem.Prot.write then 2 else 0)
  lor (key lsl 3)

let check_tlb_generation t =
  let g = Space.generation t.space in
  if g <> t.space_generation then begin
    Tlb.flush t.tlb;
    t.space_generation <- g;
    invalidate_pcache t
  end

(* Full TLB walk for [page]; counter effects identical to the pre-cache
   interpreter. Returns the TLB slot plus both access verdicts (protection
   AND current PKRU) so the fast path can reuse them. *)
let check_page_slow t ~page ~write =
  match Tlb.lookup_slot t.tlb ~page with
  | Some (payload, slot) ->
      let key = payload lsr 3 in
      let read_ok = payload land 1 <> 0 && Mpk.allows t.pkru ~key ~write:false in
      let write_ok = payload land 2 <> 0 && Mpk.allows t.pkru ~key ~write:true in
      if not (if write then write_ok else read_ok) then raise (Trap_exn Trap_out_of_bounds);
      (slot, read_ok, write_ok)
  | None -> (
      t.counters.cycles <- t.counters.cycles + Tlb.walk_cost t.tlb;
      match Space.page_info t.space ~addr:(page * Space.page_size) with
      | None -> raise (Trap_exn Trap_out_of_bounds)
      | Some (prot, key) ->
          let slot = Tlb.fill_slot t.tlb ~page ~payload:(payload_of prot key) in
          let read_ok = prot.Sfi_vmem.Prot.read && Mpk.allows t.pkru ~key ~write:false in
          let write_ok = prot.Sfi_vmem.Prot.write && Mpk.allows t.pkru ~key ~write:true in
          if not (if write then write_ok else read_ok) then raise (Trap_exn Trap_out_of_bounds);
          (slot, read_ok, write_ok))

let touch_dcache t addr =
  let line = addr lsr 6 in
  let idx = line land lc_mask in
  if Array.unsafe_get t.lc_tag idx = line
     && Tlb.holds t.dcache ~slot:(Array.unsafe_get t.lc_slot idx) ~page:line
  then Tlb.touch t.dcache ~slot:(Array.unsafe_get t.lc_slot idx)
  else begin
    (match Tlb.lookup_slot t.dcache ~page:line with
    | Some (_, slot) -> Array.unsafe_set t.lc_slot idx slot
    | None ->
        t.counters.cycles <- t.counters.cycles + t.cost.Cost.dcache_miss_cycles;
        Array.unsafe_set t.lc_slot idx (Tlb.fill_slot t.dcache ~page:line ~payload:0));
    Array.unsafe_set t.lc_tag idx line
  end

let check_access t ~addr ~len ~write =
  try
    check_tlb_generation t;
    let first = addr lsr 12 and last = (addr + len - 1) lsr 12 in
    let idx = first land pc_mask in
    (if Array.unsafe_get t.pc_tag idx = first
        && Tlb.holds t.tlb ~slot:(Array.unsafe_get t.pc_slot idx) ~page:first
     then begin
       (* Repeat access to a cached page: model the TLB hit without the
          set scan, then apply the pre-baked verdict. *)
       Tlb.touch t.tlb ~slot:(Array.unsafe_get t.pc_slot idx);
       if
         not
           (if write then Array.unsafe_get t.pc_write_ok idx
            else Array.unsafe_get t.pc_read_ok idx)
       then raise (Trap_exn Trap_out_of_bounds)
     end
     else begin
       let slot, read_ok, write_ok = check_page_slow t ~page:first ~write in
       Array.unsafe_set t.pc_tag idx first;
       Array.unsafe_set t.pc_slot idx slot;
       Array.unsafe_set t.pc_read_ok idx read_ok;
       Array.unsafe_set t.pc_write_ok idx write_ok;
       Array.unsafe_set t.pc_bepoch idx (-1)
     end);
    if last <> first then ignore (check_page_slow t ~page:last ~write);
    touch_dcache t addr;
    if (addr + len - 1) lsr 6 <> addr lsr 6 then touch_dcache t (addr + len - 1);
    (* Every architectural check passed: give the sanitizer (if armed) a
       chance to flag an access that is legal for the hardware but illegal
       for the owning sandbox. An access that trapped above never reaches
       this point — it is already contained and attributed precisely. *)
    match t.sanitizer with
    | None -> ()
    | Some f -> f t ~kind:(if write then San_write else San_read) ~addr ~len
  with Trap_exn _ as e ->
    t.last_fault <- Some { fault_addr = addr; fault_write = write };
    raise e

(* Backing bytes of a cached page for reading/writing. Only call when
   [check_access] just succeeded for an access contained in [page] — that
   guarantees the entry's tag is [page], so a live byte epoch always
   describes this page's backing store. The data epoch guards against the
   store changing identity underneath us (fresh page materialization,
   madvise, unmap). *)
let ro_bytes t page =
  let idx = page land pc_mask in
  let epoch = Space.data_epoch t.space in
  if Array.unsafe_get t.pc_bepoch idx = epoch then Array.unsafe_get t.pc_bytes idx
  else begin
    let b = Space.page_for_read t.space ~page in
    Array.unsafe_set t.pc_bytes idx b;
    Array.unsafe_set t.pc_bwritable idx false;
    Array.unsafe_set t.pc_bepoch idx epoch;
    b
  end

let rw_bytes t page =
  let idx = page land pc_mask in
  let epoch = Space.data_epoch t.space in
  if Array.unsafe_get t.pc_bepoch idx = epoch && Array.unsafe_get t.pc_bwritable idx then
    Array.unsafe_get t.pc_bytes idx
  else begin
    let b = Space.page_for_write t.space ~page in
    Array.unsafe_set t.pc_bytes idx b;
    Array.unsafe_set t.pc_bwritable idx true;
    (* Read the epoch after materializing: allocation bumps it. *)
    Array.unsafe_set t.pc_bepoch idx (Space.data_epoch t.space);
    b
  end

let page_mask = Space.page_size - 1

let load_mem t w addr =
  let len = width_bytes w in
  check_access t ~addr ~len ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  t.counters.cycles <- t.counters.cycles + t.cost.Cost.load_cycles;
  let off = addr land page_mask in
  if off + len <= Space.page_size then
    let b = ro_bytes t (addr lsr 12) in
    match w with
    | W8 -> Int64.of_int (Char.code (Bytes.get b off))
    | W16 -> Int64.of_int (Bytes.get_uint16_le b off)
    | W32 -> Int64.logand (Int64.of_int32 (Bytes.get_int32_le b off)) 0xFFFFFFFFL
    | W64 -> Bytes.get_int64_le b off
  else
    match w with
    | W8 -> Int64.of_int (Space.read8 t.space addr)
    | W16 -> Int64.of_int (Space.read16 t.space addr)
    | W32 -> Int64.logand (Int64.of_int32 (Space.read32 t.space addr)) 0xFFFFFFFFL
    | W64 -> Space.read64 t.space addr

let store_mem t w addr v =
  let len = width_bytes w in
  check_access t ~addr ~len ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  t.counters.cycles <- t.counters.cycles + t.cost.Cost.store_cycles;
  let off = addr land page_mask in
  if off + len <= Space.page_size then begin
    let b = rw_bytes t (addr lsr 12) in
    match w with
    | W8 -> Bytes.set b off (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
    | W16 -> Bytes.set_uint16_le b off (Int64.to_int (Int64.logand v 0xFFFFL))
    | W32 -> Bytes.set_int32_le b off (Int64.to_int32 v)
    | W64 -> Bytes.set_int64_le b off v
  end
  else
    match w with
    | W8 -> Space.write8 t.space addr (Int64.to_int (Int64.logand v 0xFFL))
    | W16 -> Space.write16 t.space addr (Int64.to_int (Int64.logand v 0xFFFFL))
    | W32 -> Space.write32 t.space addr (Int64.to_int32 v)
    | W64 -> Space.write64 t.space addr v

(* --- Operand evaluation --- *)

let read_operand t w = function
  | Reg r -> read_reg_w t w r
  | Imm i -> (
      match w with
      | W64 -> i
      | W32 -> Int64.logand i 0xFFFFFFFFL
      | W16 -> Int64.logand i 0xFFFFL
      | W8 -> Int64.logand i 0xFFL)
  | Mem m -> load_mem t w (effective_address t m)

let write_operand t w op v =
  match op with
  | Reg r -> write_reg_w t w r v
  | Mem m -> store_mem t w (effective_address t m) v
  | Imm _ -> invalid_arg "Machine: immediate as destination"

(* --- Flags --- *)

let width_bits = function W8 -> 8 | W16 -> 16 | W32 -> 32 | W64 -> 64

let mask_of_width = function
  | W8 -> 0xFFL
  | W16 -> 0xFFFFL
  | W32 -> 0xFFFFFFFFL
  | W64 -> -1L

let sign_bit w v = Int64.logand v (Int64.shift_left 1L (width_bits w - 1)) <> 0L

let set_logic_flags t w r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  t.cf <- false;
  t.of_ <- false

let set_add_flags t w a b r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  (if w = W64 then t.cf <- Int64.unsigned_compare r a < 0
   else
     let ua = Int64.logand a (mask_of_width w) and ub = Int64.logand b (mask_of_width w) in
     t.cf <- Int64.unsigned_compare (Int64.add ua ub) (mask_of_width w) > 0);
  t.of_ <- sign_bit w a = sign_bit w b && sign_bit w r <> sign_bit w a

let set_sub_flags t w a b r =
  t.zf <- Int64.logand r (mask_of_width w) = 0L;
  t.sf <- sign_bit w r;
  (let ua = Int64.logand a (mask_of_width w) and ub = Int64.logand b (mask_of_width w) in
   t.cf <- Int64.unsigned_compare ua ub < 0);
  t.of_ <- sign_bit w a <> sign_bit w b && sign_bit w r <> sign_bit w a

let eval_cond t = function
  | E -> t.zf
  | NE -> not t.zf
  | L -> t.sf <> t.of_
  | GE -> t.sf = t.of_
  | LE -> t.zf || t.sf <> t.of_
  | G -> (not t.zf) && t.sf = t.of_
  | B -> t.cf
  | AE -> not t.cf
  | BE -> t.cf || t.zf
  | A -> (not t.cf) && not t.zf
  | S -> t.sf
  | NS -> not t.sf

(* --- Sign extension helper for Movsx / division --- *)

let sext w v =
  match w with
  | W64 -> v
  | _ ->
      let bits = 64 - width_bits w in
      Int64.shift_right (Int64.shift_left v bits) bits

(* --- Execution --- *)

let charge t cycles = t.counters.cycles <- t.counters.cycles + cycles

let charge_frontend t len =
  t.counters.code_bytes <- t.counters.code_bytes + len;
  let bpc = t.cost.Cost.frontend_bytes_per_cycle in
  if bpc > 0 then begin
    let total = t.fetch_accum + len in
    (* [fetch_accum < bpc] always, and instructions are at most 15 bytes,
       so [total / bpc] is almost always 0 or 1: avoid the hardware divide
       on this per-instruction path. *)
    if total < bpc then t.fetch_accum <- total
    else if total - bpc < bpc then begin
      charge t 1;
      t.fetch_accum <- total - bpc
    end
    else begin
      charge t (total / bpc);
      t.fetch_accum <- total mod bpc
    end
  end

let push64 t v =
  let rsp = Int64.to_int (get_reg t RSP) - 8 in
  set_reg t RSP (Int64.of_int rsp);
  check_access t ~addr:rsp ~len:8 ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  if rsp land page_mask <= Space.page_size - 8 then
    Bytes.set_int64_le (rw_bytes t (rsp lsr 12)) (rsp land page_mask) v
  else Space.write64 t.space rsp v

let pop64 t =
  let rsp = Int64.to_int (get_reg t RSP) in
  check_access t ~addr:rsp ~len:8 ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  let v =
    if rsp land page_mask <= Space.page_size - 8 then
      Bytes.get_int64_le (ro_bytes t (rsp lsr 12)) (rsp land page_mask)
    else Space.read64 t.space rsp
  in
  set_reg t RSP (Int64.of_int (rsp + 8));
  v

let halt_sentinel = 0L

(* Resolve an absolute code byte address to an instruction index through the
   flat offset table (first instruction at a given address wins, as labels
   share the address of the instruction that follows them). *)
let jump_via index_of_off code_base t addr =
  (match t.sanitizer with
  | None -> ()
  | Some f -> f t ~kind:San_branch ~addr ~len:0);
  let off = addr - code_base in
  if off >= 0 && off < Array.length index_of_off && index_of_off.(off) >= 0 then
    t.pc <- index_of_off.(off)
  else raise (Trap_exn Trap_out_of_bounds)

let jump_to_address t addr =
  let l = get_loaded t in
  jump_via l.index_of_off t.code_base t addr

let return_address t =
  (* Byte address of the instruction after the current one. *)
  let l = get_loaded t in
  l.ret_addrs.(t.pc)

(* Pure value computations shared by the reference interpreter and the
   threaded closures, so the two executors cannot drift. *)

let shift_value w op a n =
  let bits = width_bits w in
  let masked = Int64.logand a (mask_of_width w) in
  match op with
  | Shl -> Int64.shift_left a n
  | Shr -> Int64.shift_right_logical masked n
  | Sar -> Int64.shift_right (sext w a) n
  | Rol ->
      if n = 0 then a
      else Int64.logor (Int64.shift_left masked n) (Int64.shift_right_logical masked (bits - n))
  | Ror ->
      if n = 0 then a
      else Int64.logor (Int64.shift_right_logical masked n) (Int64.shift_left masked (bits - n))

let bitcnt_value k w v =
  let bits = width_bits w in
  match k with
  | Popcnt ->
      let n = ref 0 and x = ref v in
      for _ = 1 to 64 do
        if Int64.logand !x 1L = 1L then incr n;
        x := Int64.shift_right_logical !x 1
      done;
      !n
  | Tzcnt ->
      if v = 0L then bits
      else begin
        let n = ref 0 and x = ref v in
        while Int64.logand !x 1L = 0L do
          incr n;
          x := Int64.shift_right_logical !x 1
        done;
        !n
      end
  | Lzcnt ->
      if v = 0L then bits
      else begin
        let n = ref 0 in
        let top = Int64.shift_left 1L (bits - 1) in
        let x = ref v in
        while Int64.logand !x top = 0L do
          incr n;
          x := Int64.shift_left !x 1
        done;
        !n
      end

let div_by_zero = Trap_exn Trap_integer_divide_by_zero
let div_overflow = Trap_exn Trap_integer_overflow

let exec_div t w signed ~read =
  charge t t.cost.Cost.div_cycles;
  let divisor = read t in
  if signed then begin
    let a = sext w (read_reg_w t w RAX) in
    let b = sext w divisor in
    if b = 0L then raise div_by_zero;
    let min_w = Int64.shift_left 1L (width_bits w - 1) |> sext w in
    if a = min_w && b = -1L then raise div_overflow;
    write_reg_w t w RAX (Int64.div a b);
    write_reg_w t w RDX (Int64.rem a b)
  end
  else begin
    let a = read_reg_w t w RAX in
    let b = divisor in
    if b = 0L then raise div_by_zero;
    write_reg_w t w RAX (Int64.unsigned_div a b);
    write_reg_w t w RDX (Int64.unsigned_rem a b)
  end

let vreg_index (XMM n) =
  if n < 0 || n > 15 then invalid_arg "Machine: bad xmm register";
  n

let vload_data t vi addr =
  check_access t ~addr ~len:16 ~write:false;
  t.counters.loads <- t.counters.loads + 1;
  let off = addr land page_mask in
  if off <= Space.page_size - 16 then Bytes.blit (ro_bytes t (addr lsr 12)) off t.vregs.(vi) 0 16
  else begin
    let data = Space.read_bytes t.space ~addr ~len:16 in
    Bytes.blit data 0 t.vregs.(vi) 0 16
  end

let vstore_data t addr vi =
  check_access t ~addr ~len:16 ~write:true;
  t.counters.stores <- t.counters.stores + 1;
  let off = addr land page_mask in
  if off <= Space.page_size - 16 then Bytes.blit t.vregs.(vi) 0 (rw_bytes t (addr lsr 12)) off 16
  else Space.write_bytes t.space ~addr (Bytes.copy t.vregs.(vi))

(* --- Threaded-code compiler ---

   [load_program] translates each instruction once into an [exec : t -> unit]
   closure with operands, widths, branch targets, encoded lengths and return
   addresses pre-resolved. The closures must reproduce [step]'s observable
   behavior exactly — same counters, same charge order, same traps — which
   {!Lockstep} checks instruction by instruction. *)

let compile_read_reg w r =
  let i = gpr_index r in
  match w with
  | W64 -> fun t -> reg_get t i
  | W32 -> fun t -> Int64.logand (reg_get t i) 0xFFFFFFFFL
  | W16 -> fun t -> Int64.logand (reg_get t i) 0xFFFFL
  | W8 -> fun t -> Int64.logand (reg_get t i) 0xFFL

let compile_write_reg w r =
  let i = gpr_index r in
  match w with
  | W64 -> fun t v -> reg_set t i v
  | W32 -> fun t v -> reg_set t i (Int64.logand v 0xFFFFFFFFL)
  | W16 ->
      fun t v ->
        reg_set t i
          (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFFFL)) (Int64.logand v 0xFFFFL))
  | W8 ->
      fun t v ->
        reg_set t i
          (Int64.logor (Int64.logand (reg_get t i) (Int64.lognot 0xFFL)) (Int64.logand v 0xFFL))

let compile_index = function
  | Some (r, s) ->
      let i = gpr_index r and f = Int64.of_int (scale_factor s) in
      fun t -> Int64.mul (reg_get t i) f
  | None -> fun _ -> 0L

let compile_ea (m : mem) =
  let base_i = match m.base with Some r -> gpr_index r | None -> -1 in
  let index_part = compile_index m.index in
  let disp = Int64.of_int m.disp in
  let mask32 = m.addr32 && not m.native_base in
  let native = m.native_base in
  let seg = m.seg in
  fun t ->
    let base = if base_i >= 0 then reg_get t base_i else 0L in
    let sum = Int64.add (Int64.add base (index_part t)) disp in
    let sum = if mask32 then Int64.logand sum 0xFFFFFFFFL else sum in
    let segv =
      if native then t.gs_base else match seg with Some s -> get_seg_base t s | None -> 0
    in
    Int64.to_int (Int64.add (Int64.of_int segv) sum) land addr_mask_47

let compile_lea (m : mem) =
  let base_i = match m.base with Some r -> gpr_index r | None -> -1 in
  let index_part = compile_index m.index in
  let disp = Int64.of_int m.disp in
  let mask32 = m.addr32 in
  fun t ->
    let base = if base_i >= 0 then reg_get t base_i else 0L in
    let sum = Int64.add (Int64.add base (index_part t)) disp in
    if mask32 then Int64.logand sum 0xFFFFFFFFL else sum

let compile_read w op =
  match op with
  | Reg r -> compile_read_reg w r
  | Imm i ->
      let v =
        match w with
        | W64 -> i
        | W32 -> Int64.logand i 0xFFFFFFFFL
        | W16 -> Int64.logand i 0xFFFFL
        | W8 -> Int64.logand i 0xFFL
      in
      fun _ -> v
  | Mem m ->
      let ea = compile_ea m in
      fun t -> load_mem t w (ea t)

let compile_write w op =
  match op with
  | Reg r -> compile_write_reg w r
  | Mem m ->
      let ea = compile_ea m in
      fun t v -> store_mem t w (ea t) v
  | Imm _ -> fun _ _ -> invalid_arg "Machine: immediate as destination"

let compile_instr ~labels ~index_of_off ~code_base ~len ~next ~ret_addr (instr : instr) =
  let target lbl = match Hashtbl.find_opt labels lbl with Some i -> i | None -> -1 in
  let prologue t =
    t.counters.instructions <- t.counters.instructions + 1;
    charge_frontend t len
  in
  match instr with
  | Label _ -> fun t -> t.pc <- next
  | Nop ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        t.pc <- next
  | Mov (w, dst, src) ->
      let rd = compile_read w src and wr = compile_write w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (rd t);
        t.pc <- next
  | Movzx (dw, sw, dst, src) ->
      let rd = compile_read sw src and wr = compile_write_reg dw dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (rd t);
        t.pc <- next
  | Movsx (dw, sw, dst, src) ->
      let rd = compile_read sw src and wr = compile_write_reg dw dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (sext sw (rd t));
        t.pc <- next
  | Lea (w, dst, m) ->
      let lv = compile_lea m and wr = compile_write_reg w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.lea_cycles;
        wr t (lv t);
        t.pc <- next
  | Alu (op, w, dst, src) ->
      let rd = compile_read w dst and rs = compile_read w src and wr = compile_write w dst in
      let f =
        match op with
        | Add -> Int64.add
        | Sub -> Int64.sub
        | And -> Int64.logand
        | Or -> Int64.logor
        | Xor -> Int64.logxor
      in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let a = rd t and b = rs t in
        let r = f a b in
        (match op with
        | Add -> set_add_flags t w a b r
        | Sub -> set_sub_flags t w a b r
        | And | Or | Xor -> set_logic_flags t w r);
        wr t r;
        t.pc <- next
  | Shift (op, w, dst, count) ->
      let rd = compile_read w dst and wr = compile_write w dst in
      let rcx = gpr_index RCX in
      let get_n =
        match count with
        | Count_imm n -> fun _ -> n
        | Count_cl -> fun t -> Int64.to_int (Int64.logand (reg_get t rcx) 0x3FL)
      in
      let nmask = width_bits w - 1 in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let n = get_n t land nmask in
        let a = rd t in
        let r = shift_value w op a n in
        set_logic_flags t w r;
        wr t r;
        t.pc <- next
  | Imul (w, dst, src) ->
      let rdd = compile_read_reg w dst and rs = compile_read w src in
      let wr = compile_write_reg w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.mul_cycles;
        let b = rs t in
        wr t (Int64.mul (rdd t) b);
        t.pc <- next
  | Bitcnt (k, w, dst, src) ->
      let rs = compile_read w src and wr = compile_write_reg w dst in
      let m = mask_of_width w in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let v = Int64.logand (rs t) m in
        wr t (Int64.of_int (bitcnt_value k w v));
        t.pc <- next
  | Div (w, signed, src) ->
      let rs = compile_read w src in
      fun t ->
        prologue t;
        exec_div t w signed ~read:rs;
        t.pc <- next
  | Cqo w ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let a = sext w (read_reg_w t w RAX) in
        write_reg_w t w RDX (if Int64.compare a 0L < 0 then -1L else 0L);
        t.pc <- next
  | Neg (w, op) ->
      let rd = compile_read w op and wr = compile_write w op in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let a = rd t in
        let r = Int64.neg a in
        set_sub_flags t w 0L a r;
        wr t r;
        t.pc <- next
  | Not (w, op) ->
      let rd = compile_read w op and wr = compile_write w op in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        wr t (Int64.lognot (rd t));
        t.pc <- next
  | Cmp (w, a, b) ->
      let ra = compile_read w a and rb = compile_read w b in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let va = ra t and vb = rb t in
        set_sub_flags t w va vb (Int64.sub va vb);
        t.pc <- next
  | Test (w, a, b) ->
      let ra = compile_read w a and rb = compile_read w b in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        let va = ra t and vb = rb t in
        set_logic_flags t w (Int64.logand va vb);
        t.pc <- next
  | Setcc (c, r) ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t i (if eval_cond t c then 1L else 0L);
        t.pc <- next
  | Cmovcc (c, w, dst, src) ->
      let rs = compile_read w src in
      let rdd = compile_read_reg w dst and wr = compile_write_reg w dst in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        (if eval_cond t c then wr t (rs t) else if w = W32 then wr t (rdd t));
        t.pc <- next
  | Jmp lbl ->
      let tgt = target lbl in
      fun t ->
        prologue t;
        charge t (t.cost.Cost.branch_cycles + t.cost.Cost.taken_branch_cycles);
        if tgt < 0 then raise Not_found;
        t.pc <- tgt
  | Jcc (c, lbl) ->
      let tgt = target lbl in
      fun t ->
        prologue t;
        charge t t.cost.Cost.branch_cycles;
        if eval_cond t c then begin
          charge t t.cost.Cost.taken_branch_cycles;
          if tgt < 0 then raise Not_found;
          t.pc <- tgt
        end
        else t.pc <- next
  | Jmp_reg r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.indirect_branch_cycles;
        jump_via index_of_off code_base t (Int64.to_int (reg_get t i) land addr_mask_47)
  | Call lbl ->
      let tgt = target lbl in
      fun t ->
        prologue t;
        charge t t.cost.Cost.call_ret_cycles;
        push64 t ret_addr;
        if tgt < 0 then raise Not_found;
        t.pc <- tgt
  | Call_reg r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t (t.cost.Cost.call_ret_cycles + t.cost.Cost.indirect_branch_cycles);
        push64 t ret_addr;
        jump_via index_of_off code_base t (Int64.to_int (reg_get t i) land addr_mask_47)
  | Ret ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.call_ret_cycles;
        let addr = pop64 t in
        if addr = halt_sentinel then raise Halt_exn;
        jump_via index_of_off code_base t (Int64.to_int addr land addr_mask_47)
  | Push op ->
      let rd = compile_read W64 op in
      fun t ->
        prologue t;
        charge t t.cost.Cost.store_cycles;
        push64 t (rd t);
        t.pc <- next
  | Pop r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.load_cycles;
        reg_set t i (pop64 t);
        t.pc <- next
  | Wrfsbase r | Wrgsbase r ->
      let i = gpr_index r in
      let is_fs = match instr with Wrfsbase _ -> true | _ -> false in
      fun t ->
        prologue t;
        charge t
          (if t.fsgsbase_available then t.cost.Cost.wrsegbase_cycles
           else t.cost.Cost.wrsegbase_syscall_cycles);
        t.counters.seg_base_writes <- t.counters.seg_base_writes + 1;
        let v = Int64.to_int (reg_get t i) land addr_mask_47 in
        if is_fs then t.fs_base <- v else t.gs_base <- v;
        t.pc <- next
  | Rdfsbase r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t i (Int64.of_int t.fs_base);
        t.pc <- next
  | Rdgsbase r ->
      let i = gpr_index r in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t i (Int64.of_int t.gs_base);
        t.pc <- next
  | Wrpkru ->
      let rax = gpr_index RAX in
      fun t ->
        prologue t;
        charge t t.cost.Cost.wrpkru_cycles;
        t.counters.pkru_writes <- t.counters.pkru_writes + 1;
        t.pkru <- Int64.to_int (Int64.logand (reg_get t rax) 0xFFFFFFFFL);
        invalidate_pcache t;
        if Sfi_trace.Trace.enabled t.trace then
          Sfi_trace.Trace.pkru_write t.trace ~value:t.pkru;
        t.pc <- next
  | Rdpkru ->
      let rax = gpr_index RAX and rdx = gpr_index RDX in
      fun t ->
        prologue t;
        charge t t.cost.Cost.alu_cycles;
        reg_set t rax (Int64.of_int t.pkru);
        reg_set t rdx 0L;
        t.pc <- next
  | Vload (v, m) ->
      let ea = compile_ea m and vi = vreg_index v in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        vload_data t vi (ea t);
        t.pc <- next
  | Vstore (m, v) ->
      let ea = compile_ea m and vi = vreg_index v in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        vstore_data t (ea t) vi;
        t.pc <- next
  | Vzero v ->
      let vi = vreg_index v in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        Bytes.fill t.vregs.(vi) 0 16 '\000';
        t.pc <- next
  | Vdup8 (v, b) ->
      let vi = vreg_index v and c = Char.chr (b land 0xFF) in
      fun t ->
        prologue t;
        charge t t.cost.Cost.vector_cycles;
        Bytes.fill t.vregs.(vi) 0 16 c;
        t.pc <- next
  | Hostcall n ->
      fun t ->
        prologue t;
        charge t t.cost.Cost.hostcall_cycles;
        t.hostcall t n;
        t.pc <- next
  | Trap k ->
      fun t ->
        prologue t;
        raise (Trap_exn k)

let load_program t program =
  let offsets = Encode.layout program in
  let labels = Hashtbl.create 64 in
  Array.iteri
    (fun idx i ->
      match i with
      | Label l ->
          if Hashtbl.mem labels l then invalid_arg ("Machine.load_program: duplicate label " ^ l);
          Hashtbl.replace labels l idx
      | _ -> ())
    program;
  let code_len = Encode.program_length program in
  let n = Array.length program in
  let lengths = Encode.lengths program in
  (* First instruction at a given byte offset wins (labels share the offset
     of the instruction that follows them). *)
  let index_of_off = Array.make (code_len + 1) (-1) in
  Array.iteri (fun idx off -> if index_of_off.(off) < 0 then index_of_off.(off) <- idx) offsets;
  let targets =
    Array.map
      (function
        | Jmp l | Jcc (_, l) | Call l -> (
            match Hashtbl.find_opt labels l with Some i -> i | None -> -1)
        | _ -> -1)
      program
  in
  let ret_addrs =
    Array.init n (fun idx ->
        let off = if idx + 1 < n then offsets.(idx + 1) else code_len in
        Int64.of_int (t.code_base + off))
  in
  (* exec.(n) is the off-end sentinel: running past the last instruction is
     an out-of-bounds fetch, exactly as [step] treats pc >= n. *)
  let exec = Array.make (n + 1) (fun _ -> raise (Trap_exn Trap_out_of_bounds)) in
  for idx = 0 to n - 1 do
    exec.(idx) <-
      compile_instr ~labels ~index_of_off ~code_base:t.code_base ~len:lengths.(idx)
        ~next:(idx + 1) ~ret_addr:ret_addrs.(idx) program.(idx)
  done;
  t.loaded <-
    Some { program; offsets; labels; code_len; lengths; targets; ret_addrs; index_of_off; exec };
  (* Resize the profiler histogram to the new program (index n = off-end
     sentinel), dropping samples of the program it replaced. *)
  if t.prof_interval > 0 then t.prof_counts <- Array.make (n + 1) 0;
  t.pc <- 0

let step t =
  let l = get_loaded t in
  if t.pc < 0 || t.pc >= Array.length l.program then raise (Trap_exn Trap_out_of_bounds);
  let instr = l.program.(t.pc) in
  t.counters.instructions <- t.counters.instructions + 1;
  charge_frontend t l.lengths.(t.pc);
  let cost = t.cost in
  (* Direct-branch targets were resolved at load; -1 marks a label that did
     not exist, which surfaces as the same [Not_found] the per-step Hashtbl
     lookup used to raise. *)
  let direct_target () =
    let tgt = l.targets.(t.pc) in
    if tgt < 0 then raise Not_found;
    tgt
  in
  let next_pc = ref (t.pc + 1) in
  (match instr with
  | Label _ -> t.counters.instructions <- t.counters.instructions - 1
  | Nop -> charge t cost.Cost.alu_cycles
  | Mov (w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_operand t w dst (read_operand t w src)
  | Movzx (dw, sw, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_reg_w t dw dst (read_operand t sw src)
  | Movsx (dw, sw, dst, src) ->
      charge t cost.Cost.alu_cycles;
      write_reg_w t dw dst (sext sw (read_operand t sw src))
  | Lea (w, dst, m) ->
      charge t cost.Cost.lea_cycles;
      write_reg_w t w dst (lea_value t m)
  | Alu (op, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      let a = read_operand t w dst and b = read_operand t w src in
      let r =
        match op with
        | Add -> Int64.add a b
        | Sub -> Int64.sub a b
        | And -> Int64.logand a b
        | Or -> Int64.logor a b
        | Xor -> Int64.logxor a b
      in
      (match op with
      | Add -> set_add_flags t w a b r
      | Sub -> set_sub_flags t w a b r
      | And | Or | Xor -> set_logic_flags t w r);
      write_operand t w dst r
  | Shift (op, w, dst, count) ->
      charge t cost.Cost.alu_cycles;
      let n =
        match count with
        | Count_imm n -> n
        | Count_cl -> Int64.to_int (Int64.logand (get_reg t RCX) 0x3FL)
      in
      let n = n land (width_bits w - 1) in
      let a = read_operand t w dst in
      let r = shift_value w op a n in
      set_logic_flags t w r;
      write_operand t w dst r
  | Imul (w, dst, src) ->
      charge t cost.Cost.mul_cycles;
      let r = Int64.mul (read_reg_w t w dst) (read_operand t w src) in
      write_reg_w t w dst r
  | Bitcnt (k, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      let v = Int64.logand (read_operand t w src) (mask_of_width w) in
      write_reg_w t w dst (Int64.of_int (bitcnt_value k w v))
  | Div (w, signed, src) -> exec_div t w signed ~read:(fun t -> read_operand t w src)
  | Cqo w ->
      charge t cost.Cost.alu_cycles;
      let a = sext w (read_reg_w t w RAX) in
      write_reg_w t w RDX (if Int64.compare a 0L < 0 then -1L else 0L)
  | Neg (w, op) ->
      charge t cost.Cost.alu_cycles;
      let a = read_operand t w op in
      let r = Int64.neg a in
      set_sub_flags t w 0L a r;
      write_operand t w op r
  | Not (w, op) ->
      charge t cost.Cost.alu_cycles;
      write_operand t w op (Int64.lognot (read_operand t w op))
  | Cmp (w, a, b) ->
      charge t cost.Cost.alu_cycles;
      let va = read_operand t w a and vb = read_operand t w b in
      set_sub_flags t w va vb (Int64.sub va vb)
  | Test (w, a, b) ->
      charge t cost.Cost.alu_cycles;
      let va = read_operand t w a and vb = read_operand t w b in
      set_logic_flags t w (Int64.logand va vb)
  | Setcc (c, r) ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (if eval_cond t c then 1L else 0L)
  | Cmovcc (c, w, dst, src) ->
      charge t cost.Cost.alu_cycles;
      if eval_cond t c then write_reg_w t w dst (read_operand t w src)
      else if w = W32 then
        (* Hardware quirk: cmov with a 32-bit destination zero-extends even
           when the move does not happen. *)
        write_reg_w t w dst (read_reg_w t w dst)
  | Jmp _ ->
      charge t (cost.Cost.branch_cycles + cost.Cost.taken_branch_cycles);
      next_pc := direct_target ()
  | Jcc (c, _) ->
      charge t cost.Cost.branch_cycles;
      if eval_cond t c then begin
        charge t cost.Cost.taken_branch_cycles;
        next_pc := direct_target ()
      end
  | Jmp_reg r ->
      charge t cost.Cost.indirect_branch_cycles;
      jump_to_address t (Int64.to_int (get_reg t r) land addr_mask_47);
      next_pc := t.pc
  | Call _ ->
      charge t cost.Cost.call_ret_cycles;
      push64 t (return_address t);
      next_pc := direct_target ()
  | Call_reg r ->
      charge t (cost.Cost.call_ret_cycles + cost.Cost.indirect_branch_cycles);
      push64 t (return_address t);
      jump_to_address t (Int64.to_int (get_reg t r) land addr_mask_47);
      next_pc := t.pc
  | Ret ->
      charge t cost.Cost.call_ret_cycles;
      let addr = pop64 t in
      if addr = halt_sentinel then raise Halt_exn;
      jump_to_address t (Int64.to_int addr land addr_mask_47);
      next_pc := t.pc
  | Push op ->
      charge t cost.Cost.store_cycles;
      push64 t (read_operand t W64 op)
  | Pop r ->
      charge t cost.Cost.load_cycles;
      set_reg t r (pop64 t)
  | Wrfsbase r | Wrgsbase r ->
      charge t
        (if t.fsgsbase_available then cost.Cost.wrsegbase_cycles
         else cost.Cost.wrsegbase_syscall_cycles);
      t.counters.seg_base_writes <- t.counters.seg_base_writes + 1;
      let v = Int64.to_int (get_reg t r) land addr_mask_47 in
      (match instr with Wrfsbase _ -> t.fs_base <- v | _ -> t.gs_base <- v)
  | Rdfsbase r ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (Int64.of_int t.fs_base)
  | Rdgsbase r ->
      charge t cost.Cost.alu_cycles;
      set_reg t r (Int64.of_int t.gs_base)
  | Wrpkru ->
      charge t cost.Cost.wrpkru_cycles;
      t.counters.pkru_writes <- t.counters.pkru_writes + 1;
      t.pkru <- Int64.to_int (Int64.logand (get_reg t RAX) 0xFFFFFFFFL);
      invalidate_pcache t;
      if Sfi_trace.Trace.enabled t.trace then
        Sfi_trace.Trace.pkru_write t.trace ~value:t.pkru
  | Rdpkru ->
      charge t cost.Cost.alu_cycles;
      set_reg t RAX (Int64.of_int t.pkru);
      set_reg t RDX 0L
  | Vload (v, m) ->
      charge t cost.Cost.vector_cycles;
      vload_data t (vreg_index v) (effective_address t m)
  | Vstore (m, v) ->
      charge t cost.Cost.vector_cycles;
      vstore_data t (effective_address t m) (vreg_index v)
  | Vzero v ->
      charge t cost.Cost.vector_cycles;
      Bytes.fill t.vregs.(vreg_index v) 0 16 '\000'
  | Vdup8 (v, b) ->
      charge t cost.Cost.vector_cycles;
      Bytes.fill t.vregs.(vreg_index v) 0 16 (Char.chr (b land 0xFF))
  | Hostcall n ->
      charge t cost.Cost.hostcall_cycles;
      t.hostcall t n
  | Trap k -> raise (Trap_exn k));
  t.pc <- !next_pc

let start t ~entry =
  t.last_fault <- None;
  t.pc <- label_index t entry;
  push64 t halt_sentinel

let last_fault_info t = t.last_fault
let set_sanitizer t f = t.sanitizer <- f
let pc t = t.pc

let instr_at t idx =
  match t.loaded with
  | Some l when idx >= 0 && idx < Array.length l.program -> Some l.program.(idx)
  | _ -> None

(* Bucket the pc the sampling loops stopped at. Counter effects: none —
   the profiler observes execution without perturbing it, so armed and
   disarmed runs stay bit-identical under {!Lockstep}. *)
let[@inline] prof_sample t =
  t.prof_credit <- t.prof_credit - 1;
  if t.prof_credit <= 0 then begin
    t.prof_credit <- t.prof_interval;
    let pc = t.pc in
    if pc >= 0 && pc < Array.length t.prof_counts then
      t.prof_counts.(pc) <- t.prof_counts.(pc) + 1
  end

let run_reference t ~fuel =
  let budget = ref fuel in
  let result = ref None in
  let sampling = t.prof_interval > 0 in
  (try
     while !result = None do
       if !budget <= 0 then result := Some Yielded
       else begin
         decr budget;
         step t;
         if sampling then prof_sample t
       end
     done
   with
  | Halt_exn -> result := Some Halted
  | Hostcall_exit _ -> result := Some Halted
  | Trap_exn k -> result := Some (Trapped k));
  match !result with Some s -> s | None -> assert false

let run_threaded t ~fuel =
  let l = get_loaded t in
  let code = l.exec in
  if fuel <= 0 then Yielded
  else if t.pc < 0 || t.pc > Array.length l.program then
    (* [step] would trap here; once inside the loop the closures maintain
       pc within [0, n] (index n being the off-end sentinel). *)
    Trapped Trap_out_of_bounds
  else begin
    let budget = ref fuel in
    try
      if t.prof_interval > 0 then begin
        (* Separate sampling loop so the default path below keeps its
           tight two-load dispatch. *)
        while !budget > 0 do
          decr budget;
          code.(t.pc) t;
          prof_sample t
        done;
        Yielded
      end
      else begin
        while !budget > 0 do
          decr budget;
          code.(t.pc) t
        done;
        Yielded
      end
    with
    | Halt_exn | Hostcall_exit _ -> Halted
    | Trap_exn k -> Trapped k
  end

(* Domain-local count of instructions retired by [run], so a parallel bench
   harness can report per-domain instructions/sec without sharing state. *)
let retired_key = Domain.DLS.new_key (fun () -> ref 0)
let retired_instructions () = !(Domain.DLS.get retired_key)
let reset_retired_instructions () = Domain.DLS.get retired_key := 0

let run t ~fuel =
  let before = t.counters.instructions in
  let status =
    match t.engine with
    | Threaded -> run_threaded t ~fuel
    | Reference -> run_reference t ~fuel
  in
  let r = Domain.DLS.get retired_key in
  r := !r + (t.counters.instructions - before);
  if status = Yielded && Sfi_trace.Trace.enabled t.trace then
    Sfi_trace.Trace.fuel_checkpoint t.trace ~sandbox:(-1)
      ~executed:t.counters.instructions;
  status

let execute t ~entry ?(fuel = 1 lsl 30) () =
  start t ~entry;
  run t ~fuel

(* An immutable snapshot: callers get a private copy, so further execution
   (or the runtime's transition cost charges) cannot mutate a value a test
   or report already captured. *)
let counters t =
  let c = t.counters in
  {
    instructions = c.instructions;
    cycles = c.cycles;
    loads = c.loads;
    stores = c.stores;
    code_bytes = c.code_bytes;
    seg_base_writes = c.seg_base_writes;
    pkru_writes = c.pkru_writes;
  }

let charge_extra_cycles t n = t.counters.cycles <- t.counters.cycles + n

let reset_counters t =
  let c = t.counters in
  c.instructions <- 0;
  c.cycles <- 0;
  c.loads <- 0;
  c.stores <- 0;
  c.code_bytes <- 0;
  c.seg_base_writes <- 0;
  c.pkru_writes <- 0;
  t.fetch_accum <- 0;
  Tlb.reset_counters t.tlb;
  Tlb.reset_counters t.dcache

(* --- Sampling hot-PC profiler --- *)

let arm_profiler ?(interval = 64) t =
  if interval <= 0 then invalid_arg "Machine.arm_profiler: interval must be > 0";
  t.prof_interval <- interval;
  t.prof_credit <- interval;
  let n = match t.loaded with Some l -> Array.length l.program + 1 | None -> 1 in
  t.prof_counts <- Array.make n 0

let disarm_profiler t = t.prof_interval <- 0
let profile_samples t = Array.fold_left ( + ) 0 t.prof_counts

let hot_regions t =
  match t.loaded with
  | None -> []
  | Some l ->
      let tbl : (string, int) Hashtbl.t = Hashtbl.create 16 in
      let current = ref "<entry>" in
      let n = Array.length l.program in
      Array.iteri
        (fun idx count ->
          if idx < n then (match l.program.(idx) with Label lbl -> current := lbl | _ -> ());
          if count > 0 then
            Hashtbl.replace tbl !current
              ((match Hashtbl.find_opt tbl !current with Some c -> c | None -> 0) + count))
        t.prof_counts;
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
      |> List.sort (fun (la, a) (lb, b) ->
             if a <> b then compare b a else compare la lb)

type context = {
  c_regs : Bytes.t;
  c_vregs : Bytes.t array;
  c_fs : int;
  c_gs : int;
  c_pkru : int;
  c_zf : bool;
  c_sf : bool;
  c_cf : bool;
  c_of : bool;
  c_pc : int;
  c_fetch : int;
}

let save_context t =
  {
    c_regs = Bytes.copy t.regs;
    c_vregs = Array.map Bytes.copy t.vregs;
    c_fs = t.fs_base;
    c_gs = t.gs_base;
    c_pkru = t.pkru;
    c_zf = t.zf;
    c_sf = t.sf;
    c_cf = t.cf;
    c_of = t.of_;
    c_pc = t.pc;
    c_fetch = t.fetch_accum;
  }

let restore_context t c =
  Bytes.blit c.c_regs 0 t.regs 0 128;
  Array.iteri (fun i b -> Bytes.blit c.c_vregs.(i) 0 b 0 16) t.vregs;
  t.fs_base <- c.c_fs;
  t.gs_base <- c.c_gs;
  t.pkru <- c.c_pkru;
  t.zf <- c.c_zf;
  t.sf <- c.c_sf;
  t.cf <- c.c_cf;
  t.of_ <- c.c_of;
  t.pc <- c.c_pc;
  t.fetch_accum <- c.c_fetch;
  (* The restored PKRU may differ from the one baked into the fast path. *)
  invalidate_pcache t

let dtlb_misses t = Tlb.misses t.tlb
let dtlb_hits t = Tlb.hits t.tlb
let elapsed_ns t = Cost.ns_of_cycles t.cost t.counters.cycles

let flush_tlb t =
  Tlb.flush t.tlb;
  Tlb.flush t.dcache;
  invalidate_pcache t;
  Array.fill t.lc_tag 0 lc_size (-1)

let dcache_misses t = Tlb.misses t.dcache

(* --- Observable-state snapshots (lockstep differential validation) --- *)

type snapshot = {
  s_regs : int64 array;
  s_zf : bool;
  s_sf : bool;
  s_cf : bool;
  s_of : bool;
  s_fs_base : int;
  s_gs_base : int;
  s_pkru : int;
  s_pc : int;
  s_instructions : int;
  s_cycles : int;
  s_loads : int;
  s_stores : int;
  s_code_bytes : int;
  s_seg_base_writes : int;
  s_pkru_writes : int;
  s_dtlb_hits : int;
  s_dtlb_misses : int;
  s_dcache_misses : int;
}

let snapshot t =
  {
    s_regs = Array.init 16 (fun i -> Bytes.get_int64_ne t.regs (i lsl 3));
    s_zf = t.zf;
    s_sf = t.sf;
    s_cf = t.cf;
    s_of = t.of_;
    s_fs_base = t.fs_base;
    s_gs_base = t.gs_base;
    s_pkru = t.pkru;
    s_pc = t.pc;
    s_instructions = t.counters.instructions;
    s_cycles = t.counters.cycles;
    s_loads = t.counters.loads;
    s_stores = t.counters.stores;
    s_code_bytes = t.counters.code_bytes;
    s_seg_base_writes = t.counters.seg_base_writes;
    s_pkru_writes = t.counters.pkru_writes;
    s_dtlb_hits = Tlb.hits t.tlb;
    s_dtlb_misses = Tlb.misses t.tlb;
    s_dcache_misses = Tlb.misses t.dcache;
  }
